// Command pnmcs runs nested Monte-Carlo searches, sequential or parallel,
// on the Morpion Solitaire variants.
//
// Sequential search (the paper's §III):
//
//	pnmcs -mode seq -variant 5D -level 2 -seed 1
//
// Parallel search on a simulated cluster (the paper's §IV; deterministic
// virtual makespan):
//
//	pnmcs -mode virtual -algo LM -clients 64 -level 3 -variant 4D
//
// Parallel search natively on goroutines:
//
//	pnmcs -mode wall -algo RR -clients 8 -level 2 -variant 4D
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	pnmcs "repro"
	"repro/internal/stats"
)

func main() {
	var (
		mode      = flag.String("mode", "seq", "seq, virtual or wall")
		variant   = flag.String("variant", "5D", "Morpion variant: 5T, 5D, 4T or 4D")
		level     = flag.Int("level", 2, "nesting level (parallel modes need >= 2)")
		seed      = flag.Uint64("seed", 1, "random seed")
		algoName  = flag.String("algo", "LM", "dispatcher for parallel modes: RR or LM")
		clients   = flag.Int("clients", 64, "client count for parallel modes")
		medians   = flag.Int("medians", pnmcs.PaperMedians, "median process count")
		firstMove = flag.Bool("first-move", false, "stop after the first move (parallel modes)")
		jobScale  = flag.Int64("jobscale", 8000, "virtual client work multiplier (virtual mode)")
		render    = flag.Bool("render", true, "draw the final grid")
	)
	flag.Parse()

	if err := run(*mode, *variant, *level, *seed, *algoName, *clients, *medians, *firstMove, *jobScale, *render); err != nil {
		fmt.Fprintln(os.Stderr, "pnmcs:", err)
		os.Exit(1)
	}
}

func run(mode, variant string, level int, seed uint64, algoName string, clients, medians int, firstMove bool, jobScale int64, render bool) error {
	v, err := pnmcs.MorpionVariantByName(variant)
	if err != nil {
		return err
	}

	var algo pnmcs.Algorithm
	switch algoName {
	case "RR":
		algo = pnmcs.RoundRobin
	case "LM":
		algo = pnmcs.LastMinute
	default:
		return fmt.Errorf("unknown algorithm %q (want RR or LM)", algoName)
	}

	switch mode {
	case "seq":
		searcher := pnmcs.NewSearcher(pnmcs.NewRand(seed), pnmcs.DefaultSearchOptions())
		start := time.Now()
		res := searcher.Nested(pnmcs.NewMorpion(v), level)
		elapsed := time.Since(start)
		fmt.Printf("sequential NMCS level %d on %s: score %.0f in %s (%d playouts)\n",
			level, v.Name, res.Score, stats.FormatDuration(elapsed), searcher.Stats().Playouts)
		if render {
			grid, err := pnmcs.RenderMorpionSequence(v, res.Sequence)
			if err != nil {
				return err
			}
			fmt.Println(grid)
		}
		return nil

	case "virtual", "wall":
		cfg := pnmcs.ParallelConfig{
			Algo: algo, Level: level, Root: pnmcs.NewMorpion(v),
			Seed: seed, Memorize: true, FirstMoveOnly: firstMove,
			JobScale: jobScale,
		}
		var res pnmcs.ParallelResult
		if mode == "virtual" {
			res, err = pnmcs.RunVirtual(pnmcs.Homogeneous(clients), cfg,
				pnmcs.VirtualOptions{Medians: medians})
		} else {
			cfg.JobScale = 1
			res, err = pnmcs.RunWall(clients, medians, cfg)
		}
		if err != nil {
			return err
		}
		what := "rollout"
		if firstMove {
			what = "first move"
		}
		fmt.Printf("parallel NMCS (%v) level %d on %s, %d clients: %s score %.0f, time %s, %d client jobs\n",
			algo, level, v.Name, clients, what, res.Score,
			stats.FormatDuration(res.Elapsed), res.Jobs)
		if render && !firstMove {
			grid, err := pnmcs.RenderMorpionSequence(v, res.Sequence)
			if err != nil {
				return err
			}
			fmt.Println(grid)
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q (want seq, virtual or wall)", mode)
	}
}
