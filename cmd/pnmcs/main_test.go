package main

import "testing"

func TestRunSequential(t *testing.T) {
	if err := run("seq", "4D", 1, 1, "LM", 0, 0, false, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunVirtualFirstMove(t *testing.T) {
	if err := run("virtual", "4D", 2, 1, "RR", 8, 16, true, 100, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWallFirstMove(t *testing.T) {
	if err := run("wall", "4D", 2, 1, "LM", 2, 8, true, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithRendering(t *testing.T) {
	if err := run("seq", "4D", 1, 2, "LM", 0, 0, false, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("seq", "9Z", 1, 1, "LM", 0, 0, false, 1, false); err == nil {
		t.Error("bad variant accepted")
	}
	if err := run("warp", "4D", 1, 1, "LM", 0, 0, false, 1, false); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run("seq", "4D", 1, 1, "XX", 0, 0, false, 1, false); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run("virtual", "4D", 1, 1, "RR", 4, 8, true, 1, false); err == nil {
		t.Error("level 1 parallel accepted")
	}
}
