package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/parallel
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStaticFirstMove-8 	       1	 261107786 ns/op	        98.27 midle_pct	23733640 B/op	  435676 allocs/op
BenchmarkStaticFirstMove-8 	       1	 241107786 ns/op	        98.11 midle_pct	23733640 B/op	  435676 allocs/op
BenchmarkPullFirstMove-8   	       1	 484780092 ns/op	23735072 B/op	  435831 allocs/op
PASS
ok  	repro/internal/parallel	1.529s
`

func TestParseAggregates(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != schema {
		t.Fatalf("schema %q", f.Schema)
	}
	if !strings.Contains(f.CPU, "Xeon") {
		t.Fatalf("cpu not captured: %q", f.CPU)
	}
	if len(f.Benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(f.Benches))
	}
	static := f.Benches[0]
	if static.Name != "BenchmarkStaticFirstMove" {
		t.Fatalf("name %q (GOMAXPROCS suffix not stripped?)", static.Name)
	}
	if static.Runs != 2 {
		t.Fatalf("runs %d, want 2", static.Runs)
	}
	if static.NsOp != 241107786 {
		t.Fatalf("ns/op %v, want the minimum across runs", static.NsOp)
	}
	if got := static.Metrics["midle_pct"]; got != (98.27+98.11)/2 {
		t.Fatalf("midle_pct %v, want the mean across runs", got)
	}
	if f.Benches[1].AllocsOp != 435831 {
		t.Fatalf("allocs/op %v", f.Benches[1].AllocsOp)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func bench(name string, ns float64) Bench {
	return Bench{Name: name, Runs: 1, NsOp: ns}
}

func file(bs ...Bench) File {
	return File{Schema: schema, Benches: bs}
}

func TestCompareGate(t *testing.T) {
	base := file(bench("A", 100), bench("B", 100), bench("C", 100))

	cases := []struct {
		name string
		cand File
		ok   bool
		want string
	}{
		{"within threshold", file(bench("A", 115), bench("B", 100), bench("C", 90)), true, "ok"},
		{"regression", file(bench("A", 130), bench("B", 100), bench("C", 100)), false, "REGRESSION"},
		{"improvement", file(bench("A", 50), bench("B", 100), bench("C", 100)), true, "improved"},
		{"new benchmark passes", file(bench("A", 100), bench("B", 100), bench("C", 100), bench("D", 999)), true, "NEW"},
		{"missing reported", file(bench("A", 100), bench("B", 100)), true, "MISSING"},
	}
	for _, tc := range cases {
		var out strings.Builder
		ok := Compare(&out, base, tc.cand, 0.20)
		if ok != tc.ok {
			t.Errorf("%s: ok=%v, want %v\n%s", tc.name, ok, tc.ok, out.String())
		}
		if !strings.Contains(out.String(), tc.want) {
			t.Errorf("%s: output missing %q:\n%s", tc.name, tc.want, out.String())
		}
	}
}

func TestCompareDisarmsGateOnCPUMismatch(t *testing.T) {
	// Absolute ns/op is not comparable across hardware: a regression-sized
	// delta on a different CPU must be reported but not fail the gate.
	base := file(bench("A", 100))
	base.CPU = "old machine"
	cand := file(bench("A", 500))
	cand.CPU = "new machine"
	var out strings.Builder
	if ok := Compare(&out, base, cand, 0.20); !ok {
		t.Fatalf("gate fired across different CPUs:\n%s", out.String())
	}
	for _, want := range []string{"note: baseline CPU", "DISARMED", "REGRESSION"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// Same CPU: the same delta fails.
	cand.CPU = base.CPU
	if ok := Compare(&out, base, cand, 0.20); ok {
		t.Fatal("gate did not fire on matching CPUs")
	}
}

func TestCompareGatesAllocsAcrossCPUs(t *testing.T) {
	// allocs/op is hardware-independent: an allocation regression fails
	// even when the ns/op gate is disarmed by a CPU mismatch.
	base := file(Bench{Name: "A", Runs: 1, NsOp: 100, AllocsOp: 1000})
	base.CPU = "old machine"
	cand := file(Bench{Name: "A", Runs: 1, NsOp: 100, AllocsOp: 1500})
	cand.CPU = "new machine"
	var out strings.Builder
	if ok := Compare(&out, base, cand, 0.20); ok {
		t.Fatalf("alloc regression passed across CPUs:\n%s", out.String())
	}
}
