// Command benchreg turns `go test -bench` output into the repository's
// BENCH_*.json artifact and gates CI on ns/op regressions against the
// committed baseline.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime=1x -count=3 ./... | benchreg parse -o BENCH_2026-07-27.json
//	benchreg compare -baseline BENCH_baseline.json -candidate BENCH_2026-07-27.json -threshold 0.20
//
// parse aggregates repeated -count runs per benchmark: ns/op, B/op and
// allocs/op take the minimum across runs (the least-noisy estimator of the
// true cost), custom metrics (vsec, midle_pct, ...) take the mean. The
// -N GOMAXPROCS suffix is stripped from names so baselines transfer
// between machines with different core counts.
//
// compare exits non-zero when any benchmark present in both files
// regressed by more than the threshold — on allocs/op always, and on
// ns/op when baseline and candidate come from the same CPU (see Compare).
// Missing benchmarks are reported but do not fail the gate (new
// benchmarks land before their baseline does).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark's aggregated measurements.
type Bench struct {
	Name     string             `json:"name"`
	Runs     int                `json:"runs"`
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_*.json schema.
type File struct {
	Schema    string  `json:"schema"`
	Generated string  `json:"generated"`
	Go        string  `json:"go"`
	CPU       string  `json:"cpu,omitempty"`
	Benches   []Bench `json:"benchmarks"`
}

const schema = "pnmcs-bench/v1"

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		fs := flag.NewFlagSet("parse", flag.ExitOnError)
		out := fs.String("o", "", "output file (default stdout)")
		fs.Parse(os.Args[2:])
		if err := runParse(os.Stdin, *out); err != nil {
			fatal(err)
		}
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		baseline := fs.String("baseline", "", "baseline BENCH_*.json")
		candidate := fs.String("candidate", "", "candidate BENCH_*.json")
		threshold := fs.Float64("threshold", 0.20, "allowed fractional ns/op regression")
		fs.Parse(os.Args[2:])
		if *baseline == "" || *candidate == "" {
			fs.Usage()
			os.Exit(2)
		}
		ok, err := runCompare(os.Stdout, *baseline, *candidate, *threshold)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchreg parse [-o file] < bench-output")
	fmt.Fprintln(os.Stderr, "       benchreg compare -baseline f -candidate f [-threshold 0.20]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreg:", err)
	os.Exit(1)
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkPullFirstMove-8   3   12345 ns/op   12.5 midle_pct".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// sample is one raw benchmark line's measurements.
type sample struct {
	nsOp, bOp, allocsOp float64
	metrics             map[string]float64
}

// Parse reads `go test -bench` output and aggregates it into a File.
func Parse(r io.Reader) (File, error) {
	out := File{
		Schema:    schema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
	}
	samples := map[string][]sample{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			out.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		s, err := parseFields(m[3])
		if err != nil {
			return File{}, fmt.Errorf("line %q: %w", line, err)
		}
		if len(samples[name]) == 0 {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return File{}, err
	}
	if len(order) == 0 {
		return File{}, fmt.Errorf("no benchmark lines found in input")
	}

	for _, name := range order {
		out.Benches = append(out.Benches, aggregate(name, samples[name]))
	}
	return out, nil
}

// parseFields decodes the "value unit" pairs after the iteration count.
func parseFields(rest string) (sample, error) {
	fields := strings.Fields(rest)
	if len(fields)%2 != 0 {
		return sample{}, fmt.Errorf("odd value/unit fields: %q", rest)
	}
	s := sample{}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return sample{}, fmt.Errorf("bad value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			s.nsOp = v
		case "B/op":
			s.bOp = v
		case "allocs/op":
			s.allocsOp = v
		case "MB/s":
			// throughput is derived from ns/op; skip
		default:
			if s.metrics == nil {
				s.metrics = map[string]float64{}
			}
			s.metrics[unit] = v
		}
	}
	return s, nil
}

// aggregate folds the -count samples of one benchmark: minimum for the
// cost measures, mean for custom metrics.
func aggregate(name string, ss []sample) Bench {
	b := Bench{Name: name, Runs: len(ss)}
	for i, s := range ss {
		if i == 0 || s.nsOp < b.NsOp {
			b.NsOp = s.nsOp
		}
		if i == 0 || s.bOp < b.BOp {
			b.BOp = s.bOp
		}
		if i == 0 || s.allocsOp < b.AllocsOp {
			b.AllocsOp = s.allocsOp
		}
		for k, v := range s.metrics {
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[k] += v
		}
	}
	for k := range b.Metrics {
		b.Metrics[k] /= float64(len(ss))
	}
	return b
}

func runParse(r io.Reader, outPath string) error {
	f, err := Parse(r)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if outPath != "" {
		file, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Compare checks candidate against baseline; it returns false when any
// shared benchmark regressed beyond the threshold.
//
// Two gates:
//
//   - allocs/op is hardware-independent and (at -benchtime=1x) essentially
//     deterministic, so it is gated unconditionally — an allocation
//     regression fails CI no matter which machine recorded the baseline.
//   - ns/op is only gated when both files were produced on the same CPU:
//     absolute ns/op is meaningless across different hardware, so on a
//     CPU mismatch the timing comparison is reported but never fails. To
//     arm the timing gate on CI, refresh the committed baseline from a
//     BENCH_*.json artifact that CI itself produced (download it from a
//     main run and commit it as BENCH_baseline.json).
func Compare(w io.Writer, baseline, candidate File, threshold float64) bool {
	base := map[string]Bench{}
	for _, b := range baseline.Benches {
		base[b.Name] = b
	}
	names := make([]string, 0, len(candidate.Benches))
	for _, b := range candidate.Benches {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	cand := map[string]Bench{}
	for _, b := range candidate.Benches {
		cand[b.Name] = b
	}

	timeGate := true
	if baseline.CPU != "" && candidate.CPU != "" && baseline.CPU != candidate.CPU {
		timeGate = false
		fmt.Fprintf(w, "note: baseline CPU %q != candidate CPU %q; absolute ns/op is not\n", baseline.CPU, candidate.CPU)
		fmt.Fprintf(w, "note: comparable across hardware, so the ns/op gate is DISARMED for this run\n")
		fmt.Fprintf(w, "note: (allocs/op is still gated) — refresh BENCH_baseline.json from this\n")
		fmt.Fprintf(w, "note: machine's artifact to arm the timing gate\n")
	}

	ok := true
	for _, name := range names {
		c := cand[name]
		b, found := base[name]
		if !found {
			fmt.Fprintf(w, "NEW        %-40s %12.0f ns/op (no baseline)\n", name, c.NsOp)
			continue
		}
		nsDelta := 0.0
		if b.NsOp > 0 {
			nsDelta = c.NsOp/b.NsOp - 1
		}
		allocDelta := 0.0
		if b.AllocsOp > 0 {
			allocDelta = c.AllocsOp/b.AllocsOp - 1
		}
		status := "ok"
		switch {
		case allocDelta > threshold:
			status = "REGRESSION"
			ok = false
		case nsDelta > threshold:
			status = "REGRESSION"
			if timeGate {
				ok = false
			}
		case nsDelta < -threshold:
			status = "improved"
		}
		fmt.Fprintf(w, "%-10s %-40s %12.0f -> %12.0f ns/op (%+.1f%%)  %9.0f -> %9.0f allocs/op (%+.1f%%)\n",
			status, name, b.NsOp, c.NsOp, 100*nsDelta, b.AllocsOp, c.AllocsOp, 100*allocDelta)
	}
	for _, b := range baseline.Benches {
		if _, found := cand[b.Name]; !found {
			fmt.Fprintf(w, "MISSING    %-40s dropped from candidate run\n", b.Name)
		}
	}
	if !ok {
		fmt.Fprintf(w, "FAIL: regression beyond %.0f%% against the committed baseline\n", 100*threshold)
	}
	return ok
}

func runCompare(w io.Writer, basePath, candPath string, threshold float64) (bool, error) {
	baseline, err := load(basePath)
	if err != nil {
		return false, err
	}
	candidate, err := load(candPath)
	if err != nil {
		return false, err
	}
	return Compare(w, baseline, candidate, threshold), nil
}

func load(path string) (File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != schema {
		return File{}, fmt.Errorf("%s: unknown schema %q (want %q)", path, f.Schema, schema)
	}
	return f, nil
}
