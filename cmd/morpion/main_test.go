package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/rng"
)

func TestRunRecords(t *testing.T) {
	if err := run("5D", true, false, 0, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRandom(t *testing.T) {
	if err := run("4D", false, true, 7, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifyAndRender(t *testing.T) {
	// Generate a legal sequence, write it to a file, verify and render it.
	st := morpion.New(morpion.Var4D)
	r := rng.New(3)
	var buf []game.Move
	for !st.Terminal() {
		buf = st.LegalMoves(buf[:0])
		st.Play(buf[r.Intn(len(buf))])
	}
	text, err := morpion.FormatSequence(morpion.Var4D, st.Sequence())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "seq.txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("4D", false, false, 0, path, ""); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := run("4D", false, false, 0, "", path); err != nil {
		t.Fatalf("render: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("9Z", false, true, 0, "", ""); err == nil {
		t.Error("bad variant accepted")
	}
	if err := run("5D", false, false, 0, "", ""); err == nil {
		t.Error("no action accepted")
	}
	if err := run("5D", false, false, 0, "/nonexistent/file", ""); err == nil {
		t.Error("missing file accepted")
	}
	// A syntactically valid but illegal sequence must fail verification.
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0,0:E:0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("5D", false, false, 0, path, ""); err == nil {
		t.Error("illegal sequence verified")
	}
}

func TestRunArchive(t *testing.T) {
	dir := t.TempDir()
	arch := filepath.Join(dir, "best.txt")

	// Two random games; add both, then re-add the first (duplicate).
	for i, seed := range []uint64{3, 4, 3} {
		st := morpion.New(morpion.Var4D)
		r := rng.New(seed)
		var buf []game.Move
		for !st.Terminal() {
			buf = st.LegalMoves(buf[:0])
			st.Play(buf[r.Intn(len(buf))])
		}
		text, err := morpion.FormatSequence(morpion.Var4D, st.Sequence())
		if err != nil {
			t.Fatal(err)
		}
		seqFile := filepath.Join(dir, "seq.txt")
		if err := os.WriteFile(seqFile, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := runArchive("4D", arch, seqFile, false); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	// The archive must hold exactly two distinct games.
	f, err := os.Open(arch)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := morpion.LoadArchive(f)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("archive holds %d entries, want 2", loaded.Len())
	}
	if err := runArchive("4D", arch, "", true); err != nil {
		t.Fatalf("list: %v", err)
	}
	if err := runArchive("4D", arch, "", false); err == nil {
		t.Fatal("archive without action accepted")
	}
}
