// Command morpion is a utility for the Morpion Solitaire domain: verify
// and render recorded sequences, play random games, and list the known
// records discussed in the paper.
//
//	morpion -records                          # known record scores
//	morpion -variant 5D -random -seed 3       # play and draw a random game
//	morpion -variant 5D -verify seq.txt       # validate a recorded sequence
//	morpion -variant 5D -render seq.txt       # draw a recorded sequence
//	morpion -archive best.txt -add seq.txt    # merge a sequence into an archive
//	morpion -archive best.txt -list           # show an archive, best first
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/rng"
)

func main() {
	var (
		variant = flag.String("variant", "5D", "variant: 5T, 5D, 4T or 4D")
		records = flag.Bool("records", false, "list known records")
		random  = flag.Bool("random", false, "play one random game")
		seed    = flag.Uint64("seed", 1, "seed for -random")
		verify  = flag.String("verify", "", "file with a sequence to validate")
		render  = flag.String("render", "", "file with a sequence to draw")
		archive = flag.String("archive", "", "archive file for -add / -list")
		add     = flag.String("add", "", "sequence file to merge into -archive")
		list    = flag.Bool("list", false, "list the -archive contents")
	)
	flag.Parse()

	if *archive != "" {
		if err := runArchive(*variant, *archive, *add, *list); err != nil {
			fmt.Fprintln(os.Stderr, "morpion:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*variant, *records, *random, *seed, *verify, *render); err != nil {
		fmt.Fprintln(os.Stderr, "morpion:", err)
		os.Exit(1)
	}
}

// runArchive maintains a record archive: sequences are validated and
// deduplicated up to the symmetry group of the cross before being stored.
func runArchive(variant, path, add string, list bool) error {
	v, err := morpion.VariantByName(variant)
	if err != nil {
		return err
	}
	arch := morpion.NewArchive(v)
	if f, err := os.Open(path); err == nil {
		arch, err = morpion.LoadArchive(f)
		f.Close()
		if err != nil {
			return err
		}
		if arch.Variant().Name != v.Name {
			return fmt.Errorf("archive %s holds %s sequences, not %s", path, arch.Variant().Name, v.Name)
		}
	}

	if add != "" {
		data, err := os.ReadFile(add)
		if err != nil {
			return err
		}
		added, err := arch.AddText(string(data), add)
		if err != nil {
			return err
		}
		if added {
			fmt.Println("added (new up to symmetry)")
		} else {
			fmt.Println("already present (equivalent up to symmetry)")
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return arch.Save(f)
	}

	if list {
		if arch.Len() == 0 {
			fmt.Println("archive is empty")
			return nil
		}
		for _, e := range arch.Entries() {
			fmt.Printf("%3d  %-20s %.60s...\n", e.Score, e.Label, e.Sequence)
		}
		return nil
	}
	return fmt.Errorf("pass -add or -list with -archive")
}

func run(variant string, records, random bool, seed uint64, verify, render string) error {
	if records {
		for _, r := range morpion.KnownRecords {
			fmt.Printf("%-3s %3d  %-60s %d\n", r.Variant, r.Score, r.Holder, r.Year)
		}
		return nil
	}

	v, err := morpion.VariantByName(variant)
	if err != nil {
		return err
	}

	switch {
	case random:
		st := morpion.New(v)
		r := rng.New(seed)
		var buf []game.Move
		for !st.Terminal() {
			buf = st.LegalMoves(buf[:0])
			st.Play(buf[r.Intn(len(buf))])
		}
		text, err := morpion.FormatSequence(v, st.Sequence())
		if err != nil {
			return err
		}
		fmt.Println(st.Render())
		fmt.Println("sequence:", text)
		return nil

	case verify != "":
		data, err := os.ReadFile(verify)
		if err != nil {
			return err
		}
		st, err := morpion.ParseSequence(v, string(data))
		if err != nil {
			return fmt.Errorf("sequence invalid: %w", err)
		}
		fmt.Printf("sequence valid: %d moves on %s (best known: %d)\n",
			st.MovesPlayed(), v.Name, morpion.BestKnown(v.Name))
		return nil

	case render != "":
		data, err := os.ReadFile(render)
		if err != nil {
			return err
		}
		st, err := morpion.ParseSequence(v, string(data))
		if err != nil {
			return err
		}
		fmt.Println(st.Render())
		return nil

	default:
		return fmt.Errorf("nothing to do: pass -records, -random, -verify or -render")
	}
}
