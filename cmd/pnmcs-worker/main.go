// Command pnmcs-worker hosts median and client ranks of a distributed
// pnmcsd: the worker-node binary of the paper's MPI deployment, one
// process per machine (or per core group).
//
// Start a coordinator that expects two workers, then dial in:
//
//	pnmcsd -addr :8723 -workers 2 -worker-listen :8724
//	pnmcs-worker -connect host:8724
//	pnmcs-worker -connect host:8724
//
// The handshake assigns this process a contiguous rank range and carries
// the pool configuration, from which the worker derives the same world
// layout the coordinator built; no further configuration is needed. The
// process serves rollouts until the coordinator drains and shuts the rank
// world down, then prints its service statistics and exits.
//
// -retry keeps dialing a not-yet-listening coordinator (connection
// refused) for the given budget, so workers and coordinator can be
// started in any order.
package main

import (
	"errors"
	"flag"
	"log"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/codec"
	"repro/internal/parallel"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:8724", "coordinator worker-listen address")
	retry := flag.Duration("retry", 30*time.Second, "dial budget: keep retrying the coordinator this long")
	token := flag.String("worker-token", "", "shared secret presented at handshake (must match the coordinator's -worker-token)")
	flag.Parse()

	deadline := time.Now().Add(*retry)
	var w *mpi.NetWorker
	for {
		var err error
		w, err = mpi.DialWorker(*connect, *token)
		if err == nil {
			break
		}
		// A version or token mismatch is permanent: the same coordinator
		// will refuse every retry, so fail fast instead of hammering it
		// for the whole budget. A slot rejection stays retryable — a slot
		// freed by another worker's failed handshake, or by a crashed
		// worker whose place this process is taking (rolling
		// replacement), becomes claimable again moments later.
		if errors.Is(err, codec.ErrVersion) || errors.Is(err, mpi.ErrBadToken) {
			log.Fatalf("dial %s: %v", *connect, err)
		}
		if time.Now().After(deadline) {
			log.Fatalf("dial %s: %v (retry budget %v exhausted)", *connect, err, *retry)
		}
		log.Printf("dial %s: %v; retrying", *connect, err)
		time.Sleep(250 * time.Millisecond)
	}
	lo, hi := w.RankRange()
	log.Printf("connected to %s: ranks [%d, %d) of a %d-rank world", *connect, lo, hi, w.Size())

	stats, err := parallel.ServeWorker(w)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("drained: %d medians, %d clients, idle %v", stats.Medians, stats.Clients, stats.Idle.Round(time.Millisecond))
	log.Printf("transport: %d frames / %d bytes in, %d frames / %d bytes out, codec %v encode / %v decode",
		stats.Net.FramesRecv, stats.Net.BytesRecv, stats.Net.FramesSent, stats.Net.BytesSent,
		time.Duration(stats.Net.EncodeNs).Round(time.Microsecond),
		time.Duration(stats.Net.DecodeNs).Round(time.Microsecond))
}
