// Command pnmcs-worker hosts median and client ranks of a distributed
// pnmcsd: the worker-node binary of the paper's MPI deployment, one
// process per machine (or per core group).
//
// Start a coordinator that expects two workers, then dial in:
//
//	pnmcsd -addr :8723 -workers 2 -worker-listen :8724
//	pnmcs-worker -connect host:8724
//	pnmcs-worker -connect host:8724
//
// The handshake assigns this process a contiguous rank range and carries
// the pool configuration, from which the worker derives the same world
// layout the coordinator built; no further configuration is needed. The
// process serves rollouts until the coordinator drains and shuts the rank
// world down, then prints its service statistics and exits.
//
// -retry keeps dialing a not-yet-listening coordinator (connection
// refused) for the given budget, so workers and coordinator can be
// started in any order.
//
// -silence arms the worker-side liveness monitor: a coordinator stream
// that carries nothing (no frames, no pings) for the budget is declared
// dead instead of hanging the process forever on a blackholed link. When
// the link dies — by silence or by a read error — the worker redials the
// coordinator with jittered exponential backoff, up to -redials times,
// reviving its old slot (the coordinator queues the slot's frames while
// the worker is away). An orderly shutdown broadcast still exits cleanly.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/codec"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// workerOpts collects everything serveLoop needs, so tests can drive the
// full connect/serve/redial cycle in-process.
type workerOpts struct {
	connect string
	token   string
	retry   time.Duration // per-connection dial budget
	silence time.Duration // worker-side liveness budget; 0 disables
	redials int           // automatic redials after a lost coordinator link
	backoff time.Duration // base redial backoff, doubled each attempt with jitter
	// jitterSeed seeds the process-private backoff jitter source. Zero
	// seeds from the clock — a fleet of workers must not jitter in
	// lockstep — and tests pin it for a reproducible schedule. Mirrors
	// service.Config.RetrySeed; like there, results never depend on it.
	jitterSeed uint64
	logf       func(format string, args ...any)
}

// dialRetry dials the coordinator, retrying transient refusals for the
// configured budget. A version or token mismatch is permanent: the same
// coordinator will refuse every retry, so fail fast instead of hammering
// it. A slot rejection stays retryable — a slot freed by another worker's
// failed handshake, or by a crashed worker whose place this process is
// taking (rolling replacement), becomes claimable again moments later.
func dialRetry(o workerOpts) (*mpi.NetWorker, error) {
	deadline := time.Now().Add(o.retry)
	for {
		w, err := mpi.DialWorker(o.connect, o.token)
		if err == nil {
			return w, nil
		}
		if errors.Is(err, codec.ErrVersion) || errors.Is(err, mpi.ErrBadToken) {
			return nil, fmt.Errorf("dial %s: %w", o.connect, err)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: %w (retry budget %v exhausted)", o.connect, err, o.retry)
		}
		o.logf("dial %s: %v; retrying", o.connect, err)
		time.Sleep(250 * time.Millisecond)
	}
}

// redialDelay is the jittered exponential backoff before redial attempt
// (1-based): base doubled per attempt, capped at 30s, then halved plus a
// uniform random half so a fleet of workers losing the same coordinator
// does not stampede it in lockstep when it comes back. The jitter draws
// from the worker's private source, not the global math/rand: nothing
// else can perturb (or be perturbed by) the redial schedule, and a
// pinned workerOpts.jitterSeed reproduces it exactly.
func redialDelay(jitter *rng.Rand, base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	shift := attempt - 1
	if shift > 10 {
		shift = 10
	}
	d := base << shift
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	half := d / 2
	return half + time.Duration(jitter.Uint64n(uint64(half)+1))
}

// serveLoop dials the coordinator and serves pool ranks until an orderly
// shutdown. When the coordinator link dies instead — a read error, or the
// -silence monitor on a blackholed stream — it redials with jittered
// exponential backoff, up to o.redials times across the process lifetime:
// the worker-side half of the pool's rolling-replacement story, reclaiming
// (or reviving) the slot whose frames the coordinator held in the
// meantime.
func serveLoop(o workerOpts) error {
	seed := o.jitterSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	jitter := rng.New(seed)
	for attempt := 0; ; attempt++ {
		w, err := dialRetry(o)
		if err != nil {
			return err
		}
		if o.silence > 0 {
			w.SetSilenceTimeout(o.silence)
		}
		lo, hi := w.RankRange()
		o.logf("connected to %s: ranks [%d, %d) of a %d-rank world", o.connect, lo, hi, w.Size())

		stats, err := parallel.ServeWorker(w)
		if err != nil {
			return err
		}
		o.logf("drained: %d medians, %d clients, idle %v", stats.Medians, stats.Clients, stats.Idle.Round(time.Millisecond))
		o.logf("transport: %d frames / %d bytes in, %d frames / %d bytes out, codec %v encode / %v decode",
			stats.Net.FramesRecv, stats.Net.BytesRecv, stats.Net.FramesSent, stats.Net.BytesSent,
			time.Duration(stats.Net.EncodeNs).Round(time.Microsecond),
			time.Duration(stats.Net.DecodeNs).Round(time.Microsecond))
		if !stats.Lost {
			return nil // orderly shutdown broadcast
		}
		if attempt >= o.redials {
			return fmt.Errorf("coordinator link lost; redial budget (%d) exhausted", o.redials)
		}
		d := redialDelay(jitter, o.backoff, attempt+1)
		o.logf("coordinator link lost; redialing in %v (attempt %d of %d)", d.Round(time.Millisecond), attempt+1, o.redials)
		time.Sleep(d)
	}
}

func main() {
	connect := flag.String("connect", "127.0.0.1:8724", "coordinator worker-listen address")
	retry := flag.Duration("retry", 30*time.Second, "dial budget: keep retrying the coordinator this long")
	token := flag.String("worker-token", "", "shared secret presented at handshake (must match the coordinator's -worker-token)")
	silence := flag.Duration("silence", 30*time.Second, "declare the coordinator lost after this much stream silence (0 disables; keep well above the coordinator's ping interval, default 2s)")
	redials := flag.Int("redials", 5, "redial the coordinator this many times after a lost link before giving up (0 disables)")
	backoff := flag.Duration("redial-backoff", 250*time.Millisecond, "base redial backoff, doubled each attempt with jitter")
	flag.Parse()

	if err := serveLoop(workerOpts{
		connect: *connect,
		token:   *token,
		retry:   *retry,
		silence: *silence,
		redials: *redials,
		backoff: *backoff,
		logf:    log.Printf,
	}); err != nil {
		log.Fatal(err)
	}
}
