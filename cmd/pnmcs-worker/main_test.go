package main

// serveLoop end to end, in-process: a worker serving through a fault
// proxy loses the coordinator to a one-way blackhole — only its -silence
// monitor can notice, since its own writes still get through — redials
// through the same proxy, revives its slot, serves a bit-identical job on
// the healed pool, and still exits cleanly on the orderly shutdown.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sudoku"
)

func TestServeLoopRedialsAfterSilence(t *testing.T) {
	pool, err := parallel.NewNetPool(
		parallel.PoolConfig{Slots: 1, Medians: 2, Clients: 3},
		parallel.NetPoolConfig{
			Listen:  "127.0.0.1:0",
			Workers: 1,
			// Fast pings so the healthy stream never looks silent, and a
			// coordinator-side timeout far beyond the worker's budget so
			// the worker's own monitor is what detects the blackhole.
			Heartbeat:        20 * time.Millisecond,
			HeartbeatTimeout: 30 * time.Second,
		},
	)
	if err != nil {
		t.Fatal(err)
	}

	proxy, err := faultnet.NewProxy(pool.WorkerAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	loopDone := make(chan error, 1)
	go func() {
		loopDone <- serveLoop(workerOpts{
			connect: proxy.Addr(),
			retry:   10 * time.Second,
			silence: 150 * time.Millisecond,
			redials: 3,
			backoff: 50 * time.Millisecond,
			// Pinned jitter keeps the redial timing reproducible.
			jitterSeed: 1,
			logf:       logf,
		})
	}()

	waitMetrics := func(what string, cond func(parallel.PoolMetrics) bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond(pool.Metrics()) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", what, pool.Metrics())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// A served job proves the first connection is live.
	cfg := parallel.Config{Level: 2, Root: sudoku.New(2), Seed: 7}
	solo, err := parallel.RunWall(4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Score != solo.Score {
		t.Fatalf("pre-loss job scored %v, solo %v", first.Score, solo.Score)
	}

	// Silence the coordinator→worker direction: pings stop arriving, the
	// worker's writes still flow, and its silence monitor must end the
	// serve (the coordinator then sees the worker's close as a loss).
	proxy.BlackholeDir(faultnet.Down, true)
	waitMetrics("worker loss", func(m parallel.PoolMetrics) bool { return m.WorkersLost >= 1 })
	// Lift the hole before the redial handshake needs the Down direction.
	proxy.BlackholeDir(faultnet.Down, false)
	waitMetrics("redial rejoin", func(m parallel.PoolMetrics) bool { return m.WorkersRejoined >= 1 })

	// The revived worker serves bit-identical work.
	second, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Score != solo.Score || second.Steps != solo.Steps ||
		second.Jobs != solo.Jobs || second.WorkUnits != solo.WorkUnits {
		t.Fatalf("post-redial job diverged: %+v vs solo %+v", second, solo)
	}

	// Orderly shutdown: the loop must exit nil, not burn its redials.
	pool.Shutdown()
	select {
	case err := <-loopDone:
		if err != nil {
			t.Fatalf("serveLoop: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serveLoop never returned after shutdown")
	}

	mu.Lock()
	defer mu.Unlock()
	redialed := false
	for _, l := range lines {
		if strings.Contains(l, "redialing") {
			redialed = true
		}
	}
	if !redialed {
		t.Fatalf("no redial logged; log was:\n%s", strings.Join(lines, "\n"))
	}
}

// TestRedialDelayBackoff pins the backoff envelope: attempt n waits at
// least half of base<<(n-1) and at most the full doubled value, capped.
func TestRedialDelayBackoff(t *testing.T) {
	jitter := rng.New(42)
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 12; attempt++ {
		full := base << (attempt - 1)
		if shift := attempt - 1; shift > 10 {
			full = base << 10
		}
		if full > 30*time.Second {
			full = 30 * time.Second
		}
		for i := 0; i < 20; i++ {
			d := redialDelay(jitter, base, attempt)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
	if d := redialDelay(jitter, 0, 1); d <= 0 {
		t.Fatalf("zero base must fall back to a positive delay, got %v", d)
	}
}

// TestRedialDelayDeterministic pins the jitter source: the backoff
// schedule is a pure function of the seed (workerOpts.jitterSeed), so it
// is reproducible in tests and immune to other users of math/rand.
func TestRedialDelayDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		jitter := rng.New(seed)
		var ds []time.Duration
		for attempt := 1; attempt <= 8; attempt++ {
			ds = append(ds, redialDelay(jitter, 100*time.Millisecond, attempt))
		}
		return ds
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same seed gave %v then %v", i+1, a[i], b[i])
		}
	}
	if c := schedule(8); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatalf("seeds 7 and 8 produced identical schedules %v", a)
	}
}
