// Command experiments regenerates the paper's evaluation: tables I–VI and
// the figures, at a configurable scale.
//
// Usage:
//
//	experiments -scale ci            # all tables + figures, ~minutes
//	experiments -scale lab           # adds the level-hi rows, ~tens of minutes
//	experiments -table II            # a single table
//	experiments -fig 1               # a single figure
//	experiments -summary             # headline quantities only
//
// The "paper" scale describes the full-size 5D level-3/4 campaign; it is
// refused without -force because the sequential level-4 baseline alone is
// ~10 days of CPU in the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	var (
		scale     = flag.String("scale", "ci", "experiment scale: ci, lab or paper")
		table     = flag.String("table", "", "regenerate one table: I, II, III, IV, V or VI (default: all)")
		fig       = flag.String("fig", "", "regenerate figures: 1 or 2 (2 covers the protocol figures 2-5)")
		summary   = flag.Bool("summary", false, "print only the headline summary (runs tables II, IV, VI)")
		ablation  = flag.Bool("ablations", false, "run the ablation studies (dispatcher policy, median pool, memorization)")
		scheduler = flag.Bool("schedulers", false, "compare the static cyclic and demand-driven pull schedulers (homogeneous sweep + straggler ablation)")
		extension = flag.Bool("extensions", false, "run the extension experiments (score amplification by level)")
		jsonPath  = flag.String("json", "", "additionally export table measurements as JSON to this file")
		seed      = flag.Uint64("seed", 7, "seed for the figure-1 record hunt")
		force     = flag.Bool("force", false, "allow the full paper-scale campaign")
	)
	flag.Parse()

	p := harness.PresetFor(harness.Scale(*scale))
	if p.Scale == harness.ScalePaper && !*force {
		fmt.Fprintln(os.Stderr, "experiments: the paper scale replays 5D levels 3-4 (the paper's")
		fmt.Fprintln(os.Stderr, "sequential level-4 baseline alone took ~10 days of CPU); pass -force")
		fmt.Fprintln(os.Stderr, "to run it anyway, or use -scale ci / -scale lab.")
		os.Exit(2)
	}

	if err := run(p, *table, *fig, *summary, *ablation, *scheduler, *extension, *jsonPath, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(p harness.Preset, table, fig string, summaryOnly, ablations, schedulers, extensions bool, jsonPath string, seed uint64) error {
	if ablations {
		return runAblations(p)
	}
	if schedulers {
		return runSchedulers(p, jsonPath)
	}
	if extensions {
		res, err := harness.ScoreByLevel(p, 2, 3)
		if err != nil {
			return err
		}
		fmt.Println(res.Rendered)
		return nil
	}
	if fig != "" {
		return runFigure(p, fig, seed)
	}
	if table != "" {
		return runTable(p, table, jsonPath)
	}
	if summaryOnly {
		return runSummary(p)
	}
	// Full campaign: every table, every figure, then the summary.
	for _, id := range []string{"I", "II", "III", "IV", "V", "VI"} {
		if err := runTable(p, id, jsonPath); err != nil {
			return err
		}
	}
	if err := runFigure(p, "2", seed); err != nil {
		return err
	}
	if err := runFigure(p, "1", seed); err != nil {
		return err
	}
	return runSummary(p)
}

func runTable(p harness.Preset, id string, jsonPath string) error {
	var res harness.TableResult
	var err error
	switch strings.ToUpper(id) {
	case "I":
		res, err = harness.SequentialTimes(p, p.SeedsLo)
	case "II":
		res, err = harness.FirstMoveRoundRobin(p)
	case "III":
		res, err = harness.RolloutRoundRobin(p)
	case "IV":
		res, err = harness.FirstMoveLastMinute(p)
	case "V":
		res, err = harness.RolloutLastMinute(p)
	case "VI":
		res, err = harness.Heterogeneous(p)
	default:
		return fmt.Errorf("unknown table %q (want I..VI)", id)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Rendered)
	return exportJSON(jsonPath, p, res)
}

// exportJSON appends the tables' measurements to path; a no-op without a
// path or without measurements.
func exportJSON(path string, p harness.Preset, tables ...harness.TableResult) error {
	n := 0
	for _, t := range tables {
		n += len(t.Measurements)
	}
	if path == "" || n == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return harness.ExportJSON(f, p, tables...)
}

func runFigure(p harness.Preset, id string, seed uint64) error {
	switch id {
	case "1":
		out, err := harness.Figure1(p, seed)
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "2", "3", "4", "5":
		out, err := harness.ProtocolFigures(p)
		if err != nil {
			return err
		}
		fmt.Println(out)
	default:
		return fmt.Errorf("unknown figure %q (want 1..5)", id)
	}
	return nil
}

func runAblations(p harness.Preset) error {
	disp, _, err := harness.DispatcherAblation(p)
	if err != nil {
		return err
	}
	fmt.Println(disp.Rendered)
	med, _, err := harness.MedianAblation(p, []int{2, 8, 40, 80})
	if err != nil {
		return err
	}
	fmt.Println(med.Rendered)
	mem, err := harness.MemorizationAblation(p, 4)
	if err != nil {
		return err
	}
	fmt.Println(mem.Rendered)
	return nil
}

func runSchedulers(p harness.Preset, jsonPath string) error {
	sweep, err := harness.SchedulerSweep(p, nil)
	if err != nil {
		return err
	}
	fmt.Println(sweep.Rendered)
	straggler, _, err := harness.StragglerAblation(p)
	if err != nil {
		return err
	}
	fmt.Println(straggler.Rendered)
	return exportJSON(jsonPath, p, sweep, straggler)
}

func runSummary(p harness.Preset) error {
	tII, err := harness.FirstMoveRoundRobin(p)
	if err != nil {
		return err
	}
	tIV, err := harness.FirstMoveLastMinute(p)
	if err != nil {
		return err
	}
	tVI, err := harness.Heterogeneous(p)
	if err != nil {
		return err
	}
	fmt.Println(harness.SummaryText(p, tII, tIV, tVI))
	return nil
}
