package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/morpion"
	"repro/internal/parallel"
)

// testPreset is a minimal campaign so the command paths run in seconds.
func testPreset() harness.Preset {
	return harness.Preset{
		Scale: harness.ScaleCI, Variant: morpion.Var4D,
		LevelLo: 2, LevelHi: 3,
		CountsLo: []int{1, 4},
		SeedsLo:  1,
		JobScale: 4000, UnitCost: 5 * time.Microsecond,
		Medians: 16, Fig1Level: 1,
	}
}

func TestRunSingleTable(t *testing.T) {
	for _, id := range []string{"I", "II", "VI"} {
		if err := run(testPreset(), id, "", false, false, false, false, "", 1); err != nil {
			t.Fatalf("table %s: %v", id, err)
		}
	}
}

func TestRunFigures(t *testing.T) {
	if err := run(testPreset(), "", "2", false, false, false, false, "", 1); err != nil {
		t.Fatalf("protocol figures: %v", err)
	}
	if err := run(testPreset(), "", "1", false, false, false, false, "", 1); err != nil {
		t.Fatalf("figure 1: %v", err)
	}
}

func TestRunSummary(t *testing.T) {
	if err := run(testPreset(), "", "", true, false, false, false, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedulers(t *testing.T) {
	p := testPreset()
	if err := run(p, "", "", false, false, true, false, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := run(testPreset(), "II", "", false, false, false, false, path, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := harness.ImportJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Cells) == 0 {
		t.Fatal("no cells exported")
	}
	if c.Cells[0].Algorithm != parallel.RoundRobin.String() {
		t.Fatalf("wrong algorithm in export: %q", c.Cells[0].Algorithm)
	}
}

func TestRunUnknownTableAndFigure(t *testing.T) {
	if err := run(testPreset(), "IX", "", false, false, false, false, "", 1); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run(testPreset(), "", "9", false, false, false, false, "", 1); err == nil {
		t.Error("unknown figure accepted")
	}
}
