// Command pnmcs-loadgen drives a running pnmcsd with an open-loop job
// stream and reports what the service plane did under that load: the
// submit-to-terminal latency distribution (p50/p90/p99/max), the shed
// rates of both admission layers (503 saturation, 429 tenant quota),
// and the per-pool utilization sampled from /v1/pools while the storm
// ran.
//
// Open loop means arrivals follow the target rate regardless of how the
// service is coping — the generator never slows down to flatter the
// daemon, so saturation behaviour (shedding, queue depth, spillover) is
// actually exercised rather than hidden by a polite closed loop.
//
// The generator is also the routing-equivalence harness of the sharded
// plane: every -dup-every'th spec is submitted twice with the same seed,
// and the two results — typically placed on different pools — must be
// bit-identical (score, steps, rollouts, work units, sequence). Any
// divergence is a correctness failure: routing must be placement, never
// semantics. The process exits non-zero on divergence or failed jobs.
//
// Usage against a local daemon:
//
//	pnmcsd -addr :8723 -pools 2 -slots 2 &
//	pnmcs-loadgen -addr http://127.0.0.1:8723 -rate 40 -duration 30s -out LOADGEN_2026-08-08.json
//
// The -out artifact (schema pnmcs-loadgen/v1) is the latency/shed trend
// committed alongside BENCH_*.json; CI's scale-smoke job regenerates it
// on every push.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8723", "base URL of the pnmcsd under test")
	rate := flag.Float64("rate", 40, "target arrival rate, jobs/second (open loop)")
	duration := flag.Duration("duration", 30*time.Second, "how long to generate arrivals")
	tenants := flag.Int("tenants", 4, "spread submissions across this many tenant labels")
	dupEvery := flag.Int("dup-every", 8, "submit every Nth spec twice (same seed) and require bit-identical results; 0 disables")
	seed := flag.Uint64("seed", 1, "seed of the spec stream (the run is reproducible per seed)")
	jobWait := flag.Duration("job-wait", 2*time.Minute, "give up on one job's event stream after this long")
	sample := flag.Duration("sample", 500*time.Millisecond, "/v1/pools utilization sampling period")
	minEq := flag.Int("min-eq", 0, "fail unless at least this many twin pairs were equivalence-checked (CI guard against a vacuous run)")
	out := flag.String("out", "", "write the pnmcs-loadgen/v1 trend JSON here (default stdout summary only)")
	flag.Parse()
	if *rate <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -rate and -duration must be positive")
		os.Exit(2)
	}

	g := &generator{
		base:    strings.TrimRight(*addr, "/"),
		client:  &http.Client{Timeout: *jobWait},
		rng:     rng.New(*seed),
		wait:    *jobWait,
		pending: make(map[string]jobResult),
	}
	if err := g.ping(); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: daemon not reachable: %v\n", err)
		os.Exit(2)
	}

	ctx, cancel := context.WithCancel(context.Background())
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		g.samplePools(ctx, *sample)
	}()

	interval := time.Duration(float64(time.Second) / *rate)
	start := time.Now()
	deadline := start.Add(*duration)
	ticker := time.NewTicker(interval)
	var wg sync.WaitGroup
	n := 0
	for now := start; now.Before(deadline); now = <-ticker.C {
		spec := g.nextSpec(n, *tenants)
		dup := *dupEvery > 0 && n%*dupEvery == *dupEvery-1
		runs := 1
		if dup {
			runs = 2
		}
		for r := 0; r < runs; r++ {
			wg.Add(1)
			go func(spec map[string]any, dupKey string) {
				defer wg.Done()
				g.runJob(spec, dupKey)
			}(spec, dupKeyOf(spec, dup))
		}
		n++
	}
	ticker.Stop()
	wg.Wait()
	cancel()
	<-samplerDone
	elapsed := time.Since(start)

	rep := g.report(*rate, elapsed)
	text := rep.summary()
	fmt.Println(text)
	if *out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *out, err)
			os.Exit(2)
		}
	}
	if rep.Equivalence.Failures > 0 || rep.Jobs.Failed > 0 {
		os.Exit(1)
	}
	if rep.Equivalence.Checked < *minEq {
		fmt.Fprintf(os.Stderr, "loadgen: only %d twin pairs checked, need %d (-min-eq)\n", rep.Equivalence.Checked, *minEq)
		os.Exit(1)
	}
}

// jobResult is the slice of a final status the equivalence check
// compares: every field a client could act on. Sequence stays raw JSON —
// the generator does not need to understand moves to demand they match.
type jobResult struct {
	Score     float64         `json:"score"`
	Steps     int             `json:"steps"`
	Rollouts  int64           `json:"rollouts"`
	WorkUnits int64           `json:"work_units"`
	Sequence  json.RawMessage `json:"sequence"`
}

func (a jobResult) equal(b jobResult) bool {
	return a.Score == b.Score && a.Steps == b.Steps &&
		a.Rollouts == b.Rollouts && a.WorkUnits == b.WorkUnits &&
		bytes.Equal(bytes.TrimSpace(a.Sequence), bytes.TrimSpace(b.Sequence))
}

type generator struct {
	base   string
	client *http.Client
	wait   time.Duration

	mu        sync.Mutex
	rng       *rng.Rand
	latencies []time.Duration
	accepted  int
	saturated int
	quota     int
	failed    []string // failure descriptions, first few reported
	completed int
	cancelled int

	pending   map[string]jobResult // dup key → first result
	eqChecked int
	eqFailed  []string

	utilSamples map[int][]float64 // pool → utilization series
	poolsSeen   int
}

func (g *generator) ping() error {
	resp, err := g.client.Get(g.base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// nextSpec draws the n-th job of the stream: mixed domains weighted
// toward fast jobs (the storm is about the service plane, not about
// deep searches), explicit seeds so duplicate submissions are possible,
// tenant labels round-robin.
func (g *generator) nextSpec(n, tenants int) map[string]any {
	g.mu.Lock()
	seed := 1 + g.rng.Uint64n(math.MaxUint64-1)
	boardSeed := 1 + g.rng.Uint64n(1<<20)
	g.mu.Unlock()
	spec := map[string]any{
		"level":    2,
		"seed":     seed,
		"memorize": true,
		"tenant":   fmt.Sprintf("tenant-%d", n%max(1, tenants)),
	}
	switch n % 4 {
	case 0, 1:
		spec["domain"] = "sudoku"
		spec["box"] = 2
	case 2:
		spec["domain"] = "samegame"
		spec["width"], spec["height"], spec["colors"] = 5, 5, 3
		spec["board_seed"] = boardSeed
	case 3:
		spec["domain"] = "morpion"
		spec["variant"] = "4D"
		spec["first_move_only"] = true
	}
	return spec
}

// dupKeyOf identifies a duplicated (spec, seed) pair; "" means the job
// is not part of an equivalence pair.
func dupKeyOf(spec map[string]any, dup bool) string {
	if !dup {
		return ""
	}
	blob, _ := json.Marshal(spec) //nolint:errcheck // spec is map[string]any of scalars
	return string(blob)
}

// runJob submits one spec and follows its event stream to the terminal
// status, accounting latency, sheds and equivalence.
func (g *generator) runJob(spec map[string]any, dupKey string) {
	body, _ := json.Marshal(spec) //nolint:errcheck // spec is map[string]any of scalars
	t0 := time.Now()
	resp, err := g.client.Post(g.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		g.fail("submit: " + err.Error())
		return
	}
	blob, _ := io.ReadAll(resp.Body) //nolint:errcheck // status code drives the verdict
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusServiceUnavailable:
		g.mu.Lock()
		g.saturated++
		g.mu.Unlock()
		return
	case http.StatusTooManyRequests:
		g.mu.Lock()
		g.quota++
		g.mu.Unlock()
		return
	default:
		g.fail(fmt.Sprintf("submit: %s: %s", resp.Status, bytes.TrimSpace(blob)))
		return
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(blob, &st); err != nil || st.ID == "" {
		g.fail("submit response: " + string(blob))
		return
	}
	g.mu.Lock()
	g.accepted++
	g.mu.Unlock()

	final, state, err := g.follow(st.ID)
	lat := time.Since(t0)
	if err != nil {
		g.fail(fmt.Sprintf("%s: %v", st.ID, err))
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.latencies = append(g.latencies, lat)
	switch state {
	case "done":
		g.completed++
	case "cancelled":
		g.cancelled++
		return
	default:
		if len(g.failed) < 16 {
			g.failed = append(g.failed, fmt.Sprintf("%s ended %s", st.ID, state))
		}
		return
	}
	if dupKey == "" {
		return
	}
	first, ok := g.pending[dupKey]
	if !ok {
		g.pending[dupKey] = final
		return
	}
	delete(g.pending, dupKey)
	g.eqChecked++
	if !first.equal(final) {
		g.eqFailed = append(g.eqFailed, fmt.Sprintf(
			"%s: twin runs diverged: score %v/%v steps %d/%d rollouts %d/%d units %d/%d",
			dupKey, first.Score, final.Score, first.Steps, final.Steps,
			first.Rollouts, final.Rollouts, first.WorkUnits, final.WorkUnits))
	}
}

// follow reads the job's ndjson event stream to its last line — the
// guaranteed terminal snapshot.
func (g *generator) follow(id string) (jobResult, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), g.wait)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return jobResult{}, "", err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return jobResult{}, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobResult{}, "", fmt.Errorf("events: %s", resp.Status)
	}
	var last []byte
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				break
			}
			return jobResult{}, "", fmt.Errorf("events: %w", err)
		}
		last = raw
	}
	if last == nil {
		return jobResult{}, "", fmt.Errorf("empty event stream")
	}
	var fin struct {
		jobResult
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(last, &fin); err != nil {
		return jobResult{}, "", fmt.Errorf("terminal event: %w", err)
	}
	if fin.State == "failed" {
		return fin.jobResult, fin.State, fmt.Errorf("job failed: %s", fin.Error)
	}
	return fin.jobResult, fin.State, nil
}

func (g *generator) fail(what string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.failed) < 16 {
		g.failed = append(g.failed, what)
	}
}

// samplePools polls /v1/pools for per-pool utilization until ctx ends.
func (g *generator) samplePools(ctx context.Context, period time.Duration) {
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		resp, err := g.client.Get(g.base + "/v1/pools")
		if err != nil {
			continue
		}
		var rm struct {
			PerPool []struct {
				Pool        int     `json:"pool"`
				Utilization float64 `json:"utilization"`
			} `json:"pools"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rm)
		resp.Body.Close()
		if err != nil {
			continue
		}
		g.mu.Lock()
		if g.utilSamples == nil {
			g.utilSamples = make(map[int][]float64)
		}
		g.poolsSeen = len(rm.PerPool)
		for _, ps := range rm.PerPool {
			g.utilSamples[ps.Pool] = append(g.utilSamples[ps.Pool], ps.Utilization)
		}
		g.mu.Unlock()
	}
}

// Report is the pnmcs-loadgen/v1 trend artifact.
type Report struct {
	Schema    string  `json:"schema"`
	Generated string  `json:"generated"`
	Go        string  `json:"go"`
	TargetQPS float64 `json:"target_qps"`
	Elapsed   float64 `json:"elapsed_seconds"`

	Jobs struct {
		Submitted     int `json:"submitted"`
		Accepted      int `json:"accepted"`
		ShedSaturated int `json:"shed_saturated"`
		ShedQuota     int `json:"shed_quota"`
		Completed     int `json:"completed"`
		Cancelled     int `json:"cancelled"`
		Failed        int `json:"failed"`
	} `json:"jobs"`
	ShedRate float64 `json:"shed_rate"`

	LatencyMillis struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`

	Pools []PoolTrend `json:"pools"`

	Equivalence struct {
		Checked  int      `json:"checked"`
		Failures int      `json:"failures"`
		Details  []string `json:"details,omitempty"`
	} `json:"equivalence"`

	Failures []string `json:"failures,omitempty"`
}

// PoolTrend is one pool's utilization over the run.
type PoolTrend struct {
	Pool     int     `json:"pool"`
	MeanUtil float64 `json:"mean_utilization"`
	MaxUtil  float64 `json:"max_utilization"`
	Samples  int     `json:"samples"`
}

func (g *generator) report(targetQPS float64, elapsed time.Duration) Report {
	g.mu.Lock()
	defer g.mu.Unlock()
	var rep Report
	rep.Schema = "pnmcs-loadgen/v1"
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.Go = runtime.Version()
	rep.TargetQPS = targetQPS
	rep.Elapsed = elapsed.Seconds()

	rep.Jobs.Accepted = g.accepted
	rep.Jobs.ShedSaturated = g.saturated
	rep.Jobs.ShedQuota = g.quota
	rep.Jobs.Submitted = g.accepted + g.saturated + g.quota + len(g.failed)
	rep.Jobs.Completed = g.completed
	rep.Jobs.Cancelled = g.cancelled
	rep.Jobs.Failed = len(g.failed)
	if rep.Jobs.Submitted > 0 {
		rep.ShedRate = float64(g.saturated+g.quota) / float64(rep.Jobs.Submitted)
	}

	if len(g.latencies) > 0 {
		s := append([]time.Duration(nil), g.latencies...)
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		pct := func(p float64) float64 {
			return float64(s[int(p*float64(len(s)-1))]) / float64(time.Millisecond)
		}
		rep.LatencyMillis.P50 = pct(0.50)
		rep.LatencyMillis.P90 = pct(0.90)
		rep.LatencyMillis.P99 = pct(0.99)
		rep.LatencyMillis.Max = float64(s[len(s)-1]) / float64(time.Millisecond)
	}

	for pool := 0; pool < g.poolsSeen; pool++ {
		samples := g.utilSamples[pool]
		tr := PoolTrend{Pool: pool, Samples: len(samples)}
		for _, u := range samples {
			tr.MeanUtil += u
			if u > tr.MaxUtil {
				tr.MaxUtil = u
			}
		}
		if len(samples) > 0 {
			tr.MeanUtil /= float64(len(samples))
		}
		rep.Pools = append(rep.Pools, tr)
	}

	rep.Equivalence.Checked = g.eqChecked
	rep.Equivalence.Failures = len(g.eqFailed)
	rep.Equivalence.Details = g.eqFailed
	rep.Failures = g.failed
	return rep
}

// summary renders the human-readable digest printed after every run.
func (r Report) summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d submitted in %.1fs (target %.3g/s): %d accepted, %d shed 503, %d shed 429, %d failed\n",
		r.Jobs.Submitted, r.Elapsed, r.TargetQPS, r.Jobs.Accepted, r.Jobs.ShedSaturated, r.Jobs.ShedQuota, r.Jobs.Failed)
	fmt.Fprintf(&b, "latency ms: p50 %.1f p90 %.1f p99 %.1f max %.1f; shed rate %.1f%%\n",
		r.LatencyMillis.P50, r.LatencyMillis.P90, r.LatencyMillis.P99, r.LatencyMillis.Max, 100*r.ShedRate)
	for _, p := range r.Pools {
		fmt.Fprintf(&b, "pool %d: mean utilization %.0f%%, peak %.0f%% (%d samples)\n",
			p.Pool, 100*p.MeanUtil, 100*p.MaxUtil, p.Samples)
	}
	fmt.Fprintf(&b, "routing equivalence: %d twin pairs checked, %d failures",
		r.Equivalence.Checked, r.Equivalence.Failures)
	for _, d := range r.Equivalence.Details {
		fmt.Fprintf(&b, "\n  FAIL %s", d)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  job failure: %s", f)
	}
	return b.String()
}
