// Command pnmcsd serves nested Monte-Carlo searches over HTTP: the
// long-lived, multi-tenant form of the paper's root/median/client cluster
// (see internal/service). Workers are built once at startup and reused
// across every request; concurrent jobs are multiplexed onto them with
// bounded-queue backpressure.
//
// Start a daemon:
//
//	pnmcsd -addr :8723 -slots 4 -medians 4 -clients 8 -queue 16
//
// Submit a job (any bundled domain, any level ≥ 2):
//
//	curl -s -X POST localhost:8723/v1/jobs -d \
//	  '{"domain":"morpion","variant":"5D","level":2,"seed":7,"memorize":true}'
//	→ {"id":"job-1","state":"queued",...}
//
// Poll it, cancel it, watch the pool:
//
//	curl -s localhost:8723/v1/jobs/job-1      # status + streaming progress
//	curl -s -X DELETE localhost:8723/v1/jobs/job-1
//	curl -s localhost:8723/healthz            # liveness: process is up
//	curl -s localhost:8723/readyz             # readiness: 503 when draining or below the worker floor
//	curl -s localhost:8723/metrics            # idle / queue-depth counters
//
// A saturated service answers POST /v1/jobs with 503 and Retry-After
// instead of queueing unboundedly. SIGINT/SIGTERM drains gracefully:
// queued jobs are cancelled, running jobs finish (bounded by -drain),
// and the pool is torn down with no work in flight.
//
// With -workers > 0 the degradation policy decides what a permanently
// lost worker costs: -replace-grace bounds how long its slot waits for a
// replacement, after which -degrade either re-maps the dead ranks onto
// the survivors (down to -min-workers) or fails running jobs fast; either
// way -job-retries re-queues failed jobs under their original seed, so a
// revived pool finishes them bit-identical to an undisturbed run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/parallel"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	slots := flag.Int("slots", 4, "concurrent jobs served at once")
	medians := flag.Int("medians", 4, "shared median workers")
	clients := flag.Int("clients", 8, "shared rollout workers")
	queue := flag.Int("queue", 16, "jobs queued beyond the running slots before 503")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for running jobs")
	workers := flag.Int("workers", 0, "serve medians+clients from this many pnmcs-worker processes (0 = in-process)")
	workerListen := flag.String("worker-listen", "127.0.0.1:8724", "TCP address pnmcs-worker processes dial (with -workers); set -worker-token before binding a non-loopback interface")
	workerToken := flag.String("worker-token", "", "shared secret pnmcs-worker processes must present at handshake (empty = accept any; loopback only)")
	degrade := flag.Bool("degrade", true, "keep finishing jobs on a shrunken pool after a worker is abandoned (false = fail running jobs fast instead)")
	minWorkers := flag.Int("min-workers", 1, "degraded floor: fail fast once fewer workers survive (with -degrade)")
	replaceGrace := flag.Duration("replace-grace", 10*time.Second, "give a lost worker's slot up after waiting this long for a replacement (0 = wait forever)")
	jobRetries := flag.Int("job-retries", 2, "re-queue a failed job up to this many times under its original seed")
	evaluator := flag.String("evaluator", "", "default rollout evaluator for jobs that don't name one (e.g. \"heuristic\"; empty = uniform playouts)")
	evalBatch := flag.Int("eval-batch", 0, "per-worker evaluation batch size (0 = default 8)")
	evalFlush := flag.Duration("eval-flush", 0, "flush a partial evaluation batch after this long (0 = default 2ms)")
	cacheMB := flag.Int("cache-mb", 0, "shared transposition cache size in MB, serving jobs submitted with \"cache\":true (0 = default 64)")
	cacheVerify := flag.Bool("cache-verify", false, "recompute every transposition-cache hit and crash on mismatch (debug)")
	speculate := flag.Int("speculate", 0, "async pipelined root: speculate the next step's candidates for this many partial-score leaders (0 = synchronous; results identical either way)")
	flag.Parse()

	mgr, err := service.New(service.Config{
		Slots:        *slots,
		Medians:      *medians,
		Clients:      *clients,
		QueueLimit:   *queue,
		Algo:         parallel.LastMinute,
		Evaluator:    *evaluator,
		EvalBatch:    *evalBatch,
		EvalFlush:    *evalFlush,
		Workers:      *workers,
		WorkerListen: *workerListen,
		WorkerToken:  *workerToken,
		Degrade:      *degrade,
		MinWorkers:   *minWorkers,
		ReplaceGrace: *replaceGrace,
		Retry:        service.RetryPolicy{Max: *jobRetries},
		CacheMB:      *cacheMB,
		CacheVerify:  *cacheVerify,
		Speculate:    *speculate,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: newMux(mgr)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("pnmcsd listening on %s: %d slots, %d medians, %d clients, queue %d",
		*addr, *slots, *medians, *clients, *queue)
	if *workers > 0 {
		log.Printf("distributed pool: expecting %d pnmcs-worker processes on %s", *workers, mgr.WorkerAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%v: draining (budget %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck // job drain below is the real teardown
	if err := mgr.Shutdown(ctx); err != nil {
		log.Printf("forced drain: %v", err)
	}
	log.Print("pnmcsd stopped")
}

// newMux wires the API routes onto a fresh mux. Split from main so the
// handler tests can drive the full HTTP surface without a socket.
func newMux(mgr *service.Manager) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(mgr, w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, mgr.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := mgr.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := mgr.Cancel(id); err != nil {
			writeError(w, err)
			return
		}
		st, err := mgr.Get(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	// Liveness and readiness are deliberately split: /healthz answers "is
	// the process up" and nothing else, so an orchestrator never restarts
	// a daemon that is merely draining or waiting out a worker outage;
	// /readyz is the traffic gate that goes 503 in those states.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		code, body := readiness(mgr.Metrics(), mgr.Draining())
		writeJSON(w, code, body)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeMetrics(w, mgr.Metrics())
	})
	return mux
}

// readiness maps the service state onto a readiness verdict. Split from
// the handler so tests can drive the degraded and failed states without
// staging a real worker outage. Draining and a pool below its worker
// floor are not ready (503); a degraded-but-serving pool stays ready —
// capacity is reduced, correctness is not.
func readiness(m service.Metrics, draining bool) (int, map[string]any) {
	status, code := "ok", http.StatusOK
	switch {
	case draining:
		status, code = "draining", http.StatusServiceUnavailable
	case m.Pool.Failed:
		status, code = "failed", http.StatusServiceUnavailable
	case m.Pool.Degraded:
		status = "degraded"
	}
	body := map[string]any{
		"status":   status,
		"draining": draining,
		"degraded": m.Pool.Degraded,
		"slots":    m.Slots,
		"running":  m.Running,
		"queued":   m.Queued,
	}
	if n := m.Pool.Net; n != nil {
		body["workers_live"] = n.Workers
		body["workers_abandoned"] = m.Pool.WorkersAbandoned
	}
	return code, body
}

func handleSubmit(mgr *service.Manager, w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job spec: " + err.Error()})
		return
	}
	// Fire-and-forget: the job's lifetime is owned by the service, not by
	// this request's context.
	id, err := mgr.Submit(context.Background(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	st, err := mgr.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// writeError maps service errors onto HTTP statuses: saturation is the
// documented 503 (with Retry-After), unknown ids 404, finished jobs 409,
// shutdown 503, anything else a 400 (the spec was at fault).
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrSaturated):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, service.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, service.ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	case errors.Is(err, service.ErrFinished):
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// writeMetrics renders the service counters and the pool's idle /
// queue-depth instrumentation in Prometheus text exposition format.
func writeMetrics(w http.ResponseWriter, m service.Metrics) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	emit := func(name, typ, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	emit("pnmcs_jobs_submitted_total", "counter", "jobs accepted by Submit", m.Submitted)
	emit("pnmcs_jobs_rejected_total", "counter", "submissions shed with 503 (queue full)", m.Rejected)
	emit("pnmcs_jobs_completed_total", "counter", "jobs finished normally", m.Completed)
	emit("pnmcs_jobs_cancelled_total", "counter", "jobs cancelled", m.Cancelled)
	emit("pnmcs_jobs_failed_total", "counter", "jobs failed", m.Failed)
	emit("pnmcs_job_retries_total", "counter", "failed jobs re-queued under their original seed", m.Retried)
	emit("pnmcs_jobs_running", "gauge", "jobs on a slot now", m.Running)
	emit("pnmcs_jobs_queued", "gauge", "jobs waiting for a slot", m.Queued)
	emit("pnmcs_slots", "gauge", "concurrent job capacity", m.Slots)
	emit("pnmcs_pool_rollouts_total", "counter", "client rollouts executed", m.Pool.Jobs)
	emit("pnmcs_pool_work_units_total", "counter", "metered rollout work units", m.Pool.WorkUnits)
	emit("pnmcs_pool_queue_depth_max", "gauge", "peak scheduler ready-queue depth", m.Pool.QueueDepthMax)
	emit("pnmcs_pool_queue_depth_mean", "gauge", "mean scheduler ready-queue depth", m.Pool.QueueDepthMean)
	// Evaluation batching (coordinator-resident batcher; a remote worker's
	// batcher accounts in its own process, like the idle counters).
	emit("pnmcs_eval_batches_total", "counter", "evaluation batches flushed", m.Pool.EvalBatches)
	emit("pnmcs_eval_requests_total", "counter", "rollout positions evaluated through the batcher", m.Pool.EvalRequests)
	emit("pnmcs_eval_flush_size_total", "counter", "batches flushed by reaching the batch size", m.Pool.EvalFlushSize)
	emit("pnmcs_eval_flush_deadline_total", "counter", "partial batches flushed by the deadline timer", m.Pool.EvalFlushDeadline)
	emit("pnmcs_eval_batch_max", "gauge", "largest evaluation batch flushed", m.Pool.EvalBatchMax)
	emit("pnmcs_eval_flush_seconds_total", "counter", "cumulative wait of each flushed batch's oldest request", m.Pool.EvalFlushWait.Seconds())
	// Async pipelined root: speculation economics and per-step latency.
	emit("pnmcs_spec_speculated_total", "counter", "next-step candidates dispatched speculatively", m.Pool.Speculated)
	emit("pnmcs_spec_wasted_total", "counter", "speculative rollouts charged to losing branches", m.Pool.SpecWasted)
	emit("pnmcs_step_latency_count", "counter", "root steps timed", m.Pool.StepCount)
	emit("pnmcs_step_latency_seconds_total", "counter", "cumulative root-step latency", m.Pool.StepLatencySum.Seconds())
	emit("pnmcs_step_latency_seconds_max", "gauge", "slowest root step observed", m.Pool.StepLatencyMax.Seconds())
	emit("pnmcs_cache_hits_total", "counter", "transposition-cache hits (coordinator-resident cache)", m.Pool.CacheHits)
	emit("pnmcs_cache_misses_total", "counter", "transposition-cache misses (coordinator-resident cache)", m.Pool.CacheMisses)
	emit("pnmcs_cache_evictions_total", "counter", "transposition-cache entries evicted to stay in budget", m.Pool.CacheEvictions)
	emit("pnmcs_cache_entries", "gauge", "transposition-cache entries resident", m.Pool.CacheEntries)
	emit("pnmcs_cache_bytes", "gauge", "transposition-cache bytes resident", m.Pool.CacheBytes)
	// Per-rank idle series: co-resident workers account directly, remote
	// workers push theirs on every heartbeat pong and on the goodbye
	// frame, so the series exist on every transport.
	for i, d := range m.Pool.MedianIdle {
		fmt.Fprintf(&b, "pnmcs_pool_median_idle_seconds{median=\"%d\"} %g\n", i, d.Seconds())
	}
	for i, d := range m.Pool.ClientIdle {
		fmt.Fprintf(&b, "pnmcs_pool_client_idle_seconds{client=\"%d\"} %g\n", i, d.Seconds())
	}
	if n := m.Pool.Net; n != nil {
		emit("pnmcs_worker_lost_total", "counter", "worker connections lost before teardown", m.Pool.WorkersLost)
		emit("pnmcs_worker_rejoined_total", "counter", "replacement workers that reclaimed a lost slot", m.Pool.WorkersRejoined)
		emit("pnmcs_worker_regranted_total", "counter", "candidate grants re-queued after worker loss", m.Pool.Regranted)
		emit("pnmcs_worker_abandoned_total", "counter", "lost workers given up on (grace expired or pending queue overflowed)", m.Pool.WorkersAbandoned)
		emit("pnmcs_pool_degraded", "gauge", "1 while the pool runs on a shrunken world (abandoned workers not yet revived)", b2i(m.Pool.Degraded))
		emit("pnmcs_pool_failed", "gauge", "1 while the surviving world is below the worker floor and jobs fail fast", b2i(m.Pool.Failed))
		emit("pnmcs_net_workers", "gauge", "worker processes connected", n.Workers)
		emit("pnmcs_net_frames_sent_total", "counter", "frames sent to workers", n.FramesSent)
		emit("pnmcs_net_frames_recv_total", "counter", "frames received from workers", n.FramesRecv)
		emit("pnmcs_net_bytes_sent_total", "counter", "frame bytes sent to workers", n.BytesSent)
		emit("pnmcs_net_bytes_recv_total", "counter", "frame bytes received from workers", n.BytesRecv)
		emit("pnmcs_net_encode_seconds_total", "counter", "codec time spent encoding frames", float64(n.EncodeNs)/1e9)
		emit("pnmcs_net_decode_seconds_total", "counter", "codec time spent decoding frames", float64(n.DecodeNs)/1e9)
	}
	w.Write([]byte(b.String())) //nolint:errcheck // client went away; nothing to do
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
