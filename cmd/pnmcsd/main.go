// Command pnmcsd serves nested Monte-Carlo searches over HTTP: the
// long-lived, multi-tenant form of the paper's root/median/client cluster
// (see internal/service). Workers are built once at startup and reused
// across every request; concurrent jobs are multiplexed onto them with
// bounded-queue backpressure.
//
// Start a daemon:
//
//	pnmcsd -addr :8723 -slots 4 -medians 4 -clients 8 -queue 16
//
// Submit a job (any bundled domain, any level ≥ 2):
//
//	curl -s -X POST localhost:8723/v1/jobs -d \
//	  '{"domain":"morpion","variant":"5D","level":2,"seed":7,"memorize":true}'
//	→ {"id":"job-1","state":"queued",...}
//
// Poll it, stream it, cancel it, watch the pools:
//
//	curl -s localhost:8723/v1/jobs/job-1         # status snapshot
//	curl -sN localhost:8723/v1/jobs/job-1/events # live progress, one JSON status per line until terminal
//	curl -s -X DELETE localhost:8723/v1/jobs/job-1
//	curl -s localhost:8723/v1/pools              # per-pool breakdown + tenant-shed ledger
//	curl -s localhost:8723/healthz               # liveness: process is up
//	curl -s localhost:8723/readyz                # readiness: 503 when draining or below the worker floor
//	curl -s localhost:8723/metrics               # idle / queue-depth / shard counters
//
// -pools N shards the service plane across N independent worker pools
// behind one admission layer (placement never changes a job's result),
// and -tenant-qps puts a per-tenant token-bucket quota in front of the
// queue: a spec's "tenant" field over its rate is shed with 429 before
// it can displace anyone else's traffic. A saturated service answers
// POST /v1/jobs with 503 and Retry-After instead of queueing
// unboundedly. SIGINT/SIGTERM drains gracefully: queued jobs are
// cancelled, running jobs finish (bounded by -drain), event streams
// flush their terminal snapshot, and the pools are torn down with no
// work in flight.
//
// With -workers > 0 the degradation policy decides what a permanently
// lost worker costs: -replace-grace bounds how long its slot waits for a
// replacement, after which -degrade either re-maps the dead ranks onto
// the survivors (down to -min-workers) or fails running jobs fast; either
// way -job-retries re-queues failed jobs under their original seed, so a
// revived pool finishes them bit-identical to an undisturbed run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/parallel"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	slots := flag.Int("slots", 4, "concurrent jobs served at once")
	medians := flag.Int("medians", 4, "shared median workers")
	clients := flag.Int("clients", 8, "shared rollout workers")
	queue := flag.Int("queue", 16, "jobs queued beyond the running slots before 503 (per pool)")
	pools := flag.Int("pools", 1, "independent worker pools behind one admission layer (slots/medians/clients/queue are per pool; >1 requires -workers 0)")
	tenantQPS := flag.Float64("tenant-qps", 0, "per-tenant submission rate before 429 (0 = no quotas)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant burst allowance on top of -tenant-qps (0 = qps+1)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for running jobs")
	workers := flag.Int("workers", 0, "serve medians+clients from this many pnmcs-worker processes (0 = in-process)")
	workerListen := flag.String("worker-listen", "127.0.0.1:8724", "TCP address pnmcs-worker processes dial (with -workers); set -worker-token before binding a non-loopback interface")
	workerToken := flag.String("worker-token", "", "shared secret pnmcs-worker processes must present at handshake (empty = accept any; loopback only)")
	degrade := flag.Bool("degrade", true, "keep finishing jobs on a shrunken pool after a worker is abandoned (false = fail running jobs fast instead)")
	minWorkers := flag.Int("min-workers", 1, "degraded floor: fail fast once fewer workers survive (with -degrade)")
	replaceGrace := flag.Duration("replace-grace", 10*time.Second, "give a lost worker's slot up after waiting this long for a replacement (0 = wait forever)")
	jobRetries := flag.Int("job-retries", 2, "re-queue a failed job up to this many times under its original seed")
	evaluator := flag.String("evaluator", "", "default rollout evaluator for jobs that don't name one (e.g. \"heuristic\"; empty = uniform playouts)")
	evalBatch := flag.Int("eval-batch", 0, "per-worker evaluation batch size (0 = default 8)")
	evalFlush := flag.Duration("eval-flush", 0, "flush a partial evaluation batch after this long (0 = default 2ms)")
	cacheMB := flag.Int("cache-mb", 0, "shared transposition cache size in MB, serving jobs submitted with \"cache\":true (0 = default 64)")
	cacheVerify := flag.Bool("cache-verify", false, "recompute every transposition-cache hit and crash on mismatch (debug)")
	speculate := flag.Int("speculate", 0, "async pipelined root: speculate the next step's candidates for this many partial-score leaders (0 = synchronous; results identical either way)")
	flag.Parse()

	rt, err := service.NewRouter(service.Config{
		Slots:        *slots,
		Medians:      *medians,
		Clients:      *clients,
		QueueLimit:   *queue,
		Pools:        *pools,
		TenantQPS:    *tenantQPS,
		TenantBurst:  *tenantBurst,
		Algo:         parallel.LastMinute,
		Evaluator:    *evaluator,
		EvalBatch:    *evalBatch,
		EvalFlush:    *evalFlush,
		Workers:      *workers,
		WorkerListen: *workerListen,
		WorkerToken:  *workerToken,
		Degrade:      *degrade,
		MinWorkers:   *minWorkers,
		ReplaceGrace: *replaceGrace,
		Retry:        service.RetryPolicy{Max: *jobRetries},
		CacheMB:      *cacheMB,
		CacheVerify:  *cacheVerify,
		Speculate:    *speculate,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: newMux(rt)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("pnmcsd listening on %s: %d pools x (%d slots, %d medians, %d clients, queue %d)",
		*addr, rt.Pools(), *slots, *medians, *clients, *queue)
	if *tenantQPS > 0 {
		log.Printf("tenant quotas: %.3g qps, burst %d", *tenantQPS, *tenantBurst)
	}
	if *workers > 0 {
		log.Printf("distributed pool: expecting %d pnmcs-worker processes on %s", *workers, rt.WorkerAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// Startup failures (bad listen address, port in use) are fatal;
		// ErrServerClosed only ever means an orderly Shutdown elsewhere
		// won the race and must not take the process down mid-drain.
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("%v: draining (budget %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// The HTTP drain and the job drain must overlap, not sequence: an
	// /events stream stays open until its job is terminal, so
	// srv.Shutdown can only complete after the router has drained — and
	// the terminal snapshots those streams flush are only guaranteed
	// delivered once srv.Shutdown has returned. Start both, wait for both.
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Shutdown(ctx) }()
	if err := rt.Shutdown(ctx); err != nil {
		log.Printf("forced drain: %v", err)
	}
	if err := <-httpDone; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http drain: %v", err)
	}
	log.Print("pnmcsd stopped")
}

// newMux wires the API routes onto a fresh mux. Split from main so the
// handler tests can drive the full HTTP surface without a socket. The
// daemon always serves through a Router — with -pools 1 it behaves
// exactly like the single Manager it wraps.
func newMux(rt *service.Router) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(rt, w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := rt.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		handleEvents(rt, w, r)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := rt.Cancel(id); err != nil {
			writeError(w, err)
			return
		}
		st, err := rt.Get(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/pools", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.Metrics())
	})
	// Liveness and readiness are deliberately split: /healthz answers "is
	// the process up" and nothing else, so an orchestrator never restarts
	// a daemon that is merely draining or waiting out a worker outage;
	// /readyz is the traffic gate that goes 503 in those states.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		rm := rt.Metrics()
		code, body := readiness(rm.Metrics, rt.Draining())
		writeJSON(w, code, body)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeRouterMetrics(w, rt.Metrics())
	})
	return mux
}

// handleEvents streams the job's status as chunked newline-delimited
// JSON: an immediate snapshot, then one line per observable change
// (latest-wins — a slow reader skips intermediate states, never stalls
// the search), always ending with the terminal status. The stream is the
// push form of polling GET /v1/jobs/{id}; a disconnected client just
// cancels its subscription, never the job.
func handleEvents(rt *service.Router, w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := rt.Watch(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, canFlush := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case st, ok := <-ch:
			if !ok {
				return // terminal snapshot already delivered
			}
			if err := enc.Encode(st); err != nil {
				return // client went away
			}
			if canFlush {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// readiness maps the service state onto a readiness verdict. Split from
// the handler so tests can drive the degraded and failed states without
// staging a real worker outage. Draining and a pool below its worker
// floor are not ready (503); a degraded-but-serving pool stays ready —
// capacity is reduced, correctness is not.
func readiness(m service.Metrics, draining bool) (int, map[string]any) {
	status, code := "ok", http.StatusOK
	switch {
	case draining:
		status, code = "draining", http.StatusServiceUnavailable
	case m.Pool.Failed:
		status, code = "failed", http.StatusServiceUnavailable
	case m.Pool.Degraded:
		status = "degraded"
	}
	body := map[string]any{
		"status":   status,
		"draining": draining,
		"degraded": m.Pool.Degraded,
		"slots":    m.Slots,
		"running":  m.Running,
		"queued":   m.Queued,
	}
	if n := m.Pool.Net; n != nil {
		body["workers_live"] = n.Workers
		body["workers_abandoned"] = m.Pool.WorkersAbandoned
	}
	return code, body
}

func handleSubmit(rt *service.Router, w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job spec: " + err.Error()})
		return
	}
	// Fire-and-forget: the job's lifetime is owned by the service, not by
	// this request's context.
	id, err := rt.Submit(context.Background(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	st, err := rt.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// writeError maps service errors onto HTTP statuses: saturation is the
// documented 503 (with Retry-After), a tenant over quota 429 (the
// per-tenant verdict, distinct from the whole plane being full), unknown
// ids 404, finished jobs 409, shutdown 503, anything else a 400 (the
// spec was at fault).
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrSaturated):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, service.ErrQuota):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, service.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, service.ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	case errors.Is(err, service.ErrFinished):
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// writeMetrics renders the service counters and the pool's idle /
// queue-depth instrumentation in Prometheus text exposition format.
func writeMetrics(w http.ResponseWriter, m service.Metrics) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write([]byte(metricsText(m))) //nolint:errcheck // client went away; nothing to do
}

// writeRouterMetrics renders the aggregate exposition plus the sharding
// plane's series: per-pool pnmcs_shard_* breakdowns and the admission
// layer's tenant-shed ledger.
func writeRouterMetrics(w http.ResponseWriter, rm service.RouterMetrics) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	b.WriteString(metricsText(rm.Metrics))
	shard := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	shard("pnmcs_shard_jobs_running", "gauge", "jobs on a slot now, by pool")
	for _, ps := range rm.PerPool {
		fmt.Fprintf(&b, "pnmcs_shard_jobs_running{pool=\"%d\"} %d\n", ps.Pool, ps.Metrics.Running)
	}
	shard("pnmcs_shard_jobs_queued", "gauge", "jobs waiting for a slot, by pool")
	for _, ps := range rm.PerPool {
		fmt.Fprintf(&b, "pnmcs_shard_jobs_queued{pool=\"%d\"} %d\n", ps.Pool, ps.Metrics.Queued)
	}
	shard("pnmcs_shard_jobs_submitted_total", "counter", "jobs placed on this pool")
	for _, ps := range rm.PerPool {
		fmt.Fprintf(&b, "pnmcs_shard_jobs_submitted_total{pool=\"%d\"} %d\n", ps.Pool, ps.Metrics.Submitted)
	}
	shard("pnmcs_shard_utilization", "gauge", "running/slots busy fraction, by pool")
	for _, ps := range rm.PerPool {
		fmt.Fprintf(&b, "pnmcs_shard_utilization{pool=\"%d\"} %g\n", ps.Pool, ps.Utilization)
	}
	fmt.Fprintf(&b, "# HELP pnmcs_pools number of independent pools behind the admission layer\n# TYPE pnmcs_pools gauge\npnmcs_pools %d\n", len(rm.PerPool))
	fmt.Fprintf(&b, "# HELP pnmcs_tenant_shed_total submissions shed by per-tenant quotas (429)\n# TYPE pnmcs_tenant_shed_total counter\npnmcs_tenant_shed_total %d\n", rm.TenantShed)
	fmt.Fprintf(&b, "# HELP pnmcs_tenants tenant token buckets tracked\n# TYPE pnmcs_tenants gauge\npnmcs_tenants %d\n", rm.Tenants)
	w.Write([]byte(b.String())) //nolint:errcheck // client went away; nothing to do
}

// metricsText builds the Prometheus exposition body for one Metrics
// snapshot (the single-pool series; writeRouterMetrics appends the
// shard-level series on top).
func metricsText(m service.Metrics) string {
	var b strings.Builder
	emit := func(name, typ, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	emit("pnmcs_jobs_submitted_total", "counter", "jobs accepted by Submit", m.Submitted)
	emit("pnmcs_jobs_rejected_total", "counter", "submissions shed with 503 (queue full)", m.Rejected)
	emit("pnmcs_jobs_completed_total", "counter", "jobs finished normally", m.Completed)
	emit("pnmcs_jobs_cancelled_total", "counter", "jobs cancelled", m.Cancelled)
	emit("pnmcs_jobs_failed_total", "counter", "jobs failed", m.Failed)
	emit("pnmcs_job_retries_total", "counter", "failed jobs re-queued under their original seed", m.Retried)
	emit("pnmcs_jobs_running", "gauge", "jobs on a slot now", m.Running)
	emit("pnmcs_jobs_queued", "gauge", "jobs waiting for a slot", m.Queued)
	emit("pnmcs_slots", "gauge", "concurrent job capacity", m.Slots)
	emit("pnmcs_pool_rollouts_total", "counter", "client rollouts executed", m.Pool.Jobs)
	emit("pnmcs_pool_work_units_total", "counter", "metered rollout work units", m.Pool.WorkUnits)
	emit("pnmcs_pool_queue_depth_max", "gauge", "peak scheduler ready-queue depth", m.Pool.QueueDepthMax)
	emit("pnmcs_pool_queue_depth_mean", "gauge", "mean scheduler ready-queue depth", m.Pool.QueueDepthMean)
	// Evaluation batching (coordinator-resident batcher; a remote worker's
	// batcher accounts in its own process, like the idle counters).
	emit("pnmcs_eval_batches_total", "counter", "evaluation batches flushed", m.Pool.EvalBatches)
	emit("pnmcs_eval_requests_total", "counter", "rollout positions evaluated through the batcher", m.Pool.EvalRequests)
	emit("pnmcs_eval_flush_size_total", "counter", "batches flushed by reaching the batch size", m.Pool.EvalFlushSize)
	emit("pnmcs_eval_flush_deadline_total", "counter", "partial batches flushed by the deadline timer", m.Pool.EvalFlushDeadline)
	emit("pnmcs_eval_batch_max", "gauge", "largest evaluation batch flushed", m.Pool.EvalBatchMax)
	emit("pnmcs_eval_flush_seconds_total", "counter", "cumulative wait of each flushed batch's oldest request", m.Pool.EvalFlushWait.Seconds())
	// Async pipelined root: speculation economics and per-step latency.
	emit("pnmcs_spec_speculated_total", "counter", "next-step candidates dispatched speculatively", m.Pool.Speculated)
	emit("pnmcs_spec_wasted_total", "counter", "speculative rollouts charged to losing branches", m.Pool.SpecWasted)
	emit("pnmcs_step_latency_count", "counter", "root steps timed", m.Pool.StepCount)
	emit("pnmcs_step_latency_seconds_total", "counter", "cumulative root-step latency", m.Pool.StepLatencySum.Seconds())
	emit("pnmcs_step_latency_seconds_max", "gauge", "slowest root step observed", m.Pool.StepLatencyMax.Seconds())
	emit("pnmcs_cache_hits_total", "counter", "transposition-cache hits (coordinator-resident cache)", m.Pool.CacheHits)
	emit("pnmcs_cache_misses_total", "counter", "transposition-cache misses (coordinator-resident cache)", m.Pool.CacheMisses)
	emit("pnmcs_cache_evictions_total", "counter", "transposition-cache entries evicted to stay in budget", m.Pool.CacheEvictions)
	emit("pnmcs_cache_entries", "gauge", "transposition-cache entries resident", m.Pool.CacheEntries)
	emit("pnmcs_cache_bytes", "gauge", "transposition-cache bytes resident", m.Pool.CacheBytes)
	// Per-rank idle series: co-resident workers account directly, remote
	// workers push theirs on every heartbeat pong and on the goodbye
	// frame, so the series exist on every transport.
	for i, d := range m.Pool.MedianIdle {
		fmt.Fprintf(&b, "pnmcs_pool_median_idle_seconds{median=\"%d\"} %g\n", i, d.Seconds())
	}
	for i, d := range m.Pool.ClientIdle {
		fmt.Fprintf(&b, "pnmcs_pool_client_idle_seconds{client=\"%d\"} %g\n", i, d.Seconds())
	}
	if n := m.Pool.Net; n != nil {
		emit("pnmcs_worker_lost_total", "counter", "worker connections lost before teardown", m.Pool.WorkersLost)
		emit("pnmcs_worker_rejoined_total", "counter", "replacement workers that reclaimed a lost slot", m.Pool.WorkersRejoined)
		emit("pnmcs_worker_regranted_total", "counter", "candidate grants re-queued after worker loss", m.Pool.Regranted)
		emit("pnmcs_worker_abandoned_total", "counter", "lost workers given up on (grace expired or pending queue overflowed)", m.Pool.WorkersAbandoned)
		emit("pnmcs_pool_degraded", "gauge", "1 while the pool runs on a shrunken world (abandoned workers not yet revived)", b2i(m.Pool.Degraded))
		emit("pnmcs_pool_failed", "gauge", "1 while the surviving world is below the worker floor and jobs fail fast", b2i(m.Pool.Failed))
		emit("pnmcs_net_workers", "gauge", "worker processes connected", n.Workers)
		emit("pnmcs_net_frames_sent_total", "counter", "frames sent to workers", n.FramesSent)
		emit("pnmcs_net_frames_recv_total", "counter", "frames received from workers", n.FramesRecv)
		emit("pnmcs_net_bytes_sent_total", "counter", "frame bytes sent to workers", n.BytesSent)
		emit("pnmcs_net_bytes_recv_total", "counter", "frame bytes received from workers", n.BytesRecv)
		emit("pnmcs_net_encode_seconds_total", "counter", "codec time spent encoding frames", float64(n.EncodeNs)/1e9)
		emit("pnmcs_net_decode_seconds_total", "counter", "codec time spent decoding frames", float64(n.DecodeNs)/1e9)
	}
	return b.String()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
