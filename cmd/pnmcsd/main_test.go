package main

// Handler-level tests of the pnmcsd HTTP surface: the full mux is driven
// through httptest recorders (no sockets), backed by a real Manager and
// worker pool.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/parallel"
	"repro/internal/service"
)

func newTestServer(t *testing.T, cfg service.Config) *http.ServeMux {
	t.Helper()
	rt, err := service.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rt.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	})
	return newMux(rt)
}

func do(mux *http.ServeMux, method, path, body string) *httptest.ResponseRecorder {
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func decodeStatus(t *testing.T, rec *httptest.ResponseRecorder) service.JobStatus {
	t.Helper()
	var st service.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad status JSON: %v\n%s", err, rec.Body.String())
	}
	return st
}

func TestSubmitStatusLifecycle(t *testing.T) {
	mux := newTestServer(t, service.Config{Slots: 2, Medians: 2, Clients: 2})

	rec := do(mux, "POST", "/v1/jobs", `{"domain":"sudoku","box":2,"level":2,"seed":1,"memorize":true}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", rec.Code, rec.Body.String())
	}
	st := decodeStatus(t, rec)
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("fresh job: %+v", st)
	}

	// Poll until terminal (the 4x4 grid finishes in well under a second).
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec = do(mux, "GET", "/v1/jobs/"+st.ID, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("status: %d", rec.Code)
		}
		st = decodeStatus(t, rec)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != service.StateDone || st.Score != 16 {
		t.Fatalf("final status: state %s score %v", st.State, st.Score)
	}

	// The listing contains it.
	rec = do(mux, "GET", "/v1/jobs", "")
	var all []service.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil || len(all) != 1 {
		t.Fatalf("listing: %v %s", err, rec.Body.String())
	}

	// Cancelling a finished job is a conflict.
	rec = do(mux, "DELETE", "/v1/jobs/"+st.ID, "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("cancel finished: %d", rec.Code)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	mux := newTestServer(t, service.Config{Slots: 1, Medians: 1, Clients: 1})
	for _, body := range []string{
		``,
		`not json`,
		`{"domain":"chess"}`,
		`{"domain":"morpion","level":1}`,
		`{"domain":"morpion","nope":1}`, // unknown field
	} {
		rec := do(mux, "POST", "/v1/jobs", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: code %d, want 400", body, rec.Code)
		}
	}
}

func TestBackpressure503(t *testing.T) {
	mux := newTestServer(t, service.Config{Slots: 1, Medians: 1, Clients: 1, QueueLimit: 1})
	// One long-running job fills the slot, one fills the queue.
	long := `{"domain":"morpion","variant":"5D","level":2,"seed":%d,"memorize":true}`
	for i := 1; i <= 2; i++ {
		rec := do(mux, "POST", "/v1/jobs", fmt.Sprintf(long, i))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, rec.Code)
		}
	}
	rec := do(mux, "POST", "/v1/jobs", fmt.Sprintf(long, 3))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestCancelRunningJob(t *testing.T) {
	mux := newTestServer(t, service.Config{Slots: 1, Medians: 2, Clients: 2})
	rec := do(mux, "POST", "/v1/jobs", `{"domain":"morpion","variant":"5D","level":2,"seed":9,"memorize":true}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	id := decodeStatus(t, rec).ID

	rec = do(mux, "DELETE", "/v1/jobs/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: %d\n%s", rec.Code, rec.Body.String())
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := decodeStatus(t, do(mux, "GET", "/v1/jobs/"+id, ""))
		if st.State.Terminal() {
			if st.State != service.StateCancelled {
				t.Fatalf("cancelled job ended as %s", st.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	mux := newTestServer(t, service.Config{Slots: 1, Medians: 1, Clients: 1})
	if rec := do(mux, "GET", "/v1/jobs/job-404", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("status: %d", rec.Code)
	}
	if rec := do(mux, "DELETE", "/v1/jobs/job-404", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("cancel: %d", rec.Code)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	mux := newTestServer(t, service.Config{Slots: 2, Medians: 2, Clients: 2})
	rec := do(mux, "GET", "/healthz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	// Liveness is pure: no load-dependent fields an orchestrator might
	// misread as a health signal.
	if body := rec.Body.String(); strings.Contains(body, "slots") || strings.Contains(body, "running") {
		t.Fatalf("healthz leaked readiness state: %s", body)
	}

	// Run one job so the counters move.
	id := decodeStatus(t, do(mux, "POST", "/v1/jobs",
		`{"domain":"sudoku","box":2,"level":2,"seed":1,"memorize":true}`)).ID
	deadline := time.Now().Add(30 * time.Second)
	for !decodeStatus(t, do(mux, "GET", "/v1/jobs/"+id, "")).State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	rec = do(mux, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"pnmcs_jobs_submitted_total 1",
		"pnmcs_jobs_completed_total 1",
		"pnmcs_pool_rollouts_total",
		"pnmcs_pool_queue_depth_max",
		`pnmcs_pool_median_idle_seconds{median="0"}`,
		`pnmcs_pool_client_idle_seconds{client="1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestReadyzLifecycle drives /readyz through a live Router: ready while
// serving, 503 with "draining" once shutdown begins.
func TestReadyzLifecycle(t *testing.T) {
	mgr, err := service.NewRouter(service.Config{Slots: 1, Medians: 1, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	mux := newMux(mgr)

	rec := do(mux, "GET", "/readyz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status": "ok"`) {
		t.Fatalf("readyz while serving: %d %s", rec.Code, rec.Body.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec = do(mux, "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"draining": true`) {
		t.Fatalf("readyz while draining: %d %s", rec.Code, rec.Body.String())
	}
}

// TestReadinessStates pins the readiness verdicts the handler cannot
// reach without staging a real worker outage: a degraded pool stays
// ready (capacity, not correctness), a failed pool does not, and the
// worker gauges only appear on a distributed pool.
func TestReadinessStates(t *testing.T) {
	degraded := service.Metrics{
		Slots: 2,
		Pool: parallel.PoolMetrics{
			Degraded:         true,
			WorkersAbandoned: 1,
			Net:              &mpi.NetStats{Workers: 1},
		},
	}
	code, body := readiness(degraded, false)
	if code != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("degraded pool: %d %v", code, body)
	}
	if body["workers_live"] != 1 || body["workers_abandoned"] != int64(1) {
		t.Fatalf("degraded pool worker gauges: %v", body)
	}

	failed := degraded
	failed.Pool.Failed = true
	if code, body := readiness(failed, false); code != http.StatusServiceUnavailable || body["status"] != "failed" {
		t.Fatalf("failed pool: %d %v", code, body)
	}

	// Draining outranks everything.
	if code, body := readiness(failed, true); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining: %d %v", code, body)
	}

	// In-process pool: no worker gauges.
	if _, body := readiness(service.Metrics{Slots: 2}, false); body["workers_live"] != nil {
		t.Fatalf("in-process pool leaked worker gauges: %v", body)
	}
}

// TestMetricsTransportCounters pins the /metrics lines a distributed
// daemon exposes from NetCluster: frame/byte counters and codec timers
// appear when the pool is networked, and are absent on an in-process
// pool (no misleading zero-valued series).
func TestMetricsTransportCounters(t *testing.T) {
	rec := httptest.NewRecorder()
	writeMetrics(rec, service.Metrics{
		Slots:   2,
		Retried: 4,
		Pool: parallel.PoolMetrics{
			WorkersLost:      1,
			WorkersRejoined:  1,
			Regranted:        3,
			WorkersAbandoned: 2,
			Degraded:         true,
			Net: &mpi.NetStats{
				FramesSent: 10, FramesRecv: 9,
				BytesSent: 1200, BytesRecv: 900,
				EncodeNs: 2_000_000, DecodeNs: 1_000_000,
				Workers: 2,
			},
		},
	})
	body := rec.Body.String()
	for _, want := range []string{
		"pnmcs_net_workers 2",
		"pnmcs_net_frames_sent_total 10",
		"pnmcs_net_frames_recv_total 9",
		"pnmcs_net_bytes_sent_total 1200",
		"pnmcs_net_bytes_recv_total 900",
		"pnmcs_net_encode_seconds_total 0.002",
		"pnmcs_net_decode_seconds_total 0.001",
		"pnmcs_worker_lost_total 1",
		"pnmcs_worker_rejoined_total 1",
		"pnmcs_worker_regranted_total 3",
		"pnmcs_worker_abandoned_total 2",
		"pnmcs_pool_degraded 1",
		"pnmcs_pool_failed 0",
		"pnmcs_job_retries_total 4",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("transport metrics missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	writeMetrics(rec, service.Metrics{Slots: 2})
	if strings.Contains(rec.Body.String(), "pnmcs_net_") {
		t.Fatalf("in-process pool leaked transport metrics:\n%s", rec.Body.String())
	}
	if strings.Contains(rec.Body.String(), "pnmcs_worker_") {
		t.Fatalf("in-process pool leaked worker-churn metrics:\n%s", rec.Body.String())
	}
	if strings.Contains(rec.Body.String(), "pnmcs_pool_degraded") {
		t.Fatalf("in-process pool leaked degradation gauges:\n%s", rec.Body.String())
	}
	// Retry accounting is transport-independent: present either way.
	if !strings.Contains(rec.Body.String(), "pnmcs_job_retries_total 0") {
		t.Fatalf("in-process pool missing retry counter:\n%s", rec.Body.String())
	}
}

// TestEventsStreamToTerminal drives GET /v1/jobs/{id}/events: one JSON
// status per line, flushed as produced, ending with the terminal
// snapshot. The recorder path exercises the same handler the chunked
// HTTP transport wraps.
func TestEventsStreamToTerminal(t *testing.T) {
	mux := newTestServer(t, service.Config{Slots: 1, Medians: 2, Clients: 2})
	id := decodeStatus(t, do(mux, "POST", "/v1/jobs",
		`{"domain":"sudoku","box":2,"level":2,"seed":1,"memorize":true}`)).ID

	rec := do(mux, "GET", "/v1/jobs/"+id+"/events", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d\n%s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("empty event stream")
	}
	var last service.JobStatus
	for i, line := range lines {
		var st service.JobStatus
		if err := json.Unmarshal([]byte(line), &st); err != nil {
			t.Fatalf("event %d not a status: %v\n%s", i, err, line)
		}
		if st.ID != id {
			t.Fatalf("event %d for job %s, want %s", i, st.ID, id)
		}
		last = st
	}
	if last.State != service.StateDone || last.Score != 16 {
		t.Fatalf("stream ended on %s score %v, want terminal done/16", last.State, last.Score)
	}

	// A terminal job's stream is its final snapshot, once.
	rec = do(mux, "GET", "/v1/jobs/"+id+"/events", "")
	lines = strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("terminal stream has %d events, want 1:\n%s", len(lines), rec.Body.String())
	}
	if rec := do(mux, "GET", "/v1/jobs/job-404/events", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown events: %d", rec.Code)
	}
}

// TestPoolsEndpointAndShardMetrics pins the sharded surface: /v1/pools
// reports one entry per pool with the jobs spread across them, and
// /metrics grows the pnmcs_shard_* and tenant series.
func TestPoolsEndpointAndShardMetrics(t *testing.T) {
	mux := newTestServer(t, service.Config{Pools: 2, Slots: 1, Medians: 1, Clients: 2, QueueLimit: 8})
	var ids []string
	for seed := 1; seed <= 4; seed++ {
		body := fmt.Sprintf(`{"domain":"sudoku","box":2,"level":2,"seed":%d,"memorize":true}`, seed)
		rec := do(mux, "POST", "/v1/jobs", body)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", seed, rec.Code)
		}
		ids = append(ids, decodeStatus(t, rec).ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for !decodeStatus(t, do(mux, "GET", "/v1/jobs/"+id, "")).State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	rec := do(mux, "GET", "/v1/pools", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("pools: %d", rec.Code)
	}
	var rm service.RouterMetrics
	if err := json.Unmarshal(rec.Body.Bytes(), &rm); err != nil {
		t.Fatalf("pools JSON: %v\n%s", err, rec.Body.String())
	}
	if len(rm.PerPool) != 2 {
		t.Fatalf("pools listing has %d entries, want 2", len(rm.PerPool))
	}
	if rm.Submitted != 4 || rm.Completed != 4 {
		t.Fatalf("aggregate submitted %d completed %d, want 4/4", rm.Submitted, rm.Completed)
	}
	for i, ps := range rm.PerPool {
		if ps.Metrics.Submitted == 0 {
			t.Fatalf("pool %d never placed a job; least-loaded routing broken: %+v", i, rm.PerPool)
		}
	}

	body := do(mux, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		"pnmcs_pools 2",
		`pnmcs_shard_jobs_submitted_total{pool="0"}`,
		`pnmcs_shard_jobs_submitted_total{pool="1"}`,
		`pnmcs_shard_utilization{pool="0"}`,
		"pnmcs_tenant_shed_total 0",
		"pnmcs_jobs_submitted_total 4",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestTenantQuota429 pins the admission mapping: a tenant over its
// token-bucket rate is shed with 429 + Retry-After, and the shed shows
// up in the tenant ledger.
func TestTenantQuota429(t *testing.T) {
	mux := newTestServer(t, service.Config{
		Slots: 2, Medians: 1, Clients: 2, QueueLimit: 8,
		TenantQPS: 0.001, TenantBurst: 1, // one submission, then a long wait
	})
	body := `{"domain":"sudoku","box":2,"level":2,"seed":1,"memorize":true,"tenant":"alice"}`
	if rec := do(mux, "POST", "/v1/jobs", body); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d\n%s", rec.Code, rec.Body.String())
	}
	rec := do(mux, "POST", "/v1/jobs", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	metrics := do(mux, "GET", "/metrics", "").Body.String()
	if !strings.Contains(metrics, "pnmcs_tenant_shed_total 1") {
		t.Fatalf("shed not counted:\n%s", metrics)
	}
}
