// Package pnmcs is a Go reproduction of "Parallel Nested Monte-Carlo
// Search" (Tristan Cazenave and Nicolas Jouandeau, 12th International
// Workshop on Nature Inspired Distributed Computing, IPDPS workshops,
// 2009).
//
// It provides:
//
//   - Sequential Nested Monte-Carlo Search at any level (the paper's §III
//     algorithm, with best-sequence memorization): NewSearcher / Nested.
//     The argmax hot path is allocation-free: domains implementing
//     game.Undoer (all three bundled domains do) are traversed with
//     Play/Undo on a single mutable state instead of a clone per
//     candidate move (see DESIGN.md §4).
//   - The paper's parallel search (§IV) with both dispatching policies,
//     Round-Robin and Last-Minute, written once against a message-passing
//     substrate and runnable either natively on goroutines or on a
//     deterministic simulated cluster with per-node speeds and a network
//     model — the substitution for the paper's 64-core MPI testbed that
//     regenerates the timing tables on a laptop: RunVirtual / RunWall.
//   - The evaluation domains: Morpion Solitaire (5T/5D/4T/4D, the paper's
//     puzzle), SameGame and 16×16 Sudoku (the companion NMCS domains):
//     NewMorpion / NewSameGame / NewSudoku.
//   - Cluster topologies from §V, including the heterogeneous layouts of
//     Table VI: Homogeneous / PaperCluster / Hetero16x4p16x2 / Hetero8x4p8x2.
//
// A minimal search:
//
//	searcher := pnmcs.NewSearcher(pnmcs.NewRand(42), pnmcs.DefaultSearchOptions())
//	result := searcher.Nested(pnmcs.NewMorpion(pnmcs.Var5D), 2)
//	fmt.Println(result.Score)
//
// And the paper's parallel run on a simulated 64-client cluster:
//
//	res, err := pnmcs.RunVirtual(pnmcs.PaperCluster(), pnmcs.ParallelConfig{
//		Algo: pnmcs.LastMinute, Level: 3,
//		Root: pnmcs.NewMorpion(pnmcs.Var5D), Seed: 1, Memorize: true,
//	}, pnmcs.VirtualOptions{})
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/experiments; DESIGN.md maps each experiment to the
// modules implementing it and EXPERIMENTS.md records paper-vs-measured.
package pnmcs

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/mpi"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/samegame"
	"repro/internal/service"
	"repro/internal/sudoku"
)

// Domain abstraction (see internal/game).
type (
	// Move is a compact domain-encoded move.
	Move = game.Move
	// State is a search domain position.
	State = game.State
)

// Rollout evaluators (see internal/game): the pluggable backend guiding
// the clients' level-0 playouts. Evaluators travel by registered name
// because jobs cross process boundaries on distributed services; register
// custom ones before building a Service.
type (
	// Evaluator scores the legal moves of rollout positions. Must be pure
	// and safe for concurrent use; see game.Evaluator.
	Evaluator = game.Evaluator
	// BatchEvaluator is an Evaluator that also scores whole batches in one
	// call — the shape a vectorized policy (an NN inference server) wants.
	BatchEvaluator = game.BatchEvaluator
	// EvalRequest is one position to score: a state and its legal moves.
	EvalRequest = game.EvalRequest
)

// HeuristicEvaluatorName names the bundled per-domain heuristic evaluator
// (centrality for Morpion, group size for SameGame, value scarcity for
// Sudoku), usable with WithEvaluator and JobSpec.Evaluator.
const HeuristicEvaluatorName = game.HeuristicEvaluatorName

// EvaluatorUniform is the JobSpec.Evaluator sentinel that forces the
// paper's uniform playouts on a service configured with a default
// evaluator (an empty spec field inherits the default).
const EvaluatorUniform = service.EvaluatorUniform

// RegisterEvaluator makes a custom evaluator available under name, process
// wide. Distributed runs resolve the name on the executing worker, so
// every worker process must register it too (same binary, same init).
func RegisterEvaluator(name string, factory func() Evaluator) {
	game.RegisterEvaluator(name, factory)
}

// EvaluatorNames lists the registered evaluator names, sorted.
func EvaluatorNames() []string { return game.EvaluatorNames() }

// Random number generation.
type (
	// Rand is the deterministic xoshiro256** generator used everywhere.
	Rand = rng.Rand
)

// NewRand returns a generator seeded from seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewRandStream returns the stream-th independent stream for a seed, used
// to give each process its own decorrelated randomness.
func NewRandStream(seed, stream uint64) *Rand { return rng.NewStream(seed, stream) }

// Sequential search (the paper's §III).
type (
	// Searcher runs sequential nested Monte-Carlo searches.
	Searcher = core.Searcher
	// SearchOptions configure a Searcher.
	SearchOptions = core.Options
	// SearchResult is a search outcome: score and move sequence.
	SearchResult = core.Result
)

// NewSearcher returns a sequential searcher.
func NewSearcher(r *Rand, opt SearchOptions) *Searcher { return core.NewSearcher(r, opt) }

// DefaultSearchOptions matches the paper: memorization on.
func DefaultSearchOptions() SearchOptions { return core.DefaultOptions() }

// Parallel search (the paper's §IV).
type (
	// ParallelConfig parameterizes a parallel run.
	ParallelConfig = parallel.Config
	// ParallelResult is the outcome of a parallel run.
	ParallelResult = parallel.Result
	// Algorithm selects the dispatcher: RoundRobin or LastMinute.
	Algorithm = parallel.Algorithm
	// VirtualOptions tune the simulated cluster transport.
	VirtualOptions = parallel.VirtualOptions
)

// The two dispatching policies of the paper.
const (
	RoundRobin = parallel.RoundRobin
	LastMinute = parallel.LastMinute
)

// PaperMedians is the paper's median process count (40).
const PaperMedians = parallel.PaperMedians

// RunVirtual executes a parallel search on a simulated cluster and returns
// the result with the deterministic virtual makespan.
func RunVirtual(spec ClusterSpec, cfg ParallelConfig, opts VirtualOptions) (ParallelResult, error) {
	return parallel.RunVirtual(spec, cfg, opts)
}

// RunWall executes a parallel search natively on goroutines.
func RunWall(nClients, medians int, cfg ParallelConfig) (ParallelResult, error) {
	return parallel.RunWall(nClients, medians, cfg)
}

// Concurrent search service (the long-lived, multi-job form of RunWall;
// see internal/service and cmd/pnmcsd).
type (
	// Service is a persistent search service: a shared worker pool onto
	// which concurrently submitted jobs are multiplexed. Build with
	// NewService, submit with Submit, tear down with Shutdown.
	Service = service.Manager
	// ServiceConfig sizes a Service: slots, medians, clients, queue bound.
	ServiceConfig = service.Config
	// JobSpec describes one search job: domain position plus search
	// parameters. Equal specs return bit-identical results, on the
	// service or solo via RunWall.
	JobSpec = service.JobSpec
	// JobStatus is a point-in-time snapshot of a submitted job.
	JobStatus = service.JobStatus
	// JobState is a job's lifecycle state (queued, running, done,
	// cancelled, failed).
	JobState = service.JobState
	// ServiceMetrics aggregates the service counters and the pool's
	// idle / queue-depth instrumentation.
	ServiceMetrics = service.Metrics
	// Router is the sharded service plane: N independent Services behind
	// one admission layer (per-tenant quotas, least-loaded placement with
	// saturation spillover). Routing is placement, never semantics: a
	// job's result is bit-identical on 1 pool or N. Build with NewRouter.
	Router = service.Router
	// RouterMetrics aggregates the counters across every pool and carries
	// the per-pool breakdown plus the tenant-shed ledger.
	RouterMetrics = service.RouterMetrics
)

// Service errors surfaced to callers: saturation (bounded-queue
// backpressure), per-tenant quota exhaustion, shutdown, unknown ids, and
// double-cancellation.
var (
	ErrServiceSaturated = service.ErrSaturated
	ErrServiceClosed    = service.ErrClosed
	ErrJobNotFound      = service.ErrNotFound
	ErrJobFinished      = service.ErrFinished
	ErrTenantQuota      = service.ErrQuota
)

// New builds the persistent worker pool and returns an idle service.
// cmd/pnmcsd exposes the same object over HTTP. With no options the
// service is local and defaulted: 4 job slots multiplexed onto an
// in-process pool of 4 medians and 8 clients, uniform playouts.
//
//	svc, err := pnmcs.New(
//		pnmcs.WithPool(8, 16),
//		pnmcs.WithEvaluator("heuristic"),
//	)
//
// Adding WithWorkers(n) makes the service the coordinator of a
// distributed rank world whose median and client ranks are hosted by
// external worker processes (cmd/pnmcs-worker, or ServeWorker below).
func New(opts ...Option) (*Service, error) {
	var cfg ServiceConfig
	for _, o := range opts {
		o(&cfg)
	}
	return service.New(cfg)
}

// NewRouter builds a sharded service plane from the same options New
// accepts: WithPools(n) spreads jobs across n independent pools behind
// one admission layer, and WithTenantQPS puts a per-tenant token-bucket
// quota in front of the queues. With one pool and no quotas it behaves
// exactly like the Service New builds.
//
//	rt, err := pnmcs.NewRouter(
//		pnmcs.WithPools(4),
//		pnmcs.WithSlots(2),          // per pool
//		pnmcs.WithTenantQPS(50, 10), // 50 jobs/s, burst 10, per tenant
//	)
func NewRouter(opts ...Option) (*Router, error) {
	var cfg ServiceConfig
	for _, o := range opts {
		o(&cfg)
	}
	return service.NewRouter(cfg)
}

// Option customizes one knob of a Service built by New. Every option
// writes one field of service.Config — the single source of truth for the
// knob's semantics and default — so the two construction styles can never
// drift apart.
type Option func(*ServiceConfig)

// WithSlots sets the number of jobs served concurrently (default 4).
func WithSlots(n int) Option { return func(c *ServiceConfig) { c.Slots = n } }

// WithPool sizes the shared worker pool: median processes and client
// processes (defaults 4 and 8). These are the paper's §IV process roles;
// they bound parallelism, never change results.
func WithPool(medians, clients int) Option {
	return func(c *ServiceConfig) { c.Medians, c.Clients = medians, clients }
}

// WithQueueLimit bounds the jobs waiting for a free slot (default 16);
// negative means no queue. Submissions beyond it fail with
// ErrServiceSaturated.
func WithQueueLimit(n int) Option { return func(c *ServiceConfig) { c.QueueLimit = n } }

// WithPools shards a NewRouter-built service plane across n independent
// worker pools (default 1); slots, medians, clients and queue are per
// pool, so capacity scales linearly. Requires in-process pools (no
// WithWorkers) when n > 1. Ignored by New, which always builds one pool.
func WithPools(n int) Option { return func(c *ServiceConfig) { c.Pools = n } }

// WithTenantQPS puts a token-bucket quota in front of a NewRouter-built
// plane: each JobSpec.Tenant may submit at qps sustained with the given
// burst allowance (burst <= 0 defaults to qps+1); beyond it Submit fails
// with ErrTenantQuota before the job holds any queue capacity.
func WithTenantQPS(qps float64, burst int) Option {
	return func(c *ServiceConfig) { c.TenantQPS, c.TenantBurst = qps, burst }
}

// WithRetain bounds the finished jobs kept for status queries
// (default 1024); negative evicts terminal jobs immediately.
func WithRetain(n int) Option { return func(c *ServiceConfig) { c.Retain = n } }

// WithAlgorithm selects the dispatcher policy ordering pending rollouts,
// RoundRobin or LastMinute (the default, the paper's best). Scheduling
// never changes job results.
func WithAlgorithm(a Algorithm) Option { return func(c *ServiceConfig) { c.Algo = a } }

// WithEvaluator sets the default rollout evaluator — a registered
// game.Evaluator name such as "heuristic" — applied to jobs whose spec
// does not name one. Empty (the default) keeps the paper's uniform
// playouts; a job opts back out of a service default with the spec
// sentinel EvaluatorUniform.
func WithEvaluator(name string) Option { return func(c *ServiceConfig) { c.Evaluator = name } }

// WithEvalBatch sets how many rollout positions a worker process
// accumulates before evaluating them as one batch (default 8).
func WithEvalBatch(n int) Option { return func(c *ServiceConfig) { c.EvalBatch = n } }

// WithEvalFlush bounds how long a partial evaluation batch may wait for
// more positions before it is flushed anyway (default 2ms).
func WithEvalFlush(d time.Duration) Option { return func(c *ServiceConfig) { c.EvalFlush = d } }

// WithWorkers serves the pool's median and client ranks from n external
// worker processes instead of goroutines. Job results are bit-identical
// either way.
func WithWorkers(n int) Option { return func(c *ServiceConfig) { c.Workers = n } }

// WithWorkerListen sets the TCP address workers dial (default loopback,
// ephemeral port). Only meaningful with WithWorkers.
func WithWorkerListen(addr string) Option { return func(c *ServiceConfig) { c.WorkerListen = addr } }

// WithWorkerToken sets the shared secret dialing workers must present.
// Set it whenever the worker listener leaves loopback.
func WithWorkerToken(token string) Option { return func(c *ServiceConfig) { c.WorkerToken = token } }

// WithDegrade enables graceful degradation down to min surviving workers:
// when a lost worker is abandoned without a replacement, jobs keep
// finishing — bit-identical — on the shrunken world instead of failing
// fast. Only meaningful with WithWorkers.
func WithDegrade(min int) Option {
	return func(c *ServiceConfig) { c.Degrade, c.MinWorkers = true, min }
}

// WithReplaceGrace sets how long a lost worker's ranks are held for a
// replacement before the pool abandons them (degrading or failing fast
// per WithDegrade). Only meaningful with WithWorkers.
func WithReplaceGrace(d time.Duration) Option { return func(c *ServiceConfig) { c.ReplaceGrace = d } }

// WithPendingLimit bounds the work re-queued from lost workers before the
// grace window is cut short. Only meaningful with WithWorkers.
func WithPendingLimit(n int) Option { return func(c *ServiceConfig) { c.PendingLimit = n } }

// WithRetry re-runs jobs the pool failed, up to max times with exponential
// backoff from the given base delay (zero base defaults to 250ms). Re-runs
// keep the job's seed, so a retried answer is bit-identical to what the
// healthy pool would have produced.
func WithRetry(max int, backoff time.Duration) Option {
	return func(c *ServiceConfig) { c.Retry = service.RetryPolicy{Max: max, Backoff: backoff} }
}

// NewService builds a service from an explicit ServiceConfig.
//
// Deprecated: use New with options; both construct the identical service
// (this function is New with a pre-filled config).
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// WorkerStats summarizes one worker process's service: hosted ranks,
// cumulative idle time, transport counters.
type WorkerStats = parallel.WorkerStats

// ServeWorker dials a distributed service's coordinator — presenting the
// shared-secret token when the coordinator requires one (empty otherwise)
// — and hosts the assigned median and client ranks until the coordinator
// shuts down. cmd/pnmcs-worker is a thin wrapper around this call.
func ServeWorker(addr, token string) (WorkerStats, error) {
	w, err := mpi.DialWorker(addr, token)
	if err != nil {
		return WorkerStats{}, err
	}
	return parallel.ServeWorker(w)
}

// Cluster topologies (the paper's §V testbeds).
type (
	// ClusterSpec describes a testbed: nodes, speeds, client placement.
	ClusterSpec = cluster.Spec
)

// Homogeneous builds n reference-speed clients (two per dual-core PC).
func Homogeneous(n int) ClusterSpec { return cluster.Homogeneous(n) }

// PaperCluster is the paper's 64-client mixed 1.86/2.33 GHz cluster.
func PaperCluster() ClusterSpec { return cluster.Paper64() }

// Hetero16x4p16x2 is Table VI's 16×4+16×2 unbalanced layout.
func Hetero16x4p16x2() ClusterSpec { return cluster.Hetero16x4p16x2() }

// Hetero8x4p8x2 is Table VI's 8×4+8×2 unbalanced layout.
func Hetero8x4p8x2() ClusterSpec { return cluster.Hetero8x4p8x2() }

// Morpion Solitaire (the paper's evaluation domain).
type (
	// Morpion is a Morpion Solitaire position.
	Morpion = morpion.State
	// MorpionVariant is a rule set (5T, 5D, 4T, 4D).
	MorpionVariant = morpion.Variant
)

// The four standard Morpion variants; the paper evaluates Var5D.
var (
	Var5T = morpion.Var5T
	Var5D = morpion.Var5D
	Var4T = morpion.Var4T
	Var4D = morpion.Var4D
)

// NewMorpion returns the initial cross position of a variant.
func NewMorpion(v MorpionVariant) *Morpion { return morpion.New(v) }

// MorpionVariantByName resolves "5T", "5D", "4T" or "4D".
func MorpionVariantByName(name string) (MorpionVariant, error) {
	return morpion.VariantByName(name)
}

// RenderMorpionSequence replays a sequence from the initial position of v
// and draws the final grid (the paper's figure-1 style).
func RenderMorpionSequence(v MorpionVariant, seq []Move) (string, error) {
	return morpion.RenderSequence(v, seq)
}

// MorpionArchive stores record sequences for one variant, validated and
// deduplicated up to the cross's symmetry group — the bookkeeping behind
// the paper's "two new world-record sequences" claim.
type MorpionArchive = morpion.Archive

// NewMorpionArchive returns an empty archive for a variant.
func NewMorpionArchive(v MorpionVariant) *MorpionArchive { return morpion.NewArchive(v) }

// EquivalentMorpionSequences reports whether two games are images of each
// other under the symmetry group of the initial cross.
func EquivalentMorpionSequences(v MorpionVariant, a, b []Move) (bool, error) {
	return morpion.EquivalentSequences(v, a, b)
}

// SameGame (companion domain).
type SameGame = samegame.State

// NewSameGame returns the standard random 15×15, 5-colour board for seed.
func NewSameGame(seed uint64) *SameGame { return samegame.NewStandard(seed) }

// NewSameGameSized returns a random w×h board with the given colours.
func NewSameGameSized(w, h, colors int, seed uint64) *SameGame {
	return samegame.NewRandom(w, h, colors, seed)
}

// Sudoku (companion domain).
type Sudoku = sudoku.State

// NewSudoku returns an empty grid with the given box side (4 → 16×16).
func NewSudoku(box int) *Sudoku { return sudoku.New(box) }
