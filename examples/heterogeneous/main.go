// Heterogeneous clusters: Last-Minute vs Round-Robin — the table-VI
// analogue.
//
// The paper's second contribution is the Last-Minute dispatcher, which
// outperforms Round-Robin when client nodes have unequal speeds. This
// example reproduces that comparison on the simulated versions of the
// paper's unbalanced layouts (16 PCs hosting 4 clients each on two cores —
// so those clients run at half speed — plus 16 PCs hosting 2).
package main

import (
	"flag"
	"fmt"
	"log"

	pnmcs "repro"
)

func main() {
	level := flag.Int("level", 2, "nesting level")
	seed := flag.Uint64("seed", 11, "random seed")
	flag.Parse()

	specs := []pnmcs.ClusterSpec{pnmcs.Hetero16x4p16x2(), pnmcs.Hetero8x4p8x2()}
	algos := []pnmcs.Algorithm{pnmcs.LastMinute, pnmcs.RoundRobin}

	fmt.Println("first-move times on heterogeneous clusters (virtual makespan):")
	fmt.Println()
	fmt.Printf("%-12s %-4s %-14s %s\n", "clients", "alg", "time", "client utilization")
	for _, spec := range specs {
		var lmTime float64
		for _, algo := range algos {
			// Static pins the paper's cyclic root scheduler: table VI
			// isolates the dispatcher policies, and the default pull
			// scheduler would level much of the imbalance on its own.
			res, err := pnmcs.RunVirtual(spec, pnmcs.ParallelConfig{
				Algo: algo, Level: *level, Root: pnmcs.NewMorpion(pnmcs.Var4D),
				Seed: *seed, Memorize: true, FirstMoveOnly: true, JobScale: 8000,
				Static: true,
			}, pnmcs.VirtualOptions{})
			if err != nil {
				log.Fatal(err)
			}
			// Mean client utilization: busy time over makespan.
			var busy float64
			for _, b := range res.ClientBusy {
				busy += b.Seconds()
			}
			util := busy / (res.Elapsed.Seconds() * float64(len(res.ClientBusy)))
			fmt.Printf("%-12s %-4v %-14v %.0f%%\n", spec.Name, algo, res.Elapsed.Round(1e9), util*100)
			if algo == pnmcs.LastMinute {
				lmTime = res.Elapsed.Seconds()
			} else if lmTime > 0 {
				fmt.Printf("%-12s      Last-Minute is %.2fx faster\n", "", res.Elapsed.Seconds()/lmTime)
			}
		}
		fmt.Println()
	}
	fmt.Println("paper (table VI, level 4, 16x4+16x2): LM 28m37s vs RR 45m17s — LM 1.58x faster")
}
