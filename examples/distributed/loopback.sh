#!/usr/bin/env bash
# Manual walkthrough of the multi-process topology on loopback: one pnmcsd
# coordinator, two pnmcs-worker processes, three jobs over the HTTP API.
# (The Go program in this directory runs the same topology and additionally
# verifies results against solo in-process runs; CI uses that.)
set -euo pipefail

cd "$(dirname "$0")/../.."
BIN="${BIN:-$(pwd)/examples/distributed/.bin}"
HTTP=127.0.0.1:18731
WORKER=127.0.0.1:18732

mkdir -p "$BIN"
go build -o "$BIN/pnmcsd" ./cmd/pnmcsd
go build -o "$BIN/pnmcs-worker" ./cmd/pnmcs-worker

"$BIN/pnmcsd" -addr "$HTTP" -workers 2 -worker-listen "$WORKER" \
  -slots 2 -medians 2 -clients 4 &
DAEMON=$!
trap 'kill $DAEMON 2>/dev/null || true' EXIT

until curl -sf "http://$HTTP/healthz" >/dev/null; do sleep 0.2; done

# Workers can be started before or after the daemon, and before or after
# jobs are submitted: candidates wait in the scheduler until ranks join.
"$BIN/pnmcs-worker" -connect "$WORKER" &
"$BIN/pnmcs-worker" -connect "$WORKER" &

for body in \
  '{"domain":"morpion","variant":"4D","level":2,"seed":11,"memorize":true}' \
  '{"domain":"samegame","width":6,"height":6,"colors":3,"board_seed":3,"level":2,"seed":5,"memorize":true}' \
  '{"domain":"sudoku","box":3,"level":2,"seed":7}'; do
  curl -s -X POST "http://$HTTP/v1/jobs" -d "$body" | grep -o '"id": *"[^"]*"'
done

echo "polling until all jobs finish..."
while curl -s "http://$HTTP/v1/jobs" | grep -qE '"state": *"(queued|running)"'; do
  sleep 0.5
done
curl -s "http://$HTTP/v1/jobs"

echo "transport counters:"
curl -s "http://$HTTP/metrics" | grep pnmcs_net_

# Graceful drain: workers exit on their own once the coordinator tears
# the rank world down.
kill -TERM $DAEMON
wait
