// Command distributed demonstrates — and smoke-tests — the multi-process
// deployment of the search service: one pnmcsd coordinator plus two
// pnmcs-worker processes on loopback TCP, the topology of the paper's MPI
// cluster (server = coordinator, worker PCs = pnmcs-worker).
//
// It builds both binaries, wires the processes together (with handshake
// authentication: every worker presents the shared -worker-token),
// submits one job per domain over the HTTP API, and verifies each
// distributed result is bit-identical to the same JobSpec run solo
// in-process (parallel.RunWall with the same seed) — score, move
// sequence, and rollout accounting.
//
// It then rehearses the failure model (DESIGN.md §8): another job is
// submitted, one worker process is SIGKILLed mid-run, a replacement
// worker dials in and reclaims the lost rank range, and the job must
// still complete bit-identical to its solo twin — the coordinator
// re-queues the dead worker's candidate grants and the surviving ranks
// re-issue the lost rollouts, which /metrics must show
// (pnmcs_worker_lost_total, pnmcs_worker_rejoined_total).
//
// Last comes graceful degradation (DESIGN.md §9): the replacement worker
// is SIGKILLed mid-job and NO new worker is started. After -replace-grace
// the coordinator abandons the slot, re-maps the dead rank range onto the
// one surviving worker, and the job must finish on the shrunken world —
// still bit-identical, flagged "degraded" in its status, with the
// abandonment visible in /metrics (pnmcs_worker_abandoned_total,
// pnmcs_pool_degraded) and /readyz answering 200 "degraded".
//
// The CI distributed-smoke job runs exactly this program:
//
//	go run ./examples/distributed
//
// Flags: -bin keeps the built binaries in a chosen directory (default: a
// temp dir, removed afterwards); -http / -worker pick the loopback ports.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/parallel"
	"repro/internal/service"
)

var (
	httpAddr   string
	workerAddr string

	// procs and cleanups are torn down by die() on any failure:
	// log.Fatalf alone would skip deferred kills and leave the daemon and
	// workers running on their fixed ports, where the NEXT smoke run
	// would silently talk to them.
	procs    []*exec.Cmd
	cleanups []func()
)

// die tears the spawned processes and temp state down, then exits.
func die(format string, args ...any) {
	for _, p := range procs {
		p.Process.Kill() //nolint:errcheck // going down anyway
	}
	for _, fn := range cleanups {
		fn()
	}
	log.Fatalf(format, args...)
}

func main() {
	binDir := flag.String("bin", "", "directory for the built binaries (default: a temp dir, removed afterwards)")
	flag.StringVar(&httpAddr, "http", "127.0.0.1:18731", "pnmcsd HTTP address")
	flag.StringVar(&workerAddr, "worker", "127.0.0.1:18732", "pnmcsd worker-listen address")
	flag.Parse()

	if *binDir == "" {
		d, err := os.MkdirTemp("", "pnmcs-distributed")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		cleanups = append(cleanups, func() { os.RemoveAll(d) })
		*binDir = d
	}

	log.Printf("building pnmcsd and pnmcs-worker into %s", *binDir)
	for _, cmd := range []string{"pnmcsd", "pnmcs-worker"} {
		build := exec.Command("go", "build", "-o", filepath.Join(*binDir, cmd), "./cmd/"+cmd)
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		if err := build.Run(); err != nil {
			log.Fatalf("build %s: %v", cmd, err)
		}
	}

	// One coordinator expecting two workers. 2 slots / 2 medians / 4
	// clients keeps the world small; determinism does not depend on it.
	// The shared token exercises handshake authentication end-to-end.
	const token = "smoke-secret"
	// -replace-grace 5s: far beyond the replacement phase's join latency
	// (the replacement dials as soon as its predecessor is killed), short
	// enough that the final no-replacement phase abandons quickly.
	daemon := start(*binDir, "pnmcsd",
		"-addr", httpAddr, "-workers", "2", "-worker-listen", workerAddr,
		"-worker-token", token,
		"-slots", "2", "-medians", "2", "-clients", "4",
		"-replace-grace", "5s")
	defer daemon.Process.Kill() //nolint:errcheck // beyond the graceful path below

	waitHealthy()

	// Stagger the joins: the coordinator hands out the lowest free slot,
	// so waiting for worker-1 before starting worker-2 pins worker-1 to
	// the first remote range (the one holding the median ranks). The
	// degradation phase below depends on that: it abandons worker-2's
	// client-only range, leaving the medians alive on worker-1.
	w1 := start(*binDir, "pnmcs-worker", "-connect", workerAddr, "-worker-token", token)
	waitWorkers(1)
	w2 := start(*binDir, "pnmcs-worker", "-connect", workerAddr, "-worker-token", token)
	waitWorkers(2)

	// One job per domain: morpion plays a full level-2 game across the
	// wire; the others are smaller boards. Seeds are arbitrary but fixed.
	specs := []service.JobSpec{
		{Domain: "morpion", Variant: "4D", Level: 2, Seed: 11, Memorize: true},
		{Domain: "samegame", Width: 6, Height: 6, Colors: 3, BoardSeed: 3, Level: 2, Seed: 5, Memorize: true},
		{Domain: "sudoku", Box: 3, Level: 2, Seed: 7},
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = submit(spec)
		log.Printf("submitted %s as %s", spec.Domain, ids[i])
	}
	for i, spec := range specs {
		st := await(ids[i])
		if st.State != service.StateDone {
			die("%s: state %s (error %q)", spec.Domain, st.State, st.Error)
		}
		verify(spec, st)
	}

	// Transport counters must show the jobs crossed the wire.
	metrics := httpGet("/metrics")
	for _, want := range []string{"pnmcs_net_workers 2", "pnmcs_net_frames_sent_total"} {
		if !bytes.Contains(metrics, []byte(want)) {
			die("/metrics missing %q", want)
		}
	}

	// Chaos phase: SIGKILL worker 2 mid-job, dial a replacement in, and
	// require the job to ride the churn out bit-identically.
	chaosSpec := service.JobSpec{
		Domain: "samegame", Width: 8, Height: 8, Colors: 3, BoardSeed: 9,
		Level: 2, Seed: 13, Memorize: true,
	}
	chaosID := submit(chaosSpec)
	log.Printf("chaos: submitted %s as %s", chaosSpec.Domain, chaosID)
	awaitSteps(chaosID, 1)
	if err := w2.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		die("kill worker-2: %v", err)
	}
	log.Printf("chaos: worker-2 SIGKILLed mid-job; starting replacement")
	w3 := start(*binDir, "pnmcs-worker", "-connect", workerAddr, "-worker-token", token)
	st := await(chaosID)
	if st.State != service.StateDone {
		die("chaos job state %s (error %q)", st.State, st.Error)
	}
	verify(chaosSpec, st)
	metrics = httpGet("/metrics")
	for _, want := range []string{"pnmcs_worker_lost_total 1", "pnmcs_worker_rejoined_total 1"} {
		if !bytes.Contains(metrics, []byte(want)) {
			die("/metrics missing %q after the kill", want)
		}
	}
	w2.Wait() //nolint:errcheck // reap the SIGKILLed worker

	// Degradation phase: SIGKILL the replacement mid-job and start NO new
	// worker. Once -replace-grace expires the coordinator abandons the
	// slot and re-maps its rank range onto worker-1; the job must finish
	// on the shrunken world — bit-identical, because rollout randomness is
	// keyed by logical job coordinates, never by which worker runs them.
	degradeSpec := service.JobSpec{
		Domain: "samegame", Width: 8, Height: 8, Colors: 3, BoardSeed: 17,
		Level: 2, Seed: 29, Memorize: true,
	}
	degradeID := submit(degradeSpec)
	log.Printf("degrade: submitted %s as %s", degradeSpec.Domain, degradeID)
	awaitSteps(degradeID, 1)
	if err := w3.Process.Kill(); err != nil {
		die("kill worker-3: %v", err)
	}
	log.Printf("degrade: worker-3 SIGKILLed mid-job; no replacement — waiting out -replace-grace")
	st = await(degradeID)
	if st.State != service.StateDone {
		die("degraded job state %s (error %q)", st.State, st.Error)
	}
	if !st.Degraded {
		die("degraded job not flagged degraded: %+v", st)
	}
	verify(degradeSpec, st)
	metrics = httpGet("/metrics")
	for _, want := range []string{
		"pnmcs_worker_lost_total 2",
		"pnmcs_worker_abandoned_total 1",
		"pnmcs_pool_degraded 1",
		"pnmcs_net_workers 1",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			die("/metrics missing %q after the abandonment", want)
		}
	}
	// The daemon keeps serving degraded — ready for traffic, flagged so.
	if ready := httpGet("/readyz"); !bytes.Contains(ready, []byte(`"status": "degraded"`)) {
		die("/readyz does not report degraded: %s", ready)
	}
	w3.Wait() //nolint:errcheck // reap the SIGKILLed replacement

	// Graceful drain: SIGTERM the daemon; the surviving worker exits by
	// itself once the coordinator tears the rank world down.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		die("%v", err)
	}
	for name, p := range map[string]*exec.Cmd{"pnmcsd": daemon, "worker-1": w1} {
		if err := waitFor(p, 30*time.Second); err != nil {
			die("%s did not drain cleanly: %v", name, err)
		}
	}
	fmt.Println("distributed smoke PASS: 3 domains bit-identical across 2 worker processes, " +
		"a SIGKILL mid-job survived via rolling replacement, and a second SIGKILL with no " +
		"replacement finished degraded on one worker — all bit-identical")
}

// awaitSteps polls a job until it has played at least n root steps (so a
// fault injected now lands mid-job, not before it).
func awaitSteps(id string, n int) {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st service.JobStatus
		if err := json.Unmarshal(httpGet("/v1/jobs/"+id), &st); err != nil {
			die("%v", err)
		}
		if st.Steps >= n {
			return
		}
		if st.State.Terminal() {
			die("%s finished before the fault could land (state %s)", id, st.State)
		}
		if time.Now().After(deadline) {
			die("%s never reached %d steps", id, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// start launches a built binary with stdout/stderr piped through.
func start(binDir, name string, args ...string) *exec.Cmd {
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		die("start %s: %v", name, err)
	}
	procs = append(procs, cmd)
	return cmd
}

// waitFor waits for a process to exit within the budget.
func waitFor(cmd *exec.Cmd, budget time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(budget):
		cmd.Process.Kill() //nolint:errcheck // giving up anyway
		return fmt.Errorf("still running after %v", budget)
	}
}

// waitWorkers polls /metrics until n workers are connected, pinning the
// slot order of staggered worker starts.
func waitWorkers(n int) {
	want := []byte(fmt.Sprintf("pnmcs_net_workers %d", n))
	deadline := time.Now().Add(30 * time.Second)
	for !bytes.Contains(httpGet("/metrics"), want) {
		if time.Now().After(deadline) {
			die("never saw %s", want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func waitHealthy() {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + httpAddr + "/healthz")
		if err == nil {
			resp.Body.Close() //nolint:errcheck // drained by Close
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			die("pnmcsd never became healthy: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func httpGet(path string) []byte {
	resp, err := http.Get("http://" + httpAddr + path)
	if err != nil {
		die("%v", err)
	}
	defer resp.Body.Close() //nolint:errcheck // read fully below
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		die("%v", err)
	}
	return body
}

func submit(spec service.JobSpec) string {
	body, err := json.Marshal(spec)
	if err != nil {
		die("%v", err)
	}
	resp, err := http.Post("http://"+httpAddr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		die("%v", err)
	}
	defer resp.Body.Close() //nolint:errcheck // decoded below
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		die("submit %s: %d %s", spec.Domain, resp.StatusCode, raw)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		die("%v", err)
	}
	return st.ID
}

func await(id string) service.JobStatus {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st service.JobStatus
		if err := json.Unmarshal(httpGet("/v1/jobs/"+id), &st); err != nil {
			die("%v", err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			die("%s never finished (state %s after %d steps)", id, st.State, st.Steps)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// verify runs the same spec solo in this process and compares every
// deterministic field — the cross-process form of the equivalence tests.
func verify(spec service.JobSpec, st service.JobStatus) {
	cfg, err := spec.Config()
	if err != nil {
		die("%v", err)
	}
	solo, err := parallel.RunWall(4, 3, cfg)
	if err != nil {
		die("%v", err)
	}
	if st.Score != solo.Score {
		die("%s: distributed score %v != solo %v", spec.Domain, st.Score, solo.Score)
	}
	if len(st.Sequence) != len(solo.Sequence) {
		die("%s: sequence %d moves != solo %d", spec.Domain, len(st.Sequence), len(solo.Sequence))
	}
	for i := range st.Sequence {
		if st.Sequence[i] != solo.Sequence[i] {
			die("%s: sequences differ at move %d", spec.Domain, i)
		}
	}
	if st.Rollouts != solo.Jobs || st.WorkUnits != solo.WorkUnits {
		die("%s: accounting %d rollouts / %d units != solo %d / %d",
			spec.Domain, st.Rollouts, st.WorkUnits, solo.Jobs, solo.WorkUnits)
	}
	log.Printf("%s: bit-identical (score %.0f, %d moves, %d rollouts)",
		spec.Domain, st.Score, len(st.Sequence), st.Rollouts)
}
