// SameGame: nested Monte-Carlo search on the block-collapsing puzzle, one
// of the companion domains of the NMCS line of work. Shows the level-0 →
// level-1 amplification on a domain with a very different score structure
// from Morpion Solitaire (quadratic group scores plus a clear bonus).
package main

import (
	"flag"
	"fmt"
	"log"

	pnmcs "repro"
)

func main() {
	seed := flag.Uint64("seed", 1, "board seed")
	level := flag.Int("level", 1, "nesting level")
	size := flag.Int("size", 10, "board side (the literature standard is 15, slower)")
	flag.Parse()

	board := pnmcs.NewSameGameSized(*size, *size, 5, *seed)
	fmt.Println("initial board:")
	fmt.Println(board.Render())

	// Level 0 (random playout) baseline vs the requested level.
	for _, lv := range []int{0, *level} {
		searcher := pnmcs.NewSearcher(pnmcs.NewRand(99), pnmcs.DefaultSearchOptions())
		final := board.Clone().(*pnmcs.SameGame)
		res := searcher.Nested(final, lv)
		fmt.Printf("level %d: score %.0f in %d moves, %d blocks left\n",
			lv, res.Score, final.MovesPlayed(), final.Remaining())
		if lv == *level {
			fmt.Println()
			fmt.Println("final board:")
			fmt.Println(final.Render())
		}
	}

	// The same board through the paper's parallel search, natively on
	// goroutines: the root plays at level 2 with medians evaluating every
	// candidate move through client rollouts.
	res, err := pnmcs.RunWall(8, 4, pnmcs.ParallelConfig{
		Algo: pnmcs.LastMinute, Level: 2, Root: board.Clone(),
		Seed: 99, Memorize: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel level 2 on 8 clients: score %.0f in %d moves (%v wall)\n",
		res.Score, len(res.Sequence), res.Elapsed.Round(1e6))
}
