// Evaluator walkthrough: guide the level-0 playouts of a search with the
// bundled per-domain heuristic, register a custom evaluator, and show the
// "uniform" opt-out on a service configured with a default evaluator.
//
// The paper's playouts are uniform random; an Evaluator (DESIGN.md §10)
// re-weights each playout step's move draw. Evaluators are pure — weights
// depend only on (position, legal moves) — which is why batched, pooled
// and distributed runs all return bit-identical results for the same name
// and seed.
package main

import (
	"context"
	"fmt"
	"log"

	pnmcs "repro"
)

// edgeBias is a deliberately simple custom evaluator: it prefers moves
// with a high encoded value. Weights must be non-negative and depend only
// on the request; returning no weights (or all zeros) tells the searcher
// to fall back to a uniform draw for that position.
type edgeBias struct{}

func (edgeBias) Evaluate(req pnmcs.EvalRequest, w []float64) []float64 {
	for i := range req.Moves {
		w = append(w, float64(i+1))
	}
	return w
}

func main() {
	// Custom evaluators are registered once, by name, before any search
	// uses them. Distributed workers resolve the same name against their
	// own registry, so register in code shared by every process.
	pnmcs.RegisterEvaluator("edge-bias", func() pnmcs.Evaluator { return edgeBias{} })
	fmt.Printf("registered evaluators: %v\n", pnmcs.EvaluatorNames())

	// One-shot parallel runs take the evaluator by name in the config.
	// Same seed, three policies — uniform (paper), bundled heuristic,
	// custom — typically three different games.
	board := func() *pnmcs.SameGame { return pnmcs.NewSameGameSized(8, 8, 4, 7) }
	for _, name := range []string{"", pnmcs.HeuristicEvaluatorName, "edge-bias"} {
		res, err := pnmcs.RunWall(4, 3, pnmcs.ParallelConfig{
			Level: 2, Root: board(), Seed: 11, Memorize: true,
			Evaluator: name,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := name
		if label == "" {
			label = "uniform (paper)"
		}
		fmt.Printf("%-16s score %5.0f in %d moves\n", label, res.Score, len(res.Sequence))
	}

	// A service applies a default evaluator to every job that does not
	// name one; WithEvalBatch/WithEvalFlush shape how each worker process
	// coalesces concurrent rollout positions into one evaluation call.
	svc, err := pnmcs.New(
		pnmcs.WithSlots(2),
		pnmcs.WithPool(2, 4),
		pnmcs.WithEvaluator(pnmcs.HeuristicEvaluatorName),
		pnmcs.WithEvalBatch(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Shutdown(context.Background())

	run := func(spec pnmcs.JobSpec) pnmcs.JobStatus {
		id, err := svc.Submit(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		st, err := svc.Wait(context.Background(), id)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	spec := pnmcs.JobSpec{Domain: "samegame", Width: 8, Height: 8, Colors: 4,
		BoardSeed: 7, Level: 2, Seed: 11, Memorize: true}
	guided := run(spec) // inherits the service's heuristic default

	uniform := spec
	uniform.Evaluator = pnmcs.EvaluatorUniform // opt this one job back out
	paper := run(uniform)

	fmt.Printf("service: guided (default) score %.0f, uniform (opt-out) score %.0f\n",
		guided.Score, paper.Score)
	m := svc.Metrics()
	fmt.Printf("batcher: %d positions in %d batches (max %d)\n",
		m.Pool.EvalRequests, m.Pool.EvalBatches, m.Pool.EvalBatchMax)
}
