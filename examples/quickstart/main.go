// Quickstart: run sequential nested Monte-Carlo search on Morpion
// Solitaire and then the paper's parallel search on a simulated 64-client
// cluster, in ~20 lines of API.
package main

import (
	"fmt"
	"log"

	pnmcs "repro"
)

func main() {
	// Sequential NMCS (the paper's §III): a level-1 search on the paper's
	// 5D variant. Higher levels search dramatically better and cost
	// dramatically more (paper table I).
	searcher := pnmcs.NewSearcher(pnmcs.NewRand(42), pnmcs.DefaultSearchOptions())
	seq := searcher.Nested(pnmcs.NewMorpion(pnmcs.Var5D), 1)
	fmt.Printf("sequential level-1 NMCS on 5D: %d moves\n", int(seq.Score))

	// Parallel NMCS (the paper's §IV) on a simulated version of the
	// paper's 64-client cluster, with the Last-Minute dispatcher. The
	// makespan is virtual time on the simulated hardware — deterministic
	// and independent of this machine's core count.
	res, err := pnmcs.RunVirtual(pnmcs.PaperCluster(), pnmcs.ParallelConfig{
		Algo:          pnmcs.LastMinute,
		Level:         2,
		Root:          pnmcs.NewMorpion(pnmcs.Var4D), // the fast variant for the demo
		Seed:          42,
		Memorize:      true,
		FirstMoveOnly: true,
		JobScale:      8000, // restore the paper's job granularity (see DESIGN.md)
	}, pnmcs.VirtualOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel first move on 64 simulated clients: score %d, virtual time %v, %d client rollouts\n",
		int(res.Score), res.Elapsed.Round(1e9), res.Jobs)
}
