// Service: the long-lived, concurrent form of the parallel search — the
// serving shape of on-line policy improvement. One shared worker pool is
// built once; jobs across all three domains are submitted concurrently,
// stream progress while they run, and return results bit-identical to
// solo RunWall runs with the same seed. cmd/pnmcsd exposes this same
// service over HTTP; this example drives it in-process through the Go
// facade.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pnmcs "repro"
)

func main() {
	svc, err := pnmcs.NewService(pnmcs.ServiceConfig{
		Slots:      3, // jobs served concurrently
		Medians:    4, // shared level-(ℓ−1) workers
		Clients:    8, // shared rollout workers
		QueueLimit: 8, // waiting jobs beyond the slots before ErrServiceSaturated
	})
	if err != nil {
		log.Fatal(err)
	}

	// A mixed batch: every bundled domain, submitted at once. The jobs
	// multiplex onto the same medians and clients.
	specs := []pnmcs.JobSpec{
		{Domain: "morpion", Variant: "4D", Level: 2, Seed: 7, Memorize: true},
		{Domain: "samegame", Width: 8, Height: 8, Colors: 4, BoardSeed: 3, Level: 2, Seed: 5, Memorize: true},
		{Domain: "sudoku", Box: 3, Level: 2, Seed: 1, Memorize: true},
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		id, err := svc.Submit(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = id
		fmt.Printf("submitted %s: %s level %d\n", id, spec.Domain, spec.Level)
	}

	// Stream progress while the batch runs.
	for done := 0; done < len(ids); {
		time.Sleep(50 * time.Millisecond)
		done = 0
		for i, id := range ids {
			st, err := svc.Get(id)
			if err != nil {
				log.Fatal(err)
			}
			if st.State.Terminal() {
				done++
				continue
			}
			fmt.Printf("  %s (%s): %s, %d steps, best %.0f\n",
				id, specs[i].Domain, st.State, st.Steps, st.BestScore)
		}
	}

	fmt.Println()
	for i, id := range ids {
		st, err := svc.Wait(context.Background(), id)
		if err != nil {
			log.Fatal(err)
		}
		if st.State != "done" {
			log.Fatalf("%s ended as %s: %s", id, st.State, st.Error)
		}
		fmt.Printf("%s %-9s score %4.0f in %3d moves, %5d rollouts, %v\n",
			id, specs[i].Domain, st.Score, len(st.Sequence), st.Rollouts,
			st.Finished.Sub(st.Started).Round(time.Millisecond))
	}

	// Graceful drain: running jobs finish, the pool is torn down with no
	// work in flight.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	m := svc.Metrics()
	fmt.Printf("\npool served %d rollouts (%d work units) across %d jobs\n",
		m.Pool.Jobs, m.Pool.WorkUnits, m.Completed)
}
