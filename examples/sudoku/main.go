// Sudoku: nested Monte-Carlo search filling a 16×16 grid, the third
// companion domain. A random playout paints itself into a corner quickly;
// nesting looks ahead before committing and fills far more of the grid —
// the clearest illustration of the NMCS amplification effect.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	pnmcs "repro"
)

func main() {
	box := flag.Int("box", 4, "box side: 4 for 16x16 (the paper's companion domain), 3 for 9x9")
	level := flag.Int("level", 1, "nesting level")
	seed := flag.Uint64("seed", 5, "random seed")
	flag.Parse()

	side := *box * *box
	total := side * side
	fmt.Printf("filling an empty %dx%d grid (%d cells)\n\n", side, side, total)

	for _, lv := range []int{0, *level} {
		searcher := pnmcs.NewSearcher(pnmcs.NewRand(*seed), pnmcs.DefaultSearchOptions())
		grid := pnmcs.NewSudoku(*box)
		res := searcher.Nested(grid, lv)
		status := "stuck"
		if grid.Solved() {
			status = "SOLVED"
		}
		fmt.Printf("level %d: filled %d/%d cells (%s)\n", lv, int(res.Score), total, status)
		if lv == *level {
			fmt.Println()
			fmt.Println(grid.Render())
		}
	}

	// The 9x9 grid through the paper's parallel search on the simulated
	// 64-client cluster: deterministic virtual makespan, same fill count
	// for the same seed on any machine.
	res, err := pnmcs.RunVirtual(pnmcs.PaperCluster(), pnmcs.ParallelConfig{
		Algo: pnmcs.LastMinute, Level: 2, Root: pnmcs.NewSudoku(3),
		Seed: *seed, Memorize: true, JobScale: 8000,
	}, pnmcs.VirtualOptions{UnitCost: time.Microsecond})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel level 2 on the simulated paper cluster: filled %d/81 cells, virtual time %v\n",
		int(res.Score), res.Elapsed.Round(1e9))
}
