// Record hunting on Morpion Solitaire 5D — the figure-1 analogue.
//
// The paper's level-4 parallel search ran for days on 64 cores and found
// two 80-move sequences, a world record for the disjoint version at the
// time. This example runs the same algorithm at a budget that fits a
// laptop (sequential, level 1 or 2) and renders the best grid it finds in
// the style of the paper's figure 1.
//
//	go run ./examples/record            # level 1, a second or two
//	go run ./examples/record -level 2   # level 2, several minutes, better
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	pnmcs "repro"
)

func main() {
	level := flag.Int("level", 1, "nesting level (2 is much stronger and much slower)")
	tries := flag.Int("tries", 3, "independent searches; the best grid is kept")
	seed := flag.Uint64("seed", 2009, "base random seed")
	flag.Parse()

	best := pnmcs.SearchResult{Score: -1}
	start := time.Now()
	for i := 0; i < *tries; i++ {
		searcher := pnmcs.NewSearcher(pnmcs.NewRandStream(*seed, uint64(i)), pnmcs.DefaultSearchOptions())
		res := searcher.Nested(pnmcs.NewMorpion(pnmcs.Var5D), *level)
		fmt.Printf("try %d: %d moves\n", i+1, int(res.Score))
		if res.Score > best.Score {
			best = res
		}
	}

	grid, err := pnmcs.RenderMorpionSequence(pnmcs.Var5D, best.Sequence)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest of %d searches at level %d (%v):\n\n%s\n", *tries, *level, time.Since(start).Round(time.Second), grid)
	fmt.Println("references: best human 68, simulated annealing 79, this paper's level-4 cluster search 80 (world record, 2009)")
}
