package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/morpion"
)

// tinyPreset is a minimal campaign for unit tests: two client counts, one
// seed, 4D at levels 2/3 with hi-level rows disabled.
func tinyPreset() Preset {
	return Preset{
		Scale: ScaleCI, Variant: morpion.Var4D,
		LevelLo: 2, LevelHi: 3,
		CountsLo: []int{1, 8},
		SeedsLo:  1,
		JobScale: 8000, UnitCost: 5 * time.Microsecond,
		Medians: 16, Fig1Level: 1,
	}
}

func TestPresets(t *testing.T) {
	for _, sc := range []Scale{ScaleCI, ScaleLab, ScalePaper} {
		p := PresetFor(sc)
		if p.LevelLo < 2 || p.LevelHi <= p.LevelLo {
			t.Errorf("%s: bad levels %d/%d", sc, p.LevelLo, p.LevelHi)
		}
		if len(p.CountsLo) == 0 || p.SeedsLo < 1 || p.Medians < 1 {
			t.Errorf("%s: incomplete preset %+v", sc, p)
		}
	}
	if PresetFor(ScalePaper).Variant.Name != "5D" {
		t.Error("paper scale must use the paper's 5D variant")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown scale did not panic")
		}
	}()
	PresetFor("bogus")
}

func TestSequentialTimesTable(t *testing.T) {
	p := tinyPreset()
	res, err := SequentialTimes(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "I" {
		t.Fatalf("table id %q", res.ID)
	}
	if !strings.Contains(res.Rendered, "first move") || !strings.Contains(res.Rendered, "one rollout") {
		t.Fatalf("table I missing columns:\n%s", res.Rendered)
	}
	// Level-lo row must carry a real duration; level-hi is skipped at CI
	// (rendered as the paper's missing-entry dash).
	if !strings.Contains(res.Rendered, "2") {
		t.Fatalf("missing level row:\n%s", res.Rendered)
	}
}

func TestFirstMoveTablesAndSpeedup(t *testing.T) {
	p := tinyPreset()
	res, err := FirstMoveRoundRobin(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "II" {
		t.Fatalf("id %q", res.ID)
	}
	if len(res.Measurements) != len(p.CountsLo) {
		t.Fatalf("%d measurements, want %d", len(res.Measurements), len(p.CountsLo))
	}
	sp := Speedup(res.Measurements, p.LevelLo, 1, 8)
	t.Logf("8-client speedup: %.2f", sp)
	if sp < 3 {
		t.Fatalf("8-client first-move speedup %.2f, want >= 3", sp)
	}
	for _, m := range res.Measurements {
		if m.Times.N() != p.SeedsLo {
			t.Fatalf("cell has %d runs, want %d", m.Times.N(), p.SeedsLo)
		}
		if m.Jobs == 0 {
			t.Fatal("cell recorded no client jobs")
		}
	}
}

func TestRolloutTable(t *testing.T) {
	if testing.Short() {
		t.Skip("rollout table in short mode")
	}
	p := tinyPreset()
	p.CountsLo = []int{8} // a single full-game run keeps the test quick
	res, err := RolloutLastMinute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "V" {
		t.Fatalf("id %q", res.ID)
	}
	m := res.Measurements[0]
	if m.FirstMove {
		t.Fatal("rollout table measured first moves")
	}
	// A full game must take much longer than a first move at the same
	// client count (the paper's ratio is ~9-11x).
	fm, err := FirstMoveLastMinute(p)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(m.Times.MeanDuration()) / float64(fm.Measurements[0].Times.MeanDuration())
	t.Logf("rollout/first-move time ratio: %.1f", ratio)
	if ratio < 2 {
		t.Fatalf("rollout (%v) not clearly longer than first move (%v)",
			m.Times.MeanDuration(), fm.Measurements[0].Times.MeanDuration())
	}
	// Rollout scores are full games; sanity: at least the random mean.
	if m.Scores.Mean() < 15 {
		t.Fatalf("suspicious rollout score %v", m.Scores.Mean())
	}
}

func TestHeterogeneousTable(t *testing.T) {
	p := tinyPreset()
	res, err := Heterogeneous(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "VI" {
		t.Fatalf("id %q", res.ID)
	}
	// 2 specs x 2 algorithms at level lo.
	if len(res.Measurements) != 4 {
		t.Fatalf("%d measurements, want 4", len(res.Measurements))
	}
	if !strings.Contains(res.Rendered, "16x4+16x2") || !strings.Contains(res.Rendered, "LM") {
		t.Fatalf("table VI missing rows:\n%s", res.Rendered)
	}
	// The paper's key claim at scale: LM beats RR on both layouts.
	byKey := map[string]time.Duration{}
	for _, m := range res.Measurements {
		byKey[m.Spec+"/"+m.Algo.String()] = m.Times.MeanDuration()
	}
	for _, spec := range []string{"16x4+16x2", "8x4+8x2"} {
		lm, rr := byKey[spec+"/LM"], byKey[spec+"/RR"]
		t.Logf("%s: LM=%v RR=%v", spec, lm, rr)
		if lm >= rr {
			t.Errorf("%s: LM (%v) not faster than RR (%v)", spec, lm, rr)
		}
	}
}

func TestFigure1Renders(t *testing.T) {
	p := tinyPreset()
	out, err := Figure1(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "5D", "score:", " o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 1 missing %q:\n%s", want, out)
		}
	}
}

func TestProtocolFigures(t *testing.T) {
	p := tinyPreset()
	out, err := ProtocolFigures(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figures 2-3", "Figures 4-5", "validated", "--a-->", "in flight"} {
		if !strings.Contains(out, want) {
			t.Fatalf("protocol figures missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryText(t *testing.T) {
	p := tinyPreset()
	tII, err := FirstMoveRoundRobin(p)
	if err != nil {
		t.Fatal(err)
	}
	tIV, err := FirstMoveLastMinute(p)
	if err != nil {
		t.Fatal(err)
	}
	tVI, err := Heterogeneous(p)
	if err != nil {
		t.Fatal(err)
	}
	out := SummaryText(p, tII, tIV, tVI)
	for _, want := range []string{"speedup", "heterogeneous", "RR/LM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "paper: 56") {
		t.Fatal("summary should cite the paper's headline speedup")
	}
}

func TestSpeedupHelper(t *testing.T) {
	mk := func(level, clients int, d time.Duration) *Measurement {
		m := &Measurement{Level: level, Clients: clients}
		m.Times.AddDuration(d)
		return m
	}
	ms := []*Measurement{
		mk(2, 1, 100*time.Second),
		mk(2, 8, 20*time.Second),
		mk(3, 8, time.Hour),
	}
	if sp := Speedup(ms, 2, 1, 8); sp != 5 {
		t.Fatalf("speedup = %v, want 5", sp)
	}
	if sp := Speedup(ms, 3, 1, 8); sp != 0 {
		t.Fatalf("missing base should give 0, got %v", sp)
	}
}
