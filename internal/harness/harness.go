// Package harness defines the paper's experiments (§V, tables I–VI and the
// figures) and regenerates them at configurable scale.
//
// The paper's absolute numbers come from weeks of 2009-era cluster time
// (sequential level 4 alone is 9d18h). The harness therefore runs the same
// experiment *structure* on scaled-down presets and reports the same
// table rows; the quantities that transfer are the shapes — speedup curves,
// the level-to-level cost blowup, and the Last-Minute vs Round-Robin
// comparison on heterogeneous clusters — not the absolute durations.
// See EXPERIMENTS.md for the paper-vs-measured record.
//
// Scaling knobs (see Preset): the Morpion variant (4D stands in for 5D),
// the nesting levels (2/3 stand in for 3/4), and Config.JobScale, which
// restores the paper's computation-to-communication granularity for the
// cheaper stand-in jobs.
package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/morpion"
	"repro/internal/mpi"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Scale selects an experiment preset.
type Scale string

// The three scales: CI runs in a couple of minutes, Lab in under an hour,
// Paper documents the full-size experiment (days of CPU; never run
// implicitly).
const (
	ScaleCI    Scale = "ci"
	ScaleLab   Scale = "lab"
	ScalePaper Scale = "paper"
)

// Preset fixes every knob of an experiment campaign.
type Preset struct {
	Scale   Scale
	Variant morpion.Variant
	// LevelLo/LevelHi stand in for the paper's levels 3 and 4.
	LevelLo, LevelHi int
	// CountsLo are the client counts swept at LevelLo (the paper uses
	// 1..64); CountsHiFM / CountsHiRoll the counts measured at LevelHi for
	// first-move and rollout experiments (empty = skip, like the paper's
	// missing entries).
	CountsLo     []int
	CountsHiFM   []int
	CountsHiRoll []int
	// SeedsLo is the number of repetitions for LevelLo rows; LevelHi rows
	// run once (the paper parenthesizes single-run results).
	SeedsLo int
	// JobScale and UnitCost calibrate the virtual clock (see
	// parallel.Config.JobScale and mpi.VirtualConfig).
	JobScale int64
	UnitCost time.Duration
	Medians  int
	// Fig1Level is the sequential search level used for the figure-1
	// record grid.
	Fig1Level int
}

// PresetFor returns the canonical preset of a scale.
func PresetFor(scale Scale) Preset {
	switch scale {
	case ScaleCI:
		return Preset{
			Scale: ScaleCI, Variant: morpion.Var4D,
			LevelLo: 2, LevelHi: 3,
			CountsLo: []int{1, 2, 4, 8, 16, 32, 64},
			// Hi-level rows are lab-scale; CI leaves them "—" like the
			// paper's own missing cells.
			CountsHiFM: nil, CountsHiRoll: nil,
			SeedsLo:  2,
			JobScale: 8000, UnitCost: mpi.DefaultUnitCost,
			Medians: parallel.PaperMedians, Fig1Level: 1,
		}
	case ScaleLab:
		return Preset{
			Scale: ScaleLab, Variant: morpion.Var4D,
			LevelLo: 2, LevelHi: 3,
			CountsLo:   []int{1, 2, 4, 8, 16, 32, 64},
			CountsHiFM: []int{64, 32, 16}, CountsHiRoll: []int{64},
			SeedsLo:  3,
			JobScale: 8000, UnitCost: mpi.DefaultUnitCost,
			Medians: parallel.PaperMedians, Fig1Level: 2,
		}
	case ScalePaper:
		return Preset{
			Scale: ScalePaper, Variant: morpion.Var5D,
			LevelLo: 3, LevelHi: 4,
			CountsLo:   []int{1, 4, 8, 16, 32, 64},
			CountsHiFM: []int{64, 32, 16, 1}, CountsHiRoll: []int{64, 32},
			SeedsLo:  3,
			JobScale: 1, UnitCost: mpi.DefaultUnitCost,
			Medians: parallel.PaperMedians, Fig1Level: 3,
		}
	default:
		panic(fmt.Sprintf("harness: unknown scale %q", scale))
	}
}

// Measurement is one experimental cell: a (level, clients, algorithm,
// mode) combination with its timing accumulator.
type Measurement struct {
	Table     string
	Level     int
	Clients   int
	Spec      string
	Algo      parallel.Algorithm
	FirstMove bool
	Times     stats.Acc
	Scores    stats.Acc
	Jobs      int64
}

// TableResult is a regenerated paper table.
type TableResult struct {
	ID           string
	Title        string
	Rendered     string
	Measurements []*Measurement
}

// runOnce executes one virtual parallel run and returns its makespan. The
// paper's tables use the static cyclic scheduler — the reproduction
// baseline; the scheduler comparison lives in SchedulerSweep and
// StragglerAblation.
func runOnce(p Preset, spec cluster.Spec, algo parallel.Algorithm, level int, firstMove bool, seed uint64) (parallel.Result, error) {
	cfg := parallel.Config{
		Algo: algo, Level: level, Root: morpion.New(p.Variant),
		Seed: seed, Memorize: true, FirstMoveOnly: firstMove,
		JobScale: p.JobScale, Static: true,
	}
	return parallel.RunVirtual(spec, cfg, parallel.VirtualOptions{
		UnitCost: p.UnitCost, Medians: p.Medians,
	})
}

// measure runs `seeds` repetitions of one cell.
func measure(p Preset, spec cluster.Spec, algo parallel.Algorithm, level int, firstMove bool, seeds int) (*Measurement, error) {
	m := &Measurement{
		Level: level, Clients: spec.NumClients(), Spec: spec.Name,
		Algo: algo, FirstMove: firstMove,
	}
	for s := 0; s < seeds; s++ {
		res, err := runOnce(p, spec, algo, level, firstMove, uint64(s)+1)
		if err != nil {
			return nil, err
		}
		m.Times.AddDuration(res.Elapsed)
		m.Scores.Add(res.Score)
		m.Jobs += res.Jobs
	}
	return m, nil
}

// SequentialTimes regenerates Table I: times for the sequential algorithm
// at both levels, for the first move and for one full rollout. Sequential
// virtual time is metered work converted with the same JobScale as the
// parallel tables, so the numbers are directly comparable.
func SequentialTimes(p Preset, seeds int) (TableResult, error) {
	if seeds < 1 {
		seeds = 1
	}
	type cell struct{ fm, roll stats.Acc }
	cells := map[int]*cell{p.LevelLo: {}, p.LevelHi: {}}

	run := func(level int, seed uint64) (fm, roll time.Duration) {
		meter := &unitMeter{}
		s := core.NewSearcher(rng.New(seed), core.Options{Meter: meter, Memorize: true})
		st := morpion.New(p.Variant)

		// First move: evaluate every initial move with a level-1 search,
		// as the root of nested() does on its first step.
		moves := st.LegalMoves(nil)
		for _, m := range moves {
			child := st.Clone()
			child.Play(m)
			meter.units += core.CloneCost + 1
			s.Nested(child, level-1)
		}
		fm = p.virtual(meter.units)

		// Full rollout: a complete nested game (the first-move work above
		// is the first step of it; the paper times them separately, so we
		// do too, on a fresh meter).
		meter.units = 0
		s2 := core.NewSearcher(rng.New(seed+1000), core.Options{Meter: meter, Memorize: true})
		s2.Nested(morpion.New(p.Variant), level)
		roll = p.virtual(meter.units)
		return fm, roll
	}

	for level := range cells {
		// Hi level runs once (paper's parenthesized singles).
		n := seeds
		if level == p.LevelHi {
			n = 1
			if len(p.CountsHiFM) == 0 && p.Scale == ScaleCI {
				continue // CI skips hi-level sequential too
			}
		}
		for s := 0; s < n; s++ {
			fm, roll := run(level, uint64(s)+1)
			cells[level].fm.AddDuration(fm)
			cells[level].roll.AddDuration(roll)
		}
	}

	tbl := stats.Table{
		Title:  fmt.Sprintf("Table I: times for the sequential algorithm (%s, levels %d/%d)", p.Variant.Name, p.LevelLo, p.LevelHi),
		Header: []string{"level", "first move", "one rollout"},
	}
	for _, level := range []int{p.LevelLo, p.LevelHi} {
		c := cells[level]
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", level), c.fm.PaperStyle(), c.roll.PaperStyle(),
		})
	}
	return TableResult{ID: "I", Title: tbl.Title, Rendered: tbl.Render()}, nil
}

// virtual converts metered units to virtual time at reference speed,
// consistent with the parallel tables' client scaling.
func (p Preset) virtual(units int64) time.Duration {
	return time.Duration(float64(units*p.JobScale) * float64(p.UnitCost))
}

type unitMeter struct{ units int64 }

func (u *unitMeter) Add(n int64) { u.units += n }

// clientTable regenerates tables II–V: one row per client count, columns
// for the two levels.
func clientTable(p Preset, algo parallel.Algorithm, firstMove bool, id, what string) (TableResult, error) {
	countsHi := p.CountsHiRoll
	if firstMove {
		countsHi = p.CountsHiFM
	}
	hiSet := map[int]bool{}
	for _, c := range countsHi {
		hiSet[c] = true
	}

	var ms []*Measurement
	tbl := stats.Table{
		Title: fmt.Sprintf("Table %s: %s times for the %s algorithm (%s)",
			id, what, algoLong(algo), p.Variant.Name),
		Header: []string{"clients", fmt.Sprintf("level %d", p.LevelLo), fmt.Sprintf("level %d", p.LevelHi)},
	}
	for _, n := range p.CountsLo {
		spec := cluster.Homogeneous(n)
		lo, err := measure(p, spec, algo, p.LevelLo, firstMove, p.SeedsLo)
		if err != nil {
			return TableResult{}, err
		}
		lo.Table = id
		ms = append(ms, lo)
		hiCell := "—"
		if hiSet[n] {
			hi, err := measure(p, spec, algo, p.LevelHi, firstMove, 1)
			if err != nil {
				return TableResult{}, err
			}
			hi.Table = id
			ms = append(ms, hi)
			hiCell = hi.Times.PaperStyle()
		}
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("%d", n), lo.Times.PaperStyle(), hiCell})
	}
	return TableResult{ID: id, Title: tbl.Title, Rendered: tbl.Render(), Measurements: ms}, nil
}

func algoLong(a parallel.Algorithm) string {
	if a == parallel.RoundRobin {
		return "Round-Robin"
	}
	return "Last-Minute"
}

// FirstMoveRoundRobin regenerates Table II.
func FirstMoveRoundRobin(p Preset) (TableResult, error) {
	return clientTable(p, parallel.RoundRobin, true, "II", "first move")
}

// RolloutRoundRobin regenerates Table III.
func RolloutRoundRobin(p Preset) (TableResult, error) {
	return clientTable(p, parallel.RoundRobin, false, "III", "rollout")
}

// FirstMoveLastMinute regenerates Table IV.
func FirstMoveLastMinute(p Preset) (TableResult, error) {
	return clientTable(p, parallel.LastMinute, true, "IV", "first move")
}

// RolloutLastMinute regenerates Table V.
func RolloutLastMinute(p Preset) (TableResult, error) {
	return clientTable(p, parallel.LastMinute, false, "V", "rollout")
}

// Heterogeneous regenerates Table VI: first-move times on the two
// unbalanced client layouts, Last-Minute vs Round-Robin.
func Heterogeneous(p Preset) (TableResult, error) {
	specs := []cluster.Spec{cluster.Hetero16x4p16x2(), cluster.Hetero8x4p8x2()}
	algos := []parallel.Algorithm{parallel.LastMinute, parallel.RoundRobin}

	var ms []*Measurement
	tbl := stats.Table{
		Title: fmt.Sprintf("Table VI: first move times on an heterogeneous cluster (%s)", p.Variant.Name),
		Header: []string{"clients", "alg",
			fmt.Sprintf("level %d", p.LevelLo), fmt.Sprintf("level %d", p.LevelHi)},
	}
	runHi := len(p.CountsHiFM) > 0
	for _, spec := range specs {
		for _, algo := range algos {
			lo, err := measure(p, spec, algo, p.LevelLo, true, p.SeedsLo)
			if err != nil {
				return TableResult{}, err
			}
			lo.Table = "VI"
			ms = append(ms, lo)
			hiCell := "—"
			if runHi {
				hi, err := measure(p, spec, algo, p.LevelHi, true, 1)
				if err != nil {
					return TableResult{}, err
				}
				hi.Table = "VI"
				ms = append(ms, hi)
				hiCell = hi.Times.PaperStyle()
			}
			tbl.Rows = append(tbl.Rows, []string{
				spec.Name, algo.String(), lo.Times.PaperStyle(), hiCell,
			})
		}
	}
	return TableResult{ID: "VI", Title: tbl.Title, Rendered: tbl.Render(), Measurements: ms}, nil
}

// Figure1 hunts for a good sequence with a sequential nested search on the
// paper's 5D variant and renders the final grid, the analogue of the
// world-record figure. It reports the score against the known records.
func Figure1(p Preset, seed uint64) (string, error) {
	variant := morpion.Var5D
	s := core.NewSearcher(rng.New(seed), core.DefaultOptions())
	st := morpion.New(variant)
	res := s.Nested(st.Clone(), p.Fig1Level)

	grid, err := morpion.RenderSequence(variant, res.Sequence)
	if err != nil {
		return "", fmt.Errorf("harness: figure 1 sequence does not replay: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 analogue: best 5D grid found by sequential NMCS level %d\n", p.Fig1Level)
	fmt.Fprintf(&b, "score: %.0f (paper's level-4 cluster record: %d; previous best computer score: 79)\n\n",
		res.Score, morpion.BestKnown("5D"))
	b.WriteString(grid)
	return b.String(), nil
}

// ProtocolFigures regenerates figures 2–5: it runs both dispatchers with
// tracing, validates the streams against the paper's communication
// diagrams, and renders ASCII sequence diagrams with the observed
// parallelism.
func ProtocolFigures(p Preset) (string, error) {
	var b strings.Builder
	for _, algo := range []parallel.Algorithm{parallel.RoundRobin, parallel.LastMinute} {
		col := &trace.Collector{}
		spec := cluster.Homogeneous(8)
		lay := spec.Layout(8)
		cfg := parallel.Config{
			Algo: algo, Level: p.LevelLo, Root: morpion.New(p.Variant),
			Seed: 21, Memorize: true, FirstMoveOnly: true,
			JobScale: p.JobScale, Tracer: col, Static: true,
		}
		if _, err := parallel.RunVirtual(spec, cfg, parallel.VirtualOptions{
			UnitCost: p.UnitCost, Medians: 8,
		}); err != nil {
			return "", err
		}
		events := col.Events()
		if err := trace.Validate(events, algo, lay); err != nil {
			return "", fmt.Errorf("harness: %v protocol trace invalid: %w", algo, err)
		}
		figs := "2-3"
		if algo == parallel.LastMinute {
			figs = "4-5"
		}
		sum := trace.Summary(events)
		fmt.Fprintf(&b, "Figures %s: %s protocol (validated, %d events: a=%d b=%d c=%d c'=%d d=%d)\n",
			figs, algoLong(algo), len(events), sum["a"], sum["b"], sum["c"], sum["c'"], sum["d"])
		fmt.Fprintf(&b, "max jobs simultaneously in flight (fig %s parallelism): %d\n",
			figs[len(figs)-1:], trace.MaxOutstanding(events, lay))
		b.WriteString(trace.Diagram(events, lay, 25))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Speedup returns mean-time(base clients) / mean-time(n clients) across
// the measurements of a table, or 0 if either cell is missing.
func Speedup(ms []*Measurement, level, base, n int) float64 {
	var tBase, tN time.Duration
	for _, m := range ms {
		if m.Level != level {
			continue
		}
		if m.Clients == base && tBase == 0 {
			tBase = m.Times.MeanDuration()
		}
		if m.Clients == n && tN == 0 {
			tN = m.Times.MeanDuration()
		}
	}
	if tBase == 0 || tN == 0 {
		return 0
	}
	return float64(tBase) / float64(tN)
}

// SummaryText computes the paper's §V headline quantities from the
// regenerated tables: the speedup curve and the heterogeneous LM/RR ratio.
func SummaryText(p Preset, tII, tIV, tVI TableResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Summary (%s scale, %s, levels %d/%d)\n",
		p.Scale, p.Variant.Name, p.LevelLo, p.LevelHi)
	maxN := p.CountsLo[len(p.CountsLo)-1]
	fmt.Fprintf(&b, "Round-Robin level-%d first-move speedup %d clients vs 1: %.1f (paper: 56 on 64 at level 3)\n",
		p.LevelLo, maxN, Speedup(tII.Measurements, p.LevelLo, 1, maxN))
	fmt.Fprintf(&b, "Last-Minute level-%d first-move speedup %d clients vs 1: %.1f\n",
		p.LevelLo, maxN, Speedup(tIV.Measurements, p.LevelLo, 1, maxN))

	// Heterogeneous ratio RR/LM per spec (paper: LM clearly faster at
	// level 4: 28m37s vs 45m17s on 16x4+16x2).
	byKey := map[string]time.Duration{}
	for _, m := range tVI.Measurements {
		if m.Level == p.LevelLo {
			byKey[m.Spec+"/"+m.Algo.String()] = m.Times.MeanDuration()
		}
	}
	for _, spec := range []string{"16x4+16x2", "8x4+8x2"} {
		lm, rr := byKey[spec+"/LM"], byKey[spec+"/RR"]
		if lm > 0 && rr > 0 {
			fmt.Fprintf(&b, "heterogeneous %s: RR/LM time ratio %.2f (LM wins when > 1)\n",
				spec, float64(rr)/float64(lm))
		}
	}
	return b.String()
}
