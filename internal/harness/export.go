package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSON export of experiment results, for archiving runs and for
// machine-diffing against previous campaigns.

// CellJSON is the serialized form of one measurement.
type CellJSON struct {
	Table      string  `json:"table"`
	Level      int     `json:"level"`
	Clients    int     `json:"clients"`
	Spec       string  `json:"spec,omitempty"`
	Algorithm  string  `json:"algorithm"`
	FirstMove  bool    `json:"first_move"`
	Runs       int     `json:"runs"`
	MeanSec    float64 `json:"mean_sec"`
	StddevSec  float64 `json:"stddev_sec"`
	MeanScore  float64 `json:"mean_score"`
	TotalJobs  int64   `json:"total_jobs"`
	Rendered   string  `json:"rendered_mean"`
	PaperStyle string  `json:"paper_style"`
}

// CampaignJSON is a whole exported campaign.
type CampaignJSON struct {
	Scale    string     `json:"scale"`
	Variant  string     `json:"variant"`
	LevelLo  int        `json:"level_lo"`
	LevelHi  int        `json:"level_hi"`
	JobScale int64      `json:"job_scale"`
	UnitCost string     `json:"unit_cost"`
	Cells    []CellJSON `json:"cells"`
}

// ExportJSON writes the measurements of the given tables as indented JSON.
func ExportJSON(w io.Writer, p Preset, tables ...TableResult) error {
	out := CampaignJSON{
		Scale:    string(p.Scale),
		Variant:  p.Variant.Name,
		LevelLo:  p.LevelLo,
		LevelHi:  p.LevelHi,
		JobScale: p.JobScale,
		UnitCost: p.UnitCost.String(),
	}
	for _, t := range tables {
		for _, m := range t.Measurements {
			mean := m.Times.MeanDuration()
			out.Cells = append(out.Cells, CellJSON{
				Table:      t.ID,
				Level:      m.Level,
				Clients:    m.Clients,
				Spec:       m.Spec,
				Algorithm:  m.Algo.String(),
				FirstMove:  m.FirstMove,
				Runs:       m.Times.N(),
				MeanSec:    mean.Seconds(),
				StddevSec:  m.Times.StddevDuration().Seconds(),
				MeanScore:  m.Scores.Mean(),
				TotalJobs:  m.Jobs,
				Rendered:   mean.Round(time.Second).String(),
				PaperStyle: m.Times.PaperStyle(),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("harness: export: %w", err)
	}
	return nil
}

// ImportJSON reads a campaign back.
func ImportJSON(r io.Reader) (CampaignJSON, error) {
	var c CampaignJSON
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return CampaignJSON{}, fmt.Errorf("harness: import: %w", err)
	}
	return c, nil
}
