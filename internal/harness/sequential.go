package harness

import (
	"repro/internal/core"
	"repro/internal/morpion"
	"repro/internal/rng"
)

// defaultCoreOptions builds sequential search options for ablations.
func defaultCoreOptions(memorize bool) core.Options {
	o := core.DefaultOptions()
	o.Memorize = memorize
	return o
}

// runSequentialGame plays one sequential nested game at the preset's low
// level and returns its score.
func runSequentialGame(p Preset, opt core.Options, seed uint64) float64 {
	s := core.NewSearcher(rng.New(seed), opt)
	return s.Nested(morpion.New(p.Variant), p.LevelLo).Score
}
