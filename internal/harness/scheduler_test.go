package harness

import (
	"strings"
	"testing"
)

// schedulerPreset trims the CI preset for fast scheduler-experiment tests.
func schedulerPreset() Preset {
	p := PresetFor(ScaleCI)
	p.SeedsLo = 1
	return p
}

func TestSchedulerSweep(t *testing.T) {
	p := schedulerPreset()
	res, err := SchedulerSweep(p, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Rendered, "static") || !strings.Contains(res.Rendered, "pull") {
		t.Fatalf("sweep table missing scheduler columns:\n%s", res.Rendered)
	}
	if len(res.Measurements) != 4 {
		t.Fatalf("sweep recorded %d measurements, want 4 (2 counts × 2 schedulers)", len(res.Measurements))
	}
	// On a homogeneous cluster the pull scheduler must not lose badly to
	// static: candidate-to-median assignment is the only difference.
	for _, n := range []int{4, 16} {
		var static, pull float64
		for _, m := range res.Measurements {
			if m.Clients != n {
				continue
			}
			if strings.HasSuffix(m.Spec, "/static") {
				static = m.Times.Mean()
			}
			if strings.HasSuffix(m.Spec, "/pull") {
				pull = m.Times.Mean()
			}
		}
		if static == 0 || pull == 0 {
			t.Fatalf("missing cells for %d clients", n)
		}
		if pull > 1.15*static {
			t.Errorf("%d clients: pull %.3fs much slower than static %.3fs on homogeneous cluster", n, pull, static)
		}
	}
}

func TestStragglerAblation(t *testing.T) {
	p := schedulerPreset()
	res, rows, err := StragglerAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ablation produced %d rows, want 4 (static, pull, pull full game, async full game)", len(rows))
	}
	static := durationOf(rows, "static cyclic (paper)")
	pull := durationOf(rows, "demand-driven pull")
	if static == 0 || pull == 0 {
		t.Fatalf("missing rows: %+v", rows)
	}
	t.Logf("straggler ablation: static=%v pull=%v\n%s", static, pull, res.Rendered)
	// The acceptance bar of the scheduler rewrite: ≥ 25% lower step
	// latency with one 2×-slow median.
	if float64(pull) > 0.75*float64(static) {
		t.Errorf("pull step latency %v not >=25%% below static %v", pull, static)
	}
	if !strings.Contains(res.Rendered, "%") {
		t.Errorf("ablation table missing idle percentages:\n%s", res.Rendered)
	}
	// The async rows run whole games: the pipelined root must beat the
	// synchronous pull root on mean step latency (it overlaps the
	// straggler's step tail with the next step's head), at a nonzero but
	// bounded wasted-speculation price.
	pullSteps := durationOf(rows, "demand-driven pull, full game")
	async := durationOf(rows, "async pipelined (k=2), full game")
	if pullSteps == 0 || async == 0 {
		t.Fatalf("missing full-game rows: %+v", rows)
	}
	t.Logf("full game: pull=%v async=%v", pullSteps, async)
	if async >= pullSteps {
		t.Errorf("async mean step latency %v not below synchronous pull %v", async, pullSteps)
	}
}
