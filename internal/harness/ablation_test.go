package harness

import (
	"strings"
	"testing"
)

func TestDispatcherAblation(t *testing.T) {
	p := tinyPreset()
	res, rows, err := DispatcherAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if !strings.Contains(res.Rendered, "Round-Robin") || !strings.Contains(res.Rendered, "FIFO") {
		t.Fatalf("ablation table incomplete:\n%s", res.Rendered)
	}
	lm := durationOf(rows, "Last-Minute (paper: longest job first)")
	rr := durationOf(rows, "Round-Robin")
	if lm == 0 || rr == 0 {
		t.Fatal("missing measurements")
	}
	// The full LM must beat plain RR on the heterogeneous cluster (the
	// FIFO variant sits anywhere between; its exact rank is workload
	// dependent and is reported, not asserted).
	t.Logf("ablation:\n%s", res.Rendered)
	if lm >= rr {
		t.Fatalf("paper LM (%v) not faster than RR (%v)", lm, rr)
	}
}

func TestMedianAblation(t *testing.T) {
	p := tinyPreset()
	res, rows, err := MedianAblation(p, []int{2, 40})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("median ablation:\n%s", res.Rendered)
	few := durationOf(rows, "2")
	many := durationOf(rows, "40")
	if few == 0 || many == 0 {
		t.Fatal("missing measurements")
	}
	// With only 2 medians the root's ~40-way fan-out serializes: clearly
	// slower than the paper's 40-median configuration.
	if few <= many {
		t.Fatalf("2 medians (%v) not slower than 40 medians (%v)", few, many)
	}
}

func TestMemorizationAblation(t *testing.T) {
	p := tinyPreset()
	res, err := MemorizationAblation(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Rendered, "reflexive") || !strings.Contains(res.Rendered, "paper") {
		t.Fatalf("memorization ablation incomplete:\n%s", res.Rendered)
	}
	t.Logf("memorization ablation:\n%s", res.Rendered)
}
