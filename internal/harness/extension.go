package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/morpion"
	"repro/internal/rng"
	"repro/internal/samegame"
	"repro/internal/stats"
	"repro/internal/sudoku"
)

// Extension experiments beyond the paper's tables, supporting its framing:
// §I claims that "the use of nested levels of Monte-Carlo search amplifies
// the results of the search". ScoreByLevel quantifies that amplification on
// the paper's domain and the two companion domains of the NMCS line of
// work.

// ScoreByLevel plays `games` sequential games per level on each domain and
// tabulates mean and best scores. Levels above 2 are omitted at CI scale
// for cost reasons — the trend is visible from 0→1→2.
func ScoreByLevel(p Preset, maxLevel, games int) (TableResult, error) {
	if games < 1 {
		games = 3
	}
	if maxLevel < 1 {
		maxLevel = 1
	}

	tbl := stats.Table{
		Title:  fmt.Sprintf("Extension: score amplification by nesting level (%d games per cell)", games),
		Header: []string{"domain", "level", "mean score", "best"},
	}

	addRows := func(name string, run func(level int, seed uint64) float64) {
		for level := 0; level <= maxLevel; level++ {
			var acc stats.Acc
			for g := 0; g < games; g++ {
				acc.Add(run(level, uint64(g)*31+uint64(level)+1))
			}
			tbl.Rows = append(tbl.Rows, []string{
				name, fmt.Sprintf("%d", level),
				fmt.Sprintf("%.1f", acc.Mean()), fmt.Sprintf("%.0f", acc.Max()),
			})
		}
	}

	addRows("morpion "+p.Variant.Name, func(level int, seed uint64) float64 {
		s := core.NewSearcher(rng.New(seed), core.DefaultOptions())
		return s.Nested(morpion.New(p.Variant), level).Score
	})
	addRows("samegame 8x8x4", func(level int, seed uint64) float64 {
		s := core.NewSearcher(rng.New(seed), core.DefaultOptions())
		return s.Nested(samegame.NewRandom(8, 8, 4, seed), level).Score
	})
	addRows("sudoku 9x9", func(level int, seed uint64) float64 {
		s := core.NewSearcher(rng.New(seed), core.DefaultOptions())
		return s.Nested(sudoku.New(3), level).Score
	})

	return TableResult{ID: "E1", Title: tbl.Title, Rendered: tbl.Render()}, nil
}
