package harness

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/morpion"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Scheduler experiments beyond the paper's tables: the paper schedules the
// root's candidate positions onto medians in fixed cyclic order (§IV-A),
// which the demand-driven pull scheduler replaces. Because client rollout
// scores are keyed by logical job coordinates, both schedulers play
// bit-identical games — these experiments measure the only thing that
// differs, time and utilization.

// maxIdle returns the largest idle fraction of the listed ranks.
func maxIdle(idle []time.Duration, elapsed time.Duration) float64 {
	worst := 0.0
	for _, d := range idle {
		if u := stats.Utilization(d, elapsed); u > worst {
			worst = u
		}
	}
	return worst
}

// schedulerCell measures one (spec, static?) configuration of the
// scheduler experiments and accumulates times plus idle fractions.
type schedulerCell struct {
	times       stats.Acc
	medianIdle  stats.Acc // mean idle fraction across medians
	medianWorst stats.Acc // idle fraction of the idlest median
	clientIdle  stats.Acc
	wasted      stats.Acc // rollouts charged to losing speculative branches
	queueMax    int
}

func (c *schedulerCell) measure(p Preset, spec cluster.Spec, static bool, opts parallel.VirtualOptions, seeds int) error {
	for s := 0; s < seeds; s++ {
		cfg := parallel.Config{
			Algo: parallel.LastMinute, Level: p.LevelLo, Root: morpion.New(p.Variant),
			Seed: uint64(s) + 1, Memorize: true, FirstMoveOnly: true,
			JobScale: p.JobScale, Static: static,
		}
		res, err := parallel.RunVirtual(spec, cfg, opts)
		if err != nil {
			return err
		}
		c.times.AddDuration(res.Elapsed)
		c.medianIdle.Add(stats.MeanFraction(res.MedianIdle, res.Elapsed))
		c.medianWorst.Add(maxIdle(res.MedianIdle, res.Elapsed))
		c.clientIdle.Add(stats.MeanFraction(res.ClientIdle, res.Elapsed))
		if res.QueueDepthMax > c.queueMax {
			c.queueMax = res.QueueDepthMax
		}
	}
	return nil
}

// asyncSpeculate is the speculation width of the ablation's async rows:
// wide enough to cover the realistic argmax front-runners, narrow enough
// that a wrong guess wastes a bounded slice of the fleet.
const asyncSpeculate = 2

// measureSteps is measure's multi-step sibling for the async-root rows:
// whole games (FirstMoveOnly off — speculation pipelines step boundaries,
// so a one-step run cannot show it), per-step latency from
// Result.StepLatency, and the wasted-speculation fraction of the run's
// client rollouts. speculate 0 is the synchronous pull baseline.
func (c *schedulerCell) measureSteps(p Preset, spec cluster.Spec, speculate int, opts parallel.VirtualOptions, seeds int) error {
	for s := 0; s < seeds; s++ {
		cfg := parallel.Config{
			Algo: parallel.LastMinute, Level: p.LevelLo, Root: morpion.New(p.Variant),
			Seed: uint64(s) + 1, Memorize: true,
			JobScale: p.JobScale, Speculate: speculate,
		}
		res, err := parallel.RunVirtual(spec, cfg, opts)
		if err != nil {
			return err
		}
		var sum time.Duration
		for _, d := range res.StepLatency {
			sum += d
		}
		if n := len(res.StepLatency); n > 0 {
			c.times.AddDuration(sum / time.Duration(n))
		}
		c.medianIdle.Add(stats.MeanFraction(res.MedianIdle, res.Elapsed))
		c.medianWorst.Add(maxIdle(res.MedianIdle, res.Elapsed))
		c.clientIdle.Add(stats.MeanFraction(res.ClientIdle, res.Elapsed))
		if res.Jobs > 0 {
			c.wasted.Add(float64(res.SpecWasted) / float64(res.Jobs))
		}
		if res.QueueDepthMax > c.queueMax {
			c.queueMax = res.QueueDepthMax
		}
	}
	return nil
}

// SchedulerSweep regenerates the speedup-vs-nodes comparison between the
// static cyclic scheduler and the demand-driven pull scheduler on
// homogeneous clusters: one row per client count, first-move times for
// both schedulers and the pull scheduler's median idle fraction. On equal
// node speeds the two should track each other closely — the pull
// scheduler's win is on heterogeneous hardware (see StragglerAblation);
// this sweep demonstrates it costs nothing when the cluster is balanced.
func SchedulerSweep(p Preset, counts []int) (TableResult, error) {
	if len(counts) == 0 {
		counts = p.CountsLo
	}
	tbl := stats.Table{
		Title: fmt.Sprintf("Scheduler sweep: first move, %s level %d, static cyclic vs demand-driven pull",
			p.Variant.Name, p.LevelLo),
		Header: []string{"clients", "static", "pull", "static/pull", "pull median idle"},
	}
	var ms []*Measurement
	for _, n := range counts {
		spec := cluster.Homogeneous(n)
		opts := parallel.VirtualOptions{UnitCost: p.UnitCost, Medians: p.Medians}
		var st, pl schedulerCell
		if err := st.measure(p, spec, true, opts, p.SeedsLo); err != nil {
			return TableResult{}, err
		}
		if err := pl.measure(p, spec, false, opts, p.SeedsLo); err != nil {
			return TableResult{}, err
		}
		ratio := float64(st.times.MeanDuration()) / float64(pl.times.MeanDuration())
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			st.times.PaperStyle(),
			pl.times.PaperStyle(),
			fmt.Sprintf("%.2f", ratio),
			stats.FormatPercent(pl.medianIdle.Mean()),
		})
		for _, v := range []struct {
			suffix string
			cell   *schedulerCell
		}{{"/static", &st}, {"/pull", &pl}} {
			ms = append(ms, &Measurement{Table: "S1", Level: p.LevelLo, Clients: n,
				Spec: spec.Name + v.suffix, Algo: parallel.LastMinute, FirstMove: true,
				Times: v.cell.times})
		}
	}
	return TableResult{ID: "S1", Title: tbl.Title, Rendered: tbl.Render(), Measurements: ms}, nil
}

// StragglerSpec is the heterogeneous testbed of the straggler ablation:
// a homogeneous 64-client cluster whose first median process runs at half
// speed — one slow rank on the server, the scenario where the static
// cyclic order stalls every root step on the straggler.
func StragglerSpec() cluster.Spec {
	return cluster.Homogeneous(64).WithSlowMedian(0, 0.5)
}

// StragglerMedians is the median pool size of the ablation: small enough
// that every median receives several candidates per root step, which is
// what gives the demand-driven scheduler room to shift load away from the
// straggler.
const StragglerMedians = 6

// stragglerUnitCost puts the virtual clock in the regime where the
// medians' own cloning work — the part scaled by median speed — dominates
// the round-trip latencies, as on the paper's cluster where positions are
// large and links are Gigabit.
const stragglerUnitCost = time.Millisecond

// StragglerAblation measures the heterogeneous scheduler comparison: one
// 2×-slow median, static cyclic vs demand-driven pull, first-move step
// latency with per-rank idle fractions. The acceptance bar for the
// scheduler rewrite is pull ≥ 25% below static here; both runs play the
// identical game, so the gap is pure scheduling.
//
// Two further rows compare the pull root against the async pipelined root
// (Config.Speculate) on the same straggler — necessarily over whole
// multi-step games, because speculation cannot shorten a single step: it
// overlaps the tail of step s (the straggler's last grants) with the head
// of step s+1, so its win only exists at step boundaries. Those rows
// report the mean per-step latency (Result.StepLatency) and the price
// paid for it, the fraction of client rollouts charged to losing
// speculative branches. All four rows play the identical game per seed.
func StragglerAblation(p Preset) (TableResult, []*AblationRow, error) {
	spec := StragglerSpec()
	sp := p
	sp.JobScale = 1 // medians must matter: no client-side work inflation
	opts := parallel.VirtualOptions{UnitCost: stragglerUnitCost, Medians: StragglerMedians}

	tbl := stats.Table{
		Title: fmt.Sprintf("Ablation: scheduler on a straggler cluster (%s level %d, %s, %d medians)",
			p.Variant.Name, p.LevelLo, spec.Name, StragglerMedians),
		Header: []string{"scheduler", "step latency", "median idle (mean)", "median idle (max)", "queue depth max", "wasted spec"},
	}
	var rows []*AblationRow
	var ms []*Measurement
	for _, static := range []bool{true, false} {
		var cell schedulerCell
		if err := cell.measure(sp, spec, static, opts, sp.SeedsLo); err != nil {
			return TableResult{}, nil, err
		}
		name, suffix := "demand-driven pull", "/pull"
		if static {
			name, suffix = "static cyclic (paper)", "/static"
		}
		row := &AblationRow{Name: name, Clients: spec.NumClients()}
		row.Times = cell.times
		rows = append(rows, row)
		ms = append(ms, &Measurement{Table: "S2", Level: sp.LevelLo, Clients: spec.NumClients(),
			Spec: spec.Name + suffix, Algo: parallel.LastMinute, FirstMove: true,
			Times: cell.times})
		tbl.Rows = append(tbl.Rows, []string{
			name,
			cell.times.PaperStyle(),
			stats.FormatPercent(cell.medianIdle.Mean()),
			stats.FormatPercent(cell.medianWorst.Mean()),
			fmt.Sprintf("%d", cell.queueMax),
			"—",
		})
	}
	for _, speculate := range []int{0, asyncSpeculate} {
		var cell schedulerCell
		if err := cell.measureSteps(sp, spec, speculate, opts, sp.SeedsLo); err != nil {
			return TableResult{}, nil, err
		}
		name, suffix := fmt.Sprintf("async pipelined (k=%d), full game", asyncSpeculate), "/async"
		if speculate == 0 {
			name, suffix = "demand-driven pull, full game", "/pull-steps"
		}
		row := &AblationRow{Name: name, Clients: spec.NumClients()}
		row.Times = cell.times
		rows = append(rows, row)
		ms = append(ms, &Measurement{Table: "S2", Level: sp.LevelLo, Clients: spec.NumClients(),
			Spec: spec.Name + suffix, Algo: parallel.LastMinute, FirstMove: false,
			Times: cell.times})
		tbl.Rows = append(tbl.Rows, []string{
			name,
			cell.times.PaperStyle(),
			stats.FormatPercent(cell.medianIdle.Mean()),
			stats.FormatPercent(cell.medianWorst.Mean()),
			fmt.Sprintf("%d", cell.queueMax),
			stats.FormatPercent(cell.wasted.Mean()),
		})
	}
	return TableResult{ID: "S2", Title: tbl.Title, Rendered: tbl.Render(), Measurements: ms}, rows, nil
}
