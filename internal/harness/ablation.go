package harness

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/morpion"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Ablations beyond the paper's tables, probing the design choices §IV
// motivates but does not isolate:
//
//   - dispatcher policy: Round-Robin vs Last-Minute vs Last-Minute with a
//     FIFO job queue (removing the longest-expected-job-first heuristic of
//     §IV-B line 8);
//   - median pool size: the paper runs 40 medians "greater than the number
//     of possible moves" — what happens with fewer.

// AblationRow is one measured configuration.
type AblationRow struct {
	Name    string
	Times   stats.Acc
	Clients int
}

// DispatcherAblation compares RR, LM and LM-FIFO first-move times on a
// heterogeneous cluster. The gap between LM and LM-FIFO isolates the
// job-ordering heuristic; the gap between LM-FIFO and RR isolates the
// free-client tracking.
func DispatcherAblation(p Preset) (TableResult, []*AblationRow, error) {
	spec := cluster.Hetero8x4p8x2()
	type variant struct {
		name string
		algo parallel.Algorithm
		fifo bool
	}
	variants := []variant{
		{"Round-Robin", parallel.RoundRobin, false},
		{"Last-Minute (FIFO queue)", parallel.LastMinute, true},
		{"Last-Minute (paper: longest job first)", parallel.LastMinute, false},
	}

	var rows []*AblationRow
	tbl := stats.Table{
		Title:  fmt.Sprintf("Ablation: dispatcher policy, first move, %s level %d, %s", p.Variant.Name, p.LevelLo, spec.Name),
		Header: []string{"dispatcher", "time"},
	}
	for _, v := range variants {
		row := &AblationRow{Name: v.name, Clients: spec.NumClients()}
		for s := 0; s < p.SeedsLo; s++ {
			cfg := parallel.Config{
				Algo: v.algo, Level: p.LevelLo, Root: morpion.New(p.Variant),
				Seed: uint64(s) + 1, Memorize: true, FirstMoveOnly: true,
				JobScale: p.JobScale, LMFifo: v.fifo, Static: true,
			}
			res, err := parallel.RunVirtual(spec, cfg, parallel.VirtualOptions{
				UnitCost: p.UnitCost, Medians: p.Medians,
			})
			if err != nil {
				return TableResult{}, nil, err
			}
			row.Times.AddDuration(res.Elapsed)
		}
		rows = append(rows, row)
		tbl.Rows = append(tbl.Rows, []string{v.name, row.Times.PaperStyle()})
	}
	return TableResult{ID: "A1", Title: tbl.Title, Rendered: tbl.Render()}, rows, nil
}

// MedianAblation measures first-move time against the median pool size on
// a homogeneous 64-client cluster. Too few medians serialize the root's
// fan-out (several root candidates share a median and are played one after
// the other), so times degrade below the paper's "more medians than moves"
// regime.
func MedianAblation(p Preset, medianCounts []int) (TableResult, []*AblationRow, error) {
	spec := cluster.Homogeneous(64)
	var rows []*AblationRow
	tbl := stats.Table{
		Title:  fmt.Sprintf("Ablation: median pool size, first move, %s level %d, 64 clients", p.Variant.Name, p.LevelLo),
		Header: []string{"medians", "time"},
	}
	for _, m := range medianCounts {
		row := &AblationRow{Name: fmt.Sprintf("%d", m), Clients: 64}
		for s := 0; s < p.SeedsLo; s++ {
			cfg := parallel.Config{
				Algo: parallel.RoundRobin, Level: p.LevelLo, Root: morpion.New(p.Variant),
				Seed: uint64(s) + 1, Memorize: true, FirstMoveOnly: true,
				JobScale: p.JobScale, Static: true,
			}
			res, err := parallel.RunVirtual(spec, cfg, parallel.VirtualOptions{
				UnitCost: p.UnitCost, Medians: m,
			})
			if err != nil {
				return TableResult{}, nil, err
			}
			row.Times.AddDuration(res.Elapsed)
		}
		rows = append(rows, row)
		tbl.Rows = append(tbl.Rows, []string{row.Name, row.Times.PaperStyle()})
	}
	return TableResult{ID: "A2", Title: tbl.Title, Rendered: tbl.Render()}, rows, nil
}

// MemorizationAblation compares the paper's nested rollout (best-sequence
// memory, §III lines 7-10) against the older reflexive variant without it
// (Cazenave 2007), sequentially, reporting mean scores.
func MemorizationAblation(p Preset, games int) (TableResult, error) {
	if games < 1 {
		games = 4
	}
	tbl := stats.Table{
		Title:  fmt.Sprintf("Ablation: best-sequence memorization, sequential level %d on %s (%d games)", p.LevelLo, p.Variant.Name, games),
		Header: []string{"variant", "mean score", "max"},
	}
	for _, memorize := range []bool{true, false} {
		var acc stats.Acc
		for i := 0; i < games; i++ {
			opt := defaultCoreOptions(memorize)
			res := runSequentialGame(p, opt, uint64(i)+1)
			acc.Add(res)
		}
		name := "reflexive (no memory)"
		if memorize {
			name = "nested rollout (paper)"
		}
		tbl.Rows = append(tbl.Rows, []string{
			name, fmt.Sprintf("%.1f", acc.Mean()), fmt.Sprintf("%.0f", acc.Max()),
		})
	}
	return TableResult{ID: "A3", Title: tbl.Title, Rendered: tbl.Render()}, nil
}

// durationOf is a helper kept for tests.
func durationOf(rows []*AblationRow, name string) time.Duration {
	for _, r := range rows {
		if r.Name == name {
			return r.Times.MeanDuration()
		}
	}
	return 0
}
