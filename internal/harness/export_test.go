package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	p := tinyPreset()
	tII, err := FirstMoveRoundRobin(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportJSON(&buf, p, tII); err != nil {
		t.Fatal(err)
	}
	c, err := ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale != string(p.Scale) || c.Variant != p.Variant.Name {
		t.Fatalf("campaign header mangled: %+v", c)
	}
	if len(c.Cells) != len(tII.Measurements) {
		t.Fatalf("cells %d != measurements %d", len(c.Cells), len(tII.Measurements))
	}
	for _, cell := range c.Cells {
		if cell.Table != "II" || cell.MeanSec <= 0 || cell.Runs != p.SeedsLo {
			t.Fatalf("bad cell %+v", cell)
		}
		if cell.Algorithm != "RR" {
			t.Fatalf("algorithm %q", cell.Algorithm)
		}
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ImportJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestScoreByLevel(t *testing.T) {
	p := tinyPreset()
	res, err := ScoreByLevel(p, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"morpion 4D", "samegame", "sudoku", "level"} {
		if !strings.Contains(res.Rendered, want) {
			t.Fatalf("extension table missing %q:\n%s", want, res.Rendered)
		}
	}
	t.Logf("score by level:\n%s", res.Rendered)
}
