package cluster

import (
	"math"
	"testing"
)

func TestHomogeneous(t *testing.T) {
	s := Homogeneous(64)
	if s.NumClients() != 64 {
		t.Fatalf("clients = %d", s.NumClients())
	}
	for i, sp := range s.ClientSpeeds() {
		if sp != 1.0 {
			t.Fatalf("client %d speed %v, want 1.0 (reference node)", i, sp)
		}
	}
	if s.MeanSpeed() != 1.0 {
		t.Fatalf("mean speed %v", s.MeanSpeed())
	}
}

func TestHomogeneousOddCount(t *testing.T) {
	s := Homogeneous(5)
	if s.NumClients() != 5 {
		t.Fatalf("clients = %d", s.NumClients())
	}
	// Last node hosts a single client; still full speed.
	for _, sp := range s.ClientSpeeds() {
		if sp != 1.0 {
			t.Fatalf("speed %v", sp)
		}
	}
}

func TestPaper64MatchesPaperRatio(t *testing.T) {
	// §V: r = ((20×1.86 + 12×2.33)/32)/1.86 = 1.09.
	s := Paper64()
	if s.NumClients() != 64 {
		t.Fatalf("paper cluster has %d clients, want 64", s.NumClients())
	}
	want := ((20*1.86 + 12*2.33) / 32) / 1.86
	if math.Abs(s.MeanSpeed()-want) > 1e-9 {
		t.Fatalf("mean speed %v, want %v", s.MeanSpeed(), want)
	}
	if math.Abs(want-1.0947580645161292) > 1e-9 {
		t.Fatalf("paper ratio drifted: %v", want)
	}
}

func TestHetero16x4p16x2(t *testing.T) {
	s := Hetero16x4p16x2()
	if got := s.NumClients(); got != 16*4+16*2 {
		t.Fatalf("clients = %d, want 96", got)
	}
	speeds := s.ClientSpeeds()
	// First 64 clients sit 4-per-dual-core: half speed.
	for i := 0; i < 64; i++ {
		if speeds[i] != 0.5 {
			t.Fatalf("oversubscribed client %d speed %v, want 0.5", i, speeds[i])
		}
	}
	// Remaining 2-per-node clients run at full node speed.
	for i := 64; i < len(speeds); i++ {
		if speeds[i] < 1.0 {
			t.Fatalf("client %d speed %v, want >= 1.0", i, speeds[i])
		}
	}
}

func TestHetero8x4p8x2(t *testing.T) {
	s := Hetero8x4p8x2()
	if got := s.NumClients(); got != 8*4+8*2 {
		t.Fatalf("clients = %d, want 48", got)
	}
	half, full := 0, 0
	for _, sp := range s.ClientSpeeds() {
		switch sp {
		case 0.5:
			half++
		case 1.0:
			full++
		default:
			t.Fatalf("unexpected speed %v", sp)
		}
	}
	if half != 32 || full != 16 {
		t.Fatalf("half/full = %d/%d, want 32/16", half, full)
	}
}

func TestLayoutRankAssignment(t *testing.T) {
	s := Homogeneous(4)
	l := s.Layout(3)
	if l.Root != 0 || l.Dispatcher != 1 {
		t.Fatalf("root/dispatcher = %d/%d", l.Root, l.Dispatcher)
	}
	if len(l.Medians) != 3 || len(l.Clients) != 4 {
		t.Fatalf("medians/clients = %d/%d", len(l.Medians), len(l.Clients))
	}
	if l.Size() != 2+3+4 {
		t.Fatalf("size = %d", l.Size())
	}
	// Ranks must be distinct and cover 0..size-1.
	seen := map[int]bool{int(l.Root): true, int(l.Dispatcher): true}
	for _, r := range append(append([]int{}, ranksToInts(l.Medians)...), ranksToInts(l.Clients)...) {
		if seen[r] {
			t.Fatalf("rank %d assigned twice", r)
		}
		seen[r] = true
	}
	if len(seen) != l.Size() {
		t.Fatalf("ranks cover %d of %d", len(seen), l.Size())
	}
	if len(l.Speeds) != l.Size() {
		t.Fatalf("speeds %d != size %d", len(l.Speeds), l.Size())
	}
}

func TestLayoutSpeedsMatchRoles(t *testing.T) {
	s := Hetero8x4p8x2()
	l := s.Layout(2)
	for _, m := range l.Medians {
		if l.Speeds[m] != s.ServerSpeed {
			t.Fatalf("median %d speed %v, want server speed %v", m, l.Speeds[m], s.ServerSpeed)
		}
	}
	cs := s.ClientSpeeds()
	for i, c := range l.Clients {
		if l.Speeds[c] != cs[i] {
			t.Fatalf("client %d speed %v, want %v", i, l.Speeds[c], cs[i])
		}
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	for name, f := range map[string]func(){
		"zero clients":  func() { Homogeneous(0) },
		"zero medians":  func() { Homogeneous(1).Layout(0) },
		"empty clients": func() { (Spec{ServerSpeed: 1}).Layout(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func ranksToInts[T ~int](rs []T) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = int(r)
	}
	return out
}

func TestWithSlowMedian(t *testing.T) {
	spec := Homogeneous(4).WithSlowMedian(2, 0.5)
	lay := spec.Layout(4)
	for i, m := range lay.Medians {
		want := spec.ServerSpeed
		if i == 2 {
			want = spec.ServerSpeed * 0.5
		}
		if lay.Speeds[m] != want {
			t.Fatalf("median %d speed %v, want %v", i, lay.Speeds[m], want)
		}
	}
	// Medians beyond the factor slice default to full speed.
	lay = spec.Layout(8)
	if got := lay.Speeds[lay.Medians[7]]; got != spec.ServerSpeed {
		t.Fatalf("unlisted median speed %v, want %v", got, spec.ServerSpeed)
	}
	// The original spec is untouched (value semantics).
	if len(Homogeneous(4).MedianFactors) != 0 {
		t.Fatal("WithSlowMedian mutated its receiver's factors")
	}
	for name, f := range map[string]func(){
		"negative index": func() { Homogeneous(1).WithSlowMedian(-1, 0.5) },
		"zero factor":    func() { Homogeneous(1).WithSlowMedian(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
