// Package cluster models the paper's experimental testbeds: which physical
// node hosts which process, how fast each node is, and how ranks are laid
// out in the message-passing world.
//
// The paper's cluster (§V) is 20 dual-core 1.86 GHz PCs plus 12 dual-core
// 2.33 GHz PCs plus one quad-core server, Gigabit Ethernet, two client
// processes per PC (64 clients), with the root, the 40 median processes and
// the dispatcher all on the server. Table VI additionally uses deliberately
// unbalanced layouts (16×4+16×2 and 8×4+8×2 clients per PC) to show the
// Last-Minute dispatcher's advantage on heterogeneous clusters.
//
// Speeds are expressed relative to the 1.86 GHz reference node, the same
// normalization the paper uses for its r = 1.09 frequency correction.
// Running c clients on an n-core PC scales each client by n/c when
// oversubscribed, which is what makes the 16×4+16×2 layout heterogeneous
// even before the GHz mix.
package cluster

import (
	"fmt"

	"repro/internal/mpi"
)

// ReferenceGHz is the paper's baseline node frequency.
const ReferenceGHz = 1.86

// Node is one physical machine hosting client processes.
type Node struct {
	GHz     float64
	Cores   int
	Clients int // client processes placed on this node
}

// clientSpeed returns the relative speed of each client on the node.
func (n Node) clientSpeed() float64 {
	s := n.GHz / ReferenceGHz
	if n.Clients > n.Cores {
		s *= float64(n.Cores) / float64(n.Clients)
	}
	return s
}

// Spec describes a whole testbed: the server (root + medians + dispatcher)
// and the client-hosting nodes.
type Spec struct {
	Name string
	// ServerSpeed is the relative speed of the processes hosted on the
	// server. Root, medians and dispatcher do little computation (§IV:
	// "they are not used for long computation"), so this mostly affects
	// bookkeeping overhead.
	ServerSpeed float64
	Nodes       []Node
	// MedianFactors optionally scales individual median processes relative
	// to ServerSpeed, by median index; missing entries default to 1.0. A
	// factor of 0.5 models a median sharing its core with other load (a
	// straggler) — the scenario where the demand-driven scheduler beats
	// the paper's static cyclic assignment. See WithSlowMedian.
	MedianFactors []float64
}

// WithSlowMedian returns a copy of the spec whose i-th median process runs
// at factor × ServerSpeed (factor < 1 slows it down). The straggler
// experiments use it to plant a single slow median in an otherwise
// homogeneous testbed.
func (s Spec) WithSlowMedian(i int, factor float64) Spec {
	if i < 0 {
		panic("cluster: negative median index")
	}
	if factor <= 0 {
		panic("cluster: non-positive median speed factor")
	}
	out := s
	out.MedianFactors = append([]float64(nil), s.MedianFactors...)
	for len(out.MedianFactors) <= i {
		out.MedianFactors = append(out.MedianFactors, 1)
	}
	out.MedianFactors[i] = factor
	out.Name = fmt.Sprintf("%s+slow-median[%d]x%g", s.Name, i, factor)
	return out
}

// medianFactor returns the speed factor of the i-th median.
func (s Spec) medianFactor(i int) float64 {
	if i < len(s.MedianFactors) && s.MedianFactors[i] > 0 {
		return s.MedianFactors[i]
	}
	return 1
}

// NumClients returns the total number of client processes.
func (s Spec) NumClients() int {
	n := 0
	for _, nd := range s.Nodes {
		n += nd.Clients
	}
	return n
}

// ClientSpeeds returns one relative speed per client process, in node
// order.
func (s Spec) ClientSpeeds() []float64 {
	var out []float64
	for _, nd := range s.Nodes {
		sp := nd.clientSpeed()
		for i := 0; i < nd.Clients; i++ {
			out = append(out, sp)
		}
	}
	return out
}

// MeanSpeed returns the average client speed: the paper's frequency ratio
// r (§V reports r = 1.09 for the 64-client mix).
func (s Spec) MeanSpeed() float64 {
	speeds := s.ClientSpeeds()
	if len(speeds) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range speeds {
		sum += v
	}
	return sum / float64(len(speeds))
}

// Homogeneous builds a testbed of n clients, one per core, on 1.86 GHz
// dual-core PCs — the configuration of the paper's speedup sweeps where
// "the result for 32 clients is obtained using only 1.86 GHz PCs".
func Homogeneous(nClients int) Spec {
	if nClients < 1 {
		panic("cluster: need at least one client")
	}
	var nodes []Node
	remaining := nClients
	for remaining > 0 {
		c := 2
		if remaining < 2 {
			c = remaining
		}
		nodes = append(nodes, Node{GHz: ReferenceGHz, Cores: 2, Clients: c})
		remaining -= c
	}
	return Spec{
		Name:        fmt.Sprintf("homogeneous-%d", nClients),
		ServerSpeed: 1.25,
		Nodes:       nodes,
	}
}

// Paper64 is the full 64-client cluster of §V: 20×1.86 GHz + 12×2.33 GHz
// dual-core PCs, two clients per PC.
func Paper64() Spec {
	var nodes []Node
	for i := 0; i < 20; i++ {
		nodes = append(nodes, Node{GHz: 1.86, Cores: 2, Clients: 2})
	}
	for i := 0; i < 12; i++ {
		nodes = append(nodes, Node{GHz: 2.33, Cores: 2, Clients: 2})
	}
	return Spec{Name: "paper-64", ServerSpeed: 1.25, Nodes: nodes}
}

// Hetero16x4p16x2 is Table VI's "16x4+16x2" layout: 16 PCs hosting 4
// clients each (oversubscribed dual cores, so those clients run at half
// speed) and 16 PCs hosting 2. The GHz mix follows the pool order of the
// paper's cluster: the 4-client PCs are drawn from the 1.86 GHz machines,
// the 2-client PCs use the remaining 4×1.86 + 12×2.33.
func Hetero16x4p16x2() Spec {
	var nodes []Node
	for i := 0; i < 16; i++ {
		nodes = append(nodes, Node{GHz: 1.86, Cores: 2, Clients: 4})
	}
	for i := 0; i < 4; i++ {
		nodes = append(nodes, Node{GHz: 1.86, Cores: 2, Clients: 2})
	}
	for i := 0; i < 12; i++ {
		nodes = append(nodes, Node{GHz: 2.33, Cores: 2, Clients: 2})
	}
	return Spec{Name: "16x4+16x2", ServerSpeed: 1.25, Nodes: nodes}
}

// Hetero8x4p8x2 is Table VI's "8x4+8x2" layout: 8 PCs with 4 clients and 8
// PCs with 2 clients.
func Hetero8x4p8x2() Spec {
	var nodes []Node
	for i := 0; i < 8; i++ {
		nodes = append(nodes, Node{GHz: 1.86, Cores: 2, Clients: 4})
	}
	for i := 0; i < 8; i++ {
		nodes = append(nodes, Node{GHz: 1.86, Cores: 2, Clients: 2})
	}
	return Spec{Name: "8x4+8x2", ServerSpeed: 1.25, Nodes: nodes}
}

// Layout is the rank assignment of a world: rank 0 is the root, rank 1 the
// dispatcher, then the medians, then the clients — mirroring the paper's
// master-slave process creation with the server hosting root, medians and
// dispatcher.
type Layout struct {
	Root       mpi.Rank
	Dispatcher mpi.Rank
	Medians    []mpi.Rank
	Clients    []mpi.Rank
	// Speeds has one entry per rank, for mpi.VirtualConfig.
	Speeds []float64
}

// Layout materializes the rank map for the spec with the given number of
// median processes (the paper runs 40 on the server).
func (s Spec) Layout(medians int) Layout {
	if medians < 1 {
		panic("cluster: need at least one median")
	}
	clients := s.ClientSpeeds()
	if len(clients) == 0 {
		panic("cluster: spec has no clients")
	}
	l := Layout{Root: 0, Dispatcher: 1}
	speeds := []float64{s.ServerSpeed, s.ServerSpeed}
	next := mpi.Rank(2)
	for i := 0; i < medians; i++ {
		l.Medians = append(l.Medians, next)
		speeds = append(speeds, s.ServerSpeed*s.medianFactor(i))
		next++
	}
	for _, cs := range clients {
		l.Clients = append(l.Clients, next)
		speeds = append(speeds, cs)
		next++
	}
	l.Speeds = speeds
	return l
}

// Size returns the world size of the layout.
func (l Layout) Size() int { return len(l.Speeds) }
