package codec

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/rng"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// roundTrip encodes v as a payload and decodes it back.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	buf, err := EncodePayload(nil, v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	out, err := DecodePayload(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return out
}

// TestPrimitiveRoundTrips property-checks Decode(Encode(m)) == m for every
// scalar payload kind with testing/quick-generated values.
func TestPrimitiveRoundTrips(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	checks := map[string]any{
		"int":     func(v int) bool { return roundTrip(t, v) == v },
		"int64":   func(v int64) bool { return roundTrip(t, v) == v },
		"uint64":  func(v uint64) bool { return roundTrip(t, v) == v },
		"bool":    func(v bool) bool { return roundTrip(t, v) == v },
		"string":  func(v string) bool { return roundTrip(t, v) == v },
		"move":    func(v uint64) bool { return roundTrip(t, game.Move(v)) == game.Move(v) },
		"float64": func(v float64) bool { return roundTrip(t, v) == v },
		"moves": func(raw []uint64) bool {
			v := make([]game.Move, len(raw))
			for i, r := range raw {
				v[i] = game.Move(r)
			}
			return reflect.DeepEqual(roundTrip(t, v), v)
		},
		"floats": func(v []float64) bool {
			got := roundTrip(t, v).([]float64)
			if len(got) != len(v) {
				return false
			}
			for i := range v {
				// NaN-safe bit comparison: quick generates NaNs too.
				if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
					return false
				}
			}
			return true
		},
	}
	for name, fn := range checks {
		if err := quick.Check(fn, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNilRoundTrip(t *testing.T) {
	if got := roundTrip(t, nil); got != nil {
		t.Fatalf("nil decoded to %v", got)
	}
}

// stateHash folds the observable position state — move count, score and
// the ordered legal-move list — into one hash, the same observable the
// domain fuzz targets pin. Two positions with equal hashes are
// indistinguishable to the search.
func stateHash(st game.State, buf []game.Move) (uint64, []game.Move) {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mix(uint64(st.MovesPlayed()))
	mix(math.Float64bits(st.Score()))
	buf = st.LegalMoves(buf[:0])
	mix(uint64(len(buf)))
	for _, m := range buf {
		mix(uint64(m))
	}
	return h, buf
}

// playRandom plays n random legal moves (or until terminal).
func playRandom(st game.State, r *rng.Rand, n int) {
	var buf []game.Move
	for i := 0; i < n; i++ {
		buf = st.LegalMoves(buf[:0])
		if len(buf) == 0 {
			return
		}
		st.Play(buf[r.Intn(len(buf))])
	}
}

// TestStateRoundTrips ships random mid-game positions of every domain
// through the codec and checks the decoded position is observably
// identical — including the exact legal-move order the cross-transport
// determinism contract depends on.
func TestStateRoundTrips(t *testing.T) {
	r := rng.New(7)
	fresh := []func() game.State{
		func() game.State { return morpion.New(morpion.Var5D) },
		func() game.State { return morpion.New(morpion.Var4T) },
		func() game.State { return samegame.NewRandom(8, 8, 4, 3) },
		func() game.State { return sudoku.New(3) },
		func() game.State { return game.NewArmTree(3, 4, 9) },
	}
	for _, mk := range fresh {
		for depth := 0; depth <= 24; depth += 8 {
			st := mk()
			playRandom(st, r, depth)
			var buf []game.Move
			want, buf := stateHash(st, buf)

			enc, err := EncodePayload(nil, st)
			if err != nil {
				t.Fatalf("%T depth %d: encode: %v", st, depth, err)
			}
			dec, err := DecodePayload(enc)
			if err != nil {
				t.Fatalf("%T depth %d: decode: %v", st, depth, err)
			}
			got, _ := stateHash(dec.(game.State), buf)
			if got != want {
				t.Fatalf("%T depth %d: decoded position differs (hash %x != %x)", st, depth, got, want)
			}

			// A second encode of the decoded position must be bit-identical:
			// the encoding is canonical, so frames can be compared by bytes.
			enc2, err := EncodePayload(nil, dec)
			if err != nil {
				t.Fatalf("%T depth %d: re-encode: %v", st, depth, err)
			}
			if !reflect.DeepEqual(enc, enc2) {
				t.Fatalf("%T depth %d: re-encode differs", st, depth)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{From: 0, To: 5, Tag: 3, Payload: 42},
		{From: -2, To: 1, Tag: 64, Payload: uint64(7)}, // External sender
		{From: 9, To: -100, Tag: 0, Payload: nil},      // control frame
		{From: 1, To: 2, Tag: 8, Payload: "hello"},
	}
	for _, f := range frames {
		buf, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("append %+v: %v", f, err)
		}
		got, err := DecodeFrame(buf[4:]) // skip the length prefix
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("frame round trip: got %+v, want %+v", got, f)
		}
	}
}

// TestFrameVersionReject pins the cross-version contract: a frame stamped
// with any version other than ours is refused with ErrVersion, for every
// possible foreign version byte.
func TestFrameVersionReject(t *testing.T) {
	buf, err := AppendFrame(nil, Frame{From: 1, To: 2, Tag: 3, Payload: 4})
	if err != nil {
		t.Fatal(err)
	}
	body := buf[4:]
	for v := 0; v <= 255; v++ {
		if byte(v) == Version {
			continue
		}
		tampered := append([]byte(nil), body...)
		tampered[0] = byte(v)
		if _, err := DecodeFrame(tampered); !errors.Is(err, ErrVersion) {
			t.Fatalf("version %d: got %v, want ErrVersion", v, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeFrame(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty body: %v", err)
	}
	if _, err := DecodeFrame([]byte{Version, 1, 2}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if _, err := DecodePayload([]byte{0xff, 0xff}); !errors.Is(err, ErrKind) {
		t.Fatalf("unknown kind: %v", err)
	}
	if _, err := DecodePayload([]byte{byte(KindNil), 0, 99}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("nil payload with trailing bytes: %v", err)
	}
	if _, err := EncodePayload(nil, struct{ X int }{1}); !errors.Is(err, ErrKind) {
		t.Fatalf("unregistered type: %v", err)
	}
}

// TestStateDecodeRejectsMalformed spot-checks that corrupt state payloads
// error instead of panicking or producing inconsistent positions.
func TestStateDecodeRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		{byte(KindMorpion), 0},                      // empty morpion body
		{byte(KindMorpion), 0, 9},                   // unknown variant code
		{byte(KindMorpion), 0, 1, 1, 0xff, 0xff, 3}, // illegal replayed move
		{byte(KindSameGame), 0, 0, 8, 4},            // zero width
		{byte(KindSameGame), 0, 8, 8, 4, 0},         // truncated board
		{byte(KindSudoku), 0, 9},                    // box out of range
		{byte(KindSudoku), 0, 3, 0, 0, 0},           // truncated grid
	}
	for _, raw := range cases {
		if _, err := DecodePayload(raw); err == nil {
			t.Fatalf("malformed payload % x decoded without error", raw)
		}
	}
	// A duplicated value in a sudoku row must be rejected by the
	// constraint rebuild, and high cell bytes (0x80, 0xFF — negative as
	// int8) must be rejected rather than wrapping into a negative shift.
	for _, bad := range []byte{5, 0x80, 0xff} {
		st := sudoku.New(2)
		enc, err := EncodePayload(nil, st)
		if err != nil {
			t.Fatal(err)
		}
		enc[len(enc)-16] = bad // grid cell 0 on a side-4 grid
		if _, err := DecodePayload(enc); err == nil {
			t.Fatalf("sudoku cell byte %#x decoded without error", bad)
		}
	}
}
