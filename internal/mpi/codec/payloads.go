package codec

// Builtin payload encodings: the primitives that flow through Comm.Send as
// bare scalars (scores, epochs, move counts, assigned ranks travel as
// primitives in the parallel protocol) and the four game domains. Domain
// positions delegate to the compact state encoding each domain package
// owns (wire.go in morpion, samegame, sudoku; the ArmTree methods in
// internal/game), so board-representation knowledge stays in the domain.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// fixed64 reads a little-endian u64, enforcing exact length.
func fixed64(data []byte) (uint64, error) {
	if len(data) != 8 {
		return 0, fmt.Errorf("%w: want 8 bytes, got %d", ErrTruncated, len(data))
	}
	return binary.LittleEndian.Uint64(data), nil
}

func init() {
	Register(KindInt,
		func(buf []byte, v int) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(buf, uint64(int64(v))), nil
		},
		func(data []byte) (int, error) {
			u, err := fixed64(data)
			return int(int64(u)), err
		})
	Register(KindInt64,
		func(buf []byte, v int64) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(buf, uint64(v)), nil
		},
		func(data []byte) (int64, error) {
			u, err := fixed64(data)
			return int64(u), err
		})
	Register(KindUint64,
		func(buf []byte, v uint64) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(buf, v), nil
		},
		fixed64)
	Register(KindFloat64,
		func(buf []byte, v float64) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)), nil
		},
		func(data []byte) (float64, error) {
			u, err := fixed64(data)
			return math.Float64frombits(u), err
		})
	Register(KindBool,
		func(buf []byte, v bool) ([]byte, error) {
			b := byte(0)
			if v {
				b = 1
			}
			return append(buf, b), nil
		},
		func(data []byte) (bool, error) {
			if len(data) != 1 || data[0] > 1 {
				return false, fmt.Errorf("%w: bool", ErrMalformed)
			}
			return data[0] == 1, nil
		})
	Register(KindString,
		func(buf []byte, v string) ([]byte, error) { return append(buf, v...), nil },
		func(data []byte) (string, error) { return string(data), nil })
	Register(KindMove,
		func(buf []byte, v game.Move) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(buf, uint64(v)), nil
		},
		func(data []byte) (game.Move, error) {
			u, err := fixed64(data)
			return game.Move(u), err
		})
	Register(KindMoves,
		func(buf []byte, v []game.Move) ([]byte, error) {
			buf = binary.AppendUvarint(buf, uint64(len(v)))
			for _, m := range v {
				buf = binary.AppendUvarint(buf, uint64(m))
			}
			return buf, nil
		},
		func(data []byte) ([]game.Move, error) {
			n, data, err := ReadUvarint(data)
			if err != nil {
				return nil, err
			}
			if n > uint64(len(data)) { // each move is at least one byte
				return nil, fmt.Errorf("%w: %d moves in %d bytes", ErrMalformed, n, len(data))
			}
			out := make([]game.Move, 0, n)
			for i := uint64(0); i < n; i++ {
				var m uint64
				m, data, err = ReadUvarint(data)
				if err != nil {
					return nil, err
				}
				out = append(out, game.Move(m))
			}
			if len(data) != 0 {
				return nil, fmt.Errorf("%w: %d trailing bytes after moves", ErrMalformed, len(data))
			}
			return out, nil
		})
	Register(KindFloats,
		func(buf []byte, v []float64) ([]byte, error) {
			buf = binary.AppendUvarint(buf, uint64(len(v)))
			for _, f := range v {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
			}
			return buf, nil
		},
		func(data []byte) ([]float64, error) {
			n, data, err := ReadUvarint(data)
			if err != nil {
				return nil, err
			}
			if n > uint64(len(data))/8 || uint64(len(data)) != n*8 {
				return nil, fmt.Errorf("%w: %d floats in %d bytes", ErrMalformed, n, len(data))
			}
			out := make([]float64, n)
			for i := range out {
				out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			}
			return out, nil
		})

	Register(KindArmTree,
		func(buf []byte, v *game.ArmTree) ([]byte, error) { return v.AppendWire(buf), nil },
		game.DecodeArmTreeWire)
	Register(KindMorpion,
		func(buf []byte, v *morpion.State) ([]byte, error) { return v.AppendWire(buf), nil },
		morpion.DecodeWire)
	Register(KindSameGame,
		func(buf []byte, v *samegame.State) ([]byte, error) { return v.AppendWire(buf), nil },
		samegame.DecodeWire)
	Register(KindSudoku,
		func(buf []byte, v *sudoku.State) ([]byte, error) { return v.AppendWire(buf), nil },
		sudoku.DecodeWire)
}

// ReadUvarint decodes one uvarint from data and returns it with the
// remaining bytes — the shared read helper for payload decoders.
func ReadUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: uvarint", ErrTruncated)
	}
	return v, data[n:], nil
}

// EncodeState appends the typed encoding of a game position. It is
// EncodePayload restricted to game.State values, for payload encoders that
// embed a position as their final field.
func EncodeState(buf []byte, st game.State) ([]byte, error) {
	return EncodePayload(buf, st)
}

// DecodeState decodes a position encoded with EncodeState, consuming all
// of data.
func DecodeState(data []byte) (game.State, error) {
	v, err := DecodePayload(data)
	if err != nil {
		return nil, err
	}
	st, ok := v.(game.State)
	if !ok {
		return nil, fmt.Errorf("%w: payload %T is not a game state", ErrMalformed, v)
	}
	return st, nil
}
