// Package codec is the wire protocol of the distributed rank world: a
// typed, versioned, length-prefixed frame format for every payload that
// crosses a process boundary through mpi.Comm.
//
// The in-process transports (VirtualCluster, WallCluster) pass payloads as
// bare `any` values between goroutines; nothing needs to be serialized.
// The net transport (mpi.NetCluster) runs ranks in separate OS processes
// connected by TCP — the shape of the paper's Open MPI deployment on a
// Gigabit cluster — so every message must have an explicit byte encoding.
// This package owns that encoding:
//
//	frame     := u32 length | body            (length = len(body), LE)
//	body      := u8 version | i32 from | i32 to | i32 tag | payload
//	payload   := u16 kind | bytes             (kind-specific encoding)
//
// All fixed-width integers are little-endian; variable-length integers use
// encoding/binary's uvarint. The version byte is checked on every frame:
// a frame of an unknown version is rejected with ErrVersion, never
// half-decoded — the cross-version safety the handshake negotiates (see
// mpi.NetCluster) is enforced per frame as well.
//
// Payload types are identified by a Kind and registered with Register,
// the way encoding/gob registers concrete types. The codec package itself
// registers the primitives and the domain positions (morpion, samegame,
// sudoku and the synthetic ArmTree, each with a compact domain-specific
// state encoding — see the wire.go file of each domain package);
// internal/mpi registers its Rank type and internal/parallel registers the
// protocol structs (candidates, jobs, scores, abandon acks). Registration
// happens in package init functions, before any goroutine touches the
// registry, so lookups are lock-free.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
)

// Version is the wire protocol version stamped on every frame and offered
// in the NetCluster handshake. Bump it on any incompatible change to the
// frame layout, the handshake layout, or a payload encoding.
//
// History: 1 = the original frame format; 2 = fault-tolerance wire
// changes (token field in the worker hello, svcScore gained Step,
// svcResult gained Key); 3 = evaluator wire changes (job params gained
// the evaluator name, new evaluation batch request/reply payloads);
// 4 = async-root wire changes (candidates and scores gained the branch
// discriminator Par, job params gained Speculate, new speculation-cancel
// payload, worker blob gained the pool speculation default).
const Version = 4

// MaxFrame bounds the body length a reader will accept. A corrupt or
// hostile length prefix must not make a worker allocate gigabytes; the
// real protocol's largest messages are candidate positions of a few KiB.
const MaxFrame = 1 << 24

// Kind identifies a payload type on the wire.
type Kind uint16

// Builtin payload kinds. 0–15 are primitives, 16–31 domain positions,
// 32–63 reserved for the mpi layer, 64+ application protocols
// (internal/parallel).
const (
	KindNil     Kind = 0
	KindInt     Kind = 1
	KindInt64   Kind = 2
	KindUint64  Kind = 3
	KindFloat64 Kind = 4
	KindBool    Kind = 5
	KindString  Kind = 6
	KindMove    Kind = 7
	KindMoves   Kind = 8
	KindFloats  Kind = 9

	KindArmTree  Kind = 16
	KindMorpion  Kind = 17
	KindSameGame Kind = 18
	KindSudoku   Kind = 19

	// KindRank is registered by package mpi (codec cannot import it).
	KindRank Kind = 32
)

// Decode/encode errors. Decoders wrap these so callers can errors.Is.
var (
	// ErrVersion rejects a frame stamped with an unknown protocol version.
	ErrVersion = errors.New("codec: unknown frame version")
	// ErrKind rejects a payload whose kind is not registered.
	ErrKind = errors.New("codec: unknown payload kind")
	// ErrTruncated rejects a frame or payload shorter than its encoding.
	ErrTruncated = errors.New("codec: truncated frame")
	// ErrMalformed rejects a payload whose bytes violate its invariants
	// (illegal move sequence, out-of-range cell, inconsistent grid).
	ErrMalformed = errors.New("codec: malformed payload")
)

// entry is one registered payload type.
type entry struct {
	enc func(buf []byte, v any) ([]byte, error)
	dec func(data []byte) (any, error)
}

var (
	byKind = map[Kind]*entry{}
	byType = map[reflect.Type]Kind{}
)

// Register binds kind to the concrete type T with its encoder and decoder.
// The encoder appends T's payload bytes to buf; the decoder consumes the
// whole data slice (a payload always extends to the end of its frame) and
// returns the reconstructed value or an error for malformed bytes — it
// must never panic on arbitrary input. Register panics on a duplicate
// kind or type: registration is package-init wiring, not runtime state.
func Register[T any](kind Kind, enc func(buf []byte, v T) ([]byte, error), dec func(data []byte) (T, error)) {
	t := reflect.TypeOf((*T)(nil)).Elem()
	if _, dup := byKind[kind]; dup {
		panic(fmt.Sprintf("codec: kind %d registered twice", kind))
	}
	if _, dup := byType[t]; dup {
		panic(fmt.Sprintf("codec: type %v registered twice", t))
	}
	byKind[kind] = &entry{
		enc: func(buf []byte, v any) ([]byte, error) { return enc(buf, v.(T)) },
		dec: func(data []byte) (any, error) { return dec(data) },
	}
	byType[t] = kind
}

// KindOf reports the registered kind of v's concrete type.
func KindOf(v any) (Kind, bool) {
	if v == nil {
		return KindNil, true
	}
	k, ok := byType[reflect.TypeOf(v)]
	return k, ok
}

// EncodePayload appends the typed encoding of v — a u16 kind followed by
// the kind-specific bytes — to buf. It fails on unregistered types.
func EncodePayload(buf []byte, v any) ([]byte, error) {
	if v == nil {
		return binary.LittleEndian.AppendUint16(buf, uint16(KindNil)), nil
	}
	kind, ok := byType[reflect.TypeOf(v)]
	if !ok {
		return nil, fmt.Errorf("%w: no kind for %T", ErrKind, v)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(kind))
	return byKind[kind].enc(buf, v)
}

// DecodePayload decodes a payload produced by EncodePayload, consuming all
// of data.
func DecodePayload(data []byte) (any, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: payload header", ErrTruncated)
	}
	kind := Kind(binary.LittleEndian.Uint16(data))
	if kind == KindNil {
		if len(data) != 2 {
			return nil, fmt.Errorf("%w: nil payload with %d trailing bytes", ErrMalformed, len(data)-2)
		}
		return nil, nil
	}
	e, ok := byKind[kind]
	if !ok {
		return nil, fmt.Errorf("%w: kind %d", ErrKind, kind)
	}
	return e.dec(data[2:])
}

// Frame is one routed message of the rank world: the (from, to, tag)
// envelope of an mpi message plus its payload. Ranks and tags travel as
// raw int32 so this package does not depend on package mpi; negative
// values are legal (mpi.External sources, control frames).
type Frame struct {
	From, To int32
	Tag      int32
	Payload  any
}

// frameHeader is the fixed part of a body: version + from + to + tag.
const frameHeader = 1 + 4 + 4 + 4

// AppendFrame appends the complete length-prefixed encoding of f to buf.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length back-patched below
	buf = append(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.To))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Tag))
	buf, err := EncodePayload(buf, f.Payload)
	if err != nil {
		return nil, err
	}
	body := len(buf) - lenAt - 4
	if body > MaxFrame {
		return nil, fmt.Errorf("codec: frame body %d exceeds MaxFrame", body)
	}
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(body))
	return buf, nil
}

// PeekEnvelope reads a frame body's (from, to, tag) envelope without
// decoding the payload. A relay hop uses it to route a frame verbatim —
// forwarding must not pay (or depend on) payload decoding. ok is false
// for a truncated header or a foreign version.
func PeekEnvelope(body []byte) (from, to, tag int32, ok bool) {
	if len(body) < frameHeader || body[0] != Version {
		return 0, 0, 0, false
	}
	return int32(binary.LittleEndian.Uint32(body[1:])),
		int32(binary.LittleEndian.Uint32(body[5:])),
		int32(binary.LittleEndian.Uint32(body[9:])), true
}

// DecodeFrame decodes a frame body (the bytes after the length prefix).
// It rejects unknown versions with ErrVersion before looking at anything
// else, so version negotiation failures are always reported as such.
func DecodeFrame(body []byte) (Frame, error) {
	if len(body) < 1 {
		return Frame{}, fmt.Errorf("%w: empty body", ErrTruncated)
	}
	if body[0] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, speak %d", ErrVersion, body[0], Version)
	}
	if len(body) < frameHeader {
		return Frame{}, fmt.Errorf("%w: header", ErrTruncated)
	}
	f := Frame{
		From: int32(binary.LittleEndian.Uint32(body[1:])),
		To:   int32(binary.LittleEndian.Uint32(body[5:])),
		Tag:  int32(binary.LittleEndian.Uint32(body[9:])),
	}
	p, err := DecodePayload(body[frameHeader:])
	if err != nil {
		return Frame{}, err
	}
	f.Payload = p
	return f, nil
}
