package codec_test

// Native fuzz target for the frame decoder: arbitrary bytes must produce
// either a decoded frame or an error — never a panic and never an
// out-of-range allocation. Frames that do decode must re-encode and
// re-decode stably (the encoding is canonical).
//
// The target lives in the external test package so it can register the
// full production kind set: importing internal/parallel pulls in the mpi
// Rank kind and every pool-protocol payload (candidates, scores,
// results, the fault-tolerance ranks-lost/regrant notices), which makes
// the committed seed corpus under testdata/fuzz — ping/pong heartbeat
// control frames, telemetry-bearing goodbyes, re-grant frames — decode
// end-to-end instead of dying at the kind lookup.

import (
	"reflect"
	"testing"

	"repro/internal/mpi/codec"

	_ "repro/internal/parallel" // register mpi + pool-protocol payload kinds
)

func FuzzDecodeFrame(f *testing.F) {
	// Seed with a couple of well-formed frames and classic corruptions;
	// the committed corpus in testdata/fuzz adds control (ping/pong/bye),
	// fault-protocol (ranks-lost, regrant, keyed-result) and evaluator
	// (batch request/reply, eval-carrying job params) frames — the
	// pre-evaluator seeds are stamped v2 and pin version rejection.
	for _, fr := range []codec.Frame{
		{From: 0, To: 1, Tag: 2, Payload: nil},
		{From: -2, To: 3, Tag: 64, Payload: uint64(99)},
		{From: 1, To: 2, Tag: 8, Payload: "seed"},
		// The heartbeat control envelope (To = ctrlRank, ping tag).
		{From: -100, To: -100, Tag: 1, Payload: nil},
		// A telemetry-bearing pong: per-rank idle seconds.
		{From: 5, To: -100, Tag: 2, Payload: []float64{0.25, 1.5}},
	} {
		buf, err := codec.AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:])
		f.Add(buf) // length prefix misinterpreted as body
	}
	f.Add([]byte{})
	f.Add([]byte{codec.Version})
	f.Add([]byte{42, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := codec.DecodeFrame(body)
		if err != nil {
			return
		}
		// Canonical re-encode: the byte form must reach a fixed point in
		// one round trip. Compared as bytes, not decoded values — NaN
		// payloads are legal on the wire and NaN != NaN would fail a
		// value comparison that the encoding itself satisfies.
		buf, err := codec.AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		again, err := codec.DecodeFrame(buf[4:])
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		buf2, err := codec.AppendFrame(nil, again)
		if err != nil {
			t.Fatalf("re-decoded frame %+v does not re-encode: %v", again, err)
		}
		if !reflect.DeepEqual(buf, buf2) {
			t.Fatalf("unstable canonical encoding:\n%x\n%x", buf, buf2)
		}
	})
}
