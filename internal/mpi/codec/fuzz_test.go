package codec

// Native fuzz target for the frame decoder: arbitrary bytes must produce
// either a decoded frame or an error — never a panic and never an
// out-of-range allocation. Frames that do decode must re-encode and
// re-decode stably (the encoding is canonical).

import (
	"reflect"
	"testing"
)

func FuzzDecodeFrame(f *testing.F) {
	// Seed with a couple of well-formed frames and classic corruptions.
	for _, fr := range []Frame{
		{From: 0, To: 1, Tag: 2, Payload: nil},
		{From: -2, To: 3, Tag: 64, Payload: uint64(99)},
		{From: 1, To: 2, Tag: 8, Payload: "seed"},
	} {
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:])
		f.Add(buf) // length prefix misinterpreted as body
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{42, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := DecodeFrame(body)
		if err != nil {
			return
		}
		// Canonical re-encode: decode(encode(decode(x))) == decode(x).
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		again, err := DecodeFrame(buf[4:])
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(fr, again) {
			t.Fatalf("unstable round trip: %+v != %+v", fr, again)
		}
	})
}
