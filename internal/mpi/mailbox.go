package mpi

import "sync"

// mailbox is the blocking per-rank message queue shared by the wall and
// net transports: senders push from any goroutine, the owning rank blocks
// in take until a message matching its (from, tag) pattern arrives.
// Messages from one sender are delivered in push order (FIFO per sender,
// like MPI pairwise ordering); take returns the earliest match.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []Msg
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// push appends a message and wakes the owner.
func (mb *mailbox) push(m Msg) {
	mb.mu.Lock()
	mb.msgs = append(mb.msgs, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a message matching (from, tag) is available and
// removes and returns the earliest such message.
func (mb *mailbox) take(from Rank, tag Tag) Msg {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.msgs {
			if m.matches(from, tag) {
				mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}
