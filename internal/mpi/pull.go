package mpi

// Demand-driven work distribution: the work-request / work-grant protocol.
//
// The paper's root process assigns candidate positions to median nodes in a
// fixed cyclic order, so on a heterogeneous cluster every step waits for
// the slowest node. The pull protocol inverts the direction of control:
// workers ask the process that owns the work for their next item, and the
// owner grants items in demand order, so faster workers automatically take
// a larger share. PullSource is the owner-side bookkeeping of that
// protocol; it is written against Comm only and therefore behaves
// identically on the deterministic VirtualCluster and on the goroutine
// WallCluster.
//
// Wire shape (tags are chosen by the caller):
//
//	worker -> owner: reqTag, payload ignored   "I am idle, give me work"
//	owner -> worker: grantTag, payload = item  "work on this"
//
// The owner must feed every incoming reqTag message into Request and every
// new unit of work into Offer; both sides of the queue (idle workers,
// ready items) are matched FIFO. Completion is tracked with Done so the
// owner can drain outstanding grants before tearing the world down (e.g.
// on a mid-game stop). Workers left waiting when the work runs out are
// listed by Waiting, so the owner can send them a shutdown instead of a
// grant.
type PullSource struct {
	c        Comm
	grantTag Tag

	// Granted, when non-nil, is invoked just before each grant message is
	// sent, for protocol tracing.
	Granted func(to Rank)

	waiting []Rank // idle workers with no item to grant yet, FIFO
	ready   []any  // items with no idle worker yet, FIFO
	granted int    // grants not yet marked Done

	// depth accounting for the scheduler instrumentation: samples of
	// len(ready) taken at every Offer/Request transition.
	depthSamples int
	depthSum     int
	depthMax     int
}

// NewPullSource returns the owner-side state of a pull protocol whose
// grants are sent on grantTag through c.
func NewPullSource(c Comm, grantTag Tag) *PullSource {
	return &PullSource{c: c, grantTag: grantTag}
}

// Request records a work request from rank `from` and grants it the oldest
// ready item immediately when one is queued. The caller routes reqTag
// messages here.
func (s *PullSource) Request(from Rank) {
	if len(s.ready) > 0 {
		item := s.ready[0]
		s.ready = s.ready[:copy(s.ready, s.ready[1:])]
		s.grant(from, item)
	} else {
		s.waiting = append(s.waiting, from)
	}
	s.sample()
}

// Offer adds one item of work and grants it to the oldest idle worker
// immediately when one is waiting.
func (s *PullSource) Offer(item any) {
	if len(s.waiting) > 0 {
		to := s.waiting[0]
		s.waiting = s.waiting[:copy(s.waiting, s.waiting[1:])]
		s.grant(to, item)
	} else {
		s.ready = append(s.ready, item)
	}
	s.sample()
}

// grant ships an item to a worker.
func (s *PullSource) grant(to Rank, item any) {
	s.granted++
	if s.Granted != nil {
		s.Granted(to)
	}
	s.c.Send(to, s.grantTag, item)
}

// Done records the completion of one granted item.
func (s *PullSource) Done() {
	if s.granted <= 0 {
		panic("mpi: PullSource.Done without an outstanding grant")
	}
	s.granted--
}

// Outstanding returns the number of granted items not yet completed.
func (s *PullSource) Outstanding() int { return s.granted }

// Ready returns the number of items queued with no idle worker.
func (s *PullSource) Ready() int { return len(s.ready) }

// Abandon drops every queued item without granting it (mid-run stop) and
// returns how many were dropped. Outstanding grants are unaffected; the
// owner still drains them with Done.
func (s *PullSource) Abandon() int {
	n := len(s.ready)
	s.ready = s.ready[:0]
	return n
}

// AbandonFunc drops every queued item for which drop returns true
// (selective mid-run purge — e.g. cancelling one speculative branch
// while keeping another) and returns how many were dropped. Kept items
// preserve their FIFO order; outstanding grants are unaffected.
func (s *PullSource) AbandonFunc(drop func(item any) bool) int {
	kept := s.ready[:0]
	n := 0
	for _, it := range s.ready {
		if drop(it) {
			n++
		} else {
			kept = append(kept, it)
		}
	}
	for i := len(kept); i < len(s.ready); i++ {
		s.ready[i] = nil
	}
	s.ready = kept
	s.sample()
	return n
}

// Waiting returns the idle workers currently queued for work. The slice
// aliases internal state; callers must not retain it across calls.
func (s *PullSource) Waiting() []Rank { return s.waiting }

// sample records the current ready-queue depth for DepthStats.
func (s *PullSource) sample() {
	d := len(s.ready)
	s.depthSamples++
	s.depthSum += d
	if d > s.depthMax {
		s.depthMax = d
	}
}

// DepthStats reports the ready-queue depth profile: the maximum depth and
// the mean depth over all Offer/Request transitions. A persistently deep
// queue means workers are the bottleneck; a persistently empty one means
// the owner is.
func (s *PullSource) DepthStats() (max int, mean float64) {
	if s.depthSamples == 0 {
		return 0, 0
	}
	return s.depthMax, float64(s.depthSum) / float64(s.depthSamples)
}
