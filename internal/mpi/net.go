package mpi

// The net transport: a rank world spanning OS processes over TCP, the
// closest analogue of the paper's Open MPI deployment on a Gigabit
// cluster. One coordinator process (NetCluster) hosts a contiguous prefix
// of the ranks — by convention the control ranks: root/job slots,
// scheduler, dispatcher — and listens for worker processes (NetWorker,
// cmd/pnmcs-worker) that each dial in and host a contiguous range of the
// remaining ranks (medians, clients).
//
// Topology is a star: every worker holds one TCP connection to the
// coordinator, and frames between two workers are forwarded through the
// coordinator (hub routing). This keeps the deployment story identical to
// the paper's — the server hosts root, medians' control traffic and the
// dispatcher; client PCs only ever talk to the server — and preserves MPI
// pairwise FIFO ordering: any (sender, receiver) pair has exactly one
// path, so messages arrive in send order.
//
// Wire format and handshake are owned by internal/mpi/codec: every
// message is a typed, versioned, length-prefixed frame; the handshake
// carries the protocol version, the world size, the worker's assigned
// rank range, and an opaque configuration blob the embedding layer uses
// to reconstruct the worker-side process bodies (internal/parallel ships
// its PoolConfig in it). Version negotiation is strict — a worker
// speaking a different codec.Version is rejected at handshake, and every
// subsequent frame re-checks the version byte.
//
// The lifecycle mirrors WallCluster: Start registers rank bodies, Run
// launches the local ones and blocks until they return — a cluster only
// runs the ranks it hosts, so the same wiring code runs on every
// transport — and then waits for each connected worker's goodbye frame
// before tearing the connections down. Workers may dial in late: frames
// addressed to a not-yet-connected worker queue at the coordinator and
// flush on arrival, so a service can accept jobs before its workers have
// joined (they wait in the scheduler's queues).
//
// Failure model (DESIGN.md §8): a worker's stream dying — read error on
// either side, or a missed-heartbeat timeout on a blackholed connection —
// is a worker loss. The coordinator fires OnWorkerLost (so the embedding
// layer can re-queue the work the worker held), then reopens the slot: a
// replacement process dialing in reclaims the same rank range and resumes
// receiving frames, including everything queued for the slot while it was
// down (rolling replacement). Liveness is probed with ping/pong control
// frames; pong and goodbye frames carry worker telemetry (per-rank idle
// counters) back to the coordinator. The hello may carry a shared-secret
// token, compared in constant time at the coordinator.

import (
	"bufio"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi/codec"
)

func init() {
	codec.Register(codec.KindRank,
		func(buf []byte, v Rank) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(buf, uint64(int64(v))), nil
		},
		func(data []byte) (Rank, error) {
			if len(data) != 8 {
				return 0, fmt.Errorf("%w: rank", codec.ErrTruncated)
			}
			return Rank(int64(binary.LittleEndian.Uint64(data))), nil
		})
}

// handshake constants.
const (
	helloMagic = "PNMW"

	hsOK         = 0
	hsBadVersion = 1
	hsNoSlot     = 2
	hsBadToken   = 3
)

// ErrWorkerRejected is wrapped by DialWorker when the coordinator refuses
// the connection for a non-version reason (no free worker slot). Like
// codec.ErrVersion it is permanent: retrying the same coordinator cannot
// succeed.
var ErrWorkerRejected = fmt.Errorf("mpi: coordinator rejected worker")

// ErrBadToken is wrapped by DialWorker when the coordinator refuses the
// worker's shared-secret token. Permanent: the same credentials will be
// refused on every retry.
var ErrBadToken = fmt.Errorf("mpi: coordinator rejected worker token")

// ctrlRank is the To of control frames (goodbye, ping, pong); no real
// rank or wildcard ever has this value.
const ctrlRank = -100

// Control tags, exchanged on frames addressed to ctrlRank.
const (
	// ctrlBye is sent by a worker when all its rank bodies have returned,
	// so the coordinator's Run knows the worker drained cleanly. Its
	// payload may carry the worker's telemetry (see ctrlPong).
	ctrlBye Tag = 0
	// ctrlPing is the coordinator's liveness probe. Any inbound frame
	// counts as liveness; pings guarantee traffic (in both directions, via
	// the pong) on an otherwise idle connection, so a blackholed stream is
	// detected within the heartbeat timeout instead of never.
	ctrlPing Tag = 1
	// ctrlPong answers a ping. Its payload, when non-nil, is the worker's
	// telemetry: cumulative Recv-idle seconds per hosted rank ([]float64,
	// index i = rank lo+i), delivered to NetConfig.OnWorkerStats.
	ctrlPong Tag = 2
)

// defaultHeartbeat is the ping interval when NetConfig.Heartbeat is zero;
// the matching timeout default is 4× the effective interval (ListenNet).
const defaultHeartbeat = 2 * time.Second

// NetStats counts one endpoint's transport activity. All counters are
// cumulative since the cluster was created; EncodeNs/DecodeNs meter the
// CPU nanoseconds spent in the codec, so /metrics can report serialization
// cost separately from socket time.
type NetStats struct {
	FramesSent uint64 `json:"frames_sent"`
	FramesRecv uint64 `json:"frames_recv"`
	BytesSent  uint64 `json:"bytes_sent"`
	BytesRecv  uint64 `json:"bytes_recv"`
	EncodeNs   uint64 `json:"encode_ns"`
	DecodeNs   uint64 `json:"decode_ns"`
	// Workers is the number of worker connections currently established
	// (coordinator side; zero on workers).
	Workers int `json:"workers,omitempty"`
}

// netCounters is the atomic backing store of NetStats.
type netCounters struct {
	framesSent, framesRecv atomic.Uint64
	bytesSent, bytesRecv   atomic.Uint64
	encodeNs, decodeNs     atomic.Uint64
}

func (nc *netCounters) snapshot() NetStats {
	return NetStats{
		FramesSent: nc.framesSent.Load(),
		FramesRecv: nc.framesRecv.Load(),
		BytesSent:  nc.bytesSent.Load(),
		BytesRecv:  nc.bytesRecv.Load(),
		EncodeNs:   nc.encodeNs.Load(),
		DecodeNs:   nc.decodeNs.Load(),
	}
}

// encodeFrame encodes a frame, metering the codec time. The sent
// counters are bumped by countSent only once the frame actually reaches
// a connection — frames parked in a pending queue or dropped for a dead
// worker must not inflate them.
func (nc *netCounters) encodeFrame(from Rank, to Rank, tag Tag, payload any) ([]byte, error) {
	t0 := time.Now()
	buf, err := codec.AppendFrame(nil, codec.Frame{
		From: int32(from), To: int32(to), Tag: int32(tag), Payload: payload,
	})
	nc.encodeNs.Add(uint64(time.Since(t0)))
	return buf, err
}

// countSent records one frame written to a connection.
func (nc *netCounters) countSent(n int) {
	nc.framesSent.Add(1)
	nc.bytesSent.Add(uint64(n))
}

// readBody reads one length-prefixed frame body, metering the frame size.
func (nc *netCounters) readBody(r *bufio.Reader) ([]byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenbuf[:])
	if n == 0 || n > codec.MaxFrame {
		return nil, fmt.Errorf("mpi: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	nc.framesRecv.Add(1)
	nc.bytesRecv.Add(uint64(4 + n))
	return body, nil
}

// decodeBody decodes a frame body, metering the codec time.
func (nc *netCounters) decodeBody(body []byte) (codec.Frame, error) {
	t0 := time.Now()
	f, err := codec.DecodeFrame(body)
	nc.decodeNs.Add(uint64(time.Since(t0)))
	return f, err
}

// netConn is one framed TCP connection with a serialized writer.
type netConn struct {
	c   net.Conn
	wmu sync.Mutex
}

func (nc *netConn) write(frame []byte) error {
	nc.wmu.Lock()
	defer nc.wmu.Unlock()
	_, err := nc.c.Write(frame)
	return err
}

// writeParts writes a frame given as separate prefix and body under one
// lock acquisition, so the relay path forwards a received body without
// concatenating it into a fresh buffer.
func (nc *netConn) writeParts(prefix, body []byte) error {
	nc.wmu.Lock()
	defer nc.wmu.Unlock()
	bufs := net.Buffers{prefix, body}
	_, err := bufs.WriteTo(nc.c)
	return err
}

// netWorld is the routing core shared by the coordinator and the worker
// endpoint: local delivery into mailboxes, remote delivery over frames.
type netWorld interface {
	size() int
	now() time.Duration
	// route delivers (or forwards) a message. from may be External.
	route(from, to Rank, tag Tag, payload any)
}

// netComm is a locally hosted rank's Comm on either side of the wire.
type netComm struct {
	w    netWorld
	rank Rank
	body func(Comm)
	mb   *mailbox
}

func (c *netComm) Rank() Rank { return c.rank }
func (c *netComm) Size() int  { return c.w.size() }
func (c *netComm) Send(to Rank, tag Tag, payload any) {
	c.w.route(c.rank, to, tag, payload)
}
func (c *netComm) Recv(from Rank, tag Tag) Msg { return c.mb.take(from, tag) }
func (c *netComm) Work(n int64)                {}
func (c *netComm) Now() time.Duration          { return c.w.now() }

var _ Comm = (*netComm)(nil)

// NetConfig describes the coordinator's side of a distributed world.
type NetConfig struct {
	// Listen is the TCP address workers dial ("127.0.0.1:0" binds an
	// ephemeral port; read it back with Addr).
	Listen string
	// LocalRanks is the number of ranks the coordinator hosts itself:
	// ranks [0, LocalRanks).
	LocalRanks int
	// WorkerRanks lists the rank count each expected worker hosts, in
	// connection order: the i-th worker to complete the handshake hosts
	// the i-th contiguous range after the coordinator's.
	WorkerRanks []int
	// Blob is handed to every worker at handshake; the embedding layer
	// uses it to reconstruct the worker-side configuration.
	Blob []byte
	// Token, when non-empty, is the shared secret every dialing worker
	// must present in its hello. It is compared in constant time; a
	// mismatch is answered with an explicit rejection status. An empty
	// Token accepts any worker (the pre-auth behavior — loopback only).
	Token string
	// Heartbeat is the interval at which the coordinator pings each
	// connected worker. Zero selects the default (2s); negative disables
	// liveness probing (losses are then detected by read errors only).
	Heartbeat time.Duration
	// HeartbeatTimeout is the silence budget: a connected worker whose
	// stream has carried no frame (data, pong or goodbye) for this long is
	// declared lost and its connection closed. Zero selects 4×Heartbeat.
	HeartbeatTimeout time.Duration
	// PendingLimit caps the pending-frame queue of a lost worker slot:
	// once more than this many frames have queued for a slot awaiting a
	// replacement, the slot is abandoned (OnWorkerAbandoned) instead of
	// queueing forever. Zero means unbounded — the pre-degradation
	// behavior. The cap only applies to slots that have joined at least
	// once; a never-connected worker's queue is the late-join feature and
	// stays unbounded.
	PendingLimit int
	// ReplaceGrace is how long a lost worker slot waits for a replacement
	// before being abandoned. Zero disables the grace timer (slots then
	// only abandon via PendingLimit overflow).
	ReplaceGrace time.Duration

	// OnWorkerLost, when non-nil, is called when a connected worker's
	// stream dies before teardown (read error, reset, missed heartbeat, or
	// a goodbye outside teardown). It runs on a transport goroutine,
	// before the slot reopens for a replacement, so anything it sends into
	// the rank world is ordered ahead of every frame from a rejoining
	// worker. lo/hi is the rank range the worker hosted.
	OnWorkerLost func(worker int, lo, hi Rank)
	// OnWorkerJoined, when non-nil, is called after a worker completes its
	// handshake and its queued frames have flushed. rejoin reports that
	// the slot had been held (and lost) by an earlier connection — a
	// rolling replacement rather than a first join.
	OnWorkerJoined func(worker int, lo, hi Rank, rejoin bool)
	// OnWorkerStats, when non-nil, receives worker telemetry piggybacked
	// on pong and goodbye control frames: cumulative Recv-idle seconds per
	// hosted rank (index i = rank lo+i). Values are cumulative for one
	// connection's lifetime; a replacement worker restarts from zero.
	OnWorkerStats func(worker int, lo Rank, idleSeconds []float64)
	// OnWorkerAbandoned, when non-nil, is called when a lost worker slot
	// gives up waiting for a replacement — its ReplaceGrace expired, or
	// its pending queue overflowed PendingLimit — at most once per loss.
	// The slot's queued frames are dropped and further frames for its
	// ranks are discarded instead of queued; the slot itself stays
	// claimable, so a worker dialing in later still revives it (the join
	// fires OnWorkerJoined with rejoin=true and queueing resumes).
	OnWorkerAbandoned func(worker int, lo, hi Rank)
}

// NetCluster is the coordinator of a distributed rank world. It implements
// Cluster for the ranks it hosts; Start calls for worker-hosted ranks are
// accepted and ignored (their hosting process starts them), so the same
// topology wiring runs unchanged on wall and net transports.
type NetCluster struct {
	cfg   NetConfig
	ln    net.Listener
	start time.Time
	local []*netComm
	// bounds[i] is the first rank of worker i's range; bounds[len] = Size.
	bounds []Rank

	counters netCounters

	mu        sync.Mutex
	cond      *sync.Cond
	conns     []*netConn // per worker slot; nil until the handshake completes
	claimed   []bool     // slot reserved by an in-flight handshake or live conn
	done      []bool     // connection ended; reset when the slot reopens
	served    []bool     // slot has completed a handshake at least once
	pending   [][][]byte // frames queued for a not-yet-(re)connected worker
	abandoned []bool     // slot gave up on a replacement; frames are dropped
	gen       []uint64   // bumped at each connection publish; guards stale abandons
	closed    bool       // listener shut down, no more workers accepted

	// lastSeen[i] is the unix-nano arrival time of worker i's latest
	// frame, updated lock-free by the per-connection readers and consumed
	// by the heartbeat monitor.
	lastSeen []atomic.Int64
	hbStop   chan struct{}
	hbOnce   sync.Once

	wg sync.WaitGroup
}

// ListenNet binds the coordinator's listener and starts accepting worker
// handshakes immediately; Run launches the local rank bodies. The world
// size is LocalRanks plus the sum of WorkerRanks.
func ListenNet(cfg NetConfig) (*NetCluster, error) {
	if cfg.LocalRanks < 1 {
		return nil, fmt.Errorf("mpi: net cluster needs at least one local rank")
	}
	size := cfg.LocalRanks
	bounds := []Rank{Rank(cfg.LocalRanks)}
	for i, n := range cfg.WorkerRanks {
		if n < 1 {
			return nil, fmt.Errorf("mpi: worker %d hosts %d ranks", i, n)
		}
		size += n
		bounds = append(bounds, Rank(size))
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	c := &NetCluster{
		cfg:       cfg,
		ln:        ln,
		start:     time.Now(),
		local:     make([]*netComm, cfg.LocalRanks),
		bounds:    bounds,
		conns:     make([]*netConn, len(cfg.WorkerRanks)),
		claimed:   make([]bool, len(cfg.WorkerRanks)),
		done:      make([]bool, len(cfg.WorkerRanks)),
		served:    make([]bool, len(cfg.WorkerRanks)),
		pending:   make([][][]byte, len(cfg.WorkerRanks)),
		abandoned: make([]bool, len(cfg.WorkerRanks)),
		gen:       make([]uint64, len(cfg.WorkerRanks)),
		lastSeen:  make([]atomic.Int64, len(cfg.WorkerRanks)),
		hbStop:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	for r := range c.local {
		c.local[r] = &netComm{w: c, rank: Rank(r), mb: newMailbox()}
	}
	go c.accept()
	if interval := cfg.Heartbeat; interval >= 0 && len(cfg.WorkerRanks) > 0 {
		if interval == 0 {
			interval = defaultHeartbeat
		}
		timeout := cfg.HeartbeatTimeout
		if timeout == 0 {
			timeout = 4 * interval
		}
		go c.heartbeat(interval, timeout)
	}
	return c, nil
}

// heartbeat pings every connected worker each interval and severs any
// connection silent for longer than timeout. Closing the stale connection
// is enough: its reader fails and runs the shared loss path (workerGone),
// so missed-heartbeat and read-error losses are handled identically.
func (c *NetCluster) heartbeat(interval, timeout time.Duration) {
	ping, err := c.counters.encodeFrame(ctrlRank, ctrlRank, ctrlPing, nil)
	if err != nil {
		panic(fmt.Sprintf("mpi: unencodable ping frame: %v", err))
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-tick.C:
		}
		now := time.Now().UnixNano()
		var live, stale []*netConn
		c.mu.Lock()
		for i, conn := range c.conns {
			if conn == nil {
				continue
			}
			if now-c.lastSeen[i].Load() > int64(timeout) {
				stale = append(stale, conn)
			} else {
				live = append(live, conn)
			}
		}
		c.mu.Unlock()
		for _, conn := range stale {
			conn.c.Close() //nolint:errcheck // reader runs the loss path
		}
		for _, conn := range live {
			// Pings are written off the monitor goroutine: a frozen peer
			// whose send buffer is full blocks writers on the connection's
			// write mutex, and a blocked monitor could never reach the
			// staleness check that closes exactly such connections. The
			// blocked goroutines are bounded: the peer stays silent, so
			// within the timeout the staleness close unblocks them all
			// with write errors.
			conn := conn
			go func() {
				if conn.write(ping) == nil {
					c.counters.countSent(len(ping))
				}
			}()
		}
	}
}

// Addr returns the listener's address, for workers dialing an ephemeral
// port.
func (c *NetCluster) Addr() string { return c.ln.Addr().String() }

// Size implements Cluster.
func (c *NetCluster) Size() int { return int(c.bounds[len(c.bounds)-1]) }

// Drain announces teardown ahead of Run's own closing: no new workers
// are accepted and a connection ending from here on is a clean departure
// (teardown accounting), never a loss. The embedding layer calls it
// after draining its jobs, just before broadcasting shutdown into the
// rank world — otherwise a fast worker's goodbye can race the local
// bodies' unwind, be misread as a crash, fire the loss hooks into
// already-exiting ranks and reopen the slot for a replacement that
// would never learn about the shutdown.
func (c *NetCluster) Drain() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// Stats snapshots the coordinator's transport counters.
func (c *NetCluster) Stats() NetStats {
	s := c.counters.snapshot()
	c.mu.Lock()
	for i, conn := range c.conns {
		if conn != nil && !c.done[i] {
			s.Workers++
		}
	}
	c.mu.Unlock()
	return s
}

func (c *NetCluster) size() int          { return c.Size() }
func (c *NetCluster) now() time.Duration { return time.Since(c.start) }

// workerOf maps a rank to its hosting worker slot, or -1 for local ranks.
func (c *NetCluster) workerOf(to Rank) int {
	if to < c.bounds[0] {
		return -1
	}
	for i := 1; i < len(c.bounds); i++ {
		if to < c.bounds[i] {
			return i - 1
		}
	}
	panic(fmt.Sprintf("mpi: rank %d outside the world of %d", to, c.Size()))
}

// route implements netWorld: local ranks get mailbox delivery, worker
// ranks a frame — queued if the worker has not connected yet.
func (c *NetCluster) route(from, to Rank, tag Tag, payload any) {
	w := c.workerOf(to)
	if w < 0 {
		c.local[to].mb.push(Msg{From: from, Tag: tag, Payload: payload})
		return
	}
	frame, err := c.counters.encodeFrame(from, to, tag, payload)
	if err != nil {
		panic(fmt.Sprintf("mpi: unencodable payload for rank %d: %v", to, err))
	}
	c.sendWorker(w, frame)
}

// relayWorker forwards a received frame body to a worker slot without
// re-encoding: the length prefix is written separately so the body slice
// goes out as-is. Only the (rare) pending path concatenates.
func (c *NetCluster) relayWorker(w int, body []byte) {
	c.mu.Lock()
	conn := c.conns[w]
	if conn == nil {
		// Not connected — never joined, or lost and awaiting a
		// replacement: queue, so the frame reaches whichever process next
		// claims the slot. Teardown and abandonment drop frames.
		if !c.closed && !c.abandoned[w] {
			frame := make([]byte, 0, 4+len(body))
			frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
			c.pending[w] = append(c.pending[w], append(frame, body...))
			if overflow, gen := c.pendingOverLimit(w); overflow {
				c.mu.Unlock()
				c.abandonSlot(w, gen)
				return
			}
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(body)))
	if conn.writeParts(prefix[:], body) == nil {
		c.counters.countSent(4 + len(body))
	}
}

// sendWorker ships an already-encoded frame to a worker slot — queued
// while the slot has no connection (not yet joined, or lost and awaiting
// its replacement), dropped only once the cluster is tearing down.
func (c *NetCluster) sendWorker(w int, frame []byte) {
	c.mu.Lock()
	conn := c.conns[w]
	if conn == nil {
		if !c.closed && !c.abandoned[w] {
			c.pending[w] = append(c.pending[w], frame)
			if overflow, gen := c.pendingOverLimit(w); overflow {
				c.mu.Unlock()
				c.abandonSlot(w, gen)
				return
			}
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// A write error means the worker died; its reader notices and
	// releases the slot, so the error itself is not actionable here.
	if conn.write(frame) == nil {
		c.counters.countSent(len(frame))
	}
}

// pendingOverLimit reports (under c.mu) whether slot w's pending queue
// just exceeded the configured cap, and the generation to validate the
// abandonment against. The cap is gated on served: a never-joined
// worker's queue is the late-join feature and stays unbounded.
func (c *NetCluster) pendingOverLimit(w int) (bool, uint64) {
	if c.cfg.PendingLimit > 0 && c.served[w] && len(c.pending[w]) > c.cfg.PendingLimit {
		return true, c.gen[w]
	}
	return false, 0
}

// abandonSlot marks a lost worker slot abandoned: its queued frames are
// dropped and future frames for its ranks are discarded, and
// OnWorkerAbandoned fires exactly once. The generation check makes stale
// triggers harmless — a grace timer armed for a connection that has since
// been replaced (gen bumped at publish) validates against the old gen and
// backs off; so does any trigger racing a handshake (claimed) or arriving
// after teardown. The slot is NOT retired: a worker dialing in later
// still claims it, which clears the abandoned flag and revives the range.
func (c *NetCluster) abandonSlot(slot int, gen uint64) {
	c.mu.Lock()
	if c.closed || c.abandoned[slot] || c.conns[slot] != nil ||
		c.claimed[slot] || c.gen[slot] != gen {
		c.mu.Unlock()
		return
	}
	c.abandoned[slot] = true
	c.pending[slot] = nil
	c.mu.Unlock()
	if c.cfg.OnWorkerAbandoned != nil {
		c.cfg.OnWorkerAbandoned(slot, c.bounds[slot], c.bounds[slot+1])
	}
}

// Start implements Cluster. Bodies for worker-hosted ranks are ignored:
// their hosting process constructs and runs them.
func (c *NetCluster) Start(rank Rank, body func(Comm)) {
	if c.workerOf(rank) >= 0 {
		return
	}
	nc := c.local[rank]
	if nc.body != nil {
		panic(fmt.Sprintf("mpi: rank %d started twice", rank))
	}
	nc.body = body
}

// Inject delivers a message from outside the rank world (From ==
// External), exactly like WallCluster.Inject; remote ranks receive it as
// a frame.
func (c *NetCluster) Inject(to Rank, tag Tag, payload any) {
	c.route(External, to, tag, payload)
}

// Run implements Cluster: it launches the coordinator-hosted bodies,
// blocks until they return, then stops accepting workers and waits for
// every connected worker's goodbye before closing the connections. The
// returned duration is coordinator wall time.
func (c *NetCluster) Run() time.Duration {
	for _, nc := range c.local {
		if nc.body == nil {
			panic(fmt.Sprintf("mpi: rank %d never started", nc.rank))
		}
	}
	t0 := time.Now()
	for _, nc := range c.local {
		nc := nc
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			nc.body(nc)
		}()
	}
	c.wg.Wait()

	// Teardown: no new workers, then drain the connected ones. A worker
	// that never connected (or was lost and never replaced) keeps its
	// pending queue unflushed and is not waited for.
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.hbOnce.Do(func() { close(c.hbStop) })
	c.ln.Close() //nolint:errcheck // double-close on a dead listener is fine
	c.mu.Lock()
	for {
		waiting := false
		for i, conn := range c.conns {
			if conn != nil && !c.done[i] {
				waiting = true
			}
		}
		if !waiting {
			break
		}
		c.cond.Wait()
	}
	conns := append([]*netConn(nil), c.conns...)
	c.mu.Unlock()
	for _, conn := range conns {
		if conn != nil {
			conn.c.Close() //nolint:errcheck // teardown
		}
	}
	return time.Since(t0)
}

// accept runs the coordinator's handshake loop until the listener closes.
func (c *NetCluster) accept() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.handshake(conn)
	}
}

// handshakeTimeout bounds how long an accepted connection may take to
// present its hello: a port scanner or stalled probe must not pin a
// goroutine and a socket forever.
const handshakeTimeout = 10 * time.Second

// handshake validates a dialing worker, assigns it the next free slot and
// starts its reader. Version mismatches, token mismatches and
// over-subscription are answered with an explicit rejection status before
// closing.
//
// Ordering matters: the connection is published to route() only after the
// welcome and every pending frame are on the wire, so the worker always
// reads the handshake response first and the queued frames in send order
// — live frames can never overtake them (per-pair FIFO). A handshake that
// fails mid-way releases its slot claim, so a retrying worker can join.
func (c *NetCluster) handshake(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout)) //nolint:errcheck // enforced by the reads below
	hello := make([]byte, len(helloMagic)+1)
	if _, err := io.ReadFull(conn, hello); err != nil || string(hello[:len(helloMagic)]) != helloMagic {
		conn.Close() //nolint:errcheck // not a worker
		return
	}
	// Version gates the rest of the hello's layout: answer a mismatch
	// before trying to parse a token field a foreign version may not send.
	if hello[len(helloMagic)] != codec.Version {
		conn.Write([]byte{hsBadVersion, codec.Version}) //nolint:errcheck // closing anyway
		conn.Close()                                    //nolint:errcheck
		return
	}
	var toklen [1]byte
	if _, err := io.ReadFull(conn, toklen[:]); err != nil {
		conn.Close() //nolint:errcheck // hello torn mid-frame
		return
	}
	token := make([]byte, toklen[0])
	if _, err := io.ReadFull(conn, token); err != nil {
		conn.Close() //nolint:errcheck // hello torn mid-frame
		return
	}
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck // frames may arrive much later
	if !tokenOK(c.cfg.Token, token) {
		conn.Write([]byte{hsBadToken, codec.Version}) //nolint:errcheck // closing anyway
		conn.Close()                                  //nolint:errcheck
		return
	}

	c.mu.Lock()
	slot := -1
	if !c.closed {
		for i := range c.conns {
			if !c.claimed[i] && !c.done[i] {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		c.mu.Unlock()
		conn.Write([]byte{hsNoSlot, codec.Version}) //nolint:errcheck // closing anyway
		conn.Close()                                //nolint:errcheck
		return
	}
	c.claimed[slot] = true
	rejoin := c.served[slot]
	// Claiming an abandoned slot revives it: queueing resumes for the
	// duration of the handshake, and a completed join hands the range
	// back to the embedding layer (rejoin=true).
	revived := c.abandoned[slot]
	c.abandoned[slot] = false
	lo, hi := c.bounds[slot], c.bounds[slot+1]
	c.mu.Unlock()

	nc := &netConn{c: conn}
	// fail releases the slot claim and requeues any frames this attempt
	// took from the pending queue but did not write, so a retrying worker
	// still receives them (in order, ahead of anything queued since). An
	// abandoned slot goes back to being abandoned.
	fail := func(unwritten [][]byte) {
		conn.Close() //nolint:errcheck // teardown
		c.mu.Lock()
		c.claimed[slot] = false
		if revived {
			c.abandoned[slot] = true
			c.pending[slot] = nil
		} else if len(unwritten) > 0 {
			c.pending[slot] = append(unwritten, c.pending[slot]...)
		}
		c.mu.Unlock()
	}

	welcome := []byte{hsOK, codec.Version}
	welcome = binary.LittleEndian.AppendUint32(welcome, uint32(c.Size()))
	welcome = binary.LittleEndian.AppendUint32(welcome, uint32(lo))
	welcome = binary.LittleEndian.AppendUint32(welcome, uint32(hi))
	welcome = binary.LittleEndian.AppendUint32(welcome, uint32(len(c.cfg.Blob)))
	welcome = append(welcome, c.cfg.Blob...)
	if err := nc.write(welcome); err != nil {
		fail(nil)
		return
	}
	// Drain the pending queue, then publish the connection in the same
	// critical section that observes it empty — frames queued while we
	// were flushing are picked up by the next loop turn, and once the
	// conn is published route() writes directly.
	for {
		c.mu.Lock()
		pending := c.pending[slot]
		c.pending[slot] = nil
		if len(pending) == 0 {
			if c.closed {
				// Run's teardown already snapshotted the connections; a
				// conn published now would never be closed or waited for.
				// Dropping it makes the worker's reader fail, so its
				// process exits instead of idling forever.
				c.mu.Unlock()
				fail(nil)
				return
			}
			c.conns[slot] = nc
			c.served[slot] = true
			c.gen[slot]++ // invalidate grace timers armed for the previous conn
			c.lastSeen[slot].Store(time.Now().UnixNano())
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		for i, frame := range pending {
			if err := nc.write(frame); err != nil {
				fail(pending[i:])
				return
			}
			c.counters.countSent(len(frame))
		}
	}
	if c.cfg.OnWorkerJoined != nil {
		c.cfg.OnWorkerJoined(slot, lo, hi, rejoin)
	}
	go c.read(slot, nc)
}

// tokenOK compares a presented worker token against the configured shared
// secret in constant time. An empty configured token accepts anything.
func tokenOK(want string, got []byte) bool {
	if want == "" {
		return true
	}
	if len(got) != len(want) {
		// Burn a comparison of the same width anyway so a length mismatch
		// costs what a content mismatch costs.
		subtle.ConstantTimeCompare([]byte(want), []byte(want))
		return false
	}
	return subtle.ConstantTimeCompare([]byte(want), got) == 1
}

// read pumps one worker's inbound frames: local delivery, hub forwarding
// to other workers, and the control frames (goodbye, pong). A read error
// (worker crash, connection reset, heartbeat-triggered close) runs the
// loss path: Run stops waiting for the worker during teardown, and before
// teardown the slot reopens for a rolling replacement after OnWorkerLost
// has fired.
//
// Only frames for coordinator-hosted ranks are decoded; worker-to-worker
// frames are relayed verbatim from the envelope peek — the hub never
// pays (or trusts) payload decoding for traffic that is just passing
// through. The envelope is remote-controlled, so every field is bounds-
// checked and a malformed frame is dropped, never allowed to panic.
func (c *NetCluster) read(slot int, nc *netConn) {
	r := bufio.NewReader(nc.c)
	for {
		body, err := c.counters.readBody(r)
		if err != nil {
			c.workerGone(slot, nc)
			return
		}
		c.lastSeen[slot].Store(time.Now().UnixNano())
		from, to, tag, ok := codec.PeekEnvelope(body)
		if !ok {
			continue // truncated header or foreign version
		}
		if to == ctrlRank {
			switch Tag(tag) {
			case ctrlBye:
				c.workerTelemetry(slot, body)
				c.workerGone(slot, nc)
				return
			case ctrlPong:
				c.workerTelemetry(slot, body)
			}
			continue
		}
		if to < 0 || int(to) >= c.Size() {
			continue
		}
		// A worker may only speak as the ranks it hosts: the From field is
		// echoed into Send targets by the scheduler and dispatcher, so a
		// forged one (External, another worker's rank, out of world) must
		// be dropped here, not trusted into the protocol.
		if from < int32(c.bounds[slot]) || from >= int32(c.bounds[slot+1]) {
			continue
		}
		if w := c.workerOf(Rank(to)); w >= 0 {
			// Hub relay: re-prefix the body and forward the bytes as-is.
			c.relayWorker(w, body)
			continue
		}
		f, err := c.counters.decodeBody(body)
		if err != nil {
			continue // malformed payload: drop, the sender is remote
		}
		c.local[to].mb.push(Msg{From: Rank(from), Tag: Tag(f.Tag), Payload: f.Payload})
	}
}

// workerTelemetry decodes the idle counters piggybacked on a pong or
// goodbye frame and hands them to the embedding layer.
func (c *NetCluster) workerTelemetry(slot int, body []byte) {
	if c.cfg.OnWorkerStats == nil {
		return
	}
	f, err := c.counters.decodeBody(body)
	if err != nil {
		return // malformed control payload: drop
	}
	idle, ok := f.Payload.([]float64)
	if !ok || len(idle) == 0 {
		return
	}
	lo, hi := c.bounds[slot], c.bounds[slot+1]
	if len(idle) > int(hi-lo) {
		idle = idle[:hi-lo]
	}
	c.cfg.OnWorkerStats(slot, lo, idle)
}

// workerGone handles one worker connection ending, by goodbye or by
// stream death. During teardown the slot is marked drained so Run can
// finish; before teardown this is a worker loss: OnWorkerLost fires
// first, and only then does the slot reopen for a replacement — so
// everything the loss hook sends into the rank world is ordered ahead of
// any frame from a rejoining worker, and frames routed to the slot in the
// meantime queue in its pending list.
func (c *NetCluster) workerGone(slot int, nc *netConn) {
	nc.c.Close() //nolint:errcheck // may already be closed
	c.mu.Lock()
	if c.conns[slot] != nc {
		// A stale notification for a connection this slot no longer owns.
		c.mu.Unlock()
		return
	}
	c.conns[slot] = nil
	c.done[slot] = true
	closed := c.closed
	c.mu.Unlock()
	c.cond.Broadcast()
	if closed {
		return
	}
	if c.cfg.OnWorkerLost != nil {
		c.cfg.OnWorkerLost(slot, c.bounds[slot], c.bounds[slot+1])
	}
	c.mu.Lock()
	var graceGen uint64
	grace := false
	overflow := false
	var overflowGen uint64
	if !c.closed {
		c.done[slot] = false
		c.claimed[slot] = false
		if c.cfg.ReplaceGrace > 0 {
			grace, graceGen = true, c.gen[slot]
		}
		// Frames queued while the loss hook ran could not trip the cap
		// (the slot was still claimed); settle the bill now.
		overflow, overflowGen = c.pendingOverLimit(slot)
	}
	c.mu.Unlock()
	if overflow {
		c.abandonSlot(slot, overflowGen)
		return
	}
	if grace {
		time.AfterFunc(c.cfg.ReplaceGrace, func() { c.abandonSlot(slot, graceGen) })
	}
}

var _ Cluster = (*NetCluster)(nil)

// NetWorker is the worker-process side of a distributed world: it hosts
// the contiguous rank range the coordinator assigned at handshake and
// implements Cluster for exactly those ranks (Start for any other rank is
// ignored).
type NetWorker struct {
	conn   *netConn
	size_  int
	lo, hi Rank
	blob   []byte
	start  time.Time
	local  []*netComm

	counters netCounters

	// telemetry, when set (before Run), samples the worker's cumulative
	// per-rank idle seconds; the snapshot rides pong and goodbye frames.
	telemetry func() []float64

	// silence, when positive (SetSilenceTimeout, before Run), is the
	// worker-side liveness budget: the coordinator pings every Heartbeat
	// interval, so a stream that carries nothing for this long means the
	// coordinator is dead or the path is blackholed. The monitor closes
	// the connection; the reader fails and Run returns with Lost() true.
	silence  time.Duration
	lastRecv atomic.Int64
	lost     atomic.Bool

	readerErr chan error
	bodiesRun sync.WaitGroup
}

// DialWorker connects to a coordinator, performs the handshake —
// presenting the shared-secret token, which may be empty when the
// coordinator does not require one — and returns the worker's endpoint.
// The caller inspects RankRange and Blob to construct the rank bodies,
// Starts them, and calls Run.
func DialWorker(addr, token string) (*NetWorker, error) {
	if len(token) > 255 {
		return nil, fmt.Errorf("mpi: worker token of %d bytes exceeds 255", len(token))
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	// The whole handshake must complete within the timeout; a stalled or
	// bogus coordinator must not hang the worker. Cleared before frame
	// traffic starts.
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout)) //nolint:errcheck // enforced by the reads below
	hello := append([]byte(helloMagic), codec.Version, byte(len(token)))
	hello = append(hello, token...)
	if _, err := conn.Write(hello); err != nil {
		conn.Close() //nolint:errcheck
		return nil, err
	}
	head := make([]byte, 2)
	if _, err := io.ReadFull(conn, head); err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("mpi: handshake: %w", err)
	}
	switch head[0] {
	case hsOK:
	case hsBadVersion:
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: coordinator speaks %d, this worker %d",
			codec.ErrVersion, head[1], codec.Version)
	case hsBadToken:
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: shared secret mismatch", ErrBadToken)
	default:
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w (status %d): no free worker slot", ErrWorkerRejected, head[0])
	}
	rest := make([]byte, 16)
	if _, err := io.ReadFull(conn, rest); err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("mpi: handshake: %w", err)
	}
	w := &NetWorker{
		conn:      &netConn{c: conn},
		size_:     int(binary.LittleEndian.Uint32(rest[0:])),
		lo:        Rank(binary.LittleEndian.Uint32(rest[4:])),
		hi:        Rank(binary.LittleEndian.Uint32(rest[8:])),
		start:     time.Now(),
		readerErr: make(chan error, 1),
	}
	bloblen := binary.LittleEndian.Uint32(rest[12:])
	if bloblen > codec.MaxFrame {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("mpi: handshake blob of %d bytes", bloblen)
	}
	w.blob = make([]byte, bloblen)
	if _, err := io.ReadFull(conn, w.blob); err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("mpi: handshake: %w", err)
	}
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck // frames may arrive much later
	if w.lo < 0 || w.hi <= w.lo || int(w.hi) > w.size_ {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("mpi: handshake rank range [%d, %d) in world of %d", w.lo, w.hi, w.size_)
	}
	w.local = make([]*netComm, w.hi-w.lo)
	for i := range w.local {
		w.local[i] = &netComm{w: w, rank: w.lo + Rank(i), mb: newMailbox()}
	}
	return w, nil
}

// RankRange returns the contiguous [lo, hi) range this worker hosts.
func (w *NetWorker) RankRange() (lo, hi Rank) { return w.lo, w.hi }

// Close tears the coordinator connection down without running the world:
// the escape hatch for an embedder that dialed successfully but cannot
// serve the assigned ranks (configuration mismatch). The coordinator's
// reader observes the close and releases the worker slot. Run closes the
// connection itself; Close is only for the never-Run path.
func (w *NetWorker) Close() error { return w.conn.c.Close() }

// Blob returns the coordinator's opaque configuration blob.
func (w *NetWorker) Blob() []byte { return w.blob }

// SetTelemetry installs the sampler whose snapshot — cumulative Recv-idle
// seconds per hosted rank, index i = rank lo+i — is piggybacked on every
// pong and on the goodbye frame. Must be called before Run; the sampler
// is invoked from transport goroutines and must be safe for concurrent
// use.
func (w *NetWorker) SetTelemetry(sample func() []float64) { w.telemetry = sample }

// SetSilenceTimeout arms the worker-side liveness monitor: if the
// coordinator stream carries no frame (data or ping) for d, the
// connection is severed so Run returns instead of hanging on a dead or
// blackholed coordinator forever — the worker-side mirror of the
// coordinator's HeartbeatTimeout. Must be called before Run. Choose d
// comfortably above the coordinator's ping interval (default 2s). Zero
// or negative disables the monitor (the default).
func (w *NetWorker) SetSilenceTimeout(d time.Duration) { w.silence = d }

// Lost reports whether Run ended because the coordinator stream died
// (read error, reset, or the SetSilenceTimeout monitor) rather than by a
// clean drain of the hosted rank bodies. Valid after Run returns; the
// embedding layer uses it to decide whether to redial.
func (w *NetWorker) Lost() bool { return w.lost.Load() }

// monitorSilence severs the coordinator connection once the stream has
// been silent past the budget. Closing is enough: the reader fails and
// Run unwinds through its loss path.
func (w *NetWorker) monitorSilence(stop chan struct{}) {
	interval := w.silence / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		if time.Now().UnixNano()-w.lastRecv.Load() > int64(w.silence) {
			w.conn.c.Close() //nolint:errcheck // reader runs the loss path
			return
		}
	}
}

// sendCtrl ships a control frame (pong, goodbye) carrying the current
// telemetry snapshot, when a sampler is installed.
func (w *NetWorker) sendCtrl(tag Tag) {
	var payload any
	if w.telemetry != nil {
		if idle := w.telemetry(); len(idle) > 0 {
			payload = idle
		}
	}
	frame, err := w.counters.encodeFrame(w.lo, ctrlRank, tag, payload)
	if err != nil {
		return // unencodable telemetry: drop the control frame, not the conn
	}
	if w.conn.write(frame) == nil {
		w.counters.countSent(len(frame))
	}
}

// Stats snapshots the worker's transport counters.
func (w *NetWorker) Stats() NetStats { return w.counters.snapshot() }

// Size implements Cluster.
func (w *NetWorker) Size() int { return w.size_ }

func (w *NetWorker) size() int          { return w.size_ }
func (w *NetWorker) now() time.Duration { return time.Since(w.start) }

// route implements netWorld: locally hosted ranks get mailbox delivery,
// everything else goes to the coordinator (which forwards worker-to-worker
// frames).
func (w *NetWorker) route(from, to Rank, tag Tag, payload any) {
	if to >= w.lo && to < w.hi {
		w.local[to-w.lo].mb.push(Msg{From: from, Tag: tag, Payload: payload})
		return
	}
	frame, err := w.counters.encodeFrame(from, to, tag, payload)
	if err != nil {
		panic(fmt.Sprintf("mpi: unencodable payload for rank %d: %v", to, err))
	}
	// A dead coordinator surfaces via the reader; the error itself is not
	// actionable here.
	if w.conn.write(frame) == nil {
		w.counters.countSent(len(frame))
	}
}

// Start implements Cluster: bodies for ranks outside this worker's range
// are ignored (their hosting process runs them).
func (w *NetWorker) Start(rank Rank, body func(Comm)) {
	if rank < w.lo || rank >= w.hi {
		return
	}
	nc := w.local[rank-w.lo]
	if nc.body != nil {
		panic(fmt.Sprintf("mpi: rank %d started twice", rank))
	}
	nc.body = body
}

// Run implements Cluster: it launches the hosted bodies and blocks until
// they all return (normally after the embedding protocol's shutdown
// broadcast), then sends the goodbye frame and closes the connection. If
// the coordinator connection dies first, Run returns early — the hosted
// bodies are stranded mid-Recv and the worker process is expected to
// exit.
func (w *NetWorker) Run() time.Duration {
	for _, nc := range w.local {
		if nc.body == nil {
			panic(fmt.Sprintf("mpi: rank %d never started", nc.rank))
		}
	}
	t0 := time.Now()
	w.lastRecv.Store(time.Now().UnixNano())
	if w.silence > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go w.monitorSilence(stop)
	}
	go w.read()
	bodiesDone := make(chan struct{})
	for _, nc := range w.local {
		nc := nc
		w.bodiesRun.Add(1)
		go func() {
			defer w.bodiesRun.Done()
			nc.body(nc)
		}()
	}
	go func() {
		w.bodiesRun.Wait()
		close(bodiesDone)
	}()
	select {
	case <-bodiesDone:
		// The goodbye carries the final telemetry snapshot, so the
		// coordinator's metrics see the worker's complete idle accounting
		// even if the last pong predates the drain.
		w.sendCtrl(ctrlBye)
	case <-w.readerErr:
		// Coordinator gone: nothing left to say goodbye to.
		w.lost.Store(true)
	}
	w.conn.c.Close() //nolint:errcheck // teardown
	return time.Since(t0)
}

// read pumps inbound frames into the hosted ranks' mailboxes. Only I/O
// errors are fatal (the coordinator is gone); a frame that fails to peek
// or decode is dropped — the hub relays worker-to-worker frames without
// decoding them, so another worker's malformed payload can arrive here
// and must not kill this process.
func (w *NetWorker) read() {
	r := bufio.NewReader(w.conn.c)
	for {
		body, err := w.counters.readBody(r)
		if err != nil {
			select {
			case w.readerErr <- err:
			default:
			}
			return
		}
		w.lastRecv.Store(time.Now().UnixNano())
		_, to32, tag32, ok := codec.PeekEnvelope(body)
		if !ok {
			continue // truncated header or foreign version
		}
		if to32 == ctrlRank {
			if Tag(tag32) == ctrlPing {
				w.sendCtrl(ctrlPong)
			}
			continue
		}
		to := Rank(to32)
		if to < w.lo || to >= w.hi {
			continue // stray frame for a rank this worker does not host
		}
		f, err := w.counters.decodeBody(body)
		if err != nil {
			continue // malformed payload: drop
		}
		w.local[to-w.lo].mb.push(Msg{From: Rank(f.From), Tag: Tag(f.Tag), Payload: f.Payload})
	}
}

var _ Cluster = (*NetWorker)(nil)
