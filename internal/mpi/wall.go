package mpi

import (
	"fmt"
	"sync"
	"time"
)

// WallCluster runs processes as real goroutines in real time: the native
// Go analogue of the paper's MPI deployment, used for actual-speedup runs
// on physical cores. Message passing uses mutex-guarded mailboxes with
// condition variables; there is no speed or network model (Work is a
// no-op unless a throttle is configured).
type WallCluster struct {
	ranks    []*wallComm
	start    time.Time
	wg       sync.WaitGroup
	throttle time.Duration // optional per-unit sleep, see SetThrottle
}

// NewWallCluster builds a world of n ranks.
func NewWallCluster(n int) *WallCluster {
	if n <= 0 {
		panic("mpi: wall cluster needs at least one rank")
	}
	c := &WallCluster{}
	c.ranks = make([]*wallComm, n)
	for r := range c.ranks {
		c.ranks[r] = &wallComm{cluster: c, rank: Rank(r), mb: newMailbox()}
	}
	return c
}

// SetThrottle makes Work sleep d per work unit, to emulate slower nodes in
// wall-clock experiments. Zero (the default) disables throttling.
func (c *WallCluster) SetThrottle(d time.Duration) { c.throttle = d }

// Size implements Cluster.
func (c *WallCluster) Size() int { return len(c.ranks) }

// Start implements Cluster. Bodies begin running when Run is called.
func (c *WallCluster) Start(rank Rank, body func(Comm)) {
	wc := c.ranks[rank]
	if wc.body != nil {
		panic(fmt.Sprintf("mpi: rank %d started twice", rank))
	}
	wc.body = body
}

// Run implements Cluster: launches every rank and blocks until all bodies
// return. The protocol must shut its server loops down (the parallel layer
// broadcasts a shutdown tag), exactly as an MPI program must.
func (c *WallCluster) Run() time.Duration {
	for _, wc := range c.ranks {
		if wc.body == nil {
			panic(fmt.Sprintf("mpi: rank %d never started", wc.rank))
		}
	}
	c.start = time.Now()
	for _, wc := range c.ranks {
		wc := wc
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			wc.body(wc)
		}()
	}
	c.wg.Wait()
	return time.Since(c.start)
}

// wallComm is the per-rank endpoint of a WallCluster.
type wallComm struct {
	cluster *WallCluster
	rank    Rank
	body    func(Comm)
	mb      *mailbox
}

func (w *wallComm) Rank() Rank { return w.rank }
func (w *wallComm) Size() int  { return w.cluster.Size() }

// Send implements Comm.
func (w *wallComm) Send(to Rank, tag Tag, payload any) {
	w.cluster.ranks[to].mb.push(Msg{From: w.rank, Tag: tag, Payload: payload})
}

// Inject delivers a message to rank `to` from outside the rank world; the
// message arrives with From == External. It is safe to call from any
// goroutine, before, during or after Run: mailboxes are mutex-guarded and
// the sender's identity is not consulted. Long-lived services use it as
// the bridge between ordinary Go code (HTTP handlers, job managers) and
// the message-passing world — the moral equivalent of MPI_Comm_connect
// feeding a persistent MPI server.
func (c *WallCluster) Inject(to Rank, tag Tag, payload any) {
	c.ranks[to].mb.push(Msg{From: External, Tag: tag, Payload: payload})
}

// Recv implements Comm.
func (w *wallComm) Recv(from Rank, tag Tag) Msg {
	return w.mb.take(from, tag)
}

// Work implements Comm: real work already burned real CPU; optionally
// sleep to emulate a slower node.
func (w *wallComm) Work(n int64) {
	if t := w.cluster.throttle; t > 0 && n > 0 {
		time.Sleep(time.Duration(n) * t)
	}
}

// Now implements Comm.
func (w *wallComm) Now() time.Duration { return time.Since(w.cluster.start) }

var _ Comm = (*wallComm)(nil)
var _ Cluster = (*WallCluster)(nil)
