package mpi

// TagSpace partitions a contiguous range of tag integers into fixed-width
// per-job bands, the way MPI programs carve MPI_TAG_UB into independent
// sub-protocols. A process that serves many logical jobs at once (the
// search service's shared candidate scheduler) distinguishes the job a
// message belongs to by its tag band instead of a payload field: job j's
// message with in-band offset off travels on tag Base + j*Width + off, and
// the receiver recovers (j, off) with Split.
//
// Bands must not collide with the protocol's flat tags; callers choose a
// Base above them.
type TagSpace struct {
	// Base is the first tag of band 0.
	Base Tag
	// Width is the number of tags in each band: the count of distinct
	// in-band message kinds.
	Width Tag
	// Bands is the number of jobs the space is partitioned for; tags at or
	// beyond Base + Bands*Width are not part of the space.
	Bands int
}

// For returns the tag of job `job`'s message kind `off`. It panics when
// job or off is outside the space, which would silently alias another
// band.
func (ts TagSpace) For(job int, off Tag) Tag {
	if job < 0 || job >= ts.Bands {
		panic("mpi: TagSpace job outside the partition")
	}
	if off < 0 || off >= ts.Width {
		panic("mpi: TagSpace offset outside the band")
	}
	return ts.Base + Tag(job)*ts.Width + off
}

// Split recovers the (job, off) coordinates of a tag. ok is false when the
// tag is outside the space — a flat protocol tag, which the caller handles
// separately.
func (ts TagSpace) Split(t Tag) (job int, off Tag, ok bool) {
	if t < ts.Base || ts.Width <= 0 {
		return 0, 0, false
	}
	rel := t - ts.Base
	job = int(rel / ts.Width)
	if job >= ts.Bands {
		return 0, 0, false
	}
	return job, rel % ts.Width, true
}
