package mpi

import (
	"fmt"
	"time"

	"repro/internal/vtime"
)

// NetworkModel describes the simulated interconnect. The zero value is not
// useful; start from DefaultNetwork.
type NetworkModel struct {
	// Latency is the fixed per-message delivery delay.
	Latency time.Duration
	// Bandwidth is the link throughput in bytes per second, applied to the
	// estimated payload size.
	Bandwidth float64
}

// DefaultNetwork models the paper's Gigabit Ethernet with MPI eager-path
// latency: ~100µs per message plus 125 MB/s of throughput.
func DefaultNetwork() NetworkModel {
	return NetworkModel{Latency: 100 * time.Microsecond, Bandwidth: 125e6}
}

// delay returns the delivery delay for a payload of the given size.
func (n NetworkModel) delay(bytes int) time.Duration {
	d := n.Latency
	if n.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / n.Bandwidth * float64(time.Second))
	}
	return d
}

// VirtualConfig configures a virtual cluster.
type VirtualConfig struct {
	// Speeds holds one relative CPU speed per rank (1.0 = the reference
	// 1.86 GHz node of the paper). Its length is the world size.
	Speeds []float64
	// UnitCost is the virtual CPU time one work unit costs on a speed-1.0
	// node. One work unit is one simulated game move (see core.Meter).
	UnitCost time.Duration
	// Network is the interconnect model.
	Network NetworkModel
	// MaxSteps optionally bounds the number of simulator events as a
	// runaway guard; 0 means unbounded.
	MaxSteps uint64
}

// DefaultUnitCost approximates the cost of one playout step on the paper's
// reference 1.86 GHz node. Absolute table values scale linearly with this
// constant; speedups do not depend on it.
const DefaultUnitCost = 5 * time.Microsecond

// VirtualCluster runs processes under a deterministic discrete-event
// scheduler with per-rank CPU speeds and a network model.
type VirtualCluster struct {
	sim   *vtime.Sim
	cfg   VirtualConfig
	ranks []*virtualComm
}

// NewVirtualCluster builds a world with one rank per entry of cfg.Speeds.
func NewVirtualCluster(cfg VirtualConfig) *VirtualCluster {
	if len(cfg.Speeds) == 0 {
		panic("mpi: virtual cluster needs at least one rank")
	}
	for r, s := range cfg.Speeds {
		if s <= 0 {
			panic(fmt.Sprintf("mpi: rank %d has non-positive speed %v", r, s))
		}
	}
	if cfg.UnitCost <= 0 {
		cfg.UnitCost = DefaultUnitCost
	}
	sim := vtime.NewSim()
	sim.MaxSteps = cfg.MaxSteps
	c := &VirtualCluster{sim: sim, cfg: cfg}
	c.ranks = make([]*virtualComm, len(cfg.Speeds))
	for r := range cfg.Speeds {
		c.ranks[r] = &virtualComm{cluster: c, rank: Rank(r)}
	}
	return c
}

// Size implements Cluster.
func (c *VirtualCluster) Size() int { return len(c.ranks) }

// Start implements Cluster.
func (c *VirtualCluster) Start(rank Rank, body func(Comm)) {
	vc := c.ranks[rank]
	if vc.started {
		panic(fmt.Sprintf("mpi: rank %d started twice", rank))
	}
	vc.started = true
	vc.proc = c.sim.Spawn(fmt.Sprintf("rank%d", rank), func(p *vtime.Proc) {
		body(vc)
	})
}

// Run implements Cluster: it executes the simulation until every event has
// been processed and returns the virtual makespan. Processes still blocked
// in Recv when the system quiesces are terminated (the protocol should
// shut them down explicitly; termination here is a safety net mirroring
// mpirun tearing down stragglers).
func (c *VirtualCluster) Run() time.Duration {
	for _, vc := range c.ranks {
		if !vc.started {
			panic(fmt.Sprintf("mpi: rank %d never started", vc.rank))
		}
	}
	end := c.sim.Run()
	c.sim.Close()
	return end
}

// Parked lists the ranks still blocked after Run, for protocol debugging.
func (c *VirtualCluster) Parked() []string { return c.sim.Parked() }

// virtualComm is the per-rank endpoint of a VirtualCluster.
type virtualComm struct {
	cluster *VirtualCluster
	rank    Rank
	proc    *vtime.Proc
	started bool
	mailbox []Msg
}

func (v *virtualComm) Rank() Rank { return v.rank }
func (v *virtualComm) Size() int  { return v.cluster.Size() }

// Send implements Comm: the message arrives after the network delay for
// its estimated size. Delivery is a scheduler-context event, so ordering
// between concurrent senders is deterministic (event sequence order).
func (v *virtualComm) Send(to Rank, tag Tag, payload any) {
	dst := v.cluster.ranks[to]
	msg := Msg{From: v.rank, Tag: tag, Payload: payload}
	delay := v.cluster.cfg.Network.delay(PayloadSize(payload))
	v.cluster.sim.At(delay, func() {
		dst.mailbox = append(dst.mailbox, msg)
		// Wake the receiver unconditionally; a spurious wake of a rank not
		// blocked in Recv is dropped by the scheduler.
		if dst.proc != nil {
			v.cluster.sim.Wake(dst.proc)
		}
	})
}

// Recv implements Comm: it parks until a matching message is in the
// mailbox and removes the earliest match.
func (v *virtualComm) Recv(from Rank, tag Tag) Msg {
	for {
		for i, m := range v.mailbox {
			if m.matches(from, tag) {
				v.mailbox = append(v.mailbox[:i], v.mailbox[i+1:]...)
				return m
			}
		}
		v.proc.Park()
	}
}

// Work implements Comm: n units cost n × UnitCost ÷ speed of virtual time.
func (v *virtualComm) Work(n int64) {
	if n <= 0 {
		return
	}
	cost := time.Duration(float64(n) * float64(v.cluster.cfg.UnitCost) / v.cluster.cfg.Speeds[v.rank])
	v.proc.Advance(cost)
}

// Now implements Comm.
func (v *virtualComm) Now() time.Duration { return v.cluster.sim.Now() }

var _ Comm = (*virtualComm)(nil)
var _ Cluster = (*VirtualCluster)(nil)
