package mpi

// Tests of the TCP transport: a coordinator plus worker endpoints running
// in-process over loopback, which exercises the full wire path (frames,
// handshake, hub routing) under the race detector.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi/codec"
)

// startWorker dials the coordinator and runs the given bodies for its
// assigned ranks on a background goroutine.
func startWorker(t *testing.T, addr string, body func(Comm), wg *sync.WaitGroup) *NetWorker {
	t.Helper()
	w, err := DialWorker(addr, "")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	lo, hi := w.RankRange()
	for r := lo; r < hi; r++ {
		w.Start(r, body)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run()
	}()
	return w
}

// TestNetClusterPingPong runs a 4-rank world — coordinator hosting ranks
// 0–1, two single-rank workers — and checks point-to-point messages in
// every direction, including worker-to-worker frames that must be
// forwarded through the coordinator hub.
func TestNetClusterPingPong(t *testing.T) {
	const shutdown Tag = 99
	nc, err := ListenNet(NetConfig{
		Listen:      "127.0.0.1:0",
		LocalRanks:  2,
		WorkerRanks: []int{1, 1},
		Blob:        []byte("cfg"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if nc.Size() != 4 {
		t.Fatalf("size %d, want 4", nc.Size())
	}

	results := make(chan string, 4)
	nc.Start(0, func(c Comm) {
		// Round trip with each remote rank.
		c.Send(2, 1, 41)
		c.Send(3, 1, 58)
		a := c.Recv(2, 2).Payload.(int)
		b := c.Recv(3, 2).Payload.(int)
		if a != 42 || b != 59 {
			results <- "bad replies"
		} else {
			results <- "ok"
		}
		// Ask worker rank 2 to ping its peer rank 3 (hub forwarding).
		c.Send(2, 3, 3)
		relayed := c.Recv(3, 4).Payload.(int)
		if relayed != 1042 {
			results <- "bad relay"
		} else {
			results <- "ok"
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(Rank(r), shutdown, nil)
		}
	})
	nc.Start(1, func(c Comm) {
		// A local rank that just waits for teardown, proving local and
		// remote ranks coexist.
		c.Recv(AnyRank, shutdown)
	})
	// Remote ranks are started by their own processes; this Start must be
	// a no-op, not a panic.
	nc.Start(2, func(c Comm) { t.Error("remote body ran on the coordinator") })

	runDone := make(chan time.Duration, 1)
	go func() { runDone <- nc.Run() }()

	body := func(c Comm) {
		for {
			m := c.Recv(AnyRank, AnyTag)
			switch m.Tag {
			case shutdown:
				return
			case 1: // from coordinator: increment and answer
				c.Send(m.From, 2, m.Payload.(int)+1)
			case 3: // relay request: ping the other worker rank
				other := Rank(5 - int(c.Rank())) // 2<->3
				c.Send(other, 5, 1000)
			case 5: // relayed ping: report to rank 0 with the sender echoed
				if m.From != Rank(5-int(c.Rank())) {
					c.Send(0, 4, -1)
				} else {
					c.Send(0, 4, m.Payload.(int)+42)
				}
			}
		}
	}
	var wg sync.WaitGroup
	w1 := startWorker(t, nc.Addr(), body, &wg)
	startWorker(t, nc.Addr(), body, &wg)

	if lo, hi := w1.RankRange(); hi-lo != 1 {
		t.Fatalf("worker range [%d, %d), want one rank", lo, hi)
	}
	if string(w1.Blob()) != "cfg" {
		t.Fatalf("blob %q", w1.Blob())
	}

	for i := 0; i < 2; i++ {
		if got := <-results; got != "ok" {
			t.Fatal(got)
		}
	}
	select {
	case <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator Run did not return")
	}
	wg.Wait()

	st := nc.Stats()
	if st.FramesSent == 0 || st.FramesRecv == 0 || st.BytesSent == 0 || st.BytesRecv == 0 {
		t.Fatalf("transport counters empty: %+v", st)
	}
	if st.EncodeNs == 0 || st.DecodeNs == 0 {
		t.Fatalf("codec timers empty: %+v", st)
	}
	ws := w1.Stats()
	if ws.FramesSent == 0 || ws.FramesRecv == 0 {
		t.Fatalf("worker counters empty: %+v", ws)
	}
}

// TestNetClusterInjectAndLateJoin checks External injection to a remote
// rank and the pending-frame path: the message is injected before the
// worker dials in and must be flushed on connect.
func TestNetClusterInjectAndLateJoin(t *testing.T) {
	const shutdown Tag = 99
	nc, err := ListenNet(NetConfig{
		Listen:      "127.0.0.1:0",
		LocalRanks:  1,
		WorkerRanks: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Msg, 1)
	nc.Start(0, func(c Comm) {
		got <- c.Recv(AnyRank, 7)
		c.Send(1, shutdown, nil)
	})

	// Injected while no worker is connected: must queue, then flush.
	nc.Inject(1, 5, uint64(123))

	runDone := make(chan time.Duration, 1)
	go func() { runDone <- nc.Run() }()
	time.Sleep(50 * time.Millisecond) // let the injection land in the pending queue

	var wg sync.WaitGroup
	startWorker(t, nc.Addr(), func(c Comm) {
		m := c.Recv(AnyRank, 5)
		if m.From != External {
			c.Send(0, 7, "not external")
		} else {
			c.Send(0, 7, m.Payload)
		}
		c.Recv(AnyRank, shutdown)
	}, &wg)

	m := <-got
	if v, ok := m.Payload.(uint64); !ok || v != 123 {
		t.Fatalf("echoed payload %v", m.Payload)
	}
	<-runDone
	wg.Wait()
}

// TestNetHandshakeVersionReject pins version negotiation: a dialer
// speaking a different protocol version is refused at handshake with an
// explicit status, and DialWorker surfaces codec.ErrVersion.
func TestNetHandshakeVersionReject(t *testing.T) {
	nc, err := ListenNet(NetConfig{
		Listen:      "127.0.0.1:0",
		LocalRanks:  1,
		WorkerRanks: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	nc.Start(0, func(c Comm) { <-stop })

	// Raw dial with a foreign version byte.
	conn, err := net.Dial("tcp", nc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append([]byte(helloMagic), codec.Version+1)); err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 2)
	if _, err := readFull(conn, head); err != nil {
		t.Fatalf("read rejection: %v", err)
	}
	if head[0] != hsBadVersion || head[1] != codec.Version {
		t.Fatalf("rejection %v, want [%d %d]", head, hsBadVersion, codec.Version)
	}
	conn.Close()

	// A well-versioned worker still gets the slot afterwards.
	w, err := DialWorker(nc.Addr(), "")
	if err != nil {
		t.Fatalf("good dial after bad: %v", err)
	}
	w.conn.c.Close()
	close(stop)
}

// readFull is io.ReadFull without importing io in the test.
func readFull(conn net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		k, err := conn.Read(buf[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TestNetWorkerNoSlot checks over-subscription: a third worker dialing a
// two-worker world is rejected cleanly.
func TestNetWorkerNoSlot(t *testing.T) {
	nc, err := ListenNet(NetConfig{
		Listen:      "127.0.0.1:0",
		LocalRanks:  1,
		WorkerRanks: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	nc.Start(0, func(c Comm) { <-stop })
	defer close(stop)

	w, err := DialWorker(nc.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer w.conn.c.Close()
	if _, err := DialWorker(nc.Addr(), ""); err == nil {
		t.Fatal("third worker accepted into a one-worker world")
	} else if errors.Is(err, codec.ErrVersion) {
		t.Fatalf("wrong rejection: %v", err)
	}
}
