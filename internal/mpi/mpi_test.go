package mpi

import (
	"testing"
	"time"

	"repro/internal/morpion"
)

// both runs a test body against both transports.
func both(t *testing.T, n int, f func(t *testing.T, c Cluster)) {
	t.Run("virtual", func(t *testing.T) {
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = 1
		}
		f(t, NewVirtualCluster(VirtualConfig{Speeds: speeds}))
	})
	t.Run("wall", func(t *testing.T) {
		f(t, NewWallCluster(n))
	})
}

func TestPingPong(t *testing.T) {
	both(t, 2, func(t *testing.T, c Cluster) {
		var got Msg
		c.Start(0, func(cm Comm) {
			cm.Send(1, 7, 42)
			got = cm.Recv(1, 8)
		})
		c.Start(1, func(cm Comm) {
			m := cm.Recv(0, 7)
			cm.Send(0, 8, m.Payload.(int)+1)
		})
		c.Run()
		if got.Payload.(int) != 43 || got.From != 1 || got.Tag != 8 {
			t.Fatalf("got %+v", got)
		}
	})
}

func TestWildcardRecv(t *testing.T) {
	both(t, 4, func(t *testing.T, c Cluster) {
		sum := 0
		c.Start(0, func(cm Comm) {
			for i := 0; i < 3; i++ {
				m := cm.Recv(AnyRank, AnyTag)
				sum += m.Payload.(int)
			}
		})
		for r := 1; r < 4; r++ {
			r := r
			c.Start(Rank(r), func(cm Comm) { cm.Send(0, Tag(r), r*10) })
		}
		c.Run()
		if sum != 60 {
			t.Fatalf("sum = %d, want 60", sum)
		}
	})
}

func TestTagFiltering(t *testing.T) {
	both(t, 2, func(t *testing.T, c Cluster) {
		var order []int
		c.Start(0, func(cm Comm) {
			cm.Send(1, 1, 100)
			cm.Send(1, 2, 200)
		})
		c.Start(1, func(cm Comm) {
			// Receive tag 2 first even though tag 1 arrived first.
			m2 := cm.Recv(0, 2)
			m1 := cm.Recv(0, 1)
			order = append(order, m2.Payload.(int), m1.Payload.(int))
		})
		c.Run()
		if len(order) != 2 || order[0] != 200 || order[1] != 100 {
			t.Fatalf("order = %v", order)
		}
	})
}

func TestSourceFiltering(t *testing.T) {
	both(t, 3, func(t *testing.T, c Cluster) {
		var first Rank
		c.Start(0, func(cm Comm) {
			m := cm.Recv(2, AnyTag) // must take rank 2's message
			first = m.From
			cm.Recv(1, AnyTag)
		})
		c.Start(1, func(cm Comm) { cm.Send(0, 0, "from1") })
		c.Start(2, func(cm Comm) { cm.Send(0, 0, "from2") })
		c.Run()
		if first != 2 {
			t.Fatalf("source filter returned message from %d", first)
		}
	})
}

func TestVirtualWorkScalesWithSpeed(t *testing.T) {
	// A rank at speed 2.0 finishes the same work in half the virtual time.
	cfg := VirtualConfig{Speeds: []float64{1, 2}, UnitCost: time.Millisecond}
	c := NewVirtualCluster(cfg)
	var t1, t2 time.Duration
	c.Start(0, func(cm Comm) { cm.Work(100); t1 = cm.Now() })
	c.Start(1, func(cm Comm) { cm.Work(100); t2 = cm.Now() })
	c.Run()
	if t1 != 100*time.Millisecond {
		t.Fatalf("speed-1 rank took %v, want 100ms", t1)
	}
	if t2 != 50*time.Millisecond {
		t.Fatalf("speed-2 rank took %v, want 50ms", t2)
	}
}

func TestVirtualParallelWorkOverlaps(t *testing.T) {
	// Total makespan of two parallel workers is max, not sum.
	cfg := VirtualConfig{Speeds: []float64{1, 1}, UnitCost: time.Millisecond}
	c := NewVirtualCluster(cfg)
	c.Start(0, func(cm Comm) { cm.Work(100) })
	c.Start(1, func(cm Comm) { cm.Work(100) })
	if end := c.Run(); end != 100*time.Millisecond {
		t.Fatalf("makespan %v, want 100ms", end)
	}
}

func TestVirtualNetworkDelay(t *testing.T) {
	net := NetworkModel{Latency: time.Millisecond, Bandwidth: 1000} // 1 KB/s
	cfg := VirtualConfig{Speeds: []float64{1, 1}, UnitCost: time.Microsecond, Network: net}
	c := NewVirtualCluster(cfg)
	var arrival time.Duration
	c.Start(0, func(cm Comm) {
		cm.Send(1, 0, 7) // scalar: 16+8 = 24 bytes -> 24ms transfer
	})
	c.Start(1, func(cm Comm) {
		cm.Recv(0, 0)
		arrival = cm.Now()
	})
	c.Run()
	want := time.Millisecond + 24*time.Millisecond
	if arrival != want {
		t.Fatalf("arrival at %v, want %v", arrival, want)
	}
}

func TestVirtualDeterminism(t *testing.T) {
	run := func() time.Duration {
		cfg := VirtualConfig{Speeds: []float64{1, 1.25, 0.8}, UnitCost: 10 * time.Microsecond}
		c := NewVirtualCluster(cfg)
		c.Start(0, func(cm Comm) {
			for i := 0; i < 5; i++ {
				cm.Send(1, 1, i)
				cm.Send(2, 1, i)
				cm.Recv(AnyRank, 2)
				cm.Recv(AnyRank, 2)
			}
		})
		for r := 1; r <= 2; r++ {
			c.Start(Rank(r), func(cm Comm) {
				for i := 0; i < 5; i++ {
					m := cm.Recv(0, 1)
					cm.Work(int64(100 * (m.Payload.(int) + 1)))
					cm.Send(0, 2, m.Payload)
				}
			})
		}
		return c.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual runs differ: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("virtual run took no time")
	}
}

func TestPayloadSize(t *testing.T) {
	if PayloadSize(nil) <= 0 {
		t.Fatal("nil payload has no size")
	}
	if PayloadSize(3) != 24 {
		t.Fatalf("scalar size = %d, want 24", PayloadSize(3))
	}
	small := PayloadSize([]float64{1})
	big := PayloadSize(make([]float64, 100))
	if big <= small {
		t.Fatal("slice size does not grow")
	}
	pos := morpion.New(morpion.Var5D)
	if PayloadSize(pos) < 1000 {
		t.Fatalf("position payload suspiciously small: %d", PayloadSize(pos))
	}
	if PayloadSize(struct{ x int }{1}) != 80 {
		t.Fatalf("default size = %d, want 80", PayloadSize(struct{ x int }{1}))
	}
}

func TestStartTwicePanics(t *testing.T) {
	c := NewVirtualCluster(VirtualConfig{Speeds: []float64{1}})
	c.Start(0, func(Comm) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	c.Start(0, func(Comm) {})
}

func TestRunWithoutStartPanics(t *testing.T) {
	c := NewVirtualCluster(VirtualConfig{Speeds: []float64{1, 1}})
	c.Start(0, func(Comm) {})
	defer func() {
		if recover() == nil {
			t.Fatal("missing rank did not panic")
		}
	}()
	c.Run()
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []VirtualConfig{
		{},
		{Speeds: []float64{1, 0}},
		{Speeds: []float64{-1}},
	} {
		func() {
			defer func() { recover() }()
			NewVirtualCluster(cfg)
			t.Fatalf("config %+v accepted", cfg)
		}()
	}
}

func TestManyToOneThroughput(t *testing.T) {
	// 16 workers each send 10 messages to a collector; all arrive.
	both(t, 17, func(t *testing.T, c Cluster) {
		count := 0
		c.Start(0, func(cm Comm) {
			for i := 0; i < 160; i++ {
				cm.Recv(AnyRank, AnyTag)
				count++
			}
		})
		for r := 1; r <= 16; r++ {
			c.Start(Rank(r), func(cm Comm) {
				for i := 0; i < 10; i++ {
					cm.Send(0, 5, i)
				}
			})
		}
		c.Run()
		if count != 160 {
			t.Fatalf("collector got %d messages, want 160", count)
		}
	})
}

func TestWallClusterRealTime(t *testing.T) {
	c := NewWallCluster(2)
	c.Start(0, func(cm Comm) {
		time.Sleep(20 * time.Millisecond)
		cm.Send(1, 0, nil)
	})
	var elapsed time.Duration
	c.Start(1, func(cm Comm) {
		cm.Recv(0, 0)
		elapsed = cm.Now()
	})
	total := c.Run()
	if elapsed < 15*time.Millisecond {
		t.Fatalf("wall time %v too small", elapsed)
	}
	if total < elapsed {
		t.Fatalf("total %v < rank elapsed %v", total, elapsed)
	}
}

func TestWallThrottle(t *testing.T) {
	c := NewWallCluster(1)
	c.SetThrottle(time.Millisecond)
	var took time.Duration
	c.Start(0, func(cm Comm) {
		start := time.Now()
		cm.Work(20)
		took = time.Since(start)
	})
	c.Run()
	if took < 15*time.Millisecond {
		t.Fatalf("throttled work took only %v", took)
	}
}
