package mpi

import (
	"testing"
	"time"
)

// fakeComm records sends for PullSource unit tests. The Msg.From field is
// repurposed to hold the destination rank of each recorded send.
type fakeComm struct {
	sends []Msg
}

func (f *fakeComm) Rank() Rank { return 0 }
func (f *fakeComm) Size() int  { return 8 }
func (f *fakeComm) Send(to Rank, tag Tag, payload any) {
	f.sends = append(f.sends, Msg{From: to, Tag: tag, Payload: payload})
}
func (f *fakeComm) Recv(from Rank, tag Tag) Msg { panic("not used") }
func (f *fakeComm) Work(n int64)                {}
func (f *fakeComm) Now() time.Duration          { return 0 }

var _ Comm = (*fakeComm)(nil)

func TestPullSourceMatchesFIFO(t *testing.T) {
	// Items offered before any request queue up; requests then drain them
	// in offer order. Requests arriving first queue as waiting workers and
	// are granted in request order.
	f := &fakeComm{}
	s := NewPullSource(f, Tag(7))

	s.Offer("x")
	s.Offer("y")
	if got := s.Ready(); got != 2 {
		t.Fatalf("ready %d, want 2", got)
	}
	s.Request(3)
	s.Request(4)
	s.Request(5) // no item yet: queues
	if len(f.sends) != 2 {
		t.Fatalf("%d grants sent, want 2", len(f.sends))
	}
	if f.sends[0].Payload != "x" || f.sends[1].Payload != "y" {
		t.Fatalf("grants out of order: %+v", f.sends)
	}
	if got := len(s.Waiting()); got != 1 {
		t.Fatalf("waiting %d, want 1", got)
	}
	s.Offer("z") // granted straight to the waiting worker
	if len(f.sends) != 3 || f.sends[2].From != 5 || f.sends[2].Payload != "z" {
		t.Fatalf("third grant wrong: %+v", f.sends)
	}
	if s.Outstanding() != 3 {
		t.Fatalf("outstanding %d, want 3", s.Outstanding())
	}
	s.Done()
	s.Done()
	s.Done()
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding %d after 3 Done, want 0", s.Outstanding())
	}
}

func TestPullSourceAbandonAndDepth(t *testing.T) {
	f := &fakeComm{}
	s := NewPullSource(f, Tag(7))
	for i := 0; i < 4; i++ {
		s.Offer(i)
	}
	s.Request(2) // grants item 0
	if n := s.Abandon(); n != 3 {
		t.Fatalf("abandoned %d, want 3", n)
	}
	if s.Ready() != 0 {
		t.Fatal("ready items survived Abandon")
	}
	if s.Outstanding() != 1 {
		t.Fatalf("outstanding %d after abandon, want 1 (grants unaffected)", s.Outstanding())
	}
	max, mean := s.DepthStats()
	if max != 4 || mean <= 0 {
		t.Fatalf("depth stats max=%d mean=%v, want max 4 and positive mean", max, mean)
	}
}

func TestPullSourceAbandonFunc(t *testing.T) {
	f := &fakeComm{}
	s := NewPullSource(f, Tag(7))
	for i := 0; i < 6; i++ {
		s.Offer(i)
	}
	// Selective purge: drop the odd items, keep the evens in FIFO order —
	// the cancel-one-speculative-branch shape.
	if n := s.AbandonFunc(func(item any) bool { return item.(int)%2 == 1 }); n != 3 {
		t.Fatalf("abandoned %d, want 3", n)
	}
	if s.Ready() != 3 {
		t.Fatalf("ready %d after selective abandon, want 3", s.Ready())
	}
	for want := 0; want <= 4; want += 2 {
		s.Request(Rank(want + 1))
		if got := f.sends[len(f.sends)-1].Payload; got != want {
			t.Fatalf("grant order broken: got %v, want %v", got, want)
		}
	}
	if s.Outstanding() != 3 {
		t.Fatalf("outstanding %d, want 3", s.Outstanding())
	}
	// Dropping nothing and dropping everything are both legal.
	s.Offer(7)
	if n := s.AbandonFunc(func(any) bool { return false }); n != 0 {
		t.Fatalf("no-op abandon dropped %d", n)
	}
	if n := s.AbandonFunc(func(any) bool { return true }); n != 1 {
		t.Fatalf("drop-all abandon dropped %d, want 1", n)
	}
	if s.Ready() != 0 {
		t.Fatalf("ready %d after drop-all, want 0", s.Ready())
	}
}

func TestPullSourceDoneWithoutGrantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Done without grant did not panic")
		}
	}()
	NewPullSource(&fakeComm{}, Tag(1)).Done()
}

func TestPullSourceGrantedCallback(t *testing.T) {
	f := &fakeComm{}
	s := NewPullSource(f, Tag(9))
	var to []Rank
	s.Granted = func(r Rank) { to = append(to, r) }
	s.Request(6)
	s.Offer("w")
	if len(to) != 1 || to[0] != 6 {
		t.Fatalf("callback ranks %v, want [6]", to)
	}
}
