package mpi

// Fault-path tests of the TCP transport, driven through the faultnet
// proxy: worker loss and rolling replacement, heartbeat detection of a
// blackholed stream, handshake authentication, and the edge paths a
// well-behaved worker never exercises (double goodbye, hellos torn
// mid-frame).

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/mpi/codec"
)

// lossRecorder collects transport hook events.
type lossRecorder struct {
	mu        sync.Mutex
	lost      []Rank // lo of each lost range
	joins     int
	rejoins   int
	abandoned []Rank       // lo of each abandoned range
	events    []string     // interleaved hook order: "lost", "abandoned"
	idle      atomic.Int64 // telemetry samples seen
}

func (lr *lossRecorder) config() (lost func(int, Rank, Rank), joined func(int, Rank, Rank, bool), stats func(int, Rank, []float64)) {
	return func(_ int, lo, _ Rank) {
			lr.mu.Lock()
			lr.lost = append(lr.lost, lo)
			lr.events = append(lr.events, "lost")
			lr.mu.Unlock()
		}, func(_ int, _, _ Rank, rejoin bool) {
			lr.mu.Lock()
			lr.joins++
			if rejoin {
				lr.rejoins++
			}
			lr.mu.Unlock()
		}, func(_ int, _ Rank, idle []float64) {
			lr.idle.Add(int64(len(idle)))
		}
}

func (lr *lossRecorder) snapshot() (lost, joins, rejoins int) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return len(lr.lost), lr.joins, lr.rejoins
}

// abandonHook returns an OnWorkerAbandoned hook that records each
// abandonment in the shared event log, so tests can assert it fires after
// the loss and at most once per loss.
func (lr *lossRecorder) abandonHook() func(int, Rank, Rank) {
	return func(_ int, lo, _ Rank) {
		lr.mu.Lock()
		lr.abandoned = append(lr.abandoned, lo)
		lr.events = append(lr.events, "abandoned")
		lr.mu.Unlock()
	}
}

func (lr *lossRecorder) abandons() int {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return len(lr.abandoned)
}

func (lr *lossRecorder) eventLog() []string {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return append([]string(nil), lr.events...)
}

// waitUntil polls cond for up to 5 seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNetWorkerLossAndRejoin severs a connected worker's stream and
// checks the full replacement cycle: the loss hook fires, frames sent
// while the slot is empty queue instead of dropping, and a replacement
// worker reclaims the same rank range and receives the queued frames.
func TestNetWorkerLossAndRejoin(t *testing.T) {
	const done Tag = 99
	var rec lossRecorder
	lost, joined, stats := rec.config()
	nc, err := ListenNet(NetConfig{
		Listen:         "127.0.0.1:0",
		LocalRanks:     1,
		WorkerRanks:    []int{1},
		OnWorkerLost:   lost,
		OnWorkerJoined: joined,
		OnWorkerStats:  stats,
	})
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan any, 4)
	release := make(chan struct{})
	nc.Start(0, func(c Comm) {
		got <- c.Recv(1, 7).Payload // from the first worker
		<-release
		// Sent after the loss: must queue and flush to the replacement.
		c.Send(1, 8, uint64(4242))
		got <- c.Recv(1, 7).Payload // from the replacement
		c.Send(1, done, nil)
	})
	runDone := make(chan time.Duration, 1)
	go func() { runDone <- nc.Run() }()

	proxy, err := faultnet.NewProxy(nc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// First worker: says hello, then hangs until severed.
	var wg sync.WaitGroup
	w1, err := DialWorker(proxy.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w1.Start(1, func(c Comm) {
		c.Send(0, 7, uint64(1))
		c.Recv(AnyRank, done) // never arrives; stranded by the sever
	})
	wg.Add(1)
	go func() { defer wg.Done(); w1.Run() }()

	if v := <-got; v != uint64(1) {
		t.Fatalf("first worker payload %v", v)
	}
	if l, j, r := rec.snapshot(); l != 0 || j != 1 || r != 0 {
		t.Fatalf("before loss: lost %d joins %d rejoins %d", l, j, r)
	}

	proxy.Sever()
	waitUntil(t, "worker loss", func() bool { l, _, _ := rec.snapshot(); return l == 1 })
	wg.Wait() // the severed worker's Run returns via its reader error
	close(release)

	// Replacement dials the coordinator directly and must reclaim the
	// slot (retry while the loss is still releasing it).
	var w2 *NetWorker
	waitUntil(t, "replacement slot", func() bool {
		w2, err = DialWorker(nc.Addr(), "")
		return err == nil
	})
	w2.Start(1, func(c Comm) {
		// The frame queued while the slot was empty must arrive first
		// (flushed ahead of anything sent later), then announce.
		m := c.Recv(AnyRank, 8)
		c.Send(0, 7, m.Payload)
		c.Recv(AnyRank, done)
	})
	wg.Add(1)
	go func() { defer wg.Done(); w2.Run() }()

	if v := <-got; v != uint64(4242) {
		t.Fatalf("replacement relayed %v, want the queued 4242", v)
	}
	if _, j, r := rec.snapshot(); j != 2 || r != 1 {
		t.Fatalf("after rejoin: joins %d rejoins %d, want 2/1", j, r)
	}
	<-runDone
	wg.Wait()
}

// TestNetHeartbeatDetectsBlackhole blackholes a worker's stream — the
// connection stays open but falls silent — and checks the heartbeat
// timeout declares the worker lost.
func TestNetHeartbeatDetectsBlackhole(t *testing.T) {
	var rec lossRecorder
	lost, joined, stats := rec.config()
	nc, err := ListenNet(NetConfig{
		Listen:           "127.0.0.1:0",
		LocalRanks:       1,
		WorkerRanks:      []int{1},
		Heartbeat:        20 * time.Millisecond,
		HeartbeatTimeout: 100 * time.Millisecond,
		OnWorkerLost:     lost,
		OnWorkerJoined:   joined,
		OnWorkerStats:    stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	nc.Start(0, func(c Comm) { <-stop })

	proxy, err := faultnet.NewProxy(nc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w, err := DialWorker(proxy.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w.SetTelemetry(func() []float64 { return []float64{1.5} })
	w.Start(1, func(c Comm) { c.Recv(AnyRank, AnyTag) })
	go w.Run()

	// Pong telemetry flows while the link is healthy.
	waitUntil(t, "pong telemetry", func() bool { return rec.idle.Load() > 0 })
	if l, _, _ := rec.snapshot(); l != 0 {
		t.Fatal("healthy pinged worker declared lost")
	}

	proxy.Blackhole(true)
	waitUntil(t, "heartbeat loss", func() bool { l, _, _ := rec.snapshot(); return l == 1 })
}

// TestNetHandshakeToken pins handshake authentication: wrong or missing
// tokens are rejected with a permanent error, matching tokens (and
// no-token coordinators) admit the worker.
func TestNetHandshakeToken(t *testing.T) {
	cases := []struct {
		name, coordinator, worker string
		wantErr                   error
	}{
		{"match", "s3cret", "s3cret", nil},
		{"mismatch", "s3cret", "wrong", ErrBadToken},
		{"missing", "s3cret", "", ErrBadToken},
		{"longer", "s3cret", "s3cret-and-more", ErrBadToken},
		{"open coordinator ignores token", "", "anything", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nc, err := ListenNet(NetConfig{
				Listen:      "127.0.0.1:0",
				LocalRanks:  1,
				WorkerRanks: []int{1},
				Token:       tc.coordinator,
			})
			if err != nil {
				t.Fatal(err)
			}
			w, err := DialWorker(nc.Addr(), tc.worker)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				w.Close() //nolint:errcheck // teardown
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("dial error %v, want %v", err, tc.wantErr)
			}
			// The rejected handshake must not leak the slot.
			if w, err := DialWorker(nc.Addr(), tc.coordinator); err != nil {
				t.Fatalf("good dial after rejected one: %v", err)
			} else {
				w.Close() //nolint:errcheck // teardown
			}
		})
	}
}

// TestNetHandshakeTornMidFrame drives hellos severed at every interesting
// byte boundary through the fault proxy and checks the coordinator
// neither claims a slot nor wedges: a clean worker joins right after.
func TestNetHandshakeTornMidFrame(t *testing.T) {
	nc, err := ListenNet(NetConfig{
		Listen:      "127.0.0.1:0",
		LocalRanks:  1,
		WorkerRanks: []int{1},
		Token:       "tk",
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	nc.Start(0, func(c Comm) { <-stop })

	cuts := []struct {
		name  string
		bytes int64
	}{
		{"mid magic", 2},
		{"before version", 4},
		{"before token length", 5},
		{"mid token", 7},
	}
	for _, tc := range cuts {
		t.Run(tc.name, func(t *testing.T) {
			proxy, err := faultnet.NewProxy(nc.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()
			proxy.SeverAfter(tc.bytes)
			if _, err := DialWorker(proxy.Addr(), "tk"); err == nil {
				t.Fatal("torn handshake succeeded")
			}
			// The coordinator abandoned the torn attempt without leaking
			// the slot to it: a clean worker joins (retrying while any
			// previous case's close-triggered loss releases the slot).
			var w *NetWorker
			waitUntil(t, "clean join after torn handshake", func() bool {
				var err error
				w, err = DialWorker(nc.Addr(), "tk")
				return err == nil
			})
			w.Close() //nolint:errcheck // teardown
		})
	}
}

// TestNetDoubleGoodbye sends two goodbye frames on one connection: the
// first releases the slot (a mid-life goodbye is a loss), the second dies
// with the closed connection, and a replacement can still join.
func TestNetDoubleGoodbye(t *testing.T) {
	var rec lossRecorder
	lost, joined, _ := rec.config()
	nc, err := ListenNet(NetConfig{
		Listen:         "127.0.0.1:0",
		LocalRanks:     1,
		WorkerRanks:    []int{1},
		OnWorkerLost:   lost,
		OnWorkerJoined: joined,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	nc.Start(0, func(c Comm) { <-stop })

	w, err := DialWorker(nc.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	bye, err := codec.AppendFrame(nil, codec.Frame{
		From: int32(w.lo), To: ctrlRank, Tag: int32(ctrlBye), Payload: nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	double := append(append([]byte(nil), bye...), bye...)
	if _, err := w.conn.c.Write(double); err != nil {
		t.Fatal(err)
	}

	// Mid-life goodbye = loss; the slot must reopen exactly once.
	waitUntil(t, "goodbye loss", func() bool { l, _, _ := rec.snapshot(); return l == 1 })
	var w2 *NetWorker
	waitUntil(t, "slot reuse", func() bool {
		w2, err = DialWorker(nc.Addr(), "")
		return err == nil
	})
	if l, j, r := rec.snapshot(); l != 1 || j != 2 || r != 1 {
		t.Fatalf("lost %d joins %d rejoins %d, want 1/2/1", l, j, r)
	}
	w2.Close() //nolint:errcheck // teardown
}

// TestNetGoodbyeCarriesTelemetry checks the final idle counters ride the
// goodbye frame of a cleanly draining worker.
func TestNetGoodbyeCarriesTelemetry(t *testing.T) {
	var rec lossRecorder
	_, _, stats := rec.config()
	nc, err := ListenNet(NetConfig{
		Listen:        "127.0.0.1:0",
		LocalRanks:    1,
		WorkerRanks:   []int{2},
		Heartbeat:     -1, // telemetry must arrive via the goodbye alone
		OnWorkerStats: stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	nc.Start(0, func(c Comm) {
		c.Recv(1, 7)
		c.Send(1, 9, nil)
		c.Send(2, 9, nil)
	})
	runDone := make(chan time.Duration, 1)
	go func() { runDone <- nc.Run() }()

	w, err := DialWorker(nc.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w.SetTelemetry(func() []float64 { return []float64{0.25, 0.75} })
	w.Start(1, func(c Comm) {
		c.Send(0, 7, nil)
		c.Recv(AnyRank, 9)
	})
	w.Start(2, func(c Comm) { c.Recv(AnyRank, 9) })
	w.Run()

	<-runDone
	if rec.idle.Load() != 2 {
		t.Fatalf("goodbye telemetry carried %d entries, want 2", rec.idle.Load())
	}
}

// TestNetPendingCapExactFlush pins the pending-cap boundary: a lost slot
// holding exactly PendingLimit queued frames is NOT abandoned (the cap is
// strictly greater-than), and a late replacement receives every queued
// frame, in order, ahead of anything sent afterwards.
func TestNetPendingCapExactFlush(t *testing.T) {
	const done Tag = 99
	const limit = 4
	var rec lossRecorder
	lost, joined, stats := rec.config()
	nc, err := ListenNet(NetConfig{
		Listen:            "127.0.0.1:0",
		LocalRanks:        1,
		WorkerRanks:       []int{1},
		PendingLimit:      limit,
		OnWorkerLost:      lost,
		OnWorkerJoined:    joined,
		OnWorkerStats:     stats,
		OnWorkerAbandoned: rec.abandonHook(),
	})
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan any, limit+1)
	announced := make(chan struct{})
	severed := make(chan struct{})
	queued := make(chan struct{})
	nc.Start(0, func(c Comm) {
		c.Recv(1, 7) // first worker announced
		close(announced)
		<-severed // the loss has been observed: frames below must queue
		for i := 0; i < limit; i++ {
			c.Send(1, 8, uint64(100+i))
		}
		close(queued)
		for i := 0; i < limit; i++ {
			got <- c.Recv(1, 7).Payload // replacement echoes in order
		}
		c.Send(1, done, nil)
	})
	runDone := make(chan time.Duration, 1)
	go func() { runDone <- nc.Run() }()

	proxy, err := faultnet.NewProxy(nc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var wg sync.WaitGroup
	w1, err := DialWorker(proxy.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w1.Start(1, func(c Comm) {
		c.Send(0, 7, uint64(1))
		c.Recv(AnyRank, done) // stranded by the sever
	})
	wg.Add(1)
	go func() { defer wg.Done(); w1.Run() }()

	// Sever only after the coordinator observed the announce frame: the
	// join hook alone fires at handshake time, racing the frame through
	// the proxy.
	<-announced
	proxy.Sever()
	waitUntil(t, "worker loss", func() bool { l, _, _ := rec.snapshot(); return l == 1 })
	wg.Wait()
	close(severed)
	<-queued

	// Exactly at the cap: the slot must still be waiting, not abandoned.
	if rec.abandons() != 0 {
		t.Fatalf("slot abandoned with exactly PendingLimit frames queued")
	}

	var w2 *NetWorker
	waitUntil(t, "replacement slot", func() bool {
		w2, err = DialWorker(nc.Addr(), "")
		return err == nil
	})
	w2.Start(1, func(c Comm) {
		for i := 0; i < limit; i++ {
			m := c.Recv(AnyRank, 8)
			c.Send(0, 7, m.Payload)
		}
		c.Recv(AnyRank, done)
	})
	wg.Add(1)
	go func() { defer wg.Done(); w2.Run() }()

	for i := 0; i < limit; i++ {
		if v := <-got; v != uint64(100+i) {
			t.Fatalf("flushed frame %d carried %v, want %d", i, v, 100+i)
		}
	}
	if rec.abandons() != 0 {
		t.Fatal("abandonment fired despite a successful flush")
	}
	if _, j, r := rec.snapshot(); j != 2 || r != 1 {
		t.Fatalf("joins %d rejoins %d, want 2/1", j, r)
	}
	<-runDone
	wg.Wait()
}

// TestNetPendingCapOverflowAbandons overflows a lost slot's pending queue
// by one frame past PendingLimit and checks the slot is abandoned: the
// hook fires after the loss hook (never before), the event is recorded
// exactly once, and later frames are discarded without re-firing it.
func TestNetPendingCapOverflowAbandons(t *testing.T) {
	const limit = 2
	var rec lossRecorder
	lost, joined, stats := rec.config()
	nc, err := ListenNet(NetConfig{
		Listen:            "127.0.0.1:0",
		LocalRanks:        1,
		WorkerRanks:       []int{1},
		PendingLimit:      limit,
		OnWorkerLost:      lost,
		OnWorkerJoined:    joined,
		OnWorkerStats:     stats,
		OnWorkerAbandoned: rec.abandonHook(),
	})
	if err != nil {
		t.Fatal(err)
	}

	announced := make(chan struct{})
	severed := make(chan struct{})
	abandonedCh := make(chan struct{})
	sentAfter := make(chan struct{})
	nc.Start(0, func(c Comm) {
		c.Recv(1, 7)
		close(announced)
		<-severed
		for i := 0; i <= limit; i++ { // one past the cap: the last send trips it
			c.Send(1, 8, uint64(i))
		}
		<-abandonedCh
		c.Send(1, 8, uint64(99)) // discarded; must not re-fire the hook
		close(sentAfter)
	})
	runDone := make(chan time.Duration, 1)
	go func() { runDone <- nc.Run() }()

	proxy, err := faultnet.NewProxy(nc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var wg sync.WaitGroup
	w, err := DialWorker(proxy.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w.Start(1, func(c Comm) {
		c.Send(0, 7, uint64(1))
		c.Recv(AnyRank, AnyTag) // stranded by the sever
	})
	wg.Add(1)
	go func() { defer wg.Done(); w.Run() }()

	<-announced
	proxy.Sever()
	waitUntil(t, "worker loss", func() bool { l, _, _ := rec.snapshot(); return l == 1 })
	wg.Wait()
	close(severed)

	waitUntil(t, "abandonment", func() bool { return rec.abandons() == 1 })
	close(abandonedCh)
	<-sentAfter
	time.Sleep(50 * time.Millisecond) // would catch a duplicate firing
	if n := rec.abandons(); n != 1 {
		t.Fatalf("abandonment fired %d times, want exactly once", n)
	}
	if ev := rec.eventLog(); len(ev) != 2 || ev[0] != "lost" || ev[1] != "abandoned" {
		t.Fatalf("event order %v, want [lost abandoned]", ev)
	}
	<-runDone
}

// TestNetReplaceGraceAbandons arms the grace timer with no pending cap:
// the lost slot is abandoned once ReplaceGrace expires, frames sent to the
// abandoned range are dropped, and a worker dialing in later still revives
// the slot (rejoin join, frames flowing again).
func TestNetReplaceGraceAbandons(t *testing.T) {
	const done Tag = 99
	var rec lossRecorder
	lost, joined, stats := rec.config()
	nc, err := ListenNet(NetConfig{
		Listen:            "127.0.0.1:0",
		LocalRanks:        1,
		WorkerRanks:       []int{1},
		ReplaceGrace:      50 * time.Millisecond,
		OnWorkerLost:      lost,
		OnWorkerJoined:    joined,
		OnWorkerStats:     stats,
		OnWorkerAbandoned: rec.abandonHook(),
	})
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan any, 2)
	announced := make(chan struct{})
	abandonedCh := make(chan struct{})
	revivedCh := make(chan struct{})
	nc.Start(0, func(c Comm) {
		c.Recv(1, 7)
		close(announced)
		<-abandonedCh
		c.Send(1, 8, uint64(1)) // dropped: the slot is abandoned
		<-revivedCh
		c.Send(1, 8, uint64(2)) // flows to the revived worker
		got <- c.Recv(1, 7).Payload
		c.Send(1, done, nil)
	})
	runDone := make(chan time.Duration, 1)
	go func() { runDone <- nc.Run() }()

	proxy, err := faultnet.NewProxy(nc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var wg sync.WaitGroup
	w1, err := DialWorker(proxy.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w1.Start(1, func(c Comm) {
		c.Send(0, 7, uint64(1))
		c.Recv(AnyRank, done) // stranded by the sever
	})
	wg.Add(1)
	go func() { defer wg.Done(); w1.Run() }()

	<-announced
	proxy.Sever()
	waitUntil(t, "grace abandonment", func() bool { return rec.abandons() == 1 })
	wg.Wait()
	close(abandonedCh)

	// Revival: an abandoned slot stays claimable.
	var w2 *NetWorker
	waitUntil(t, "revival slot", func() bool {
		w2, err = DialWorker(nc.Addr(), "")
		return err == nil
	})
	w2.Start(1, func(c Comm) {
		m := c.Recv(AnyRank, 8)
		c.Send(0, 7, m.Payload)
		c.Recv(AnyRank, done)
	})
	wg.Add(1)
	go func() { defer wg.Done(); w2.Run() }()
	waitUntil(t, "rejoin", func() bool { _, _, r := rec.snapshot(); return r == 1 })
	close(revivedCh)

	// The frame sent while abandoned never arrives; the post-revival one does.
	if v := <-got; v != uint64(2) {
		t.Fatalf("revived worker relayed %v, want 2 (frame 1 was sent while abandoned)", v)
	}
	<-runDone
	wg.Wait()
	if n := rec.abandons(); n != 1 {
		t.Fatalf("abandonment fired %d times, want once", n)
	}
}

// TestNetDoubleAbandonIdempotent triggers both abandonment paths for one
// loss — pending-cap overflow first, then the still-armed grace timer —
// and checks the hook fires exactly once: the stale grace trigger
// validates against the abandoned flag and backs off.
func TestNetDoubleAbandonIdempotent(t *testing.T) {
	const limit = 1
	const grace = 40 * time.Millisecond
	var rec lossRecorder
	lost, joined, stats := rec.config()
	nc, err := ListenNet(NetConfig{
		Listen:            "127.0.0.1:0",
		LocalRanks:        1,
		WorkerRanks:       []int{1},
		PendingLimit:      limit,
		ReplaceGrace:      grace,
		OnWorkerLost:      lost,
		OnWorkerJoined:    joined,
		OnWorkerStats:     stats,
		OnWorkerAbandoned: rec.abandonHook(),
	})
	if err != nil {
		t.Fatal(err)
	}

	announced := make(chan struct{})
	severed := make(chan struct{})
	nc.Start(0, func(c Comm) {
		c.Recv(1, 7)
		close(announced)
		<-severed
		c.Send(1, 8, uint64(0))
		c.Send(1, 8, uint64(1)) // overflows the cap before the grace expires
	})
	runDone := make(chan time.Duration, 1)
	go func() { runDone <- nc.Run() }()

	proxy, err := faultnet.NewProxy(nc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var wg sync.WaitGroup
	w, err := DialWorker(proxy.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w.Start(1, func(c Comm) {
		c.Send(0, 7, uint64(1))
		c.Recv(AnyRank, AnyTag) // stranded by the sever
	})
	wg.Add(1)
	go func() { defer wg.Done(); w.Run() }()

	<-announced
	proxy.Sever()
	waitUntil(t, "worker loss", func() bool { l, _, _ := rec.snapshot(); return l == 1 })
	wg.Wait()
	close(severed)

	waitUntil(t, "overflow abandonment", func() bool { return rec.abandons() == 1 })
	// Outlive the grace timer by a wide margin: its trigger must be a no-op.
	time.Sleep(3 * grace)
	if n := rec.abandons(); n != 1 {
		t.Fatalf("abandonment fired %d times after both triggers, want once", n)
	}
	<-runDone
}

// TestNetWorkerSilenceTimeout pins the worker-side liveness monitor: while
// coordinator pings flow the worker survives well past its silence budget,
// and once the coordinator→worker direction is blackholed the monitor
// severs the connection, Run returns, and Lost reports true.
func TestNetWorkerSilenceTimeout(t *testing.T) {
	nc, err := ListenNet(NetConfig{
		Listen:      "127.0.0.1:0",
		LocalRanks:  1,
		WorkerRanks: []int{1},
		Heartbeat:   20 * time.Millisecond,
		// Keep the coordinator's own monitor out of the picture: the
		// worker's silence budget must be what trips first.
		HeartbeatTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	nc.Start(0, func(c Comm) { <-stop })

	proxy, err := faultnet.NewProxy(nc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	w, err := DialWorker(proxy.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w.SetSilenceTimeout(100 * time.Millisecond)
	w.Start(1, func(c Comm) { c.Recv(AnyRank, AnyTag) })
	runDone := make(chan struct{})
	go func() { w.Run(); close(runDone) }()

	// Pings keep the stream warm: the monitor must not trip.
	select {
	case <-runDone:
		t.Fatal("silence monitor tripped while heartbeats were flowing")
	case <-time.After(300 * time.Millisecond):
	}

	// Silence the coordinator→worker direction only; the worker's writes
	// still go through, so only the silence monitor can end the run.
	proxy.BlackholeDir(faultnet.Down, true)
	select {
	case <-runDone:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never detected the silent coordinator")
	}
	if !w.Lost() {
		t.Fatal("Lost() false after a silence-timeout disconnect")
	}
}
