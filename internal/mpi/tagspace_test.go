package mpi

import "testing"

func TestTagSpaceRoundTrip(t *testing.T) {
	ts := TagSpace{Base: 100, Width: 4, Bands: 8}
	seen := map[Tag]bool{}
	for job := 0; job < ts.Bands; job++ {
		for off := Tag(0); off < ts.Width; off++ {
			tag := ts.For(job, off)
			if seen[tag] {
				t.Fatalf("tag %d assigned twice", tag)
			}
			seen[tag] = true
			j, o, ok := ts.Split(tag)
			if !ok || j != job || o != off {
				t.Fatalf("Split(For(%d,%d)) = (%d,%d,%v)", job, off, j, o, ok)
			}
		}
	}
}

func TestTagSpaceRejectsOutside(t *testing.T) {
	ts := TagSpace{Base: 100, Width: 4, Bands: 8}
	for _, tag := range []Tag{0, 99, 100 + 4*8, 500, AnyTag} {
		if _, _, ok := ts.Split(tag); ok {
			t.Fatalf("Split accepted out-of-space tag %d", tag)
		}
	}
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		f()
	}
	mustPanic(func() { ts.For(8, 0) })
	mustPanic(func() { ts.For(-1, 0) })
	mustPanic(func() { ts.For(0, 4) })
}

func TestWallInjectDeliversAsExternal(t *testing.T) {
	c := NewWallCluster(2)
	got := make(chan Msg, 1)
	c.Start(0, func(comm Comm) {
		got <- comm.Recv(External, Tag(7))
	})
	c.Start(1, func(Comm) {})
	// Inject before Run: the message must be queued and delivered once the
	// rank body starts receiving.
	c.Inject(0, Tag(7), "hello")
	c.Run()
	msg := <-got
	if msg.From != External || msg.Tag != Tag(7) || msg.Payload.(string) != "hello" {
		t.Fatalf("unexpected injected message: %+v", msg)
	}
}
