// Package mpi provides the message-passing substrate the parallel search is
// written against, standing in for the Open MPI layer of the paper.
//
// The paper's processes communicate with MPI point-to-point operations over
// MPI_COMM_WORLD on a Gigabit cluster. Here the same primitives — blocking
// Send/Recv with tags, wildcard receive, a world of numbered ranks — are an
// interface with three implementations:
//
//   - VirtualCluster: processes run under internal/vtime's deterministic
//     discrete-event scheduler. CPU work is charged in metered work units
//     scaled by per-rank speed (modelling the paper's heterogeneous
//     1.86/2.33 GHz nodes) and messages cost latency + size/bandwidth
//     (modelling the Gigabit interconnect). This transport regenerates the
//     paper's timing tables on any simulated cluster size.
//
//   - WallCluster: processes are plain goroutines communicating through
//     mutex-guarded mailboxes in real time, for native runs on real cores.
//
//   - NetCluster / NetWorker: processes span OS processes over TCP — a
//     coordinator hosting the control ranks plus dialed-in worker
//     processes each hosting a rank range — with every message encoded as
//     a typed, versioned, length-prefixed frame (internal/mpi/codec). The
//     closest analogue of the paper's actual deployment; see net.go.
//
// The parallel algorithms in internal/parallel are written once against
// Comm and run unchanged on any transport.
package mpi

import (
	"time"

	"repro/internal/game"
)

// Rank identifies a process, 0-based, like an MPI rank.
type Rank int

// AnyRank is the wildcard source for Recv, like MPI_ANY_SOURCE.
const AnyRank Rank = -1

// External is the From rank of messages injected into a cluster from
// outside the rank world (WallCluster.Inject). A long-lived service feeds
// job submissions and cancellations to its ranks this way; no real rank
// ever has this value.
const External Rank = -2

// Tag labels a message kind, like an MPI tag.
type Tag int

// AnyTag is the wildcard tag for Recv, like MPI_ANY_TAG.
const AnyTag Tag = -1

// Msg is a received message.
type Msg struct {
	From    Rank
	Tag     Tag
	Payload any
}

// Comm is one process's endpoint into the world, handed to the process
// body at start. Methods must only be called from that process.
type Comm interface {
	// Rank returns this process's rank.
	Rank() Rank
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers payload to rank `to` with the given tag. It does not
	// block on the receiver (buffered, like MPI_Isend + eager protocol;
	// the paper's messages are small positions and scores).
	Send(to Rank, tag Tag, payload any)
	// Recv blocks until a message matching (from, tag) is available and
	// returns the earliest such message. AnyRank and AnyTag are wildcards.
	Recv(from Rank, tag Tag) Msg
	// Work charges n work units of CPU time to this process. On the
	// virtual transport this advances the process's clock by
	// n × unit-cost ÷ rank-speed; on the wall transport the work already
	// consumed real CPU and this is a no-op (unless throttled).
	Work(n int64)
	// Now returns the transport's notion of elapsed time.
	Now() time.Duration
}

// Cluster builds a world of processes and runs them to completion.
type Cluster interface {
	// Size returns the world size.
	Size() int
	// Start registers the body of a rank. Every rank must be started
	// exactly once before Run.
	Start(rank Rank, body func(Comm))
	// Run executes all processes until each body returns, and reports the
	// elapsed (virtual or wall) time.
	Run() time.Duration
}

// matches reports whether a message satisfies a (from, tag) pattern.
func (m Msg) matches(from Rank, tag Tag) bool {
	return (from == AnyRank || m.From == from) && (tag == AnyTag || m.Tag == tag)
}

// PayloadSize estimates the wire size of a payload in bytes for the
// virtual network model. Positions report their own encoded size via
// game.Sizer; scalar control messages cost a small constant; unknown
// payloads a conservative default.
func PayloadSize(v any) int {
	const header = 16 // envelope: from, tag, length
	switch x := v.(type) {
	case nil:
		return header
	case game.Sizer:
		return header + x.EncodedSize()
	case int, int32, int64, uint64, float64, Rank, Tag, bool:
		return header + 8
	case []float64:
		return header + 8*len(x)
	case []game.Move:
		return header + 8*len(x)
	case string:
		return header + len(x)
	default:
		return header + 64
	}
}
