package game

// Pluggable rollout evaluation: the hook that turns the paper's uniform
// random playouts into guided ones. A level-0 playout asks its Evaluator
// for one non-negative weight per legal move and samples the next move
// proportionally to the weights, instead of uniformly — the on-line
// policy-improvement shape (Tesauro & Galperin) every modern descendant
// of nested search batches into vectorized policy calls.
//
// Determinism contract: an Evaluator must be a pure function of the
// request — its weights may depend on the position and its legal moves,
// and on nothing else (no internal state that changes across calls, no
// randomness, no wall clock). Purity is what makes the batched execution
// path equivalent to the direct one: a per-worker batcher may collect
// requests from many concurrent rollouts and submit them as one batch,
// in any grouping and order, and because each reply depends only on its
// own request, every rollout still sees the exact weights a solo run
// would have computed. The nil-Evaluator path (uniform sampling) is the
// bit-identical reproduction of the paper and never changes.

import (
	"fmt"
	"sort"
	"sync"
)

// EvalRequest is one rollout position submitted for evaluation: the
// position and its current legal moves, in LegalMoves order. The
// evaluator must not mutate State and must not retain State or Moves
// beyond the call — both alias live search buffers of the submitting
// rollout.
type EvalRequest struct {
	State State
	Moves []Move
}

// Evaluator scores the legal moves of a rollout position. Evaluate
// appends one non-negative finite weight per request move to w (in
// request order) and returns the extended slice; the search samples the
// next playout move proportionally to the weights. A zero total falls
// back to uniform sampling, so "no opinion" is always expressible.
//
// Evaluate must be safe for concurrent use and pure (see the package
// comment): identical requests yield identical weights, regardless of
// what else is being evaluated.
type Evaluator interface {
	Evaluate(req EvalRequest, w []float64) []float64
}

// BatchEvaluator is optionally implemented by evaluators that amortize
// fixed per-call cost over many positions — the shape a vectorized NN
// policy wants. EvaluateBatch fills out[i] with the weights of reqs[i],
// appending to the (possibly nil) slice already there and storing the
// result back; it is equivalent to calling Evaluate once per request.
// The per-worker batcher prefers this path when present.
type BatchEvaluator interface {
	Evaluator
	EvaluateBatch(reqs []EvalRequest, out [][]float64)
}

// MoveRater is optionally implemented by domain states that can rate
// their own legal moves with a cheap heuristic. RateMoves appends one
// non-negative weight per move to w and returns the extended slice; like
// Evaluator it must be pure and must not mutate the state. The bundled
// "heuristic" evaluator delegates to it.
type MoveRater interface {
	RateMoves(moves []Move, w []float64) []float64
}

// HeuristicEvaluator evaluates with the domain's own MoveRater: central
// moves for Morpion, large groups for SameGame, common digits for
// Sudoku. Positions of domains without a MoveRater get uniform weights
// (the playout stays uniform there). It implements BatchEvaluator so the
// batched and direct paths share one code path.
type HeuristicEvaluator struct{}

// Evaluate implements Evaluator.
func (HeuristicEvaluator) Evaluate(req EvalRequest, w []float64) []float64 {
	if r, ok := req.State.(MoveRater); ok {
		return r.RateMoves(req.Moves, w)
	}
	for range req.Moves {
		w = append(w, 1)
	}
	return w
}

// EvaluateBatch implements BatchEvaluator.
func (e HeuristicEvaluator) EvaluateBatch(reqs []EvalRequest, out [][]float64) {
	for i, req := range reqs {
		out[i] = e.Evaluate(req, out[i])
	}
}

// Evaluator registry. Evaluators cross process boundaries by name: a job
// on a distributed pool carries only the registered name in its wire
// parameters, and the executing worker resolves the same name against
// its own registry — function values cannot ride the wire. Registration
// happens in package init functions (like the codec's kind registry), so
// lookups after init are lock-free in practice; the mutex makes the
// registry safe for tests that register fixtures at runtime.
var (
	evalMu  sync.RWMutex
	evalReg = map[string]func() Evaluator{}
)

// HeuristicEvaluatorName is the registered name of HeuristicEvaluator.
const HeuristicEvaluatorName = "heuristic"

func init() {
	RegisterEvaluator(HeuristicEvaluatorName, func() Evaluator { return HeuristicEvaluator{} })
}

// RegisterEvaluator binds a name to an evaluator constructor. It panics
// on an empty name or a duplicate: registration is package wiring, and a
// silently replaced evaluator would let two processes resolve the same
// job name to different policies.
func RegisterEvaluator(name string, mk func() Evaluator) {
	if name == "" || mk == nil {
		panic("game: RegisterEvaluator needs a name and a constructor")
	}
	evalMu.Lock()
	defer evalMu.Unlock()
	if _, dup := evalReg[name]; dup {
		panic(fmt.Sprintf("game: evaluator %q registered twice", name))
	}
	evalReg[name] = mk
}

// NewEvaluator resolves a registered evaluator name.
func NewEvaluator(name string) (Evaluator, error) {
	evalMu.RLock()
	mk, ok := evalReg[name]
	evalMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("game: unknown evaluator %q (registered: %v)", name, EvaluatorNames())
	}
	return mk(), nil
}

// HasEvaluator reports whether name is registered.
func HasEvaluator(name string) bool {
	evalMu.RLock()
	defer evalMu.RUnlock()
	_, ok := evalReg[name]
	return ok
}

// EvaluatorNames returns the registered names, sorted.
func EvaluatorNames() []string {
	evalMu.RLock()
	out := make([]string, 0, len(evalReg))
	for n := range evalReg {
		out = append(out, n)
	}
	evalMu.RUnlock()
	sort.Strings(out)
	return out
}
