package game

import (
	"testing"
	"testing/quick"
)

func TestArmTreeBasics(t *testing.T) {
	tr := NewArmTree(3, 2, 5)
	if tr.Terminal() {
		t.Fatal("root is terminal")
	}
	if tr.Score() != 0 {
		t.Fatal("interior node has nonzero score")
	}
	moves := tr.LegalMoves(nil)
	if len(moves) != 3 {
		t.Fatalf("%d moves at root, want 3", len(moves))
	}
	tr.Play(moves[0])
	if tr.MovesPlayed() != 1 {
		t.Fatalf("MovesPlayed = %d", tr.MovesPlayed())
	}
	tr.Play(tr.LegalMoves(nil)[1])
	if !tr.Terminal() {
		t.Fatal("depth-2 path not terminal")
	}
	if len(tr.LegalMoves(nil)) != 0 {
		t.Fatal("terminal node offers moves")
	}
	if s := tr.Score(); s < 0 || s >= 1 {
		t.Fatalf("leaf value %v outside [0,1)", s)
	}
}

func TestArmTreeDeterministicValues(t *testing.T) {
	// Same parameters, same leaf values — across instances.
	a := NewArmTree(2, 3, 9)
	b := NewArmTree(2, 3, 9)
	for _, path := range [][]Move{{0, 0, 0}, {1, 0, 1}, {1, 1, 1}} {
		ca, cb := a.Clone().(*ArmTree), b.Clone().(*ArmTree)
		for _, m := range path {
			ca.Play(m)
			cb.Play(m)
		}
		if ca.Score() != cb.Score() {
			t.Fatalf("path %v: values differ", path)
		}
	}
}

func TestArmTreeSeedsDiffer(t *testing.T) {
	a := NewArmTree(2, 1, 1)
	b := NewArmTree(2, 1, 2)
	a.Play(0)
	b.Play(0)
	if a.Score() == b.Score() {
		t.Fatal("different seeds gave identical leaf values")
	}
}

func TestArmTreeOptimumIsMax(t *testing.T) {
	// Property: Optimum is an upper bound on, and attained by, some leaf.
	f := func(seed uint64) bool {
		tr := NewArmTree(3, 2, seed)
		opt := tr.Optimum()
		attained := false
		for a := Move(0); a < 3; a++ {
			for b := Move(0); b < 3; b++ {
				c := tr.Clone().(*ArmTree)
				c.Play(a)
				c.Play(b)
				if c.Score() > opt {
					return false
				}
				if c.Score() == opt {
					attained = true
				}
			}
		}
		return attained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestArmTreeCloneIndependence(t *testing.T) {
	tr := NewArmTree(2, 2, 3)
	c := tr.Clone().(*ArmTree)
	c.Play(1)
	if tr.MovesPlayed() != 0 {
		t.Fatal("clone mutation leaked")
	}
}

func TestArmTreePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad params":     func() { NewArmTree(0, 1, 1) },
		"play past leaf": func() { tr := NewArmTree(1, 1, 1); tr.Play(0); tr.Play(0) },
		"unknown arm":    func() { NewArmTree(2, 1, 1).Play(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLegalMovesAppendsToBuffer(t *testing.T) {
	// The interface contract: LegalMoves appends, preserving prefix.
	tr := NewArmTree(2, 1, 1)
	buf := []Move{99}
	buf = tr.LegalMoves(buf)
	if len(buf) != 3 || buf[0] != 99 {
		t.Fatalf("buffer contract violated: %v", buf)
	}
}

func TestNoMoveSentinel(t *testing.T) {
	if NoMove == Move(0) {
		t.Fatal("NoMove collides with a real move encoding")
	}
}
