package game

// Wire encoding of ArmTree positions, so the synthetic test domain can
// cross process boundaries exactly like the real domains (the distributed
// tests reuse it for fast cross-transport equivalence checks).
//
//	uvarint arms | uvarint depth | u64 seed | uvarint len(path) | uvarint per move
//
// A position is a pure function of (arms, depth, seed, path), so the
// encoding is exact by construction.

import (
	"encoding/binary"
	"fmt"
)

// AppendWire appends the position's wire encoding to buf.
func (t *ArmTree) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(t.arms))
	buf = binary.AppendUvarint(buf, uint64(t.depth))
	buf = binary.LittleEndian.AppendUint64(buf, t.seed)
	buf = binary.AppendUvarint(buf, uint64(len(t.path)))
	for _, m := range t.path {
		buf = binary.AppendUvarint(buf, uint64(m))
	}
	return buf
}

// DecodeArmTreeWire reconstructs a position encoded by AppendWire,
// consuming all of data. Malformed bytes return an error, never panic.
func DecodeArmTreeWire(data []byte) (*ArmTree, error) {
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("game: armtree wire: truncated uvarint")
		}
		data = data[n:]
		return v, nil
	}
	arms, err := next()
	if err != nil {
		return nil, err
	}
	depth, err := next()
	if err != nil {
		return nil, err
	}
	if arms < 1 || arms > 1<<16 || depth < 1 || depth > 1<<16 {
		return nil, fmt.Errorf("game: armtree wire: %d arms x depth %d out of range", arms, depth)
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("game: armtree wire: truncated seed")
	}
	seed := binary.LittleEndian.Uint64(data)
	data = data[8:]
	n, err := next()
	if err != nil {
		return nil, err
	}
	if n > depth {
		return nil, fmt.Errorf("game: armtree wire: path of %d moves in a depth-%d tree", n, depth)
	}
	t := NewArmTree(int(arms), int(depth), seed)
	for i := uint64(0); i < n; i++ {
		m, err := next()
		if err != nil {
			return nil, err
		}
		if m >= arms {
			return nil, fmt.Errorf("game: armtree wire: arm %d of %d", m, arms)
		}
		t.path = append(t.path, Move(m))
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("game: armtree wire: %d trailing bytes", len(data))
	}
	return t, nil
}
