package game

// ArmTree is a tiny synthetic domain used by tests and examples: a complete
// k-ary decision tree of fixed depth whose leaves carry deterministic
// pseudo-random values in [0, 1). The score of a position is the value of
// the leaf reached (0 before the game ends).
//
// Its purpose is exactness: a level-d nested search solves a depth-d
// ArmTree optimally, because the level-1 argmax is exact on depth-1
// subtrees and the property lifts inductively. That gives the test suite a
// domain where "NMCS level ℓ must return the global optimum" is a hard
// assertion rather than a statistical tendency.
type ArmTree struct {
	arms  int
	depth int
	seed  uint64
	path  []Move
}

// NewArmTree returns the root of a depth×arms tree. Leaf values are a pure
// function of (seed, path), so two trees with the same parameters are
// identical.
func NewArmTree(arms, depth int, seed uint64) *ArmTree {
	if arms < 1 || depth < 1 {
		panic("game: ArmTree needs at least one arm and depth one")
	}
	return &ArmTree{arms: arms, depth: depth, seed: seed}
}

// LegalMoves implements State: arms 0..k-1 while the tree has depth left.
func (t *ArmTree) LegalMoves(buf []Move) []Move {
	if len(t.path) >= t.depth {
		return buf
	}
	for a := 0; a < t.arms; a++ {
		buf = append(buf, Move(a))
	}
	return buf
}

// Play implements State.
func (t *ArmTree) Play(m Move) {
	if len(t.path) >= t.depth {
		panic("game: ArmTree.Play past a leaf")
	}
	if int(m) >= t.arms {
		panic("game: ArmTree.Play with unknown arm")
	}
	t.path = append(t.path, m)
}

// Terminal implements State.
func (t *ArmTree) Terminal() bool { return len(t.path) >= t.depth }

// Score implements State: the leaf value, or 0 on interior nodes.
func (t *ArmTree) Score() float64 {
	if !t.Terminal() {
		return 0
	}
	return t.leafValue(t.path)
}

// leafValue hashes (seed, path) to [0, 1) with FNV-1a, so values are stable
// across processes and platforms (important for reproducible experiments).
func (t *ArmTree) leafValue(path []Move) float64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mixIn := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mixIn(t.seed)
	for _, m := range path {
		mixIn(uint64(m) + 1)
	}
	// One final avalanche so low-entropy paths spread over the range.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / (1 << 53)
}

// Clone implements State.
func (t *ArmTree) Clone() State {
	return &ArmTree{
		arms:  t.arms,
		depth: t.depth,
		seed:  t.seed,
		path:  append([]Move(nil), t.path...),
	}
}

// MovesPlayed implements State.
func (t *ArmTree) MovesPlayed() int { return len(t.path) }

// Optimum brute-forces the best leaf value of the whole tree. Exponential;
// only meant for the small trees used in tests.
func (t *ArmTree) Optimum() float64 {
	best := 0.0
	path := make([]Move, 0, t.depth)
	var walk func(d int)
	walk = func(d int) {
		if d == t.depth {
			if v := t.leafValue(path); v > best {
				best = v
			}
			return
		}
		for a := 0; a < t.arms; a++ {
			path = append(path, Move(a))
			walk(d + 1)
			path = path[:len(path)-1]
		}
	}
	walk(0)
	return best
}

var _ State = (*ArmTree)(nil)
