// Package game defines the domain abstraction consumed by nested
// Monte-Carlo search.
//
// A search domain is a single-agent, finite, perfect-information game whose
// goal is to maximize the score of the terminal position reached: Morpion
// Solitaire maximizes the number of moves played, SameGame a block-removal
// score, Sudoku the number of cells filled. The search code in
// internal/core and internal/parallel only ever touches this interface, so
// new domains plug in without modifying the search.
package game

// Move is a compact, domain-encoded move. Each domain documents its own
// encoding; the search treats moves as opaque tokens. A fixed-size integer
// keeps move lists allocation-friendly and makes moves trivially
// serializable for the message-passing layer.
type Move uint64

// NoMove is a sentinel returned where no legal move exists.
const NoMove Move = ^Move(0)

// State is a mutable game position.
//
// Implementations are NOT safe for concurrent use; the parallel search
// clones states before shipping them across process boundaries, mirroring
// the distributed-memory model of the paper's MPI implementation.
type State interface {
	// LegalMoves appends the currently legal moves to buf and returns the
	// extended slice. Passing a reused buffer avoids per-step allocation in
	// the playout inner loop.
	LegalMoves(buf []Move) []Move

	// Play applies a legal move. Behaviour on illegal moves is undefined
	// (domains may panic); the search only plays moves obtained from
	// LegalMoves on the same position.
	Play(m Move)

	// Terminal reports whether no legal move remains.
	Terminal() bool

	// Score returns the value of the position under the domain's objective.
	// It is meaningful on any position but the search only compares scores
	// of terminal positions reached by playouts.
	Score() float64

	// Clone returns a deep copy sharing no mutable structure.
	//
	// Clone-with-undo contract: a clone does NOT inherit the undo history
	// of its source. The clone point becomes the clone's undo floor — on a
	// domain implementing Undoer, Undo rewinds a clone at most back to the
	// position it was cloned from, and rewinding past that floor panics.
	// Dropping the history keeps Clone cheap (history arenas can be large
	// after a long game) and is what the search relies on: cloned
	// positions are searched forward with Play/Undo from the clone point.
	Clone() State

	// MovesPlayed returns the number of moves played from the domain's
	// initial position. The Last-Minute dispatcher uses it as the expected
	// remaining-work heuristic (paper §IV-B: fewer moves played means a
	// longer expected job). The search core also uses it as the depth
	// marker for rewinding Undoer domains.
	MovesPlayed() int
}

// Undoer is optionally implemented by domains whose Play can be reverted.
//
// The search core capability-checks for Undoer once at search start: when
// the root position implements it, the argmax loop of nested search
// traverses with Play followed by Undo on a single mutable state instead of
// cloning the position for every candidate move, which removes all
// per-candidate allocations from the hot path. Domains that cannot undo
// simply do not implement the interface and take the clone-per-candidate
// fallback.
//
// Undo must restore the complete observable state — score, move count,
// terminal status and the exact order of the LegalMoves list — to what it
// was before the corresponding Play, so that an undo traversal is
// bit-identical to a clone traversal under the same random stream. Undo
// panics when no move is available to revert (initial position, or the
// clone floor — see the Clone contract).
type Undoer interface {
	State
	Undo()
}

// Hasher is optionally implemented by domains that maintain an incremental
// Zobrist-style hash of the position content, updated in O(changed
// features) by every Play and Undo so that reading it is O(1) on the
// search hot path. The transposition cache (internal/cache, consulted by
// core.Searcher when Options.Cache is set) keys sub-search results by this
// hash.
//
// Contract:
//
//   - Hash is a pure function of the position CONTENT — the board features
//     that determine all future legal moves and score deltas — plus the
//     domain's fixed parameters (variant, board size). Two states reached
//     by different move orders that present the same content hash equal.
//   - Hash does NOT cover path-dependent observables such as the
//     accumulated score or move count (SameGame's score, Sudoku's
//     filled-vs-given split differ across transpositions of equal
//     content). Consumers must therefore cache score DELTAS relative to
//     the hashed position, never absolute scores.
//   - Clone and CopyFrom preserve the hash; decoding a wire position
//     recomputes it. Equal hashes on unequal content are possible with
//     probability ~2⁻⁶⁴ per comparison (Zobrist collision); consumers that
//     cannot tolerate that run the cache's verify mode.
type Hasher interface {
	State
	Hash() uint64
}

// Copier is optionally implemented by domains that can overwrite an
// existing state allocation with the contents of another state of the same
// domain. CopyFrom(src) makes the receiver an independent deep copy of src
// (equivalent to src.Clone() but reusing the receiver's buffers) with an
// empty undo history, exactly like a fresh clone.
//
// The search and parallel layers keep free lists of scratch states and use
// CopyFrom to recycle them where clones are still required (shipping
// positions to workers), making those clones allocation-free after warmup.
// src must have the same concrete type as the receiver (implementations
// may panic otherwise); differing parameters (board size, variant) are
// legal and handled by reallocating the receiver's buffers, so pooled
// states stay safe when a searcher is reused across configurations.
type Copier interface {
	CopyFrom(src State)
}

// Sizer optionally reports the encoded size of a state in bytes. The
// virtual-time transport charges this size to the network model when a
// position is shipped between processes. Domains that do not implement
// Sizer are charged a default size.
type Sizer interface {
	EncodedSize() int
}

// Replayer optionally replays a move sequence from the initial position.
// Used by tooling to verify and render recorded solutions.
type Replayer interface {
	Reset()
}
