// Package game defines the domain abstraction consumed by nested
// Monte-Carlo search.
//
// A search domain is a single-agent, finite, perfect-information game whose
// goal is to maximize the score of the terminal position reached: Morpion
// Solitaire maximizes the number of moves played, SameGame a block-removal
// score, Sudoku the number of cells filled. The search code in
// internal/core and internal/parallel only ever touches this interface, so
// new domains plug in without modifying the search.
package game

// Move is a compact, domain-encoded move. Each domain documents its own
// encoding; the search treats moves as opaque tokens. A fixed-size integer
// keeps move lists allocation-friendly and makes moves trivially
// serializable for the message-passing layer.
type Move uint64

// NoMove is a sentinel returned where no legal move exists.
const NoMove Move = ^Move(0)

// State is a mutable game position.
//
// Implementations are NOT safe for concurrent use; the parallel search
// clones states before shipping them across process boundaries, mirroring
// the distributed-memory model of the paper's MPI implementation.
type State interface {
	// LegalMoves appends the currently legal moves to buf and returns the
	// extended slice. Passing a reused buffer avoids per-step allocation in
	// the playout inner loop.
	LegalMoves(buf []Move) []Move

	// Play applies a legal move. Behaviour on illegal moves is undefined
	// (domains may panic); the search only plays moves obtained from
	// LegalMoves on the same position.
	Play(m Move)

	// Terminal reports whether no legal move remains.
	Terminal() bool

	// Score returns the value of the position under the domain's objective.
	// It is meaningful on any position but the search only compares scores
	// of terminal positions reached by playouts.
	Score() float64

	// Clone returns a deep copy sharing no mutable structure.
	Clone() State

	// MovesPlayed returns the number of moves played from the domain's
	// initial position. The Last-Minute dispatcher uses it as the expected
	// remaining-work heuristic (paper §IV-B: fewer moves played means a
	// longer expected job).
	MovesPlayed() int
}

// Sizer optionally reports the encoded size of a state in bytes. The
// virtual-time transport charges this size to the network model when a
// position is shipped between processes. Domains that do not implement
// Sizer are charged a default size.
type Sizer interface {
	EncodedSize() int
}

// Replayer optionally replays a move sequence from the initial position.
// Used by tooling to verify and render recorded solutions.
type Replayer interface {
	Reset()
}
