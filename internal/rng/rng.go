// Package rng provides a fast, deterministic, splittable pseudo-random
// number generator for Monte-Carlo search.
//
// Every process in the parallel search (root, medians, clients) owns an
// independent stream derived from a global seed and the process rank, so a
// run is bit-reproducible regardless of scheduling. The generator is
// xoshiro256** seeded through SplitMix64, the combination recommended by the
// xoshiro authors; it is not cryptographically secure and does not need to
// be.
package rng

import "math/bits"

// Rand is a xoshiro256** generator. The zero value is invalid; use New or
// NewStream. Rand is not safe for concurrent use; give each goroutine its
// own stream.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// NewStream returns the stream-th independent stream of the generator
// family identified by seed. Streams are decorrelated by hashing the pair
// (seed, stream) into the SplitMix64 state.
func NewStream(seed uint64, stream uint64) *Rand {
	return New(mix(seed, stream))
}

// Fold hashes a sequence of words into a single stream identifier with a
// strong avalanche at every step. The parallel search derives one stream
// per client job from the job's logical coordinates in the search tree
// (root step, root candidate, median step, median candidate), so a job's
// random stream — and therefore its score — does not depend on which
// physical rank happens to execute it. That independence is what lets the
// pull and static schedulers produce bit-identical move sequences.
func Fold(parts ...uint64) uint64 {
	h := uint64(0x6d75706c6c)
	for _, p := range parts {
		h = mix(h, p)
	}
	return h
}

// Mix combines two words into one with a strong avalanche. It is the
// single step of Fold, exported for callers that derive many keys from one
// salt — the domain packages use it to build Zobrist-style position-hash
// keys (one Mix per board feature) without paying Fold's per-call setup.
func Mix(a, b uint64) uint64 { return mix(a, b) }

// SeedStream resets the generator to the stream-th independent stream of
// the family identified by seed, like NewStream but reusing the receiver's
// allocation (the client processes reseed one generator per job).
func (r *Rand) SeedStream(seed, stream uint64) {
	r.Seed(mix(seed, stream))
}

// mix combines two words into one with a strong avalanche, so nearby
// (seed, stream) pairs produce unrelated states.
func mix(a, b uint64) uint64 {
	x := a ^ 0x9e3779b97f4a7c15
	x = splitmix(&x)
	x ^= b + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
	return splitmix(&x)
}

// splitmix advances a SplitMix64 state and returns the next output.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed resets the generator state deterministically from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix(&sm)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway for safety.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which avoids the modulo
// bias of naive reduction and the division of the classic approach.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm fills p with a uniform random permutation of [0, len(p)).
func (r *Rand) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
}

// ShuffleInts shuffles p in place (Fisher–Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls to
// Uint64. It can be used to carve one seed into long non-overlapping
// subsequences; NewStream is usually more convenient.
func (r *Rand) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// State returns the internal state, for checkpointing.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state captured with State.
func (r *Rand) SetState(s [4]uint64) { r.s = s }
