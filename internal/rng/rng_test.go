package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	// Streams from the same seed must differ from each other and from the
	// base generator.
	base := NewStream(7, 0)
	s1 := NewStream(7, 1)
	s2 := NewStream(7, 2)
	if base.Uint64() == s1.Uint64() || s1.Uint64() == s2.Uint64() {
		t.Fatal("streams are correlated on first draw")
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(99, 3)
	b := NewStream(99, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("stream not reproducible at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	for n := 1; n < 100; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared check over 10 buckets; loose bound, deterministic seed.
	r := New(12345)
	const buckets = 10
	const draws = 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9th percentile is ~27.9.
	if chi2 > 27.9 {
		t.Fatalf("chi-squared %v too large, distribution skewed: %v", chi2, count)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(8)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	p := make([]int, 20)
	r.Perm(p)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleProperty(t *testing.T) {
	// Property: shuffling preserves the multiset of elements.
	f := func(seed uint64, n uint8) bool {
		r := New(seed)
		m := int(n%50) + 1
		p := make([]int, m)
		for i := range p {
			p[i] = i * 3
		}
		q := append([]int(nil), p...)
		r.ShuffleInts(q)
		sum1, sum2 := 0, 0
		for i := range p {
			sum1 += p[i]
			sum2 += q[i]
		}
		return sum1 == sum2 && len(p) == len(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJumpDisjointSequences(t *testing.T) {
	a := New(77)
	b := New(77)
	b.Jump()
	// After a jump the sequences should not collide over a short window.
	outs := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		outs[a.Uint64()] = true
	}
	for i := 0; i < 1000; i++ {
		if outs[b.Uint64()] {
			t.Fatal("jumped stream overlaps base stream within window")
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(11)
	r.Uint64()
	st := r.State()
	want := make([]uint64, 16)
	for i := range want {
		want[i] = r.Uint64()
	}
	r.SetState(st)
	for i := range want {
		if got := r.Uint64(); got != want[i] {
			t.Fatalf("state restore diverged at %d", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(37)
	}
	_ = sink
}
