package core

import (
	"testing"

	"repro/internal/morpion"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// TestStatePoolRecyclesWithinDomain pins the basic free-list behaviour: a
// released Copier state is handed out again instead of a fresh clone.
func TestStatePoolRecyclesWithinDomain(t *testing.T) {
	var p StatePool
	src := morpion.New(morpion.Var4D)
	a := p.Get(src)
	p.Put(a)
	b := p.Get(src)
	if a != b {
		t.Fatal("released state was not recycled")
	}
}

// TestStatePoolParksAcrossDomains pins the service-pool behaviour: a
// worker alternating between domains keeps each domain's warm states
// instead of discarding them at every switch.
func TestStatePoolParksAcrossDomains(t *testing.T) {
	var p StatePool
	mor := morpion.New(morpion.Var4D)
	sg := samegame.NewRandom(6, 6, 3, 1)
	su := sudoku.New(2)

	m1 := p.Get(mor)
	p.Put(m1)
	s1 := p.Get(sg) // domain switch parks the morpion free list
	p.Put(s1)
	u1 := p.Get(su)
	p.Put(u1)

	// Coming back to each domain must reuse the parked states.
	if got := p.Get(mor); got != m1 {
		t.Fatal("morpion state was not parked across the domain switch")
	}
	if got := p.Get(sg); got != s1 {
		t.Fatal("samegame state was not parked across the domain switch")
	}
	if got := p.Get(su); got != u1 {
		t.Fatal("sudoku state was not parked across the domain switch")
	}
}

// TestStatePoolPutAcrossDomainSwitch pins Put's routing: a state held
// across a domain switch must land on its own domain's parked list, not
// on the current free list (where the next Get's CopyFrom would panic on
// the type mismatch).
func TestStatePoolPutAcrossDomainSwitch(t *testing.T) {
	var p StatePool
	mor := morpion.New(morpion.Var4D)
	su := sudoku.New(2)

	held := p.Get(mor) // morpion state stays checked out...
	u := p.Get(su)     // ...across the switch to sudoku
	p.Put(u)
	p.Put(held) // late release of the foreign-domain state

	if got := p.Get(su); got != u {
		t.Fatal("sudoku free list was disturbed by the foreign Put")
	}
	if got := p.Get(mor); got != held {
		t.Fatal("late-released morpion state was not parked for reuse")
	}
}

// TestStatePoolGetIsIndependentCopy guards against a recycled state
// aliasing its source.
func TestStatePoolGetIsIndependentCopy(t *testing.T) {
	var p StatePool
	src := samegame.NewRandom(6, 6, 3, 2)
	st := p.Get(src)
	p.Put(st)
	st = p.Get(src) // recycled via CopyFrom
	moves := st.LegalMoves(nil)
	if len(moves) == 0 {
		t.Fatal("no legal moves on a fresh board")
	}
	st.Play(moves[0])
	if src.MovesPlayed() != 0 {
		t.Fatal("mutating a pooled copy changed the source")
	}
}
