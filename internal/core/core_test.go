package core

import (
	"testing"
	"testing/quick"

	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/rng"
)

func newSearcher(seed uint64) *Searcher {
	return NewSearcher(rng.New(seed), DefaultOptions())
}

func TestSampleReachesTerminal(t *testing.T) {
	s := newSearcher(1)
	st := morpion.New(morpion.Var4D)
	res := s.Sample(st)
	if !st.Terminal() {
		t.Fatal("Sample left a non-terminal position")
	}
	if res.Score != st.Score() {
		t.Fatalf("Sample score %v != terminal score %v", res.Score, st.Score())
	}
	if len(res.Sequence) != int(res.Score) {
		t.Fatalf("Morpion score %v != sequence length %d", res.Score, len(res.Sequence))
	}
}

// replayCheck replays res.Sequence from a fresh copy of start and verifies
// it is legal and reaches exactly res.Score. This is the core soundness
// invariant of every search result.
func replayCheck(t *testing.T, start game.State, res Result) {
	t.Helper()
	st := start.Clone()
	for i, m := range res.Sequence {
		legal := false
		for _, lm := range st.LegalMoves(nil) {
			if lm == m {
				legal = true
				break
			}
		}
		if !legal {
			t.Fatalf("sequence move %d is illegal on replay", i)
		}
		st.Play(m)
	}
	if !st.Terminal() {
		t.Fatal("sequence does not reach a terminal position")
	}
	if st.Score() != res.Score {
		t.Fatalf("replayed score %v != reported score %v", st.Score(), res.Score)
	}
}

func TestNestedSequenceReplays(t *testing.T) {
	for level := 0; level <= 2; level++ {
		s := newSearcher(uint64(level) + 10)
		start := morpion.New(morpion.Var4D)
		res := s.Nested(start.Clone(), level)
		replayCheck(t, start, res)
	}
}

func TestNestedLevelZeroIsSample(t *testing.T) {
	a := newSearcher(7)
	b := newSearcher(7)
	ra := a.Sample(morpion.New(morpion.Var4D))
	rb := b.Nested(morpion.New(morpion.Var4D), 0)
	if ra.Score != rb.Score || len(ra.Sequence) != len(rb.Sequence) {
		t.Fatalf("Nested(0) differs from Sample: %v vs %v", ra.Score, rb.Score)
	}
	for i := range ra.Sequence {
		if ra.Sequence[i] != rb.Sequence[i] {
			t.Fatalf("sequences differ at %d", i)
		}
	}
}

func TestNestedDeterministic(t *testing.T) {
	a := newSearcher(99).Nested(morpion.New(morpion.Var4D), 1)
	b := newSearcher(99).Nested(morpion.New(morpion.Var4D), 1)
	if a.Score != b.Score {
		t.Fatalf("same seed, different scores: %v vs %v", a.Score, b.Score)
	}
}

func TestNestedSolvesArmTreeExactly(t *testing.T) {
	// Level-d NMCS searches a depth-d arm tree exactly: the level-1 argmax
	// is exact on depth-1 subtrees, and the property lifts by induction.
	for depth := 1; depth <= 3; depth++ {
		for trial := 0; trial < 5; trial++ {
			tree := game.NewArmTree(3, depth, uint64(trial)*17+3)
			want := tree.Optimum()
			s := newSearcher(uint64(depth*100 + trial))
			res := s.Nested(tree.Clone(), depth)
			if res.Score != want {
				t.Fatalf("depth %d trial %d: NMCS level %d found %v, optimum is %v",
					depth, trial, depth, res.Score, want)
			}
		}
	}
}

func TestReflexiveSolvesArmTreeExactly(t *testing.T) {
	// On arm trees the reflexive variant is exact too (argmax values are
	// exact), so both modes must agree with the optimum.
	opts := DefaultOptions()
	opts.Memorize = false
	for trial := 0; trial < 5; trial++ {
		tree := game.NewArmTree(3, 2, uint64(trial)+50)
		s := NewSearcher(rng.New(uint64(trial)), opts)
		if res := s.Nested(tree.Clone(), 2); res.Score != tree.Optimum() {
			t.Fatalf("reflexive level 2 found %v, optimum %v", res.Score, tree.Optimum())
		}
	}
}

func TestLevelsImproveOnMorpion(t *testing.T) {
	// Statistical but robust: mean score strictly increases from level 0 to
	// level 1 to level 2 on 4D (the paper's premise that nesting amplifies
	// search quality; §I).
	means := make([]float64, 3)
	const n = 8
	for level := 0; level <= 2; level++ {
		s := newSearcher(uint64(level) * 31)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.Nested(morpion.New(morpion.Var4D), level).Score
		}
		means[level] = sum / n
	}
	t.Logf("4D mean scores by level: %v", means)
	if !(means[1] > means[0]) || !(means[2] > means[1]) {
		t.Fatalf("nesting did not improve scores: %v", means)
	}
}

func TestMemorizationHelpsOrTies(t *testing.T) {
	// The memorized best sequence can only help on average. Allow a small
	// slack since this is statistical.
	const n = 12
	memSum, refSum := 0.0, 0.0
	for i := 0; i < n; i++ {
		m := NewSearcher(rng.New(uint64(i)), DefaultOptions())
		memSum += m.Nested(morpion.New(morpion.Var4D), 1).Score

		o := DefaultOptions()
		o.Memorize = false
		r := NewSearcher(rng.New(uint64(i)), o)
		refSum += r.Nested(morpion.New(morpion.Var4D), 1).Score
	}
	t.Logf("memorized mean %.2f, reflexive mean %.2f", memSum/n, refSum/n)
	if memSum < refSum-float64(n) {
		t.Fatalf("memorization clearly hurts: %v vs %v", memSum/n, refSum/n)
	}
}

type countMeter struct{ units int64 }

func (c *countMeter) Add(n int64) { c.units += n }

func TestMeterCountsWork(t *testing.T) {
	// Undo traversal (Morpion implements game.Undoer): every simulated
	// move and every rewound move is charged, and no clones happen.
	meter := &countMeter{}
	opts := DefaultOptions()
	opts.Meter = meter
	s := NewSearcher(rng.New(4), opts)
	res := s.Nested(morpion.New(morpion.Var4D), 1)
	if meter.units == 0 {
		t.Fatal("meter saw no work")
	}
	st := s.Stats()
	if st.Playouts == 0 || st.Steps == 0 || st.Undos == 0 {
		t.Fatalf("stats not collected: %+v", st)
	}
	if st.Clones != 0 {
		t.Fatalf("undo traversal cloned %d times", st.Clones)
	}
	want := st.Steps + CloneCost*st.Clones + UndoCost*st.Undos
	if meter.units != want {
		t.Fatalf("meter units %d != steps %d + %d*clones %d + %d*undos %d",
			meter.units, st.Steps, CloneCost, st.Clones, UndoCost, st.Undos)
	}
	if res.Score <= 0 {
		t.Fatal("suspicious zero score")
	}
}

func TestMeterCountsWorkCloneFallback(t *testing.T) {
	// Same identity on the forced clone path: clones are charged CloneCost
	// and no undos happen.
	meter := &countMeter{}
	opts := DefaultOptions()
	opts.Meter = meter
	opts.NoUndo = true
	s := NewSearcher(rng.New(4), opts)
	if res := s.Nested(morpion.New(morpion.Var4D), 1); res.Score <= 0 {
		t.Fatal("suspicious zero score")
	}
	st := s.Stats()
	if st.Clones == 0 || st.Undos != 0 {
		t.Fatalf("clone fallback stats wrong: %+v", st)
	}
	want := st.Steps + CloneCost*st.Clones
	if meter.units != want {
		t.Fatalf("meter units %d != steps %d + %d*clones %d", meter.units, st.Steps, CloneCost, st.Clones)
	}
}

func TestStopReturnsCompleteGame(t *testing.T) {
	// A search stopped immediately must still return a full legal game.
	calls := 0
	opts := DefaultOptions()
	opts.Stop = func() bool { calls++; return calls > 3 }
	s := NewSearcher(rng.New(5), opts)
	start := morpion.New(morpion.Var4D)
	res := s.Nested(start.Clone(), 2)
	replayCheck(t, start, res)
}

func TestNegativeLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative level did not panic")
		}
	}()
	newSearcher(1).Nested(morpion.New(morpion.Var4D), -1)
}

func TestNewSearcherNilRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil rng did not panic")
		}
	}()
	NewSearcher(nil, DefaultOptions())
}

func TestSampleOnTerminalPosition(t *testing.T) {
	tree := game.NewArmTree(2, 1, 9)
	tree.Play(0)
	s := newSearcher(2)
	res := s.Sample(tree)
	if len(res.Sequence) != 0 {
		t.Fatal("sample on terminal position played moves")
	}
	if res.Score != tree.Score() {
		t.Fatal("sample score differs from terminal score")
	}
}

func TestNestedOnTerminalPosition(t *testing.T) {
	tree := game.NewArmTree(2, 1, 9)
	tree.Play(1)
	s := newSearcher(2)
	res := s.Nested(tree, 2)
	if len(res.Sequence) != 0 || res.Score != tree.Score() {
		t.Fatal("nested on terminal position misbehaved")
	}
}

func TestArmTreeProperty(t *testing.T) {
	// Property: NMCS level-1 on a depth-1 tree equals the optimum for any
	// seed and arm count (exactness of the base argmax).
	f := func(seed uint64, armsRaw uint8) bool {
		arms := int(armsRaw%6) + 1
		tree := game.NewArmTree(arms, 1, seed)
		s := newSearcher(seed)
		return s.Nested(tree.Clone(), 1).Score == tree.Optimum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMorpionLevel1BeatsKnownFloor(t *testing.T) {
	// NMCS level 1 on 5D should comfortably beat the random-play mean
	// (~42); this guards against regressions that silently weaken search.
	s := newSearcher(11)
	res := s.Nested(morpion.New(morpion.Var5D), 1)
	t.Logf("5D level-1 score: %v", res.Score)
	if res.Score < 50 {
		t.Fatalf("5D level-1 score %v below floor 50", res.Score)
	}
}

func BenchmarkSample5D(b *testing.B) {
	s := newSearcher(1)
	base := morpion.New(morpion.Var5D)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sample(base.Clone())
	}
}

func BenchmarkNestedLevel1_4D(b *testing.B) {
	s := newSearcher(1)
	base := morpion.New(morpion.Var4D)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Nested(base.Clone(), 1)
	}
}

func BenchmarkNestedLevel2_4D(b *testing.B) {
	s := newSearcher(1)
	base := morpion.New(morpion.Var4D)
	for i := 0; i < b.N; i++ {
		s.Nested(base.Clone(), 2)
	}
}
