package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/game"
	"repro/internal/morpion"
)

func TestParallelNestedSolvesArmTree(t *testing.T) {
	// Same exactness property as the sequential search: level d solves a
	// depth-d arm tree.
	for _, workers := range []int{1, 4} {
		tree := game.NewArmTree(3, 2, 44)
		res := ParallelNested(tree, 2, workers, 7, DefaultOptions())
		if want := tree.Optimum(); res.Score != want {
			t.Fatalf("workers=%d: found %v, optimum %v", workers, res.Score, want)
		}
	}
}

func TestParallelNestedWorkerCountInvariant(t *testing.T) {
	// The defining property: the result is independent of the worker
	// count, because each candidate evaluation owns a stream derived from
	// (seed, step, index).
	base := morpion.New(morpion.Var4D)
	r1 := ParallelNested(base, 1, 1, 5, DefaultOptions())
	r4 := ParallelNested(base, 1, 4, 5, DefaultOptions())
	if r1.Score != r4.Score {
		t.Fatalf("scores differ by worker count: %v vs %v", r1.Score, r4.Score)
	}
	if len(r1.Sequence) != len(r4.Sequence) {
		t.Fatalf("sequences differ by worker count")
	}
	for i := range r1.Sequence {
		if r1.Sequence[i] != r4.Sequence[i] {
			t.Fatalf("sequences diverge at move %d", i)
		}
	}
}

func TestParallelNestedDeterministic(t *testing.T) {
	base := morpion.New(morpion.Var4D)
	a := ParallelNested(base, 1, 2, 9, DefaultOptions())
	b := ParallelNested(base, 1, 2, 9, DefaultOptions())
	if a.Score != b.Score {
		t.Fatalf("same seed, different scores: %v vs %v", a.Score, b.Score)
	}
}

func TestParallelNestedSequenceReplays(t *testing.T) {
	base := morpion.New(morpion.Var4D)
	res := ParallelNested(base, 1, 3, 13, DefaultOptions())
	replayCheck(t, base, res)
}

func TestParallelNestedQualityMatchesSequential(t *testing.T) {
	// Leaf-parallelism must not degrade search quality: mean score within
	// noise of the sequential search at the same level.
	var par, seq float64
	const n = 6
	for i := 0; i < n; i++ {
		par += ParallelNested(morpion.New(morpion.Var4D), 1, 2, uint64(i), DefaultOptions()).Score
		s := newSearcher(uint64(i))
		seq += s.Nested(morpion.New(morpion.Var4D), 1).Score
	}
	t.Logf("parallel mean %.1f, sequential mean %.1f", par/n, seq/n)
	if par < seq-3*n { // allow 3 points of slack per game
		t.Fatalf("parallel quality collapsed: %v vs %v", par/n, seq/n)
	}
}

func TestParallelNestedMeter(t *testing.T) {
	meter := &AtomicMeter{}
	opt := DefaultOptions()
	opt.Meter = meter
	ParallelNested(morpion.New(morpion.Var4D), 1, 4, 3, opt)
	if meter.Units() == 0 {
		t.Fatal("atomic meter saw no work")
	}
}

func TestParallelNestedStop(t *testing.T) {
	// Stop is polled from worker goroutines, so it must be concurrency
	// safe (see ParallelNested's doc comment).
	var calls atomic.Int64
	opt := DefaultOptions()
	opt.Stop = func() bool { return calls.Add(1) > 2 }
	base := morpion.New(morpion.Var4D)
	res := ParallelNested(base, 2, 2, 1, opt)
	replayCheck(t, base, res)
}

func TestParallelNestedBadLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("level 0 did not panic")
		}
	}()
	ParallelNested(morpion.New(morpion.Var4D), 0, 1, 1, DefaultOptions())
}

func BenchmarkParallelNestedLevel1_4D(b *testing.B) {
	base := morpion.New(morpion.Var4D)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParallelNested(base, 1, 0, uint64(i), DefaultOptions())
	}
}
