package core

import (
	"testing"

	"repro/internal/morpion"
	"repro/internal/rng"
)

// BenchmarkNestedLevel2 compares the two traversals of the argmax loop on
// Morpion 4D at level 2: the allocation-free Play/Undo fast path against
// the clone-per-candidate baseline (Options.NoUndo). The undo traversal
// must show at least 2× fewer allocations per op and lower ns/op; the
// recorded numbers live in CHANGES.md.
func BenchmarkNestedLevel2(b *testing.B) {
	run := func(b *testing.B, noUndo bool) {
		opt := DefaultOptions()
		opt.NoUndo = noUndo
		s := NewSearcher(rng.New(1), opt)
		base := morpion.New(morpion.Var4D)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Nested(base.Clone(), 2)
		}
	}
	b.Run("undo", func(b *testing.B) { run(b, false) })
	b.Run("clone", func(b *testing.B) { run(b, true) })
}

// BenchmarkNestedLevel1 is the same comparison one level down, where the
// argmax loop runs a playout per candidate instead of a nested search.
func BenchmarkNestedLevel1(b *testing.B) {
	run := func(b *testing.B, noUndo bool) {
		opt := DefaultOptions()
		opt.NoUndo = noUndo
		s := NewSearcher(rng.New(1), opt)
		base := morpion.New(morpion.Var4D)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Nested(base.Clone(), 1)
		}
	}
	b.Run("undo", func(b *testing.B) { run(b, false) })
	b.Run("clone", func(b *testing.B) { run(b, true) })
}
