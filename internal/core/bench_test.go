package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/rng"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// BenchmarkNestedLevel2 compares the two traversals of the argmax loop on
// Morpion 4D at level 2: the allocation-free Play/Undo fast path against
// the clone-per-candidate baseline (Options.NoUndo). The undo traversal
// must show at least 2× fewer allocations per op and lower ns/op; the
// recorded numbers live in CHANGES.md.
func BenchmarkNestedLevel2(b *testing.B) {
	run := func(b *testing.B, noUndo bool) {
		opt := DefaultOptions()
		opt.NoUndo = noUndo
		s := NewSearcher(rng.New(1), opt)
		base := morpion.New(morpion.Var4D)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Nested(base.Clone(), 2)
		}
	}
	b.Run("undo", func(b *testing.B) { run(b, false) })
	b.Run("clone", func(b *testing.B) { run(b, true) })
}

// BenchmarkNestedLevel1 is the same comparison one level down, where the
// argmax loop runs a playout per candidate instead of a nested search.
func BenchmarkNestedLevel1(b *testing.B) {
	run := func(b *testing.B, noUndo bool) {
		opt := DefaultOptions()
		opt.NoUndo = noUndo
		s := NewSearcher(rng.New(1), opt)
		base := morpion.New(morpion.Var4D)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Nested(base.Clone(), 1)
		}
	}
	b.Run("undo", func(b *testing.B) { run(b, false) })
	b.Run("clone", func(b *testing.B) { run(b, true) })
}

// BenchmarkCachedNested measures what the transposition cache buys on the
// repeated-search shape it was built for (DESIGN.md §11): each iteration
// runs the same search cachedReps times — the serving pattern where many
// jobs revisit one position — with the cache off (plain Nested) and on (a
// fresh cache per iteration, NestedCached). The repetition count is fixed
// so the on-variant's hit rate is deterministic at any -benchtime,
// reported as the hit_pct metric; the wall-time win is the off/on ns_op
// ratio in BENCH_baseline.json. The off-variant stays on the plain Nested
// path, so the standing allocs/op gate also pins that an unused cache
// costs the cache-off path nothing.
func BenchmarkCachedNested(b *testing.B) {
	const cachedReps = 3
	cases := []struct {
		name  string
		fresh func() game.State
		level int
	}{
		{"sudoku", func() game.State { return sudoku.New(2) }, 2},
		{"samegame", func() game.State { return samegame.NewRandom(5, 5, 3, 3) }, 2},
		{"morpion", func() game.State { return morpion.New(morpion.Var4D) }, 1},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name+"/off", func(b *testing.B) {
			s := NewSearcher(rng.New(1), Options{Memorize: true})
			root := c.fresh()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < cachedReps; r++ {
					s.Nested(root.Clone(), c.level)
				}
			}
		})
		b.Run(c.name+"/on", func(b *testing.B) {
			s := NewSearcher(rng.New(1), Options{Memorize: true})
			root := c.fresh()
			scope := cache.Scope("", true, 0)
			var hits, misses int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc := cache.New(0)
				s.SetCache(tc, scope, false)
				for r := 0; r < cachedReps; r++ {
					s.NestedCached(root.Clone(), c.level)
				}
				st := tc.Stats()
				hits += st.Hits
				misses += st.Misses
			}
			b.StopTimer()
			s.SetCache(nil, 0, false)
			if total := hits + misses; total > 0 {
				b.ReportMetric(float64(hits)/float64(total)*100, "hit_pct")
			}
		})
	}
}
