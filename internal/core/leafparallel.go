package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/game"
	"repro/internal/rng"
)

// ParallelNested is the shared-memory analogue of the paper's cluster
// parallelization: at every step of the top-level game the candidate moves
// are evaluated by level-(ℓ−1) searches running concurrently on a pool of
// worker goroutines (the root/median fan-out collapsed onto one machine,
// with goroutines in place of client processes).
//
// Each candidate evaluation draws from its own random stream derived from
// (seed, step, candidate index), so the result is deterministic in
// (seed, level, position) and — deliberately — independent of the worker
// count: workers only change wall-clock time, never the search outcome.
// This mirrors the virtual cluster's determinism guarantee and makes
// ablations directly comparable.
//
// The top level uses the paper's best-sequence memorization, like Nested.
// opt.Meter, if set, must be safe for concurrent use (see AtomicMeter), and
// so must opt.Stop: both are invoked from worker goroutines.
func ParallelNested(root game.State, level, workers int, seed uint64, opt Options) Result {
	if level < 1 {
		panic("core: ParallelNested needs level >= 1")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	st := root.Clone()
	var out []game.Move

	bestScore := 0.0
	haveBest := false
	var bestSeq []game.Move // memorized best suffix; head is the next move

	type evalResult struct {
		score float64
		seq   []game.Move
	}

	// Candidate states are genuinely cloned here — workers run them
	// concurrently, so Play/Undo on the shared position cannot apply — but
	// the clones are recycled across steps through a StatePool: once a
	// step's argmax is done its states are released and the next step
	// rewrites them in place via game.Copier. The per-step results and
	// states slices are likewise reused.
	var pool StatePool
	var states []game.State
	var results []evalResult

	step := 0
	var moves []game.Move
	for {
		moves = st.LegalMoves(moves[:0])
		if len(moves) == 0 {
			return Result{Score: st.Score(), Sequence: out}
		}
		if opt.Stop != nil && opt.Stop() {
			// Finish from memory, then sample — same policy as Nested.
			for _, m := range bestSeq {
				st.Play(m)
				out = append(out, m)
			}
			if !st.Terminal() {
				s := NewSearcher(rng.NewStream(seed, ^uint64(step)), opt)
				r := s.Sample(st)
				out = append(out, r.Sequence...)
			}
			return Result{Score: st.Score(), Sequence: out}
		}

		if cap(results) >= len(moves) {
			results = results[:len(moves)] // fully overwritten below
		} else {
			results = make([]evalResult, len(moves))
		}
		states = states[:0]

		// Fan the candidates out over the worker pool. Each candidate
		// state is prepared up front in the coordinating goroutine, so
		// domain states never see concurrent access; workers pull job
		// indices from a shared atomic cursor.
		for _, m := range moves {
			child := pool.Get(st)
			child.Play(m)
			states = append(states, child)
		}

		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(moves) {
						return
					}
					r := rng.NewStream(seed, uint64(step)<<24|uint64(i))
					s := NewSearcher(r, opt)
					res := s.Nested(states[i], level-1)
					results[i] = evalResult{score: res.Score, seq: res.Sequence}
				}
			}()
		}
		wg.Wait()

		// Workers are done with this step's states; recycle the copyable
		// ones for the next step.
		for _, c := range states {
			pool.Put(c)
		}

		// Argmax and memorization, identical to the sequential nested.
		stepBest := 0
		for i := 1; i < len(results); i++ {
			if results[i].score > results[stepBest].score {
				stepBest = i
			}
		}
		if !haveBest || results[stepBest].score > bestScore {
			bestScore = results[stepBest].score
			haveBest = true
			bestSeq = append(bestSeq[:0], moves[stepBest])
			bestSeq = append(bestSeq, results[stepBest].seq...)
		}

		var mv game.Move
		if opt.Memorize && haveBest && len(bestSeq) > 0 {
			mv = bestSeq[0]
			bestSeq = bestSeq[1:]
		} else {
			mv = moves[stepBest]
		}
		st.Play(mv)
		out = append(out, mv)
		step++
	}
}

// AtomicMeter is a Meter safe for concurrent use, for ParallelNested.
type AtomicMeter struct{ units atomic.Int64 }

// Add implements Meter.
func (a *AtomicMeter) Add(n int64) { a.units.Add(n) }

// Units returns the accumulated work.
func (a *AtomicMeter) Units() int64 { return a.units.Load() }
