package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/game"
	"repro/internal/rng"
)

// ParallelNested is the shared-memory analogue of the paper's cluster
// parallelization: at every step of the top-level game the candidate moves
// are evaluated by level-(ℓ−1) searches running concurrently on a pool of
// worker goroutines (the root/median fan-out collapsed onto one machine,
// with goroutines in place of client processes).
//
// Each candidate evaluation draws from its own random stream derived from
// (seed, step, candidate index), so the result is deterministic in
// (seed, level, position) and — deliberately — independent of the worker
// count: workers only change wall-clock time, never the search outcome.
// This mirrors the virtual cluster's determinism guarantee and makes
// ablations directly comparable.
//
// The top level uses the paper's best-sequence memorization, like Nested.
// opt.Meter, if set, must be safe for concurrent use (see AtomicMeter), and
// so must opt.Stop: both are invoked from worker goroutines.
func ParallelNested(root game.State, level, workers int, seed uint64, opt Options) Result {
	if level < 1 {
		panic("core: ParallelNested needs level >= 1")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	st := root.Clone()
	var out []game.Move

	bestScore := 0.0
	haveBest := false
	var bestSeq []game.Move // memorized best suffix; head is the next move

	step := 0
	var moves []game.Move
	for {
		moves = st.LegalMoves(moves[:0])
		if len(moves) == 0 {
			return Result{Score: st.Score(), Sequence: out}
		}
		if opt.Stop != nil && opt.Stop() {
			// Finish from memory, then sample — same policy as Nested.
			for _, m := range bestSeq {
				st.Play(m)
				out = append(out, m)
			}
			if !st.Terminal() {
				s := NewSearcher(rng.NewStream(seed, ^uint64(step)), opt)
				r := s.Sample(st)
				out = append(out, r.Sequence...)
			}
			return Result{Score: st.Score(), Sequence: out}
		}

		type evalResult struct {
			score float64
			seq   []game.Move
		}
		results := make([]evalResult, len(moves))

		// Fan the candidates out over the worker pool. Each candidate
		// clones the position up front (in the coordinating goroutine, so
		// domain states never see concurrent access).
		jobs := make(chan int, len(moves))
		states := make([]game.State, len(moves))
		for i, m := range moves {
			child := st.Clone()
			child.Play(m)
			states[i] = child
			jobs <- i
		}
		close(jobs)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					r := rng.NewStream(seed, uint64(step)<<24|uint64(i))
					s := NewSearcher(r, opt)
					res := s.Nested(states[i], level-1)
					results[i] = evalResult{score: res.Score, seq: res.Sequence}
				}
			}()
		}
		wg.Wait()

		// Argmax and memorization, identical to the sequential nested.
		stepBest := 0
		for i := 1; i < len(results); i++ {
			if results[i].score > results[stepBest].score {
				stepBest = i
			}
		}
		if !haveBest || results[stepBest].score > bestScore {
			bestScore = results[stepBest].score
			haveBest = true
			bestSeq = append(bestSeq[:0], moves[stepBest])
			bestSeq = append(bestSeq, results[stepBest].seq...)
		}

		var mv game.Move
		if opt.Memorize && haveBest && len(bestSeq) > 0 {
			mv = bestSeq[0]
			bestSeq = bestSeq[1:]
		} else {
			mv = moves[stepBest]
		}
		st.Play(mv)
		out = append(out, mv)
		step++
	}
}

// AtomicMeter is a Meter safe for concurrent use, for ParallelNested.
type AtomicMeter struct{ units atomic.Int64 }

// Add implements Meter.
func (a *AtomicMeter) Add(n int64) { a.units.Add(n) }

// Units returns the accumulated work.
func (a *AtomicMeter) Units() int64 { return a.units.Load() }
