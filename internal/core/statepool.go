package core

import (
	"reflect"

	"repro/internal/game"
)

// StatePool is a free list of scratch position states for the places that
// still genuinely need a copy of a position: the clone fallback of the
// sequential search, leaf-parallel candidate states, and positions shipped
// between the parallel processes. Released states of game.Copier domains
// are rewritten in place via CopyFrom instead of freshly allocated, so the
// copies are allocation-free after warmup.
//
// A pool belongs to a single goroutine and is not safe for concurrent use;
// give each process or searcher its own.
type StatePool struct {
	free []game.State
	ty   reflect.Type // dynamic type of the pooled states
}

// Get returns an independent deep copy of src, recycling a released state
// when one of the same dynamic type is available. The pool resets itself
// when src's domain changes, so a pool owner may be reused across domains;
// same-domain parameter changes (variant, board size) are absorbed by
// CopyFrom itself, which reallocates the recycled state's buffers.
func (p *StatePool) Get(src game.State) game.State {
	if ty := reflect.TypeOf(src); ty != p.ty {
		p.ty = ty
		p.free = p.free[:0]
	}
	if n := len(p.free); n > 0 {
		st := p.free[n-1]
		p.free = p.free[:n-1]
		st.(game.Copier).CopyFrom(src)
		return st
	}
	return src.Clone()
}

// Put releases a state obtained from Get once its user is done with it.
// Only game.Copier states can be rewritten in place, so others are left to
// the garbage collector.
func (p *StatePool) Put(st game.State) {
	if _, ok := st.(game.Copier); ok {
		p.free = append(p.free, st)
	}
}
