package core

import (
	"reflect"

	"repro/internal/game"
)

// StatePool is a free list of scratch position states for the places that
// still genuinely need a copy of a position: the clone fallback of the
// sequential search, leaf-parallel candidate states, and positions shipped
// between the parallel processes. Released states of game.Copier domains
// are rewritten in place via CopyFrom instead of freshly allocated, so the
// copies are allocation-free after warmup.
//
// A pool belongs to a single goroutine and is not safe for concurrent use;
// give each process or searcher its own.
type StatePool struct {
	free []game.State
	ty   reflect.Type // dynamic type of the pooled states
	// parked holds the free lists of domains other than the current one.
	// A long-lived worker serving interleaved jobs of different domains
	// (the search service's shared medians and clients) switches domains
	// every few jobs; parking instead of dropping keeps every domain's
	// warm states across the whole pool lifetime. nil until a pool owner
	// actually sees a second domain, so single-domain users pay nothing.
	parked map[reflect.Type][]game.State
}

// Get returns an independent deep copy of src, recycling a released state
// when one of the same dynamic type is available. When src's domain
// changes the current free list is parked and the new domain's parked
// list (if any) is taken up, so a pool owner reused across domains keeps
// each domain's warm states; same-domain parameter changes (variant,
// board size) are absorbed by CopyFrom itself, which reallocates the
// recycled state's buffers.
func (p *StatePool) Get(src game.State) game.State {
	if ty := reflect.TypeOf(src); ty != p.ty {
		if p.ty != nil {
			if p.parked == nil {
				p.parked = make(map[reflect.Type][]game.State)
			}
			p.parked[p.ty] = p.free
			p.free = nil
		}
		p.ty = ty
		if parked, ok := p.parked[ty]; ok {
			p.free = parked
			delete(p.parked, ty)
		}
	}
	if n := len(p.free); n > 0 {
		st := p.free[n-1]
		p.free = p.free[:n-1]
		st.(game.Copier).CopyFrom(src)
		return st
	}
	return src.Clone()
}

// Put releases a state obtained from Get once its user is done with it.
// Only game.Copier states can be rewritten in place, so others are left to
// the garbage collector. A state whose domain differs from the pool's
// current one (it was held across a domain switch) goes to that domain's
// parked list, never onto the current free list — CopyFrom requires
// matching concrete types.
func (p *StatePool) Put(st game.State) {
	if _, ok := st.(game.Copier); !ok {
		return
	}
	if ty := reflect.TypeOf(st); ty != p.ty {
		if p.parked == nil {
			p.parked = make(map[reflect.Type][]game.State)
		}
		p.parked[ty] = append(p.parked[ty], st)
		return
	}
	p.free = append(p.free, st)
}
