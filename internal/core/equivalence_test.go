package core

import (
	"testing"

	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/rng"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// equivalenceDomains are the searched positions of the undo-vs-clone
// determinism tests: one per domain, small enough for level-2 Morpion and
// level-1 elsewhere to run in test time.
func equivalenceDomains() map[string]func() game.State {
	return map[string]func() game.State{
		"morpion4D": func() game.State { return morpion.New(morpion.Var4D) },
		"samegame":  func() game.State { return samegame.NewRandom(8, 8, 4, 7) },
		"sudoku9":   func() game.State { return sudoku.New(3) },
	}
}

// TestNestedUndoMatchesClone pins the central equivalence of the
// allocation-free search core: for a fixed seed, the Play/Undo traversal
// and the clone-per-candidate traversal return bit-identical results —
// same score, same move sequence — on every domain.
func TestNestedUndoMatchesClone(t *testing.T) {
	for name, mk := range equivalenceDomains() {
		t.Run(name, func(t *testing.T) {
			levels := []int{1, 2}
			if name != "morpion4D" {
				levels = []int{1}
			}
			for _, level := range levels {
				for seed := uint64(1); seed <= 3; seed++ {
					undo := NewSearcher(rng.New(seed), DefaultOptions())
					ru := undo.Nested(mk(), level)
					if undo.Stats().Clones != 0 {
						t.Fatalf("level %d seed %d: undo traversal cloned %d times",
							level, seed, undo.Stats().Clones)
					}

					opts := DefaultOptions()
					opts.NoUndo = true
					clone := NewSearcher(rng.New(seed), opts)
					rc := clone.Nested(mk(), level)
					if clone.Stats().Undos != 0 {
						t.Fatalf("level %d seed %d: clone traversal undid %d moves",
							level, seed, clone.Stats().Undos)
					}

					if ru.Score != rc.Score {
						t.Fatalf("level %d seed %d: undo score %v != clone score %v",
							level, seed, ru.Score, rc.Score)
					}
					if len(ru.Sequence) != len(rc.Sequence) {
						t.Fatalf("level %d seed %d: sequence lengths differ: %d vs %d",
							level, seed, len(ru.Sequence), len(rc.Sequence))
					}
					for i := range ru.Sequence {
						if ru.Sequence[i] != rc.Sequence[i] {
							t.Fatalf("level %d seed %d: sequences differ at move %d",
								level, seed, i)
						}
					}
				}
			}
		})
	}
}

// TestNestedUndoMatchesCloneWithStop extends the equivalence to cancelled
// searches: both traversals must poll Stop in the same order and finish the
// game identically.
func TestNestedUndoMatchesCloneWithStop(t *testing.T) {
	for name, mk := range equivalenceDomains() {
		t.Run(name, func(t *testing.T) {
			for _, cutoff := range []int{1, 5, 50} {
				run := func(noUndo bool) Result {
					calls := 0
					opts := DefaultOptions()
					opts.NoUndo = noUndo
					opts.Stop = func() bool { calls++; return calls > cutoff }
					return NewSearcher(rng.New(11), opts).Nested(mk(), 1)
				}
				ru, rc := run(false), run(true)
				if ru.Score != rc.Score || len(ru.Sequence) != len(rc.Sequence) {
					t.Fatalf("cutoff %d: stopped searches diverge: %v/%d vs %v/%d",
						cutoff, ru.Score, len(ru.Sequence), rc.Score, len(rc.Sequence))
				}
				for i := range ru.Sequence {
					if ru.Sequence[i] != rc.Sequence[i] {
						t.Fatalf("cutoff %d: sequences differ at move %d", cutoff, i)
					}
				}
			}
		})
	}
}

// TestSearcherReuseAcrossConfigs pins a scratch-pool regression: a single
// Searcher (and its recycled clone-fallback states) must survive being
// reused across variants and board sizes of the same domain.
func TestSearcherReuseAcrossConfigs(t *testing.T) {
	opts := DefaultOptions()
	opts.NoUndo = true // force the clone fallback so the pool is exercised
	s := NewSearcher(rng.New(2), opts)
	if r := s.Nested(morpion.New(morpion.Var4D), 1); r.Score <= 0 {
		t.Fatal("4D search failed")
	}
	if r := s.Nested(morpion.New(morpion.Var5T), 1); r.Score <= 0 {
		t.Fatal("5T search after 4D reuse failed")
	}
	if r := s.Nested(samegame.NewRandom(6, 6, 3, 1), 1); r.Score < 0 {
		t.Fatal("cross-domain reuse failed")
	}
	if r := s.Nested(samegame.NewRandom(8, 8, 4, 1), 1); r.Score < 0 {
		t.Fatal("cross-size SameGame reuse failed")
	}
}

// TestNestedUndoLeavesStateAtTerminal checks the documented contract that
// Nested leaves the searched state at the terminal position of the played
// game on both traversals.
func TestNestedUndoLeavesStateAtTerminal(t *testing.T) {
	for name, mk := range equivalenceDomains() {
		t.Run(name, func(t *testing.T) {
			st := mk()
			res := NewSearcher(rng.New(3), DefaultOptions()).Nested(st, 1)
			if !st.Terminal() {
				t.Fatal("undo traversal left a non-terminal position")
			}
			if st.Score() != res.Score {
				t.Fatalf("terminal score %v != result score %v", st.Score(), res.Score)
			}
		})
	}
}
