// Package core implements sequential Nested Monte-Carlo Search (NMCS), the
// algorithm parallelized by the paper.
//
// The two functions of the paper's §III are provided:
//
//   - Sample: play uniformly random moves to the end of the game and return
//     the score (the paper's "sample" function).
//   - Searcher.Nested: the "nested" function. A level-ℓ search plays a game
//     choosing, at every step, the move whose level-(ℓ−1) evaluation scored
//     highest, while memorizing the best terminal sequence seen so far and
//     following it when no lower-level search improves on it (pseudocode
//     lines 7–10). Level 0 is a plain random sample.
//
// Level numbering: this package calls a plain random playout "level 0", so
// the paper's "level 1 rollout" (argmax over samples) is Nested(st, 1),
// matching the paper's numbering exactly.
//
// The argmax loop (paper lines 3–6) dominates the run time, so its
// traversal is allocation-free where the domain allows it: when the
// searched position implements game.Undoer, every candidate move is
// evaluated by playing it on the single mutable state, recursing, and
// rewinding with Undo back to the step position — no clone, no allocation.
// Domains without Undo take the historical clone-per-candidate path, which
// itself recycles scratch states through a free list when the domain
// implements game.Copier. Both traversals consume the random stream
// identically, so for a fixed seed they return bit-identical Results
// (Options.NoUndo forces the clone path; the equivalence tests pin this).
//
// The search is instrumented through the Meter interface: every simulated
// move, every undo and every position clone reports work units. The
// virtual-time cluster transport uses those units to charge simulated CPU
// time, which is how the repository regenerates the paper's wall-clock
// tables on arbitrary simulated cluster topologies (see internal/mpi and
// internal/harness).
package core

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/game"
	"repro/internal/rng"
)

// Meter receives work-accounting callbacks from the search. Implementations
// must be cheap; the search calls Add once per game step and per clone.
type Meter interface {
	// Add reports n abstract work units. One simulated move costs one unit;
	// a position clone costs CloneCost units.
	Add(n int64)
}

// CloneCost is the metered cost of one position clone, in units of one
// simulated move. Cloning a Morpion position costs roughly as much as a
// handful of incremental moves; the exact constant only shifts absolute
// times, not speedup shapes.
const CloneCost = 4

// UndoCost is the metered cost of one Undo on the allocation-free
// traversal. Reverting a move is the same incremental bookkeeping as
// playing one, so it is charged like a move, not like a clone.
const UndoCost = 1

// nopMeter is used when the caller does not need work accounting.
type nopMeter struct{}

func (nopMeter) Add(int64) {}

// Result is the outcome of a search from some position: the terminal score
// reached and the move sequence leading there from the searched position.
type Result struct {
	Score    float64
	Sequence []game.Move
}

// Stats are cumulative instrumentation counters of a Searcher.
type Stats struct {
	Playouts int64 // number of random playouts run
	Steps    int64 // moves played inside simulations (incl. argmax play)
	Clones   int64 // position clones (zero on the undo traversal)
	Undos    int64 // moves reverted by the undo traversal

	// CacheHits/CacheMisses count transposition-cache lookups at the
	// level≥1 sub-search boundaries (zero unless a cache is attached).
	CacheHits   int64
	CacheMisses int64
}

// Options configure a Searcher.
type Options struct {
	// Meter receives work units; nil disables accounting.
	Meter Meter
	// Memorize enables the best-sequence memory of the paper's nested
	// rollout (lines 7–10 of the pseudocode). Disabling it yields the
	// older "reflexive" behaviour (Cazenave 2007) where the argmax move is
	// always played even when it scores worse than a previously found
	// sequence. Used as an ablation.
	Memorize bool
	// Stop, when non-nil, is polled during the search; once it returns
	// true the search stops branching and completes the current game with
	// cheap random playouts so that a full sequence is still returned.
	Stop func() bool
	// NoUndo forces the clone-per-candidate traversal even when the domain
	// implements game.Undoer. Used by ablations, benchmarks and the
	// equivalence tests that pin undo-vs-clone determinism; leave it false
	// to let the searcher take the allocation-free fast path.
	NoUndo bool
	// Evaluator, when non-nil, guides the level-0 playouts: each playout
	// step samples the next move proportionally to the evaluator's weights
	// instead of uniformly. Nil keeps the paper's uniform playout
	// bit-identically (the uniform path draws from the random stream
	// exactly as before). See game.Evaluator for the purity contract.
	Evaluator game.Evaluator

	// Cache, when non-nil, enables the transposition cache: every level≥1
	// sub-search boundary looks its position up before recursing and
	// inserts the result on return. Caching requires the searched domain
	// to implement game.Hasher (silently disabled otherwise) and switches
	// the searcher into DERIVED mode: every sub-search draws from a random
	// stream re-derived from (CacheScope, position hash, level), and
	// level-0 move selection and argmax tie-breaks become independent of
	// legal-move-list order. Derived mode makes every cached result a pure
	// function of its key — so a hit returns exactly what recomputation
	// would, regardless of which job or worker populated the entry — but
	// it is NOT bit-identical to the cache-off search; leave Cache nil for
	// the paper's exact behaviour. Cache is shared across searchers and
	// safe for concurrent use.
	Cache *cache.Cache
	// CacheScope is folded into every cache key; build it with cache.Scope
	// so results computed under different evaluators or options never
	// alias. The zero scope is valid (uniform playouts, default options).
	CacheScope uint64
	// CacheVerify recomputes every cache hit from scratch and panics if
	// the cached score or sequence differs — the correctness mode that
	// pins derived-mode purity. It costs a full recomputation per hit, so
	// it is for tests and debugging, never production.
	CacheVerify bool
}

// DefaultOptions returns the configuration matching the paper: best-sequence
// memorization on, no cancellation, no metering.
func DefaultOptions() Options {
	return Options{Memorize: true}
}

// Searcher runs nested Monte-Carlo searches. It owns per-level scratch
// buffers, so it is not safe for concurrent use: create one Searcher per
// goroutine (the parallel layer creates one per simulated process).
type Searcher struct {
	rng   *rng.Rand
	opt   Options
	meter Meter
	stats Stats

	movebuf []game.Move // shared scratch for move lists at sample level
	levels  []levelBuf  // per-recursion-level scratch

	// eval guides level-0 playouts (see Options.Evaluator); wbuf is its
	// reusable weight scratch. eval starts as Options.Evaluator and can be
	// swapped per job with SetEvaluator on long-lived worker searchers.
	eval game.Evaluator
	wbuf []float64

	// undo is non-nil while the current top-level search traverses with
	// Play/Undo on the single mutable root state (capability-checked once
	// in Nested). When nil, the clone-per-candidate fallback runs.
	undo game.Undoer

	// Transposition cache (see Options.Cache). derived is true while the
	// current top-level search runs in derived mode: cache non-nil and the
	// searched domain implements game.Hasher.
	cache       *cache.Cache
	cacheScope  uint64
	cacheVerify bool
	derived     bool

	// scratch is the free list of the clone fallback: released candidate
	// states of game.Copier domains, recycled via CopyFrom so the fallback
	// stops allocating after warmup.
	scratch StatePool
}

type levelBuf struct {
	moves   []game.Move // candidate move list
	scratch []game.Move // suffix of the candidate being evaluated
	best    []game.Move // memorized best suffix
}

// NewSearcher returns a Searcher drawing randomness from r.
func NewSearcher(r *rng.Rand, opt Options) *Searcher {
	if r == nil {
		panic("core: NewSearcher needs a random source")
	}
	m := opt.Meter
	if m == nil {
		m = nopMeter{}
	}
	return &Searcher{
		rng: r, opt: opt, meter: m, eval: opt.Evaluator,
		cache: opt.Cache, cacheScope: opt.CacheScope, cacheVerify: opt.CacheVerify,
	}
}

// SetEvaluator swaps the playout evaluator (nil restores the paper's
// uniform playout). Long-lived worker searchers serve jobs with differing
// evaluator configurations; swapping between jobs is what keeps a job's
// result independent of the worker that runs it.
func (s *Searcher) SetEvaluator(e game.Evaluator) { s.eval = e }

// SetCache attaches (c non-nil) or detaches (c nil) a shared transposition
// cache, like Options.Cache but swappable per job on long-lived worker
// searchers. scope and verify mirror Options.CacheScope/CacheVerify.
func (s *Searcher) SetCache(c *cache.Cache, scope uint64, verify bool) {
	s.cache, s.cacheScope, s.cacheVerify = c, scope, verify
}

// Stats returns the cumulative instrumentation counters.
func (s *Searcher) Stats() Stats { return s.stats }

// Reseed resets the searcher's random source to the stream-th independent
// stream of the family identified by seed (see rng.SeedStream). Persistent
// workers that serve one rollout per logical job reseed before every job,
// which is what makes a job's result independent of the worker that runs
// it and of whatever ran on that worker before.
func (s *Searcher) Reseed(seed, stream uint64) { s.rng.SeedStream(seed, stream) }

// Sample plays uniformly random moves on st until the game ends and returns
// the terminal score and the moves played. st is mutated to the terminal
// position. This is the paper's "sample" function.
func (s *Searcher) Sample(st game.State) Result {
	var seq []game.Move
	score := s.sample(st, &seq)
	return Result{Score: score, Sequence: seq}
}

func (s *Searcher) sample(st game.State, seq *[]game.Move) float64 {
	s.stats.Playouts++
	steps := int64(0)
	for {
		s.movebuf = st.LegalMoves(s.movebuf[:0])
		if len(s.movebuf) == 0 {
			break
		}
		var m game.Move
		switch {
		case s.eval != nil:
			m = s.movebuf[s.pickWeighted(st)]
		case s.derived:
			m = s.movebuf[s.pickDerived()]
		default:
			m = s.movebuf[s.rng.Intn(len(s.movebuf))]
		}
		st.Play(m)
		*seq = append(*seq, m)
		steps++
	}
	s.stats.Steps += steps
	s.meter.Add(steps)
	return st.Score()
}

// pickWeighted returns the index of the next playout move in s.movebuf,
// sampled proportionally to the evaluator's weights. Degenerate weight
// vectors (zero or negative total, NaN/Inf) fall back to a uniform draw so
// an evaluator with "no opinion" — or a buggy one — can never wedge a
// playout; both branches consume exactly one draw from the stream.
func (s *Searcher) pickWeighted(st game.State) int {
	s.wbuf = s.eval.Evaluate(game.EvalRequest{State: st, Moves: s.movebuf}, s.wbuf[:0])
	total := 0.0
	for _, w := range s.wbuf {
		total += w
	}
	if len(s.wbuf) != len(s.movebuf) || !(total > 0) || math.IsInf(total, 1) {
		if s.derived {
			return s.pickDerived()
		}
		return s.rng.Intn(len(s.movebuf))
	}
	if s.derived {
		return s.pickWeightedDerived()
	}
	x := s.rng.Float64() * total
	for i, w := range s.wbuf {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(s.movebuf) - 1 // rounding spill lands on the last move
}

// pickDerived returns the index of a uniformly distributed move from
// s.movebuf, chosen independently of the LIST ORDER of the moves: one
// stream draw keys every move VALUE and the largest key wins. Derived mode
// needs order independence because position hashes cover content, not the
// history-dependent legal-move-list order (Morpion's list order differs
// across transpositions of equal content) — with it, the whole sub-search
// is a pure function of (scope, position content, level).
func (s *Searcher) pickDerived() int {
	z := s.rng.Uint64()
	best, bestKey := 0, uint64(0)
	for i, m := range s.movebuf {
		if k := rng.Mix(z, uint64(m)); k > bestKey {
			best, bestKey = i, k
		}
	}
	return best
}

// pickWeightedDerived is pickDerived's weighted counterpart: the
// exponential-race (Gumbel-max) construction — the move maximizing
// log(u)/w for a per-move-value uniform u — samples exactly
// proportionally to the weights while staying order-independent.
// Non-positive weights are unreachable, as in the prefix-walk branch.
func (s *Searcher) pickWeightedDerived() int {
	z := s.rng.Uint64()
	best, bestKey := -1, math.Inf(-1)
	for i, m := range s.movebuf {
		w := s.wbuf[i]
		if !(w > 0) {
			continue
		}
		u := (float64(rng.Mix(z, uint64(m))>>11) + 0.5) / (1 << 53)
		if k := math.Log(u) / w; best < 0 || k > bestKey {
			best, bestKey = i, k
		}
	}
	if best < 0 {
		return s.pickDerived() // unreachable: caller checked total > 0
	}
	return best
}

// Nested runs a level-`level` nested search from st and returns the best
// terminal score found and the move sequence reaching it from st. st itself
// is left at the terminal position of the played game. Level 0 is Sample.
//
// This is the paper's "nested" function; the argmax over moves evaluates
// each move with a level-(level−1) search. When st implements game.Undoer
// (and Options.NoUndo is unset) the evaluation plays the candidate on st
// itself and rewinds with Undo — the allocation-free fast path; otherwise
// each candidate is evaluated on a clone. Both paths return bit-identical
// results for the same random stream.
func (s *Searcher) Nested(st game.State, level int) Result {
	if level < 0 {
		panic(fmt.Sprintf("core: negative nesting level %d", level))
	}
	if u, ok := st.(game.Undoer); ok && !s.opt.NoUndo {
		s.undo = u
		defer func() { s.undo = nil }()
	}
	if s.cache != nil {
		if _, ok := st.(game.Hasher); ok {
			s.derived = true
			defer func() { s.derived = false }()
		}
	}
	var seq []game.Move
	score := s.nested(st, level, &seq)
	return Result{Score: score, Sequence: seq}
}

// NestedCached is Nested with the WHOLE call treated as a cache boundary:
// the result is keyed by (scope, st's position hash, level) and shared
// with any other job or worker that searches an identical position. The
// pool's client ranks use it for their per-job rollouts, which is what
// makes the cache cross-job — a position re-searched by a different job
// (under a different seed) hits, because derived mode ignores the job seed
// entirely. Falls back to Nested when no cache is attached or the domain
// does not hash.
func (s *Searcher) NestedCached(st game.State, level int) Result {
	if level < 0 {
		panic(fmt.Sprintf("core: negative nesting level %d", level))
	}
	if s.cache == nil {
		return s.Nested(st, level)
	}
	if _, ok := st.(game.Hasher); !ok {
		return s.Nested(st, level)
	}
	if u, ok := st.(game.Undoer); ok && !s.opt.NoUndo {
		s.undo = u
		defer func() { s.undo = nil }()
	}
	s.derived = true
	defer func() { s.derived = false }()
	var seq []game.Move
	score := s.subEval(st, level, &seq)
	return Result{Score: score, Sequence: seq}
}

// cloneFor returns a state equal to st for candidate evaluation on the
// clone fallback, recycling a released scratch state via the StatePool.
// The metered cost is CloneCost either way: recycling changes allocation
// pressure, not the simulated work model.
func (s *Searcher) cloneFor(st game.State) game.State {
	s.stats.Clones++
	s.meter.Add(CloneCost)
	return s.scratch.Get(st)
}

// nested implements one level of the paper's nested rollout. The suffix of
// moves played from the input position is appended to out.
func (s *Searcher) nested(st game.State, level int, out *[]game.Move) float64 {
	if level == 0 {
		return s.sample(st, out)
	}
	for len(s.levels) <= level {
		s.levels = append(s.levels, levelBuf{})
	}
	lb := &s.levels[level]

	// Memorized best game (paper lines 1, 7–9): bestScore is the score of
	// the best terminal sequence seen at this level, lb.best the not yet
	// replayed suffix of that sequence (its head is the next move to play).
	bestScore := 0.0
	haveBest := false
	lb.best = lb.best[:0]

	for {
		lb.moves = st.LegalMoves(lb.moves[:0])
		if len(lb.moves) == 0 {
			return st.Score()
		}
		if s.opt.Stop != nil && s.opt.Stop() {
			// Cancelled: finish the game cheaply so the caller still gets
			// a complete sequence, preferring the memorized best suffix.
			return s.finishCancelled(st, lb, out)
		}

		// Iterate over a stable copy of the move list: lb.moves is only
		// rewritten by this frame (recursion uses strictly lower levels),
		// but the re-fetch at the top of the loop reuses its backing array.
		moves := lb.moves

		// Argmax over the moves of this step (paper lines 3–6). On the
		// undo traversal the candidate is played on st itself and the
		// lower search's whole game is rewound afterwards; on the clone
		// fallback it is played on a (recycled) copy.
		stepScore := 0.0
		stepMove := moves[0]
		stepFirst := true
		bestThisStep := false
		for _, m := range moves {
			var sc float64
			lb.scratch = lb.scratch[:0]
			if s.undo != nil {
				depth := st.MovesPlayed()
				st.Play(m)
				s.meter.Add(1)
				s.stats.Steps++
				sc = s.subEval(st, level-1, &lb.scratch)
				undone := int64(st.MovesPlayed() - depth)
				for st.MovesPlayed() > depth {
					s.undo.Undo()
				}
				s.stats.Undos += undone
				s.meter.Add(UndoCost * undone)
			} else {
				child := s.cloneFor(st)
				child.Play(m)
				s.meter.Add(1)
				s.stats.Steps++
				sc = s.subEval(child, level-1, &lb.scratch)
				s.scratch.Put(child)
			}
			// In derived mode exact score ties are broken towards the
			// smaller move VALUE, so the step's choice does not depend on
			// the history-dependent order of the move list (transpositions
			// of equal content must choose identically; see subEval).
			if stepFirst || sc > stepScore ||
				(s.derived && sc == stepScore && m < stepMove) {
				stepScore = sc
				stepMove = m
				stepFirst = false
			}
			// Paper line 7: a strictly better score replaces the memorized
			// best sequence, which is m followed by the lower search's game.
			// Derived-mode tie-break: a tie with a best found at THIS step
			// goes to the smaller head move; a tie with an earlier step's
			// best keeps it (the step loop itself is deterministic).
			if !haveBest || sc > bestScore ||
				(s.derived && bestThisStep && sc == bestScore && len(lb.best) > 0 && m < lb.best[0]) {
				bestScore = sc
				haveBest = true
				bestThisStep = true
				lb.best = append(lb.best[:0], m)
				lb.best = append(lb.best, lb.scratch...)
			}
		}

		// Paper line 10: play the next move of the best sequence. In
		// reflexive mode (no memory, Cazenave 2007) play this step's argmax
		// move instead, even if an earlier sequence scored higher.
		var mv game.Move
		if s.opt.Memorize && haveBest && len(lb.best) > 0 {
			mv = lb.best[0]
			lb.best = lb.best[1:]
		} else {
			mv = stepMove
		}

		st.Play(mv)
		s.meter.Add(1)
		s.stats.Steps++
		*out = append(*out, mv)
	}
}

// subEval evaluates one sub-search of the argmax loop (or one NestedCached
// top call). Outside derived mode it is exactly s.nested — the cache-off
// path stays bit-identical to the pre-cache searcher. In derived mode it
// is the cache boundary: the searcher's stream is re-derived from (scope,
// position hash, level) for the duration of the sub-search and restored
// afterwards, so the result — and every random draw below this point — is
// a pure function of the key. That purity is what makes a cached result
// from ANY job or worker interchangeable with recomputation, and what the
// verify mode asserts. Level-0 playouts are re-derived but not cached
// (an entry per playout would flood the cache with leaf results that are
// cheaper to recompute than to store).
func (s *Searcher) subEval(st game.State, level int, out *[]game.Move) float64 {
	if !s.derived {
		return s.nested(st, level, out)
	}
	hs, ok := st.(game.Hasher)
	if !ok {
		return s.nested(st, level, out)
	}
	h := hs.Hash()
	saved := s.rng.State()
	s.rng.SeedStream(s.cacheScope, rng.Fold(h, uint64(level)))
	var sc float64
	if level == 0 {
		sc = s.sample(st, out)
	} else {
		sc = s.cachedNested(st, h, level, out)
	}
	s.rng.SetState(saved)
	return sc
}

// cachedNested is the level≥1 half of subEval: look the position up,
// verify on a hit when asked, recurse and insert on a miss. The cache
// stores the score GAIN over the boundary position plus the realizing
// move suffix — absolute scores differ across transpositions of equal
// content (see the game.Hasher contract), gains do not.
func (s *Searcher) cachedNested(st game.State, h uint64, level int, out *[]game.Move) float64 {
	key := cache.Key{Scope: s.cacheScope, Hash: h, Level: uint32(level)}
	base := st.Score()
	pre := len(*out)
	if gain, ok := s.cache.Get(key, out); ok {
		s.stats.CacheHits++
		if s.cacheVerify {
			s.verifyHit(st, key, base, gain, (*out)[pre:], level)
		}
		return base + gain
	}
	s.stats.CacheMisses++
	sc := s.nested(st, level, out)
	// A search cut short by Stop is partial; caching it would serve
	// truncated results to uncancelled jobs.
	if s.opt.Stop == nil || !s.opt.Stop() {
		s.cache.Put(key, sc-base, (*out)[pre:])
	}
	return sc
}

// verifyHit recomputes a cache hit from scratch and panics on any
// difference — the CacheVerify correctness mode. The stream was just
// seeded by subEval and Get drew nothing from it, so the recomputation
// runs under exactly the stream the original miss ran under; derived-mode
// purity then demands bitwise-equal score and sequence no matter which
// job, worker or transposition populated the entry.
func (s *Searcher) verifyHit(st game.State, key cache.Key, base, gain float64, seq []game.Move, level int) {
	var buf []game.Move
	sc := s.nested(st, level, &buf)
	if sc != base+gain {
		panic(fmt.Sprintf("core: cache verify: key %+v cached score %v (base %v + gain %v), recomputed %v",
			key, base+gain, base, gain, sc))
	}
	if len(buf) != len(seq) {
		panic(fmt.Sprintf("core: cache verify: key %+v cached sequence length %d, recomputed %d",
			key, len(seq), len(buf)))
	}
	for i := range seq {
		if seq[i] != buf[i] {
			panic(fmt.Sprintf("core: cache verify: key %+v sequence differs at move %d: cached %#x, recomputed %#x",
				key, i, seq[i], buf[i]))
		}
	}
}

// finishCancelled completes the game after a Stop signal: it replays the
// memorized best suffix if one exists, then samples to the end.
func (s *Searcher) finishCancelled(st game.State, lb *levelBuf, out *[]game.Move) float64 {
	for _, m := range lb.best {
		st.Play(m)
		s.meter.Add(1)
		s.stats.Steps++
		*out = append(*out, m)
	}
	lb.best = lb.best[:0]
	if st.Terminal() {
		return st.Score()
	}
	return s.sample(st, out)
}
