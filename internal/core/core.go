// Package core implements sequential Nested Monte-Carlo Search (NMCS), the
// algorithm parallelized by the paper.
//
// The two functions of the paper's §III are provided:
//
//   - Sample: play uniformly random moves to the end of the game and return
//     the score (the paper's "sample" function).
//   - Searcher.Nested: the "nested" function. A level-ℓ search plays a game
//     choosing, at every step, the move whose level-(ℓ−1) evaluation scored
//     highest, while memorizing the best terminal sequence seen so far and
//     following it when no lower-level search improves on it (pseudocode
//     lines 7–10). Level 0 is a plain random sample.
//
// Level numbering: this package calls a plain random playout "level 0", so
// the paper's "level 1 rollout" (argmax over samples) is Nested(st, 1),
// matching the paper's numbering exactly.
//
// The argmax loop (paper lines 3–6) dominates the run time, so its
// traversal is allocation-free where the domain allows it: when the
// searched position implements game.Undoer, every candidate move is
// evaluated by playing it on the single mutable state, recursing, and
// rewinding with Undo back to the step position — no clone, no allocation.
// Domains without Undo take the historical clone-per-candidate path, which
// itself recycles scratch states through a free list when the domain
// implements game.Copier. Both traversals consume the random stream
// identically, so for a fixed seed they return bit-identical Results
// (Options.NoUndo forces the clone path; the equivalence tests pin this).
//
// The search is instrumented through the Meter interface: every simulated
// move, every undo and every position clone reports work units. The
// virtual-time cluster transport uses those units to charge simulated CPU
// time, which is how the repository regenerates the paper's wall-clock
// tables on arbitrary simulated cluster topologies (see internal/mpi and
// internal/harness).
package core

import (
	"fmt"
	"math"

	"repro/internal/game"
	"repro/internal/rng"
)

// Meter receives work-accounting callbacks from the search. Implementations
// must be cheap; the search calls Add once per game step and per clone.
type Meter interface {
	// Add reports n abstract work units. One simulated move costs one unit;
	// a position clone costs CloneCost units.
	Add(n int64)
}

// CloneCost is the metered cost of one position clone, in units of one
// simulated move. Cloning a Morpion position costs roughly as much as a
// handful of incremental moves; the exact constant only shifts absolute
// times, not speedup shapes.
const CloneCost = 4

// UndoCost is the metered cost of one Undo on the allocation-free
// traversal. Reverting a move is the same incremental bookkeeping as
// playing one, so it is charged like a move, not like a clone.
const UndoCost = 1

// nopMeter is used when the caller does not need work accounting.
type nopMeter struct{}

func (nopMeter) Add(int64) {}

// Result is the outcome of a search from some position: the terminal score
// reached and the move sequence leading there from the searched position.
type Result struct {
	Score    float64
	Sequence []game.Move
}

// Stats are cumulative instrumentation counters of a Searcher.
type Stats struct {
	Playouts int64 // number of random playouts run
	Steps    int64 // moves played inside simulations (incl. argmax play)
	Clones   int64 // position clones (zero on the undo traversal)
	Undos    int64 // moves reverted by the undo traversal
}

// Options configure a Searcher.
type Options struct {
	// Meter receives work units; nil disables accounting.
	Meter Meter
	// Memorize enables the best-sequence memory of the paper's nested
	// rollout (lines 7–10 of the pseudocode). Disabling it yields the
	// older "reflexive" behaviour (Cazenave 2007) where the argmax move is
	// always played even when it scores worse than a previously found
	// sequence. Used as an ablation.
	Memorize bool
	// Stop, when non-nil, is polled during the search; once it returns
	// true the search stops branching and completes the current game with
	// cheap random playouts so that a full sequence is still returned.
	Stop func() bool
	// NoUndo forces the clone-per-candidate traversal even when the domain
	// implements game.Undoer. Used by ablations, benchmarks and the
	// equivalence tests that pin undo-vs-clone determinism; leave it false
	// to let the searcher take the allocation-free fast path.
	NoUndo bool
	// Evaluator, when non-nil, guides the level-0 playouts: each playout
	// step samples the next move proportionally to the evaluator's weights
	// instead of uniformly. Nil keeps the paper's uniform playout
	// bit-identically (the uniform path draws from the random stream
	// exactly as before). See game.Evaluator for the purity contract.
	Evaluator game.Evaluator
}

// DefaultOptions returns the configuration matching the paper: best-sequence
// memorization on, no cancellation, no metering.
func DefaultOptions() Options {
	return Options{Memorize: true}
}

// Searcher runs nested Monte-Carlo searches. It owns per-level scratch
// buffers, so it is not safe for concurrent use: create one Searcher per
// goroutine (the parallel layer creates one per simulated process).
type Searcher struct {
	rng   *rng.Rand
	opt   Options
	meter Meter
	stats Stats

	movebuf []game.Move // shared scratch for move lists at sample level
	levels  []levelBuf  // per-recursion-level scratch

	// eval guides level-0 playouts (see Options.Evaluator); wbuf is its
	// reusable weight scratch. eval starts as Options.Evaluator and can be
	// swapped per job with SetEvaluator on long-lived worker searchers.
	eval game.Evaluator
	wbuf []float64

	// undo is non-nil while the current top-level search traverses with
	// Play/Undo on the single mutable root state (capability-checked once
	// in Nested). When nil, the clone-per-candidate fallback runs.
	undo game.Undoer

	// scratch is the free list of the clone fallback: released candidate
	// states of game.Copier domains, recycled via CopyFrom so the fallback
	// stops allocating after warmup.
	scratch StatePool
}

type levelBuf struct {
	moves   []game.Move // candidate move list
	scratch []game.Move // suffix of the candidate being evaluated
	best    []game.Move // memorized best suffix
}

// NewSearcher returns a Searcher drawing randomness from r.
func NewSearcher(r *rng.Rand, opt Options) *Searcher {
	if r == nil {
		panic("core: NewSearcher needs a random source")
	}
	m := opt.Meter
	if m == nil {
		m = nopMeter{}
	}
	return &Searcher{rng: r, opt: opt, meter: m, eval: opt.Evaluator}
}

// SetEvaluator swaps the playout evaluator (nil restores the paper's
// uniform playout). Long-lived worker searchers serve jobs with differing
// evaluator configurations; swapping between jobs is what keeps a job's
// result independent of the worker that runs it.
func (s *Searcher) SetEvaluator(e game.Evaluator) { s.eval = e }

// Stats returns the cumulative instrumentation counters.
func (s *Searcher) Stats() Stats { return s.stats }

// Reseed resets the searcher's random source to the stream-th independent
// stream of the family identified by seed (see rng.SeedStream). Persistent
// workers that serve one rollout per logical job reseed before every job,
// which is what makes a job's result independent of the worker that runs
// it and of whatever ran on that worker before.
func (s *Searcher) Reseed(seed, stream uint64) { s.rng.SeedStream(seed, stream) }

// Sample plays uniformly random moves on st until the game ends and returns
// the terminal score and the moves played. st is mutated to the terminal
// position. This is the paper's "sample" function.
func (s *Searcher) Sample(st game.State) Result {
	var seq []game.Move
	score := s.sample(st, &seq)
	return Result{Score: score, Sequence: seq}
}

func (s *Searcher) sample(st game.State, seq *[]game.Move) float64 {
	s.stats.Playouts++
	steps := int64(0)
	for {
		s.movebuf = st.LegalMoves(s.movebuf[:0])
		if len(s.movebuf) == 0 {
			break
		}
		var m game.Move
		if s.eval == nil {
			m = s.movebuf[s.rng.Intn(len(s.movebuf))]
		} else {
			m = s.movebuf[s.pickWeighted(st)]
		}
		st.Play(m)
		*seq = append(*seq, m)
		steps++
	}
	s.stats.Steps += steps
	s.meter.Add(steps)
	return st.Score()
}

// pickWeighted returns the index of the next playout move in s.movebuf,
// sampled proportionally to the evaluator's weights. Degenerate weight
// vectors (zero or negative total, NaN/Inf) fall back to a uniform draw so
// an evaluator with "no opinion" — or a buggy one — can never wedge a
// playout; both branches consume exactly one draw from the stream.
func (s *Searcher) pickWeighted(st game.State) int {
	s.wbuf = s.eval.Evaluate(game.EvalRequest{State: st, Moves: s.movebuf}, s.wbuf[:0])
	total := 0.0
	for _, w := range s.wbuf {
		total += w
	}
	if len(s.wbuf) != len(s.movebuf) || !(total > 0) || math.IsInf(total, 1) {
		return s.rng.Intn(len(s.movebuf))
	}
	x := s.rng.Float64() * total
	for i, w := range s.wbuf {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(s.movebuf) - 1 // rounding spill lands on the last move
}

// Nested runs a level-`level` nested search from st and returns the best
// terminal score found and the move sequence reaching it from st. st itself
// is left at the terminal position of the played game. Level 0 is Sample.
//
// This is the paper's "nested" function; the argmax over moves evaluates
// each move with a level-(level−1) search. When st implements game.Undoer
// (and Options.NoUndo is unset) the evaluation plays the candidate on st
// itself and rewinds with Undo — the allocation-free fast path; otherwise
// each candidate is evaluated on a clone. Both paths return bit-identical
// results for the same random stream.
func (s *Searcher) Nested(st game.State, level int) Result {
	if level < 0 {
		panic(fmt.Sprintf("core: negative nesting level %d", level))
	}
	if u, ok := st.(game.Undoer); ok && !s.opt.NoUndo {
		s.undo = u
		defer func() { s.undo = nil }()
	}
	var seq []game.Move
	score := s.nested(st, level, &seq)
	return Result{Score: score, Sequence: seq}
}

// cloneFor returns a state equal to st for candidate evaluation on the
// clone fallback, recycling a released scratch state via the StatePool.
// The metered cost is CloneCost either way: recycling changes allocation
// pressure, not the simulated work model.
func (s *Searcher) cloneFor(st game.State) game.State {
	s.stats.Clones++
	s.meter.Add(CloneCost)
	return s.scratch.Get(st)
}

// nested implements one level of the paper's nested rollout. The suffix of
// moves played from the input position is appended to out.
func (s *Searcher) nested(st game.State, level int, out *[]game.Move) float64 {
	if level == 0 {
		return s.sample(st, out)
	}
	for len(s.levels) <= level {
		s.levels = append(s.levels, levelBuf{})
	}
	lb := &s.levels[level]

	// Memorized best game (paper lines 1, 7–9): bestScore is the score of
	// the best terminal sequence seen at this level, lb.best the not yet
	// replayed suffix of that sequence (its head is the next move to play).
	bestScore := 0.0
	haveBest := false
	lb.best = lb.best[:0]

	for {
		lb.moves = st.LegalMoves(lb.moves[:0])
		if len(lb.moves) == 0 {
			return st.Score()
		}
		if s.opt.Stop != nil && s.opt.Stop() {
			// Cancelled: finish the game cheaply so the caller still gets
			// a complete sequence, preferring the memorized best suffix.
			return s.finishCancelled(st, lb, out)
		}

		// Iterate over a stable copy of the move list: lb.moves is only
		// rewritten by this frame (recursion uses strictly lower levels),
		// but the re-fetch at the top of the loop reuses its backing array.
		moves := lb.moves

		// Argmax over the moves of this step (paper lines 3–6). On the
		// undo traversal the candidate is played on st itself and the
		// lower search's whole game is rewound afterwards; on the clone
		// fallback it is played on a (recycled) copy.
		stepScore := 0.0
		stepMove := moves[0]
		stepFirst := true
		for _, m := range moves {
			var sc float64
			lb.scratch = lb.scratch[:0]
			if s.undo != nil {
				depth := st.MovesPlayed()
				st.Play(m)
				s.meter.Add(1)
				s.stats.Steps++
				sc = s.nested(st, level-1, &lb.scratch)
				undone := int64(st.MovesPlayed() - depth)
				for st.MovesPlayed() > depth {
					s.undo.Undo()
				}
				s.stats.Undos += undone
				s.meter.Add(UndoCost * undone)
			} else {
				child := s.cloneFor(st)
				child.Play(m)
				s.meter.Add(1)
				s.stats.Steps++
				sc = s.nested(child, level-1, &lb.scratch)
				s.scratch.Put(child)
			}
			if stepFirst || sc > stepScore {
				stepScore = sc
				stepMove = m
				stepFirst = false
			}
			// Paper line 7: a strictly better score replaces the memorized
			// best sequence, which is m followed by the lower search's game.
			if !haveBest || sc > bestScore {
				bestScore = sc
				haveBest = true
				lb.best = append(lb.best[:0], m)
				lb.best = append(lb.best, lb.scratch...)
			}
		}

		// Paper line 10: play the next move of the best sequence. In
		// reflexive mode (no memory, Cazenave 2007) play this step's argmax
		// move instead, even if an earlier sequence scored higher.
		var mv game.Move
		if s.opt.Memorize && haveBest && len(lb.best) > 0 {
			mv = lb.best[0]
			lb.best = lb.best[1:]
		} else {
			mv = stepMove
		}

		st.Play(mv)
		s.meter.Add(1)
		s.stats.Steps++
		*out = append(*out, mv)
	}
}

// finishCancelled completes the game after a Stop signal: it replays the
// memorized best suffix if one exists, then samples to the end.
func (s *Searcher) finishCancelled(st game.State, lb *levelBuf, out *[]game.Move) float64 {
	for _, m := range lb.best {
		st.Play(m)
		s.meter.Add(1)
		s.stats.Steps++
		*out = append(*out, m)
	}
	lb.best = lb.best[:0]
	if st.Terminal() {
		return st.Score()
	}
	return s.sample(st, out)
}
