package core

// Tests for the transposition-cache integration (DESIGN.md §11). The
// central properties:
//
//   - purity: a cached (derived-mode) search's result is a function of
//     position content, level and scope only — independent of the
//     searcher's seed and of the cache's hit/miss pattern, which is what
//     makes cross-job sharing sound;
//   - verify mode: recomputing every hit and asserting the match must
//     pass on all three domains (a failing assertion panics);
//   - soundness: cached results still replay to their reported score.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/rng"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// cacheRoots is one small root per domain, each fast enough for a level-2
// cached search in a unit test.
func cacheRoots() map[string]game.State {
	return map[string]game.State{
		"morpion":  morpion.New(morpion.Var4D),
		"samegame": samegame.NewRandom(5, 5, 3, 3),
		"sudoku":   sudoku.New(2),
	}
}

// TestNestedCachedVerifyAllDomains runs a verify-mode cached search on
// every domain: every hit is recomputed and compared, so completing
// without panic pins that cached results are bit-reproducible. The warm
// second call maximizes hits.
func TestNestedCachedVerifyAllDomains(t *testing.T) {
	for name, root := range cacheRoots() {
		t.Run(name, func(t *testing.T) {
			tc := cache.New(0)
			s := NewSearcher(rng.New(1), Options{Memorize: true})
			s.SetCache(tc, cache.Scope("", true, 0), true)

			res := s.NestedCached(root.Clone(), 2)
			replayCheck(t, root, res)
			warm := s.NestedCached(root.Clone(), 2)
			if warm.Score != res.Score {
				t.Fatalf("warm cached search scored %v, cold scored %v", warm.Score, res.Score)
			}
			st := tc.Stats()
			if st.Misses == 0 {
				t.Fatal("cold search recorded no misses")
			}
			if st.Hits == 0 {
				t.Fatal("warm search recorded no hits")
			}
		})
	}
}

// TestNestedCachedSeedIndependent pins purity: with a cache attached, the
// whole call draws from position-derived streams, so two searchers with
// different seeds — and different caches, so neither sees the other's
// entries — must return identical results.
func TestNestedCachedSeedIndependent(t *testing.T) {
	for name, root := range cacheRoots() {
		t.Run(name, func(t *testing.T) {
			scope := cache.Scope("", true, 0)
			a := NewSearcher(rng.New(1), Options{Memorize: true})
			a.SetCache(cache.New(0), scope, false)
			b := NewSearcher(rng.New(99999), Options{Memorize: true})
			b.SetCache(cache.New(0), scope, false)

			ra := a.NestedCached(root.Clone(), 1)
			rb := b.NestedCached(root.Clone(), 1)
			if ra.Score != rb.Score || len(ra.Sequence) != len(rb.Sequence) {
				t.Fatalf("seed changed a cached search: %v/%d vs %v/%d",
					ra.Score, len(ra.Sequence), rb.Score, len(rb.Sequence))
			}
			for i := range ra.Sequence {
				if ra.Sequence[i] != rb.Sequence[i] {
					t.Fatalf("sequences differ at move %d", i)
				}
			}
		})
	}
}

// TestNestedCachedHitInvariant pins hit/miss-pattern independence the
// direct way: a searcher sharing a warm cache (all sub-searches hit) must
// return exactly what a cold cache produced.
func TestNestedCachedHitInvariant(t *testing.T) {
	for name, root := range cacheRoots() {
		t.Run(name, func(t *testing.T) {
			scope := cache.Scope("", true, 0)
			tc := cache.New(0)
			cold := NewSearcher(rng.New(1), Options{Memorize: true})
			cold.SetCache(tc, scope, false)
			rc := cold.NestedCached(root.Clone(), 2)

			warm := NewSearcher(rng.New(2), Options{Memorize: true})
			warm.SetCache(tc, scope, false)
			rw := warm.NestedCached(root.Clone(), 2)

			if rc.Score != rw.Score || len(rc.Sequence) != len(rw.Sequence) {
				t.Fatalf("warm cache changed the result: %v/%d vs %v/%d",
					rc.Score, len(rc.Sequence), rw.Score, len(rw.Sequence))
			}
			for i := range rc.Sequence {
				if rc.Sequence[i] != rw.Sequence[i] {
					t.Fatalf("sequences differ at move %d", i)
				}
			}
			if tc.Stats().Hits == 0 {
				t.Fatal("warm search never hit the shared cache")
			}
		})
	}
}

// TestNestedCachedScopeIsolation pins that results computed under one
// scope are invisible under another: a different scope on the same shared
// cache must recompute (all misses), not hit.
func TestNestedCachedScopeIsolation(t *testing.T) {
	tc := cache.New(0)
	root := sudoku.New(2)

	a := NewSearcher(rng.New(1), Options{Memorize: true})
	a.SetCache(tc, cache.Scope("", true, 0), false)
	a.NestedCached(root.Clone(), 1)
	hitsBefore := tc.Stats().Hits

	b := NewSearcher(rng.New(1), Options{})
	b.SetCache(tc, cache.Scope("", false, 0), false)
	b.NestedCached(root.Clone(), 1)
	if got := tc.Stats().Hits; got != hitsBefore {
		t.Fatalf("scope-b search hit scope-a entries (%d new hits)", got-hitsBefore)
	}
}

// TestNestedCacheOffUnchanged pins the cache-off bit-identity contract:
// attaching no cache leaves Nested exactly as it was (the golden pins and
// equivalence tests enforce this globally; this is the local sentinel).
func TestNestedCacheOffUnchanged(t *testing.T) {
	root := morpion.New(morpion.Var4D)
	a := NewSearcher(rng.New(7), Options{Memorize: true})
	plain := a.Nested(root.Clone(), 1)
	b := NewSearcher(rng.New(7), Options{Memorize: true})
	viaEntry := b.NestedCached(root.Clone(), 1) // nil cache: must fall back to Nested
	if plain.Score != viaEntry.Score || len(plain.Sequence) != len(viaEntry.Sequence) {
		t.Fatalf("NestedCached without a cache diverged: %v vs %v", plain.Score, viaEntry.Score)
	}
	for i := range plain.Sequence {
		if plain.Sequence[i] != viaEntry.Sequence[i] {
			t.Fatalf("sequences differ at move %d", i)
		}
	}
}

// TestNestedCachedStats pins the searcher-side hit/miss accounting
// surfaced through Stats.
func TestNestedCachedStats(t *testing.T) {
	tc := cache.New(0)
	s := NewSearcher(rng.New(1), Options{Memorize: true})
	s.SetCache(tc, cache.Scope("", true, 0), false)
	root := sudoku.New(2)
	s.NestedCached(root.Clone(), 1)
	s.NestedCached(root.Clone(), 1)
	st := s.Stats()
	if st.CacheMisses == 0 || st.CacheHits == 0 {
		t.Fatalf("searcher cache counters not maintained: %+v", st)
	}
}
