package morpion

import (
	"testing"

	"repro/internal/game"
	"repro/internal/rng"
)

// midGame returns a 5D position a dozen moves in — representative of where
// the nested search spends its argmax time.
func midGame(b *testing.B) *State {
	b.Helper()
	r := rng.New(1)
	s := New(Var5D)
	var buf []game.Move
	for i := 0; i < 12; i++ {
		buf = s.LegalMoves(buf[:0])
		s.Play(buf[r.Intn(len(buf))])
	}
	return s
}

// BenchmarkClone measures what the search used to pay per candidate move:
// a full deep copy of the position.
func BenchmarkClone(b *testing.B) {
	s := midGame(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

// BenchmarkPlayUndo measures what the search pays now: playing a candidate
// on the single mutable state and rewinding it. Compare with
// BenchmarkClone — the clone does not even include the Play.
func BenchmarkPlayUndo(b *testing.B) {
	s := midGame(b)
	var buf []game.Move
	buf = s.LegalMoves(buf[:0])
	if len(buf) == 0 {
		b.Fatal("mid-game position is terminal")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Play(buf[i%len(buf)])
		s.Undo()
	}
}

// BenchmarkCopyFrom measures the recycled-clone path used where shipping a
// position still requires a copy (parallel layers).
func BenchmarkCopyFrom(b *testing.B) {
	s := midGame(b)
	dst := New(Var5D)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.CopyFrom(s)
	}
}
