package morpion

import (
	"fmt"
	"strings"

	"repro/internal/game"
)

// Rendering
//
// Render draws the position as ASCII art in the style of the paper's
// figure 1: initial cross points are shown as "o", points added by moves as
// their move number (mod 100), and empty cells as ".". Only the bounding
// box of the occupied points (plus one cell of margin) is drawn.

// Render returns an ASCII drawing of the position.
func (s *State) Render() string {
	minX, minY, maxX, maxY := s.boundingBox()
	// widen one cell so the border of the game is visible
	minX, minY = max(0, minX-1), max(0, minY-1)
	maxX, maxY = min(s.w-1, maxX+1), min(s.w-1, maxY+1)

	// moveNum[cell] = 1-based index of the move that created the point.
	moveNum := make(map[int]int, len(s.seq))
	for i, m := range s.seq {
		base, d, k := unpackMove(m)
		moveNum[base+k*s.stepOf(d)] = i + 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  score=%d\n", s.v.Name, len(s.seq))
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			if x > minX {
				b.WriteByte(' ')
			}
			cell := y*s.w + x
			switch {
			case s.occ[cell] == 0:
				b.WriteString(" .")
			case moveNum[cell] != 0:
				fmt.Fprintf(&b, "%2d", moveNum[cell]%100)
			default:
				b.WriteString(" o")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// boundingBox returns the extent of occupied cells.
func (s *State) boundingBox() (minX, minY, maxX, maxY int) {
	minX, minY = s.w, s.w
	maxX, maxY = -1, -1
	for i, o := range s.occ {
		if o == 0 {
			continue
		}
		x, y := i%s.w, i/s.w
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	if maxX < 0 { // no points at all (cannot happen for real positions)
		return 0, 0, 0, 0
	}
	return
}

// RenderSequence replays seq from the initial position of v and renders the
// final grid. It is the figure-1 analogue: given a record sequence it draws
// the record board.
func RenderSequence(v Variant, seq []game.Move) (string, error) {
	s := New(v)
	for i, m := range seq {
		if !s.isLegal(m) {
			return "", fmt.Errorf("morpion: render: move %d is illegal", i)
		}
		s.Play(m)
	}
	return s.Render(), nil
}
