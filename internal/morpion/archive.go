package morpion

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/game"
)

// Archive is a store of good sequences for one variant, deduplicated up to
// the cross's symmetry group and kept sorted by score. It is the
// bookkeeping behind a record hunt: the paper reports "two new sequences
// of 80 moves", a claim that needs exactly this — validation, symmetry
// canonicalization, and deduplication of everything the search finds.
type Archive struct {
	v       Variant
	entries []ArchiveEntry
	seen    map[string]bool // canonical forms already stored
}

// ArchiveEntry is one stored sequence.
type ArchiveEntry struct {
	Score int
	Label string // provenance: who/what found it
	// Sequence is the notation of the sequence as found; Canonical its
	// symmetry-canonical form (the deduplication key).
	Sequence  string
	Canonical string
}

// NewArchive returns an empty archive for the variant.
func NewArchive(v Variant) *Archive {
	return &Archive{v: v, seen: map[string]bool{}}
}

// Variant returns the archive's rule set.
func (a *Archive) Variant() Variant { return a.v }

// Len returns the number of stored sequences.
func (a *Archive) Len() int { return len(a.entries) }

// Entries returns the stored sequences, best first.
func (a *Archive) Entries() []ArchiveEntry {
	return append([]ArchiveEntry(nil), a.entries...)
}

// Best returns the highest-scoring entry, or false when empty.
func (a *Archive) Best() (ArchiveEntry, bool) {
	if len(a.entries) == 0 {
		return ArchiveEntry{}, false
	}
	return a.entries[0], true
}

// Add validates seq, canonicalizes it, and stores it unless an equivalent
// sequence (up to symmetry) is already present. It reports whether the
// sequence was added.
func (a *Archive) Add(seq []game.Move, label string) (bool, error) {
	text, err := FormatSequence(a.v, seq)
	if err != nil {
		return false, fmt.Errorf("morpion: archive: %w", err)
	}
	canon, _, err := CanonicalSequence(a.v, seq)
	if err != nil {
		return false, fmt.Errorf("morpion: archive: %w", err)
	}
	if a.seen[canon] {
		return false, nil
	}
	a.seen[canon] = true
	a.entries = append(a.entries, ArchiveEntry{
		Score: len(seq), Label: label, Sequence: text, Canonical: canon,
	})
	sort.SliceStable(a.entries, func(i, j int) bool {
		return a.entries[i].Score > a.entries[j].Score
	})
	return true, nil
}

// AddText parses a sequence in notation form and adds it.
func (a *Archive) AddText(text, label string) (bool, error) {
	st, err := ParseSequence(a.v, text)
	if err != nil {
		return false, err
	}
	return a.Add(st.Sequence(), label)
}

// Save writes the archive as text: one line per entry,
// "score<TAB>label<TAB>sequence", best first, with a header line naming
// the variant.
func (a *Archive) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "morpion-archive %s\n", a.v.Name); err != nil {
		return err
	}
	for _, e := range a.entries {
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%s\n", e.Score, e.Label, e.Sequence); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadArchive reads an archive saved by Save, revalidating every sequence.
func LoadArchive(r io.Reader) (*Archive, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("morpion: archive: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 || header[0] != "morpion-archive" {
		return nil, fmt.Errorf("morpion: archive: bad header %q", sc.Text())
	}
	v, err := VariantByName(header[1])
	if err != nil {
		return nil, err
	}
	a := NewArchive(v)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("morpion: archive line %d: want score\\tlabel\\tsequence", line)
		}
		score, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("morpion: archive line %d: bad score: %v", line, err)
		}
		added, err := a.AddText(parts[2], parts[1])
		if err != nil {
			return nil, fmt.Errorf("morpion: archive line %d: %v", line, err)
		}
		if added {
			got := a.entries[len(a.entries)-1]
			// entries are sorted; find the just-added entry by canonical
			// form to check the recorded score.
			for _, e := range a.entries {
				if e.Label == parts[1] && e.Sequence == parts[2] {
					got = e
					break
				}
			}
			if got.Score != score {
				return nil, fmt.Errorf("morpion: archive line %d: recorded score %d but sequence has %d moves", line, score, got.Score)
			}
		}
	}
	return a, sc.Err()
}

// Merge adds every entry of other into a, returning how many were new.
func (a *Archive) Merge(other *Archive) (int, error) {
	if other.v.Name != a.v.Name {
		return 0, fmt.Errorf("morpion: archive: cannot merge %s into %s", other.v.Name, a.v.Name)
	}
	added := 0
	for _, e := range other.entries {
		ok, err := a.AddText(e.Sequence, e.Label)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}
