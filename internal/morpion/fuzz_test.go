package morpion

// Native fuzz target extending the pinned Play/Undo round-trip property
// (undo_test.go, core/equivalence_test.go) to arbitrary inputs: for ANY
// move sequence, every Undo must restore the position bit-exactly —
// score, move count and the exact ORDER of the legal-move list, captured
// as a position hash. The search's undo traversal is only equivalent to
// the clone traversal if this holds on every reachable position, not
// just the seeded ones.

import (
	"math"
	"testing"

	"repro/internal/game"
)

// fuzzHash folds the observable position state — move count, score and
// the ordered legal-move list — into one position hash (FNV-1a).
func fuzzHash(st game.State, buf []game.Move) (uint64, []game.Move) {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mix(uint64(st.MovesPlayed()))
	mix(math.Float64bits(st.Score()))
	buf = st.LegalMoves(buf[:0])
	mix(uint64(len(buf)))
	for _, m := range buf {
		mix(uint64(m))
	}
	return h, buf
}

// checkZobrist asserts the incrementally maintained game.Hasher hash
// equals a from-scratch recomputation over the occupancy and usage planes
// — the property the transposition cache keys on (a drifted incremental
// hash would silently alias unrelated positions).
func checkZobrist(t *testing.T, st *State, when string) {
	t.Helper()
	if got, want := st.Hash(), st.hashFromScratch(); got != want {
		t.Fatalf("%s: incremental hash %x != from-scratch %x", when, got, want)
	}
}

func FuzzPlayUndoRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{3, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})

	variants := []Variant{Var5T, Var5D, Var4T, Var4D}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		st := New(variants[int(data[0])%len(variants)])
		picks := data[1:]
		if len(picks) > 256 {
			picks = picks[:256]
		}

		var buf []game.Move
		var hashes []uint64
		h, buf := fuzzHash(st, buf)
		hashes = append(hashes, h)
		checkZobrist(t, st, "fresh position")

		var legal []game.Move
		for _, b := range picks {
			legal = st.LegalMoves(legal[:0])
			if len(legal) == 0 {
				break
			}
			st.Play(legal[int(b)%len(legal)])
			h, buf = fuzzHash(st, buf)
			hashes = append(hashes, h)
			checkZobrist(t, st, "after play")
		}

		for depth := len(hashes) - 1; depth > 0; depth-- {
			st.Undo()
			h, buf = fuzzHash(st, buf)
			if h != hashes[depth-1] {
				t.Fatalf("undo to depth %d: position hash %x != %x (score/move-order not restored)",
					depth-1, h, hashes[depth-1])
			}
			checkZobrist(t, st, "after undo")
		}
		if st.MovesPlayed() != 0 {
			t.Fatalf("fully rewound position still has %d moves", st.MovesPlayed())
		}
	})
}
