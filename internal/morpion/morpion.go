// Package morpion implements the Morpion Solitaire puzzle, the evaluation
// domain of the paper.
//
// Morpion Solitaire is played on a grid of lattice points. The initial
// position is a cross of 36 points. A move places one new point and draws a
// line of k consecutive points (k=5 in the paper's version) through it:
// every other point of the line must already be present. Lines are
// horizontal, vertical or diagonal. The goal is to play as many moves as
// possible; the game score is the number of moves played.
//
// Two families of rules restrict how lines in the same direction may relate:
//
//   - Touching (T): two lines in the same direction may share an endpoint
//     but not a unit segment (link) of the grid.
//   - Disjoint (D): two lines in the same direction may not share any point.
//
// The paper uses the 5D (disjoint, line length 5) variant; 5T, 4T and 4D are
// the standard companions from the literature (Demaine et al. 2006) and are
// used here as cheaper stand-ins for scaled-down experiments. Morpion
// Solitaire is NP-hard (Demaine et al.), has a large state space and no good
// heuristic, which is exactly why the paper evaluates nested Monte-Carlo
// search on it.
package morpion

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/rng"
)

// Incremental position hashing (game.Hasher). The hash is a Zobrist XOR
// over the cells of the five planes (occupancy plus the four per-direction
// usage planes) on top of a per-variant base salt. Feature keys are derived
// with one rng.Mix per cell — boards are user-sizeable, so a precomputed
// table cannot cover every size, and a Mix costs a few nanoseconds against
// a Play whose move-list maintenance walks the whole legal list anyway.
const hashSalt = 0x4d6f7270696f6e88 // "Morpion" flavoured

// planeSalt[p] salts the feature keys of plane p (0 = occupancy, 1+d =
// usage of direction d), fixed at init so hashes are stable across
// processes.
var planeSalt [1 + numDirs]uint64

func init() {
	for p := range planeSalt {
		planeSalt[p] = rng.Fold(hashSalt, uint64(p))
	}
}

// baseHash returns the variant-dependent starting value of the hash.
func baseHash(v Variant, w int) uint64 {
	disjoint := uint64(0)
	if v.Disjoint {
		disjoint = 1
	}
	return rng.Fold(hashSalt, uint64(v.LineLen), disjoint, uint64(w))
}

// Dir indexes the four line directions.
type Dir uint8

// The four directions a line can take. Their unit deltas are in dirDX/dirDY.
const (
	DirE    Dir = iota // east: dx=1, dy=0 (horizontal)
	DirS               // south: dx=0, dy=1 (vertical)
	DirSE              // south-east: dx=1, dy=1 (main diagonal)
	DirNE              // north-east: dx=1, dy=-1 (anti-diagonal)
	numDirs = 4
)

var dirDX = [numDirs]int{1, 0, 1, 1}
var dirDY = [numDirs]int{0, 1, 1, -1}
var dirNames = [numDirs]string{"E", "S", "SE", "NE"}

// String returns the compass name of the direction.
func (d Dir) String() string {
	if d < numDirs {
		return dirNames[d]
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Variant describes one rule set of Morpion Solitaire.
type Variant struct {
	Name string
	// LineLen is the number of points in a line (4 or 5 in the standard
	// variants).
	LineLen int
	// Disjoint selects the D rule (no shared point between same-direction
	// lines); false selects the T rule (no shared link).
	Disjoint bool
	// BoardSize is the side of the square working grid. It is sized so that
	// record-length games cannot reach the border.
	BoardSize int
}

// The four standard variants. The paper's experiments all use Var5D;
// Var4D and Var4T are the scaled-down stand-ins used by the fast
// experiment presets, and Var5T is the variant with the longest known games.
var (
	Var5T = Variant{Name: "5T", LineLen: 5, Disjoint: false, BoardSize: 64}
	Var5D = Variant{Name: "5D", LineLen: 5, Disjoint: true, BoardSize: 52}
	Var4T = Variant{Name: "4T", LineLen: 4, Disjoint: false, BoardSize: 40}
	Var4D = Variant{Name: "4D", LineLen: 4, Disjoint: true, BoardSize: 40}
)

// VariantByName returns the standard variant with the given name.
func VariantByName(name string) (Variant, error) {
	switch name {
	case "5T":
		return Var5T, nil
	case "5D":
		return Var5D, nil
	case "4T":
		return Var4T, nil
	case "4D":
		return Var4D, nil
	}
	return Variant{}, fmt.Errorf("morpion: unknown variant %q (want 5T, 5D, 4T or 4D)", name)
}

// crossRows5 describes the standard 36-point initial cross of the
// lines-of-5 variants inside its 10×10 bounding box; crossRows5[y] lists the
// x coordinates of initial points.
var crossRows5 = [][]int{
	{3, 4, 5, 6},
	{3, 6},
	{3, 6},
	{0, 1, 2, 3, 6, 7, 8, 9},
	{0, 9},
	{0, 9},
	{0, 1, 2, 3, 6, 7, 8, 9},
	{3, 6},
	{3, 6},
	{3, 4, 5, 6},
}

// crossRows4 is the scaled analogue for the lines-of-4 variants: the same
// Greek-cross outline built from segments of 3 points (24 points, 7×7 box).
var crossRows4 = [][]int{
	{2, 3, 4},
	{2, 4},
	{0, 1, 2, 4, 5, 6},
	{0, 6},
	{0, 1, 2, 4, 5, 6},
	{2, 4},
	{2, 3, 4},
}

// crossFor returns the initial cross layout for a line length.
func crossFor(lineLen int) [][]int {
	if lineLen <= 4 {
		return crossRows4
	}
	return crossRows5
}

// CrossPoints returns the number of points in the initial cross of the
// variant (36 for lines of 5, 24 for lines of 4).
func (v Variant) CrossPoints() int {
	n := 0
	for _, row := range crossFor(v.LineLen) {
		n += len(row)
	}
	return n
}

// State is a Morpion Solitaire position with incrementally maintained legal
// moves. It implements game.State. The zero value is not usable; call New.
type State struct {
	v Variant
	w int // board side

	// planes is the single backing array for the five cell planes below;
	// keeping them contiguous makes Clone a single allocation plus copy,
	// which matters because nested search clones on every candidate move.
	planes []uint8
	// occ[i] is nonzero when grid cell i holds a point.
	occ []uint8
	// used[d][i] marks, for direction d, either the point i (Disjoint rule)
	// or the unit link whose lower endpoint is i (Touching rule) as consumed
	// by an existing line.
	used [numDirs][]uint8

	moves []game.Move // current legal moves, deterministic order
	seq   []game.Move // moves played since the initial position

	// Undo history. Every Play records one histEntry; the moves it removed
	// from the legal list (and their original indices) are pushed onto the
	// histMoves/histIdx arena stacks rather than per-entry slices, so the
	// bookkeeping allocates nothing once the arenas have grown to the
	// game's depth — Play/Undo is allocation-free in steady state, which is
	// what lets nested search traverse with Undo instead of Clone.
	hist      []histEntry
	histMoves []game.Move // arena: removed moves, stacked per entry
	histIdx   []int32     // arena: their original list positions, ascending

	// originX/Y is the top-left corner of the cross's bounding box, used by
	// the human-readable notation so coordinates are board-size independent.
	originX, originY int

	// hash is the incremental Zobrist hash of the plane content, maintained
	// by Play and Undo. See game.Hasher.
	hash uint64
}

// histEntry is the undo record of one Play. The removed moves occupy the
// top numRemoved slots of the histMoves/histIdx arenas (undo is LIFO, so
// offsets are implicit in the stack discipline).
type histEntry struct {
	move       game.Move
	numRemoved int32 // moves deleted from the legal list by this move
	numAdded   int32 // moves appended to the list by this move
}

// New returns the initial position of the given variant, with the standard
// 36-point cross centred on the working grid.
func New(v Variant) *State {
	if v.LineLen < 3 || v.LineLen > 8 {
		panic(fmt.Sprintf("morpion: unsupported line length %d", v.LineLen))
	}
	cross := crossFor(v.LineLen)
	w := v.BoardSize
	if w < len(cross)+4*v.LineLen {
		panic(fmt.Sprintf("morpion: board size %d too small for line length %d", w, v.LineLen))
	}
	s := &State{v: v, w: w}
	s.attachPlanes(make([]uint8, 5*w*w))
	s.originX = (w - len(cross)) / 2
	s.originY = (w - len(cross)) / 2
	s.hash = baseHash(v, w)
	for y, xs := range cross {
		for _, x := range xs {
			idx := (s.originY+y)*w + s.originX + x
			s.occ[idx] = 1
			s.hash ^= rng.Mix(planeSalt[0], uint64(idx))
		}
	}
	s.moves = s.scanAllMoves(nil)
	return s
}

// attachPlanes slices the five cell planes out of one backing array.
func (s *State) attachPlanes(planes []uint8) {
	cells := s.w * s.w
	s.planes = planes
	s.occ = planes[:cells:cells]
	for d := 0; d < numDirs; d++ {
		s.used[d] = planes[(1+d)*cells : (2+d)*cells : (2+d)*cells]
	}
}

// Variant returns the rule set of the position.
func (s *State) Variant() Variant { return s.v }

// BoardSize returns the side length of the working grid.
func (s *State) BoardSize() int { return s.w }

// Occupied reports whether the grid cell (x, y) holds a point.
func (s *State) Occupied(x, y int) bool {
	return x >= 0 && x < s.w && y >= 0 && y < s.w && s.occ[y*s.w+x] != 0
}

// MovesPlayed returns the number of moves played from the initial cross.
func (s *State) MovesPlayed() int { return len(s.seq) }

// Sequence returns a copy of the moves played so far.
func (s *State) Sequence() []game.Move {
	return append([]game.Move(nil), s.seq...)
}

// Score returns the game score: the number of moves played. This is the
// quantity the search maximizes (paper §III).
func (s *State) Score() float64 { return float64(len(s.seq)) }

// Terminal reports whether no legal move remains.
func (s *State) Terminal() bool { return len(s.moves) == 0 }

// LegalMoves appends the legal moves to buf and returns it.
func (s *State) LegalMoves(buf []game.Move) []game.Move {
	return append(buf, s.moves...)
}

// NumLegalMoves returns the current branching factor.
func (s *State) NumLegalMoves() int { return len(s.moves) }

// Clone returns a deep copy of the position. Per the game.State
// clone-with-undo contract, the clone does NOT inherit the source's undo
// history: it starts with an empty history whose floor is the clone point,
// so a clone can be searched forward with Play/Undo but rewinds at most
// back to the position it was cloned from (Undo past the floor panics, and
// Reset rewinds a clone only to the clone point). Dropping the history is
// what keeps Clone a handful of slice copies regardless of game length.
func (s *State) Clone() game.State {
	c := &State{
		v:       s.v,
		w:       s.w,
		moves:   append([]game.Move(nil), s.moves...),
		seq:     append([]game.Move(nil), s.seq...),
		originX: s.originX,
		originY: s.originY,
		hash:    s.hash,
	}
	c.attachPlanes(append([]uint8(nil), s.planes...))
	return c
}

// CopyFrom implements game.Copier: it overwrites s with a deep copy of src,
// reusing s's backing arrays where sizes allow (a variant or board-size
// change reallocates them, so cross-variant copies are safe, just not
// free). Like Clone, the copy starts with an empty undo history floored at
// the copied position. src must be a Morpion state.
func (s *State) CopyFrom(src game.State) {
	o, ok := src.(*State)
	if !ok {
		panic("morpion: CopyFrom with a non-Morpion state")
	}
	s.v = o.v
	if s.w != o.w {
		s.w = o.w
		s.attachPlanes(make([]uint8, len(o.planes)))
	}
	copy(s.planes, o.planes)
	s.moves = append(s.moves[:0], o.moves...)
	s.seq = append(s.seq[:0], o.seq...)
	s.originX, s.originY = o.originX, o.originY
	s.hash = o.hash
	s.hist = s.hist[:0]
	s.histMoves = s.histMoves[:0]
	s.histIdx = s.histIdx[:0]
}

// Hash implements game.Hasher: the incremental Zobrist hash of the plane
// content. Positions with equal planes hash equal regardless of the move
// order that produced them (note the legal-move LIST order is
// history-dependent and is deliberately not hashed; cache consumers that
// depend on it must select moves order-independently — see
// core.Searcher's derived mode).
func (s *State) Hash() uint64 { return s.hash }

// hashFromScratch recomputes the position hash from the planes alone. It
// is the oracle the fuzz tests compare the incremental hash against.
func (s *State) hashFromScratch() uint64 {
	h := baseHash(s.v, s.w)
	for idx, occ := range s.occ {
		if occ != 0 {
			h ^= rng.Mix(planeSalt[0], uint64(idx))
		}
	}
	for d := 0; d < numDirs; d++ {
		for idx, used := range s.used[d] {
			if used != 0 {
				h ^= rng.Mix(planeSalt[1+d], uint64(idx))
			}
		}
	}
	return h
}

// EncodedSize implements game.Sizer: an upper bound on the bytes needed to
// ship this position between cluster processes (occupancy and usage planes
// bit-packed, plus the move sequence). The virtual network model charges
// this per position message.
func (s *State) EncodedSize() int {
	cells := s.w * s.w
	return cells*5/8 + 4*len(s.seq) + 16
}

// --- move encoding -------------------------------------------------------

// A move is packed into a game.Move as:
//
//	bits 0..15  : base cell index (start of the line, lowest point)
//	bits 16..17 : direction
//	bits 18..20 : offset k of the new point within the line (0..LineLen-1)
//
// The base point is the line endpoint with the smallest (y, x), i.e. the
// line extends from base towards +delta.

func packMove(base int, d Dir, k int) game.Move {
	return game.Move(uint64(base) | uint64(d)<<16 | uint64(k)<<18)
}

func unpackMove(m game.Move) (base int, d Dir, k int) {
	return int(m & 0xffff), Dir(m >> 16 & 0x3), int(m >> 18 & 0x7)
}

// MoveParts exposes the decoded move for rendering and notation: the board
// cell of the new point, the line's base cell, its direction and the offset
// of the new point in the line.
func (s *State) MoveParts(m game.Move) (newX, newY, baseX, baseY int, d Dir, k int) {
	base, d, k := unpackMove(m)
	baseX, baseY = base%s.w, base/s.w
	newX = baseX + k*dirDX[d]
	newY = baseY + k*dirDY[d]
	return
}

// --- legality ------------------------------------------------------------

// lineCells writes the cell indices of the line (base, d) into cells and
// reports whether the whole line is on the board.
func (s *State) lineCells(baseX, baseY int, d Dir, cells []int) bool {
	dx, dy := dirDX[d], dirDY[d]
	L := s.v.LineLen
	endX := baseX + (L-1)*dx
	endY := baseY + (L-1)*dy
	if baseX < 0 || baseY < 0 || baseX >= s.w || baseY >= s.w ||
		endX < 0 || endY < 0 || endX >= s.w || endY >= s.w {
		return false
	}
	idx := baseY*s.w + baseX
	step := dy*s.w + dx
	for i := 0; i < L; i++ {
		cells[i] = idx
		idx += step
	}
	return true
}

// usageFree reports whether the line with the given cells violates the
// variant's same-direction constraint against already-drawn lines.
func (s *State) usageFree(cells []int, d Dir) bool {
	u := s.used[d]
	L := s.v.LineLen
	if s.v.Disjoint {
		// D rule: no point of the new line may belong to an existing line
		// of the same direction.
		for i := 0; i < L; i++ {
			if u[cells[i]] != 0 {
				return false
			}
		}
		return true
	}
	// T rule: no unit link of the new line may belong to an existing line
	// of the same direction. A link is identified by its lower cell.
	for i := 0; i < L-1; i++ {
		if u[cells[i]] != 0 {
			return false
		}
	}
	return true
}

// candidate checks whether the line (baseX, baseY, d) is a legal move and,
// if so, returns the packed move. A legal move has the whole line on the
// board, exactly one empty point, and satisfies the usage constraint.
func (s *State) candidate(baseX, baseY int, d Dir, cells []int) (game.Move, bool) {
	if !s.lineCells(baseX, baseY, d, cells) {
		return 0, false
	}
	L := s.v.LineLen
	empty := -1
	for i := 0; i < L; i++ {
		if s.occ[cells[i]] == 0 {
			if empty >= 0 {
				return 0, false // two empty points
			}
			empty = i
		}
	}
	if empty < 0 {
		return 0, false // line already complete
	}
	if !s.usageFree(cells, d) {
		return 0, false
	}
	return packMove(baseY*s.w+baseX, d, empty), true
}

// scanAllMoves recomputes the full legal move list from scratch. Used to
// initialize the position and by tests as an oracle for the incremental
// update.
func (s *State) scanAllMoves(buf []game.Move) []game.Move {
	cells := make([]int, s.v.LineLen)
	for y := 0; y < s.w; y++ {
		for x := 0; x < s.w; x++ {
			for d := Dir(0); d < numDirs; d++ {
				if m, ok := s.candidate(x, y, d, cells); ok {
					buf = append(buf, m)
				}
			}
		}
	}
	return buf
}

// --- play / undo ---------------------------------------------------------

// Play applies a legal move: places the new point, claims the line's usage,
// and updates the legal move list incrementally. Playing a move that is not
// currently legal corrupts the position; the search only plays moves it got
// from LegalMoves.
func (s *State) Play(m game.Move) {
	base, d, k := unpackMove(m)
	L := s.v.LineLen
	step := dirDY[d]*s.w + dirDX[d]
	newCell := base + k*step

	s.occ[newCell] = 1
	s.hash ^= rng.Mix(planeSalt[0], uint64(newCell))
	u := s.used[d]
	uSalt := planeSalt[1+d]
	if s.v.Disjoint {
		idx := base
		for i := 0; i < L; i++ {
			u[idx] = 1
			s.hash ^= rng.Mix(uSalt, uint64(idx))
			idx += step
		}
	} else {
		idx := base
		for i := 0; i < L-1; i++ {
			u[idx] = 1
			s.hash ^= rng.Mix(uSalt, uint64(idx))
			idx += step
		}
	}
	s.seq = append(s.seq, m)

	// Incremental move list maintenance. Two invalidation causes:
	//  1. a listed move's new point is newCell, which is now occupied;
	//  2. a listed move's line conflicts with the just-claimed line under
	//     the same-direction rule.
	// And one creation cause: lines through newCell that now have exactly
	// one empty point. Removed moves go onto the arena stacks so Undo can
	// restore the list in its exact pre-Play order.
	removed := int32(0)
	keep := s.moves[:0]
	for i, mv := range s.moves {
		if s.moveInvalidated(mv, newCell, base, d, step) {
			s.histMoves = append(s.histMoves, mv)
			s.histIdx = append(s.histIdx, int32(i))
			removed++
		} else {
			keep = append(keep, mv)
		}
	}
	s.moves = keep
	added := s.addMovesThrough(newCell)
	s.hist = append(s.hist, histEntry{move: m, numRemoved: removed, numAdded: int32(added)})
}

// moveInvalidated reports whether listed move mv is killed by playing the
// line (lineBase, d) whose new point is newCell.
func (s *State) moveInvalidated(mv game.Move, newCell, lineBase int, d Dir, step int) bool {
	b, md, mk := unpackMove(mv)
	if b+mk*s.stepOf(md) == newCell {
		return true // its new point just got occupied
	}
	if md != d {
		return false
	}
	// Same direction: check colinearity and overlap with the claimed line.
	// Two lines in direction d lie on the same lattice line iff their base
	// cells differ by a multiple of step along that direction; compute the
	// offset in line coordinates and verify it is consistent in x and y.
	bx, by := b%s.w, b/s.w
	lx, ly := lineBase%s.w, lineBase/s.w
	dx, dy := dirDX[d], dirDY[d]
	var t int
	switch {
	case dx != 0:
		if (bx-lx)%dx != 0 {
			return false
		}
		t = (bx - lx) / dx
		if by-ly != t*dy {
			return false
		}
	default: // vertical: dx == 0
		if bx != lx {
			return false
		}
		t = (by - ly) / dy
	}
	L := s.v.LineLen
	if s.v.Disjoint {
		// Share a point iff the two length-L ranges [0,L-1] and [t,t+L-1]
		// intersect.
		return t > -(L) && t < L
	}
	// Touching: share a link iff the link ranges [0,L-2] and [t,t+L-2]
	// intersect.
	return t > -(L-1) && t < L-1
}

func (s *State) stepOf(d Dir) int { return dirDY[d]*s.w + dirDX[d] }

// addMovesThrough appends all moves whose line passes through cell p, and
// returns how many were added. Only lines through p can have become legal,
// because p is the only cell whose occupancy changed.
func (s *State) addMovesThrough(p int) int {
	px, py := p%s.w, p/s.w
	L := s.v.LineLen
	var cells [8]int
	added := 0
	for d := Dir(0); d < numDirs; d++ {
		dx, dy := dirDX[d], dirDY[d]
		for k := 0; k < L; k++ {
			baseX := px - k*dx
			baseY := py - k*dy
			if m, ok := s.candidate(baseX, baseY, d, cells[:L]); ok {
				s.moves = append(s.moves, m)
				added++
			}
		}
	}
	return added
}

// Undo reverts the most recent move, implementing game.Undoer. It panics
// if no move has been played since the position was created or cloned (the
// clone floor — clones drop the history of their source).
func (s *State) Undo() {
	if len(s.hist) == 0 {
		panic("morpion: Undo on initial position or past a clone floor")
	}
	h := s.hist[len(s.hist)-1]
	s.hist = s.hist[:len(s.hist)-1]

	base, d, k := unpackMove(h.move)
	L := s.v.LineLen
	step := s.stepOf(d)
	newCell := base + k*step

	s.occ[newCell] = 0
	s.hash ^= rng.Mix(planeSalt[0], uint64(newCell))
	u := s.used[d]
	uSalt := planeSalt[1+d]
	if s.v.Disjoint {
		idx := base
		for i := 0; i < L; i++ {
			u[idx] = 0
			s.hash ^= rng.Mix(uSalt, uint64(idx))
			idx += step
		}
	} else {
		idx := base
		for i := 0; i < L-1; i++ {
			u[idx] = 0
			s.hash ^= rng.Mix(uSalt, uint64(idx))
			idx += step
		}
	}
	s.seq = s.seq[:len(s.seq)-1]
	// Restore the move list to its exact pre-Play order: drop the appended
	// moves, then reinsert the removed ones (popped off the arena stacks)
	// at their original positions. Ascending insertion order keeps later
	// original indices valid, and the exact order is what makes an undo
	// traversal bit-identical to a clone traversal.
	s.moves = s.moves[:len(s.moves)-int(h.numAdded)]
	lo := len(s.histMoves) - int(h.numRemoved)
	for i := 0; i < int(h.numRemoved); i++ {
		mv := s.histMoves[lo+i]
		idx := int(s.histIdx[lo+i])
		s.moves = append(s.moves, 0)
		copy(s.moves[idx+1:], s.moves[idx:])
		s.moves[idx] = mv
	}
	s.histMoves = s.histMoves[:lo]
	s.histIdx = s.histIdx[:lo]
}

// Reset implements game.Replayer: it rewinds the position to the initial
// cross by undoing every move in the history. Positions obtained by Clone
// only rewind to the clone point, since clones drop history; use New for a
// pristine state.
func (s *State) Reset() {
	for len(s.hist) > 0 {
		s.Undo()
	}
}

var _ game.State = (*State)(nil)
var _ game.Undoer = (*State)(nil)
var _ game.Copier = (*State)(nil)
var _ game.Sizer = (*State)(nil)
var _ game.Replayer = (*State)(nil)
var _ game.Hasher = (*State)(nil)

// RateMoves implements game.MoveRater for the bundled heuristic
// evaluator: moves whose new point lands near the centre of the cross
// get higher weight. Long Morpion games grow the grid outward from the
// centre, and biasing early playout moves inward keeps lines connectable
// longer — a classic hand heuristic for the puzzle. The weight is
// 1/(1+d) for Chebyshev distance d from the board centre; pure and
// allocation-free beyond the appended weights.
func (s *State) RateMoves(moves []game.Move, w []float64) []float64 {
	cx, cy := s.w/2, s.w/2
	for _, m := range moves {
		newX, newY, _, _, _, _ := s.MoveParts(m)
		dx, dy := newX-cx, newY-cy
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		d := dx
		if dy > d {
			d = dy
		}
		w = append(w, 1/float64(1+d))
	}
	return w
}

var _ game.MoveRater = (*State)(nil)
