package morpion

// Known records
//
// The best published scores for each variant, used to contextualize search
// output (the paper's headline result is the two 80-move 5D sequences found
// by the level-4 parallel search). Scores only: the record sequences
// themselves are not redistributed here.

// Record documents a best-known result for a variant at some point in time.
type Record struct {
	Variant string
	Score   int
	Holder  string
	Year    int
	Note    string
}

// KnownRecords lists the reference results discussed in the paper (§I, §II,
// §V) plus the standard baselines from the literature for the companion
// variants.
var KnownRecords = []Record{
	{Variant: "5D", Score: 68, Holder: "best human", Year: 2006, Note: "Demaine et al. survey"},
	{Variant: "5D", Score: 79, Holder: "Hyyrö & Poranen (simulated annealing)", Year: 2007, Note: "previous best computer score cited by the paper"},
	{Variant: "5D", Score: 80, Holder: "Cazenave & Jouandeau (this paper, parallel NMCS level 4)", Year: 2009, Note: "two new world-record sequences"},
	{Variant: "5T", Score: 170, Holder: "C.-H. Bruneau (human)", Year: 1976, Note: "long-standing human record"},
	{Variant: "4T", Score: 62, Holder: "literature", Year: 2008, Note: "reference score for the touching lines-of-4 variant"},
	{Variant: "4D", Score: 35, Holder: "literature", Year: 2008, Note: "reference score for the disjoint lines-of-4 variant"},
}

// BestKnown returns the highest known score for the named variant, or 0 if
// the variant has no recorded reference.
func BestKnown(variant string) int {
	best := 0
	for _, r := range KnownRecords {
		if r.Variant == variant && r.Score > best {
			best = r.Score
		}
	}
	return best
}
