package morpion

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/game"
	"repro/internal/rng"
)

var allVariants = []Variant{Var5T, Var5D, Var4T, Var4D}

func TestInitialCross(t *testing.T) {
	for _, v := range allVariants {
		s := New(v)
		points := 0
		for _, o := range s.occ {
			if o != 0 {
				points++
			}
		}
		if points != v.CrossPoints() {
			t.Errorf("%s: initial cross has %d points, want %d", v.Name, points, v.CrossPoints())
		}
		if s.MovesPlayed() != 0 || s.Score() != 0 {
			t.Errorf("%s: initial position has nonzero score", v.Name)
		}
		if s.Terminal() {
			t.Errorf("%s: initial position is terminal", v.Name)
		}
	}
}

func TestInitialMoveCount5(t *testing.T) {
	// The standard 36-point cross has exactly 28 legal first moves in the
	// lines-of-5 variants (a well-known property of the puzzle). T and D
	// agree on the first move because no line has been drawn yet.
	for _, v := range []Variant{Var5T, Var5D} {
		s := New(v)
		if n := s.NumLegalMoves(); n != 28 {
			t.Errorf("%s: initial position has %d moves, want 28", v.Name, n)
		}
	}
}

func TestInitialMovesTAndDAgree4(t *testing.T) {
	// Same argument for lines of 4: before any line exists, T and D have
	// identical legal moves (cell indices differ across board sizes, so
	// compare counts and cross-coordinate notation).
	st := New(Var4T)
	sd := New(Var4D)
	mt := formatAll(st)
	md := formatAll(sd)
	if len(mt) != len(md) {
		t.Fatalf("4T has %d initial moves, 4D has %d", len(mt), len(md))
	}
	for i := range mt {
		if mt[i] != md[i] {
			t.Fatalf("initial move %d differs: 4T=%s 4D=%s", i, mt[i], md[i])
		}
	}
	if len(mt) == 0 {
		t.Fatal("no initial moves in lines-of-4 variants")
	}
}

func formatAll(s *State) []string {
	var out []string
	for _, m := range s.LegalMoves(nil) {
		out = append(out, s.FormatMove(m))
	}
	sort.Strings(out)
	return out
}

// playout plays uniformly random moves to the end and returns the state.
func playout(s *State, r *rng.Rand) *State {
	var buf []game.Move
	for {
		buf = s.LegalMoves(buf[:0])
		if len(buf) == 0 {
			return s
		}
		s.Play(buf[r.Intn(len(buf))])
	}
}

func TestIncrementalMovegenMatchesRescan(t *testing.T) {
	// Oracle test: after every move of a random game, the incrementally
	// maintained move list must equal a from-scratch scan.
	for _, v := range allVariants {
		t.Run(v.Name, func(t *testing.T) {
			r := rng.New(1234)
			for trial := 0; trial < 3; trial++ {
				s := New(v)
				var buf []game.Move
				for !s.Terminal() {
					buf = s.LegalMoves(buf[:0])
					s.Play(buf[r.Intn(len(buf))])
					got := append([]game.Move(nil), s.moves...)
					want := s.scanAllMoves(nil)
					sortMoves(got)
					sortMoves(want)
					if !equalMoves(got, want) {
						t.Fatalf("%s: move list diverged after move %d:\nincremental=%v\nrescan=%v",
							v.Name, s.MovesPlayed(), got, want)
					}
				}
			}
		})
	}
}

func sortMoves(ms []game.Move) {
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
}

func equalMoves(a, b []game.Move) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlayUndoRoundTrip(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.Name, func(t *testing.T) {
			r := rng.New(99)
			s := New(v)
			snapOcc := append([]uint8(nil), s.occ...)
			snapMoves := append([]game.Move(nil), s.moves...)
			sortMoves(snapMoves)

			// Play a full random game, then undo everything.
			playout(s, r)
			played := s.MovesPlayed()
			if played == 0 {
				t.Fatal("random game played zero moves")
			}
			s.Reset()

			if s.MovesPlayed() != 0 {
				t.Fatalf("after Reset, %d moves remain", s.MovesPlayed())
			}
			for i := range snapOcc {
				if s.occ[i] != snapOcc[i] {
					t.Fatalf("occupancy cell %d not restored", i)
				}
			}
			for d := 0; d < numDirs; d++ {
				for i, u := range s.used[d] {
					if u != 0 {
						t.Fatalf("usage[%d][%d] not cleared by undo", d, i)
					}
				}
			}
			got := append([]game.Move(nil), s.moves...)
			sortMoves(got)
			if !equalMoves(got, snapMoves) {
				t.Fatalf("move list not restored: got %d moves, want %d", len(got), len(snapMoves))
			}
		})
	}
}

func TestUndoPanicsOnInitial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Undo on initial position did not panic")
		}
	}()
	New(Var5D).Undo()
}

func TestSameDirectionConstraint(t *testing.T) {
	// Structural invariant: replay the game's lines and verify the variant
	// rule pairwise — D: no two same-direction lines share a point;
	// T: no two same-direction lines share a link.
	for _, v := range allVariants {
		t.Run(v.Name, func(t *testing.T) {
			r := rng.New(7)
			for trial := 0; trial < 5; trial++ {
				s := playout(New(v), r)
				checkLinesConstraint(t, s)
			}
		})
	}
}

func checkLinesConstraint(t *testing.T, s *State) {
	t.Helper()
	type line struct {
		d     Dir
		cells []int
	}
	var lines []line
	L := s.v.LineLen
	for _, m := range s.seq {
		base, d, _ := unpackMove(m)
		step := s.stepOf(d)
		cells := make([]int, L)
		for i := range cells {
			cells[i] = base + i*step
		}
		lines = append(lines, line{d, cells})
	}
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			if lines[i].d != lines[j].d {
				continue
			}
			if s.v.Disjoint {
				for _, a := range lines[i].cells {
					for _, b := range lines[j].cells {
						if a == b {
							t.Fatalf("disjoint violated: lines %d and %d share point %d", i, j, a)
						}
					}
				}
			} else {
				// links are the first L-1 cells (lower endpoints)
				for _, a := range lines[i].cells[:L-1] {
					for _, b := range lines[j].cells[:L-1] {
						if a == b {
							t.Fatalf("touching violated: lines %d and %d share link at %d", i, j, a)
						}
					}
				}
			}
		}
	}
}

func TestEveryMoveAddsExactlyOnePoint(t *testing.T) {
	r := rng.New(42)
	s := New(Var5T)
	var buf []game.Move
	prev := countPoints(s)
	for !s.Terminal() {
		buf = s.LegalMoves(buf[:0])
		s.Play(buf[r.Intn(len(buf))])
		now := countPoints(s)
		if now != prev+1 {
			t.Fatalf("move %d added %d points, want 1", s.MovesPlayed(), now-prev)
		}
		prev = now
	}
	if got := countPoints(s); got != Var5T.CrossPoints()+s.MovesPlayed() {
		t.Fatalf("final points %d != cross %d + moves %d", got, Var5T.CrossPoints(), s.MovesPlayed())
	}
}

func countPoints(s *State) int {
	n := 0
	for _, o := range s.occ {
		if o != 0 {
			n++
		}
	}
	return n
}

func TestRandomPlayoutScoreRanges(t *testing.T) {
	// Random 5T/5D games are known to land around 60-70 moves; 4-variants
	// are much shorter. Loose sanity bounds with fixed seeds.
	bounds := map[string][2]int{
		"5T": {40, 120},
		"5D": {30, 100},
		"4T": {8, 80},
		"4D": {5, 60},
	}
	r := rng.New(2024)
	for _, v := range allVariants {
		lo, hi := bounds[v.Name][0], bounds[v.Name][1]
		sum := 0
		const n = 20
		for i := 0; i < n; i++ {
			s := playout(New(v), r)
			sum += s.MovesPlayed()
		}
		avg := sum / n
		if avg < lo || avg > hi {
			t.Errorf("%s: average random score %d outside sanity range [%d,%d]", v.Name, avg, lo, hi)
		}
		t.Logf("%s: average random playout score %d", v.Name, avg)
	}
}

func TestTouchingOutscoresDisjoint(t *testing.T) {
	// The touching rule is strictly more permissive, so random play should
	// score clearly higher on 5T than 5D on average.
	r := rng.New(5)
	const n = 30
	sumT, sumD := 0, 0
	for i := 0; i < n; i++ {
		sumT += playout(New(Var5T), r).MovesPlayed()
		sumD += playout(New(Var5D), r).MovesPlayed()
	}
	if sumT <= sumD {
		t.Errorf("5T average %d not above 5D average %d", sumT/n, sumD/n)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rng.New(17)
	s := New(Var5D)
	var buf []game.Move
	for i := 0; i < 10; i++ {
		buf = s.LegalMoves(buf[:0])
		s.Play(buf[r.Intn(len(buf))])
	}
	c := s.Clone().(*State)
	scoreBefore := s.Score()
	movesBefore := append([]game.Move(nil), s.moves...)

	playout(c, r) // run the clone to the end

	if s.Score() != scoreBefore {
		t.Fatal("mutating clone changed original score")
	}
	got := append([]game.Move(nil), s.moves...)
	if !equalMoves(got, movesBefore) {
		t.Fatal("mutating clone changed original move list")
	}
	if c.MovesPlayed() <= s.MovesPlayed() {
		t.Fatal("clone playout did not advance")
	}
}

func TestCloneEqualBehaviour(t *testing.T) {
	// Playing the same moves on original and clone keeps them identical.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := New(Var4D)
		var buf []game.Move
		for i := 0; i < 5 && !s.Terminal(); i++ {
			buf = s.LegalMoves(buf[:0])
			s.Play(buf[r.Intn(len(buf))])
		}
		c := s.Clone().(*State)
		for !s.Terminal() {
			buf = s.LegalMoves(buf[:0])
			m := buf[r.Intn(len(buf))]
			s.Play(m)
			c.Play(m)
		}
		return c.Terminal() && c.Score() == s.Score()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNotationRoundTrip(t *testing.T) {
	for _, v := range allVariants {
		r := rng.New(3)
		s := playout(New(v), r)
		text, err := FormatSequence(v, s.Sequence())
		if err != nil {
			t.Fatalf("%s: format: %v", v.Name, err)
		}
		replayed, err := ParseSequence(v, text)
		if err != nil {
			t.Fatalf("%s: parse: %v", v.Name, err)
		}
		if replayed.Score() != s.Score() {
			t.Fatalf("%s: notation round trip changed score %v -> %v", v.Name, s.Score(), replayed.Score())
		}
	}
}

func TestParseMoveErrors(t *testing.T) {
	s := New(Var5D)
	for _, bad := range []string{"", "1,2", "1,2:X:0", "a,b:E:0", "1,2:E:9", "1,2:E:x"} {
		if _, err := s.ParseMove(bad); err == nil {
			t.Errorf("ParseMove(%q) succeeded, want error", bad)
		}
	}
}

func TestParseSequenceRejectsIllegal(t *testing.T) {
	// A syntactically valid move that is not legal from the initial
	// position must be rejected.
	if _, err := ParseSequence(Var5D, "0,0:E:0"); err == nil {
		t.Fatal("illegal sequence accepted")
	}
}

func TestVariantByName(t *testing.T) {
	for _, v := range allVariants {
		got, err := VariantByName(v.Name)
		if err != nil || got.Name != v.Name {
			t.Errorf("VariantByName(%q) = %v, %v", v.Name, got, err)
		}
	}
	if _, err := VariantByName("6X"); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestRenderShowsScoreAndPoints(t *testing.T) {
	r := rng.New(9)
	s := playout(New(Var4D), r)
	out := s.Render()
	if len(out) == 0 {
		t.Fatal("empty rendering")
	}
	if want := "score="; !contains(out, want) {
		t.Fatalf("rendering missing %q:\n%s", want, out)
	}
	if !contains(out, " o") {
		t.Fatalf("rendering missing cross points:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestRenderSequenceMatchesReplay(t *testing.T) {
	r := rng.New(21)
	s := playout(New(Var4T), r)
	out, err := RenderSequence(Var4T, s.Sequence())
	if err != nil {
		t.Fatal(err)
	}
	if out != s.Render() {
		t.Fatal("RenderSequence differs from direct Render")
	}
}

func TestEncodedSizePositive(t *testing.T) {
	s := New(Var5D)
	if s.EncodedSize() <= 0 {
		t.Fatal("non-positive encoded size")
	}
	before := s.EncodedSize()
	r := rng.New(4)
	playout(s, r)
	if s.EncodedSize() <= before {
		t.Fatal("encoded size did not grow with the sequence")
	}
}

func TestBestKnownRecords(t *testing.T) {
	if BestKnown("5D") != 80 {
		t.Errorf("5D best known = %d, want 80 (the paper's record)", BestKnown("5D"))
	}
	if BestKnown("nope") != 0 {
		t.Error("unknown variant should report 0")
	}
}

func TestMovePartsConsistency(t *testing.T) {
	s := New(Var5T)
	for _, m := range s.LegalMoves(nil) {
		newX, newY, baseX, baseY, d, k := s.MoveParts(m)
		if newX != baseX+k*dirDX[d] || newY != baseY+k*dirDY[d] {
			t.Fatalf("MoveParts inconsistent for move %v", m)
		}
		if s.Occupied(newX, newY) {
			t.Fatalf("new point (%d,%d) of a legal move is already occupied", newX, newY)
		}
	}
}

func TestDeterministicPlayoutsAcrossBoards(t *testing.T) {
	// The same seed must give the same game (move list order is
	// deterministic by construction).
	a := playout(New(Var5D), rng.New(31))
	b := playout(New(Var5D), rng.New(31))
	if a.Score() != b.Score() {
		t.Fatalf("same seed, different scores: %v vs %v", a.Score(), b.Score())
	}
	sa := a.Sequence()
	sb := b.Sequence()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed, sequences differ at move %d", i)
		}
	}
}

func BenchmarkRandomPlayout5D(b *testing.B) {
	r := rng.New(1)
	base := New(Var5D)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone().(*State)
		playout(s, r)
	}
}

func BenchmarkRandomPlayout4D(b *testing.B) {
	r := rng.New(1)
	base := New(Var4D)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone().(*State)
		playout(s, r)
	}
}

func BenchmarkClone5D(b *testing.B) {
	s := New(Var5D)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}
