package morpion

import (
	"testing"

	"repro/internal/game"
	"repro/internal/rng"
)

// observe captures the full observable state: rendering, score, move count
// and the exact legal move order (order matters — the undo traversal of
// the search is only bit-identical to the clone traversal if Undo restores
// list order, not just the set).
func observe(s *State) (string, float64, int, []game.Move) {
	return s.Render(), s.Score(), s.MovesPlayed(), s.LegalMoves(nil)
}

func requireEqual(t *testing.T, label string, a, b *State) {
	t.Helper()
	ra, sa, ma, la := observe(a)
	rb, sb, mb, lb := observe(b)
	if ra != rb || sa != sb || ma != mb {
		t.Fatalf("%s: positions differ (%v/%d vs %v/%d)", label, sa, ma, sb, mb)
	}
	if len(la) != len(lb) {
		t.Fatalf("%s: legal move counts differ: %d vs %d", label, len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("%s: legal move order differs at %d", label, i)
		}
	}
}

// TestUndoMatchesPristineReplay plays k random moves, then undoes them one
// by one; after every undo the position — including legal move ORDER —
// must equal a pristine replay of the remaining prefix.
func TestUndoMatchesPristineReplay(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		r := rng.New(seed)
		s := New(Var4D)
		var played []game.Move
		var buf []game.Move
		for {
			buf = s.LegalMoves(buf[:0])
			if len(buf) == 0 {
				break
			}
			m := buf[r.Intn(len(buf))]
			s.Play(m)
			played = append(played, m)
		}
		for k := len(played); k > 0; k-- {
			s.Undo()
			replay := New(Var4D)
			for _, m := range played[:k-1] {
				replay.Play(m)
			}
			requireEqual(t, "after undo", s, replay)
		}
	}
}

// TestCloneFloorRoundTrip checks the clone-with-undo contract: a clone can
// be searched forward with Play/Undo and rewinds exactly to the clone
// point, while undoing past that floor panics.
func TestCloneFloorRoundTrip(t *testing.T) {
	r := rng.New(21)
	s := New(Var4D)
	for i := 0; i < 6; i++ {
		buf := s.LegalMoves(nil)
		s.Play(buf[r.Intn(len(buf))])
	}
	c := s.Clone().(*State)
	played := 0
	for !c.Terminal() {
		buf := c.LegalMoves(nil)
		c.Play(buf[r.Intn(len(buf))])
		played++
	}
	if played == 0 {
		t.Fatal("clone was already terminal")
	}
	for i := 0; i < played; i++ {
		c.Undo()
	}
	requireEqual(t, "clone rewound to floor", c, s)

	defer func() {
		if recover() == nil {
			t.Fatal("Undo past the clone floor did not panic")
		}
	}()
	c.Undo()
}

// TestCopyFromMatchesClone checks that CopyFrom yields a position
// indistinguishable from a fresh clone and independent of the source.
func TestCopyFromMatchesClone(t *testing.T) {
	r := rng.New(4)
	src := New(Var4D)
	for i := 0; i < 8; i++ {
		buf := src.LegalMoves(nil)
		src.Play(buf[r.Intn(len(buf))])
	}
	dst := New(Var4D)
	for i := 0; i < 3; i++ {
		buf := dst.LegalMoves(nil)
		dst.Play(buf[r.Intn(len(buf))])
	}
	dst.CopyFrom(src)
	requireEqual(t, "CopyFrom", dst, src.Clone().(*State))

	before, _, _, _ := observe(src)
	for i := 0; i < 5 && !dst.Terminal(); i++ {
		buf := dst.LegalMoves(nil)
		dst.Play(buf[r.Intn(len(buf))])
	}
	after, _, _, _ := observe(src)
	if before != after {
		t.Fatal("mutating a CopyFrom copy changed the source")
	}
}

// TestCopyFromAcrossVariants pins the documented contract: a parameter
// mismatch reallocates instead of panicking, so pooled states survive a
// searcher being reused across variants and board sizes.
func TestCopyFromAcrossVariants(t *testing.T) {
	dst := New(Var4D)
	src := New(Var5D)
	dst.CopyFrom(src)
	requireEqual(t, "CopyFrom across variants", dst, src.Clone().(*State))
	r := rng.New(6)
	for i := 0; i < 10; i++ {
		buf := dst.LegalMoves(nil)
		dst.Play(buf[r.Intn(len(buf))])
	}
	if src.MovesPlayed() != 0 {
		t.Fatal("mutating the adapted copy changed the source")
	}
}
