package morpion

import (
	"fmt"

	"repro/internal/game"
)

// Symmetry support
//
// The initial cross is invariant under the dihedral group D4 (four
// rotations, four reflections), so every game sequence has up to eight
// equivalent forms. The paper reports finding "two new sequences of 80
// moves"; deciding that two found sequences are genuinely different —
// not images of each other — requires canonicalization, which is what
// this file provides.

// Symmetry indexes the eight elements of D4.
type Symmetry int

// NumSymmetries is the order of the symmetry group of the cross.
const NumSymmetries = 8

// symMatrix holds the eight signed permutation matrices acting on doubled
// coordinates centred on the cross: (u, v) -> (a·u + b·v, c·u + d·v).
var symMatrix = [NumSymmetries][4]int{
	{1, 0, 0, 1},   // identity
	{0, -1, 1, 0},  // rotation 90°
	{-1, 0, 0, -1}, // rotation 180°
	{0, 1, -1, 0},  // rotation 270°
	{-1, 0, 0, 1},  // horizontal mirror
	{1, 0, 0, -1},  // vertical mirror
	{0, 1, 1, 0},   // transpose (main diagonal mirror)
	{0, -1, -1, 0}, // anti-transpose
}

// String names the symmetry.
func (s Symmetry) String() string {
	names := [NumSymmetries]string{
		"id", "rot90", "rot180", "rot270", "mirrorX", "mirrorY", "transpose", "antitranspose",
	}
	if s >= 0 && int(s) < NumSymmetries {
		return names[s]
	}
	return fmt.Sprintf("Symmetry(%d)", int(s))
}

// transformPoint maps a board cell through the symmetry. Coordinates are
// doubled and centred on the cross so that all eight transforms stay in
// the integers; the cross is centred on the board, so transformed points
// always stay on the board.
func (s *State) transformPoint(x, y int, sym Symmetry) (int, int) {
	box := len(crossFor(s.v.LineLen)) // cross bounding-box side
	cx := s.originX*2 + box - 1       // doubled centre
	cy := s.originY*2 + box - 1
	u := 2*x - cx
	v := 2*y - cy
	m := symMatrix[sym]
	u2 := m[0]*u + m[1]*v
	v2 := m[2]*u + m[3]*v
	return (u2 + cx) / 2, (v2 + cy) / 2
}

// TransformMove maps a move through the symmetry on this position's board
// geometry. The result is the move naming the transformed line with the
// transformed new point.
func (s *State) TransformMove(m game.Move, sym Symmetry) (game.Move, error) {
	newX, newY, baseX, baseY, d, _ := s.MoveParts(m)
	L := s.v.LineLen
	endX := baseX + (L-1)*dirDX[d]
	endY := baseY + (L-1)*dirDY[d]

	nx, ny := s.transformPoint(newX, newY, sym)
	ax, ay := s.transformPoint(baseX, baseY, sym)
	bx, by := s.transformPoint(endX, endY, sym)

	// Re-orient: the canonical base is the endpoint from which the line
	// runs along one of the four direction deltas.
	ndx := (bx - ax) / (L - 1)
	ndy := (by - ay) / (L - 1)
	var nd Dir
	found := false
	for dd := Dir(0); dd < numDirs; dd++ {
		if dirDX[dd] == ndx && dirDY[dd] == ndy {
			nd, found = dd, true
			break
		}
		if dirDX[dd] == -ndx && dirDY[dd] == -ndy {
			// The transform reversed the line; swap the endpoints.
			nd, found = dd, true
			ax, ay = bx, by
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("morpion: symmetry %v produced non-lattice direction (%d,%d)", sym, ndx, ndy)
	}
	// Offset of the new point within the re-oriented line.
	var k int
	if dirDX[nd] != 0 {
		k = (nx - ax) / dirDX[nd]
	} else {
		k = (ny - ay) / dirDY[nd]
	}
	if k < 0 || k >= L {
		return 0, fmt.Errorf("morpion: symmetry %v broke the line offset (%d)", sym, k)
	}
	if ax < 0 || ay < 0 || ax >= s.w || ay >= s.w {
		return 0, fmt.Errorf("morpion: symmetry %v left the board", sym)
	}
	return packMove(ay*s.w+ax, nd, k), nil
}

// TransformSequence maps a whole game through the symmetry and validates
// it by replay. Because the initial cross is D4-symmetric, the transformed
// game is always legal and reaches the same score.
func TransformSequence(v Variant, seq []game.Move, sym Symmetry) ([]game.Move, error) {
	if sym < 0 || int(sym) >= NumSymmetries {
		return nil, fmt.Errorf("morpion: unknown symmetry %d", int(sym))
	}
	ref := New(v) // geometry reference for the transform
	out := make([]game.Move, 0, len(seq))
	replay := New(v)
	for i, m := range seq {
		tm, err := ref.TransformMove(m, sym)
		if err != nil {
			return nil, fmt.Errorf("morpion: move %d: %w", i, err)
		}
		if !replay.isLegal(tm) {
			return nil, fmt.Errorf("morpion: transformed move %d is illegal (symmetry %v)", i, sym)
		}
		replay.Play(tm)
		out = append(out, tm)
	}
	return out, nil
}

// CanonicalSequence returns the lexicographically smallest notation among
// the eight symmetric images of seq, along with the symmetry achieving it.
// Two sequences are the same game up to symmetry iff their canonical forms
// are equal.
func CanonicalSequence(v Variant, seq []game.Move) (string, Symmetry, error) {
	best := ""
	bestSym := Symmetry(0)
	for sym := Symmetry(0); sym < NumSymmetries; sym++ {
		img, err := TransformSequence(v, seq, sym)
		if err != nil {
			return "", 0, err
		}
		text, err := FormatSequence(v, img)
		if err != nil {
			return "", 0, err
		}
		if best == "" || text < best {
			best = text
			bestSym = sym
		}
	}
	return best, bestSym, nil
}

// EquivalentSequences reports whether two games are images of each other
// under the cross's symmetry group.
func EquivalentSequences(v Variant, a, b []game.Move) (bool, error) {
	ca, _, err := CanonicalSequence(v, a)
	if err != nil {
		return false, err
	}
	cb, _, err := CanonicalSequence(v, b)
	if err != nil {
		return false, err
	}
	return ca == cb, nil
}
