package morpion

import (
	"testing"

	"repro/internal/game"
	"repro/internal/rng"
)

func TestTransformIdentity(t *testing.T) {
	r := rng.New(2)
	s := playout(New(Var5D), r)
	img, err := TransformSequence(Var5D, s.Sequence(), 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := s.Sequence()
	for i := range seq {
		if img[i] != seq[i] {
			t.Fatalf("identity changed move %d", i)
		}
	}
}

func TestTransformPreservesScoreAllSymmetries(t *testing.T) {
	// Property: every symmetric image of a legal game is a legal game with
	// the same score — in every variant.
	for _, v := range allVariants {
		t.Run(v.Name, func(t *testing.T) {
			r := rng.New(77)
			s := playout(New(v), r)
			for sym := Symmetry(0); sym < NumSymmetries; sym++ {
				img, err := TransformSequence(v, s.Sequence(), sym)
				if err != nil {
					t.Fatalf("%v: %v", sym, err)
				}
				replayed, err2 := replaySeq(v, img)
				if err2 != nil {
					t.Fatalf("%v: replay: %v", sym, err2)
				}
				if replayed.Score() != s.Score() {
					t.Fatalf("%v changed score %v -> %v", sym, s.Score(), replayed.Score())
				}
			}
		})
	}
}

func replaySeq(v Variant, seq []game.Move) (*State, error) {
	st := New(v)
	for _, m := range seq {
		if !st.isLegal(m) {
			return nil, errIllegal
		}
		st.Play(m)
	}
	return st, nil
}

var errIllegal = &illegalError{}

type illegalError struct{}

func (*illegalError) Error() string { return "illegal move in replay" }

func TestTransformInvolutions(t *testing.T) {
	// rot180, mirrors and transposes are involutions: applying them twice
	// gives back the original sequence.
	r := rng.New(5)
	s := playout(New(Var4D), r)
	seq := s.Sequence()
	for _, sym := range []Symmetry{2, 4, 5, 6, 7} {
		once, err := TransformSequence(Var4D, seq, sym)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := TransformSequence(Var4D, once, sym)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if twice[i] != seq[i] {
				t.Fatalf("%v applied twice is not identity at move %d", sym, i)
			}
		}
	}
}

func TestRotationOrderFour(t *testing.T) {
	// rot90 applied four times is the identity.
	r := rng.New(9)
	s := playout(New(Var4D), r)
	seq := s.Sequence()
	cur := seq
	var err error
	for i := 0; i < 4; i++ {
		cur, err = TransformSequence(Var4D, cur, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range seq {
		if cur[i] != seq[i] {
			t.Fatalf("rot90^4 is not identity at move %d", i)
		}
	}
}

func TestCanonicalInvariantUnderSymmetry(t *testing.T) {
	// The canonical form of any symmetric image equals the canonical form
	// of the original — the property that makes record deduplication work.
	r := rng.New(13)
	s := playout(New(Var4D), r)
	canon, _, err := CanonicalSequence(Var4D, s.Sequence())
	if err != nil {
		t.Fatal(err)
	}
	for sym := Symmetry(1); sym < NumSymmetries; sym++ {
		img, err := TransformSequence(Var4D, s.Sequence(), sym)
		if err != nil {
			t.Fatal(err)
		}
		c2, _, err := CanonicalSequence(Var4D, img)
		if err != nil {
			t.Fatal(err)
		}
		if c2 != canon {
			t.Fatalf("canonical form not invariant under %v", sym)
		}
	}
}

func TestEquivalentSequences(t *testing.T) {
	r := rng.New(3)
	a := playout(New(Var4D), r)
	img, err := TransformSequence(Var4D, a.Sequence(), 3)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := EquivalentSequences(Var4D, a.Sequence(), img)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("a game and its rotation reported as different")
	}

	// A different random game is (overwhelmingly) not equivalent.
	b := playout(New(Var4D), r)
	eq, err = EquivalentSequences(Var4D, a.Sequence(), b.Sequence())
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("two independent games reported equivalent")
	}
}

func TestTransformRejectsBadSymmetry(t *testing.T) {
	if _, err := TransformSequence(Var4D, nil, Symmetry(99)); err == nil {
		t.Fatal("bad symmetry accepted")
	}
}

func TestSymmetryNames(t *testing.T) {
	seen := map[string]bool{}
	for sym := Symmetry(0); sym < NumSymmetries; sym++ {
		n := sym.String()
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}
