package morpion

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestArchiveAddAndOrder(t *testing.T) {
	a := NewArchive(Var4D)
	r := rng.New(1)
	var scores []int
	for i := 0; i < 5; i++ {
		s := playout(New(Var4D), r)
		added, err := a.Add(s.Sequence(), "test")
		if err != nil {
			t.Fatal(err)
		}
		if !added {
			t.Fatalf("fresh random game %d rejected", i)
		}
		scores = append(scores, s.MovesPlayed())
	}
	if a.Len() != 5 {
		t.Fatalf("len = %d", a.Len())
	}
	entries := a.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i].Score > entries[i-1].Score {
			t.Fatal("entries not sorted best-first")
		}
	}
	best, ok := a.Best()
	if !ok {
		t.Fatal("no best")
	}
	maxScore := 0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	if best.Score != maxScore {
		t.Fatalf("best %d, want %d", best.Score, maxScore)
	}
}

func TestArchiveDeduplicatesSymmetricImages(t *testing.T) {
	// A rotated copy of a stored game must be rejected: the paper's "two
	// NEW sequences" claim is meaningful only up to symmetry.
	a := NewArchive(Var4D)
	r := rng.New(9)
	s := playout(New(Var4D), r)
	if added, err := a.Add(s.Sequence(), "original"); err != nil || !added {
		t.Fatalf("original rejected: %v", err)
	}
	for sym := Symmetry(1); sym < NumSymmetries; sym++ {
		img, err := TransformSequence(Var4D, s.Sequence(), sym)
		if err != nil {
			t.Fatal(err)
		}
		added, err := a.Add(img, "copy")
		if err != nil {
			t.Fatal(err)
		}
		if added {
			t.Fatalf("symmetric image %v accepted as new", sym)
		}
	}
	if a.Len() != 1 {
		t.Fatalf("len = %d after duplicate adds", a.Len())
	}
}

func TestArchiveSaveLoadRoundTrip(t *testing.T) {
	a := NewArchive(Var4D)
	r := rng.New(4)
	for i := 0; i < 3; i++ {
		s := playout(New(Var4D), r)
		if _, err := a.Add(s.Sequence(), "hunt"); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != a.Len() {
		t.Fatalf("loaded %d entries, want %d", b.Len(), a.Len())
	}
	ba, _ := a.Best()
	bb, _ := b.Best()
	if ba.Score != bb.Score || ba.Sequence != bb.Sequence {
		t.Fatal("best entry changed across save/load")
	}
}

func TestArchiveLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-an-archive 5D\n",
		"morpion-archive 9Z\n",
		"morpion-archive 4D\nbadline\n",
		"morpion-archive 4D\nx\tlbl\t0,0:E:0\n",
		"morpion-archive 4D\n5\tlbl\t0,0:E:0\n", // illegal sequence
	}
	for _, c := range cases {
		if _, err := LoadArchive(strings.NewReader(c)); err == nil {
			t.Errorf("garbage accepted: %q", c)
		}
	}
}

func TestArchiveLoadChecksScore(t *testing.T) {
	a := NewArchive(Var4D)
	r := rng.New(6)
	s := playout(New(Var4D), r)
	if _, err := a.Add(s.Sequence(), "x"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the recorded score.
	text := strings.Replace(buf.String(), "\n"+strconv.Itoa(s.MovesPlayed())+"\t", "\n9999\t", 1)
	if text == buf.String() {
		t.Skip("score prefix not found to corrupt")
	}
	if _, err := LoadArchive(strings.NewReader(text)); err == nil {
		t.Fatal("score mismatch accepted")
	}
}

func TestArchiveMerge(t *testing.T) {
	r := rng.New(8)
	a := NewArchive(Var4D)
	b := NewArchive(Var4D)
	s1 := playout(New(Var4D), r)
	s2 := playout(New(Var4D), r)
	if _, err := a.Add(s1.Sequence(), "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(s1.Sequence(), "dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(s2.Sequence(), "new"); err != nil {
		t.Fatal(err)
	}
	added, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || a.Len() != 2 {
		t.Fatalf("merge added %d (len %d), want 1 (len 2)", added, a.Len())
	}
	// Cross-variant merges are refused.
	c := NewArchive(Var5D)
	if _, err := a.Merge(c); err == nil {
		t.Fatal("cross-variant merge accepted")
	}
}
