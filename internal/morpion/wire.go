package morpion

// Wire encoding of Morpion positions for the distributed rank world
// (mpi.NetCluster). A position is fully determined by its variant and the
// sequence of moves played from the initial cross, so the encoding ships
// the variant code plus the move sequence — a handful of bytes per move
// instead of the five w×w board planes — and the decoder replays it:
//
//	u8 variant code (0=5T 1=5D 2=4T 3=4D) | uvarint len(seq) | uvarint per move
//
// Replay goes through the same incremental Play as live search, so the
// decoded position is observably identical to the encoded one — score,
// move count and the exact order of the legal-move list — which is what
// keeps cross-transport runs bit-identical (see the codec round-trip
// tests). Decoding validates every move against the current legal list, so
// corrupt or hostile bytes produce an error, never a corrupted position.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/game"
)

// wireVariants maps wire codes to the standard rule sets.
var wireVariants = [...]Variant{Var5T, Var5D, Var4T, Var4D}

// wireMaxMoves caps the replay length a decoder accepts. The longest known
// Morpion games are a few hundred moves; anything beyond this is corrupt.
const wireMaxMoves = 4096

// AppendWire appends the position's wire encoding to buf. It panics on a
// non-standard variant: only the four named rule sets have wire codes.
func (s *State) AppendWire(buf []byte) []byte {
	code := -1
	for i, v := range wireVariants {
		if v == s.v {
			code = i
			break
		}
	}
	if code < 0 {
		panic(fmt.Sprintf("morpion: variant %q has no wire code", s.v.Name))
	}
	buf = append(buf, byte(code))
	buf = binary.AppendUvarint(buf, uint64(len(s.seq)))
	for _, m := range s.seq {
		buf = binary.AppendUvarint(buf, uint64(m))
	}
	return buf
}

// DecodeWire reconstructs a position encoded by AppendWire, consuming all
// of data. Every replayed move is checked against the legal-move list of
// the position it is played on; malformed bytes return an error.
func DecodeWire(data []byte) (*State, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("morpion: wire: empty")
	}
	code := int(data[0])
	if code >= len(wireVariants) {
		return nil, fmt.Errorf("morpion: wire: unknown variant code %d", code)
	}
	data = data[1:]
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("morpion: wire: truncated move count")
	}
	data = data[used:]
	if n > wireMaxMoves {
		return nil, fmt.Errorf("morpion: wire: %d moves exceeds limit %d", n, wireMaxMoves)
	}
	s := New(wireVariants[code])
	for i := uint64(0); i < n; i++ {
		v, used := binary.Uvarint(data)
		if used <= 0 {
			return nil, fmt.Errorf("morpion: wire: truncated move %d", i)
		}
		data = data[used:]
		m := game.Move(v)
		legal := false
		for _, lm := range s.moves {
			if lm == m {
				legal = true
				break
			}
		}
		if !legal {
			return nil, fmt.Errorf("morpion: wire: move %d (%#x) is not legal at depth %d", i, v, i)
		}
		s.Play(m)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("morpion: wire: %d trailing bytes", len(data))
	}
	// The replayed history is an artifact of decoding, not of the sender's
	// position: shipped positions follow the clone contract (history floor
	// at the shipped position), so drop it.
	s.hist = s.hist[:0]
	s.histMoves = s.histMoves[:0]
	s.histIdx = s.histIdx[:0]
	return s, nil
}
