package morpion

import (
	"fmt"
	"strings"

	"repro/internal/game"
)

// Move notation
//
// A move is written "x,y:DIR:k" where (x, y) is the position of the NEW
// point in cross coordinates — (0,0) is the top-left corner of the initial
// cross's 10×10 bounding box — DIR is one of E, S, SE, NE, and k is the
// offset of the new point within its line (0 = the new point is the line's
// base, LineLen-1 = its far end). Cross coordinates make sequences
// independent of the internal working-grid size, so sequences recorded at
// one board size replay at any other.

// FormatMove renders m in the sequence notation.
func (s *State) FormatMove(m game.Move) string {
	newX, newY, _, _, d, k := s.MoveParts(m)
	return fmt.Sprintf("%d,%d:%s:%d", newX-s.originX, newY-s.originY, d, k)
}

// ParseMove parses the sequence notation back into a packed move for this
// position's board geometry. The move is not checked for legality.
func (s *State) ParseMove(text string) (game.Move, error) {
	parts := strings.Split(strings.TrimSpace(text), ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("morpion: bad move %q: want \"x,y:DIR:k\"", text)
	}
	var cx, cy int
	if _, err := fmt.Sscanf(parts[0], "%d,%d", &cx, &cy); err != nil {
		return 0, fmt.Errorf("morpion: bad coordinates in %q: %v", text, err)
	}
	var d Dir
	switch parts[1] {
	case "E":
		d = DirE
	case "S":
		d = DirS
	case "SE":
		d = DirSE
	case "NE":
		d = DirNE
	default:
		return 0, fmt.Errorf("morpion: bad direction %q in %q", parts[1], text)
	}
	var k int
	if _, err := fmt.Sscanf(parts[2], "%d", &k); err != nil {
		return 0, fmt.Errorf("morpion: bad offset in %q: %v", text, err)
	}
	if k < 0 || k >= s.v.LineLen {
		return 0, fmt.Errorf("morpion: offset %d out of range in %q", k, text)
	}
	newX := cx + s.originX
	newY := cy + s.originY
	baseX := newX - k*dirDX[d]
	baseY := newY - k*dirDY[d]
	if baseX < 0 || baseY < 0 || baseX >= s.w || baseY >= s.w {
		return 0, fmt.Errorf("morpion: move %q falls off the %d-board", text, s.w)
	}
	return packMove(baseY*s.w+baseX, d, k), nil
}

// FormatSequence renders a move sequence, one move per token, space
// separated, by replaying it on a scratch copy of the initial position of
// this variant (the notation of a move depends only on geometry, but
// replaying validates that the sequence is legal).
func FormatSequence(v Variant, seq []game.Move) (string, error) {
	s := New(v)
	var b strings.Builder
	for i, m := range seq {
		if !s.isLegal(m) {
			return "", fmt.Errorf("morpion: move %d (%s) is illegal in sequence", i, s.FormatMove(m))
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.FormatMove(m))
		s.Play(m)
	}
	return b.String(), nil
}

// ParseSequence parses a space-separated sequence in the notation of
// FormatSequence and replays it from the initial position, validating each
// move. It returns the final position.
func ParseSequence(v Variant, text string) (*State, error) {
	s := New(v)
	fields := strings.Fields(text)
	for i, tok := range fields {
		m, err := s.ParseMove(tok)
		if err != nil {
			return nil, fmt.Errorf("morpion: move %d: %v", i, err)
		}
		if !s.isLegal(m) {
			return nil, fmt.Errorf("morpion: move %d (%s) is illegal", i, tok)
		}
		s.Play(m)
	}
	return s, nil
}

// isLegal reports whether m is in the current legal move list.
func (s *State) isLegal(m game.Move) bool {
	for _, mv := range s.moves {
		if mv == m {
			return true
		}
	}
	return false
}
