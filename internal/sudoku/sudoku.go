// Package sudoku implements N²×N² Sudoku grid filling as a constraint
// search domain for nested Monte-Carlo search (16×16 Sudoku is the third
// evaluation domain of the companion IJCAI-09 NMCS paper).
//
// The game fills the first empty cell (row-major order) with any value
// that respects the row, column and box constraints; the score is the
// number of cells filled. A playout that paints itself into a corner ends
// early with a low score, so deeper nesting — which looks ahead before
// committing — fills dramatically more of the grid, exactly the
// amplification effect NMCS is designed for.
package sudoku

import (
	"fmt"
	"strings"

	"repro/internal/game"
	"repro/internal/rng"
)

// Incremental position hashing (game.Hasher). The hash is a Zobrist XOR
// over (cell, value) features plus a per-box-side base salt, maintained by
// place and Undo so reading it is O(1). The feature keys come from a
// package-level table: the domain is small (side ≤ 25 ⇒ ≤ 625 cells × 25
// values), so the whole table is precomputed once at init.
const (
	maxSide  = 25 // box ≤ 5
	maxCells = maxSide * maxSide
)

// zobrist[idx*(maxSide+1)+v] is the feature key of value v at cell idx.
var zobrist [maxCells * (maxSide + 1)]uint64

// hashSalt seeds both the key table and the per-box base hash; the value
// is arbitrary but fixed so hashes are stable across processes (cache
// entries shared between coordinator and workers must agree).
const hashSalt = 0x53554b00d0ec75a1 // "SUDOKU" flavoured

func init() {
	r := rng.New(hashSalt)
	for i := range zobrist {
		zobrist[i] = r.Uint64()
	}
}

// cellKey returns the Zobrist key of value v placed at cell idx.
func cellKey(idx int, v int8) uint64 { return zobrist[idx*(maxSide+1)+int(v)] }

// State is a Sudoku filling position. Create with New or ParseGivens.
type State struct {
	box  int    // box side; grid side is box*box
	side int    // cached box*box
	grid []int8 // 0 = empty, else 1..side

	// Constraint bitmasks: bit v-1 set when value v is used.
	rows, cols, boxes []uint32

	filled int // cells filled by play (excludes givens)
	givens int
	next   int // index of the first empty cell at or after next

	// hist records, for each Play, the played cell and the pre-move value
	// of next, which is all Undo needs: clearing the cell and its
	// constraint bits is exact, and everything else is derived. The slice
	// keeps its capacity across games, so Play/Undo never allocates in
	// steady state.
	hist []histEntry

	// hash is the incremental Zobrist hash of the grid content (givens
	// included), maintained by place and Undo. See game.Hasher.
	hash uint64
}

type histEntry struct {
	cell     int32
	prevNext int32
}

// New returns an empty grid with the given box side (box=4 for the paper's
// 16×16 grids, box=3 for classic 9×9).
func New(box int) *State {
	if box < 2 || box > 5 {
		panic("sudoku: box side must be in 2..5")
	}
	side := box * box
	s := &State{
		box: box, side: side,
		grid: make([]int8, side*side),
		rows: make([]uint32, side), cols: make([]uint32, side), boxes: make([]uint32, side),
		hash: rng.Mix(hashSalt, uint64(box)),
	}
	return s
}

// ParseGivens builds a puzzle from rows of cell values: '.' or '0' for
// empty, '1'-'9' then 'A'-'G' for 10..16 (hex-like). Rows are whitespace
// separated.
func ParseGivens(box int, text string) (*State, error) {
	s := New(box)
	lines := strings.Fields(strings.TrimSpace(text))
	if len(lines) != s.side {
		return nil, fmt.Errorf("sudoku: %d rows, want %d", len(lines), s.side)
	}
	for r, line := range lines {
		if len(line) != s.side {
			return nil, fmt.Errorf("sudoku: row %d has %d cells, want %d", r, len(line), s.side)
		}
		for c := 0; c < s.side; c++ {
			v, err := parseCell(line[c])
			if err != nil {
				return nil, fmt.Errorf("sudoku: row %d col %d: %v", r, c, err)
			}
			if v == 0 {
				continue
			}
			if int(v) > s.side {
				return nil, fmt.Errorf("sudoku: row %d col %d: value %d exceeds side %d", r, c, v, s.side)
			}
			idx := r*s.side + c
			if !s.canPlace(idx, v) {
				return nil, fmt.Errorf("sudoku: given at row %d col %d conflicts", r, c)
			}
			s.place(idx, v)
			s.givens++
		}
	}
	s.filled = 0 // givens do not count towards the score
	return s, nil
}

func parseCell(ch byte) (int8, error) {
	switch {
	case ch == '.' || ch == '0':
		return 0, nil
	case ch >= '1' && ch <= '9':
		return int8(ch - '0'), nil
	case ch >= 'A' && ch <= 'G':
		return int8(ch-'A') + 10, nil
	default:
		return 0, fmt.Errorf("bad cell %q", ch)
	}
}

// Side returns the grid side (16 for box 4).
func (s *State) Side() int { return s.side }

// Cell returns the value at (row, col), 0 when empty.
func (s *State) Cell(row, col int) int { return int(s.grid[row*s.side+col]) }

// boxIndex returns the box number of a cell index.
func (s *State) boxIndex(idx int) int {
	r, c := idx/s.side, idx%s.side
	return (r/s.box)*s.box + c/s.box
}

// canPlace reports whether value v can be placed at cell idx.
func (s *State) canPlace(idx int, v int8) bool {
	if s.grid[idx] != 0 {
		return false
	}
	bit := uint32(1) << (v - 1)
	r, c := idx/s.side, idx%s.side
	return s.rows[r]&bit == 0 && s.cols[c]&bit == 0 && s.boxes[s.boxIndex(idx)]&bit == 0
}

// place writes v at idx and updates the constraint masks and the
// incremental hash.
func (s *State) place(idx int, v int8) {
	bit := uint32(1) << (v - 1)
	r, c := idx/s.side, idx%s.side
	s.grid[idx] = v
	s.rows[r] |= bit
	s.cols[c] |= bit
	s.boxes[s.boxIndex(idx)] |= bit
	s.hash ^= cellKey(idx, v)
}

// nextEmpty returns the index of the first empty cell, or -1 when full.
func (s *State) nextEmpty() int {
	for i := s.next; i < len(s.grid); i++ {
		if s.grid[i] == 0 {
			return i
		}
	}
	return -1
}

// Move encoding: cell<<8 | value.

// LegalMoves implements game.State: every value placeable in the first
// empty cell. An empty slice on a non-full grid means the playout is stuck
// (terminal with a partial score).
func (s *State) LegalMoves(buf []game.Move) []game.Move {
	idx := s.nextEmpty()
	if idx < 0 {
		return buf
	}
	used := s.rows[idx/s.side] | s.cols[idx%s.side] | s.boxes[s.boxIndex(idx)]
	for v := 1; v <= s.side; v++ {
		if used&(1<<(v-1)) == 0 {
			buf = append(buf, game.Move(idx<<8|v))
		}
	}
	return buf
}

// Play implements game.State.
func (s *State) Play(m game.Move) {
	idx := int(m >> 8)
	v := int8(m & 0xff)
	if idx < 0 || idx >= len(s.grid) || v < 1 || int(v) > s.side || !s.canPlace(idx, v) {
		panic(fmt.Sprintf("sudoku: illegal move cell=%d value=%d", idx, v))
	}
	s.hist = append(s.hist, histEntry{cell: int32(idx), prevNext: int32(s.next)})
	s.place(idx, v)
	s.filled++
	if idx >= s.next {
		s.next = idx + 1
	}
}

// Undo implements game.Undoer: it erases the most recently played cell and
// restores the constraint masks and the next-empty cursor. It panics on a
// position with no played moves (givens are not undoable) or past a clone
// floor (clones drop history; see the game.State contract).
func (s *State) Undo() {
	if len(s.hist) == 0 {
		panic("sudoku: Undo with no played moves or past a clone floor")
	}
	h := s.hist[len(s.hist)-1]
	s.hist = s.hist[:len(s.hist)-1]
	idx := int(h.cell)
	v := s.grid[idx]
	bit := uint32(1) << (v - 1)
	r, c := idx/s.side, idx%s.side
	s.hash ^= cellKey(idx, v)
	s.grid[idx] = 0
	s.rows[r] &^= bit
	s.cols[c] &^= bit
	s.boxes[s.boxIndex(idx)] &^= bit
	s.filled--
	s.next = int(h.prevNext)
}

// Terminal implements game.State: the grid is full or the next empty cell
// admits no value.
func (s *State) Terminal() bool {
	idx := s.nextEmpty()
	if idx < 0 {
		return true
	}
	used := s.rows[idx/s.side] | s.cols[idx%s.side] | s.boxes[s.boxIndex(idx)]
	full := uint32(1)<<s.side - 1
	return used == full
}

// Score implements game.State: cells filled during play (givens excluded).
func (s *State) Score() float64 { return float64(s.filled) }

// MovesPlayed implements game.State.
func (s *State) MovesPlayed() int { return s.filled }

// Solved reports whether every cell is filled.
func (s *State) Solved() bool { return s.nextEmpty() < 0 }

// Clone implements game.State. Per the clone-with-undo contract the clone
// starts with an empty undo history floored at the cloned position.
func (s *State) Clone() game.State {
	return &State{
		box: s.box, side: s.side,
		grid:   append([]int8(nil), s.grid...),
		rows:   append([]uint32(nil), s.rows...),
		cols:   append([]uint32(nil), s.cols...),
		boxes:  append([]uint32(nil), s.boxes...),
		filled: s.filled, givens: s.givens, next: s.next,
		hash: s.hash,
	}
}

// CopyFrom implements game.Copier: it overwrites s with a deep copy of
// src, reusing s's buffers where sizes allow (a box-side change
// reallocates them). src must be a Sudoku state.
func (s *State) CopyFrom(src game.State) {
	o, ok := src.(*State)
	if !ok {
		panic("sudoku: CopyFrom with a non-Sudoku state")
	}
	if s.box != o.box {
		s.box, s.side = o.box, o.side
		s.grid = make([]int8, len(o.grid))
		s.rows = make([]uint32, o.side)
		s.cols = make([]uint32, o.side)
		s.boxes = make([]uint32, o.side)
	}
	copy(s.grid, o.grid)
	copy(s.rows, o.rows)
	copy(s.cols, o.cols)
	copy(s.boxes, o.boxes)
	s.filled, s.givens, s.next = o.filled, o.givens, o.next
	s.hash = o.hash
	s.hist = s.hist[:0]
}

// Hash implements game.Hasher: the incremental Zobrist hash of the grid
// content (givens included). Positions with equal grids hash equal even
// when their filled/given split — and hence Score — differs, so cache
// consumers store score deltas (see the game.Hasher contract).
func (s *State) Hash() uint64 { return s.hash }

// hashFromScratch recomputes the position hash from the grid alone. It is
// the oracle the fuzz tests compare the incremental hash against.
func (s *State) hashFromScratch() uint64 {
	h := rng.Mix(hashSalt, uint64(s.box))
	for idx, v := range s.grid {
		if v != 0 {
			h ^= cellKey(idx, v)
		}
	}
	return h
}

// EncodedSize implements game.Sizer.
func (s *State) EncodedSize() int { return len(s.grid) + 16 }

// Render draws the grid with box separators.
func (s *State) Render() string {
	var b strings.Builder
	for r := 0; r < s.side; r++ {
		if r > 0 && r%s.box == 0 {
			b.WriteString(strings.Repeat("-", s.side+s.box-1))
			b.WriteByte('\n')
		}
		for c := 0; c < s.side; c++ {
			if c > 0 && c%s.box == 0 {
				b.WriteByte('|')
			}
			v := s.grid[r*s.side+c]
			switch {
			case v == 0:
				b.WriteByte('.')
			case v <= 9:
				b.WriteByte('0' + byte(v))
			default:
				b.WriteByte('A' + byte(v) - 10)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Valid verifies every row, column and box holds distinct values — a
// structural self-check used by tests.
func (s *State) Valid() bool {
	side := s.side
	check := func(cells []int) bool {
		var seen uint32
		for _, idx := range cells {
			v := s.grid[idx]
			if v == 0 {
				continue
			}
			bit := uint32(1) << (v - 1)
			if seen&bit != 0 {
				return false
			}
			seen |= bit
		}
		return true
	}
	idxs := make([]int, side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			idxs[c] = r*side + c
		}
		if !check(idxs) {
			return false
		}
	}
	for c := 0; c < side; c++ {
		for r := 0; r < side; r++ {
			idxs[r] = r*side + c
		}
		if !check(idxs) {
			return false
		}
	}
	for b0 := 0; b0 < side; b0++ {
		br, bc := (b0/s.box)*s.box, (b0%s.box)*s.box
		k := 0
		for r := 0; r < s.box; r++ {
			for c := 0; c < s.box; c++ {
				idxs[k] = (br+r)*side + bc + c
				k++
			}
		}
		if !check(idxs) {
			return false
		}
	}
	return true
}

var _ game.State = (*State)(nil)
var _ game.Undoer = (*State)(nil)
var _ game.Copier = (*State)(nil)
var _ game.Sizer = (*State)(nil)
var _ game.Hasher = (*State)(nil)

// RateMoves implements game.MoveRater for the bundled heuristic
// evaluator. All legal moves fill the same (first empty) cell with
// different values, so the rating discriminates on the value: a value
// already placed often has fewer remaining slots that can still take it,
// and placing it sooner fails less often later — the "most constrained
// value first" bias. The weight is 1 + the value's current count on the
// grid; pure, one O(side²) scan per request.
func (s *State) RateMoves(moves []game.Move, w []float64) []float64 {
	var counts [26]int // side ≤ 25 (box ≤ 5); index by value
	for _, v := range s.grid {
		if v != 0 {
			counts[v]++
		}
	}
	for _, m := range moves {
		w = append(w, float64(1+counts[m&0xff]))
	}
	return w
}

var _ game.MoveRater = (*State)(nil)
