package sudoku

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/rng"
)

func TestEmptyGridBasics(t *testing.T) {
	s := New(4)
	if s.Side() != 16 {
		t.Fatalf("side = %d", s.Side())
	}
	if s.Terminal() {
		t.Fatal("empty grid is terminal")
	}
	moves := s.LegalMoves(nil)
	if len(moves) != 16 {
		t.Fatalf("first cell of an empty 16x16 grid admits %d values, want 16", len(moves))
	}
}

func TestPlayRespectsConstraints(t *testing.T) {
	s := New(3)
	// Fill the first row 1..9; then cell (1,0) must not admit 1..3 from
	// its box nor 1 from its column.
	for v := 1; v <= 9; v++ {
		s.Play(game.Move((v-1)<<8 | v))
	}
	if !s.Valid() {
		t.Fatal("valid row rejected by Valid")
	}
	moves := s.LegalMoves(nil)
	for _, m := range moves {
		v := int(m & 0xff)
		if v == 1 || v == 2 || v == 3 {
			t.Fatalf("cell (1,0) admits %d despite box containing it", v)
		}
	}
	if len(moves) != 6 {
		t.Fatalf("cell (1,0) admits %d values, want 6", len(moves))
	}
}

func TestIllegalPlayPanics(t *testing.T) {
	s := New(3)
	s.Play(game.Move(0<<8 | 5))
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting play did not panic")
		}
	}()
	s.Play(game.Move(1<<8 | 5)) // same row, same value
}

func TestParseGivens(t *testing.T) {
	// A 4x4 (box 2) puzzle with a few givens.
	s, err := ParseGivens(2, `
		12..
		34..
		....
		....
	`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cell(0, 0) != 1 || s.Cell(1, 1) != 4 {
		t.Fatal("givens not placed")
	}
	if s.Score() != 0 {
		t.Fatal("givens counted towards score")
	}
	if !s.Valid() {
		t.Fatal("parsed grid invalid")
	}
}

func TestParseRejectsConflicts(t *testing.T) {
	_, err := ParseGivens(2, `
		11..
		....
		....
		....
	`)
	if err == nil {
		t.Fatal("conflicting givens accepted")
	}
	if _, err := ParseGivens(2, "12\n34"); err == nil {
		t.Fatal("wrong shape accepted")
	}
}

func TestRandomPlayoutFillsAndStaysValid(t *testing.T) {
	r := rng.New(5)
	s := New(3)
	var buf []game.Move
	for !s.Terminal() {
		buf = s.LegalMoves(buf[:0])
		s.Play(buf[r.Intn(len(buf))])
	}
	if !s.Valid() {
		t.Fatalf("terminal grid violates constraints:\n%s", s.Render())
	}
	if s.Score() <= 0 {
		t.Fatal("playout filled nothing")
	}
	t.Logf("random 9x9 fill: %v cells (stuck=%v)", s.Score(), !s.Solved())
}

func TestNMCSImprovesSudoku(t *testing.T) {
	// Level 1 fills more cells than level 0 on the 9x9 grid on average —
	// the NMCS amplification on the third domain.
	mean := func(level int) float64 {
		srch := core.NewSearcher(rng.New(11), core.DefaultOptions())
		sum := 0.0
		const n = 5
		for i := 0; i < n; i++ {
			sum += srch.Nested(New(3), level).Score
		}
		return sum / n
	}
	l0, l1 := mean(0), mean(1)
	t.Logf("9x9 fill means: level0=%.1f level1=%.1f (max 81)", l0, l1)
	if l1 <= l0 {
		t.Fatalf("level 1 (%v) did not beat level 0 (%v)", l1, l0)
	}
}

func TestNMCSLevel2Solves9x9(t *testing.T) {
	// Level 2 reliably completes an empty 9x9 grid (81 cells) — a strong
	// end-to-end check of search + constraint propagation.
	if testing.Short() {
		t.Skip("level 2 sudoku in short mode")
	}
	srch := core.NewSearcher(rng.New(13), core.DefaultOptions())
	res := srch.Nested(New(3), 2)
	t.Logf("9x9 level-2 fill: %v/81", res.Score)
	if res.Score < 81 {
		t.Fatalf("level 2 filled only %v of 81 cells", res.Score)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(3)
	c := s.Clone().(*State)
	c.Play(game.Move(0<<8 | 1))
	if s.Cell(0, 0) != 0 {
		t.Fatal("clone mutation leaked")
	}
	if c.Cell(0, 0) != 1 {
		t.Fatal("clone did not take the move")
	}
}

func TestRenderShape(t *testing.T) {
	s := New(2)
	s.Play(game.Move(0<<8 | 3))
	out := s.Render()
	if !strings.Contains(out, "3.|..") {
		t.Fatalf("render missing placed value:\n%s", out)
	}
	if !strings.Contains(out, "|") || !strings.Contains(out, "-") {
		t.Fatalf("render missing box separators:\n%s", out)
	}
}

func TestSixteenRender(t *testing.T) {
	s := New(4)
	s.Play(game.Move(0<<8 | 16))
	if !strings.Contains(s.Render(), "G") {
		t.Fatal("value 16 should render as G")
	}
}

func TestBadBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("box side 1 accepted")
		}
	}()
	New(1)
}
