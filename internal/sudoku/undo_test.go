package sudoku

import (
	"testing"

	"repro/internal/game"
	"repro/internal/rng"
)

func describe(s *State) (string, float64, int, bool, []game.Move) {
	return s.Render(), s.Score(), s.MovesPlayed(), s.Terminal(), s.LegalMoves(nil)
}

func statesEqual(t *testing.T, label string, a, b *State) {
	t.Helper()
	ra, sa, ma, ta, la := describe(a)
	rb, sb, mb, tb, lb := describe(b)
	if ra != rb {
		t.Fatalf("%s: grids differ:\n%s\nvs\n%s", label, ra, rb)
	}
	if sa != sb || ma != mb || ta != tb {
		t.Fatalf("%s: score/moves/terminal differ: %v/%d/%v vs %v/%d/%v",
			label, sa, ma, ta, sb, mb, tb)
	}
	if len(la) != len(lb) {
		t.Fatalf("%s: legal move counts differ: %d vs %d", label, len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("%s: legal move %d differs", label, i)
		}
	}
}

// TestPlayUndoRoundTrip plays a random filling game, then undoes move by
// move, checking the position against a pristine replay of each prefix.
func TestPlayUndoRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		s := New(3)
		var played []game.Move
		var buf []game.Move
		for {
			buf = s.LegalMoves(buf[:0])
			if len(buf) == 0 {
				break
			}
			m := buf[r.Intn(len(buf))]
			s.Play(m)
			played = append(played, m)
		}
		if len(played) == 0 {
			t.Fatal("random game played zero moves")
		}
		for k := len(played); k > 0; k-- {
			s.Undo()
			replay := New(3)
			for _, m := range played[:k-1] {
				replay.Play(m)
			}
			statesEqual(t, "after undo", s, replay)
			if !s.Valid() {
				t.Fatal("undo left an inconsistent grid")
			}
		}
	}
}

// TestUndoPanicsAtFloor checks the initial-position and clone floors, and
// that givens are not undoable.
func TestUndoPanicsAtFloor(t *testing.T) {
	expectPanic := func(label string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", label)
			}
		}()
		f()
	}
	expectPanic("Undo on empty grid", func() { New(3).Undo() })

	g, err := ParseGivens(2, "12..\n..1.\n.1..\n..2.\n")
	if err != nil {
		t.Fatal(err)
	}
	expectPanic("Undo of a given", g.Undo)

	s := New(3)
	s.Play(s.LegalMoves(nil)[0])
	c := s.Clone().(*State)
	expectPanic("Undo past clone floor", c.Undo)
}

// TestCopyFromMatchesClone checks CopyFrom equivalence and independence.
func TestCopyFromMatchesClone(t *testing.T) {
	r := rng.New(5)
	src := New(3)
	for i := 0; i < 10; i++ {
		buf := src.LegalMoves(nil)
		src.Play(buf[r.Intn(len(buf))])
	}
	dst := New(3)
	for i := 0; i < 4; i++ {
		buf := dst.LegalMoves(nil)
		dst.Play(buf[r.Intn(len(buf))])
	}
	dst.CopyFrom(src)
	statesEqual(t, "CopyFrom", dst, src.Clone().(*State))

	before, _, _, _, _ := describe(src)
	buf := dst.LegalMoves(nil)
	if len(buf) > 0 {
		dst.Play(buf[0])
	}
	after, _, _, _, _ := describe(src)
	if before != after {
		t.Fatal("mutating a CopyFrom copy changed the source")
	}
}
