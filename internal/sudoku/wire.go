package sudoku

// Wire encoding of Sudoku positions for the distributed rank world
// (mpi.NetCluster). The constraint bitmasks are derived state, so only the
// grid itself travels, one byte per cell, plus the counters the grid alone
// cannot recover (which filled cells are givens, where the next-empty
// cursor stands):
//
//	u8 box | uvarint filled | uvarint givens | uvarint next | side² cell bytes
//
// Decoding rebuilds the row/column/box masks cell by cell, rejecting
// duplicate values as it goes, and validates the cursor invariant (every
// cell below `next` is filled), so malformed bytes return an error, never
// an inconsistent position.

import (
	"encoding/binary"
	"fmt"
)

// AppendWire appends the position's wire encoding to buf.
func (s *State) AppendWire(buf []byte) []byte {
	buf = append(buf, byte(s.box))
	buf = binary.AppendUvarint(buf, uint64(s.filled))
	buf = binary.AppendUvarint(buf, uint64(s.givens))
	buf = binary.AppendUvarint(buf, uint64(s.next))
	for _, v := range s.grid {
		buf = append(buf, byte(v))
	}
	return buf
}

// DecodeWire reconstructs a position encoded by AppendWire, consuming all
// of data. Per the clone contract the decoded position starts with an
// empty undo history floored at the shipped position.
func DecodeWire(data []byte) (*State, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("sudoku: wire: empty")
	}
	box := int(data[0])
	if box < 2 || box > 5 {
		return nil, fmt.Errorf("sudoku: wire: box side %d out of range 2..5", box)
	}
	data = data[1:]
	read := func(name string) (int, error) {
		v, used := binary.Uvarint(data)
		if used <= 0 {
			return 0, fmt.Errorf("sudoku: wire: truncated %s", name)
		}
		data = data[used:]
		return int(v), nil
	}
	filled, err := read("filled")
	if err != nil {
		return nil, err
	}
	givens, err := read("givens")
	if err != nil {
		return nil, err
	}
	next, err := read("next")
	if err != nil {
		return nil, err
	}
	s := New(box)
	cells := s.side * s.side
	if len(data) != cells {
		return nil, fmt.Errorf("sudoku: wire: grid %d bytes, want %d", len(data), cells)
	}
	if filled+givens > cells || next > cells {
		return nil, fmt.Errorf("sudoku: wire: counters filled=%d givens=%d next=%d on %d cells",
			filled, givens, next, cells)
	}
	nonEmpty := 0
	for idx, b := range data {
		if b == 0 {
			if idx < next {
				return nil, fmt.Errorf("sudoku: wire: empty cell %d below next cursor %d", idx, next)
			}
			continue
		}
		// int(b) — not int8 — so bytes ≥ 0x80 are caught here instead of
		// wrapping negative and feeding canPlace a negative shift count.
		if int(b) > s.side {
			return nil, fmt.Errorf("sudoku: wire: cell %d holds %d on a side-%d grid", idx, b, s.side)
		}
		v := int8(b)
		if !s.canPlace(idx, v) {
			return nil, fmt.Errorf("sudoku: wire: cell %d value %d conflicts", idx, v)
		}
		s.place(idx, v)
		nonEmpty++
	}
	if filled+givens != nonEmpty {
		return nil, fmt.Errorf("sudoku: wire: filled+givens = %d but %d cells are set",
			filled+givens, nonEmpty)
	}
	s.filled = filled
	s.givens = givens
	s.next = next
	return s, nil
}
