package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/parallel"
)

// runTraced executes a small traced run and returns the events and layout.
func runTraced(t *testing.T, algo parallel.Algorithm) ([]parallel.Event, cluster.Layout) {
	t.Helper()
	col := &Collector{}
	spec := cluster.Homogeneous(4)
	lay := spec.Layout(8)
	cfg := parallel.Config{
		Algo: algo, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 4, Memorize: true, FirstMoveOnly: true, Tracer: col,
		Static: true, // the figures document the paper's static protocol
	}
	_, err := parallel.RunVirtual(spec, cfg, parallel.VirtualOptions{
		UnitCost: time.Microsecond, Medians: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col.Events(), lay
}

func TestRoundRobinTraceValidates(t *testing.T) {
	// Figures 2–3: the Round-Robin protocol's event stream satisfies the
	// structural invariants of the communication diagrams.
	events, lay := runTraced(t, parallel.RoundRobin)
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	if err := Validate(events, parallel.RoundRobin, lay); err != nil {
		t.Fatalf("RR trace invalid: %v", err)
	}
	sum := Summary(events)
	if sum["a"] == 0 || sum["b"] == 0 || sum["c"] == 0 || sum["d"] == 0 {
		t.Fatalf("missing communication kinds: %v", sum)
	}
	if sum["c'"] != 0 {
		t.Fatalf("RR should have no (c') events: %v", sum)
	}
}

func TestLastMinuteTraceValidates(t *testing.T) {
	// Figures 4–5: the Last-Minute protocol adds the (c') notice, one per
	// completed job.
	events, lay := runTraced(t, parallel.LastMinute)
	if err := Validate(events, parallel.LastMinute, lay); err != nil {
		t.Fatalf("LM trace invalid: %v", err)
	}
	sum := Summary(events)
	if sum["c'"] == 0 {
		t.Fatal("LM trace has no (c') events")
	}
	if sum["c'"] != sum["c"] {
		t.Fatalf("free notices %d != results %d", sum["c'"], sum["c"])
	}
}

func TestPullTraceValidates(t *testing.T) {
	// The pull scheduler's protocol: (q) work requests, (g) grants, and an
	// availability-driven client layer where every result is preceded by a
	// free notice, for both dispatcher policies.
	for _, algo := range []parallel.Algorithm{parallel.RoundRobin, parallel.LastMinute} {
		col := &Collector{}
		spec := cluster.Homogeneous(4)
		lay := spec.Layout(8)
		cfg := parallel.Config{
			Algo: algo, Level: 2, Root: morpion.New(morpion.Var4D),
			Seed: 4, Memorize: true, FirstMoveOnly: true, Tracer: col,
		}
		if _, err := parallel.RunVirtual(spec, cfg, parallel.VirtualOptions{
			UnitCost: time.Microsecond, Medians: 8,
		}); err != nil {
			t.Fatal(err)
		}
		events := col.Events()
		if err := ValidatePull(events, lay); err != nil {
			t.Fatalf("%v: pull trace invalid: %v", algo, err)
		}
		sum := Summary(events)
		if sum["q"] == 0 || sum["g"] == 0 {
			t.Fatalf("%v: pull trace missing work requests/grants: %v", algo, sum)
		}
		if sum["a"] != 0 {
			t.Fatalf("%v: pull trace recorded static pushes: %v", algo, sum)
		}
		if sum["g"] != sum["d"] {
			t.Fatalf("%v: grants %d != scores %d", algo, sum["g"], sum["d"])
		}
	}
}

func TestValidatePullCatchesBadStreams(t *testing.T) {
	lay := cluster.Homogeneous(2).Layout(2)
	med := lay.Medians[0]

	cases := map[string][]parallel.Event{
		"q from non-median": {
			{Kind: "q", From: lay.Root, To: lay.Root},
		},
		"grant without request": {
			{Kind: "g", From: lay.Root, To: med},
			{Kind: "d", From: med, To: lay.Root},
		},
		"grant without score": {
			{Kind: "q", From: med, To: lay.Root},
			{Kind: "g", From: lay.Root, To: med},
		},
		"static push under pull": {
			{Kind: "a", From: lay.Root, To: med},
		},
	}
	for name, evs := range cases {
		if err := ValidatePull(evs, lay); err == nil {
			t.Errorf("%s: invalid pull stream accepted", name)
		}
	}
}

func TestParallelismObserved(t *testing.T) {
	// Figures 3(e) and 5(e'): with several clients, jobs overlap in time.
	for _, algo := range []parallel.Algorithm{parallel.RoundRobin, parallel.LastMinute} {
		events, lay := runTraced(t, algo)
		if max := MaxOutstanding(events, lay); max < 2 {
			t.Errorf("%v: max outstanding jobs %d, want >= 2 (figures 3/5 parallelism)", algo, max)
		}
	}
}

func TestValidateCatchesBadStreams(t *testing.T) {
	lay := cluster.Homogeneous(2).Layout(2)
	med := lay.Medians[0]
	cli := lay.Clients[0]

	cases := map[string][]parallel.Event{
		"a from non-root": {
			{Kind: "a", From: med, To: med},
		},
		"c without job": {
			{Kind: "c", From: cli, To: med},
		},
		"unbalanced a/d": {
			{Kind: "a", From: lay.Root, To: med},
		},
		"unknown kind": {
			{Kind: "x", From: lay.Root, To: med},
		},
		"c' under RR": {
			{Kind: "c'", From: cli, To: lay.Dispatcher},
		},
	}
	for name, evs := range cases {
		if err := Validate(evs, parallel.RoundRobin, lay); err == nil {
			t.Errorf("%s: invalid stream accepted", name)
		}
	}
}

func TestValidateAcceptsMinimalRound(t *testing.T) {
	lay := cluster.Homogeneous(1).Layout(1)
	med := lay.Medians[0]
	cli := lay.Clients[0]
	evs := []parallel.Event{
		{Kind: "a", From: lay.Root, To: med},
		{Kind: "b", From: med, To: lay.Dispatcher},
		{Kind: "b", From: lay.Dispatcher, To: med},
		{Kind: "b", From: med, To: cli},
		{Kind: "c", From: cli, To: med},
		{Kind: "d", From: med, To: lay.Root},
	}
	if err := Validate(evs, parallel.RoundRobin, lay); err != nil {
		t.Fatalf("minimal valid round rejected: %v", err)
	}
}

func TestDiagramRendering(t *testing.T) {
	events, lay := runTraced(t, parallel.LastMinute)
	d := Diagram(events, lay, 120)
	for _, want := range []string{"root", "dispatcher", "median[", "client[", "--a-->"} {
		if !strings.Contains(d, want) {
			t.Errorf("diagram missing %q:\n%s", want, d)
		}
	}
	if !strings.Contains(d, "more events") {
		t.Error("diagram should truncate long streams")
	}
}

func TestMaxOutstandingSingleClient(t *testing.T) {
	// With one client there is never more than one job in flight.
	col := &Collector{}
	spec := cluster.Homogeneous(1)
	cfg := parallel.Config{
		Algo: parallel.LastMinute, Level: 2, Root: game.NewArmTree(3, 2, 9),
		Seed: 1, Memorize: true, Tracer: col,
	}
	_, err := parallel.RunVirtual(spec, cfg, parallel.VirtualOptions{
		UnitCost: time.Microsecond, Medians: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	lay := spec.Layout(4)
	if max := MaxOutstanding(col.Events(), lay); max != 1 {
		t.Fatalf("single client max outstanding %d, want 1", max)
	}
}
