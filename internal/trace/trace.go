// Package trace records and validates the parallel protocol's
// communications against the paper's figures 2–5.
//
// The paper describes the Round-Robin protocol as four communications —
// (a) root→median position, (b) median↔dispatcher↔client distribution,
// (c) client→median result, (d) median→root score — and notes (fig. 3)
// that (b), (c) and (d) occur in parallel. The Last-Minute protocol adds
// (c′), the client→dispatcher availability notice (fig. 4), again with
// parallel communications (fig. 5).
//
// Validate checks a recorded event stream for the structural invariants of
// those diagrams; Diagram renders the stream as an ASCII sequence diagram
// (the figure analogues); MaxOutstanding quantifies the parallelism shown
// by figures 3 and 5.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/parallel"
)

// Collector records protocol events; it implements parallel.Tracer and is
// safe for concurrent use (the wall transport runs processes in parallel).
type Collector struct {
	mu     sync.Mutex
	events []parallel.Event
}

// Record implements parallel.Tracer.
func (c *Collector) Record(e parallel.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the recorded stream in record order.
func (c *Collector) Events() []parallel.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]parallel.Event(nil), c.events...)
}

// roles classifies ranks for validation.
type roles struct {
	root       mpi.Rank
	dispatcher mpi.Rank
	median     map[mpi.Rank]bool
	client     map[mpi.Rank]bool
}

func newRoles(lay cluster.Layout) roles {
	r := roles{root: lay.Root, dispatcher: lay.Dispatcher,
		median: map[mpi.Rank]bool{}, client: map[mpi.Rank]bool{}}
	for _, m := range lay.Medians {
		r.median[m] = true
	}
	for _, c := range lay.Clients {
		r.client[c] = true
	}
	return r
}

// ValidatePull checks the structural invariants of the pull scheduler's
// protocol: work requests (q) go median→root, grants (g) root→median with
// at most one grant per request, every grant is answered by a score (d),
// and the client layer keeps the (b)/(c)/(c') invariants with every client
// announcing availability after every job (the demand dispatcher is
// availability-driven for both policies).
func ValidatePull(events []parallel.Event, lay cluster.Layout) error {
	ro := newRoles(lay)
	var nQ, nG, nD, nJobs, nResults, nFree int
	outstanding := map[mpi.Rank]int{} // jobs in flight per client

	for i, e := range events {
		switch e.Kind {
		case "q": // work request: an idle median pulls from the root
			if !ro.median[e.From] || e.To != ro.root {
				return fmt.Errorf("event %d: (q) must go median->root, got %d->%d", i, e.From, e.To)
			}
			nQ++
		case "g": // work grant: the root ships the next candidate
			if e.From != ro.root || !ro.median[e.To] {
				return fmt.Errorf("event %d: (g) must go root->median, got %d->%d", i, e.From, e.To)
			}
			nG++
		case "b":
			switch {
			case ro.median[e.From] && e.To == ro.dispatcher:
				// request
			case e.From == ro.dispatcher && ro.median[e.To]:
				// assignment
			case ro.median[e.From] && ro.client[e.To]:
				nJobs++
				outstanding[e.To]++
			default:
				return fmt.Errorf("event %d: (b) between unexpected roles %d->%d", i, e.From, e.To)
			}
		case "c":
			if !ro.client[e.From] || !ro.median[e.To] {
				return fmt.Errorf("event %d: (c) must go client->median, got %d->%d", i, e.From, e.To)
			}
			if outstanding[e.From] <= 0 {
				return fmt.Errorf("event %d: client %d sent a result with no job in flight", i, e.From)
			}
			outstanding[e.From]--
			nResults++
		case "c'":
			if !ro.client[e.From] || e.To != ro.dispatcher {
				return fmt.Errorf("event %d: (c') must go client->dispatcher, got %d->%d", i, e.From, e.To)
			}
			nFree++
		case "d":
			if !ro.median[e.From] || e.To != ro.root {
				return fmt.Errorf("event %d: (d) must go median->root, got %d->%d", i, e.From, e.To)
			}
			nD++
		default:
			return fmt.Errorf("event %d: unknown kind %q under pull scheduling", i, e.Kind)
		}
	}

	if nG > nQ {
		return fmt.Errorf("more grants than requests: %d grants, %d requests", nG, nQ)
	}
	if nD != nG {
		return fmt.Errorf("every grant needs a score: %d grants, %d scores", nG, nD)
	}
	if nJobs != nResults {
		return fmt.Errorf("every job needs a result: %d jobs, %d results", nJobs, nResults)
	}
	if nFree != nResults {
		return fmt.Errorf("every result needs a free notice: %d results, %d notices", nResults, nFree)
	}
	for c, n := range outstanding {
		if n != 0 {
			return fmt.Errorf("client %d still has %d jobs in flight at end of trace", c, n)
		}
	}
	return nil
}

// Validate checks the structural invariants of the paper's communication
// diagrams on an event stream recorded from a static-scheduler run with
// the given layout and algorithm. It returns nil when the stream is
// consistent. Pull-scheduler streams are validated by ValidatePull.
func Validate(events []parallel.Event, algo parallel.Algorithm, lay cluster.Layout) error {
	ro := newRoles(lay)
	var nA, nD, nJobs, nResults, nFree int
	outstanding := map[mpi.Rank]int{} // jobs in flight per client

	for i, e := range events {
		switch e.Kind {
		case "a": // fig 2(a): root sends a position to a median
			if e.From != ro.root || !ro.median[e.To] {
				return fmt.Errorf("event %d: (a) must go root->median, got %d->%d", i, e.From, e.To)
			}
			nA++
		case "b": // fig 2(b): request, assignment or job shipment
			switch {
			case ro.median[e.From] && e.To == ro.dispatcher:
				// request
			case e.From == ro.dispatcher && ro.median[e.To]:
				// assignment
			case ro.median[e.From] && ro.client[e.To]:
				nJobs++
				outstanding[e.To]++
			default:
				return fmt.Errorf("event %d: (b) between unexpected roles %d->%d", i, e.From, e.To)
			}
		case "c": // fig 2(c): client returns a result to its median
			if !ro.client[e.From] || !ro.median[e.To] {
				return fmt.Errorf("event %d: (c) must go client->median, got %d->%d", i, e.From, e.To)
			}
			if outstanding[e.From] <= 0 {
				return fmt.Errorf("event %d: client %d sent a result with no job in flight", i, e.From)
			}
			outstanding[e.From]--
			nResults++
		case "c'": // fig 4(c'): Last-Minute availability notice
			if algo != parallel.LastMinute {
				return fmt.Errorf("event %d: (c') recorded under %v", i, algo)
			}
			if !ro.client[e.From] || e.To != ro.dispatcher {
				return fmt.Errorf("event %d: (c') must go client->dispatcher, got %d->%d", i, e.From, e.To)
			}
			nFree++
		case "d": // fig 2(d): median reports the game score to the root
			if !ro.median[e.From] || e.To != ro.root {
				return fmt.Errorf("event %d: (d) must go median->root, got %d->%d", i, e.From, e.To)
			}
			nD++
		default:
			return fmt.Errorf("event %d: unknown kind %q", i, e.Kind)
		}
	}

	if nA != nD {
		return fmt.Errorf("every position (a) needs a score (d): %d positions, %d scores", nA, nD)
	}
	if nJobs != nResults {
		return fmt.Errorf("every job needs a result: %d jobs, %d results", nJobs, nResults)
	}
	if algo == parallel.LastMinute && nFree != nResults {
		return fmt.Errorf("Last-Minute: every result needs a free notice: %d results, %d notices", nResults, nFree)
	}
	if algo == parallel.RoundRobin && nFree != 0 {
		return fmt.Errorf("Round-Robin recorded %d free notices", nFree)
	}
	for c, n := range outstanding {
		if n != 0 {
			return fmt.Errorf("client %d still has %d jobs in flight at end of trace", c, n)
		}
	}
	return nil
}

// MaxOutstanding returns the maximum number of client jobs simultaneously
// in flight — the parallelism depicted by figures 3(e) and 5(e′). A value
// above 1 means communications genuinely overlapped.
func MaxOutstanding(events []parallel.Event, lay cluster.Layout) int {
	ro := newRoles(lay)
	type edge struct {
		at    time.Duration
		seq   int
		delta int
	}
	var edges []edge
	for i, e := range events {
		switch {
		case e.Kind == "b" && ro.median[e.From] && ro.client[e.To]:
			edges = append(edges, edge{e.At, i, +1})
		case e.Kind == "c":
			edges = append(edges, edge{e.At, i, -1})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].seq < edges[j].seq
	})
	cur, max := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// Diagram renders up to limit events as an ASCII sequence diagram in the
// spirit of the paper's figures 2 and 4. Ranks are labelled by role.
func Diagram(events []parallel.Event, lay cluster.Layout, limit int) string {
	ro := newRoles(lay)
	label := func(r mpi.Rank) string {
		switch {
		case r == ro.root:
			return "root"
		case r == ro.dispatcher:
			return "dispatcher"
		case ro.median[r]:
			return fmt.Sprintf("median[%d]", r)
		case ro.client[r]:
			return fmt.Sprintf("client[%d]", r)
		default:
			return fmt.Sprintf("rank[%d]", r)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-14s %-5s %s\n", "time", "from", "", "to")
	n := len(events)
	if limit > 0 && n > limit {
		n = limit
	}
	for _, e := range events[:n] {
		fmt.Fprintf(&b, "%-14s %-14s --%s--> %s\n",
			e.At.Truncate(time.Microsecond), label(e.From), e.Kind, label(e.To))
	}
	if n < len(events) {
		fmt.Fprintf(&b, "... (%d more events)\n", len(events)-n)
	}
	return b.String()
}

// Summary counts events by kind.
func Summary(events []parallel.Event) map[string]int {
	out := map[string]int{}
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}
