package vtime

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := NewSim()
	var woke time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	end := s.Run()
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if end != 5*time.Second {
		t.Fatalf("sim ended at %v, want 5s", end)
	}
}

func TestParallelSleepsOverlap(t *testing.T) {
	// Two processes sleeping 10s concurrently finish at 10s, not 20s —
	// virtual time models parallel hardware.
	s := NewSim()
	for i := 0; i < 2; i++ {
		s.Spawn("p", func(p *Proc) { p.Advance(10 * time.Second) })
	}
	if end := s.Run(); end != 10*time.Second {
		t.Fatalf("parallel advance ended at %v, want 10s", end)
	}
}

func TestSequentialOrderingWithinProcess(t *testing.T) {
	s := NewSim()
	var marks []time.Duration
	s.Spawn("p", func(p *Proc) {
		p.Sleep(time.Second)
		marks = append(marks, p.Now())
		p.Sleep(2 * time.Second)
		marks = append(marks, p.Now())
	})
	s.Run()
	if len(marks) != 2 || marks[0] != time.Second || marks[1] != 3*time.Second {
		t.Fatalf("marks = %v", marks)
	}
}

func TestAtClosuresRunInOrder(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", order)
		}
	}
}

func TestParkWake(t *testing.T) {
	s := NewSim()
	ready := false
	var consumerDone time.Duration
	consumer := s.Spawn("consumer", func(p *Proc) {
		for !ready {
			p.Park()
		}
		consumerDone = p.Now()
	})
	s.Spawn("producer", func(p *Proc) {
		p.Sleep(7 * time.Second)
		ready = true
		s.Wake(consumer)
	})
	s.Run()
	if consumerDone != 7*time.Second {
		t.Fatalf("consumer finished at %v, want 7s", consumerDone)
	}
}

func TestSpuriousWakeupHandled(t *testing.T) {
	// Waking a process whose predicate is still false must not break it.
	s := NewSim()
	ready := false
	finished := false
	consumer := s.Spawn("consumer", func(p *Proc) {
		for !ready {
			p.Park()
		}
		finished = true
	})
	s.Spawn("noise", func(p *Proc) {
		p.Sleep(time.Second)
		s.Wake(consumer) // spurious: predicate still false
		p.Sleep(time.Second)
		ready = true
		s.Wake(consumer)
	})
	s.Run()
	if !finished {
		t.Fatal("consumer never finished")
	}
}

func TestRunReturnsWithParkedProcesses(t *testing.T) {
	s := NewSim()
	s.Spawn("server", func(p *Proc) {
		for {
			p.Park() // waits forever: no one wakes it
		}
	})
	done := make(chan time.Duration)
	go func() { done <- s.Run() }()
	select {
	case end := <-done:
		if end != 0 {
			t.Fatalf("end = %v, want 0", end)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return with a parked server")
	}
	if parked := s.Parked(); len(parked) != 1 || parked[0] != "server" {
		t.Fatalf("Parked() = %v", parked)
	}
	s.Close()
	if parked := s.Parked(); len(parked) != 0 {
		t.Fatalf("after Close, Parked() = %v", parked)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := NewSim()
	var childTime time.Duration
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(3 * time.Second)
		s.Spawn("child", func(c *Proc) {
			c.Sleep(2 * time.Second)
			childTime = c.Now()
		})
	})
	s.Run()
	if childTime != 5*time.Second {
		t.Fatalf("child finished at %v, want 5s", childTime)
	}
}

func TestDeterminism(t *testing.T) {
	// The same program produces the identical event trace twice.
	run := func() []time.Duration {
		s := NewSim()
		var trace []time.Duration
		var procs []*Proc
		for i := 0; i < 5; i++ {
			i := i
			procs = append(procs, s.Spawn("w", func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(time.Duration(i+1) * time.Second)
					trace = append(trace, p.Now())
				}
			}))
		}
		_ = procs
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNegativeDelaysClamped(t *testing.T) {
	s := NewSim()
	ran := false
	s.At(-time.Second, func() { ran = true })
	s.Spawn("p", func(p *Proc) { p.Sleep(-5) })
	if end := s.Run(); end != 0 {
		t.Fatalf("negative delays advanced the clock to %v", end)
	}
	if !ran {
		t.Fatal("negative-delay closure never ran")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	s := NewSim()
	s.MaxSteps = 100
	s.Spawn("spinner", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
		}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not panic")
		}
	}()
	s.Run()
}

func TestStepsCounter(t *testing.T) {
	s := NewSim()
	s.At(time.Second, func() {})
	s.At(2*time.Second, func() {})
	s.Run()
	if s.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", s.Steps())
	}
}

func TestManyProcessesScale(t *testing.T) {
	// 200 processes, a chain of wakes: P(i) wakes P(i+1).
	s := NewSim()
	const n = 200
	procs := make([]*Proc, n)
	tokens := make([]bool, n)
	var last time.Duration
	for i := n - 1; i >= 0; i-- {
		i := i
		procs[i] = s.Spawn("chain", func(p *Proc) {
			for !tokens[i] {
				p.Park()
			}
			p.Advance(time.Millisecond)
			if i+1 < n {
				tokens[i+1] = true
				s.Wake(procs[i+1])
			} else {
				last = p.Now()
			}
		})
	}
	s.At(0, func() {
		tokens[0] = true
		s.Wake(procs[0])
	})
	s.Run()
	if last != n*time.Millisecond {
		t.Fatalf("chain finished at %v, want %v", last, n*time.Millisecond)
	}
	s.Close()
}
