// Package vtime is a deterministic discrete-event simulator with
// cooperative goroutine processes.
//
// It is the substitution substrate for the paper's physical cluster: the
// parallel search processes (root, medians, dispatcher, clients) run as
// goroutines against a virtual clock. Exactly one process executes at a
// time — the scheduler hands control to the process owning the earliest
// pending event and waits for it to park again — so simulations are fully
// deterministic: same seed, same event order, same virtual makespan,
// regardless of the host's core count or load. Ties in event time are
// broken by schedule order (a monotonically increasing sequence number).
//
// Processes spend virtual CPU time with Proc.Advance (the cluster layer
// scales real work units by per-node speed, modelling the paper's
// heterogeneous 1.86/2.33 GHz nodes) and communicate through higher-level
// primitives (internal/mpi) built on Park/Wake.
package vtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Sim is a discrete-event simulation. Create with NewSim; not safe for use
// from multiple host goroutines except through the documented process API.
type Sim struct {
	now    time.Duration
	seq    uint64
	events eventHeap

	ctl    chan struct{} // control handoff: process -> scheduler
	procs  []*Proc
	nSteps uint64 // events executed, for introspection and loop guards

	// MaxSteps aborts Run with a panic after this many events when >0;
	// a backstop against accidental infinite simulations in tests.
	MaxSteps uint64
}

// NewSim returns an empty simulation at virtual time zero.
func NewSim() *Sim {
	return &Sim{ctl: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.nSteps }

type event struct {
	t   time.Duration
	seq uint64
	// Exactly one of fn / p is set: fn events run inline in the scheduler,
	// p events resume a parked process.
	fn func()
	p  *Proc
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (s *Sim) push(e *event) { e.seq = s.seq; s.seq++; heap.Push(&s.events, e) }

// At schedules fn to run after delay of virtual time. fn executes in
// scheduler context: it must not block, Park or Sleep; it may schedule
// further events and Wake processes. Negative delays are treated as zero.
func (s *Sim) At(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.push(&event{t: s.now + delay, fn: fn})
}

// Proc is a simulated process. Its body runs on a dedicated goroutine but
// only while the scheduler has handed it control.
type Proc struct {
	Name string

	sim      *Sim
	resume   chan struct{}
	done     bool
	parked   bool
	shutdown bool
}

// errShutdown is panicked inside a process body when the simulation is
// closed; the spawn trampoline recovers it.
type errShutdown struct{}

// Spawn creates a process and schedules its body to start at the current
// virtual time. It may be called before Run or from inside a running
// process.
func (s *Sim) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{Name: name, sim: s, resume: make(chan struct{})}
	s.procs = append(s.procs, p)
	p.parked = true // waiting for its start event
	s.push(&event{t: s.now, p: p})
	go func() {
		<-p.resume
		p.parked = false
		defer func() {
			p.done = true
			if r := recover(); r != nil {
				if _, ok := r.(errShutdown); ok {
					s.ctl <- struct{}{}
					return
				}
				// Real panic from the body: mark done and re-raise on the
				// process goroutine after releasing the scheduler would
				// deadlock tests; instead surface it via the control
				// channel by panicking the whole program with context.
				panic(fmt.Sprintf("vtime: process %q panicked: %v", name, r))
			}
			s.ctl <- struct{}{}
		}()
		body(p)
	}()
	return p
}

// Run executes events until none remain, then returns the final virtual
// time. Processes still parked when the queue drains (e.g. servers waiting
// for requests) simply stay parked; use Close to terminate them.
func (s *Sim) Run() time.Duration {
	for len(s.events) > 0 {
		s.nSteps++
		if s.MaxSteps > 0 && s.nSteps > s.MaxSteps {
			panic("vtime: MaxSteps exceeded, runaway simulation")
		}
		e := heap.Pop(&s.events).(*event)
		if e.t > s.now {
			s.now = e.t
		}
		switch {
		case e.fn != nil:
			e.fn()
		case e.p.done:
			// Stale wakeup for a finished process.
		case !e.p.parked:
			// Stale wakeup: the process was already resumed by an earlier
			// event at this timestamp and is parked... or not parked at
			// all. Since only the scheduler runs here, !parked means the
			// wakeup is redundant; drop it.
		default:
			e.p.parked = false
			e.p.resume <- struct{}{}
			<-s.ctl
		}
	}
	return s.now
}

// Close terminates every parked process by resuming it with a shutdown
// signal, releasing their goroutines. The simulation cannot be used
// afterwards.
func (s *Sim) Close() {
	for _, p := range s.procs {
		if p.done || !p.parked {
			continue
		}
		p.shutdown = true
		p.parked = false
		p.resume <- struct{}{}
		<-s.ctl
	}
}

// Parked returns the names of processes currently parked, for debugging
// stuck simulations.
func (s *Sim) Parked() []string {
	var names []string
	for _, p := range s.procs {
		if !p.done && p.parked {
			names = append(names, p.Name)
		}
	}
	return names
}

// park hands control back to the scheduler and blocks until resumed.
func (p *Proc) park() {
	p.parked = true
	p.sim.ctl <- struct{}{}
	<-p.resume
	if p.shutdown {
		panic(errShutdown{})
	}
}

// Park blocks the process until another event wakes it with Sim.Wake.
// Spurious wakeups are possible; callers must re-check their condition in
// a loop, condition-variable style.
func (p *Proc) Park() { p.park() }

// Wake schedules q to resume at the current virtual time. Safe to call
// from scheduler context (At closures) or from another process. Waking a
// non-parked or finished process is a harmless no-op at dispatch time.
func (s *Sim) Wake(q *Proc) {
	s.push(&event{t: s.now, p: q})
}

// Sleep blocks the process for d of virtual time. Other events targeting
// the process during the sleep (e.g. message deliveries) do not shorten
// it: the process re-parks until its deadline has passed.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	deadline := p.sim.now + d
	p.sim.push(&event{t: deadline, p: p})
	for {
		p.park()
		if p.sim.now >= deadline {
			return
		}
	}
}

// Advance spends d of virtual CPU time. Semantically identical to Sleep —
// the distinction is documentation: Advance models computation, Sleep
// models waiting.
func (p *Proc) Advance(d time.Duration) { p.Sleep(d) }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Sim returns the simulation owning the process.
func (p *Proc) Sim() *Sim { return p.sim }
