package vtime

import "time"

// Clock is a monotonic time source: Now returns the elapsed duration since
// an arbitrary fixed origin. It is the single clock abstraction shared by
// everything in the repository that meters elapsed time — deadline polling
// (core.Options.Stop), batch flush deadlines, idle accounting — so that a
// virtual-time harness run charges all of them against the same simulated
// clock instead of mixing simulated and wall time. Sim, Proc and the
// cluster transports (mpi.Comm) all satisfy it; Wall adapts the host's
// monotonic clock for real processes.
type Clock interface {
	Now() time.Duration
}

// wallClock reads the host monotonic clock, reported as the duration since
// the clock was created.
type wallClock struct{ origin time.Time }

func (w wallClock) Now() time.Duration { return time.Since(w.origin) }

// Wall returns a Clock backed by the host's monotonic clock. The origin is
// the moment of the call, which keeps readings small and comparable the way
// virtual-time readings are; only differences between readings are
// meaningful, as with any Clock.
func Wall() Clock { return wallClock{origin: time.Now()} }

var (
	_ Clock = (*Sim)(nil)
	_ Clock = (*Proc)(nil)
)
