package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Mean() != 0 || a.Stddev() != 0 {
		t.Fatal("zero accumulator not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
	// Known data set: population stddev 2, sample stddev sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(a.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", a.Stddev(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccSingleSample(t *testing.T) {
	var a Acc
	a.Add(3.5)
	if a.Var() != 0 || a.Stddev() != 0 {
		t.Fatal("variance of single sample should be 0")
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatal("min/max wrong for single sample")
	}
}

func TestAccMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		// Keep values in a moderate range to avoid pathological float
		// comparisons; Welford vs naive two-pass should agree closely.
		var a Acc
		sum := 0.0
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			clean = append(clean, x)
			a.Add(x)
			sum += x
		}
		if len(clean) == 0 {
			return true
		}
		mean := sum / float64(len(clean))
		if math.Abs(a.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		if len(clean) < 2 {
			return true
		}
		ss := 0.0
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(len(clean)-1)
		return math.Abs(a.Var()-naive) <= 1e-6*(1+naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{10 * time.Second, "10s"},
		{9 * time.Second, "09s"},
		{112 * time.Second, "01m52s"},
		{8*time.Minute + 3*time.Second, "08m03s"},
		{time.Hour + 7*time.Minute + 33*time.Second, "1h07m33s"},
		{28*time.Hour + 6*time.Second, "01d04h00m"},
		{9*24*time.Hour + 18*time.Hour + 58*time.Minute, "09d18h58m"},
		{500 * time.Millisecond, "500ms"},
		{-10 * time.Second, "-10s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestPaperStyle(t *testing.T) {
	var a Acc
	if a.PaperStyle() != "—" {
		t.Errorf("empty accumulator = %q", a.PaperStyle())
	}
	a.AddDuration(130 * time.Minute)
	if got := a.PaperStyle(); got != "(2h10m00s)" {
		t.Errorf("single run = %q, want parenthesized", got)
	}
	a.AddDuration(130 * time.Minute)
	got := a.PaperStyle()
	if !strings.HasPrefix(got, "2h10m00s (") {
		t.Errorf("multi run = %q", got)
	}
}

func TestDurationAccumulator(t *testing.T) {
	var a Acc
	a.AddDuration(10 * time.Second)
	a.AddDuration(20 * time.Second)
	if a.MeanDuration() != 15*time.Second {
		t.Fatalf("mean duration = %v", a.MeanDuration())
	}
	if a.StddevDuration() <= 0 {
		t.Fatal("stddev duration should be positive")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "Table II: first move times",
		Header: []string{"clients", "level 3", "level 4"},
		Rows: [][]string{
			{"64", "10s (1s)", "33m11s (1m33s)"},
			{"1", "09m07s (28s)", "(29h56m14s)"},
		},
	}
	out := tbl.Render()
	for _, want := range []string{"Table II", "clients", "64", "09m07s (28s)", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatPercentAndUtilization(t *testing.T) {
	if got := FormatPercent(0.346); got != "34.6%" {
		t.Fatalf("FormatPercent: %q", got)
	}
	if got := Utilization(30*time.Second, 2*time.Minute); got != 0.25 {
		t.Fatalf("Utilization: %v", got)
	}
	if got := Utilization(time.Second, 0); got != 0 {
		t.Fatalf("Utilization with zero total: %v", got)
	}
}
