// Package stats provides the small statistics and formatting toolkit used
// by the experiment harness: Welford accumulators for mean and standard
// deviation, and duration formatting in the style of the paper's tables
// ("1h07m33s (42s)" — mean with standard deviation in parentheses).
package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Acc accumulates samples with Welford's online algorithm, which is
// numerically stable for long runs. The zero value is an empty accumulator.
type Acc struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one sample into the accumulator.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples.
func (a *Acc) N() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Acc) Mean() float64 { return a.mean }

// Min returns the smallest sample (0 when empty).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest sample (0 when empty).
func (a *Acc) Max() float64 { return a.max }

// Var returns the unbiased sample variance (0 with fewer than two samples).
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Stddev returns the unbiased sample standard deviation.
func (a *Acc) Stddev() float64 { return math.Sqrt(a.Var()) }

// AddDuration folds a duration sample in.
func (a *Acc) AddDuration(d time.Duration) { a.Add(d.Seconds()) }

// MeanDuration returns the mean as a duration.
func (a *Acc) MeanDuration() time.Duration {
	return time.Duration(a.mean * float64(time.Second))
}

// StddevDuration returns the standard deviation as a duration.
func (a *Acc) StddevDuration() time.Duration {
	return time.Duration(a.Stddev() * float64(time.Second))
}

// FormatDuration renders d the way the paper's tables do: "09s", "01m52s",
// "1h07m33s", "28h00m06s", "09d18h58m". Daily scale drops seconds, hourly
// scale keeps them, sub-hour scale drops the hour field.
func FormatDuration(d time.Duration) string {
	if d < 0 {
		return "-" + FormatDuration(-d)
	}
	const day = 24 * time.Hour
	switch {
	case d >= day:
		days := d / day
		h := (d % day) / time.Hour
		m := (d % time.Hour) / time.Minute
		return fmt.Sprintf("%02dd%02dh%02dm", days, h, m)
	case d >= time.Hour:
		h := d / time.Hour
		m := (d % time.Hour) / time.Minute
		s := (d % time.Minute) / time.Second
		return fmt.Sprintf("%dh%02dm%02ds", h, m, s)
	case d >= time.Minute:
		m := d / time.Minute
		s := (d % time.Minute) / time.Second
		return fmt.Sprintf("%02dm%02ds", m, s)
	case d >= time.Second:
		return fmt.Sprintf("%02ds", d/time.Second)
	default:
		return fmt.Sprintf("%dms", d/time.Millisecond)
	}
}

// FormatPercent renders a ratio as a percentage with one decimal, for the
// idle-time and utilization columns of the scheduler tables.
func FormatPercent(x float64) string {
	return fmt.Sprintf("%.1f%%", 100*x)
}

// Utilization returns busy/total as a ratio in [0, 1], or 0 when total is
// not positive.
func Utilization(busy, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(busy) / float64(total)
}

// MeanFraction returns the mean of parts[i]/whole — e.g. the mean idle
// fraction of a rank group over a run's makespan. Zero when parts is
// empty or whole is not positive.
func MeanFraction(parts []time.Duration, whole time.Duration) float64 {
	if len(parts) == 0 {
		return 0
	}
	var sum time.Duration
	for _, p := range parts {
		sum += p
	}
	return Utilization(sum, whole*time.Duration(len(parts)))
}

// PaperStyle renders the accumulator the way the paper's tables report
// times: mean with the standard deviation in parentheses; a single run is
// rendered fully parenthesized, as in "(2h10m)", matching the paper's
// convention for results that were run only once.
func (a *Acc) PaperStyle() string {
	if a.n == 0 {
		return "—"
	}
	if a.n == 1 {
		return "(" + FormatDuration(a.MeanDuration()) + ")"
	}
	return fmt.Sprintf("%s (%s)", FormatDuration(a.MeanDuration()), FormatDuration(a.StddevDuration()))
}

// Table renders rows of cells as an aligned plain-text table with a header,
// in the visual style of the paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
	Title  string
}

// Render returns the aligned table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}
