// Package service turns the one-shot parallel search into a long-lived,
// concurrent search service: the serving shape of Tesauro & Galperin's
// on-line policy improvement, backed by the paper's root/median/client
// cluster.
//
// A Manager owns one parallel.Pool — a persistent worker pool whose
// medians and clients are built once and reused across every job — and
// multiplexes concurrently submitted jobs onto it. Each job gets a
// job-slot root rank for the time it runs; the pool's shared scheduler
// feeds idle medians from per-job candidate queues (PR 2's pull protocol
// lifted to many roots), so one wide job cannot starve the others.
//
// Lifecycle of a job:
//
//	Submit ──▶ queued ──▶ running ──▶ done
//	              │           ├────▶ cancelled   (Cancel, ctx, Shutdown)
//	              │           └────▶ done (Stopped) on Deadline
//	              └──────────────▶ cancelled     (Cancel while queued)
//
// Backpressure is bounded and explicit: at most Config.Slots jobs run at
// once, at most Config.QueueLimit wait behind them, and a Submit beyond
// that returns ErrSaturated immediately (cmd/pnmcsd maps it to HTTP 503)
// — the service sheds load instead of buffering unboundedly.
//
// Determinism survives multiplexing: a job's score and move sequence are
// bit-identical to the same JobSpec run solo through parallel.RunWall
// with the same seed, no matter what else shares the pool (the
// equivalence and storm tests pin this).
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/game"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/vtime"
)

// Config sizes a Manager.
//
// Several fields mirror a knob of the pool the manager builds
// (parallel.PoolConfig / parallel.NetPoolConfig); for those, the parallel
// declaration is the source of truth for semantics and defaults, and the
// doc here only says which field is forwarded.
type Config struct {
	// Slots is the number of jobs served concurrently
	// (parallel.PoolConfig.Slots). Default 4.
	Slots int
	// Medians / Clients size the shared worker pool
	// (parallel.PoolConfig.Medians / Clients). Defaults 4 / 8.
	Medians int
	Clients int
	// QueueLimit bounds the jobs waiting for a free slot; a Submit beyond
	// Slots running + QueueLimit queued is rejected with ErrSaturated.
	// Default 16; negative means no queue (running jobs only).
	QueueLimit int
	// Retain bounds the terminal jobs kept for status queries: beyond it
	// the oldest finished job is evicted (its id then answers
	// ErrNotFound), so a long-lived service holds bounded memory.
	// Default 1024; negative evicts terminal jobs immediately.
	Retain int
	// Algo orders the shared dispatcher's pending rollouts
	// (parallel.PoolConfig.Algo); default LastMinute (the paper's best
	// policy). Never changes job results.
	Algo parallel.Algorithm

	// Evaluator is the default rollout evaluator applied to jobs whose
	// spec leaves JobSpec.Evaluator empty (a registered game.Evaluator
	// name, e.g. "heuristic", forwarded as parallel.Config.Evaluator).
	// Empty means uniform playouts; a job opts back out of a non-empty
	// default with the spec sentinel "uniform" (EvaluatorUniform).
	// Validated by New.
	Evaluator string
	// EvalBatch / EvalFlush shape the per-worker evaluation batching
	// (parallel.PoolConfig.EvalBatch / EvalFlush; the batch size is
	// capped at the client ranks a process hosts). Defaults 8 / 2ms.
	EvalBatch int
	EvalFlush time.Duration

	// Workers, when positive, serves the pool's median and client ranks
	// from that many external pnmcs-worker processes instead of
	// goroutines: the manager becomes the coordinator of a distributed
	// rank world (parallel.NewNetPool) and listens on WorkerListen for
	// the workers to dial in. Job results are bit-identical either way.
	Workers int
	// WorkerListen is the TCP address workers dial; ":0" binds an
	// ephemeral port (read it back with Manager.WorkerAddr). Only used
	// when Workers > 0.
	WorkerListen string
	// WorkerToken, when non-empty, is the shared secret every dialing
	// worker must present at handshake (compared in constant time). Set
	// it whenever WorkerListen leaves loopback.
	WorkerToken string

	// Degrade / MinWorkers / ReplaceGrace / PendingLimit plumb the pool's
	// graceful-degradation policy through to parallel.NetPoolConfig: when
	// a lost worker is abandoned (grace expired or pending queue
	// overflowed, no replacement), Degrade lets jobs finish bit-identical
	// on the shrunken world down to MinWorkers survivors; otherwise the
	// pool fails jobs fast with parallel.ErrDegraded. Only used when
	// Workers > 0.
	Degrade      bool
	MinWorkers   int
	ReplaceGrace time.Duration
	PendingLimit int

	// Retry re-runs jobs the pool failed (degradation fail-fast, worker
	// floor) under their original seed, so a transient capacity dip costs
	// latency, never an answer: the re-run is bit-identical to what the
	// healthy pool would have produced.
	Retry RetryPolicy
	// RetrySeed seeds the manager's private jitter source for retry
	// backoff delays. Zero seeds from the clock (the production default —
	// distinct managers must not jitter in lockstep); tests set it to make
	// the backoff schedule reproducible. Job results never depend on it.
	RetrySeed uint64

	// CacheMB / CacheVerify shape the pool's shared transposition cache
	// (parallel.PoolConfig.CacheMB / CacheVerify). The cache only serves
	// jobs that opt in via JobSpec.Cache. Default 64 (MB).
	CacheMB     int
	CacheVerify bool

	// Speculate is the pool-wide default speculation width for the async
	// pipelined root (parallel.PoolConfig.Speculate): jobs whose spec
	// leaves JobSpec.Speculate zero pipeline step boundaries by
	// speculatively dispatching the next step's candidates for the top
	// Speculate leaders. 0 (the default) keeps the synchronous pull root;
	// results are bit-identical either way.
	Speculate int

	// Pools shards the service plane across that many independent worker
	// pools behind one admission layer (consumed by NewRouter; a Manager
	// built with New always owns exactly one pool). Each shard gets its
	// own Slots/Medians/Clients/QueueLimit/cache as configured above, so
	// total capacity scales linearly with Pools. Routing is placement,
	// never semantics: a job's result is bit-identical on 1 or N pools.
	// Default 1. Pools > 1 requires Workers == 0 (a distributed rank
	// world has exactly one coordinator listener).
	Pools int
	// TenantQPS, when positive, enforces a per-tenant token-bucket quota
	// at admission (consumed by NewRouter): each JobSpec.Tenant refills at
	// TenantQPS submissions per second up to TenantBurst, and a submission
	// finding the bucket empty is shed with ErrQuota (HTTP 429) before it
	// can occupy queue capacity. Zero disables quotas.
	TenantQPS float64
	// TenantBurst caps a tenant's bucket — the submissions it may burst
	// above the steady rate. Defaults to ceil(TenantQPS)+1 when quotas
	// are on.
	TenantBurst int

	// Clock supplies the time source behind JobStatus timestamps and
	// quota refill (nil = the host monotonic clock). Virtual-time tests
	// inject a fake to cover retention, latency and quota logic without
	// real sleeps. Job results never depend on it.
	Clock vtime.Clock
	// SeedBase seeds the manager's private default-seed stream for jobs
	// submitted with Seed == 0 (see Submit). Zero draws a startup seed
	// from the clock mixed with a process-wide counter, so managers
	// created in the same clock tick still hand out disjoint defaults;
	// tests set it to make assigned seeds reproducible.
	SeedBase uint64
}

// RetryPolicy bounds the per-job retry loop.
type RetryPolicy struct {
	// Max is the number of re-runs allowed per job; zero disables retry.
	Max int
	// Backoff is the base delay before the first re-run; successive
	// attempts back off exponentially (doubling, capped at 30s) with full
	// jitter in [d/2, d] so a fleet of failed jobs does not thundering-
	// herd the recovering pool. Zero defaults to 250ms when Max > 0.
	Backoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.Medians <= 0 {
		c.Medians = 4
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	// The negative "disabled" sentinels survive normalization so that
	// withDefaults is idempotent (NewRouter normalizes once for the
	// admission layer, newManager again per pool); clampNonNegative
	// applies them at the use sites.
	if c.QueueLimit == 0 {
		c.QueueLimit = 16
	}
	if c.Retain == 0 {
		c.Retain = 1024
	}
	// Loopback by default: without a WorkerToken the worker handshake
	// accepts any dialer, so a distributed manager must not listen on all
	// interfaces unless the caller asked for it explicitly (DESIGN.md §8).
	if c.Workers > 0 && c.WorkerListen == "" {
		c.WorkerListen = "127.0.0.1:0"
	}
	if c.Retry.Max > 0 && c.Retry.Backoff <= 0 {
		c.Retry.Backoff = 250 * time.Millisecond
	}
	if c.Pools <= 0 {
		c.Pools = 1
	}
	if c.TenantQPS > 0 && c.TenantBurst <= 0 {
		c.TenantBurst = int(c.TenantQPS) + 1
	}
	if c.Clock == nil {
		c.Clock = vtime.Wall()
	}
	return c
}

// clampNonNegative reads a config bound whose negative sentinel means
// "disabled" (QueueLimit, Retain): any negative value acts as zero.
func clampNonNegative(n int) int {
	if n < 0 {
		return 0
	}
	return n
}

// JobState is a job's position in its lifecycle.
type JobState string

const (
	// StateQueued: accepted, waiting for a free slot.
	StateQueued JobState = "queued"
	// StateRunning: playing on a pool slot.
	StateRunning JobState = "running"
	// StateDone: completed. Stopped marks a deadline-truncated result.
	StateDone JobState = "done"
	// StateCancelled: cancelled before completion (partial result kept).
	StateCancelled JobState = "cancelled"
	// StateFailed: rejected by the pool (bad config, pool shut down).
	StateFailed JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// JobStatus is a point-in-time snapshot of a job: its spec, lifecycle
// state, streaming progress while running, and the result once terminal.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`

	// Steps / BestScore / Sequence stream the search's progress: the root
	// game so far and the best lower-level evaluation backing its latest
	// move. On a terminal job they hold the final result.
	Steps     int         `json:"steps"`
	BestScore float64     `json:"best_score"`
	Sequence  []game.Move `json:"sequence,omitempty"`

	// Score is the final score; valid once State is terminal.
	Score float64 `json:"score"`
	// Stopped marks a result truncated by cancellation or deadline.
	Stopped bool `json:"stopped,omitempty"`
	// Rollouts / WorkUnits are the job's client-rollout count and metered
	// work, filled on completion.
	Rollouts  int64 `json:"rollouts"`
	WorkUnits int64 `json:"work_units"`
	// Regranted counts candidate grants this job lost to worker crashes
	// and had re-queued (distributed pools only). Nonzero means the job
	// rode out worker churn; the result is unaffected.
	Regranted int64 `json:"regranted,omitempty"`
	// Retries counts how many times the service re-ran this job after a
	// pool failure (Config.Retry); the final result carries the original
	// seed and spec, so a retried success is bit-identical to an
	// undisturbed one.
	Retries int `json:"retries,omitempty"`
	// Degraded marks a job that ran (or failed) on a pool shrunken by
	// permanent worker loss. Like Regranted it reports capacity, not
	// correctness.
	Degraded bool `json:"degraded,omitempty"`

	// Error is the failure reason of a StateFailed job.
	Error string `json:"error,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
}

// Metrics are the service's cumulative counters plus the pool's lifetime
// instrumentation; cmd/pnmcsd renders them at GET /metrics.
type Metrics struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"` // ErrSaturated submissions
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	Failed    int64 `json:"failed"`
	Retried   int64 `json:"retried"` // pool-failure re-runs (Config.Retry)
	Running   int   `json:"running"`
	Queued    int   `json:"queued"`
	Slots     int   `json:"slots"`

	Pool parallel.PoolMetrics `json:"pool"`
}

// ErrSaturated is returned by Submit when every slot is busy and the
// waiting queue is full. The caller should retry later (HTTP 503).
var ErrSaturated = errors.New("service: saturated: all slots busy and queue full")

// ErrClosed is returned by Submit after Shutdown has begun.
var ErrClosed = errors.New("service: shut down")

// ErrNotFound is returned for operations on unknown job ids.
var ErrNotFound = errors.New("service: no such job")

// ErrFinished is returned by Cancel on a job that already reached a
// terminal state.
var ErrFinished = errors.New("service: job already finished")

// ErrQuota is returned by Router.Submit when the submitting tenant's
// token bucket is empty (Config.TenantQPS). Unlike ErrSaturated it is a
// per-tenant verdict: other tenants are still being admitted.
// cmd/pnmcsd maps it to HTTP 429.
var ErrQuota = errors.New("service: tenant quota exhausted")

// job is the manager-internal record of one submission.
type job struct {
	status   JobStatus
	cancel   bool          // cancellation requested
	slot     int           // valid while running
	done     chan struct{} // closed when terminal
	queuePos int           // index in m.queue while queued, else -1
	// retryTimer is armed between a pool failure and the backed-off
	// re-submission; while it is non-nil the job is StateQueued but NOT
	// in m.queue (Cancel and Shutdown must stop the timer, not splice).
	retryTimer *time.Timer
	// watchers are the live Watch subscriptions: cap-1 channels carrying
	// the latest status snapshot (stale intermediates are coalesced away
	// under m.mu). All closed when the job turns terminal.
	watchers []chan JobStatus
}

// Manager is the concurrent search service. Create with New, submit with
// Submit, and tear down with Shutdown. All methods are safe for
// concurrent use.
type Manager struct {
	cfg  Config
	pool *parallel.Pool

	// clock meters every JobStatus timestamp and epoch anchors its
	// readings to wall time: a timestamp is epoch + clock.Now(). With the
	// default wall clock that is ordinary wall time; with an injected
	// virtual clock, timestamps advance exactly when the test advances it.
	clock vtime.Clock
	epoch time.Time

	mu        sync.Mutex
	jobs      map[string]*job
	terminal  []string // terminal job ids, oldest first, for Retain eviction
	queue     []*job
	freeSlots []int
	closed    bool
	drained   chan struct{} // closed when the first Shutdown finishes
	// nextID advances by idStride per submission: a Router gives each of
	// its N pools a distinct start in [1, N] and stride N, so job ids are
	// globally unique and still sort by submission order pool-locally.
	nextID   int64
	idStride int64
	// seedBase/seedCtr derive default seeds for unset-seed jobs: one
	// startup draw (or Config.SeedBase) folded with a private counter.
	// Unlike the clock-per-submission scheme this replaced, burst
	// submissions landing in the same nanosecond tick cannot collide.
	seedBase uint64
	seedCtr  uint64

	submitted, rejected, completed, cancelled, failed, retried int64

	// retryRng jitters retry-backoff delays. Guarded by m.mu (retryDelay
	// runs under it); a manager-private source instead of the global
	// math/rand both removes the global lock from the retry path and makes
	// the backoff schedule reproducible under Config.RetrySeed.
	retryRng *rng.Rand
	// after arms the retry-backoff timer; time.AfterFunc outside tests,
	// which inject a zero-delay variant to run the retry path without
	// real sleeps.
	after func(time.Duration, func()) *time.Timer
}

// startupEntropy decorrelates seed draws of managers created within the
// same clock tick: every draw folds the nanosecond clock with a
// process-wide counter, so two pools built back-to-back (exactly what
// NewRouter does) never share a default-seed stream or retry-jitter
// schedule even when the clock has not advanced between them.
var startupEntropy atomic.Uint64

func startupSeed() uint64 {
	return rng.Fold(uint64(time.Now().UnixNano()), startupEntropy.Add(1))
}

// New builds the worker pool — in-process goroutines by default, a
// distributed coordinator when Config.Workers is set — and returns an
// idle Manager owning one pool. For a sharded, quota-governed service
// plane spanning several pools, use NewRouter.
func New(cfg Config) (*Manager, error) {
	return newManager(cfg, 1, 1)
}

// newManager is New with explicit job-id numbering: ids are
// "job-(idStart + n*idStride)". A Router spreads its pools across
// disjoint residues so ids stay globally unique without coordination.
func newManager(cfg Config, idStart, idStride int64) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Evaluator != "" && !game.HasEvaluator(cfg.Evaluator) {
		return nil, fmt.Errorf("service: unknown default evaluator %q (registered: %v)",
			cfg.Evaluator, game.EvaluatorNames())
	}
	pcfg := parallel.PoolConfig{
		Slots:       cfg.Slots,
		Medians:     cfg.Medians,
		Clients:     cfg.Clients,
		Algo:        cfg.Algo,
		EvalBatch:   cfg.EvalBatch,
		EvalFlush:   cfg.EvalFlush,
		CacheMB:     cfg.CacheMB,
		CacheVerify: cfg.CacheVerify,
		Speculate:   cfg.Speculate,
	}
	var pool *parallel.Pool
	var err error
	if cfg.Workers > 0 {
		pool, err = parallel.NewNetPool(pcfg, parallel.NetPoolConfig{
			Listen:       cfg.WorkerListen,
			Workers:      cfg.Workers,
			Token:        cfg.WorkerToken,
			Degrade:      cfg.Degrade,
			MinWorkers:   cfg.MinWorkers,
			ReplaceGrace: cfg.ReplaceGrace,
			PendingLimit: cfg.PendingLimit,
		})
	} else {
		pool, err = parallel.NewPool(pcfg)
	}
	if err != nil {
		return nil, err
	}
	seed := cfg.RetrySeed
	if seed == 0 {
		// A raw UnixNano here would hand two managers built in the same
		// tick identical jitter schedules; the entropy counter breaks the
		// tie.
		seed = startupSeed()
	}
	seedBase := cfg.SeedBase
	if seedBase == 0 {
		seedBase = startupSeed()
	}
	m := &Manager{
		cfg:      cfg,
		pool:     pool,
		clock:    cfg.Clock,
		epoch:    time.Now(),
		jobs:     make(map[string]*job),
		drained:  make(chan struct{}),
		nextID:   idStart - idStride,
		idStride: idStride,
		seedBase: seedBase,
		retryRng: rng.New(seed),
		after:    time.AfterFunc,
	}
	for s := cfg.Slots - 1; s >= 0; s-- {
		m.freeSlots = append(m.freeSlots, s)
	}
	return m, nil
}

// now is the timestamp source for JobStatus fields: the manager's epoch
// advanced by the injected clock's reading.
func (m *Manager) now() time.Time { return m.epoch.Add(m.clock.Now()) }

// nextSeedLocked hands out the next default seed for a job submitted with
// Seed == 0: the startup base folded with a monotonically advancing
// counter, so a burst of submissions can never repeat a seed the way the
// clock-tick scheme this replaced could (the counter advances even when
// the clock does not; residual collisions are the 2^-64 hash kind, not
// the same-nanosecond kind). 0 — the "unset" sentinel — is skipped so an
// assigned seed always round-trips through the spec. Caller holds m.mu.
func (m *Manager) nextSeedLocked() uint64 {
	for {
		m.seedCtr++
		if s := rng.Fold(m.seedBase, m.seedCtr); s != 0 {
			return s
		}
	}
}

// finishLocked records a job's transition to a terminal state: closes its
// done channel, delivers the final snapshot to every watcher and closes
// them, and evicts the oldest terminal jobs beyond Config.Retain. Caller
// holds m.mu and has already set the terminal status.
func (m *Manager) finishLocked(j *job) {
	close(j.done)
	m.notifyLocked(j)
	for _, ch := range j.watchers {
		close(ch)
	}
	j.watchers = nil
	m.terminal = append(m.terminal, j.status.ID)
	for len(m.terminal) > clampNonNegative(m.cfg.Retain) {
		delete(m.jobs, m.terminal[0])
		m.terminal = m.terminal[:copy(m.terminal, m.terminal[1:])]
	}
}

// notifyLocked pushes the job's current snapshot to every watcher,
// latest-wins: a watcher that has not drained the previous snapshot has
// it replaced rather than queued behind (the stream is a state feed, not
// an event log — only the freshest state and the terminal state matter).
// Caller holds m.mu; all sends happen under it, so after draining the
// cap-1 buffer the re-send cannot block.
func (m *Manager) notifyLocked(j *job) {
	for _, ch := range j.watchers {
		snap := snapshotLocked(j)
		select {
		case ch <- snap:
		default:
			select {
			case <-ch:
			default:
			}
			ch <- snap
		}
	}
}

// Watch subscribes to a job's status stream: the returned channel carries
// the current snapshot immediately, then a fresh snapshot on every state
// or progress change (intermediates coalesced, latest wins), and is
// closed after the terminal snapshot is delivered. The cancel function
// detaches the subscription; it is safe to call at any point, any number
// of times. Watching an already-terminal job yields its final status and
// an immediately closed channel. cmd/pnmcsd streams this channel as the
// GET /v1/jobs/{id}/events response.
func (m *Manager) Watch(id string) (<-chan JobStatus, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan JobStatus, 1)
	ch <- snapshotLocked(j)
	if j.status.State.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	j.watchers = append(j.watchers, ch)
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, w := range j.watchers {
			if w == ch {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				return
			}
		}
	}
	return ch, cancel, nil
}

// Load is the number of admitted, non-terminal jobs — occupied slots plus
// the waiting queue. It is the cheap signal the Router ranks pools by;
// unlike Metrics it never walks the retained-job map.
func (m *Manager) Load() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return (m.cfg.Slots - len(m.freeSlots)) + len(m.queue)
}

// Submit accepts a job for execution and returns its id without waiting
// for it to run. The spec is validated up front (invalid specs are
// rejected synchronously, not recorded as failed jobs). When every slot
// is busy and the queue is full, Submit returns ErrSaturated.
//
// A spec with Seed == 0 is treated as unseeded: the manager assigns it
// the next seed of a private counter-derived stream (distinct across a
// burst of submissions, unlike the clock tick this replaced) and records
// the assignment in the job's status, keeping every result reproducible.
// Callers that want the literal behaviour of a fixed seed set one.
//
// ctx bounds the job's whole lifetime: if it is cancelled while the job
// is queued or running, the job is cancelled as by Cancel. Use
// context.Background for fire-and-forget submissions.
func (m *Manager) Submit(ctx context.Context, spec JobSpec) (string, error) {
	if _, err := spec.Config(); err != nil {
		return "", err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	if len(m.freeSlots) == 0 && len(m.queue) >= clampNonNegative(m.cfg.QueueLimit) {
		m.rejected++
		m.mu.Unlock()
		return "", ErrSaturated
	}
	m.nextID += m.idStride
	m.submitted++
	if spec.Seed == 0 {
		// Unset seed: assign one from the manager-private counter stream
		// and record it in the job's spec, so the status always names the
		// seed that reproduces the result (solo, or resubmitted).
		spec.Seed = m.nextSeedLocked()
	}
	j := &job{
		status: JobStatus{
			ID:        fmt.Sprintf("job-%d", m.nextID),
			State:     StateQueued,
			Spec:      spec,
			Submitted: m.now(),
		},
		slot:     -1,
		queuePos: -1,
		done:     make(chan struct{}),
	}
	m.jobs[j.status.ID] = j
	if len(m.freeSlots) > 0 {
		m.dispatchLocked(j)
	} else {
		j.queuePos = len(m.queue)
		m.queue = append(m.queue, j)
	}
	m.mu.Unlock()

	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				m.Cancel(j.status.ID) //nolint:errcheck // racing completion is fine
			case <-j.done:
			}
		}()
	}
	return j.status.ID, nil
}

// dispatchLocked moves a job onto a free slot. Caller holds m.mu.
func (m *Manager) dispatchLocked(j *job) {
	slot := m.freeSlots[len(m.freeSlots)-1]
	m.freeSlots = m.freeSlots[:len(m.freeSlots)-1]
	j.slot = slot
	j.queuePos = -1
	j.status.State = StateRunning
	j.status.Started = m.now()
	m.notifyLocked(j)
	go m.run(j, slot)
}

// run executes one job on its slot and then hands the slot to the next
// queued job. Runs on its own goroutine.
func (m *Manager) run(j *job, slot int) {
	cfg, err := j.status.Spec.Config()
	if err == nil && j.status.Spec.Evaluator == "" {
		// Service-default evaluator overlay. Keyed on the spec, not the
		// translated config: a spec saying "uniform" arrives here with an
		// empty cfg.Evaluator too, and must stay uniform.
		cfg.Evaluator = m.cfg.Evaluator
	}
	var res parallel.Result
	if err == nil {
		// The start races cancellation: both sides serialize on m.mu, so
		// either the cancel came first (skip — the job never runs) or the
		// job is started before Cancel calls pool.CancelJob, which then
		// observes the busy slot and lands. No cancellation is lost.
		var h *parallel.JobHandle
		m.mu.Lock()
		if j.cancel {
			res.Stopped = true
		} else {
			h, err = m.pool.StartJob(slot, cfg, func(p parallel.Progress) {
				m.mu.Lock()
				j.status.Steps = p.Steps
				j.status.BestScore = p.BestScore
				j.status.Sequence = p.Sequence
				m.notifyLocked(j)
				m.mu.Unlock()
			})
		}
		m.mu.Unlock()
		if h != nil {
			res, err = h.Wait()
		}
	}

	m.mu.Lock()
	if err != nil && !j.cancel && !m.closed && j.status.Retries < m.cfg.Retry.Max {
		// The pool failed the job (degradation fail-fast, worker floor):
		// re-run it after a jittered backoff under its original spec and
		// seed — a retried success is bit-identical to an undisturbed
		// one. The job goes back to StateQueued but stays out of m.queue
		// while the timer runs; Cancel and Shutdown key on retryTimer.
		j.status.Retries++
		m.retried++
		j.slot = -1
		j.status.State = StateQueued
		j.status.Error = err.Error() // last failure, visible while waiting
		j.status.Degraded = res.Degraded
		j.retryTimer = m.after(m.retryDelayLocked(j.status.Retries), func() { m.requeue(j) })
		m.notifyLocked(j)
		m.freeSlots = append(m.freeSlots, slot)
		m.serveQueueLocked()
		m.mu.Unlock()
		return
	}
	j.status.Finished = m.now()
	j.status.Steps = res.Steps
	j.status.Sequence = res.Sequence
	j.status.Score = res.Score
	j.status.BestScore = res.Score
	j.status.Stopped = res.Stopped
	j.status.Rollouts = res.Jobs
	j.status.WorkUnits = res.WorkUnits
	j.status.Regranted = res.Regranted
	j.status.Degraded = res.Degraded
	switch {
	case err != nil:
		j.status.State = StateFailed
		j.status.Error = err.Error()
		m.failed++
	case res.Stopped && j.cancel:
		j.status.State = StateCancelled
		m.cancelled++
	default:
		// Deadline-stopped jobs are done: the deadline is part of the
		// spec, and the partial result is the answer it asked for.
		j.status.State = StateDone
		m.completed++
	}
	m.finishLocked(j)

	m.freeSlots = append(m.freeSlots, slot)
	m.serveQueueLocked()
	m.mu.Unlock()
}

// serveQueueLocked dispatches queued jobs onto free slots. Caller holds
// m.mu.
func (m *Manager) serveQueueLocked() {
	for len(m.queue) > 0 && len(m.freeSlots) > 0 {
		next := m.queue[0]
		m.queue = m.queue[:copy(m.queue, m.queue[1:])]
		for i, q := range m.queue {
			q.queuePos = i
		}
		m.dispatchLocked(next)
	}
}

// retryDelayLocked is the backoff before re-running a failed job: Backoff
// doubled per attempt, capped at 30s, with full jitter in [d/2, d] drawn
// from the manager's private source. Caller holds m.mu, which guards
// retryRng.
func (m *Manager) retryDelayLocked(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 10 {
		shift = 10
	}
	d := m.cfg.Retry.Backoff << shift
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	half := d / 2
	return half + time.Duration(m.retryRng.Uint64n(uint64(half)+1))
}

// requeue moves a retry-waiting job back into dispatch when its backoff
// timer fires. A Cancel or Shutdown that beat the timer has already made
// the job terminal, which the state check detects.
func (m *Manager) requeue(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.retryTimer == nil || j.status.State != StateQueued || m.closed || j.cancel {
		return
	}
	j.retryTimer = nil
	if len(m.freeSlots) > 0 {
		m.dispatchLocked(j)
	} else {
		j.queuePos = len(m.queue)
		m.queue = append(m.queue, j)
	}
}

// WorkerAddr returns the address pnmcs-worker processes dial, or "" when
// the pool is in-process.
func (m *Manager) WorkerAddr() string { return m.pool.WorkerAddr() }

// Draining reports whether Shutdown has begun (submissions are refused
// while running jobs drain) — the readiness signal behind /readyz.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Get returns a snapshot of the job's status.
func (m *Manager) Get(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return snapshotLocked(j), nil
}

// snapshotLocked deep-copies the mutable slice so callers can hold the
// status across the lock.
func snapshotLocked(j *job) JobStatus {
	st := j.status
	st.Sequence = append([]game.Move(nil), st.Sequence...)
	return st
}

// Jobs returns a snapshot of every job the manager knows, newest last.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, snapshotLocked(j))
	}
	sortStatuses(out)
	return out
}

// sortStatuses orders by numeric id suffix (submission order).
func sortStatuses(s []JobStatus) {
	sort.Slice(s, func(i, k int) bool { return idNum(s[i].ID) < idNum(s[k].ID) })
}

func idNum(id string) int64 {
	var n int64
	fmt.Sscanf(id, "job-%d", &n) //nolint:errcheck // malformed ids sort first
	return n
}

// Cancel stops a queued or running job. A queued job is removed from the
// queue and terminal immediately; a running job drains its in-flight
// rollouts and completes with State cancelled. Cancelling a terminal job
// returns ErrFinished.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	if j.status.State.Terminal() {
		m.mu.Unlock()
		return ErrFinished
	}
	if j.cancel {
		m.mu.Unlock()
		return nil // already being cancelled
	}
	j.cancel = true
	switch j.status.State {
	case StateQueued:
		if j.retryTimer != nil {
			// Retry-waiting: the job is queued in name only — stop the
			// backoff timer instead of splicing m.queue (it is not there).
			j.retryTimer.Stop()
			j.retryTimer = nil
		} else {
			m.queue = append(m.queue[:j.queuePos], m.queue[j.queuePos+1:]...)
			for i, q := range m.queue {
				q.queuePos = i
			}
		}
		j.queuePos = -1
		j.status.State = StateCancelled
		j.status.Finished = m.now()
		j.status.Stopped = true
		m.cancelled++
		m.finishLocked(j)
	case StateRunning:
		m.pool.CancelJob(j.slot)
	}
	m.mu.Unlock()
	return nil
}

// Wait blocks until the job reaches a terminal state (or ctx is done) and
// returns its final status.
func (m *Manager) Wait(ctx context.Context, id string) (JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	select {
	case <-j.done:
		return m.Get(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Metrics snapshots the service counters and the pool instrumentation.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	running := 0
	for _, j := range m.jobs {
		if j.status.State == StateRunning {
			running++
		}
	}
	out := Metrics{
		Submitted: m.submitted,
		Rejected:  m.rejected,
		Completed: m.completed,
		Cancelled: m.cancelled,
		Failed:    m.failed,
		Retried:   m.retried,
		Running:   running,
		Queued:    len(m.queue),
		Slots:     m.cfg.Slots,
	}
	m.mu.Unlock()
	out.Pool = m.pool.Metrics()
	return out
}

// Shutdown drains the service and tears the pool down. New submissions
// are refused with ErrClosed immediately; queued jobs are cancelled;
// running jobs are left to finish until ctx is done, then cancelled (they
// still drain their in-flight rollouts — the pool is never dismantled
// with work in flight). Blocks until every job is terminal and the pool
// has exited. Returns ctx.Err() when the deadline forced the drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		// A concurrent Shutdown already owns the drain: wait for it to
		// finish rather than tearing the pool down under its feet (which
		// would force-cancel jobs the first caller's budget still allows
		// to complete).
		<-m.drained
		return nil
	}
	m.closed = true
	var waiting []*job
	// Retry-waiting jobs are StateQueued but outside m.queue, parked on a
	// backoff timer with no goroutine to close their done channel: cancel
	// them here or the drain below would wait forever.
	for _, j := range m.jobs {
		if j.retryTimer == nil {
			continue
		}
		j.retryTimer.Stop()
		j.retryTimer = nil
		j.cancel = true
		j.status.State = StateCancelled
		j.status.Finished = m.now()
		j.status.Stopped = true
		m.cancelled++
		m.finishLocked(j)
	}
	for len(m.queue) > 0 {
		j := m.queue[len(m.queue)-1]
		m.queue = m.queue[:len(m.queue)-1]
		j.queuePos = -1
		j.cancel = true
		j.status.State = StateCancelled
		j.status.Finished = m.now()
		j.status.Stopped = true
		m.cancelled++
		m.finishLocked(j)
	}
	for _, j := range m.jobs {
		if !j.status.State.Terminal() {
			waiting = append(waiting, j)
		}
	}
	m.mu.Unlock()

	forced := false
	for _, j := range waiting {
		select {
		case <-j.done:
			continue
		case <-ctx.Done():
		}
		// Deadline passed: force the remaining jobs to drain.
		forced = true
		m.mu.Lock()
		for _, k := range waiting {
			if k.status.State == StateRunning && !k.cancel {
				k.cancel = true
				m.pool.CancelJob(k.slot)
			}
		}
		m.mu.Unlock()
		break
	}
	for _, j := range waiting {
		<-j.done
	}
	m.pool.Shutdown()
	close(m.drained)
	if forced {
		return ctx.Err()
	}
	return nil
}
