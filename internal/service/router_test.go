package service

// Tests of the sharded service plane: routing equivalence (placement
// never changes results), least-loaded placement with saturation
// spillover, per-tenant token-bucket admission against an injected
// clock, the counter-derived default-seed stream (the burst-collision
// regression of ISSUE 10), clock-injected JobStatus timestamps, and the
// Watch streaming feed behind GET /v1/jobs/{id}/events.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a hand-advanced vtime.Clock, safe for concurrent readers.
type fakeClock struct{ d atomic.Int64 }

func (c *fakeClock) Now() time.Duration         { return time.Duration(c.d.Load()) }
func (c *fakeClock) advance(step time.Duration) { c.d.Add(int64(step)) }
func (c *fakeClock) set(reading time.Duration)  { c.d.Store(int64(reading)) }

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		r.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	})
	return r
}

// TestRouterEquivalence is the acceptance pin of ISSUE 10: the same
// (seed, spec) mix produces exact Score/Sequence/Steps/Jobs/WorkUnits
// whether it runs on a 1-pool or a 3-pool service plane, and both match
// the solo RunWall twin — routing is placement, never semantics.
func TestRouterEquivalence(t *testing.T) {
	specs := mixedSpecs()
	runAll := func(r *Router) []JobStatus {
		t.Helper()
		ids := make([]string, len(specs))
		for i, spec := range specs {
			id, err := r.Submit(context.Background(), spec)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			ids[i] = id
		}
		out := make([]JobStatus, len(specs))
		for i, id := range ids {
			st, err := r.Wait(context.Background(), id)
			if err != nil {
				t.Fatalf("wait %d: %v", i, err)
			}
			if st.State != StateDone {
				t.Fatalf("job %d finished as %s (err %q)", i, st.State, st.Error)
			}
			out[i] = st
		}
		return out
	}

	single := runAll(newTestRouter(t, Config{Slots: 3, Medians: 2, Clients: 4, QueueLimit: len(specs)}))
	sharded := runAll(newTestRouter(t, Config{Pools: 3, Slots: 1, Medians: 2, Clients: 4, QueueLimit: len(specs)}))

	for i, spec := range specs {
		requireIdentical(t, spec.Domain, sharded[i], soloRun(t, spec))
		a, b := single[i], sharded[i]
		if a.Score != b.Score || a.Steps != b.Steps ||
			a.Rollouts != b.Rollouts || a.WorkUnits != b.WorkUnits {
			t.Fatalf("spec %d: 1-pool vs 3-pool diverged: score %v/%v steps %d/%d rollouts %d/%d units %d/%d",
				i, a.Score, b.Score, a.Steps, b.Steps, a.Rollouts, b.Rollouts, a.WorkUnits, b.WorkUnits)
		}
	}
}

// TestRouterIDsGloballyUnique pins the stride partition: ids minted by
// different pools never collide, and the Router surface (Get, Wait,
// Jobs) resolves each one.
func TestRouterIDsGloballyUnique(t *testing.T) {
	r := newTestRouter(t, Config{Pools: 3, Slots: 1, Medians: 1, Clients: 2, QueueLimit: 16})
	const n = 9
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		id, err := r.Submit(context.Background(), tinySpec(uint64(1+i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if seen[id] {
			t.Fatalf("duplicate job id %s across pools", id)
		}
		seen[id] = true
		if _, err := r.Get(id); err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
	}
	for id := range seen {
		if _, err := r.Wait(context.Background(), id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
	if got := len(r.Jobs()); got != n {
		t.Fatalf("merged listing has %d jobs, want %d", got, n)
	}
	if _, err := r.Get("job-404"); err != ErrNotFound {
		t.Fatalf("unknown id: %v, want ErrNotFound", err)
	}
}

// TestRouterSpillover pins admission layer 2+3: a pool answering
// ErrSaturated spills the job to a less-loaded pool, and only when every
// pool is saturated does the Router shed with ErrSaturated.
func TestRouterSpillover(t *testing.T) {
	// Two pools, one slot each, no queue: capacity is exactly 2 running.
	r := newTestRouter(t, Config{Pools: 2, Slots: 1, Medians: 1, Clients: 2, QueueLimit: -1})
	a, err := r.Submit(context.Background(), slowSpec(1))
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	b, err := r.Submit(context.Background(), slowSpec(2))
	if err != nil {
		t.Fatalf("second (spillover): %v", err)
	}
	if _, err := r.Submit(context.Background(), slowSpec(3)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third: %v, want ErrSaturated", err)
	}
	mt := r.Metrics()
	if mt.Running != 2 || mt.Slots != 2 {
		t.Fatalf("aggregate running %d slots %d, want 2/2", mt.Running, mt.Slots)
	}
	for i, ps := range mt.PerPool {
		if ps.Metrics.Running != 1 || ps.Utilization != 1 {
			t.Fatalf("pool %d: running %d utilization %v, want 1 / 1.0 (spillover broken)",
				i, ps.Metrics.Running, ps.Utilization)
		}
	}
	for _, id := range []string{a, b} {
		if err := r.Cancel(id); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTenantQuota drives the token-bucket layer against an injected
// clock: a tenant over its rate is shed with ErrQuota while other
// tenants stay admitted, and elapsed clock time refills the bucket.
func TestTenantQuota(t *testing.T) {
	clk := &fakeClock{}
	r := newTestRouter(t, Config{
		Pools: 2, Slots: 2, Medians: 1, Clients: 2, QueueLimit: 32,
		TenantQPS: 1, TenantBurst: 2, Clock: clk,
	})
	spec := func(tenant string, seed uint64) JobSpec {
		s := tinySpec(seed)
		s.Tenant = tenant
		return s
	}

	// Burst capacity: exactly TenantBurst admissions at one clock reading.
	for i := 0; i < 2; i++ {
		if _, err := r.Submit(context.Background(), spec("alice", uint64(1+i))); err != nil {
			t.Fatalf("alice burst %d: %v", i, err)
		}
	}
	if _, err := r.Submit(context.Background(), spec("alice", 3)); !errors.Is(err, ErrQuota) {
		t.Fatalf("alice over quota: %v, want ErrQuota", err)
	}
	// Another tenant is unaffected — quota is per-tenant, not global.
	if _, err := r.Submit(context.Background(), spec("bob", 4)); err != nil {
		t.Fatalf("bob while alice shed: %v", err)
	}
	// The empty tenant is a tenant like any other (no quota bypass).
	for i := 0; i < 2; i++ {
		if _, err := r.Submit(context.Background(), spec("", uint64(5+i))); err != nil {
			t.Fatalf("anonymous burst %d: %v", i, err)
		}
	}
	if _, err := r.Submit(context.Background(), spec("", 7)); !errors.Is(err, ErrQuota) {
		t.Fatalf("anonymous over quota: %v, want ErrQuota", err)
	}

	// 1 QPS: 1500ms of clock refills one whole token (capped refill math
	// covered by the burst assertions above).
	clk.advance(1500 * time.Millisecond)
	if _, err := r.Submit(context.Background(), spec("alice", 8)); err != nil {
		t.Fatalf("alice after refill: %v", err)
	}
	if _, err := r.Submit(context.Background(), spec("alice", 9)); !errors.Is(err, ErrQuota) {
		t.Fatalf("alice second after 1.5s refill: %v, want ErrQuota", err)
	}

	mt := r.Metrics()
	if mt.TenantShed != 3 {
		t.Fatalf("tenant_shed %d, want 3", mt.TenantShed)
	}
	if mt.TenantSheds["alice"] != 2 || mt.TenantSheds[""] != 1 {
		t.Fatalf("per-tenant sheds %v", mt.TenantSheds)
	}
	// Quota sheds are not queue-full rejections.
	if mt.Rejected != 0 {
		t.Fatalf("quota sheds leaked into Rejected: %d", mt.Rejected)
	}
	// Invalid specs are rejected before charging quota.
	if _, err := r.Submit(context.Background(), JobSpec{Domain: "chess", Tenant: "alice"}); errors.Is(err, ErrQuota) {
		t.Fatalf("invalid spec charged quota: %v", err)
	}
}

// TestDefaultSeedBurstNoCollision is the ISSUE 10 bugfix regression: a
// burst of unset-seed submissions must receive pairwise-distinct,
// nonzero seeds (the clock-derived scheme collided within a nanosecond
// tick), the assignment must be visible in the status for
// reproducibility, and managers created back-to-back must not share a
// stream.
func TestDefaultSeedBurstNoCollision(t *testing.T) {
	r := newTestRouter(t, Config{Pools: 4, Slots: 1, Medians: 1, Clients: 1, QueueLimit: 64})
	seeds := make(map[uint64]string)
	for i := 0; i < 64; i++ {
		spec := tinySpec(0) // unset seed
		id, err := r.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		st, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Spec.Seed == 0 {
			t.Fatalf("job %s kept the unset-seed sentinel", id)
		}
		if prev, dup := seeds[st.Spec.Seed]; dup {
			t.Fatalf("seed collision under burst: %s and %s both got %d", prev, id, st.Spec.Seed)
		}
		seeds[st.Spec.Seed] = id
	}
	// Back-to-back managers (same clock tick) draw disjoint startup
	// bases: their first assigned seeds differ.
	var first []uint64
	for i := 0; i < 2; i++ {
		m := newTestManager(t, Config{Slots: 1, Medians: 1, Clients: 1})
		id, err := m.Submit(context.Background(), tinySpec(0))
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, st.Spec.Seed)
	}
	if first[0] == first[1] {
		t.Fatalf("two managers share a default-seed stream: both start at %d", first[0])
	}
}

// TestDefaultSeedReproducibleUnderSeedBase pins the test hook: a fixed
// Config.SeedBase makes the assigned stream deterministic, and a Router
// derives disjoint per-pool bases from it.
func TestDefaultSeedReproducibleUnderSeedBase(t *testing.T) {
	stream := func() []uint64 {
		m := newTestManager(t, Config{Slots: 1, Medians: 1, Clients: 1, QueueLimit: 8, SeedBase: 99})
		var out []uint64
		for i := 0; i < 4; i++ {
			id, err := m.Submit(context.Background(), tinySpec(0))
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, st.Spec.Seed)
		}
		return out
	}
	a, b := stream(), stream()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SeedBase stream not reproducible at %d: %d != %d", i, a[i], b[i])
		}
	}

	r := newTestRouter(t, Config{Pools: 2, Slots: 1, Medians: 1, Clients: 1, QueueLimit: 8, SeedBase: 99})
	if s0, s1 := r.Pool(0).seedBase, r.Pool(1).seedBase; s0 == s1 {
		t.Fatalf("router pools share SeedBase %d", s0)
	}
}

// TestStatusTimestampsUseInjectedClock pins the clock-threading bugfix:
// with a virtual clock, Submitted/Started/Finished advance exactly with
// the injected readings, never with wall time — the property that lets
// retention/latency logic run under virtual-time tests.
func TestStatusTimestampsUseInjectedClock(t *testing.T) {
	clk := &fakeClock{}
	clk.set(5 * time.Second)
	m := newTestManager(t, Config{Slots: 1, Medians: 1, Clients: 1, Clock: clk})

	a, err := m.Submit(context.Background(), tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := m.Wait(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	// The whole job ran at one frozen clock reading: zero spans, despite
	// nonzero real elapsed time (a wall clock could not produce this).
	if !sa.Started.Equal(sa.Submitted) || !sa.Finished.Equal(sa.Started) {
		t.Fatalf("frozen clock leaked wall time: submitted %v started %v finished %v",
			sa.Submitted, sa.Started, sa.Finished)
	}

	clk.advance(10 * time.Second)
	b, err := m.Submit(context.Background(), tinySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := m.Wait(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.Submitted.Sub(sa.Submitted); got != 10*time.Second {
		t.Fatalf("clock advance of 10s produced submit delta %v", got)
	}
}

// TestWatchStreamsToTerminal drives the Watch feed behind the events
// API: an immediate snapshot, coalesced updates, a guaranteed terminal
// snapshot, then close. Also covers watching an already-terminal job
// and detaching early.
func TestWatchStreamsToTerminal(t *testing.T) {
	m := newTestManager(t, Config{Slots: 1, Medians: 2, Clients: 2})
	id, err := m.Submit(context.Background(), tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var last JobStatus
	n := 0
	for st := range ch {
		if st.ID != id {
			t.Fatalf("stream leaked job %s", st.ID)
		}
		last = st
		n++
	}
	if n == 0 || !last.State.Terminal() {
		t.Fatalf("stream ended after %d events in state %s; want terminal last", n, last.State)
	}
	if last.State != StateDone || last.Score != 16 {
		t.Fatalf("terminal snapshot: %s score %v", last.State, last.Score)
	}

	// Watching a terminal job: final status, then an already-closed channel.
	ch2, cancel2, err := m.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	st, ok := <-ch2
	if !ok || !st.State.Terminal() {
		t.Fatalf("terminal watch first recv: ok=%v state=%s", ok, st.State)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("terminal watch channel not closed after final snapshot")
	}

	// Early detach: cancel must drop the subscription without blocking
	// the job's completion.
	id2, err := m.Submit(context.Background(), slowSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	_, cancel3, err := m.Watch(id2)
	if err != nil {
		t.Fatal(err)
	}
	cancel3()
	cancel3() // idempotent
	if err := m.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), id2); err != nil {
		t.Fatal(err)
	}

	if _, _, err := m.Watch("job-404"); err != ErrNotFound {
		t.Fatalf("unknown watch: %v, want ErrNotFound", err)
	}
}

// TestRouterRejectsDistributedSharding pins the config guard: pools > 1
// cannot be combined with external workers.
func TestRouterRejectsDistributedSharding(t *testing.T) {
	if _, err := NewRouter(Config{Pools: 2, Workers: 2}); err == nil {
		t.Fatal("2 pools with external workers accepted")
	}
}

// TestRouterShutdownDrainsAllPools pins the teardown contract: after
// Shutdown every pool refuses submissions and every job is terminal.
func TestRouterShutdownDrainsAllPools(t *testing.T) {
	r, err := NewRouter(Config{Pools: 2, Slots: 1, Medians: 1, Clients: 2, QueueLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := r.Submit(context.Background(), tinySpec(uint64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := r.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !r.Draining() {
		t.Fatal("router not draining after shutdown")
	}
	if _, err := r.Submit(context.Background(), tinySpec(99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown: %v, want ErrClosed", err)
	}
	for _, id := range ids {
		st, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s not terminal after shutdown: %s", id, st.State)
		}
	}
	// Idempotent.
	if err := r.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRouterConcurrentMixedStorm floods a 3-pool plane from many
// goroutines — mixed domains, quota sheds, saturation sheds, mid-flight
// cancels — and verifies completed jobs against their solo twins.
// Race-clean by CI's race job.
func TestRouterConcurrentMixedStorm(t *testing.T) {
	r := newTestRouter(t, Config{Pools: 3, Slots: 1, Medians: 1, Clients: 2, QueueLimit: 4})
	specs := stormSpecs(12)
	var mu sync.Mutex
	results := make(map[string]JobSpec)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			id, err := r.Submit(context.Background(), spec)
			if err != nil {
				if errors.Is(err, ErrSaturated) {
					return // shed under load: expected
				}
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if i%4 == 0 {
				r.Cancel(id) //nolint:errcheck // racing completion is the point
			}
			mu.Lock()
			results[id] = spec
			mu.Unlock()
		}(i, spec)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	completed := 0
	for id, spec := range results {
		st, err := r.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State == StateDone && !st.Stopped {
			completed++
			requireIdentical(t, id, st, soloRun(t, spec))
		}
	}
	if completed == 0 {
		t.Fatal("storm completed nothing; no equivalence checked")
	}
}
