package service

// The service on a distributed pool: a Manager configured with external
// workers must serve jobs bit-identically to the in-process pool, through
// the same Submit/Wait surface cmd/pnmcsd exposes. The workers run
// in-process over loopback TCP; the CI distributed smoke job repeats the
// check with real pnmcs-worker processes.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/mpi"
	"repro/internal/parallel"
)

func TestDistributedServiceEquivalence(t *testing.T) {
	m, err := New(Config{
		Slots: 2, Medians: 2, Clients: 2,
		Workers: 2, WorkerListen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.WorkerAddr() == "" {
		t.Fatal("distributed manager reports no worker address")
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := mpi.DialWorker(m.WorkerAddr(), "")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := parallel.ServeWorker(w); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}

	specs := []JobSpec{
		{Domain: "sudoku", Box: 2, Level: 2, Seed: 7},
		{Domain: "samegame", Width: 5, Height: 5, Colors: 3, BoardSeed: 3, Level: 2, Seed: 5, Memorize: true},
		{Domain: "morpion", Variant: "4D", Level: 2, Seed: 11, Memorize: true, FirstMoveOnly: true},
	}
	for _, spec := range specs {
		id, err := m.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Domain, err)
		}
		st, err := m.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("%s: state %s (err %q)", spec.Domain, st.State, st.Error)
		}

		cfg, err := spec.Config()
		if err != nil {
			t.Fatal(err)
		}
		solo, err := parallel.RunWall(4, 3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Score != solo.Score {
			t.Fatalf("%s: score %v != solo %v", spec.Domain, st.Score, solo.Score)
		}
		if len(st.Sequence) != len(solo.Sequence) {
			t.Fatalf("%s: sequence length %d != %d", spec.Domain, len(st.Sequence), len(solo.Sequence))
		}
		for i := range st.Sequence {
			if st.Sequence[i] != solo.Sequence[i] {
				t.Fatalf("%s: sequences differ at %d", spec.Domain, i)
			}
		}
		if st.Rollouts != solo.Jobs || st.WorkUnits != solo.WorkUnits {
			t.Fatalf("%s: accounting %d/%d != solo %d/%d",
				spec.Domain, st.Rollouts, st.WorkUnits, solo.Jobs, solo.WorkUnits)
		}
	}

	mt := m.Metrics()
	if mt.Pool.Net == nil || mt.Pool.Net.FramesSent == 0 {
		t.Fatalf("no transport counters in service metrics: %+v", mt.Pool.Net)
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestDistributedServiceWorkerChurn kills a worker process mid-job
// through the HTTP-facing Manager surface: the job must complete with the
// undisturbed result once a replacement rejoins, the churn must be
// visible in the service metrics, and an authenticated coordinator must
// have admitted only token-bearing workers along the way.
func TestDistributedServiceWorkerChurn(t *testing.T) {
	const token = "churn-secret"
	m, err := New(Config{
		Slots: 1, Medians: 2, Clients: 3,
		Workers: 2, WorkerListen: "127.0.0.1:0", WorkerToken: token,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A tokenless dial must be turned away before claiming a slot.
	if _, err := mpi.DialWorker(m.WorkerAddr(), ""); !errors.Is(err, mpi.ErrBadToken) {
		t.Fatalf("tokenless worker admitted: %v", err)
	}

	serve := func(w *mpi.NetWorker) chan struct{} {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := parallel.ServeWorker(w); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
		return done
	}

	// Worker 1 dials through a fault proxy (the one that will die),
	// worker 2 directly.
	proxy, err := faultnet.NewProxy(m.WorkerAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	w1, err := mpi.DialWorker(proxy.Addr(), token)
	if err != nil {
		t.Fatal(err)
	}
	w1done := serve(w1)
	w2, err := mpi.DialWorker(m.WorkerAddr(), token)
	if err != nil {
		t.Fatal(err)
	}
	w2done := serve(w2)

	spec := JobSpec{Domain: "samegame", Width: 6, Height: 6, Colors: 3, BoardSeed: 3, Level: 2, Seed: 5, Memorize: true}
	id, err := m.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the proxied worker once the job has visibly started, then
	// bring in a replacement.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Steps >= 1 {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job finished before the kill could land: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	proxy.Sever()
	<-w1done
	var w3 *mpi.NetWorker
	for {
		w3, err = mpi.DialWorker(m.WorkerAddr(), token)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replacement never admitted: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	w3done := serve(w3)

	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("churned job state %s (error %q)", st.State, st.Error)
	}

	// Bit-identical to the undisturbed solo run, churn and all.
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	solo, err := parallel.RunWall(4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Score != solo.Score || st.Steps != solo.Steps ||
		st.Rollouts != solo.Jobs || st.WorkUnits != solo.WorkUnits {
		t.Fatalf("churned job diverged: %+v vs solo %+v", st, solo)
	}
	for i := range st.Sequence {
		if st.Sequence[i] != solo.Sequence[i] {
			t.Fatalf("sequences differ at move %d", i)
		}
	}

	mt := m.Metrics()
	if mt.Pool.WorkersLost < 1 || mt.Pool.WorkersRejoined < 1 {
		t.Fatalf("churn not recorded in service metrics: %+v", mt.Pool)
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-w2done
	<-w3done
}

// TestDistributedServiceRetryToSuccess drives the fail-fast + retry
// pipeline end to end: with degradation disabled, a worker killed with no
// immediate replacement is abandoned after its grace window and the
// running job fails fast with ErrDegraded; the Manager's retry policy
// re-queues it under its original seed, a replacement worker revives the
// pool, and the retried run completes bit-identical to the undisturbed
// solo result.
func TestDistributedServiceRetryToSuccess(t *testing.T) {
	m, err := New(Config{
		Slots: 1, Medians: 2, Clients: 3,
		Workers: 2, WorkerListen: "127.0.0.1:0",
		// Degrade off: any abandonment fails the pool until capacity
		// returns. Short grace + short backoff keep the test fast.
		ReplaceGrace: 100 * time.Millisecond,
		Retry:        RetryPolicy{Max: 20, Backoff: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cap each retry delay at 10ms of real time: the exponential schedule
	// itself is pinned by TestRetryDelayBoundsAndDeterminism; this test is
	// about the fail-fast → re-queue → revive pipeline, not about waiting
	// it out. Pacing (not zero delay) is kept so the budget of attempts
	// spans the replacement worker's handshake; Max 20 gives ~200ms of
	// revival window against a ~10ms rejoin.
	m.after = func(d time.Duration, f func()) *time.Timer {
		if d > 10*time.Millisecond {
			d = 10 * time.Millisecond
		}
		return time.AfterFunc(d, f)
	}

	serve := func(w *mpi.NetWorker) chan struct{} {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := parallel.ServeWorker(w); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
		return done
	}

	proxy, err := faultnet.NewProxy(m.WorkerAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	w1, err := mpi.DialWorker(proxy.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w1done := serve(w1)
	w2, err := mpi.DialWorker(m.WorkerAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	w2done := serve(w2)

	spec := JobSpec{Domain: "samegame", Width: 6, Height: 6, Colors: 3, BoardSeed: 3, Level: 2, Seed: 5, Memorize: true}
	id, err := m.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	waitStatus := func(what string, cond func(JobStatus) bool) {
		t.Helper()
		for {
			st, err := m.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if cond(st) {
				return
			}
			if st.State.Terminal() {
				t.Fatalf("job terminal before %s: %+v", what, st)
			}
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s: %+v", what, st)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Kill the proxied worker mid-job and withhold the replacement until
	// the fail-fast + retry machinery has visibly engaged.
	waitStatus("first progress", func(st JobStatus) bool { return st.Steps >= 1 })
	proxy.Sever()
	<-w1done
	waitStatus("fail-fast retry", func(st JobStatus) bool { return st.Retries >= 1 })

	// Capacity returns; the retried run must now succeed.
	var w3 *mpi.NetWorker
	for {
		w3, err = mpi.DialWorker(m.WorkerAddr(), "")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replacement never admitted: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	w3done := serve(w3)

	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("retried job state %s (error %q)", st.State, st.Error)
	}
	if st.Retries < 1 {
		t.Fatalf("job completed without recorded retries: %+v", st)
	}

	// The retried run carries the original seed: bit-identical to solo.
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	solo, err := parallel.RunWall(4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Score != solo.Score || st.Steps != solo.Steps ||
		st.Rollouts != solo.Jobs || st.WorkUnits != solo.WorkUnits {
		t.Fatalf("retried job diverged: %+v vs solo %+v", st, solo)
	}
	for i := range st.Sequence {
		if st.Sequence[i] != solo.Sequence[i] {
			t.Fatalf("sequences differ at move %d", i)
		}
	}

	mt := m.Metrics()
	if mt.Retried < 1 {
		t.Fatalf("retry not counted in service metrics: %+v", mt)
	}
	if mt.Pool.WorkersAbandoned < 1 {
		t.Fatalf("abandonment not recorded in pool metrics: %+v", mt.Pool)
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-w2done
	<-w3done
}
