package service

// The service on a distributed pool: a Manager configured with external
// workers must serve jobs bit-identically to the in-process pool, through
// the same Submit/Wait surface cmd/pnmcsd exposes. The workers run
// in-process over loopback TCP; the CI distributed smoke job repeats the
// check with real pnmcs-worker processes.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/parallel"
)

func TestDistributedServiceEquivalence(t *testing.T) {
	m, err := New(Config{
		Slots: 2, Medians: 2, Clients: 2,
		Workers: 2, WorkerListen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.WorkerAddr() == "" {
		t.Fatal("distributed manager reports no worker address")
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := mpi.DialWorker(m.WorkerAddr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := parallel.ServeWorker(w); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}

	specs := []JobSpec{
		{Domain: "sudoku", Box: 2, Level: 2, Seed: 7},
		{Domain: "samegame", Width: 5, Height: 5, Colors: 3, BoardSeed: 3, Level: 2, Seed: 5, Memorize: true},
		{Domain: "morpion", Variant: "4D", Level: 2, Seed: 11, Memorize: true, FirstMoveOnly: true},
	}
	for _, spec := range specs {
		id, err := m.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Domain, err)
		}
		st, err := m.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("%s: state %s (err %q)", spec.Domain, st.State, st.Error)
		}

		cfg, err := spec.Config()
		if err != nil {
			t.Fatal(err)
		}
		solo, err := parallel.RunWall(4, 3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Score != solo.Score {
			t.Fatalf("%s: score %v != solo %v", spec.Domain, st.Score, solo.Score)
		}
		if len(st.Sequence) != len(solo.Sequence) {
			t.Fatalf("%s: sequence length %d != %d", spec.Domain, len(st.Sequence), len(solo.Sequence))
		}
		for i := range st.Sequence {
			if st.Sequence[i] != solo.Sequence[i] {
				t.Fatalf("%s: sequences differ at %d", spec.Domain, i)
			}
		}
		if st.Rollouts != solo.Jobs || st.WorkUnits != solo.WorkUnits {
			t.Fatalf("%s: accounting %d/%d != solo %d/%d",
				spec.Domain, st.Rollouts, st.WorkUnits, solo.Jobs, solo.WorkUnits)
		}
	}

	mt := m.Metrics()
	if mt.Pool.Net == nil || mt.Pool.Net.FramesSent == 0 {
		t.Fatalf("no transport counters in service metrics: %+v", mt.Pool.Net)
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
