package service

// The scheduler-independence property of DESIGN.md §5 — client rollout
// scores depend only on logical job coordinates, never on which rank runs
// them or when — extended to multiplexing: a job's result must not change
// because other jobs share the pool's medians and clients. Every spec
// below is run twice, concurrently on a shared service and solo through
// parallel.RunWall, and the results must be bit-identical.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/parallel"
)

// mixedSpecs is a cross-domain, cross-level, cross-option job mix small
// enough to run in test time.
func mixedSpecs() []JobSpec {
	return []JobSpec{
		{Domain: "sudoku", Box: 2, Level: 2, Seed: 1, Memorize: true},
		{Domain: "sudoku", Box: 2, Level: 3, Seed: 2, Memorize: true},
		{Domain: "samegame", Width: 5, Height: 5, Colors: 3, BoardSeed: 3, Level: 2, Seed: 3, Memorize: true},
		{Domain: "samegame", Width: 5, Height: 5, Colors: 3, BoardSeed: 3, Level: 2, Seed: 4, Memorize: false},
		{Domain: "morpion", Variant: "4D", Level: 2, Seed: 5, Memorize: true, FirstMoveOnly: true},
		{Domain: "sudoku", Box: 2, Level: 2, Seed: 6, Memorize: false},
	}
}

// soloRun executes a spec the pre-service way: a dedicated RunWall
// cluster built and torn down for this one job.
func soloRun(t *testing.T, spec JobSpec) parallel.Result {
	t.Helper()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := parallel.RunWall(3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireIdentical(t *testing.T, label string, got JobStatus, want parallel.Result) {
	t.Helper()
	if got.Score != want.Score {
		t.Fatalf("%s: service score %v != solo score %v", label, got.Score, want.Score)
	}
	if len(got.Sequence) != len(want.Sequence) {
		t.Fatalf("%s: sequence lengths differ: %d vs %d", label, len(got.Sequence), len(want.Sequence))
	}
	for i := range got.Sequence {
		if got.Sequence[i] != want.Sequence[i] {
			t.Fatalf("%s: sequences differ at move %d", label, i)
		}
	}
}

// TestConcurrentJobsMatchSoloRuns is the multiplexing property test: N
// concurrent jobs with mixed domains, levels and memorization, submitted
// together to one shared pool, return bit-identical scores and sequences
// to the same specs run sequentially through RunWall.
func TestConcurrentJobsMatchSoloRuns(t *testing.T) {
	specs := mixedSpecs()
	// Fewer slots than jobs: the queue path is exercised too.
	m := newTestManager(t, Config{Slots: 3, Medians: 2, Clients: 4, QueueLimit: len(specs)})

	ids := make([]string, len(specs))
	for i, spec := range specs {
		id, err := m.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	statuses := make([]JobStatus, len(specs))
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := m.Wait(context.Background(), ids[i])
			if err != nil {
				t.Errorf("wait %d: %v", i, err)
				return
			}
			statuses[i] = st
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, spec := range specs {
		if statuses[i].State != StateDone {
			t.Fatalf("job %d finished as %s (err %q)", i, statuses[i].State, statuses[i].Error)
		}
		requireIdentical(t, ids[i], statuses[i], soloRun(t, spec))
	}
}

// TestRepeatSubmissionsAreDeterministic runs the same spec twice on the
// same warm pool (reusing slots, medians, clients and their StatePools)
// with other traffic in between: both runs must be identical.
func TestRepeatSubmissionsAreDeterministic(t *testing.T) {
	m := newTestManager(t, Config{Slots: 2, Medians: 2, Clients: 3, QueueLimit: 8})
	spec := JobSpec{Domain: "samegame", Width: 5, Height: 5, Colors: 3, BoardSeed: 7, Level: 2, Seed: 9, Memorize: true}

	first, err := m.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave unrelated traffic of a different domain.
	noise, err := m.Submit(context.Background(), JobSpec{Domain: "sudoku", Box: 2, Level: 2, Seed: 8, Memorize: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Wait(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), noise); err != nil {
		t.Fatal(err)
	}
	second, err := m.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Wait(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || len(a.Sequence) != len(b.Sequence) {
		t.Fatalf("warm-pool rerun diverged: %v/%d vs %v/%d",
			a.Score, len(a.Sequence), b.Score, len(b.Sequence))
	}
	for i := range a.Sequence {
		if a.Sequence[i] != b.Sequence[i] {
			t.Fatalf("warm-pool rerun differs at move %d", i)
		}
	}
}
