package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/rng"
)

// tinySpec is a fast job used across the lifecycle tests.
func tinySpec(seed uint64) JobSpec {
	return JobSpec{Domain: "sudoku", Box: 2, Level: 2, Seed: seed, Memorize: true}
}

// slowSpec is a job long enough to be cancelled mid-flight.
func slowSpec(seed uint64) JobSpec {
	return JobSpec{Domain: "morpion", Variant: "5D", Level: 2, Seed: seed, Memorize: true}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	})
	return m
}

func TestSubmitRunsToCompletion(t *testing.T) {
	m := newTestManager(t, Config{Slots: 2, Medians: 2, Clients: 2})
	id, err := m.Submit(context.Background(), tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state %s, want done (err %q)", st.State, st.Error)
	}
	if st.Score != 16 {
		t.Fatalf("level-2 on the 4x4 grid scored %v, want 16", st.Score)
	}
	if st.Rollouts == 0 {
		t.Fatal("no rollouts accounted")
	}
	if len(st.Sequence) == 0 || st.Steps != len(st.Sequence) {
		t.Fatalf("inconsistent sequence: steps %d, len %d", st.Steps, len(st.Sequence))
	}
	if st.Started.Before(st.Submitted) || st.Finished.Before(st.Started) {
		t.Fatal("timestamps out of order")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{Slots: 1, Medians: 1, Clients: 1})
	bad := []JobSpec{
		{},                                 // no domain
		{Domain: "chess"},                  // unknown domain
		{Domain: "morpion", Variant: "9Z"}, // unknown variant
		{Domain: "morpion", Level: 1},      // level too low for root/median/client
		{Domain: "sudoku", Box: 9},         // box out of range
		{Domain: "samegame", Width: 99},    // board out of range
		{Domain: "samegame", Colors: 1},    // colors out of range
	}
	for i, spec := range bad {
		if _, err := m.Submit(context.Background(), spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if got := m.Metrics().Submitted; got != 0 {
		t.Fatalf("invalid specs counted as submissions: %d", got)
	}
}

// TestBackpressure fills the slots and the queue, then checks the next
// submission is rejected with ErrSaturated — the 503 path.
func TestBackpressure(t *testing.T) {
	m := newTestManager(t, Config{Slots: 1, Medians: 1, Clients: 1, QueueLimit: 1})
	running, err := m.Submit(context.Background(), slowSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(context.Background(), tinySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), tinySpec(3)); err != ErrSaturated {
		t.Fatalf("saturated submit returned %v, want ErrSaturated", err)
	}
	if got := m.Metrics().Rejected; got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}

	// Draining the running job must free capacity for the queued one.
	if err := m.Cancel(running); err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("queued job finished as %s (err %q)", st.State, st.Error)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, Config{Slots: 1, Medians: 1, Clients: 1, QueueLimit: 2})
	if _, err := m.Submit(context.Background(), slowSpec(1)); err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(context.Background(), tinySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	st, err := m.Get(queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled queued job is %s", st.State)
	}
	if err := m.Cancel(queued); err != ErrFinished {
		t.Fatalf("double cancel returned %v, want ErrFinished", err)
	}
	if err := m.Cancel("job-999"); err != ErrNotFound {
		t.Fatalf("unknown id returned %v, want ErrNotFound", err)
	}
}

func TestDeadlineStopsJob(t *testing.T) {
	m := newTestManager(t, Config{Slots: 1, Medians: 2, Clients: 2})
	spec := slowSpec(3)
	spec.Deadline = 30 * time.Millisecond
	id, err := m.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.Stopped {
		t.Fatalf("deadline job: state %s stopped %v, want done+stopped", st.State, st.Stopped)
	}
}

func TestSubmitContextCancelsJob(t *testing.T) {
	m := newTestManager(t, Config{Slots: 1, Medians: 2, Clients: 2})
	ctx, cancel := context.WithCancel(context.Background())
	id, err := m.Submit(ctx, slowSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("ctx-cancelled job is %s", st.State)
	}
}

func TestShutdownDrainsAndRefuses(t *testing.T) {
	m, err := New(Config{Slots: 2, Medians: 2, Clients: 2, QueueLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Submit(context.Background(), tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := m.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if !st.State.Terminal() {
		t.Fatalf("job not terminal after shutdown: %s", st.State)
	}
	if _, err := m.Submit(context.Background(), tinySpec(2)); err != ErrClosed {
		t.Fatalf("submit after shutdown returned %v, want ErrClosed", err)
	}
	// Shutdown is idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownForcedByContext submits a long job and shuts down with an
// already-expired context: the job must be force-cancelled, not awaited.
func TestShutdownForcedByContext(t *testing.T) {
	m, err := New(Config{Slots: 1, Medians: 2, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(context.Background(), slowSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("forced shutdown returned %v, want context.Canceled", err)
	}
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.State.Terminal() {
		t.Fatalf("job not terminal after forced shutdown: %s", st.State)
	}
}

func TestJobsListingAndMetrics(t *testing.T) {
	m := newTestManager(t, Config{Slots: 2, Medians: 2, Clients: 2})
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		id, err := m.Submit(context.Background(), tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	jobs := m.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("listing has %d jobs, want 3", len(jobs))
	}
	for i, st := range jobs {
		if st.ID != ids[i] {
			t.Fatalf("listing order: got %s at %d, want %s", st.ID, i, ids[i])
		}
	}
	mt := m.Metrics()
	if mt.Submitted != 3 || mt.Completed != 3 {
		t.Fatalf("metrics %+v", mt)
	}
	if mt.Pool.Jobs == 0 {
		t.Fatal("pool metrics empty")
	}
}

// TestRetentionEvictsOldestTerminalJobs pins the bounded results ledger:
// beyond Config.Retain, the oldest finished job is evicted and its id
// answers ErrNotFound, so a long-lived service holds bounded memory.
func TestRetentionEvictsOldestTerminalJobs(t *testing.T) {
	m := newTestManager(t, Config{Slots: 1, Medians: 1, Clients: 1, Retain: 2})
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		id, err := m.Submit(context.Background(), tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := m.Get(ids[0]); err != ErrNotFound {
		t.Fatalf("oldest terminal job not evicted: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := m.Get(id); err != nil {
			t.Fatalf("retained job %s evicted: %v", id, err)
		}
	}
	if got := len(m.Jobs()); got != 2 {
		t.Fatalf("listing has %d jobs, want 2", got)
	}
}

func TestGetUnknownJob(t *testing.T) {
	m := newTestManager(t, Config{Slots: 1, Medians: 1, Clients: 1})
	if _, err := m.Get("nope"); err != ErrNotFound {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if _, err := m.Wait(context.Background(), "nope"); err != ErrNotFound {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

// retryTestManager builds a bare Manager exercising only the retry-delay
// path: retryDelayLocked reads cfg.Retry.Backoff and retryRng and nothing
// else, so the pool is not needed.
func retryTestManager(backoff time.Duration, seed uint64) *Manager {
	return &Manager{
		cfg:      Config{Retry: RetryPolicy{Max: 8, Backoff: backoff}},
		retryRng: rng.New(seed),
	}
}

// TestRetryDelayBoundsAndDeterminism pins the backoff schedule: delays stay
// in [d/2, d] for the doubled, 30s-capped base, and a manager-private
// seeded source makes the whole schedule reproducible (the global
// math/rand source it replaced could not be seeded without racing every
// other consumer in the process).
func TestRetryDelayBoundsAndDeterminism(t *testing.T) {
	const base = 250 * time.Millisecond
	a := retryTestManager(base, 42)
	b := retryTestManager(base, 42)
	c := retryTestManager(base, 43)

	sameAsC := true
	for attempt := 1; attempt <= 12; attempt++ {
		d := base << min(attempt-1, 10)
		if d > 30*time.Second {
			d = 30 * time.Second
		}
		da, db, dc := a.retryDelayLocked(attempt), b.retryDelayLocked(attempt), c.retryDelayLocked(attempt)
		if da < d/2 || da > d {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, da, d/2, d)
		}
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v != %v", attempt, da, db)
		}
		if da != dc {
			sameAsC = false
		}
	}
	if sameAsC {
		t.Fatal("seeds 42 and 43 produced identical 12-delay schedules")
	}
}
