package service

// The JobManager storm test of ISSUE 3's acceptance criteria: many
// concurrent jobs across all three domains on one shared pool, with
// mid-flight cancellations, under the race detector (CI's race job runs
// go test -race ./...). Every job that completes normally must be
// bit-identical to the same JobSpec run solo through RunWall with the
// same seed.

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// stormSpecs builds n mixed-domain specs, deterministically varied.
func stormSpecs(n int) []JobSpec {
	specs := make([]JobSpec, 0, n)
	for i := 0; i < n; i++ {
		seed := uint64(100 + i)
		switch i % 3 {
		case 0:
			specs = append(specs, JobSpec{Domain: "sudoku", Box: 2, Level: 2, Seed: seed, Memorize: i%2 == 0})
		case 1:
			specs = append(specs, JobSpec{Domain: "samegame", Width: 5, Height: 5, Colors: 3,
				BoardSeed: uint64(i), Level: 2, Seed: seed, Memorize: true})
		case 2:
			specs = append(specs, JobSpec{Domain: "morpion", Variant: "4D", Level: 2, Seed: seed,
				Memorize: true, FirstMoveOnly: true})
		}
	}
	return specs
}

// TestJobManagerStorm floods a small shared pool with ≥8 concurrent jobs
// across all three domains, cancels a third of them mid-flight, then
// verifies (a) every job reached a terminal state, (b) no slot, median or
// client leaked (a fresh job still runs), and (c) every normally
// completed job is bit-identical to its solo RunWall twin.
func TestJobManagerStorm(t *testing.T) {
	const n = 9
	specs := stormSpecs(n)
	m := newTestManager(t, Config{Slots: 4, Medians: 3, Clients: 6, QueueLimit: n})

	ids := make([]string, n)
	for i, spec := range specs {
		id, err := m.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}

	// Cancel every third job from a separate goroutine while the storm
	// runs: some cancellations hit queued jobs, some hit running jobs,
	// some race completion — all must be safe.
	var wg sync.WaitGroup
	for i := 0; i < n; i += 3 {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			err := m.Cancel(id)
			if err != nil && err != ErrFinished {
				t.Errorf("cancel %s: %v", id, err)
			}
		}(ids[i])
	}

	statuses := make([]JobStatus, n)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := m.Wait(context.Background(), ids[i])
			if err != nil {
				t.Errorf("wait %d: %v", i, err)
				return
			}
			statuses[i] = st
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	completed := 0
	for i, st := range statuses {
		switch st.State {
		case StateDone:
			if st.Stopped {
				continue // deadline-truncated results have no solo twin here
			}
			completed++
			requireIdentical(t, fmt.Sprintf("job %d (%s)", i, specs[i].Domain),
				st, soloRun(t, specs[i]))
		case StateCancelled:
			// fine — partial result, nothing to compare
		default:
			t.Fatalf("job %d ended as %s (err %q)", i, st.State, st.Error)
		}
	}
	if completed == 0 {
		t.Fatal("storm cancelled everything; no completed job to verify")
	}

	// The pool must be fully reusable after the storm.
	id, err := m.Submit(context.Background(), JobSpec{Domain: "sudoku", Box: 2, Level: 2, Seed: 42, Memorize: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Score != 16 {
		t.Fatalf("post-storm job: state %s score %v", st.State, st.Score)
	}
}

// TestRetainEvictionUnderSaturationStorm (ISSUE 10 satellite) drives the
// queue past QueueLimit from many goroutines while a tiny Retain bound
// evicts terminals underneath: ErrSaturated must actually fire, evicted
// ids must answer ErrNotFound (never a stale snapshot), and the job map
// must end bounded by Retain + capacity.
func TestRetainEvictionUnderSaturationStorm(t *testing.T) {
	const retain = 3
	m := newTestManager(t, Config{Slots: 2, Medians: 1, Clients: 2, QueueLimit: 2, Retain: retain})

	// Deterministic saturation first: fill both slots and both queue
	// places with slow jobs, prove the next submit sheds, then release.
	var slow []string
	for i := 0; i < 4; i++ {
		id, err := m.Submit(context.Background(), slowSpec(uint64(900+i)))
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		slow = append(slow, id)
	}
	if _, err := m.Submit(context.Background(), tinySpec(999)); err != ErrSaturated {
		t.Fatalf("submit at capacity: %v, want ErrSaturated", err)
	}
	for _, id := range slow {
		if err := m.Cancel(id); err != nil && err != ErrFinished {
			t.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		accepted  []string
		saturated = 1 // the deterministic shed above
	)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				// Fast jobs, so terminals accumulate and Retain evicts
				// while later submits are still arriving.
				id, err := m.Submit(context.Background(), tinySpec(uint64(1+w*8+i)))
				if err != nil {
					if err == ErrSaturated {
						mu.Lock()
						saturated++
						mu.Unlock()
						continue
					}
					t.Errorf("submit w%d/%d: %v", w, i, err)
					return
				}
				mu.Lock()
				accepted = append(accepted, id)
				mu.Unlock()
				if i%3 == 0 {
					go m.Cancel(id) //nolint:errcheck // racing completion is the point
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Wait for the survivors; storm ids may already be Retain-evicted
	// (ErrNotFound), never stale or stuck.
	for _, id := range accepted {
		st, err := m.Wait(context.Background(), id)
		switch {
		case err == ErrNotFound:
			// finished and evicted before we looked — fine
		case err != nil:
			t.Fatalf("wait %s: %v", id, err)
		case !st.State.Terminal():
			t.Fatalf("job %s not terminal: %s", id, st.State)
		}
	}
	// Push retain+1 fresh terminals through sequentially: every storm-era
	// job is now certainly beyond the retention window.
	for i := 0; i <= retain; i++ {
		id, err := m.Submit(context.Background(), tinySpec(uint64(800+i)))
		if err != nil {
			t.Fatalf("post-storm submit %d: %v", i, err)
		}
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range append(slow, accepted...) {
		if _, err := m.Get(id); err != ErrNotFound {
			t.Fatalf("storm job %s survived eviction: %v", id, err)
		}
	}
	// Quiescent: the map holds exactly the retained terminals.
	if got := len(m.Jobs()); got != retain {
		t.Fatalf("job map holds %d entries after storm, want %d", got, retain)
	}
	mt := m.Metrics()
	if int(mt.Rejected) != saturated {
		t.Fatalf("metrics rejected %d, callers saw %d ErrSaturated", mt.Rejected, saturated)
	}
}

// TestSubmitCancelShutdownStorm hammers the manager's control plane from
// many goroutines at once — submits racing cancels racing an eventual
// shutdown — looking for deadlocks and data races rather than results.
func TestSubmitCancelShutdownStorm(t *testing.T) {
	m, err := New(Config{Slots: 2, Medians: 2, Clients: 3, QueueLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ids []string
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				spec := stormSpecs(9)[(w*5+i)%9]
				spec.Seed = uint64(1000 + w*100 + i)
				id, err := m.Submit(context.Background(), spec)
				if err != nil {
					if err == ErrSaturated || err == ErrClosed {
						continue // expected under load
					}
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
				if i%2 == 0 {
					go m.Cancel(id) //nolint:errcheck // racing completion is the point
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range ids {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s not terminal after shutdown: %s", id, st.State)
		}
	}
}
