package service

// The sharded service plane. The paper's speedup argument (§IV–V)
// assumes the coordinator never becomes the bottleneck; a single
// Manager — one pool, one scheduler, one mutex — is exactly that
// bottleneck at serving scale. A Router spreads jobs across N fully
// independent pools (each with its own slots, medians, clients, cache
// and queue) behind one admission layer, so service capacity scales
// linearly in N while every per-job property is untouched: routing is
// placement, never semantics, and a job's result is bit-identical on 1
// pool or N (pinned by TestRouterEquivalence and the loadgen CI smoke).
//
// Admission is layered, outermost first:
//
//  1. per-tenant token-bucket quotas (Config.TenantQPS/TenantBurst):
//     a tenant over its rate is shed with ErrQuota (HTTP 429) before
//     the job touches any pool — one tenant's burst cannot displace
//     another tenant's steady traffic;
//  2. least-loaded placement with saturation spillover: the job goes
//     to the pool with the fewest admitted non-terminal jobs, falling
//     through to the next-least-loaded when a pool answers
//     ErrSaturated;
//  3. the per-pool bounded queue (Config.QueueLimit): only when every
//     pool is saturated does the Router itself return ErrSaturated
//     (HTTP 503) — the service plane as a whole sheds load instead of
//     buffering unboundedly.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/vtime"
)

// maxTenantBuckets bounds the quota table: beyond it the stalest bucket
// (oldest refill) is evicted on the next unseen tenant, so an adversary
// minting tenant names cannot grow Router memory without bound. An
// evicted tenant that returns simply starts from a full bucket again.
const maxTenantBuckets = 4096

// Router is the sharded, quota-governed service plane: N independent
// Managers behind one Submit. It exposes the Manager surface — ids are
// globally unique across pools, so callers never see the sharding —
// plus per-pool and per-tenant observability. All methods are safe for
// concurrent use.
type Router struct {
	cfg   Config
	pools []*Manager
	clock vtime.Clock

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	shed    map[string]int64 // per-tenant quota sheds
	shedSum int64
	rr      int // round-robin tie-break cursor for equal loads
}

// tokenBucket is one tenant's admission state: a continuously refilling
// budget capped at the burst. Guarded by Router.mu.
type tokenBucket struct {
	tokens float64
	last   time.Duration // clock reading at the last refill
}

// NewRouter builds Config.Pools independent pools behind one admission
// layer. With Pools <= 1 the Router wraps a single Manager and behaves
// exactly like it (plus quotas, when configured) — cmd/pnmcsd always
// serves through a Router for that reason. Distributed workers
// (Config.Workers > 0) require a single pool: the worker handshake
// assigns rank ranges from one coordinator listener.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Pools > 1 && cfg.Workers > 0 {
		return nil, fmt.Errorf("service: %d pools with %d external workers: a distributed rank world has exactly one coordinator (run pools=1, or in-process pools)", cfg.Pools, cfg.Workers)
	}
	pools := make([]*Manager, cfg.Pools)
	for i := range pools {
		pc := cfg
		pc.Pools = 1
		// Reproducible configs stay reproducible per pool without the
		// pools sharing one default-seed or jitter stream.
		if pc.SeedBase != 0 {
			pc.SeedBase = rng.Fold(pc.SeedBase, uint64(i)+1)
		}
		if pc.RetrySeed != 0 {
			pc.RetrySeed = rng.Fold(pc.RetrySeed, uint64(i)+1)
		}
		m, err := newManager(pc, int64(i)+1, int64(cfg.Pools))
		if err != nil {
			for _, built := range pools[:i] {
				built.pool.Shutdown()
			}
			return nil, err
		}
		pools[i] = m
	}
	return &Router{
		cfg:     cfg,
		pools:   pools,
		clock:   cfg.Clock,
		buckets: make(map[string]*tokenBucket),
		shed:    make(map[string]int64),
	}, nil
}

// Pools reports the shard count.
func (r *Router) Pools() int { return len(r.pools) }

// Pool returns shard i's Manager, for callers that need per-pool
// introspection (the /v1/pools endpoint, tests).
func (r *Router) Pool(i int) *Manager { return r.pools[i] }

// Submit admits a job through the quota and placement layers and returns
// its globally unique id. Sheds with ErrQuota when the tenant's bucket
// is empty and with ErrSaturated when every pool's queue is full; both
// are pre-queue verdicts — a shed submission holds no resources.
func (r *Router) Submit(ctx context.Context, spec JobSpec) (string, error) {
	if _, err := spec.Config(); err != nil {
		return "", err // invalid specs are rejected before charging quota
	}
	if r.cfg.TenantQPS > 0 && !r.admit(spec.Tenant) {
		return "", fmt.Errorf("%w (tenant %q)", ErrQuota, spec.Tenant)
	}
	var lastErr error
	for _, m := range r.ranked() {
		id, err := m.Submit(ctx, spec)
		if errors.Is(err, ErrSaturated) {
			lastErr = err
			continue // spill over to the next-least-loaded pool
		}
		return id, err
	}
	if lastErr == nil {
		lastErr = ErrSaturated
	}
	return "", lastErr
}

// admit charges one token from the tenant's bucket, refilling it first
// from the elapsed clock time. Returns false — and counts the shed —
// when the bucket is empty.
func (r *Router) admit(tenant string) bool {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.buckets[tenant]
	if b == nil {
		if len(r.buckets) >= maxTenantBuckets {
			r.evictStalestLocked()
		}
		b = &tokenBucket{tokens: float64(r.cfg.TenantBurst), last: now}
		r.buckets[tenant] = b
	}
	if dt := now - b.last; dt > 0 {
		b.tokens += r.cfg.TenantQPS * dt.Seconds()
		if burst := float64(r.cfg.TenantBurst); b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	r.shed[tenant]++
	r.shedSum++
	return false
}

// evictStalestLocked drops the bucket with the oldest refill — the
// tenant silent the longest, whose bucket is the most certainly full
// (losing it costs nothing: a fresh bucket starts full too). Caller
// holds r.mu; only runs when the table is at its bound.
func (r *Router) evictStalestLocked() {
	var stalest string
	var oldest time.Duration
	first := true
	for t, b := range r.buckets {
		if first || b.last < oldest {
			stalest, oldest, first = t, b.last, false
		}
	}
	delete(r.buckets, stalest)
	delete(r.shed, stalest)
}

// ranked orders the pools by ascending Load, breaking ties with a
// rotating cursor so equally idle pools share work instead of pool 0
// absorbing every burst.
func (r *Router) ranked() []*Manager {
	if len(r.pools) == 1 {
		return r.pools
	}
	r.mu.Lock()
	start := r.rr
	r.rr++
	r.mu.Unlock()
	type ranked struct {
		m    *Manager
		load int
		ord  int
	}
	rs := make([]ranked, len(r.pools))
	for i, m := range r.pools {
		rs[i] = ranked{m: m, load: m.Load(), ord: (i + start) % len(r.pools)}
	}
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].load != rs[b].load {
			return rs[a].load < rs[b].load
		}
		return rs[a].ord < rs[b].ord
	})
	out := make([]*Manager, len(rs))
	for i, p := range rs {
		out[i] = p.m
	}
	return out
}

// find locates the pool owning id. Pool counts are small (the ids are
// stride-partitioned, but scanning keeps the Router stateless about
// placement — nothing to leak when Retain evicts a job).
func (r *Router) find(id string) (*Manager, error) {
	for _, m := range r.pools {
		if _, err := m.Get(id); err == nil {
			return m, nil
		}
	}
	return nil, ErrNotFound
}

// Get returns a snapshot of the job's status.
func (r *Router) Get(id string) (JobStatus, error) {
	for _, m := range r.pools {
		if st, err := m.Get(id); err == nil {
			return st, nil
		}
	}
	return JobStatus{}, ErrNotFound
}

// Cancel stops a queued or running job, wherever it was placed.
func (r *Router) Cancel(id string) error {
	m, err := r.find(id)
	if err != nil {
		return err
	}
	return m.Cancel(id)
}

// Wait blocks until the job is terminal (or ctx is done) and returns its
// final status.
func (r *Router) Wait(ctx context.Context, id string) (JobStatus, error) {
	m, err := r.find(id)
	if err != nil {
		return JobStatus{}, err
	}
	return m.Wait(ctx, id)
}

// Watch subscribes to the job's status stream (see Manager.Watch).
func (r *Router) Watch(id string) (<-chan JobStatus, func(), error) {
	m, err := r.find(id)
	if err != nil {
		return nil, nil, err
	}
	return m.Watch(id)
}

// Jobs merges every pool's job listing, ordered by numeric id
// (pool-local submission order; interleaving across pools follows the
// stride partition).
func (r *Router) Jobs() []JobStatus {
	var out []JobStatus
	for _, m := range r.pools {
		out = append(out, m.Jobs()...)
	}
	sortStatuses(out)
	return out
}

// Draining reports whether Shutdown has begun.
func (r *Router) Draining() bool { return r.pools[0].Draining() }

// WorkerAddr returns the distributed pool's worker dial address ("" for
// in-process pools; multi-pool routers are always in-process).
func (r *Router) WorkerAddr() string { return r.pools[0].WorkerAddr() }

// Shutdown drains every pool concurrently (each refuses new submissions
// immediately) and returns the first forced-drain error, if any.
func (r *Router) Shutdown(ctx context.Context) error {
	errs := make([]error, len(r.pools))
	var wg sync.WaitGroup
	for i, m := range r.pools {
		wg.Add(1)
		go func(i int, m *Manager) {
			defer wg.Done()
			errs[i] = m.Shutdown(ctx)
		}(i, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// PoolStatus is one shard's slice of RouterMetrics: the pool's service
// counters plus its derived utilization.
type PoolStatus struct {
	Pool    int     `json:"pool"`
	Metrics Metrics `json:"metrics"`
	// Utilization is running/slots in [0,1] — the instantaneous busy
	// fraction pnmcs-loadgen samples into its per-pool trend.
	Utilization float64 `json:"utilization"`
}

// RouterMetrics aggregates the service counters across every pool and
// carries the per-pool breakdown plus the admission layer's shed
// accounting. The embedded Metrics sums counters and capacity over the
// pools; its Pool field folds the pools' instrumentation (counter sums,
// max of maxima, concatenated per-rank idle series).
type RouterMetrics struct {
	Metrics
	PerPool []PoolStatus `json:"pools"`
	// TenantShed counts submissions shed by per-tenant quotas (ErrQuota;
	// distinct from Rejected, the queue-full ErrSaturated sheds).
	TenantShed int64 `json:"tenant_shed"`
	// TenantSheds breaks TenantShed down by tenant (bounded like the
	// bucket table).
	TenantSheds map[string]int64 `json:"tenant_sheds,omitempty"`
	// Tenants is the number of tenant buckets currently tracked.
	Tenants int `json:"tenants"`
}

// Metrics snapshots the aggregated counters, the per-pool breakdown and
// the quota ledger.
func (r *Router) Metrics() RouterMetrics {
	out := RouterMetrics{PerPool: make([]PoolStatus, len(r.pools))}
	for i, m := range r.pools {
		pm := m.Metrics()
		util := 0.0
		if pm.Slots > 0 {
			util = float64(pm.Running) / float64(pm.Slots)
		}
		out.PerPool[i] = PoolStatus{Pool: i, Metrics: pm, Utilization: util}
		out.Metrics = foldMetrics(out.Metrics, pm, i == 0)
	}
	r.mu.Lock()
	out.TenantShed = r.shedSum
	out.Tenants = len(r.buckets)
	if len(r.shed) > 0 {
		out.TenantSheds = make(map[string]int64, len(r.shed))
		for t, n := range r.shed {
			out.TenantSheds[t] = n
		}
	}
	r.mu.Unlock()
	return out
}

// foldMetrics accumulates one pool's metrics into the aggregate: service
// counters and capacity sum; pool instrumentation sums its counters,
// takes the max of maxima, averages the means and concatenates the
// per-rank idle series (the shard of a rank is part of its identity via
// position in the concatenation). With one pool the aggregate is exactly
// that pool's Metrics.
func foldMetrics(acc, pm Metrics, first bool) Metrics {
	if first {
		return pm
	}
	acc.Submitted += pm.Submitted
	acc.Rejected += pm.Rejected
	acc.Completed += pm.Completed
	acc.Cancelled += pm.Cancelled
	acc.Failed += pm.Failed
	acc.Retried += pm.Retried
	acc.Running += pm.Running
	acc.Queued += pm.Queued
	acc.Slots += pm.Slots

	p, q := &acc.Pool, &pm.Pool
	p.Jobs += q.Jobs
	p.WorkUnits += q.WorkUnits
	p.MedianIdle = append(p.MedianIdle, q.MedianIdle...)
	p.ClientIdle = append(p.ClientIdle, q.ClientIdle...)
	if q.QueueDepthMax > p.QueueDepthMax {
		p.QueueDepthMax = q.QueueDepthMax
	}
	p.QueueDepthMean = (p.QueueDepthMean + q.QueueDepthMean) / 2
	p.WorkersLost += q.WorkersLost
	p.WorkersRejoined += q.WorkersRejoined
	p.Regranted += q.Regranted
	p.Speculated += q.Speculated
	p.SpecWasted += q.SpecWasted
	p.StepCount += q.StepCount
	p.StepLatencySum += q.StepLatencySum
	if q.StepLatencyMax > p.StepLatencyMax {
		p.StepLatencyMax = q.StepLatencyMax
	}
	p.WorkersAbandoned += q.WorkersAbandoned
	p.Degraded = p.Degraded || q.Degraded
	p.Failed = p.Failed || q.Failed
	p.EvalBatches += q.EvalBatches
	p.EvalRequests += q.EvalRequests
	p.EvalFlushSize += q.EvalFlushSize
	p.EvalFlushDeadline += q.EvalFlushDeadline
	if q.EvalBatchMax > p.EvalBatchMax {
		p.EvalBatchMax = q.EvalBatchMax
	}
	p.EvalFlushWait += q.EvalFlushWait
	p.CacheHits += q.CacheHits
	p.CacheMisses += q.CacheMisses
	p.CacheEvictions += q.CacheEvictions
	p.CacheEntries += q.CacheEntries
	p.CacheBytes += q.CacheBytes
	return acc
}
