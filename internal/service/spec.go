package service

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/parallel"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// JobSpec describes one search job: the domain position to search and the
// parallel-search parameters. The zero values of the domain knobs select
// sensible defaults, so {"domain":"morpion","level":2} is a complete
// submission. JSON tags are the wire format of cmd/pnmcsd.
type JobSpec struct {
	// Domain is "morpion", "samegame" or "sudoku".
	Domain string `json:"domain"`

	// Tenant names the submitting principal for admission control: a
	// Router with Config.TenantQPS set charges this tenant's token
	// bucket before the job can occupy any queue capacity (empty is a
	// tenant like any other — omitting the field does not bypass
	// quotas). Purely an admission label: it never reaches the search
	// and never changes a result.
	Tenant string `json:"tenant,omitempty"`

	// Variant is the Morpion rule set ("5T", "5D", "4T", "4D");
	// default "5D", the paper's variant. Ignored by other domains.
	Variant string `json:"variant,omitempty"`

	// Width/Height/Colors/BoardSeed describe the SameGame board;
	// defaults 8×8, 4 colours, seed 1. Ignored by other domains.
	Width     int    `json:"width,omitempty"`
	Height    int    `json:"height,omitempty"`
	Colors    int    `json:"colors,omitempty"`
	BoardSeed uint64 `json:"board_seed,omitempty"`

	// Box is the Sudoku box side (3 → 9×9, 4 → 16×16); default 3.
	// Ignored by other domains.
	Box int `json:"box,omitempty"`

	// Level is the overall nesting level ℓ ≥ 2 (root ℓ, medians ℓ−1,
	// client rollouts ℓ−2). Default 2.
	Level int `json:"level,omitempty"`

	// Seed derives every random stream of the job. Two jobs with equal
	// specs return bit-identical results, on the service or solo.
	Seed uint64 `json:"seed"`

	// Memorize enables best-sequence memorization in the client rollouts
	// (the paper's configuration).
	Memorize bool `json:"memorize"`

	// FirstMoveOnly stops the job after the root's first move — the
	// paper's first-move experiments, and the on-line policy-improvement
	// shape (one position in, one move out).
	FirstMoveOnly bool `json:"first_move_only,omitempty"`

	// Evaluator names the registered rollout evaluator guiding this job's
	// playouts ("heuristic" for the bundled per-domain heuristics); empty
	// inherits the service default (Config.Evaluator), and the sentinel
	// "uniform" forces the paper's uniform playouts even when the service
	// has a default. Unknown names are rejected at submission.
	Evaluator string `json:"evaluator,omitempty"`

	// Speculate is the async pipelined-root width for this job
	// (parallel.Config.Speculate): positive speculatively dispatches the
	// next root step's candidates for that many partial-score leaders,
	// pipelining step boundaries; negative forces the synchronous pull
	// root even when the service sets a pool-wide default
	// (Config.Speculate); zero inherits that default. Results are
	// bit-identical at every setting.
	Speculate int `json:"speculate,omitempty"`

	// Cache consults the pool's shared transposition cache for this job's
	// client rollouts (parallel.Config.Cache). Cached jobs draw their
	// sub-search randomness from position-derived streams, so the result
	// is NOT bit-identical to the same spec without the flag — it is one
	// fixed alternative answer of the same quality (see DESIGN.md §11).
	Cache bool `json:"cache,omitempty"`

	// Deadline, when positive, cancels the job that long after it starts
	// running (queue time excluded). The partial result is returned with
	// Stopped true. Go callers set this field; the HTTP API uses
	// DeadlineMillis.
	Deadline time.Duration `json:"-"`

	// DeadlineMillis is the wire form of Deadline, in milliseconds.
	// When both are set, Deadline wins.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// EvaluatorUniform is the JobSpec.Evaluator sentinel that forces the
// paper's uniform rollouts on a service whose Config.Evaluator default
// would otherwise apply (an empty spec field inherits the default).
const EvaluatorUniform = "uniform"

// normalized fills the spec's defaults without mutating the original.
func (s JobSpec) normalized() JobSpec {
	s.Domain = strings.ToLower(strings.TrimSpace(s.Domain))
	s.Evaluator = strings.TrimSpace(s.Evaluator)
	if s.Level == 0 {
		s.Level = 2
	}
	if s.Deadline == 0 && s.DeadlineMillis > 0 {
		s.Deadline = time.Duration(s.DeadlineMillis) * time.Millisecond
	}
	switch s.Domain {
	case "morpion":
		if s.Variant == "" {
			s.Variant = "5D"
		}
	case "samegame":
		if s.Width == 0 {
			s.Width = 8
		}
		if s.Height == 0 {
			s.Height = 8
		}
		if s.Colors == 0 {
			s.Colors = 4
		}
		if s.BoardSeed == 0 {
			s.BoardSeed = 1
		}
	case "sudoku":
		if s.Box == 0 {
			s.Box = 3
		}
	}
	return s
}

// Root builds the initial position the spec describes, or an error for an
// invalid spec. The returned state is fresh on every call, so a spec can
// be run any number of times (service job, solo verification run).
func (s JobSpec) Root() (game.State, error) {
	n := s.normalized()
	if n.Level < 2 {
		return nil, fmt.Errorf("service: level %d < 2 cannot be distributed", n.Level)
	}
	switch n.Domain {
	case "morpion":
		v, err := morpion.VariantByName(n.Variant)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		return morpion.New(v), nil
	case "samegame":
		if n.Width < 1 || n.Height < 1 || n.Width > 32 || n.Height > 32 {
			return nil, fmt.Errorf("service: samegame board %dx%d out of range", n.Width, n.Height)
		}
		if n.Colors < 2 || n.Colors > 9 {
			return nil, fmt.Errorf("service: samegame needs 2..9 colors, got %d", n.Colors)
		}
		return samegame.NewRandom(n.Width, n.Height, n.Colors, n.BoardSeed), nil
	case "sudoku":
		if n.Box < 2 || n.Box > 4 {
			return nil, fmt.Errorf("service: sudoku box side %d out of range 2..4", n.Box)
		}
		return sudoku.New(n.Box), nil
	case "":
		return nil, fmt.Errorf("service: job spec needs a domain (morpion, samegame or sudoku)")
	default:
		return nil, fmt.Errorf("service: unknown domain %q (want morpion, samegame or sudoku)", s.Domain)
	}
}

// Config translates the spec into the parallel-run configuration used
// both by the service pool and by solo RunWall verification runs. The
// dispatcher policy is pool-level (jobs share one dispatcher), so the
// spec does not carry an Algo; scheduling never changes scores.
func (s JobSpec) Config() (parallel.Config, error) {
	root, err := s.Root()
	if err != nil {
		return parallel.Config{}, err
	}
	n := s.normalized()
	eval := n.Evaluator
	switch eval {
	case "", EvaluatorUniform:
		// "uniform" is a spec-level sentinel, not a registered evaluator:
		// both map to the empty parallel.Config field (uniform playouts).
		// The service-default overlay (Manager.run) distinguishes them by
		// looking at the spec, where "uniform" blocks the default.
		eval = ""
	default:
		if !game.HasEvaluator(eval) {
			return parallel.Config{}, fmt.Errorf("service: unknown evaluator %q (registered: %v, or %q)",
				eval, game.EvaluatorNames(), EvaluatorUniform)
		}
	}
	return parallel.Config{
		Level:         n.Level,
		Root:          root,
		Seed:          n.Seed,
		Memorize:      n.Memorize,
		FirstMoveOnly: n.FirstMoveOnly,
		StopAfter:     n.Deadline,
		Evaluator:     eval,
		Cache:         n.Cache,
		Speculate:     n.Speculate,
	}, nil
}
