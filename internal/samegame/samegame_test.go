package samegame

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/rng"
)

func TestParseAndRender(t *testing.T) {
	s, err := Parse(`
		112
		221
		211
	`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Width() != 3 || s.Height() != 3 {
		t.Fatalf("dims %dx%d", s.Width(), s.Height())
	}
	out := s.Render()
	if !strings.Contains(out, "112") {
		t.Fatalf("render lost top row:\n%s", out)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "12\n123", "1x1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestGroupRemovalAndScore(t *testing.T) {
	// Removing the 3-group of 1s scores (3-2)^2 = 1.
	s, err := Parse(`
		12
		11
	`)
	if err != nil {
		t.Fatal(err)
	}
	moves := s.LegalMoves(nil)
	if len(moves) != 1 {
		t.Fatalf("moves = %v, want exactly the group of 1s", moves)
	}
	s.Play(moves[0])
	if s.Score() != 1 {
		t.Fatalf("score %v, want 1", s.Score())
	}
	// Only the lone 2 remains, which falls to the bottom-left.
	if s.Remaining() != 1 {
		t.Fatalf("remaining %d, want 1", s.Remaining())
	}
	if s.Cell(0, 0) != 2 {
		t.Fatalf("survivor not at bottom-left:\n%s", s.Render())
	}
	if !s.Terminal() {
		t.Fatal("singleton board should be terminal")
	}
}

func TestClearBonus(t *testing.T) {
	s, err := Parse(`
		11
		11
	`)
	if err != nil {
		t.Fatal(err)
	}
	s.Play(s.LegalMoves(nil)[0])
	// 4-group: (4-2)^2 = 4, plus the 1000 clear bonus.
	if s.Score() != 4+ClearBonus {
		t.Fatalf("score %v, want %d", s.Score(), 4+ClearBonus)
	}
	if s.Remaining() != 0 || !s.Terminal() {
		t.Fatal("board should be empty and terminal")
	}
}

func TestGravityAndCollapse(t *testing.T) {
	// Removing the middle column's 2s drops the 3 and collapses nothing;
	// removing column 0 entirely shifts columns left.
	s, err := Parse(`
		13.
		12.
		12.
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the vertical pair of 2s at column 1 (bottom rows).
	var target game.Move = game.Move(1*s.Height() + 0)
	found := false
	for _, m := range s.LegalMoves(nil) {
		if m == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected group move at cell %d; moves=%v", target, s.LegalMoves(nil))
	}
	s.Play(target)
	// The 3 falls to the bottom of column 1.
	if s.Cell(1, 0) != 3 {
		t.Fatalf("3 did not fall:\n%s", s.Render())
	}
}

func TestColumnCollapse(t *testing.T) {
	s, err := Parse(`
		1.2
		1.2
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Parse settles the board: empty middle column collapses, so columns
	// 0 and 1 hold the blocks.
	if s.Cell(1, 0) != 2 {
		t.Fatalf("columns did not collapse on parse:\n%s", s.Render())
	}
}

func TestRandomBoardDeterministic(t *testing.T) {
	a := NewStandard(7)
	b := NewStandard(7)
	for i := range a.cells {
		if a.cells[i] != b.cells[i] {
			t.Fatal("same seed, different boards")
		}
	}
	c := NewStandard(8)
	same := true
	for i := range a.cells {
		if a.cells[i] != c.cells[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical boards")
	}
}

func TestPlayoutTerminatesAndScores(t *testing.T) {
	r := rng.New(3)
	s := NewStandard(1)
	var buf []game.Move
	steps := 0
	for !s.Terminal() {
		buf = s.LegalMoves(buf[:0])
		if len(buf) == 0 {
			t.Fatal("non-terminal position with no moves")
		}
		s.Play(buf[r.Intn(len(buf))])
		steps++
		if steps > 15*15 {
			t.Fatal("playout did not terminate")
		}
	}
	if s.Score() <= 0 {
		t.Fatalf("random playout scored %v", s.Score())
	}
	t.Logf("random SameGame playout: score %.0f, %d moves, %d blocks left",
		s.Score(), s.MovesPlayed(), s.Remaining())
}

func TestInvariantBlocksNeverFloat(t *testing.T) {
	// Property: after any sequence of random moves, no block sits above an
	// empty cell and no empty column sits left of a non-empty one.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := NewRandom(8, 8, 4, seed)
		var buf []game.Move
		for i := 0; i < 10 && !s.Terminal(); i++ {
			buf = s.LegalMoves(buf[:0])
			s.Play(buf[r.Intn(len(buf))])
		}
		for x := 0; x < s.Width(); x++ {
			seenEmpty := false
			for y := 0; y < s.Height(); y++ {
				if s.Cell(x, y) == 0 {
					seenEmpty = true
				} else if seenEmpty {
					return false // floating block
				}
			}
		}
		seenEmptyCol := false
		for x := 0; x < s.Width(); x++ {
			if s.Cell(x, 0) == 0 {
				seenEmptyCol = true
			} else if seenEmptyCol {
				return false // gap column
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewStandard(5)
	c := s.Clone().(*State)
	r := rng.New(1)
	var buf []game.Move
	buf = c.LegalMoves(buf[:0])
	c.Play(buf[r.Intn(len(buf))])
	if s.Score() != 0 || s.MovesPlayed() != 0 {
		t.Fatal("playing on clone mutated original")
	}
}

func TestNMCSImprovesSameGame(t *testing.T) {
	// Level 1 must beat level 0 on average — the NMCS premise on the
	// second domain. Small board keeps the test fast.
	mean := func(level int) float64 {
		s := core.NewSearcher(rng.New(9), core.DefaultOptions())
		sum := 0.0
		const n = 5
		for i := 0; i < n; i++ {
			sum += s.Nested(NewRandom(8, 8, 4, uint64(i)), level).Score
		}
		return sum / n
	}
	l0, l1 := mean(0), mean(1)
	t.Logf("SameGame 8x8 means: level0=%.1f level1=%.1f", l0, l1)
	if l1 <= l0 {
		t.Fatalf("level 1 (%v) did not beat level 0 (%v)", l1, l0)
	}
}

func TestBadBoardsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"zero size":   func() { NewRandom(0, 5, 3, 1) },
		"bad colours": func() { NewRandom(5, 5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIllegalPlayPanics(t *testing.T) {
	s := NewStandard(2)
	defer func() {
		if recover() == nil {
			t.Fatal("playing an empty cell did not panic")
		}
	}()
	// Find an empty... standard boards are full; use an out-of-range move.
	s.Play(game.Move(15 * 15))
}
