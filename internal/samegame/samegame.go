// Package samegame implements SameGame, the block-collapsing puzzle used as
// a second evaluation domain for nested Monte-Carlo search (it is one of
// the domains of the companion IJCAI-09 NMCS paper this paper builds on).
//
// The board is a grid of coloured blocks. A move removes a connected group
// (4-neighbourhood) of at least two same-coloured blocks and scores
// (n−2)² points for a group of n blocks. Blocks above removed cells fall
// down and empty columns collapse to the left. Clearing the whole board
// earns a 1000-point bonus. The game ends when no group of two or more
// blocks remains; the goal is to maximize the total score.
//
// SameGame has a much wider score range than Morpion Solitaire and rewards
// long-horizon planning (saving one colour for a massive final group),
// which exercises the search differently.
package samegame

import (
	"fmt"
	"strings"

	"repro/internal/game"
	"repro/internal/rng"
)

// Standard board parameters of the SameGame literature.
const (
	DefaultWidth  = 15
	DefaultHeight = 15
	DefaultColors = 5
	// ClearBonus is awarded for emptying the board completely.
	ClearBonus = 1000
)

// State is a SameGame position. Create with New or NewRandom.
type State struct {
	w, h   int
	colors int
	cells  []int8 // column-major: cells[x*h+y], y=0 is the BOTTOM row; 0 = empty
	score  float64
	moves  int

	// scratch buffers for group enumeration, rebuilt lazily
	mark    []int32
	markGen int32
	stack   []int32

	// Undo history. Gravity and column collapse scramble cell positions
	// irreversibly, so each Play snapshots the pre-move board into the
	// histCells arena (w×h bytes, a fraction of what Clone allocates) plus
	// the pre-move score and hash. The arena grows once to the game depth
	// and is then reused, so Play/Undo allocates nothing in steady state.
	hist      []histEntry // pre-move score and hash, one per played move
	histCells []int8      // arena: pre-move boards, stacked w*h at a time

	// hash is the incremental Zobrist hash of the cell content, maintained
	// by Play (diffing against the pre-move snapshot) and restored from
	// hist by Undo. See game.Hasher.
	hash uint64
}

// histEntry is the O(1) part of one Play's undo record; the board snapshot
// lives in the histCells arena.
type histEntry struct {
	score float64
	hash  uint64
}

// hashSalt seeds the feature keys and the base hash; fixed so hashes are
// stable across processes. Keys are derived with one rng.Mix per changed
// cell: boards are user-sizeable, so a precomputed table cannot cover every
// size, and Play already pays an O(cells) snapshot copy per move.
const hashSalt = 0x53616d6547616d65 // "SameGame"

// cellKey returns the Zobrist key of colour c at cell idx (c > 0; empty
// cells contribute nothing).
func cellKey(idx int, c int8) uint64 {
	return rng.Mix(hashSalt, uint64(idx)<<8|uint64(uint8(c)))
}

// NewRandom returns a uniformly random w×h board with the given number of
// colours, deterministically derived from seed.
func NewRandom(w, h, colors int, seed uint64) *State {
	if w < 1 || h < 1 {
		panic("samegame: board must be at least 1x1")
	}
	if colors < 1 || colors > 9 {
		panic("samegame: colours must be in 1..9")
	}
	s := &State{w: w, h: h, colors: colors, cells: make([]int8, w*h)}
	r := rng.New(seed)
	for i := range s.cells {
		s.cells[i] = int8(r.Intn(colors) + 1)
	}
	s.hash = s.hashFromScratch()
	s.initScratch()
	return s
}

// NewStandard returns the standard 15×15, 5-colour random board.
func NewStandard(seed uint64) *State {
	return NewRandom(DefaultWidth, DefaultHeight, DefaultColors, seed)
}

// Parse builds a board from rows of digits ('0' or '.' = empty, '1'-'9' =
// colour), topmost row first. All rows must have equal length.
func Parse(text string) (*State, error) {
	lines := strings.Fields(strings.TrimSpace(text))
	if len(lines) == 0 {
		return nil, fmt.Errorf("samegame: empty board")
	}
	h := len(lines)
	w := len(lines[0])
	s := &State{w: w, h: h, colors: 0, cells: make([]int8, w*h)}
	for row, line := range lines {
		if len(line) != w {
			return nil, fmt.Errorf("samegame: row %d has %d cells, want %d", row, len(line), w)
		}
		y := h - 1 - row // topmost line is the highest y
		for x := 0; x < w; x++ {
			ch := line[x]
			switch {
			case ch == '0' || ch == '.':
				s.cells[x*h+y] = 0
			case ch >= '1' && ch <= '9':
				c := int8(ch - '0')
				s.cells[x*h+y] = c
				if int(c) > s.colors {
					s.colors = int(c)
				}
			default:
				return nil, fmt.Errorf("samegame: bad cell %q at row %d col %d", ch, row, x)
			}
		}
	}
	// A parsed board must already satisfy gravity/collapse invariants for
	// the move generator to be meaningful; normalize it.
	s.settle()
	s.hash = s.hashFromScratch()
	s.initScratch()
	return s, nil
}

func (s *State) initScratch() {
	s.mark = make([]int32, s.w*s.h)
	s.stack = make([]int32, 0, s.w*s.h)
}

// Width and Height report the board dimensions.
func (s *State) Width() int  { return s.w }
func (s *State) Height() int { return s.h }

// Cell returns the colour at column x, height y (0 = bottom), 0 if empty.
func (s *State) Cell(x, y int) int { return int(s.cells[x*s.h+y]) }

// Score implements game.State: points accumulated so far, including the
// clear bonus once the board is empty.
func (s *State) Score() float64 { return s.score }

// MovesPlayed implements game.State.
func (s *State) MovesPlayed() int { return s.moves }

// Terminal implements game.State: true when no group of ≥2 remains.
func (s *State) Terminal() bool {
	return !s.anyGroup()
}

// Move encoding: the cell index (x*h+y) of the representative (smallest
// index) block of the group to remove.

// LegalMoves implements game.State: one move per connected group of at
// least two blocks, identified by its smallest cell index, in increasing
// order (deterministic).
func (s *State) LegalMoves(buf []game.Move) []game.Move {
	s.markGen++
	for i := range s.cells {
		if s.cells[i] == 0 || s.mark[i] == s.markGen {
			continue
		}
		size := s.flood(int32(i), s.cells[i], nil)
		if size >= 2 {
			buf = append(buf, game.Move(i))
		}
	}
	return buf
}

// anyGroup reports whether any removable group exists (cheaper than a full
// LegalMoves when only termination matters).
func (s *State) anyGroup() bool {
	h := s.h
	for i, c := range s.cells {
		if c == 0 {
			continue
		}
		// Right neighbour (same row, next column) or upper neighbour.
		if i+h < len(s.cells) && s.cells[i+h] == c {
			return true
		}
		if (i%h)+1 < h && s.cells[i+1] == c {
			return true
		}
	}
	return false
}

// flood marks the group containing cell idx (colour c) with the current
// generation and returns its size. When out is non-nil the member cells
// are appended to it.
func (s *State) flood(idx int32, c int8, out *[]int32) int {
	h := int32(s.h)
	n := 0
	s.stack = s.stack[:0]
	s.stack = append(s.stack, idx)
	s.mark[idx] = s.markGen
	for len(s.stack) > 0 {
		cur := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		n++
		if out != nil {
			*out = append(*out, cur)
		}
		x, y := cur/h, cur%h
		for dir := 0; dir < 4; dir++ {
			nx, ny := x, y
			switch dir {
			case 0:
				nx--
			case 1:
				nx++
			case 2:
				ny--
			case 3:
				ny++
			}
			if nx < 0 || nx >= int32(s.w) || ny < 0 || ny >= h {
				continue
			}
			nb := nx*h + ny
			if s.cells[nb] == c && s.mark[nb] != s.markGen {
				s.mark[nb] = s.markGen
				s.stack = append(s.stack, nb)
			}
		}
	}
	return n
}

// Play implements game.State: removes the group containing the move's
// cell, applies gravity and column collapse, and accumulates the score.
func (s *State) Play(m game.Move) {
	idx := int32(m)
	if idx < 0 || int(idx) >= len(s.cells) || s.cells[idx] == 0 {
		panic(fmt.Sprintf("samegame: illegal move %d", idx))
	}
	s.markGen++
	var members []int32
	n := s.flood(idx, s.cells[idx], &members)
	if n < 2 {
		panic(fmt.Sprintf("samegame: move %d names a singleton group", idx))
	}
	s.histCells = append(s.histCells, s.cells...)
	s.hist = append(s.hist, histEntry{score: s.score, hash: s.hash})
	for _, c := range members {
		s.cells[c] = 0
	}
	s.score += float64((n - 2) * (n - 2))
	s.moves++
	s.settle()
	if s.empty() {
		s.score += ClearBonus
	}
	// Incremental hash update: gravity and collapse move many cells, but
	// the pre-move board is already snapshotted in the histCells arena, so
	// one diff pass XORs exactly the changed features in and out.
	snap := s.histCells[len(s.histCells)-len(s.cells):]
	for i, c := range s.cells {
		if old := snap[i]; old != c {
			if old != 0 {
				s.hash ^= cellKey(i, old)
			}
			if c != 0 {
				s.hash ^= cellKey(i, c)
			}
		}
	}
}

// settle applies gravity within columns and collapses empty columns left.
func (s *State) settle() {
	h := s.h
	// Gravity: compact every column downwards.
	for x := 0; x < s.w; x++ {
		col := s.cells[x*h : (x+1)*h]
		w := 0
		for y := 0; y < h; y++ {
			if col[y] != 0 {
				col[w] = col[y]
				w++
			}
		}
		for ; w < h; w++ {
			col[w] = 0
		}
	}
	// Collapse: shift non-empty columns left.
	wout := 0
	for x := 0; x < s.w; x++ {
		if s.cells[x*h] == 0 { // empty column after gravity
			continue
		}
		if wout != x {
			copy(s.cells[wout*h:(wout+1)*h], s.cells[x*h:(x+1)*h])
		}
		wout++
	}
	for x := wout; x < s.w; x++ {
		for y := 0; y < h; y++ {
			s.cells[x*h+y] = 0
		}
	}
}

// empty reports whether the board has no blocks left.
func (s *State) empty() bool {
	for _, c := range s.cells {
		if c != 0 {
			return false
		}
	}
	return true
}

// Undo implements game.Undoer: it restores the board and score to their
// state before the most recent Play. It panics on the initial position or
// past a clone floor (clones drop history; see the game.State contract).
func (s *State) Undo() {
	if len(s.hist) == 0 {
		panic("samegame: Undo on initial position or past a clone floor")
	}
	n := len(s.cells)
	lo := len(s.histCells) - n
	copy(s.cells, s.histCells[lo:])
	s.histCells = s.histCells[:lo]
	h := s.hist[len(s.hist)-1]
	s.score, s.hash = h.score, h.hash
	s.hist = s.hist[:len(s.hist)-1]
	s.moves--
}

// Clone implements game.State. Per the clone-with-undo contract the clone
// starts with an empty undo history floored at the cloned position.
func (s *State) Clone() game.State {
	c := &State{
		w: s.w, h: s.h, colors: s.colors,
		cells: append([]int8(nil), s.cells...),
		score: s.score, moves: s.moves,
		hash: s.hash,
	}
	c.initScratch()
	return c
}

// CopyFrom implements game.Copier: it overwrites s with a deep copy of
// src, reusing s's buffers where sizes allow (a dimension change
// reallocates them). src must be a SameGame state.
func (s *State) CopyFrom(src game.State) {
	o, ok := src.(*State)
	if !ok {
		panic("samegame: CopyFrom with a non-SameGame state")
	}
	if s.w != o.w || s.h != o.h {
		s.w, s.h = o.w, o.h
		s.cells = make([]int8, len(o.cells))
		s.initScratch()
	}
	copy(s.cells, o.cells)
	s.colors = o.colors
	s.score, s.moves = o.score, o.moves
	s.hash = o.hash
	s.hist = s.hist[:0]
	s.histCells = s.histCells[:0]
}

// Hash implements game.Hasher: the incremental Zobrist hash of the cell
// content. Positions with equal boards hash equal even when their
// accumulated score differs (score is path-dependent), so cache consumers
// store score deltas (see the game.Hasher contract).
func (s *State) Hash() uint64 { return s.hash }

// hashFromScratch recomputes the position hash from the cells alone. It is
// the oracle the fuzz tests compare the incremental hash against.
func (s *State) hashFromScratch() uint64 {
	h := rng.Mix(hashSalt, uint64(s.w)<<32|uint64(s.h))
	for i, c := range s.cells {
		if c != 0 {
			h ^= cellKey(i, c)
		}
	}
	return h
}

// EncodedSize implements game.Sizer.
func (s *State) EncodedSize() int { return len(s.cells) + 16 }

// Render draws the board, top row first.
func (s *State) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "samegame %dx%d score=%.0f\n", s.w, s.h, s.score)
	for y := s.h - 1; y >= 0; y-- {
		for x := 0; x < s.w; x++ {
			c := s.cells[x*s.h+y]
			if c == 0 {
				b.WriteByte('.')
			} else {
				b.WriteByte('0' + byte(c))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Remaining returns the number of blocks still on the board.
func (s *State) Remaining() int {
	n := 0
	for _, c := range s.cells {
		if c != 0 {
			n++
		}
	}
	return n
}

var _ game.State = (*State)(nil)
var _ game.Undoer = (*State)(nil)
var _ game.Copier = (*State)(nil)
var _ game.Sizer = (*State)(nil)
var _ game.Hasher = (*State)(nil)

// RateMoves implements game.MoveRater for the bundled heuristic
// evaluator: a group's weight is its size. The score of removing n
// blocks is (n−2)², so steering playouts toward big groups is the
// natural greedy signal. Only scratch marks are touched; the observable
// position is unchanged.
func (s *State) RateMoves(moves []game.Move, w []float64) []float64 {
	s.markGen++
	for _, m := range moves {
		w = append(w, float64(s.flood(int32(m), s.cells[m], nil)))
	}
	return w
}

var _ game.MoveRater = (*State)(nil)
