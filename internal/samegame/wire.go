package samegame

// Wire encoding of SameGame positions for the distributed rank world
// (mpi.NetCluster). Gravity and column collapse destroy move history, so —
// unlike Morpion — a mid-game board cannot be replayed from a move list;
// the encoding ships the board itself, one byte per cell, plus the score
// and move count the board alone cannot recover:
//
//	u8 w | u8 h | u8 colors | uvarint moves | u64 score bits | w*h cell bytes
//
// Decoding validates dimensions and cell values and returns an error on
// malformed bytes, never a corrupted position.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// wireMaxSide caps the board dimensions a decoder accepts; it matches the
// largest boards the service exposes with headroom.
const wireMaxSide = 64

// AppendWire appends the position's wire encoding to buf.
func (s *State) AppendWire(buf []byte) []byte {
	buf = append(buf, byte(s.w), byte(s.h), byte(s.colors))
	buf = binary.AppendUvarint(buf, uint64(s.moves))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.score))
	for _, c := range s.cells {
		buf = append(buf, byte(c))
	}
	return buf
}

// DecodeWire reconstructs a position encoded by AppendWire, consuming all
// of data. Per the clone contract the decoded position starts with an
// empty undo history floored at the shipped position.
func DecodeWire(data []byte) (*State, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("samegame: wire: truncated header")
	}
	w, h, colors := int(data[0]), int(data[1]), int(data[2])
	if w < 1 || w > wireMaxSide || h < 1 || h > wireMaxSide {
		return nil, fmt.Errorf("samegame: wire: board %dx%d out of range", w, h)
	}
	if colors < 1 || colors > 9 {
		return nil, fmt.Errorf("samegame: wire: %d colours out of range", colors)
	}
	data = data[3:]
	moves, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("samegame: wire: truncated move count")
	}
	data = data[used:]
	if moves > uint64(w*h) {
		return nil, fmt.Errorf("samegame: wire: %d moves on a %d-cell board", moves, w*h)
	}
	if len(data) != 8+w*h {
		return nil, fmt.Errorf("samegame: wire: body %d bytes, want %d", len(data), 8+w*h)
	}
	score := math.Float64frombits(binary.LittleEndian.Uint64(data))
	data = data[8:]
	s := &State{
		w: w, h: h, colors: colors,
		cells: make([]int8, w*h),
		score: score,
		moves: int(moves),
	}
	for i, b := range data {
		if int(b) > colors {
			return nil, fmt.Errorf("samegame: wire: cell %d has colour %d of %d", i, b, colors)
		}
		s.cells[i] = int8(b)
	}
	s.hash = s.hashFromScratch()
	s.initScratch()
	return s, nil
}
