package samegame

// Native fuzz target extending the pinned Play/Undo round-trip property
// (undo_test.go, core/equivalence_test.go) to arbitrary boards and move
// sequences: every Undo must restore the position bit-exactly — score,
// move count and the exact ORDER of the legal-move list, captured as a
// position hash. SameGame's undo restores whole board snapshots, so
// group renumbering after a collapse is exactly the kind of subtle state
// this hunts.

import (
	"math"
	"testing"

	"repro/internal/game"
)

// fuzzHash folds the observable position state — move count, score and
// the ordered legal-move list — into one position hash (FNV-1a).
func fuzzHash(st game.State, buf []game.Move) (uint64, []game.Move) {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mix(uint64(st.MovesPlayed()))
	mix(math.Float64bits(st.Score()))
	buf = st.LegalMoves(buf[:0])
	mix(uint64(len(buf)))
	for _, m := range buf {
		mix(uint64(m))
	}
	return h, buf
}

// checkZobrist asserts the incrementally maintained game.Hasher hash
// equals a from-scratch recomputation over the board — the property the
// transposition cache keys on. SameGame maintains its hash with a
// post-settle diff pass against the undo snapshot, so gravity and column
// collapse are exactly the kind of multi-cell churn this hunts.
func checkZobrist(t *testing.T, st *State, when string) {
	t.Helper()
	if got, want := st.Hash(), st.hashFromScratch(); got != want {
		t.Fatalf("%s: incremental hash %x != from-scratch %x", when, got, want)
	}
}

func FuzzPlayUndoRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(4), uint64(1), []byte{0, 1, 2, 3})
	f.Add(uint8(5), uint8(5), uint8(3), uint64(7), []byte{255, 0, 128, 64, 9})
	f.Add(uint8(2), uint8(15), uint8(2), uint64(42), []byte{1, 1, 1, 1, 1, 1})

	f.Fuzz(func(t *testing.T, w, hgt, colors uint8, boardSeed uint64, picks []byte) {
		width := 2 + int(w)%14    // 2..15
		height := 2 + int(hgt)%14 // 2..15
		ncol := 2 + int(colors)%4 // 2..5
		st := NewRandom(width, height, ncol, boardSeed)
		if len(picks) > 256 {
			picks = picks[:256]
		}

		var buf []game.Move
		var hashes []uint64
		h, buf := fuzzHash(st, buf)
		hashes = append(hashes, h)
		checkZobrist(t, st, "fresh position")

		var legal []game.Move
		for _, b := range picks {
			legal = st.LegalMoves(legal[:0])
			if len(legal) == 0 {
				break
			}
			st.Play(legal[int(b)%len(legal)])
			h, buf = fuzzHash(st, buf)
			hashes = append(hashes, h)
			checkZobrist(t, st, "after play")
		}

		for depth := len(hashes) - 1; depth > 0; depth-- {
			st.Undo()
			h, buf = fuzzHash(st, buf)
			if h != hashes[depth-1] {
				t.Fatalf("undo to depth %d: position hash %x != %x (score/move-order not restored)",
					depth-1, h, hashes[depth-1])
			}
			checkZobrist(t, st, "after undo")
		}
		if st.MovesPlayed() != 0 {
			t.Fatalf("fully rewound position still has %d moves", st.MovesPlayed())
		}
	})
}
