package samegame

import (
	"testing"

	"repro/internal/game"
	"repro/internal/rng"
)

// describe captures the full observable state of a position for
// comparison: board rendering (cells + score), move count, terminal flag
// and the exact legal move order.
func describe(s *State) (string, int, bool, []game.Move) {
	return s.Render(), s.MovesPlayed(), s.Terminal(), s.LegalMoves(nil)
}

func statesEqual(t *testing.T, label string, a, b *State) {
	t.Helper()
	ra, ma, ta, la := describe(a)
	rb, mb, tb, lb := describe(b)
	if ra != rb {
		t.Fatalf("%s: boards differ:\n%s\nvs\n%s", label, ra, rb)
	}
	if ma != mb || ta != tb {
		t.Fatalf("%s: moves/terminal differ: %d/%v vs %d/%v", label, ma, ta, mb, tb)
	}
	if len(la) != len(lb) {
		t.Fatalf("%s: legal move counts differ: %d vs %d", label, len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("%s: legal move %d differs: %v vs %v", label, i, la[i], lb[i])
		}
	}
}

// TestPlayUndoRoundTrip plays k random moves, undoes all k, and checks the
// position against a pristine replay of the prefix at every undo depth.
func TestPlayUndoRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		s := NewRandom(8, 8, 4, seed)

		// Record the played prefix while playing a random full game.
		var played []game.Move
		var buf []game.Move
		for {
			buf = s.LegalMoves(buf[:0])
			if len(buf) == 0 {
				break
			}
			m := buf[r.Intn(len(buf))]
			s.Play(m)
			played = append(played, m)
		}
		if len(played) == 0 {
			t.Fatal("random game played zero moves")
		}

		// Undo one move at a time; after each undo the state must match a
		// pristine replay of the remaining prefix.
		for k := len(played); k > 0; k-- {
			s.Undo()
			replay := NewRandom(8, 8, 4, seed)
			for _, m := range played[:k-1] {
				replay.Play(m)
			}
			statesEqual(t, "after undo", s, replay)
		}
	}
}

// TestUndoPanicsAtFloor checks both floors: the initial position and the
// clone point (clones drop their source's history).
func TestUndoPanicsAtFloor(t *testing.T) {
	expectPanic := func(label string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", label)
			}
		}()
		f()
	}
	expectPanic("Undo on initial position", func() { NewRandom(5, 5, 3, 1).Undo() })

	s := NewRandom(5, 5, 3, 1)
	s.Play(s.LegalMoves(nil)[0])
	c := s.Clone().(*State)
	expectPanic("Undo past clone floor", c.Undo)
}

// TestCloneFloorRoundTrip plays past a clone point and undoes back to it:
// the clone must land exactly on the cloned position.
func TestCloneFloorRoundTrip(t *testing.T) {
	r := rng.New(3)
	s := NewRandom(8, 8, 4, 9)
	for i := 0; i < 4; i++ {
		buf := s.LegalMoves(nil)
		if len(buf) == 0 {
			t.Fatal("board died too early")
		}
		s.Play(buf[r.Intn(len(buf))])
	}
	c := s.Clone().(*State)
	played := 0
	for !c.Terminal() {
		buf := c.LegalMoves(nil)
		c.Play(buf[r.Intn(len(buf))])
		played++
	}
	for i := 0; i < played; i++ {
		c.Undo()
	}
	statesEqual(t, "clone rewound to floor", c, s)
}

// TestCopyFromMatchesClone checks that CopyFrom produces a state
// indistinguishable from a fresh clone, independent of the receiver's
// prior contents.
func TestCopyFromMatchesClone(t *testing.T) {
	r := rng.New(8)
	src := NewRandom(8, 8, 4, 2)
	for i := 0; i < 3; i++ {
		src.Play(src.LegalMoves(nil)[0])
	}
	dst := NewRandom(8, 8, 4, 77) // unrelated board, same dimensions
	for i := 0; i < 5 && !dst.Terminal(); i++ {
		buf := dst.LegalMoves(nil)
		dst.Play(buf[r.Intn(len(buf))])
	}
	dst.CopyFrom(src)
	statesEqual(t, "CopyFrom", dst, src.Clone().(*State))

	// The copy must be independent: mutating it leaves src untouched.
	before, _, _, _ := describe(src)
	for !dst.Terminal() {
		buf := dst.LegalMoves(nil)
		dst.Play(buf[r.Intn(len(buf))])
	}
	after, _, _, _ := describe(src)
	if before != after {
		t.Fatal("mutating a CopyFrom copy changed the source")
	}
}
