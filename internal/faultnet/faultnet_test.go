package faultnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() }) //nolint:errcheck // teardown
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c) //nolint:errcheck // echo until error
				c.Close()     //nolint:errcheck // teardown
			}()
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck // teardown
	return c
}

// roundTrip writes msg and expects it echoed back within the deadline.
func roundTrip(t *testing.T, c net.Conn, msg string) error {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		return err
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test bound
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		return err
	}
	if string(buf) != msg {
		t.Fatalf("echoed %q, want %q", buf, msg)
	}
	return nil
}

func TestProxyRelaysAndSevers(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if err := roundTrip(t, c, "hello"); err != nil {
		t.Fatalf("relay: %v", err)
	}

	p.Sever()
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test bound
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("severed link still delivered bytes")
	}

	// A fresh dial through the same proxy relays again (rolling
	// replacement path).
	c2 := dialProxy(t, p)
	if err := roundTrip(t, c2, "again"); err != nil {
		t.Fatalf("post-sever relay: %v", err)
	}
}

func TestProxyBlackholeSilencesWithoutClosing(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if err := roundTrip(t, c, "warm"); err != nil {
		t.Fatal(err)
	}

	p.Blackhole(true)
	if _, err := c.Write([]byte("void")); err != nil {
		t.Fatalf("blackholed write must look successful: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond)) //nolint:errcheck // expecting silence
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("blackholed link delivered bytes")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("blackholed link closed instead of staying silent: %v", err)
	}

	// Lifting the blackhole restores the link for NEW traffic (the
	// swallowed bytes stay lost, like a real partition).
	p.Blackhole(false)
	if err := roundTrip(t, c, "back"); err != nil {
		t.Fatalf("post-blackhole relay: %v", err)
	}
}

func TestProxyDelayHoldsDelivery(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDelay(120 * time.Millisecond)

	c := dialProxy(t, p)
	t0 := time.Now()
	if err := roundTrip(t, c, "slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("delayed round trip took only %v", d)
	}
}

// startObservedEcho echoes like startEcho but also reports every chunk
// the server side actually received, so directional tests can tell "the
// bytes arrived but the reply was swallowed" (Down blackhole) apart from
// "the bytes never arrived" (Up blackhole).
func startObservedEcho(t *testing.T) (string, <-chan string) {
	t.Helper()
	got := make(chan string, 16)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() }) //nolint:errcheck // teardown
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						got <- string(buf[:n])
						c.Write(buf[:n]) //nolint:errcheck // echo until error
					}
					if err != nil {
						c.Close() //nolint:errcheck // teardown
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), got
}

// expectArrival accumulates server-side chunks until want has arrived.
func expectArrival(t *testing.T, got <-chan string, want string) {
	t.Helper()
	var seen string
	for seen != want {
		select {
		case chunk := <-got:
			seen += chunk
		case <-time.After(2 * time.Second):
			t.Fatalf("server received %q, want %q", seen, want)
		}
	}
}

// TestProxyBlackholeDirDown silences only the target→dialer direction:
// the dialer's bytes still reach the server (which replies into the
// void), and lifting the blackhole restores new replies while the
// swallowed one stays lost.
func TestProxyBlackholeDirDown(t *testing.T) {
	addr, got := startObservedEcho(t)
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if err := roundTrip(t, c, "warm"); err != nil {
		t.Fatal(err)
	}
	expectArrival(t, got, "warm")

	p.BlackholeDir(Down, true)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write through a Down blackhole must succeed: %v", err)
	}
	expectArrival(t, got, "ping")                             // the Up direction still relays
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond)) //nolint:errcheck // expecting silence
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("Down-blackholed link delivered the echo")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("Down-blackholed link closed instead of staying silent: %v", err)
	}

	p.BlackholeDir(Down, false)
	if err := roundTrip(t, c, "anew"); err != nil {
		t.Fatalf("post-blackhole relay: %v", err)
	}
}

// TestProxyBlackholeDirUp silences only the dialer→target direction: the
// write looks successful but the server never sees the bytes, and there
// is consequently no echo either.
func TestProxyBlackholeDirUp(t *testing.T) {
	addr, got := startObservedEcho(t)
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if err := roundTrip(t, c, "warm"); err != nil {
		t.Fatal(err)
	}
	expectArrival(t, got, "warm")

	p.BlackholeDir(Up, true)
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatalf("write through an Up blackhole must look successful: %v", err)
	}
	select {
	case chunk := <-got:
		t.Fatalf("Up-blackholed bytes reached the server: %q", chunk)
	case <-time.After(150 * time.Millisecond):
	}

	p.BlackholeDir(Up, false)
	if err := roundTrip(t, c, "seen"); err != nil {
		t.Fatalf("post-blackhole relay: %v", err)
	}
	expectArrival(t, got, "seen")
}

// TestProxyDelayDirPerDirection pins per-direction delay: a base on one
// direction slows the round trip by at least that much, and jitter only
// ever adds on top of the base.
func TestProxyDelayDirPerDirection(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)

	p.SetDelayDir(Up, 80*time.Millisecond, 0)
	t0 := time.Now()
	if err := roundTrip(t, c, "up-slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 60*time.Millisecond {
		t.Fatalf("Up-delayed round trip took only %v", d)
	}

	// Move the delay to Down, with jitter: the base is still the floor.
	p.SetDelayDir(Up, 0, 0)
	p.SetDelayDir(Down, 60*time.Millisecond, 60*time.Millisecond)
	t0 = time.Now()
	if err := roundTrip(t, c, "down-jittered"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("jittered Down round trip took only %v (base 60ms is the floor)", d)
	}
}

func TestProxySeverAfterCutsMidMessage(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SeverAfter(3)

	c := dialProxy(t, p)
	c.Write([]byte("0123456789"))                      //nolint:errcheck // fuse may trip mid-write
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test bound
	buf := make([]byte, 10)
	n, err := io.ReadFull(c, buf)
	if err == nil || n > 3 {
		t.Fatalf("fuse delivered %d bytes (err %v), want ≤3 then a dead stream", n, err)
	}
}
