package faultnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() }) //nolint:errcheck // teardown
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c) //nolint:errcheck // echo until error
				c.Close()     //nolint:errcheck // teardown
			}()
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck // teardown
	return c
}

// roundTrip writes msg and expects it echoed back within the deadline.
func roundTrip(t *testing.T, c net.Conn, msg string) error {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		return err
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test bound
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		return err
	}
	if string(buf) != msg {
		t.Fatalf("echoed %q, want %q", buf, msg)
	}
	return nil
}

func TestProxyRelaysAndSevers(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if err := roundTrip(t, c, "hello"); err != nil {
		t.Fatalf("relay: %v", err)
	}

	p.Sever()
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test bound
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("severed link still delivered bytes")
	}

	// A fresh dial through the same proxy relays again (rolling
	// replacement path).
	c2 := dialProxy(t, p)
	if err := roundTrip(t, c2, "again"); err != nil {
		t.Fatalf("post-sever relay: %v", err)
	}
}

func TestProxyBlackholeSilencesWithoutClosing(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if err := roundTrip(t, c, "warm"); err != nil {
		t.Fatal(err)
	}

	p.Blackhole(true)
	if _, err := c.Write([]byte("void")); err != nil {
		t.Fatalf("blackholed write must look successful: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond)) //nolint:errcheck // expecting silence
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("blackholed link delivered bytes")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("blackholed link closed instead of staying silent: %v", err)
	}

	// Lifting the blackhole restores the link for NEW traffic (the
	// swallowed bytes stay lost, like a real partition).
	p.Blackhole(false)
	if err := roundTrip(t, c, "back"); err != nil {
		t.Fatalf("post-blackhole relay: %v", err)
	}
}

func TestProxyDelayHoldsDelivery(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDelay(120 * time.Millisecond)

	c := dialProxy(t, p)
	t0 := time.Now()
	if err := roundTrip(t, c, "slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("delayed round trip took only %v", d)
	}
}

func TestProxySeverAfterCutsMidMessage(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SeverAfter(3)

	c := dialProxy(t, p)
	c.Write([]byte("0123456789"))                      //nolint:errcheck // fuse may trip mid-write
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test bound
	buf := make([]byte, 10)
	n, err := io.ReadFull(c, buf)
	if err == nil || n > 3 {
		t.Fatalf("fuse delivered %d bytes (err %v), want ≤3 then a dead stream", n, err)
	}
}
