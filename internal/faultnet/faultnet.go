// Package faultnet is the fault-injection harness behind the chaos test
// layer: a controllable TCP proxy that sits between a dialing peer (a
// pnmcs-worker) and its target (the pnmcsd coordinator) and can sever,
// delay, or blackhole the stream on command.
//
// The chaos tests in internal/parallel and internal/mpi point a worker's
// dial address at a Proxy instead of the coordinator and then inject the
// failure mode under test:
//
//   - Sever: both legs of every proxied connection are closed — the
//     TCP-visible crash (SIGKILL, reset). Each side's reader fails
//     immediately, which is the loss signal mpi.NetCluster acts on.
//   - Blackhole: bytes in both directions are silently discarded while
//     both connections stay open — the pathological failure (partition,
//     wedged NIC, frozen VM) that only a heartbeat timeout can detect.
//   - Delay: every delivery is held for a fixed duration — cheap latency
//     injection for shaking out ordering assumptions.
//   - SeverAfter: the upstream leg is cut after N relayed bytes — frames
//     and handshakes torn mid-message.
//
// A Proxy accepts any number of consecutive connections (a worker that
// redials gets a fresh link through the same failure configuration), so
// rolling-replacement scenarios drive loss and rejoin through one
// address. FaultConn, the per-connection wrapper the proxy is built on,
// is exported for tests that want to wrap a single net.Conn directly.
package faultnet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConn wraps a net.Conn with switchable failure behavior. The zero
// modes pass traffic through unchanged. Safe for concurrent use; mode
// switches apply to in-flight operations at their next byte boundary.
type FaultConn struct {
	net.Conn

	blackhole atomic.Bool
	delayNs   atomic.Int64

	// severAfter, when positive, counts down relayed Write bytes; the
	// connection is severed once it reaches zero.
	severAfter atomic.Int64
	severArmed atomic.Bool

	closeOnce sync.Once
}

// NewFaultConn wraps c.
func NewFaultConn(c net.Conn) *FaultConn { return &FaultConn{Conn: c} }

// Blackhole switches byte-discard mode: writes report success but deliver
// nothing, reads consume and discard inbound bytes without returning
// them, and the connection stays open — exactly the silence a heartbeat
// timeout exists to catch.
func (f *FaultConn) Blackhole(on bool) { f.blackhole.Store(on) }

// SetDelay holds every read delivery for d. Zero disables.
func (f *FaultConn) SetDelay(d time.Duration) { f.delayNs.Store(int64(d)) }

// Sever closes the underlying connection; both endpoints observe a dead
// stream. Idempotent.
func (f *FaultConn) Sever() {
	f.closeOnce.Do(func() { f.Conn.Close() }) //nolint:errcheck // severing
}

// SeverAfter arms a byte fuse: the connection is severed as soon as n
// more bytes have been written through it. n <= 0 severs immediately.
func (f *FaultConn) SeverAfter(n int64) {
	f.severAfter.Store(n)
	f.severArmed.Store(true)
	if n <= 0 {
		f.Sever()
	}
}

// Read implements net.Conn. Blackholed reads consume the peer's bytes and
// keep blocking, so the stream looks alive to TCP but silent to the
// application.
func (f *FaultConn) Read(p []byte) (int, error) {
	for {
		n, err := f.Conn.Read(p)
		if err != nil {
			return n, err
		}
		if d := time.Duration(f.delayNs.Load()); d > 0 {
			time.Sleep(d)
		}
		if !f.blackhole.Load() {
			return n, nil
		}
		// Discard and wait for more — or for the peer to give up.
	}
}

// Write implements net.Conn.
func (f *FaultConn) Write(p []byte) (int, error) {
	if f.blackhole.Load() {
		return len(p), nil // swallowed
	}
	if f.severArmed.Load() {
		left := f.severAfter.Load()
		if int64(len(p)) >= left {
			// Deliver the fuse's worth, then cut.
			n, _ := f.Conn.Write(p[:left])
			f.Sever()
			return n, io.ErrClosedPipe
		}
		f.severAfter.Add(int64(-len(p)))
	}
	return f.Conn.Write(p)
}

// Close implements net.Conn.
func (f *FaultConn) Close() error {
	f.closeOnce.Do(func() { f.Conn.Close() }) //nolint:errcheck // closing
	return nil
}

// Proxy is a TCP relay whose links can be broken on command. All controls
// apply to every current and future link.
type Proxy struct {
	target string
	ln     net.Listener

	mu      sync.Mutex
	links   []*FaultConn // upstream legs of the live links
	inbound []net.Conn   // matching downstream (accepted) conns
	closed  bool

	blackhole  bool
	delay      time.Duration
	severAfter int64 // pending byte fuse for the next link; -1 = none
}

// NewProxy starts a proxy listening on a loopback ephemeral port,
// relaying every accepted connection to target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, severAfter: -1}
	go p.accept()
	return p, nil
}

// Addr returns the address peers dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) accept() {
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			in.Close() //nolint:errcheck // nothing to relay to
			continue
		}
		f := NewFaultConn(up)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			in.Close() //nolint:errcheck // shutting down
			f.Sever()
			continue
		}
		f.Blackhole(p.blackhole)
		f.SetDelay(p.delay)
		if p.severAfter >= 0 {
			f.SeverAfter(p.severAfter)
		}
		p.links = append(p.links, f)
		p.inbound = append(p.inbound, in)
		p.mu.Unlock()

		// Two pumps per link; when either leg dies, drag the other down so
		// neither endpoint hangs on a half-open relay (unless blackholed —
		// then FaultConn swallows traffic while both legs stay up).
		go func() {
			io.Copy(f, in) //nolint:errcheck // relay until error
			f.Sever()
			in.Close() //nolint:errcheck // teardown
		}()
		go func() {
			io.Copy(in, f) //nolint:errcheck // relay until error
			f.Sever()
			in.Close() //nolint:errcheck // teardown
		}()
	}
}

// Sever cuts every live link: both endpoints observe a dead stream, like
// a SIGKILLed process. New connections still relay (a replacement worker
// can dial through the same proxy).
func (p *Proxy) Sever() {
	p.mu.Lock()
	links := append([]*FaultConn(nil), p.links...)
	inbound := append([]net.Conn(nil), p.inbound...)
	p.links, p.inbound = nil, nil
	p.mu.Unlock()
	for _, f := range links {
		f.Sever()
	}
	for _, in := range inbound {
		in.Close() //nolint:errcheck // severing
	}
}

// Blackhole silently discards traffic in both directions on every current
// and future link while keeping the connections open.
func (p *Proxy) Blackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	links := append([]*FaultConn(nil), p.links...)
	p.mu.Unlock()
	for _, f := range links {
		f.Blackhole(on)
	}
}

// SetDelay holds every delivery for d on current and future links.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	links := append([]*FaultConn(nil), p.links...)
	p.mu.Unlock()
	for _, f := range links {
		f.SetDelay(d)
	}
}

// SeverAfter arms a byte fuse on the next accepted link (and every link
// after it): the upstream leg is cut once n bytes have been relayed
// toward the target — a handshake or frame torn mid-message. Negative
// disarms.
func (p *Proxy) SeverAfter(n int64) {
	p.mu.Lock()
	p.severAfter = n
	p.mu.Unlock()
}

// Close stops accepting and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close() //nolint:errcheck // teardown
	p.Sever()
}
