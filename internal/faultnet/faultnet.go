// Package faultnet is the fault-injection harness behind the chaos test
// layer: a controllable TCP proxy that sits between a dialing peer (a
// pnmcs-worker) and its target (the pnmcsd coordinator) and can sever,
// delay, or blackhole the stream on command.
//
// The chaos tests in internal/parallel and internal/mpi point a worker's
// dial address at a Proxy instead of the coordinator and then inject the
// failure mode under test:
//
//   - Sever: both legs of every proxied connection are closed — the
//     TCP-visible crash (SIGKILL, reset). Each side's reader fails
//     immediately, which is the loss signal mpi.NetCluster acts on.
//   - Blackhole: bytes are silently discarded while both connections
//     stay open — the pathological failure (partition, wedged NIC,
//     frozen VM) that only a heartbeat timeout can detect. The drop can
//     be two-way (Blackhole) or one-way (BlackholeDir): dropping only
//     the Down direction (coordinator→worker) silences the coordinator
//     from the worker's point of view while the worker's own frames
//     still arrive — the asymmetric partition the worker-side silence
//     timeout exists to catch.
//   - Delay: every delivery is held for a duration — cheap latency
//     injection for shaking out ordering assumptions. Per direction,
//     with optional uniform jitter (SetDelayDir).
//   - SeverAfter: the upstream leg is cut after N relayed bytes — frames
//     and handshakes torn mid-message.
//
// A Proxy accepts any number of consecutive connections (a worker that
// redials gets a fresh link through the same failure configuration), so
// rolling-replacement scenarios drive loss and rejoin through one
// address. FaultConn, the per-connection wrapper the proxy is built on,
// is exported for tests that want to wrap a single net.Conn directly.
package faultnet

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Direction selects one leg of a proxied stream. A FaultConn wraps the
// upstream (target-side) connection, so its Write carries Up traffic and
// its Read carries Down traffic.
type Direction int

const (
	// Up is dialer→target: what the worker sends the coordinator.
	Up Direction = iota
	// Down is target→dialer: what the coordinator sends the worker.
	Down
)

// FaultConn wraps a net.Conn with switchable failure behavior. The zero
// modes pass traffic through unchanged. Safe for concurrent use; mode
// switches apply to in-flight operations at their next byte boundary.
type FaultConn struct {
	net.Conn

	blackholeUp   atomic.Bool
	blackholeDown atomic.Bool
	delayUpNs     atomic.Int64
	delayDownNs   atomic.Int64
	jitterUpNs    atomic.Int64
	jitterDownNs  atomic.Int64

	// severAfter, when positive, counts down relayed Write bytes; the
	// connection is severed once it reaches zero.
	severAfter atomic.Int64
	severArmed atomic.Bool

	closeOnce sync.Once
}

// NewFaultConn wraps c.
func NewFaultConn(c net.Conn) *FaultConn { return &FaultConn{Conn: c} }

// Blackhole switches two-way byte-discard mode: writes report success but
// deliver nothing, reads consume and discard inbound bytes without
// returning them, and the connection stays open — exactly the silence a
// heartbeat timeout exists to catch.
func (f *FaultConn) Blackhole(on bool) {
	f.blackholeUp.Store(on)
	f.blackholeDown.Store(on)
}

// BlackholeDir discards one direction only while the other keeps
// flowing: BlackholeDir(Down, true) silences the coordinator from the
// worker's point of view (no data, no pings) while the worker's own
// frames still arrive — the asymmetric partition that only a worker-side
// silence timeout can detect.
func (f *FaultConn) BlackholeDir(dir Direction, on bool) {
	if dir == Up {
		f.blackholeUp.Store(on)
	} else {
		f.blackholeDown.Store(on)
	}
}

// SetDelay holds every Down (read) delivery for d. Zero disables. Kept
// for the original two-party tests; SetDelayDir is the per-direction
// form.
func (f *FaultConn) SetDelay(d time.Duration) { f.delayDownNs.Store(int64(d)) }

// SetDelayDir holds every delivery in dir for base plus a uniform random
// jitter in [0, jitter). Zero base and jitter disable.
func (f *FaultConn) SetDelayDir(dir Direction, base, jitter time.Duration) {
	if dir == Up {
		f.delayUpNs.Store(int64(base))
		f.jitterUpNs.Store(int64(jitter))
	} else {
		f.delayDownNs.Store(int64(base))
		f.jitterDownNs.Store(int64(jitter))
	}
}

// holdFor sleeps out the configured delay+jitter for one delivery.
func holdFor(baseNs, jitterNs *atomic.Int64) {
	d := baseNs.Load()
	if j := jitterNs.Load(); j > 0 {
		d += rand.Int63n(j)
	}
	if d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// Sever closes the underlying connection; both endpoints observe a dead
// stream. Idempotent.
func (f *FaultConn) Sever() {
	f.closeOnce.Do(func() { f.Conn.Close() }) //nolint:errcheck // severing
}

// SeverAfter arms a byte fuse: the connection is severed as soon as n
// more bytes have been written through it. n <= 0 severs immediately.
func (f *FaultConn) SeverAfter(n int64) {
	f.severAfter.Store(n)
	f.severArmed.Store(true)
	if n <= 0 {
		f.Sever()
	}
}

// Read implements net.Conn. Blackholed reads consume the peer's bytes and
// keep blocking, so the stream looks alive to TCP but silent to the
// application.
func (f *FaultConn) Read(p []byte) (int, error) {
	for {
		n, err := f.Conn.Read(p)
		if err != nil {
			return n, err
		}
		holdFor(&f.delayDownNs, &f.jitterDownNs)
		if !f.blackholeDown.Load() {
			return n, nil
		}
		// Discard and wait for more — or for the peer to give up.
	}
}

// Write implements net.Conn.
func (f *FaultConn) Write(p []byte) (int, error) {
	if f.blackholeUp.Load() {
		return len(p), nil // swallowed
	}
	holdFor(&f.delayUpNs, &f.jitterUpNs)
	if f.severArmed.Load() {
		left := f.severAfter.Load()
		if int64(len(p)) >= left {
			// Deliver the fuse's worth, then cut.
			n, _ := f.Conn.Write(p[:left])
			f.Sever()
			return n, io.ErrClosedPipe
		}
		f.severAfter.Add(int64(-len(p)))
	}
	return f.Conn.Write(p)
}

// Close implements net.Conn.
func (f *FaultConn) Close() error {
	f.closeOnce.Do(func() { f.Conn.Close() }) //nolint:errcheck // closing
	return nil
}

// Proxy is a TCP relay whose links can be broken on command. All controls
// apply to every current and future link.
type Proxy struct {
	target string
	ln     net.Listener

	mu      sync.Mutex
	links   []*FaultConn // upstream legs of the live links
	inbound []net.Conn   // matching downstream (accepted) conns
	closed  bool

	blackholeUp, blackholeDown bool
	delayUp, delayDown         time.Duration
	jitterUp, jitterDown       time.Duration
	severAfter                 int64 // pending byte fuse for the next link; -1 = none
}

// NewProxy starts a proxy listening on a loopback ephemeral port,
// relaying every accepted connection to target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, severAfter: -1}
	go p.accept()
	return p, nil
}

// Addr returns the address peers dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) accept() {
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			in.Close() //nolint:errcheck // nothing to relay to
			continue
		}
		f := NewFaultConn(up)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			in.Close() //nolint:errcheck // shutting down
			f.Sever()
			continue
		}
		f.BlackholeDir(Up, p.blackholeUp)
		f.BlackholeDir(Down, p.blackholeDown)
		f.SetDelayDir(Up, p.delayUp, p.jitterUp)
		f.SetDelayDir(Down, p.delayDown, p.jitterDown)
		if p.severAfter >= 0 {
			f.SeverAfter(p.severAfter)
		}
		p.links = append(p.links, f)
		p.inbound = append(p.inbound, in)
		p.mu.Unlock()

		// Two pumps per link; when either leg dies, drag the other down so
		// neither endpoint hangs on a half-open relay (unless blackholed —
		// then FaultConn swallows traffic while both legs stay up).
		go func() {
			io.Copy(f, in) //nolint:errcheck // relay until error
			f.Sever()
			in.Close() //nolint:errcheck // teardown
		}()
		go func() {
			io.Copy(in, f) //nolint:errcheck // relay until error
			f.Sever()
			in.Close() //nolint:errcheck // teardown
		}()
	}
}

// Sever cuts every live link: both endpoints observe a dead stream, like
// a SIGKILLed process. New connections still relay (a replacement worker
// can dial through the same proxy).
func (p *Proxy) Sever() {
	p.mu.Lock()
	links := append([]*FaultConn(nil), p.links...)
	inbound := append([]net.Conn(nil), p.inbound...)
	p.links, p.inbound = nil, nil
	p.mu.Unlock()
	for _, f := range links {
		f.Sever()
	}
	for _, in := range inbound {
		in.Close() //nolint:errcheck // severing
	}
}

// Blackhole silently discards traffic in both directions on every current
// and future link while keeping the connections open.
func (p *Proxy) Blackhole(on bool) {
	p.mu.Lock()
	p.blackholeUp, p.blackholeDown = on, on
	links := append([]*FaultConn(nil), p.links...)
	p.mu.Unlock()
	for _, f := range links {
		f.Blackhole(on)
	}
}

// BlackholeDir discards one direction only on every current and future
// link: Down drops what the target (coordinator) sends while the
// dialer's (worker's) own bytes still get through — the asymmetric
// partition the worker-side silence timeout detects.
func (p *Proxy) BlackholeDir(dir Direction, on bool) {
	p.mu.Lock()
	if dir == Up {
		p.blackholeUp = on
	} else {
		p.blackholeDown = on
	}
	links := append([]*FaultConn(nil), p.links...)
	p.mu.Unlock()
	for _, f := range links {
		f.BlackholeDir(dir, on)
	}
}

// SetDelay holds every Down delivery for d on current and future links.
func (p *Proxy) SetDelay(d time.Duration) { p.SetDelayDir(Down, d, 0) }

// SetDelayDir holds every delivery in dir for base plus uniform jitter in
// [0, jitter), on current and future links.
func (p *Proxy) SetDelayDir(dir Direction, base, jitter time.Duration) {
	p.mu.Lock()
	if dir == Up {
		p.delayUp, p.jitterUp = base, jitter
	} else {
		p.delayDown, p.jitterDown = base, jitter
	}
	links := append([]*FaultConn(nil), p.links...)
	p.mu.Unlock()
	for _, f := range links {
		f.SetDelayDir(dir, base, jitter)
	}
}

// SeverAfter arms a byte fuse on the next accepted link (and every link
// after it): the upstream leg is cut once n bytes have been relayed
// toward the target — a handshake or frame torn mid-message. Negative
// disarms.
func (p *Proxy) SeverAfter(n int64) {
	p.mu.Lock()
	p.severAfter = n
	p.mu.Unlock()
}

// Close stops accepting and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close() //nolint:errcheck // teardown
	p.Sever()
}
