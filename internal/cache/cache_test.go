package cache

// Unit tests for the sharded transposition cache: hit/miss round trips,
// the first-write-wins duplicate policy, FIFO eviction under the byte
// budget, scope separation, and a concurrent smoke test for the race
// detector.

import (
	"sync"
	"testing"

	"repro/internal/game"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New(0)
	k := Key{Scope: 1, Hash: 2, Level: 3}
	seq := []game.Move{10, 20, 30}

	if _, ok := c.Get(k, new([]game.Move)); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put(k, 42.5, seq)

	var out []game.Move
	gain, ok := c.Get(k, &out)
	if !ok || gain != 42.5 {
		t.Fatalf("Get = (%v, %v), want (42.5, true)", gain, ok)
	}
	if len(out) != 3 || out[0] != 10 || out[1] != 20 || out[2] != 30 {
		t.Fatalf("Get appended %v, want [10 20 30]", out)
	}

	// The cached sequence must be a copy: mutating the caller's slice
	// after Put must not reach future hits.
	seq[0] = 99
	out = out[:0]
	if _, ok := c.Get(k, &out); !ok || out[0] != 10 {
		t.Fatalf("cached sequence aliased the caller's: %v", out)
	}

	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v, want 2 hits / 1 miss / 1 entry", s)
	}
}

func TestGetAppends(t *testing.T) {
	c := New(0)
	k := Key{Hash: 7}
	c.Put(k, 1, []game.Move{5, 6})

	out := []game.Move{1, 2}
	if _, ok := c.Get(k, &out); !ok {
		t.Fatal("miss on present key")
	}
	if len(out) != 4 || out[0] != 1 || out[1] != 2 || out[2] != 5 || out[3] != 6 {
		t.Fatalf("Get must append, got %v", out)
	}
}

func TestPutDuplicateKeepsFirst(t *testing.T) {
	c := New(0)
	k := Key{Hash: 9}
	c.Put(k, 1, []game.Move{1})
	c.Put(k, 2, []game.Move{2}) // derived-mode purity makes this identical in practice

	var out []game.Move
	gain, ok := c.Get(k, &out)
	if !ok || gain != 1 || len(out) != 1 || out[0] != 1 {
		t.Fatalf("duplicate Put replaced the entry: gain %v seq %v", gain, out)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("%d entries after duplicate Put, want 1", s.Entries)
	}
}

func TestEvictionStaysInBudget(t *testing.T) {
	// The smallest cache New allows: 4096 bytes per shard.
	c := New(1)
	seq := make([]game.Move, 100) // cost 64 + 800 = 864 bytes, ~4 per shard
	for i := 0; i < 5000; i++ {
		c.Put(Key{Hash: uint64(i)}, float64(i), seq)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the budget")
	}
	if s.Bytes > numShards*4096 {
		t.Fatalf("%d resident bytes exceed the %d budget", s.Bytes, numShards*4096)
	}
	if s.Entries == 0 {
		t.Fatal("eviction emptied the cache entirely")
	}
}

func TestOversizedEntryDropped(t *testing.T) {
	c := New(1) // 4096 bytes per shard
	k := Key{Hash: 1}
	c.Put(k, 1, make([]game.Move, 1000)) // cost 8064 > 4096
	if _, ok := c.Get(k, new([]game.Move)); ok {
		t.Fatal("oversized entry was cached")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized entry left residue: %+v", s)
	}
}

func TestScopeSeparation(t *testing.T) {
	a := Scope("", false, 0)
	b := Scope("heuristic", false, 0)
	d := Scope("heuristic", true, 0)
	e := Scope("heuristic", false, 100)
	if a == b || b == d || b == e || a == d {
		t.Fatalf("scopes collide: %x %x %x %x", a, b, d, e)
	}
	if a != Scope("", false, 0) {
		t.Fatal("Scope is not deterministic")
	}

	c := New(0)
	c.Put(Key{Scope: a, Hash: 1}, 1, nil)
	if _, ok := c.Get(Key{Scope: b, Hash: 1}, new([]game.Move)); ok {
		t.Fatal("entry visible across scopes")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []game.Move
			for i := 0; i < 2000; i++ {
				k := Key{Scope: uint64(g % 2), Hash: uint64(i % 512), Level: uint32(i % 3)}
				if gain, ok := c.Get(k, &out); ok {
					if gain != float64(k.Hash) {
						t.Errorf("corrupted gain %v for hash %d", gain, k.Hash)
						return
					}
				} else {
					c.Put(k, float64(k.Hash), []game.Move{game.Move(k.Hash)})
				}
				out = out[:0]
			}
		}()
	}
	wg.Wait()
	if s := c.Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("concurrent smoke saw no traffic: %+v", s)
	}
}
