// Package cache implements the sharded transposition/result cache for
// nested sub-search results, shared by every slot, job and worker goroutine
// of a process (one cache per pool, one per per-run Execute).
//
// A cache entry records the outcome of one derived-mode sub-search (see
// core.Searcher): the score GAIN over the keyed position and the move
// suffix that realizes it. Gains — never absolute scores — are cached
// because position hashes deliberately exclude path-dependent observables
// like the accumulated SameGame score (see the game.Hasher contract), so
// two transpositions of equal content can differ in absolute score but
// never in achievable gain.
//
// Concurrency is lock-light: the key space is split over a power-of-two
// number of shards, each guarded by its own mutex and holding its own
// counters, so searcher goroutines contend only when their keys collide on
// a shard (1/64 of the time at uniform load). Memory is bounded per shard;
// eviction is FIFO — the cheapest policy that is O(1) per eviction and
// needs no per-hit bookkeeping on the shared fast path (an LRU would write
// to the shard on every Get).
package cache

import (
	"sync"

	"repro/internal/game"
	"repro/internal/rng"
)

// Key identifies one sub-search result. The domain and its parameters are
// folded into Hash by the domain's game.Hasher implementation (each domain
// salts its hash differently), so the key does not need a domain field.
type Key struct {
	// Scope fingerprints everything outside the position that changes the
	// result of a derived-mode sub-search: evaluator, memorization mode,
	// budget. Build it with Scope.
	Scope uint64
	// Hash is the game.Hasher position hash.
	Hash uint64
	// Level is the nesting level of the cached sub-search.
	Level uint32
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int64
	Bytes     int64
}

// numShards is the shard count (power of two). 64 shards keep expected
// mutex contention below 2% with the dozens of searcher goroutines a
// process hosts.
const numShards = 64

// entryOverhead approximates the fixed per-entry footprint charged against
// the byte budget: map bucket share, key, gain, slice header, FIFO slot.
const entryOverhead = 64

// DefaultMaxBytes is the byte budget used when New is given a
// non-positive one.
const DefaultMaxBytes = 64 << 20

type entry struct {
	gain float64
	seq  []game.Move
}

func (e entry) cost() int64 { return entryOverhead + 8*int64(len(e.seq)) }

type shard struct {
	mu    sync.Mutex
	m     map[Key]entry
	fifo  []Key // insertion order; evict from head
	head  int   // first live fifo index
	bytes int64

	hits, misses, evictions int64

	// Pad each shard past a cache line so neighbouring shard mutexes do
	// not false-share.
	_ [40]byte
}

// Cache is a sharded, bounded transposition cache. The zero value is not
// usable; call New. All methods are safe for concurrent use.
type Cache struct {
	shards   [numShards]shard
	maxShard int64 // per-shard byte budget
}

// New returns a cache bounded to roughly maxBytes of entry footprint
// (DefaultMaxBytes when maxBytes <= 0).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c := &Cache{maxShard: maxBytes / numShards}
	if c.maxShard < 4096 {
		c.maxShard = 4096
	}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]entry)
	}
	return c
}

func (c *Cache) shardOf(k Key) *shard {
	return &c.shards[rng.Mix(k.Hash, k.Scope^uint64(k.Level))&(numShards-1)]
}

// Get looks k up; on a hit it appends the cached move suffix to *out and
// returns the cached gain.
func (c *Cache) Get(k Key, out *[]game.Move) (gain float64, ok bool) {
	sh := c.shardOf(k)
	sh.mu.Lock()
	e, ok := sh.m[k]
	if ok {
		sh.hits++
		gain = e.gain
		*out = append(*out, e.seq...)
	} else {
		sh.misses++
	}
	sh.mu.Unlock()
	return gain, ok
}

// Put inserts the result of a completed sub-search, copying seq. A key
// already present is left untouched: derived-mode results are pure
// functions of their key, so the stored value is identical by
// construction (the verify mode pins this). Entries larger than a shard's
// whole budget are dropped.
func (c *Cache) Put(k Key, gain float64, seq []game.Move) {
	e := entry{gain: gain, seq: append([]game.Move(nil), seq...)}
	cost := e.cost()
	if cost > c.maxShard {
		return
	}
	sh := c.shardOf(k)
	sh.mu.Lock()
	if _, dup := sh.m[k]; dup {
		sh.mu.Unlock()
		return
	}
	for sh.bytes+cost > c.maxShard && sh.head < len(sh.fifo) {
		victim := sh.fifo[sh.head]
		sh.head++
		ve := sh.m[victim]
		delete(sh.m, victim)
		sh.bytes -= ve.cost()
		sh.evictions++
	}
	if sh.head > 0 && sh.head*2 >= len(sh.fifo) {
		n := copy(sh.fifo, sh.fifo[sh.head:])
		sh.fifo = sh.fifo[:n]
		sh.head = 0
	}
	sh.m[k] = e
	sh.fifo = append(sh.fifo, k)
	sh.bytes += cost
	sh.mu.Unlock()
}

// Stats sums the per-shard counters.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.Entries += int64(len(sh.m))
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// scopeSalt separates Scope fingerprints from every other Fold user.
const scopeSalt = 0x43616368655363 // "CacheSc"

// Scope fingerprints the non-position inputs of a derived-mode sub-search:
// the evaluator name (empty = uniform playouts), the memorization mode and
// the work budget under which results were computed. Results cached under
// one scope are never visible under another.
func Scope(evaluator string, memorize bool, budget uint64) uint64 {
	mem := uint64(0)
	if memorize {
		mem = 1
	}
	h := rng.Fold(scopeSalt, mem, budget, uint64(len(evaluator)))
	for i := 0; i < len(evaluator); i++ {
		h = rng.Mix(h, uint64(evaluator[i]))
	}
	return h
}
