package parallel

// The worker-process side of a distributed pool: cmd/pnmcs-worker dials
// the coordinator and hands the connection to ServeWorker, which rebuilds
// the pool topology from the handshake blob and runs the median and
// client bodies for the rank range the coordinator assigned. The bodies
// are the very same functions the in-process pool runs as goroutines
// (runPoolMedian, runPoolClient); only the transport underneath differs.

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/mpi"
	"repro/internal/vtime"
)

// WorkerStats summarizes one worker process's service, for logging.
type WorkerStats struct {
	// Medians / Clients are the counts of hosted ranks by role.
	Medians, Clients int
	// Idle is the cumulative Recv-blocked time across hosted ranks.
	Idle time.Duration
	// Net is the worker-side transport counter snapshot.
	Net mpi.NetStats
	// Lost is true when service ended because the coordinator link died
	// (read error or silence timeout) rather than by an orderly shutdown
	// broadcast — the signal cmd/pnmcs-worker's redial loop keys on.
	Lost bool
}

// ServeWorker runs the pool ranks assigned to a dialed worker connection
// until the coordinator broadcasts shutdown, and returns the worker's
// service statistics. It fails fast when the handshake blob does not
// decode or the assigned range contains coordinator-only ranks (slots,
// scheduler, dispatcher always live with the coordinator).
func ServeWorker(w *mpi.NetWorker) (WorkerStats, error) {
	var stats WorkerStats
	// Validation failures close the dialed connection: the handshake
	// already claimed a coordinator worker slot, and a long-lived
	// embedder that merely drops the NetWorker would occupy it forever
	// (the coordinator frees the slot when the connection dies).
	cfg, err := decodeWorkerBlob(w.Blob())
	if err != nil {
		w.Close() //nolint:errcheck // already failing
		return stats, err
	}
	world := newPoolWorld(cfg.withDefaults())
	lo, hi := w.RankRange()
	if lo < world.firstWorker() {
		w.Close() //nolint:errcheck // already failing
		return stats, fmt.Errorf("parallel: assigned range [%d, %d) includes coordinator rank %d",
			lo, hi, lo)
	}
	if int(hi) > world.size() {
		w.Close() //nolint:errcheck // already failing
		return stats, fmt.Errorf("parallel: assigned range [%d, %d) beyond world of %d ranks",
			lo, hi, world.size())
	}

	for r := lo; r < hi; r++ {
		if int(r-world.firstWorker()) < cfg.Medians {
			stats.Medians++
		} else {
			stats.Clients++
		}
	}
	// Idle is metered per hosted rank so the coordinator's /metrics can
	// expose the same per-rank series a co-resident pool has: the sampler
	// snapshot rides every pong and the goodbye frame (mpi.SetTelemetry).
	perRank := make([]atomic.Int64, hi-lo)
	medianIdle := func(i int, d time.Duration) { perRank[world.medians[i]-lo].Add(int64(d)) }
	clientIdle := func(i int, d time.Duration) { perRank[world.clients[i]-lo].Add(int64(d)) }
	w.SetTelemetry(func() []float64 {
		out := make([]float64, len(perRank))
		for i := range perRank {
			out[i] = time.Duration(perRank[i].Load()).Seconds()
		}
		return out
	})
	// The worker's evaluation batcher: hosted client ranks coalesce their
	// rollout positions per process, with the batch shape (EvalBatch,
	// EvalFlush) carried by the handshake blob so every process batches
	// the way the coordinator was configured — except the size, which is
	// capped at the client ranks THIS process hosts (one outstanding
	// position per client means a larger batch could never fill, leaving
	// every evaluation to stall on the flush deadline). Its counters stay
	// in this process, like the per-rank idle counters.
	batch := newEvalBatcher(min(world.cfg.EvalBatch, max(stats.Clients, 1)),
		world.cfg.EvalFlush, vtime.Wall())
	// The worker's transposition cache, sized by the handshake blob like
	// the batcher: hosted client ranks share it across every job the
	// coordinator routes here. Each process caches independently — results
	// are pure functions of position content, so worker caches need no
	// coherence protocol, they just overlap.
	tc := cache.New(int64(world.cfg.CacheMB) << 20)
	startPoolWorkers(w, world, batch, tc, world.cfg.CacheVerify, medianIdle, clientIdle)

	w.Run()
	var total int64
	for i := range perRank {
		total += perRank[i].Load()
	}
	stats.Idle = time.Duration(total)
	stats.Net = w.Stats()
	stats.Lost = w.Lost()
	return stats, nil
}
