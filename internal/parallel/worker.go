package parallel

// The worker-process side of a distributed pool: cmd/pnmcs-worker dials
// the coordinator and hands the connection to ServeWorker, which rebuilds
// the pool topology from the handshake blob and runs the median and
// client bodies for the rank range the coordinator assigned. The bodies
// are the very same functions the in-process pool runs as goroutines
// (runPoolMedian, runPoolClient); only the transport underneath differs.

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
)

// WorkerStats summarizes one worker process's service, for logging.
type WorkerStats struct {
	// Medians / Clients are the counts of hosted ranks by role.
	Medians, Clients int
	// Idle is the cumulative Recv-blocked time across hosted ranks.
	Idle time.Duration
	// Net is the worker-side transport counter snapshot.
	Net mpi.NetStats
}

// ServeWorker runs the pool ranks assigned to a dialed worker connection
// until the coordinator broadcasts shutdown, and returns the worker's
// service statistics. It fails fast when the handshake blob does not
// decode or the assigned range contains coordinator-only ranks (slots,
// scheduler, dispatcher always live with the coordinator).
func ServeWorker(w *mpi.NetWorker) (WorkerStats, error) {
	var stats WorkerStats
	// Validation failures close the dialed connection: the handshake
	// already claimed a coordinator worker slot, and a long-lived
	// embedder that merely drops the NetWorker would occupy it forever
	// (the coordinator frees the slot when the connection dies).
	cfg, err := decodeWorkerBlob(w.Blob())
	if err != nil {
		w.Close() //nolint:errcheck // already failing
		return stats, err
	}
	world := newPoolWorld(cfg.withDefaults())
	lo, hi := w.RankRange()
	if lo < world.firstWorker() {
		w.Close() //nolint:errcheck // already failing
		return stats, fmt.Errorf("parallel: assigned range [%d, %d) includes coordinator rank %d",
			lo, hi, lo)
	}
	if int(hi) > world.size() {
		w.Close() //nolint:errcheck // already failing
		return stats, fmt.Errorf("parallel: assigned range [%d, %d) beyond world of %d ranks",
			lo, hi, world.size())
	}

	for r := lo; r < hi; r++ {
		if int(r-world.firstWorker()) < cfg.Medians {
			stats.Medians++
		} else {
			stats.Clients++
		}
	}
	var idleNs atomic.Int64
	idle := func(_ int, d time.Duration) { idleNs.Add(int64(d)) }
	startPoolWorkers(w, world, idle, idle)

	w.Run()
	stats.Idle = time.Duration(idleNs.Load())
	stats.Net = w.Stats()
	return stats, nil
}
