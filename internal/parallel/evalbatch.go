package parallel

// Per-worker evaluation batching. Client ranks hosted by one process share
// one evalBatcher: a rollout that needs its position scored submits it and
// blocks, the batcher collects submissions from all concurrently running
// rollouts, and one flush evaluates the whole batch — through
// game.BatchEvaluator when the evaluator implements it. This is the shape
// a vectorized policy (an NN inference server) wants: the fixed per-call
// cost is paid once per batch instead of once per position.
//
// A batch flushes on two triggers, whichever fires first:
//
//   - size: the submission that fills the batch to the configured size
//     flushes it synchronously in its own goroutine — no handoff latency
//     on the full-batch fast path.
//   - deadline: the first submission of a batch arms a timer; when it
//     fires, whatever has accumulated is flushed from the timer goroutine.
//     The deadline bounds the wait of a straggler batch (fewer in-flight
//     rollouts than the batch size — or exactly one, where waiting would
//     otherwise deadlock the only submitter).
//
// Correctness does not depend on grouping: evaluators are pure
// (game.Evaluator contract), so a request's weights are the same in any
// batch, any order — batching changes latency and amortization, never
// results. The submitter blocks for the whole evaluation, so the State and
// Moves aliased by its request are not mutated while the batch runs.
//
// The batcher meters time with a vtime.Clock — the same clock source the
// deadline helpers use (see deadlineDue) — so a harness that charges
// virtual time sees batch waits on the same axis as everything else. The
// flush timer itself is a real timer: pools only ever run on wall-clock
// transports (the virtual-time per-run path constructs evaluators
// directly, without batching).

import (
	"sync"
	"time"

	"repro/internal/game"
	"repro/internal/vtime"
)

// evalBatchStats are the batcher's lifetime counters, surfaced through
// PoolMetrics. A remote worker's batcher keeps its stats in its own
// process, like the per-rank idle counters.
type evalBatchStats struct {
	Batches       int64         // flushes executed
	Requests      int64         // positions evaluated
	FlushSize     int64         // flushes triggered by a full batch
	FlushDeadline int64         // flushes triggered by the deadline timer
	BatchMax      int           // largest batch flushed
	FlushWait     time.Duration // cumulative oldest-request wait at flush
}

// evalPending is one submitted position waiting for its batch to flush.
type evalPending struct {
	name string
	req  game.EvalRequest
	out  []float64
	at   time.Duration // clock reading at submission
	done chan struct{}
}

// evalBatcher collects evaluation requests from concurrent rollouts and
// flushes them in batches. Safe for concurrent use.
type evalBatcher struct {
	size  int
	flush time.Duration
	clock vtime.Clock

	mu       sync.Mutex
	pending  []*evalPending
	gen      uint64      // batch generation: stale deadline timers no-op
	timer    *time.Timer // current generation's deadline timer, nil when none armed
	resolved map[string]game.Evaluator
	adapters map[string]game.Evaluator
	stats    evalBatchStats
}

// newEvalBatcher returns a batcher flushing at size requests or after
// flush of waiting, whichever comes first. Callers pass the defaulted
// PoolConfig knobs (EvalBatch, EvalFlush); the floors here are a backstop
// so a zero-valued batcher cannot deadlock its only submitter.
func newEvalBatcher(size int, flush time.Duration, clock vtime.Clock) *evalBatcher {
	if size < 1 {
		size = 1
	}
	if flush <= 0 {
		flush = defaultEvalFlush
	}
	return &evalBatcher{
		size:     size,
		flush:    flush,
		clock:    clock,
		resolved: map[string]game.Evaluator{},
		adapters: map[string]game.Evaluator{},
	}
}

// evaluatorFor returns the batched facade for a registered evaluator name:
// a game.Evaluator whose Evaluate submits to the batcher and blocks until
// the batch containing the request has flushed. The facade is cached, so a
// client looking it up per job allocates nothing after the first job.
func (b *evalBatcher) evaluatorFor(name string) game.Evaluator {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.adapters[name]; ok {
		return e
	}
	e := &batchedEvaluator{b: b, name: name}
	b.adapters[name] = e
	return e
}

// batchedEvaluator adapts submit to the game.Evaluator interface.
type batchedEvaluator struct {
	b    *evalBatcher
	name string
}

func (e *batchedEvaluator) Evaluate(req game.EvalRequest, w []float64) []float64 {
	return e.b.submit(e.name, req, w)
}

// submit enqueues one request and blocks until its batch has been
// evaluated, returning the extended weight slice. The submission that
// fills the batch runs the flush itself.
func (b *evalBatcher) submit(name string, req game.EvalRequest, out []float64) []float64 {
	p := &evalPending{name: name, req: req, out: out, done: make(chan struct{})}
	b.mu.Lock()
	p.at = b.clock.Now()
	b.pending = append(b.pending, p)
	if len(b.pending) >= b.size {
		batch := b.takeLocked(&b.stats.FlushSize)
		b.mu.Unlock()
		b.run(batch)
		return p.out
	}
	if len(b.pending) == 1 {
		gen := b.gen
		// takeLocked stops this timer when the batch flushes on size
		// before the deadline; without the Stop, every size-flush leaked a
		// live timer whose late firing burned a goroutine wakeup and a
		// mutex acquisition just to discover its generation was stale.
		b.timer = time.AfterFunc(b.flush, func() { b.deadlineFlush(gen) })
	}
	b.mu.Unlock()
	<-p.done
	return p.out
}

// deadlineFlush is the timer body: flush whatever the generation it was
// armed for has accumulated. A generation that was already flushed on size
// (or a later generation's pending list) is not touched.
func (b *evalBatcher) deadlineFlush(gen uint64) {
	b.mu.Lock()
	if b.gen != gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.takeLocked(&b.stats.FlushDeadline)
	b.mu.Unlock()
	b.run(batch)
}

// takeLocked detaches the pending batch, advances the generation, disarms
// the generation's deadline timer and records the flush statistics. Caller
// holds b.mu. (The deadline path also lands here: Stop on the very timer
// that fired is a harmless no-op.)
func (b *evalBatcher) takeLocked(trigger *int64) []*evalPending {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	*trigger++
	b.stats.Batches++
	b.stats.Requests += int64(len(batch))
	if len(batch) > b.stats.BatchMax {
		b.stats.BatchMax = len(batch)
	}
	b.stats.FlushWait += b.clock.Now() - batch[0].at
	return batch
}

// run evaluates a detached batch and releases its submitters. Requests are
// grouped by evaluator name (contiguous runs — in practice a pool runs one
// evaluator at a time); each group goes through EvaluateBatch when the
// evaluator implements game.BatchEvaluator, else through per-request
// Evaluate. An unregistered name leaves its outputs empty, which the
// searcher's degenerate-weights guard turns into a uniform playout.
func (b *evalBatcher) run(batch []*evalPending) {
	for lo := 0; lo < len(batch); {
		hi := lo + 1
		for hi < len(batch) && batch[hi].name == batch[lo].name {
			hi++
		}
		b.runGroup(batch[lo:hi])
		lo = hi
	}
	for _, p := range batch {
		close(p.done)
	}
}

func (b *evalBatcher) runGroup(group []*evalPending) {
	ev := b.resolve(group[0].name)
	if ev == nil {
		return
	}
	if be, ok := ev.(game.BatchEvaluator); ok {
		reqs := make([]game.EvalRequest, len(group))
		outs := make([][]float64, len(group))
		for i, p := range group {
			reqs[i], outs[i] = p.req, p.out
		}
		be.EvaluateBatch(reqs, outs)
		for i, p := range group {
			p.out = outs[i]
		}
		return
	}
	for _, p := range group {
		p.out = ev.Evaluate(p.req, p.out)
	}
}

// resolve looks the name up in the game registry, caching the instance
// (evaluators are pure, so one instance serves every batch). nil for an
// unknown name: job validation upstream rejects unregistered names, so
// this only happens on version-skewed processes, where a uniform fallback
// beats wedging the rollout.
func (b *evalBatcher) resolve(name string) game.Evaluator {
	b.mu.Lock()
	ev, ok := b.resolved[name]
	b.mu.Unlock()
	if ok {
		return ev
	}
	ev, err := game.NewEvaluator(name)
	if err != nil {
		ev = nil
	}
	b.mu.Lock()
	b.resolved[name] = ev
	b.mu.Unlock()
	return ev
}

// snapshot returns the lifetime counters.
func (b *evalBatcher) snapshot() evalBatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
