package parallel

import (
	"sync"
	"testing"
	"time"

	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// TestPoolMatchesRunWall pins the pool's central property: a job run on
// the shared pool returns bit-identical score and sequence to the same
// Config run solo through RunWall, for every domain.
func TestPoolMatchesRunWall(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 2, Medians: 3, Clients: 4, Algo: LastMinute})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	cfgs := map[string]Config{
		"armtree":  {Algo: LastMinute, Level: 2, Root: game.NewArmTree(3, 2, 5), Seed: 2, Memorize: true},
		"sudoku4":  {Algo: RoundRobin, Level: 2, Root: sudoku.New(2), Seed: 7, Memorize: true},
		"samegame": {Algo: LastMinute, Level: 2, Root: samegame.NewRandom(5, 5, 3, 3), Seed: 5, Memorize: true},
		"morpion":  {Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D), Seed: 1, Memorize: true, FirstMoveOnly: true},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			solo, err := RunWall(4, 3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := pool.RunJob(0, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if pooled.Score != solo.Score {
				t.Fatalf("pool score %v != solo score %v", pooled.Score, solo.Score)
			}
			if len(pooled.Sequence) != len(solo.Sequence) {
				t.Fatalf("sequence lengths differ: %d vs %d", len(pooled.Sequence), len(solo.Sequence))
			}
			for i := range pooled.Sequence {
				if pooled.Sequence[i] != solo.Sequence[i] {
					t.Fatalf("sequences differ at move %d", i)
				}
			}
			if pooled.Jobs == 0 {
				t.Fatal("no client rollouts accounted to the job")
			}
		})
	}
}

// TestPoolConcurrentJobs runs jobs on every slot at once; each must match
// its solo RunWall twin despite sharing medians and clients.
func TestPoolConcurrentJobs(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 3, Medians: 2, Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	cfgs := []Config{
		{Level: 2, Root: game.NewArmTree(3, 2, 5), Seed: 2, Memorize: true},
		{Level: 2, Root: sudoku.New(2), Seed: 7, Memorize: true},
		{Level: 2, Root: samegame.NewRandom(5, 5, 3, 3), Seed: 5, Memorize: true},
	}
	results := make([]Result, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(slot int, cfg Config) {
			defer wg.Done()
			res, err := pool.RunJob(slot, cfg, nil)
			if err != nil {
				t.Errorf("slot %d: %v", slot, err)
				return
			}
			results[slot] = res
		}(i, cfg)
	}
	wg.Wait()
	for i, cfg := range cfgs {
		solo, err := RunWall(4, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Score != solo.Score {
			t.Fatalf("slot %d: concurrent score %v != solo %v", i, results[i].Score, solo.Score)
		}
	}
}

// TestPoolCancelAndReuse cancels a long job mid-flight and then reuses the
// same slot for a fresh job, which must be unaffected.
func TestPoolCancelAndReuse(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 1, Medians: 2, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	long := Config{Level: 2, Root: morpion.New(morpion.Var5D), Seed: 3, Memorize: true}
	done := make(chan Result, 1)
	started := make(chan struct{})
	var once sync.Once
	go func() {
		res, err := pool.RunJob(0, long, func(Progress) { once.Do(func() { close(started) }) })
		if err != nil {
			t.Errorf("cancelled job errored: %v", err)
		}
		done <- res
	}()
	<-started // at least one root step completed: the job is mid-flight
	pool.CancelJob(0)
	res := <-done
	if !res.Stopped {
		t.Fatal("cancelled job did not report Stopped")
	}

	short := Config{Level: 2, Root: game.NewArmTree(3, 2, 9), Seed: 4, Memorize: true}
	solo, err := RunWall(2, 2, short)
	if err != nil {
		t.Fatal(err)
	}
	again, err := pool.RunJob(0, short, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stopped || again.Score != solo.Score {
		t.Fatalf("job after cancel: stopped=%v score %v, want score %v", again.Stopped, again.Score, solo.Score)
	}
}

// TestPoolDeadline stops a job via Config.StopAfter even when no explicit
// cancellation arrives.
func TestPoolDeadline(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 1, Medians: 2, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	cfg := Config{Level: 2, Root: morpion.New(morpion.Var5D), Seed: 3, Memorize: true,
		StopAfter: 30 * time.Millisecond}
	res, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("deadline did not stop the job")
	}
}

// TestPoolShutdownDrainsRunningJobs verifies Shutdown cancels in-flight
// jobs, waits for them, and refuses new work afterwards.
func TestPoolShutdownDrainsRunningJobs(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 1, Medians: 2, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	long := Config{Level: 2, Root: morpion.New(morpion.Var5D), Seed: 3, Memorize: true}
	done := make(chan Result, 1)
	started := make(chan struct{})
	var once sync.Once
	go func() {
		res, _ := pool.RunJob(0, long, func(Progress) { once.Do(func() { close(started) }) })
		done <- res
	}()
	<-started
	pool.Shutdown()
	res := <-done
	if !res.Stopped {
		t.Fatal("job running at shutdown was not drained as stopped")
	}
	if _, err := pool.RunJob(0, long, nil); err != ErrPoolClosed {
		t.Fatalf("RunJob after shutdown: %v, want ErrPoolClosed", err)
	}
}

// TestPoolMetrics sanity-checks the pool-level instrumentation.
func TestPoolMetrics(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 1, Medians: 2, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()
	// A depth-2 ArmTree hands clients terminal positions (zero metered
	// units); the 4x4 sudoku gives rollouts real work to account.
	cfg := Config{Level: 2, Root: sudoku.New(2), Seed: 2, Memorize: true}
	if _, err := pool.RunJob(0, cfg, nil); err != nil {
		t.Fatal(err)
	}
	m := pool.Metrics()
	if m.Jobs == 0 || m.WorkUnits == 0 {
		t.Fatalf("no work accounted: %+v", m)
	}
	if len(m.MedianIdle) != 2 || len(m.ClientIdle) != 2 {
		t.Fatalf("idle vectors sized wrong: %+v", m)
	}
}
