package parallel

// Pool-level tests of the shared transposition cache. Verify mode is on
// throughout — every hit is recomputed and compared, so these tests also
// serve as the cache's consistency check under the race detector (the CI
// race job runs this package with -race).

import (
	"testing"

	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// TestPoolCacheCrossJobSharing pins the tentpole property end to end: two
// jobs with DIFFERENT seeds but the same root share sub-search results
// through the pool cache, and — because cached sub-searches draw from
// position-derived streams — return identical answers. The second job must
// actually hit the first job's entries.
func TestPoolCacheCrossJobSharing(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 2, Medians: 2, Clients: 2, CacheVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	cfg := Config{Level: 3, Root: sudoku.New(2), Seed: 1, Memorize: true, Cache: true}
	first, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := pool.Metrics()
	if m.CacheMisses == 0 {
		t.Fatal("cached job produced no cache traffic")
	}

	cfg.Seed = 99999
	second, err := pool.RunJob(1, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Score != second.Score || len(first.Sequence) != len(second.Sequence) {
		t.Fatalf("seed changed a cached job: %v/%d vs %v/%d",
			first.Score, len(first.Sequence), second.Score, len(second.Sequence))
	}
	for i := range first.Sequence {
		if first.Sequence[i] != second.Sequence[i] {
			t.Fatalf("sequences differ at move %d", i)
		}
	}
	m2 := pool.Metrics()
	if m2.CacheHits <= m.CacheHits {
		t.Fatalf("second job never hit the first job's entries: %d -> %d hits",
			m.CacheHits, m2.CacheHits)
	}
	if m2.CacheEntries == 0 || m2.CacheBytes == 0 {
		t.Fatalf("cache reports no residency: %+v", m2)
	}
}

// TestPoolCachedMatchesRunWall pins that a cached pool job equals the same
// cached Config run solo through RunWall: purity makes the answer
// independent of which cache (run-local vs pool-shared) served it.
func TestPoolCachedMatchesRunWall(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 1, Medians: 2, Clients: 2, CacheVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	cfg := Config{
		Level: 3, Root: samegame.NewRandom(4, 4, 3, 3), Seed: 5,
		Memorize: true, Cache: true, CacheVerify: true,
	}
	solo, err := RunWall(2, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Score != solo.Score || len(pooled.Sequence) != len(solo.Sequence) {
		t.Fatalf("pool %v/%d != solo %v/%d",
			pooled.Score, len(pooled.Sequence), solo.Score, len(solo.Sequence))
	}
	for i := range pooled.Sequence {
		if pooled.Sequence[i] != solo.Sequence[i] {
			t.Fatalf("sequences differ at move %d", i)
		}
	}
}
