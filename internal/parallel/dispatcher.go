package parallel

import (
	"slices"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// runDispatcher runs the configured dispatching policy until shutdown.
//
// Under the pull scheduler the client layer is demand-driven for both
// policies — clients announce availability after every job and requests
// queue until a client is free — with Algo selecting only the job
// ordering: Last-Minute serves the longest-expected pending job first,
// Round-Robin serves in arrival order. Under Config.Static the paper's
// §IV-A blind cyclic dispatcher is reproduced exactly for Round-Robin.
func runDispatcher(c mpi.Comm, lay cluster.Layout, cfg *Config) {
	if !cfg.Static {
		longest := cfg.Algo == LastMinute && !cfg.LMFifo
		runDemandDispatcher(c, lay, cfg, longest)
		return
	}
	switch cfg.Algo {
	case RoundRobin:
		runRoundRobinDispatcher(c, lay, cfg)
	case LastMinute:
		runLastMinuteDispatcher(c, lay, cfg)
	default:
		panic("parallel: unknown algorithm")
	}
}

// runRoundRobinDispatcher is the paper's Round-Robin dispatcher (§IV-A):
//
//	1 client = first client
//	2 while true
//	3   receive median node from any median node
//	4   send client to median node
//	5   if client is last client: client = first client
//	6   else: client = next client
//
// It cycles through clients blindly: a busy client keeps receiving jobs
// (they queue in its mailbox) even while other clients sit idle — the load
// imbalance the Last-Minute algorithm fixes on heterogeneous clusters.
func runRoundRobinDispatcher(c mpi.Comm, lay cluster.Layout, cfg *Config) {
	next := 0
	for {
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagShutdown:
			return
		case tagRequest:
			client := lay.Clients[next]
			next = (next + 1) % len(lay.Clients)
			cfg.trace("b", c.Rank(), msg.From, c.Now())
			c.Send(msg.From, tagAssign, client)
		case tagFree:
			// Round-Robin ignores availability notices (clients only send
			// them under Last-Minute, but tolerate them for robustness).
		}
	}
}

// lmJob is a pending request in the Last-Minute dispatcher's queue.
type lmJob struct {
	sender mpi.Rank // the median that asked
	moves  int      // moves already played in the position to analyze
}

// runLastMinuteDispatcher is the paper's Last-Minute dispatcher (§IV-B):
//
//	1 listFreeClients = all Clients
//	2 jobs = empty list
//	3 while true
//	4   receive node from any node
//	5   if node is a client node
//	6     add node to listFreeClients
//	7     if jobs is not empty
//	8       find j in jobs with the smallest number of moves
//	9       send j.sender to the node's... (assign the freed client to j)
//	10      remove j from jobs
//	11      remove node from listFreeClients
//	12  else if node is a median node
//	13    receive number of moves from node
//	14    if listFreeClients is empty: add {node, moves} to jobs
//	15    else: assign the first free client
//
// Jobs are ordered by expected computation time: a position with fewer
// moves played has a longer game ahead of it, so it is served first. The
// first-in free client is used, so recently freed (likely fast) nodes keep
// cycling on a heterogeneous cluster.
func runLastMinuteDispatcher(c mpi.Comm, lay cluster.Layout, cfg *Config) {
	runDemandDispatcher(c, lay, cfg, !cfg.LMFifo)
}

// runDemandDispatcher is the availability-driven client dispatcher shared
// by the paper's Last-Minute policy and the pull scheduler: free clients
// are tracked (all start free, each announces with (c') after a job),
// median requests queue while no client is free, and the queue is served
// either longest-expected-job-first (the paper's §IV-B heuristic, see
// runLastMinuteDispatcher) or in arrival order.
func runDemandDispatcher(c mpi.Comm, lay cluster.Layout, cfg *Config, longestFirst bool) {
	runDispatcherLoop(c, lay, cfg, longestFirst, false)
}

// runFaultAwareDispatcher is the pool's form of the demand dispatcher: it
// additionally tracks which median each busy client is assigned to, so a
// worker-loss notice (tagRanksLost) can return stranded clients to the
// free list — clients whose assign or job frame died with a median, and
// clients that died with their worker and whose replacement (same rank)
// boots free. The per-run protocol never sees losses and skips the
// bookkeeping entirely, so its hot path is untouched.
func runFaultAwareDispatcher(c mpi.Comm, lay cluster.Layout, cfg *Config, longestFirst bool) {
	runDispatcherLoop(c, lay, cfg, longestFirst, true)
}

func runDispatcherLoop(c mpi.Comm, lay cluster.Layout, cfg *Config, longestFirst, faultAware bool) {
	free := append([]mpi.Rank(nil), lay.Clients...) // line 1
	var jobs []lmJob                                // line 2
	var assigned map[mpi.Rank]mpi.Rank              // busy client -> median it serves
	var dead map[mpi.Rank]bool                      // clients abandoned with their worker
	if faultAware {
		assigned = make(map[mpi.Rank]mpi.Rank, len(lay.Clients))
	}
	// assign hands the first free client to a median, recording the pair.
	assign := func(to mpi.Rank) {
		client := free[0]
		free = free[1:]
		if faultAware {
			assigned[client] = to
		}
		cfg.trace("b", c.Rank(), to, c.Now())
		c.Send(to, tagAssign, client)
	}
	// serve matches a newly available client against the pending queue:
	// longest-expected-job-first or arrival order.
	serve := func() {
		if len(jobs) == 0 || len(free) == 0 {
			return
		}
		best := 0
		if longestFirst {
			for i := 1; i < len(jobs); i++ {
				if jobs[i].moves < jobs[best].moves {
					best = i
				}
			}
		}
		j := jobs[best]
		jobs = append(jobs[:best], jobs[best+1:]...)
		assign(j.sender)
	}

	for {
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagShutdown:
			// Teardown comes from the per-run root or from outside the
			// rank world (the pool's Inject) — never from a worker rank,
			// so a forged wire frame cannot dismantle the dispatcher.
			if msg.From != mpi.External && msg.From != lay.Root {
				break
			}
			return

		case tagFree: // lines 5–11: a client reports it is available
			// Role and duplication guards: only known clients enter the
			// free list, and never twice — a duplicated entry would let
			// the dispatcher assign one client two concurrent jobs while
			// others idle. Legit traffic never trips either check; wire
			// frames are remote-controlled and might (and after worker
			// churn a preemptively re-freed client's own notice does).
			if !slices.Contains(lay.Clients, msg.From) || slices.Contains(free, msg.From) {
				break
			}
			if dead[msg.From] {
				break // a notice outliving its abandoned sender
			}
			if faultAware {
				delete(assigned, msg.From)
			}
			free = append(free, msg.From)
			serve()

		case tagRequest: // lines 12–15: a median wants a client
			// Only medians request clients; a forged request would burn a
			// client on a rank that never runs the job (losing it from
			// the rotation). A real median's request is never wrong-typed,
			// but a corrupted one is still answered (as the longest
			// expected job) so the median's assignment wait stays live.
			if !slices.Contains(lay.Medians, msg.From) {
				break
			}
			moves, ok := msg.Payload.(int)
			if !ok {
				moves = 0
			}
			if len(free) == 0 {
				jobs = append(jobs, lmJob{sender: msg.From, moves: moves})
				break
			}
			assign(msg.From)

		case tagRanksLost:
			// A worker died. Requests from its medians will never be
			// consumed (the replacement re-requests for itself), and
			// clients tied up by the lost ranks would otherwise be
			// reserved forever: a client assigned to a dead median got a
			// job that will never be collected, and a dead client's
			// replacement boots idle without knowing it owes a job. Both
			// are returned to the free list; if the obligation does
			// survive (the job reached a live client, or was queued for
			// the slot and flushes to the replacement), the eventual
			// free notice from the client is shed by the duplicate guard
			// above, and extra jobs queue at the client's mailbox — load
			// skew for a moment, never corruption.
			lost, ok := msg.Payload.(svcRanksLost)
			if !ok || msg.From != mpi.External || !faultAware {
				break // forged wire frame: only the pool declares losses
			}
			kept := jobs[:0]
			for _, j := range jobs {
				if j.sender < lost.Lo || j.sender >= lost.Hi {
					kept = append(kept, j)
				}
			}
			jobs = kept
			for client, median := range assigned {
				dead := client >= lost.Lo && client < lost.Hi
				orphaned := median >= lost.Lo && median < lost.Hi
				if !dead && !orphaned {
					continue
				}
				delete(assigned, client)
				if !slices.Contains(free, client) {
					free = append(free, client)
				}
			}
			for len(jobs) > 0 && len(free) > 0 {
				serve()
			}

		case tagRanksDead:
			// A lost worker was abandoned: no replacement is coming, so
			// unlike tagRanksLost its clients must leave the rotation
			// entirely — re-freeing them would hand medians assignments
			// that can never compute. Dead medians' queued requests are
			// dropped, dead clients leave both the free list and the
			// assignment table, and live clients stranded on dead medians
			// are freed as in the loss path.
			lost, ok := msg.Payload.(svcRanksLost)
			if !ok || msg.From != mpi.External || !faultAware {
				break // forged wire frame: only the pool declares abandonment
			}
			if dead == nil {
				dead = make(map[mpi.Rank]bool, len(lay.Clients))
			}
			for _, cl := range lay.Clients {
				if cl >= lost.Lo && cl < lost.Hi {
					dead[cl] = true
				}
			}
			kept := jobs[:0]
			for _, j := range jobs {
				if j.sender < lost.Lo || j.sender >= lost.Hi {
					kept = append(kept, j)
				}
			}
			jobs = kept
			keptFree := free[:0]
			for _, cl := range free {
				if !dead[cl] {
					keptFree = append(keptFree, cl)
				}
			}
			free = keptFree
			for client, median := range assigned {
				if dead[client] {
					delete(assigned, client)
					continue
				}
				if median >= lost.Lo && median < lost.Hi {
					delete(assigned, client)
					if !slices.Contains(free, client) {
						free = append(free, client)
					}
				}
			}
			for len(jobs) > 0 && len(free) > 0 {
				serve()
			}

		case tagRanksRevived:
			// An abandoned worker rejoined after all. Its clients boot
			// idle in the fresh process, so they re-enter the free list
			// directly; their own availability notices arrive later and
			// are shed by the duplicate guard.
			lost, ok := msg.Payload.(svcRanksLost)
			if !ok || msg.From != mpi.External || !faultAware {
				break
			}
			for _, cl := range lay.Clients {
				if cl >= lost.Lo && cl < lost.Hi && dead[cl] {
					delete(dead, cl)
					if !slices.Contains(free, cl) {
						free = append(free, cl)
					}
				}
			}
			for len(jobs) > 0 && len(free) > 0 {
				serve()
			}
		}
	}
}
