package parallel

// Shared worker-pool engine: the long-lived, multi-job form of the paper's
// cluster.
//
// Execute builds a goroutine cluster per run and tears it down with the
// result — the right shape for reproducing the paper's tables, and the
// wrong one for a service: nothing can run two searches at once, and the
// warm state PR 1 and PR 2 built up (StatePool free lists, searcher
// scratch buffers, rng streams) dies with every run. Pool keeps one
// mpi.WallCluster alive for its whole lifetime and multiplexes any number
// of jobs onto it:
//
//   - S job-slot ranks each play the top-level game of at most one job at
//     a time (job-scoped roots). A slot is driven from outside the rank
//     world through mpi.Inject: job starts, cancellations and the
//     shutdown broadcast arrive as External messages.
//   - One scheduler rank owns the per-job candidate queues — the pull
//     protocol of PR 2 lifted to many simultaneous roots. Roots offer
//     candidates on their slot's tag band (mpi.TagSpace), idle medians
//     pull with work requests, and grants are served round-robin across
//     jobs so one wide job cannot starve the others.
//   - One dispatcher rank assigns clients to median requests, reusing the
//     demand-driven dispatcher (availability-tracked clients, pending
//     jobs served longest-expected-first under LastMinute).
//   - M median ranks and C client ranks are built once and reused across
//     every job: their StatePools, searchers and move buffers stay warm,
//     and per-job parameters (level, seed, memorization) travel with the
//     candidates instead of living in a per-run Config.
//
// The pool is transport-blind: NewPool hosts every rank as a goroutine of
// this process (mpi.WallCluster), NewNetPool hosts only the control ranks
// here and serves the medians and clients from external pnmcs-worker
// processes over TCP (mpi.NetCluster) — the deployment shape of the
// paper's MPI cluster, with the coordinator in the server role. The rank
// bodies are identical either way; everything a worker needs (job
// parameters, positions, scores, rollout accounting) travels in the
// protocol messages, never through shared memory.
//
// Determinism: client rollouts are keyed by their logical job coordinates
// (rng.Fold over root step, root candidate, median step, median
// candidate) and the job's own seed, exactly as in RunWall — so a job's
// score and sequence are bit-identical to the same Config run solo
// through RunWall, no matter how many other jobs share the pool or where
// its rollouts execute. The service-level equivalence tests pin this.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/vtime"
)

// Service protocol tags, kept clear of the per-run protocol's flat tags.
// Messages addressed to a specific slot, median or client rank use these;
// messages multiplexed onto the shared scheduler use the per-slot tag
// bands of Pool.space.
const (
	tagJobStart     mpi.Tag = 64 + iota // External -> slot: start this job
	tagJobCancel                        // External -> slot: cancel epoch
	tagGrant                            // scheduler -> median: candidate to play
	tagStepScore                        // median -> slot: finished game score
	tagAbandonAck                       // scheduler -> slot: dropped-candidate count
	tagRanksLost                        // External -> scheduler/dispatcher/median: worker ranks died
	tagRegrant                          // scheduler -> slot: lost candidates re-queued
	tagRanksDead                        // External -> scheduler/dispatcher/median: ranks abandoned, no replacement coming
	tagRanksRevived                     // External -> dispatcher/median: abandoned ranks rejoined after all
	tagJobFail                          // External -> slot: pool degraded below its floor, fail the job
	tagSpecCancel                       // scheduler -> median: speculative branch cancelled
)

// Per-slot tag-band offsets (see mpi.TagSpace): the scheduler tells jobs
// apart by the band their messages arrive on.
const (
	offOffer      mpi.Tag = iota // slot -> scheduler: candidate offered
	offAbandon                   // slot -> scheduler: drop my queued candidates
	offSpecCancel                // slot -> scheduler: purge + broadcast a speculation cancel
	numOffsets
)

// tagBandBase is the first tag of slot 0's band.
const tagBandBase mpi.Tag = 128

// jobParams are the per-job knobs that travel with every candidate and
// every client job, replacing the per-run Config the workers can no
// longer close over.
type jobParams struct {
	Slot      int
	Epoch     uint64
	Level     int
	Seed      uint64
	Memorize  bool
	JobScale  int64
	Root      mpi.Rank // the slot rank that owns the job
	Eval      string   // registered evaluator name; "" = uniform playouts
	Cache     bool     // consult the pool's shared transposition cache
	Speculate int      // effective async speculation width of the job (0 = off)
}

// svcCandidate is the slot→scheduler→median payload: one candidate
// position of a root step, tagged with its logical coordinates and the
// owning job. Par is the async scheduler's branch discriminator — the
// parent move index the candidate's step assumes was played at the
// previous step (see candidate.Par); the median echoes it in svcScore so
// the slot can shed scores of speculative branches that lost the argmax.
type svcCandidate struct {
	Step  int
	Cand  int
	Par   int // parent move index at the previous root step (−1 = none)
	P     jobParams
	State game.State
}

// svcJob is the median→client payload: a position to roll out and the
// parameters of the job it belongs to.
type svcJob struct {
	Key   uint64
	Seq   int
	Par   int // branch discriminator of the owning game (see resultKey)
	P     jobParams
	State game.State
}

// svcScore is the median→slot result: the final score of the Cand-th
// candidate of the root step Step, plus the rollout accounting of the
// candidate's whole level-(ℓ−1) game. Rollout counts ride the protocol
// instead of a shared-memory collector so they survive process
// boundaries: on the net transport the median that played the game lives
// in another OS process. Step exists for worker churn: when a lost
// median's score turns out to have survived the crash, the re-granted
// duplicate finishes during some later root step, and without the step
// echo its score — Epoch valid, Cand in range — would be accepted as that
// later step's answer. Undisturbed runs never produce a cross-step score;
// churn does. Par echoes the granted candidate's branch discriminator:
// the async slot accepts a score only when both Step and Par match its
// current gather, which is what sheds a losing speculative branch's
// in-flight games without any per-score bookkeeping.
type svcScore struct {
	Epoch    uint64
	Step     int
	Cand     int
	Par      int // branch discriminator echo (svcCandidate.Par)
	Score    float64
	Rollouts int64 // client rollouts executed for this candidate's game
	Units    int64 // metered work units across those rollouts
}

// svcResult is the client→median rollout result: the score of the Seq-th
// candidate of the median's current step and the rollout's metered work.
// Key is the job's identity echo (resultKey: the rng key folded with the
// owning job's slot, epoch and branch discriminator) — the median uses it
// to reject stale results: under worker churn a lost job may be both
// re-issued and (via the rejoin pending-queue flush) computed by the dead
// client's replacement, and the duplicate — or a result surviving from an
// earlier step, from another job at the same logical coordinates, or from
// a cancelled speculative branch's aborted game — must never be mistaken
// for a live one.
type svcResult struct {
	Key   uint64
	Seq   int
	Score float64
	Units int64
}

// resultKey folds a rollout's rng key with its job's identity. The rng
// key alone is unique only within one job's coordinate grid (step,
// candidate, median step, median candidate); folding slot and epoch in
// distinguishes same-coordinate rollouts of different jobs, and folding
// the branch discriminator par distinguishes a speculative branch's game
// from the real game at the same coordinates — a cancelled loser branch
// (same Step and Cand, different Par) aborts mid-play with rollouts still
// on clients, and a stale result must not be mistaken for the real game's
// rollout under the identical rng key (it was computed from a different
// position, so accepting it corrupts the score and the work accounting).
// Par is NOT part of the rng key itself: the winning branch must draw the
// exact rollout streams the synchronous root would, so only the identity
// echo discriminates. Computed independently by the issuing median and
// the executing client from fields that travel in svcJob.
func resultKey(p jobParams, par int, rngKey uint64) uint64 {
	return rng.Fold(uint64(p.Slot), p.Epoch, rngKey, uint64(par+1))
}

// svcRanksLost is the worker-loss notice the pool injects at the
// scheduler, the dispatcher and every median when a worker process dies:
// the contiguous rank range [Lo, Hi) the worker hosted. Each recipient
// repairs its own bookkeeping — the scheduler re-queues the medians'
// outstanding candidate grants, the dispatcher re-frees dead or
// dead-assigned clients, and each median re-issues rollout jobs it had in
// flight on dead clients.
type svcRanksLost struct {
	Lo, Hi mpi.Rank
}

// svcRegrant is the scheduler→slot notice that Count of the job's granted
// candidates were lost with a worker and re-queued; the slot accumulates
// it into Result.Regranted. Informational only: the re-granted candidates
// re-enter the normal grant/score flow and change no score.
type svcRegrant struct {
	Epoch uint64
	Count int
}

// svcAbandonAck is the scheduler→slot answer to an abandon: how many of
// the abandoning step's candidates were still queued (and are now
// dropped). Every queued candidate of the epoch is dropped — speculative
// next-step ones included — but only the gathered step's count rides the
// ack, because only those candidates figure in the slot's drain
// arithmetic. The epoch lets a slot discard an ack that outlived its job.
type svcAbandonAck struct {
	Epoch   uint64
	Dropped int
}

// svcAbandon is the slot→scheduler abandon order (offAbandon): drop every
// queued candidate of the epoch, ack the count belonging to root step
// Step. Slots and the scheduler are both coordinator ranks, so this never
// crosses the wire and needs no codec kind.
type svcAbandon struct {
	Epoch uint64
	Step  int
}

// svcSpecCancel is the speculation cancel order of the async scheduler.
// The slot sends it on its offSpecCancel band when an argmax resolves
// (Step = the speculated root step, Keep = the winning move index) or
// when the job ends with speculation still in flight (Step = −1: every
// speculative grant of the epoch is moot). The scheduler purges covered
// queued candidates, remembers the latest cancel per slot — applied again
// when a dead worker's grants are re-queued — and re-broadcasts the order
// to the medians (tagSpecCancel), which skip covered buffered grants and
// abort covered games mid-play without reporting a score. Fire-and-forget,
// like tagJobFail: no ack, because a cancel that loses a race is harmless
// — covered scores are shed by the slot's epoch/step/Par guards anyway.
type svcSpecCancel struct {
	Slot  int
	Epoch uint64
	Step  int // speculated root step the cancel covers; −1 = all steps
	Keep  int // branch (parent move) to keep: the argmax winner; −1 = none
}

// specCovered reports whether cand is mooted by the cancel cn. The
// zero-value cancel covers nothing (job epochs start at 1).
func specCovered(cn svcSpecCancel, cand svcCandidate) bool {
	if cn.Slot != cand.P.Slot || cn.Epoch != cand.P.Epoch {
		return false
	}
	return cn.Step == -1 || (cand.Step == cn.Step && cand.Par != cn.Keep)
}

// Progress is a streaming snapshot of a running job, delivered to the
// RunJob progress callback after every completed root step.
type Progress struct {
	// Steps is the number of root moves played so far.
	Steps int
	// BestScore is the lower-level evaluation backing the move just
	// played — the best score the search has seen for the current line.
	BestScore float64
	// Sequence is a copy of the root's game so far.
	Sequence []game.Move
	// Elapsed is wall time since the job started.
	Elapsed time.Duration
}

// PoolConfig sizes a Pool.
type PoolConfig struct {
	// Slots is the number of jobs the pool can run concurrently (job-slot
	// root ranks). Default 4.
	Slots int
	// Medians is the number of shared median workers. Default 4.
	Medians int
	// Clients is the number of shared rollout workers. Default 8.
	Clients int
	// Algo orders the dispatcher's pending-job queue (LastMinute serves
	// the longest-expected job first). A pool-level policy: jobs share one
	// dispatcher, and scheduling never changes scores (see package doc).
	Algo Algorithm
	// EvalBatch is the per-worker evaluation batch size: rollout positions
	// submitted by a process's client ranks are flushed to the evaluator
	// once this many have accumulated. Default 8, capped at the client
	// ranks the process hosts — each client submits at most one position
	// at a time, so a larger batch could never fill and every evaluation
	// would stall on the EvalFlush deadline instead. Only exercised by
	// jobs whose Config.Evaluator is set; see evalbatch.go.
	EvalBatch int
	// EvalFlush bounds how long a partial evaluation batch waits before it
	// is flushed anyway (a straggler batch must never stall its blocked
	// submitters — with one in-flight rollout the deadline is the only
	// trigger). Default 2ms.
	EvalFlush time.Duration
	// CacheMB bounds the process's shared transposition cache in
	// megabytes. One cache serves every slot, job and client the process
	// hosts (a remote pnmcs-worker builds its own from the same figure,
	// carried by the handshake blob); jobs opt in per job via
	// Config.Cache. Default 64.
	CacheMB int
	// CacheVerify recomputes every cache hit and panics on mismatch
	// (core.Options.CacheVerify) on every searcher of the process,
	// including remote workers. Test/debug mode.
	CacheVerify bool
	// Speculate is the pool-level default for Config.Speculate: a job
	// submitted with Speculate == 0 inherits it (a negative job value
	// forces speculation off). It rides the worker handshake blob (v4)
	// like every other pool-shape knob, so remote workers can see the
	// pool's default even though the effective per-job width always
	// travels with the job's candidates (jobParams.Speculate). Default 0:
	// jobs run the lockstep gather unless they opt in.
	Speculate int
}

// defaultEvalFlush is the default partial-batch flush deadline: long
// enough for concurrent rollouts to coalesce, short next to any real
// rollout's runtime.
const defaultEvalFlush = 2 * time.Millisecond

func (c *PoolConfig) withDefaults() PoolConfig {
	out := *c
	if out.Slots <= 0 {
		out.Slots = 4
	}
	if out.Medians <= 0 {
		out.Medians = 4
	}
	if out.Clients <= 0 {
		out.Clients = 8
	}
	if out.EvalBatch <= 0 {
		out.EvalBatch = 8
	}
	if out.EvalFlush <= 0 {
		out.EvalFlush = defaultEvalFlush
	}
	if out.CacheMB <= 0 {
		out.CacheMB = 64
	}
	return out
}

// PoolMetrics aggregates the pool's lifetime counters: the idle and
// queue-depth instrumentation PR 2 added to Result, accumulated across
// every job the pool has served.
type PoolMetrics struct {
	// Jobs is the number of client rollouts executed.
	Jobs int64
	// WorkUnits is the total metered CPU work across client rollouts.
	WorkUnits int64
	// MedianIdle / ClientIdle map each worker to its cumulative
	// Recv-blocked time — waiting for a grant, an assignment or a result.
	// Only workers co-resident with the coordinator report here; a worker
	// hosted by a remote pnmcs-worker process keeps its idle counters in
	// its own process (its entry stays zero).
	MedianIdle []time.Duration
	ClientIdle []time.Duration
	// QueueDepthMax / QueueDepthMean profile the scheduler's ready queue
	// (candidates offered but not yet granted) across all jobs, sampled
	// at every offer/request transition.
	QueueDepthMax  int
	QueueDepthMean float64
	// WorkersLost / WorkersRejoined count worker-process churn on a
	// distributed pool: connections lost before teardown (crash, reset,
	// missed heartbeat) and replacements that reclaimed a lost slot.
	WorkersLost     int64
	WorkersRejoined int64
	// Regranted counts candidate grants that were outstanding on a lost
	// worker and re-queued for another median. Re-granted work never
	// changes a score (rollout streams are keyed by logical coordinates);
	// this meters how much compute churn cost.
	Regranted int64
	// Speculated / SpecWasted aggregate the async jobs' speculative
	// candidate accounting (Result.Speculated / Result.SpecWasted) across
	// the pool's lifetime; zero on pools that never ran a Speculate>0 job.
	Speculated int64
	SpecWasted int64
	// StepCount / StepLatencySum / StepLatencyMax aggregate per-root-step
	// latency across every job the pool has served (Result.StepLatency):
	// how many root steps completed, their summed duration, and the single
	// worst step — the production-observable form of the latency the async
	// scheduler attacks.
	StepCount      int64
	StepLatencySum time.Duration
	StepLatencyMax time.Duration
	// WorkersAbandoned counts lost workers given up on for good: their
	// grace window (NetPoolConfig.ReplaceGrace) expired or their pending
	// queue overflowed with no replacement in sight, and their rank range
	// was re-mapped onto the survivors.
	WorkersAbandoned int64
	// Degraded reports whether the pool is currently running on a shrunken
	// world (at least one worker abandoned and not yet revived). Failed
	// reports the harder condition: the surviving world is below the
	// pool's floor (MinWorkers, or any loss when Degrade is off) and jobs
	// are refused / failed fast instead of run.
	Degraded bool
	Failed   bool
	// Net carries the transport counters of a distributed pool
	// (frames/bytes sent and received, codec nanoseconds); nil when the
	// pool runs in-process on a WallCluster.
	Net *mpi.NetStats
	// Evaluation batching counters of the coordinator-resident batcher
	// (see evalbatch.go). Like the idle counters, a remote pnmcs-worker's
	// batcher accumulates in its own process and does not report here.
	// EvalBatches / EvalRequests count flushes and the positions they
	// carried; EvalFlushSize vs EvalFlushDeadline splits the flushes by
	// trigger; EvalBatchMax is the largest batch flushed; EvalFlushWait is
	// the cumulative wait of each flushed batch's oldest request.
	EvalBatches       int64
	EvalRequests      int64
	EvalFlushSize     int64
	EvalFlushDeadline int64
	EvalBatchMax      int
	EvalFlushWait     time.Duration
	// Transposition-cache counters of the coordinator-resident cache
	// (internal/cache.Stats). Like the batcher counters, a remote
	// pnmcs-worker's cache accumulates in its own process and does not
	// report here.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheEntries   int64
	CacheBytes     int64
}

// poolCollector is the coordinator-side store of the pool's lifetime
// instrumentation. Rollout counts arrive through the protocol (svcScore)
// and are recorded by the slot ranks, which always live in the
// coordinator process; only the idle times of co-resident workers are
// written directly (a remote worker's idle time stays in its own
// process — see PoolMetrics).
type poolCollector struct {
	mu           sync.Mutex
	jobs         int64
	units        int64
	medianIdle   []time.Duration
	clientIdle   []time.Duration
	depthSamples int64
	depthSum     int64
	depthMax     int

	// Worker-churn accounting (distributed pools only).
	workersLost      int64
	workersRejoined  int64
	workersAbandoned int64
	regranted        int64

	// Async-scheduler accounting: speculative candidates issued/wasted and
	// the per-root-step latency profile (count, sum, max) across all jobs.
	speculated int64
	specWasted int64
	stepCount  int64
	stepSum    time.Duration
	stepMax    time.Duration

	// Remote workers push cumulative idle counters with every pong and
	// goodbye (piggybacked telemetry); each connection reports from zero,
	// so on a loss the connection's last report folds into the base and
	// the exported series stays monotonic across replacements.
	remoteMedianBase, remoteMedianCur []time.Duration
	remoteClientBase, remoteClientCur []time.Duration
}

func (co *poolCollector) addRollouts(jobs, units int64) {
	co.mu.Lock()
	co.jobs += jobs
	co.units += units
	co.mu.Unlock()
}

func (co *poolCollector) addMedianIdle(i int, d time.Duration) {
	co.mu.Lock()
	co.medianIdle[i] += d
	co.mu.Unlock()
}

func (co *poolCollector) addClientIdle(i int, d time.Duration) {
	co.mu.Lock()
	co.clientIdle[i] += d
	co.mu.Unlock()
}

func (co *poolCollector) sampleDepth(d int) {
	co.mu.Lock()
	co.depthSamples++
	co.depthSum += int64(d)
	if d > co.depthMax {
		co.depthMax = d
	}
	co.mu.Unlock()
}

func (co *poolCollector) addWorkerLost() {
	co.mu.Lock()
	co.workersLost++
	co.mu.Unlock()
}

func (co *poolCollector) addWorkerRejoined() {
	co.mu.Lock()
	co.workersRejoined++
	co.mu.Unlock()
}

func (co *poolCollector) addWorkerAbandoned() {
	co.mu.Lock()
	co.workersAbandoned++
	co.mu.Unlock()
}

func (co *poolCollector) addRegranted(n int) {
	co.mu.Lock()
	co.regranted += int64(n)
	co.mu.Unlock()
}

func (co *poolCollector) addSpec(speculated, wasted int64) {
	co.mu.Lock()
	co.speculated += speculated
	co.specWasted += wasted
	co.mu.Unlock()
}

func (co *poolCollector) addStepLatency(d time.Duration) {
	co.mu.Lock()
	co.stepCount++
	co.stepSum += d
	if d > co.stepMax {
		co.stepMax = d
	}
	co.mu.Unlock()
}

// setRemoteIdle records one worker's telemetry snapshot: cumulative idle
// per hosted rank since that worker connected. w maps ranks onto
// median/client indexes.
func (co *poolCollector) setRemoteIdle(w *poolWorld, lo mpi.Rank, idleSeconds []float64) {
	co.mu.Lock()
	for i, sec := range idleSeconds {
		r := lo + mpi.Rank(i)
		d := time.Duration(sec * float64(time.Second))
		switch {
		case isMedianRank(w, r):
			co.remoteMedianCur[r-w.firstWorker()] = d
		case isClientRank(w, r):
			co.remoteClientCur[int(r-w.firstWorker())-w.cfg.Medians] = d
		}
	}
	co.mu.Unlock()
}

// foldRemoteIdle retires a lost worker's connection: its last-reported
// idle folds into the base so the replacement's from-zero reports don't
// rewind the exported counters.
func (co *poolCollector) foldRemoteIdle(w *poolWorld, lo, hi mpi.Rank) {
	co.mu.Lock()
	for r := lo; r < hi; r++ {
		switch {
		case isMedianRank(w, r):
			i := r - w.firstWorker()
			co.remoteMedianBase[i] += co.remoteMedianCur[i]
			co.remoteMedianCur[i] = 0
		case isClientRank(w, r):
			i := int(r-w.firstWorker()) - w.cfg.Medians
			co.remoteClientBase[i] += co.remoteClientCur[i]
			co.remoteClientCur[i] = 0
		}
	}
	co.mu.Unlock()
}

// poolWorld is the pool's rank topology, a pure function of PoolConfig:
// slots first, then scheduler, dispatcher, medians, clients. The
// coordinator derives it when building the pool and a pnmcs-worker
// process derives the identical layout from the PoolConfig in its
// handshake blob, so both sides agree on every rank and tag without
// exchanging anything beyond the config.
type poolWorld struct {
	cfg     PoolConfig
	sched   mpi.Rank
	disp    mpi.Rank
	medians []mpi.Rank
	clients []mpi.Rank
	space   mpi.TagSpace

	// Degraded layout: which worker ranks have been abandoned (their
	// process lost for good, no replacement). Every participant that
	// routes work — the coordinator's dispatcher/scheduler and each
	// median, including medians in remote worker processes with their own
	// poolWorld instance — learns of abandonment through
	// tagRanksDead/tagRanksRevived notices and updates the dead set it can
	// see. degEpoch counts dead-set transitions; it stays zero for the
	// whole life of a healthy pool (and always for wall pools), so the
	// healthy hot path is one atomic load, no lock, no allocation.
	degEpoch atomic.Uint64
	degMu    sync.Mutex
	degDead  []bool // indexed rank - firstWorker(); nil until first abandonment
}

// markDead records [lo, hi) as abandoned.
func (w *poolWorld) markDead(lo, hi mpi.Rank) {
	w.degMu.Lock()
	if w.degDead == nil {
		w.degDead = make([]bool, w.cfg.Medians+w.cfg.Clients)
	}
	for r := lo; r < hi; r++ {
		if i := int(r - w.firstWorker()); i >= 0 && i < len(w.degDead) {
			w.degDead[i] = true
		}
	}
	w.degMu.Unlock()
	w.degEpoch.Add(1)
}

// revive clears [lo, hi) after an abandoned worker rejoined after all.
func (w *poolWorld) revive(lo, hi mpi.Rank) {
	w.degMu.Lock()
	for r := lo; r < hi; r++ {
		if i := int(r - w.firstWorker()); i >= 0 && i < len(w.degDead) {
			w.degDead[i] = false
		}
	}
	w.degMu.Unlock()
	w.degEpoch.Add(1)
}

// isDead reports whether rank r belongs to an abandoned worker. The
// epoch==0 fast path keeps the per-rollout check free on pools that have
// never degraded.
func (w *poolWorld) isDead(r mpi.Rank) bool {
	if w.degEpoch.Load() == 0 {
		return false
	}
	w.degMu.Lock()
	defer w.degMu.Unlock()
	i := int(r - w.firstWorker())
	return i >= 0 && i < len(w.degDead) && w.degDead[i]
}

// anyDead reports whether the world is currently shrunken.
func (w *poolWorld) anyDead() bool {
	if w.degEpoch.Load() == 0 {
		return false
	}
	w.degMu.Lock()
	defer w.degMu.Unlock()
	for _, d := range w.degDead {
		if d {
			return true
		}
	}
	return false
}

// newPoolWorld lays out the world of a pool with the given (defaulted)
// config.
func newPoolWorld(cfg PoolConfig) *poolWorld {
	w := &poolWorld{
		cfg:   cfg,
		sched: mpi.Rank(cfg.Slots),
		disp:  mpi.Rank(cfg.Slots + 1),
		space: mpi.TagSpace{Base: tagBandBase, Width: numOffsets, Bands: cfg.Slots},
	}
	next := mpi.Rank(cfg.Slots + 2)
	for i := 0; i < cfg.Medians; i++ {
		w.medians = append(w.medians, next)
		next++
	}
	for i := 0; i < cfg.Clients; i++ {
		w.clients = append(w.clients, next)
		next++
	}
	return w
}

// size returns the world size: slots + scheduler + dispatcher + workers.
func (w *poolWorld) size() int {
	return w.cfg.Slots + 2 + w.cfg.Medians + w.cfg.Clients
}

// firstWorker is the first median rank — every rank at or beyond it may
// be hosted by a remote worker process.
func (w *poolWorld) firstWorker() mpi.Rank { return mpi.Rank(w.cfg.Slots + 2) }

// poolCluster is what a Pool needs from its transport: the Cluster
// life-cycle plus out-of-world injection. WallCluster and NetCluster both
// satisfy it, which is the whole point — the pool wiring and the search
// protocol are transport-blind.
type poolCluster interface {
	mpi.Cluster
	Inject(to mpi.Rank, tag mpi.Tag, payload any)
}

// Pool is a persistent worker pool serving many search jobs. Construct
// with NewPool (in-process goroutine workers) or NewNetPool (workers in
// separate OS processes over TCP), run jobs with RunJob (one per slot at
// a time), and tear down with Shutdown. All methods are safe for
// concurrent use.
type Pool struct {
	cfg     PoolConfig
	world   *poolWorld
	cluster poolCluster
	net     *mpi.NetCluster // nil for in-process pools
	netCfg  NetPoolConfig   // normalized; zero value for in-process pools
	coll    *poolCollector
	batch   *evalBatcher // coordinator-resident workers' evaluation batcher
	cache   *cache.Cache // coordinator-resident clients' transposition cache

	runDone chan struct{}

	mu        sync.Mutex
	idle      *sync.Cond // signalled when a slot goes idle
	closed    bool
	slotBusy  []bool
	slotEpoch []uint64

	// deg tracks permanent worker loss (distributed pools only): which
	// worker indexes have been abandoned and whether the surviving world
	// has fallen below the pool's floor. Guarded by its own mutex — the
	// transport hooks that write it must not contend with the job-slot
	// path; never held while p.mu is held by the same goroutine in the
	// deg→p.mu direction (failBusySlots acquires p.mu only after deg.mu is
	// released).
	deg struct {
		mu        sync.Mutex
		abandoned map[int]svcRanksLost // worker index -> its rank range
		failed    bool
	}
}

// jobStart is the payload injected at a slot rank to begin a job. done
// and progress are ordinary Go callbacks: slot ranks always live in the
// coordinator process (only medians and clients are ever remote), so the
// boundary between the rank world and the caller is a function call, not
// a wire format — jobStart never crosses the wire and has no codec kind.
type jobStart struct {
	epoch    uint64
	cfg      Config
	progress func(Progress)
	done     func(Result, error)
}

// ErrPoolClosed is returned by RunJob once Shutdown has begun.
var ErrPoolClosed = fmt.Errorf("parallel: pool is shut down")

// ErrDegraded is returned by RunJob — immediately on submission, or as a
// fail-fast mid-job — when permanent worker loss has shrunk the pool
// below its floor: any abandonment with NetPoolConfig.Degrade off, or
// fewer than MinWorkers surviving workers (or no live median / no live
// client) with it on. The failure is deterministic and prompt: queued
// frames for the dead worker are dropped, nothing stalls, and a re-run of
// the same Config under the same seed (see service-level retry) produces
// the same answer once capacity returns.
var ErrDegraded = fmt.Errorf("parallel: pool degraded below its worker floor")

// NewPool builds the worker cluster — slots, scheduler, dispatcher,
// medians, clients — as goroutines of this process and starts it running.
// The pool idles until jobs are submitted with RunJob.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg = cfg.withDefaults()
	world := newPoolWorld(cfg)
	return newPoolOn(world, mpi.NewWallCluster(world.size()), nil, newPoolCollector(cfg))
}

// NetPoolConfig describes the distributed deployment of a NewNetPool.
type NetPoolConfig struct {
	// Listen is the TCP address worker processes dial; "127.0.0.1:0"
	// binds an ephemeral port (read it back with Pool.WorkerAddr).
	Listen string
	// Workers is the number of pnmcs-worker processes expected. The
	// pool's medians and clients are split across them as contiguous rank
	// ranges, as evenly as possible.
	Workers int
	// Token, when non-empty, is the shared secret every worker must
	// present at handshake (constant-time compared by the coordinator).
	Token string
	// Heartbeat / HeartbeatTimeout tune worker liveness probing: the
	// coordinator pings each worker every Heartbeat and declares a worker
	// lost after HeartbeatTimeout of silence. Zero selects the transport
	// defaults (2s / 8s); negative Heartbeat disables probing (losses are
	// then detected by read errors only). See mpi.NetConfig.
	Heartbeat        time.Duration
	HeartbeatTimeout time.Duration

	// ReplaceGrace bounds how long a lost worker's slot waits for a
	// replacement before the pool gives up on it: after the grace window
	// the worker is abandoned, its queued frames are dropped, and its rank
	// range is re-mapped onto the survivors (Degrade on) or running jobs
	// fail fast (Degrade off). Zero keeps the PR 5 behavior — wait
	// forever, queue forever.
	ReplaceGrace time.Duration
	// PendingLimit caps the per-worker pending-frame queue that buffers
	// traffic while a lost slot awaits a replacement; overflowing it
	// abandons the worker immediately (memory stays bounded even inside
	// the grace window). Zero selects 8192 frames when ReplaceGrace is
	// set and unbounded otherwise; negative forces unbounded.
	PendingLimit int
	// Degrade, when true, lets the pool finish jobs on a shrunken world
	// after an abandonment: the dead ranks are re-mapped onto surviving
	// workers and results stay bit-identical to solo runs (rollout rng is
	// keyed by logical job coordinates, never by rank). When false, any
	// abandonment fails running jobs deterministically with ErrDegraded.
	Degrade bool
	// MinWorkers is the degraded floor: with Degrade on, jobs keep
	// running while at least MinWorkers workers (and at least one median
	// and one client rank) survive; below it the pool fails fast. Zero
	// means 1.
	MinWorkers int
}

// NewNetPool builds a distributed pool: the control ranks — job slots,
// scheduler, dispatcher — run in this process (the coordinator), and the
// median and client ranks are hosted by Workers external processes
// running cmd/pnmcs-worker (or parallel.ServeWorker). The pool accepts
// jobs immediately; until workers dial in, candidates simply wait in the
// scheduler's queues. Scores are bit-identical to the same jobs on an
// in-process pool or solo RunWall: rollout streams are keyed by logical
// job coordinates, never by where a rollout runs.
//
// The pool survives worker churn (DESIGN.md §8): when a worker's stream
// dies — crash, reset, or missed heartbeat — the candidates granted to
// its medians are re-queued at the head of their jobs' queues and
// re-granted to surviving medians, medians re-issue rollout jobs they had
// in flight on the dead worker's clients, and the dispatcher returns the
// stranded clients to its free list. A replacement worker dialing in
// reclaims the lost slot's rank range mid-job and starts serving
// immediately, receiving everything queued for the slot while it was
// down. Results stay bit-identical through all of it: re-executed work
// replays the same coordinate-keyed rollout streams and duplicates are
// shed by key/epoch guards at every consumer.
func NewNetPool(cfg PoolConfig, net NetPoolConfig) (*Pool, error) {
	cfg = cfg.withDefaults()
	if net.Workers < 1 {
		return nil, fmt.Errorf("parallel: net pool needs at least one worker process")
	}
	world := newPoolWorld(cfg)
	remote := cfg.Medians + cfg.Clients
	if net.Workers > remote {
		return nil, fmt.Errorf("parallel: %d workers for %d median+client ranks", net.Workers, remote)
	}
	ranks := make([]int, net.Workers)
	for i := range ranks {
		ranks[i] = remote / net.Workers
		if i < remote%net.Workers {
			ranks[i]++
		}
	}
	coll := newPoolCollector(cfg)

	if net.MinWorkers <= 0 {
		net.MinWorkers = 1
	}
	pendingLimit := net.PendingLimit
	if pendingLimit == 0 && net.ReplaceGrace > 0 {
		pendingLimit = 8192
	}
	if pendingLimit < 0 {
		pendingLimit = 0
	}

	// The transport hooks fire from the coordinator's connection
	// goroutines, potentially before ListenNet (and NewNetPool itself)
	// has returned; they spin on the pointers for that (microsecond)
	// window so no loss, join or abandonment event is ever dropped.
	var ncp atomic.Pointer[mpi.NetCluster]
	cluster := func() *mpi.NetCluster {
		for {
			if nc := ncp.Load(); nc != nil {
				return nc
			}
			runtime.Gosched()
		}
	}
	var pp atomic.Pointer[Pool]
	pool := func() *Pool {
		for {
			if p := pp.Load(); p != nil {
				return p
			}
			runtime.Gosched()
		}
	}
	nc, err := mpi.ListenNet(mpi.NetConfig{
		Listen:           net.Listen,
		LocalRanks:       cfg.Slots + 2,
		WorkerRanks:      ranks,
		Blob:             appendWorkerBlob(nil, cfg),
		Token:            net.Token,
		Heartbeat:        net.Heartbeat,
		HeartbeatTimeout: net.HeartbeatTimeout,
		ReplaceGrace:     net.ReplaceGrace,
		PendingLimit:     pendingLimit,
		OnWorkerLost: func(_ int, lo, hi mpi.Rank) {
			coll.addWorkerLost()
			coll.foldRemoteIdle(world, lo, hi)
			// Repair order does not matter — each recipient only fixes its
			// own bookkeeping — but all notices are injected before the
			// transport reopens the slot, so they are ordered ahead of
			// anything a replacement worker says.
			c := cluster()
			c.Inject(world.sched, tagRanksLost, svcRanksLost{Lo: lo, Hi: hi})
			c.Inject(world.disp, tagRanksLost, svcRanksLost{Lo: lo, Hi: hi})
			for _, m := range world.medians {
				if m >= lo && m < hi {
					continue // the dead worker's own medians
				}
				c.Inject(m, tagRanksLost, svcRanksLost{Lo: lo, Hi: hi})
			}
		},
		OnWorkerJoined: func(worker int, lo, hi mpi.Rank, rejoin bool) {
			if rejoin {
				coll.addWorkerRejoined()
			}
			pool().handleJoined(worker, lo, hi)
		},
		OnWorkerAbandoned: func(worker int, lo, hi mpi.Rank) {
			pool().handleAbandoned(worker, lo, hi)
		},
		OnWorkerStats: func(_ int, lo mpi.Rank, idleSeconds []float64) {
			coll.setRemoteIdle(world, lo, idleSeconds)
		},
	})
	if err != nil {
		return nil, err
	}
	ncp.Store(nc)
	p, err := newPoolOn(world, nc, nc, coll)
	if err != nil {
		return nil, err
	}
	p.netCfg = net
	pp.Store(p)
	return p, nil
}

// handleAbandoned runs when the transport gives up on a lost worker for
// good (grace expired or pending queue overflowed, see OnWorkerAbandoned):
// the pool re-maps the dead rank range onto the survivors, or fails
// running jobs fast when the shrunken world is below its floor.
func (p *Pool) handleAbandoned(worker int, lo, hi mpi.Rank) {
	p.coll.addWorkerAbandoned()
	p.world.markDead(lo, hi)
	// Dead notices first — scheduler, dispatcher, surviving medians — so
	// that by the time a slot's fail-fast abandon reaches the scheduler,
	// the scheduler has already repaired its grant bookkeeping. Inject is
	// a synchronous mailbox push, so this ordering is a guarantee, not a
	// hope.
	p.cluster.Inject(p.world.sched, tagRanksDead, svcRanksLost{Lo: lo, Hi: hi})
	p.cluster.Inject(p.world.disp, tagRanksDead, svcRanksLost{Lo: lo, Hi: hi})
	for _, m := range p.world.medians {
		if m >= lo && m < hi {
			continue // the abandoned worker's own medians
		}
		p.cluster.Inject(m, tagRanksDead, svcRanksLost{Lo: lo, Hi: hi})
	}
	p.deg.mu.Lock()
	if p.deg.abandoned == nil {
		p.deg.abandoned = make(map[int]svcRanksLost)
	}
	p.deg.abandoned[worker] = svcRanksLost{Lo: lo, Hi: hi}
	p.recomputeFailedLocked()
	failed := p.deg.failed
	p.deg.mu.Unlock()
	if failed {
		p.failBusySlots()
	}
}

// handleJoined reverses an abandonment when a replacement turns up after
// all: the revived ranks rejoin the routable world and a failed pool may
// recover its floor.
func (p *Pool) handleJoined(worker int, lo, hi mpi.Rank) {
	p.deg.mu.Lock()
	_, wasAbandoned := p.deg.abandoned[worker]
	if wasAbandoned {
		delete(p.deg.abandoned, worker)
		p.recomputeFailedLocked()
	}
	p.deg.mu.Unlock()
	if !wasAbandoned {
		return
	}
	p.world.revive(lo, hi)
	p.cluster.Inject(p.world.disp, tagRanksRevived, svcRanksLost{Lo: lo, Hi: hi})
	for _, m := range p.world.medians {
		if m >= lo && m < hi {
			continue // the revived worker's own medians announce themselves
		}
		p.cluster.Inject(m, tagRanksRevived, svcRanksLost{Lo: lo, Hi: hi})
	}
}

// recomputeFailedLocked re-derives the fail-fast condition from the
// abandoned set. Caller holds p.deg.mu.
func (p *Pool) recomputeFailedLocked() {
	surviving := p.netCfg.Workers - len(p.deg.abandoned)
	liveMedians, liveClients := p.cfg.Medians, p.cfg.Clients
	for _, rg := range p.deg.abandoned {
		for r := rg.Lo; r < rg.Hi; r++ {
			switch {
			case isMedianRank(p.world, r):
				liveMedians--
			case isClientRank(p.world, r):
				liveClients--
			}
		}
	}
	floor := p.netCfg.MinWorkers
	if !p.netCfg.Degrade {
		floor = p.netCfg.Workers // any abandonment at all fails the pool
	}
	p.deg.failed = surviving < floor || liveMedians == 0 || liveClients == 0
}

// failBusySlots injects a fail-fast order at every slot with a running
// job. The epoch ride-along makes a late fail order for an already-
// finished job harmless.
func (p *Pool) failBusySlots() {
	p.mu.Lock()
	for slot := 0; slot < p.cfg.Slots; slot++ {
		if p.slotBusy[slot] {
			p.cluster.Inject(mpi.Rank(slot), tagJobFail, p.slotEpoch[slot])
		}
	}
	p.mu.Unlock()
}

// failedNow reports the pool's current fail-fast state.
func (p *Pool) failedNow() bool {
	p.deg.mu.Lock()
	defer p.deg.mu.Unlock()
	return p.deg.failed
}

// newPoolCollector sizes the pool's lifetime-instrumentation store.
func newPoolCollector(cfg PoolConfig) *poolCollector {
	return &poolCollector{
		medianIdle:       make([]time.Duration, cfg.Medians),
		clientIdle:       make([]time.Duration, cfg.Clients),
		remoteMedianBase: make([]time.Duration, cfg.Medians),
		remoteMedianCur:  make([]time.Duration, cfg.Medians),
		remoteClientBase: make([]time.Duration, cfg.Clients),
		remoteClientCur:  make([]time.Duration, cfg.Clients),
	}
}

// newPoolOn wires the pool's ranks onto a transport and starts it. The
// same wiring runs for every transport: a cluster hosting only a subset
// of the ranks (the net coordinator) ignores Start calls for the ranks
// other processes host.
func newPoolOn(world *poolWorld, cl poolCluster, nc *mpi.NetCluster, coll *poolCollector) (*Pool, error) {
	cfg := world.cfg
	p := &Pool{
		cfg:       cfg,
		world:     world,
		cluster:   cl,
		net:       nc,
		coll:      coll,
		runDone:   make(chan struct{}),
		slotBusy:  make([]bool, cfg.Slots),
		slotEpoch: make([]uint64, cfg.Slots),
		// The in-process pool hosts all cfg.Clients client ranks, so that
		// is the most submitters the batcher can ever have in at once; a
		// net coordinator hosts none and its batcher sits unused (each
		// pnmcs-worker builds its own, clamped to its hosted share).
		batch: newEvalBatcher(min(cfg.EvalBatch, cfg.Clients), cfg.EvalFlush, vtime.Wall()),
		// Same hosting logic as the batcher: one cache shared by every
		// client rank this process hosts; a net coordinator's sits empty
		// and each pnmcs-worker builds its own from the handshake blob.
		cache: cache.New(int64(cfg.CacheMB) << 20),
	}
	p.idle = sync.NewCond(&p.mu)

	for slot := 0; slot < cfg.Slots; slot++ {
		slot := slot
		p.cluster.Start(mpi.Rank(slot), func(c mpi.Comm) { p.runSlot(c, slot) })
	}
	p.cluster.Start(world.sched, func(c mpi.Comm) { p.runScheduler(c) })
	// The demand dispatcher is reused verbatim: it only needs the worker
	// rank lists (medians for request validation, clients for the free
	// list) and the policy ordering.
	dispLay := cluster.Layout{
		Medians: append([]mpi.Rank(nil), world.medians...),
		Clients: append([]mpi.Rank(nil), world.clients...),
	}
	dispCfg := &Config{Algo: cfg.Algo}
	longest := cfg.Algo == LastMinute
	p.cluster.Start(world.disp, func(c mpi.Comm) {
		// The pool's dispatcher runs fault-aware: it tracks client
		// assignments so worker-loss notices can return stranded clients
		// to the free list. The per-run dispatcher never sees losses and
		// skips the bookkeeping.
		runFaultAwareDispatcher(c, dispLay, dispCfg, longest)
	})
	startPoolWorkers(p.cluster, world, p.batch, p.cache, cfg.CacheVerify, p.coll.addMedianIdle, p.coll.addClientIdle)

	go func() {
		p.cluster.Run()
		close(p.runDone)
	}()
	return p, nil
}

// startPoolWorkers starts the median and client bodies on cl, reporting
// each worker's Recv-blocked intervals to the given sinks. Used by the
// pool itself (collector-backed sinks) and by ServeWorker in a remote
// worker process (worker-local sinks) — the bodies are identical on both
// sides of the wire, and a cluster hosting only some of the ranks ignores
// the Start calls for the others. batch is the process-local evaluation
// batcher the hosted client ranks share; tc is their shared transposition
// cache (consulted only on jobs whose params ask for it) and cacheVerify
// turns every hit into a recompute-and-compare assertion.
func startPoolWorkers(cl mpi.Cluster, world *poolWorld, batch *evalBatcher, tc *cache.Cache, cacheVerify bool, medianIdle, clientIdle func(i int, d time.Duration)) {
	for i := 0; i < world.cfg.Medians; i++ {
		i := i
		cl.Start(world.medians[i], func(c mpi.Comm) {
			runPoolMedian(c, world, func(d time.Duration) { medianIdle(i, d) })
		})
	}
	for i := 0; i < world.cfg.Clients; i++ {
		i := i
		cl.Start(world.clients[i], func(c mpi.Comm) {
			runPoolClient(c, world, batch, tc, cacheVerify, func(d time.Duration) { clientIdle(i, d) })
		})
	}
}

// isMedianRank reports whether r is one of the world's median ranks
// (medians occupy a contiguous range after the control ranks).
func isMedianRank(w *poolWorld, r mpi.Rank) bool {
	return r >= w.firstWorker() && r < w.firstWorker()+mpi.Rank(w.cfg.Medians)
}

// isClientRank reports whether r is one of the world's client ranks
// (clients occupy the contiguous range after the medians).
func isClientRank(w *poolWorld, r mpi.Rank) bool {
	first := w.firstWorker() + mpi.Rank(w.cfg.Medians)
	return r >= first && r < first+mpi.Rank(w.cfg.Clients)
}

// WorkerAddr returns the address worker processes dial, or "" for an
// in-process pool.
func (p *Pool) WorkerAddr() string {
	if p.net == nil {
		return ""
	}
	return p.net.Addr()
}

// Slots returns the number of concurrent job slots.
func (p *Pool) Slots() int { return p.cfg.Slots }

// Metrics snapshots the pool's lifetime instrumentation. Each per-rank
// idle entry merges the co-resident worker's direct accounting with the
// telemetry a remote worker pushes on its pong/goodbye frames (a rank is
// only ever one of the two).
func (p *Pool) Metrics() PoolMetrics {
	co := p.coll
	co.mu.Lock()
	m := PoolMetrics{
		Jobs:             co.jobs,
		WorkUnits:        co.units,
		MedianIdle:       append([]time.Duration(nil), co.medianIdle...),
		ClientIdle:       append([]time.Duration(nil), co.clientIdle...),
		QueueDepthMax:    co.depthMax,
		WorkersLost:      co.workersLost,
		WorkersRejoined:  co.workersRejoined,
		WorkersAbandoned: co.workersAbandoned,
		Regranted:        co.regranted,
		Speculated:       co.speculated,
		SpecWasted:       co.specWasted,
		StepCount:        co.stepCount,
		StepLatencySum:   co.stepSum,
		StepLatencyMax:   co.stepMax,
	}
	for i := range m.MedianIdle {
		m.MedianIdle[i] += co.remoteMedianBase[i] + co.remoteMedianCur[i]
	}
	for i := range m.ClientIdle {
		m.ClientIdle[i] += co.remoteClientBase[i] + co.remoteClientCur[i]
	}
	if co.depthSamples > 0 {
		m.QueueDepthMean = float64(co.depthSum) / float64(co.depthSamples)
	}
	co.mu.Unlock()
	eb := p.batch.snapshot()
	m.EvalBatches = eb.Batches
	m.EvalRequests = eb.Requests
	m.EvalFlushSize = eb.FlushSize
	m.EvalFlushDeadline = eb.FlushDeadline
	m.EvalBatchMax = eb.BatchMax
	m.EvalFlushWait = eb.FlushWait
	cs := p.cache.Stats()
	m.CacheHits = cs.Hits
	m.CacheMisses = cs.Misses
	m.CacheEvictions = cs.Evictions
	m.CacheEntries = cs.Entries
	m.CacheBytes = cs.Bytes
	if p.net != nil {
		st := p.net.Stats()
		m.Net = &st
	}
	p.deg.mu.Lock()
	m.Degraded = len(p.deg.abandoned) > 0
	m.Failed = p.deg.failed
	p.deg.mu.Unlock()
	return m
}

// JobHandle tracks one started job; Wait blocks for its result.
type JobHandle struct {
	p     *Pool
	slot  int
	timer *time.Timer
	ch    chan jobOutcome
}

type jobOutcome struct {
	res Result
	err error
}

// StartJob launches cfg on the given slot without blocking: once it
// returns, the job is cancellable through CancelJob. The caller owns slot
// scheduling — a slot runs one job at a time, and starting a second job
// on a busy slot is an error. progress, when non-nil, is invoked from the
// job's root goroutine after every completed step. The caller must Wait
// on the returned handle.
func (p *Pool) StartJob(slot int, cfg Config, progress func(Progress)) (*JobHandle, error) {
	if slot < 0 || slot >= p.cfg.Slots {
		return nil, fmt.Errorf("parallel: slot %d outside pool of %d", slot, p.cfg.Slots)
	}
	if cfg.Level < 2 {
		return nil, fmt.Errorf("parallel: level %d < 2 cannot be distributed (root, median, client need one level each)", cfg.Level)
	}
	if cfg.Root == nil {
		return nil, fmt.Errorf("parallel: no root position")
	}
	if cfg.Evaluator != "" && !game.HasEvaluator(cfg.Evaluator) {
		// Validated at submission, in the coordinator: clients resolving
		// an unknown name mid-job could only fall back to uniform
		// playouts, silently answering a different question than asked.
		return nil, fmt.Errorf("parallel: unknown evaluator %q (registered: %v)",
			cfg.Evaluator, game.EvaluatorNames())
	}

	h := &JobHandle{p: p, slot: slot, ch: make(chan jobOutcome, 1)}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if p.slotBusy[slot] {
		p.mu.Unlock()
		return nil, fmt.Errorf("parallel: slot %d already running a job", slot)
	}
	if p.failedNow() {
		// Refuse outright rather than inject a job the degradation hook
		// would immediately fail: deterministic, and no protocol traffic.
		// (deg.mu nests inside p.mu here; nothing acquires them in the
		// other order while holding either.)
		p.mu.Unlock()
		return nil, ErrDegraded
	}
	p.slotBusy[slot] = true
	p.slotEpoch[slot]++
	epoch := p.slotEpoch[slot]
	js := jobStart{
		epoch:    epoch,
		cfg:      cfg,
		progress: progress,
		done:     func(r Result, err error) { h.ch <- jobOutcome{r, err} },
	}
	// Injected while holding the mutex: any cancellation for this epoch
	// (CancelJob, the deadline timer, Shutdown's drain) observes the busy
	// flag under the same mutex and therefore lands after the start
	// message in the slot's FIFO mailbox.
	p.cluster.Inject(mpi.Rank(slot), tagJobStart, js)
	p.mu.Unlock()

	// StopAfter liveness: a queued job whose candidates no median has
	// picked up receives no messages, so the deadline is enforced by an
	// injected cancellation, not only by in-loop clock checks.
	if cfg.StopAfter > 0 {
		h.timer = time.AfterFunc(cfg.StopAfter, func() {
			p.cluster.Inject(mpi.Rank(slot), tagJobCancel, epoch)
		})
	}
	return h, nil
}

// Wait blocks until the job completes (or is cancelled — Result.Stopped
// true) and frees its slot. Must be called exactly once.
func (h *JobHandle) Wait() (Result, error) {
	out := <-h.ch
	if h.timer != nil {
		h.timer.Stop()
	}
	h.p.mu.Lock()
	h.p.slotBusy[h.slot] = false
	h.p.idle.Broadcast()
	h.p.mu.Unlock()
	return out.res, out.err
}

// RunJob is StartJob followed by Wait: it blocks until the job completes,
// is cancelled, or the pool shuts down.
func (p *Pool) RunJob(slot int, cfg Config, progress func(Progress)) (Result, error) {
	h, err := p.StartJob(slot, cfg, progress)
	if err != nil {
		return Result{}, err
	}
	return h.Wait()
}

// CancelJob cancels the job currently running on slot, if any. The job
// drains its in-flight work and RunJob returns with Result.Stopped true.
// Cancelling an idle slot is a no-op; a cancellation racing a completing
// job is discarded by the epoch check.
func (p *Pool) CancelJob(slot int) {
	if slot < 0 || slot >= p.cfg.Slots {
		return
	}
	p.mu.Lock()
	if p.slotBusy[slot] {
		p.cluster.Inject(mpi.Rank(slot), tagJobCancel, p.slotEpoch[slot])
	}
	p.mu.Unlock()
}

// Shutdown drains and tears down the pool: new RunJob calls are refused,
// still-running jobs are cancelled and waited for (they complete with
// Result.Stopped true), and only then is the teardown broadcast to the
// idle ranks — the pool is never dismantled with work in flight, exactly
// like the per-run protocol's end-of-run shutdown. Blocks until the
// cluster exits; safe to call more than once.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.runDone
		return
	}
	p.closed = true
	for slot := 0; slot < p.cfg.Slots; slot++ {
		if p.slotBusy[slot] {
			p.cluster.Inject(mpi.Rank(slot), tagJobCancel, p.slotEpoch[slot])
		}
	}
	for {
		busy := false
		for _, b := range p.slotBusy {
			busy = busy || b
		}
		if !busy {
			break
		}
		p.idle.Wait()
	}
	p.mu.Unlock()
	// From here on a worker connection ending is the drain, not a crash:
	// without this, a fast worker's goodbye can race the local bodies'
	// unwind and be misclassified as a loss (spurious churn counters, a
	// slot reopened for a replacement that would never hear the shutdown).
	if p.net != nil {
		p.net.Drain()
	}
	for r := 0; r < p.cluster.Size(); r++ {
		p.cluster.Inject(mpi.Rank(r), tagShutdown, nil)
	}
	<-p.runDone
}

// runSlot is a job-slot root rank: it idles until a job is injected, plays
// that job's top-level game against the shared pool, reports the result
// through the job's done callback, and goes back to idling. Its StatePool
// persists across jobs, so consecutive jobs of the same domain ship
// recycled candidate states.
func (p *Pool) runSlot(c mpi.Comm, slot int) {
	var pool core.StatePool
	var moves []game.Move
	for {
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagShutdown:
			// Teardown only ever arrives from outside the rank world
			// (Pool.Shutdown's Inject); a forged wire frame must not
			// dismantle a rank.
			if msg.From != mpi.External {
				break
			}
			return
		case tagJobStart:
			// jobStart has no codec kind, so only a local Inject can carry
			// one; a wire frame that lands on this tag is dropped.
			js, ok := msg.Payload.(jobStart)
			if !ok {
				break
			}
			js.done(p.playJob(c, slot, js, &pool, &moves))
		default:
			// A stale cancellation for a job that already completed (the
			// deadline timer racing the job's last score): drop it.
		}
	}
}

// poolSpecBranch is one speculated next-step branch of an async pool job:
// the per-run specBranch plus the rollout accounting that rides svcScore
// (counted into the job only if the branch is adopted, so Result.Jobs and
// Result.WorkUnits stay bit-identical to a non-speculating run).
type poolSpecBranch struct {
	step     int          // the speculated root step (current step + 1)
	par      int          // the leading move this branch assumes wins
	moves    []game.Move  // legal moves of the speculated child position
	shipped  []game.State // shipped child states, by candidate index
	scores   []float64
	scored   []bool
	got      int   // scores already received
	rollouts int64 // rollout accounting buffered until adoption
	units    int64
}

// playJob plays one job's top-level game. It is runRootPull with the work
// queue moved to the shared scheduler rank: candidates are offered on the
// slot's tag band, scores come back tagged with the job epoch, and
// cancellation (explicit, deadline or shutdown) abandons the queued
// candidates at the scheduler and drains the granted ones before
// returning, so the pool is never torn down with work in flight.
//
// With an effective Speculate width k > 0 the gather turns into the async
// pipelined root of runRootAsync: once at most k scores are missing, the
// top-k leaders' next-step candidates are offered ahead of the argmax
// under their real logical coordinates (so adopted scores are
// bit-identical); at resolution the winner's branch is adopted wholesale
// and the losers are cancelled — queued candidates purged at the
// scheduler, in-flight games aborted at the medians via svcSpecCancel,
// stray scores shed by the Step/Par guards below.
func (p *Pool) playJob(c mpi.Comm, slot int, js jobStart, pool *core.StatePool, movebuf *[]game.Move) (Result, error) {
	cfg := js.cfg
	res := Result{}
	st := cfg.Root.Clone()
	start := c.Now()
	// Effective speculation width: the job's own ask, defaulted from the
	// pool. FirstMoveOnly jobs never speculate — speculation pipelines
	// step boundaries, and a one-step job has none.
	k := cfg.Speculate
	if k == 0 {
		k = p.cfg.Speculate
	}
	if k < 0 || cfg.FirstMoveOnly {
		k = 0
	}
	params := jobParams{
		Slot:      slot,
		Epoch:     js.epoch,
		Level:     cfg.Level,
		Seed:      cfg.Seed,
		Memorize:  cfg.Memorize,
		JobScale:  cfg.jobScale(),
		Root:      c.Rank(),
		Eval:      cfg.Evaluator,
		Cache:     cfg.Cache,
		Speculate: k,
	}
	deadline := deadlineFunc(c, start, cfg.StopAfter)

	var shipped []game.State
	var scores []float64
	var scored []bool // per-candidate received flag, guards duplicate frames
	cancelled := false
	var failErr error

	curPar := -1              // move index played at the previous step
	var adopt *poolSpecBranch // winning branch carried into the next step
	var branches map[int]*poolSpecBranch
	if k > 0 {
		branches = make(map[int]*poolSpecBranch) // live speculation, by leader move
		defer func() { p.coll.addSpec(res.Speculated, res.SpecWasted) }()
	}
	specCancel := func(step, keep int) {
		c.Send(p.world.sched, p.world.space.For(slot, offSpecCancel),
			svcSpecCancel{Slot: slot, Epoch: js.epoch, Step: step, Keep: keep})
	}

	for step := 0; !cancelled; step++ {
		stepStart := c.Now()
		moves := st.LegalMoves((*movebuf)[:0])
		*movebuf = moves
		if len(moves) == 0 {
			break
		}
		if deadline() {
			res.Stopped = true
			break
		}

		got := 0
		if adopt != nil {
			// The winning branch was speculated: its candidates are already
			// offered (some granted, some even scored). LegalMoves is a
			// deterministic function of position content, so the branch's
			// enumeration is exactly the one just computed — adopt its
			// gather state wholesale instead of re-offering, and count its
			// buffered rollout accounting now that the work is real.
			shipped = append(shipped[:0], adopt.shipped...)
			scores = append(scores[:0], adopt.scores...)
			scored = append(scored[:0], adopt.scored...)
			got = adopt.got
			res.Jobs += adopt.rollouts
			res.WorkUnits += adopt.units
			p.coll.addRollouts(adopt.rollouts, adopt.units)
			adopt = nil
		} else {
			// Offer every candidate of the step to the shared scheduler.
			shipped = shipped[:0]
			scores = scores[:0]
			scored = scored[:0]
			for i, m := range moves {
				child := pool.Get(st)
				c.Work(core.CloneCost)
				child.Play(m)
				c.Work(1)
				shipped = append(shipped, child)
				scores = append(scores, 0)
				scored = append(scored, false)
				c.Send(p.world.sched, p.world.space.For(slot, offOffer),
					svcCandidate{Step: step, Cand: i, Par: curPar, P: params, State: child})
			}
		}

		// Gather scores; a cancellation mid-step abandons what is still
		// queued at the scheduler and keeps draining what was granted.
		want := len(moves)
		speculated := false
		abandon := func() {
			if !cancelled {
				cancelled = true
				res.Stopped = true
				c.Send(p.world.sched, p.world.space.For(slot, offAbandon),
					svcAbandon{Epoch: js.epoch, Step: step})
			}
		}
		// Payload type checks throughout the gather loop: frames arriving
		// over the wire carry remote-controlled payloads, and a
		// wrong-typed one must be dropped, not allowed to panic the
		// coordinator.
		for got < want && failErr == nil {
			msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
			switch msg.Tag {
			case tagStepScore:
				// Scores come from medians only; cancellations only from
				// outside the rank world (Inject); abandon acks only from
				// the scheduler. Anything else is a forged wire frame. The
				// step and Par checks shed a re-granted duplicate of an
				// earlier step whose original score survived a worker
				// crash, and a losing speculative branch's game coming
				// home (its waste is charged when the branch is purged).
				sc, ok := msg.Payload.(svcScore)
				if !ok || !isMedianRank(p.world, msg.From) || sc.Epoch != js.epoch {
					break // stray from a previous job; harmless
				}
				switch {
				case sc.Step == step && sc.Par == curPar:
					// Range and duplication guards: a duplicated frame must
					// not double-free the shipped state or end the gather
					// early (which would let a real score bleed into the
					// next step).
					if sc.Cand < 0 || sc.Cand >= len(scores) || scored[sc.Cand] {
						break
					}
					scored[sc.Cand] = true
					scores[sc.Cand] = sc.Score
					res.Jobs += sc.Rollouts
					res.WorkUnits += sc.Units
					p.coll.addRollouts(sc.Rollouts, sc.Units)
					pool.Put(shipped[sc.Cand])
					got++
				case sc.Step == step+1 && branches[sc.Par] != nil:
					// A speculative game finished before its step started:
					// buffer it against its branch. (branches is nil unless
					// k > 0, and a nil map read just returns nil.)
					b := branches[sc.Par]
					if sc.Cand < 0 || sc.Cand >= len(b.scores) || b.scored[sc.Cand] {
						break
					}
					b.scored[sc.Cand] = true
					b.scores[sc.Cand] = sc.Score
					b.rollouts += sc.Rollouts
					b.units += sc.Units
					b.got++
					pool.Put(b.shipped[sc.Cand])
				}
			case tagJobCancel:
				if epoch, ok := msg.Payload.(uint64); ok && msg.From == mpi.External && epoch == js.epoch {
					abandon()
				}
			case tagJobFail:
				// The pool degraded below its floor mid-job: fail fast. The
				// abandon is fire-and-forget — no ack wait, no drain — so
				// the failure is prompt even with zero live workers; the
				// scheduler's ack and any straggling scores are shed by the
				// next job's epoch/step guards, and this step's shipped
				// states are left to the garbage collector.
				if epoch, ok := msg.Payload.(uint64); ok && msg.From == mpi.External && epoch == js.epoch {
					failErr = ErrDegraded
					c.Send(p.world.sched, p.world.space.For(slot, offAbandon),
						svcAbandon{Epoch: js.epoch, Step: step})
				}
			case tagAbandonAck:
				if ack, ok := msg.Payload.(svcAbandonAck); ok && msg.From == p.world.sched && ack.Epoch == js.epoch {
					want -= ack.Dropped
				}
			case tagRegrant:
				// The scheduler re-queued candidates of this job that were
				// lost with a dead worker. Purely informational: the
				// re-granted candidates come back through tagStepScore like
				// any others, so the gather arithmetic is untouched.
				if rg, ok := msg.Payload.(svcRegrant); ok && msg.From == p.world.sched && rg.Epoch == js.epoch {
					res.Regranted += int64(rg.Count)
				}
			}
			if !cancelled && deadline() {
				abandon()
			}
			if k > 0 && !speculated && !cancelled && failErr == nil &&
				got >= 1 && want-got <= k {
				// Close enough to resolution: pick the top-k leaders by
				// partial score and offer their next-step candidates, so
				// idle medians start on step+1 while the stragglers finish.
				speculated = true
				for _, lead := range topLeaders(scores, scored, k) {
					parent := pool.Get(st)
					c.Work(core.CloneCost)
					parent.Play(moves[lead])
					c.Work(1)
					bm := parent.LegalMoves(nil)
					if len(bm) == 0 {
						pool.Put(parent)
						continue // terminal child: nothing to pipeline
					}
					b := &poolSpecBranch{step: step + 1, par: lead, moves: bm}
					for j, mv := range bm {
						child := pool.Get(parent)
						c.Work(core.CloneCost)
						child.Play(mv)
						c.Work(1)
						b.shipped = append(b.shipped, child)
						b.scores = append(b.scores, 0)
						b.scored = append(b.scored, false)
						c.Send(p.world.sched, p.world.space.For(slot, offOffer),
							svcCandidate{Step: step + 1, Cand: j, Par: lead, P: params, State: child})
						res.Speculated++
					}
					pool.Put(parent)
					branches[lead] = b
				}
			}
		}
		if failErr != nil {
			if res.Speculated > 0 {
				specCancel(-1, -1)
			}
			res.Degraded = true
			res.Elapsed = c.Now() - start
			return res, failErr
		}
		if cancelled {
			break
		}

		// Play the best move; ties go to the first-seen move, matching the
		// sequential search and the per-run root.
		best := argmax(scores)
		if k > 0 {
			// Resolve the speculation: adopt the winner's branch, charge
			// the losers and cancel their queued and in-flight work. A
			// loser's shipped states are left to the garbage collector,
			// never recycled — a median may still be playing them.
			losers := 0
			for par, b := range branches {
				if par == best {
					adopt = b
				} else {
					res.SpecWasted += int64(len(b.moves))
					losers++
				}
				delete(branches, par)
			}
			if losers > 0 {
				specCancel(step+1, best)
			}
		}
		st.Play(moves[best])
		c.Work(1)
		curPar = best
		res.Steps++
		stepD := c.Now() - stepStart
		res.StepLatency = append(res.StepLatency, stepD)
		p.coll.addStepLatency(stepD)
		if len(res.Sequence) == 0 {
			res.FirstMove = moves[best]
			if cfg.FirstMoveOnly {
				res.Score = scores[best]
				res.Sequence = append(res.Sequence, moves[best])
				res.Elapsed = c.Now() - start
				res.Degraded = p.world.anyDead()
				return res, nil
			}
		}
		res.Sequence = append(res.Sequence, moves[best])
		if js.progress != nil {
			js.progress(Progress{
				Steps:     res.Steps,
				BestScore: scores[best],
				Sequence:  append([]game.Move(nil), res.Sequence...),
				Elapsed:   c.Now() - start,
			})
		}
	}

	// Whatever speculation is still pending — the last gather's branches
	// (the game ended, their positions will never be played) or an adopted
	// branch a cancellation cut off — is moot: charge it and tell the
	// scheduler and medians to drop and abort it. The slot never waits for
	// speculative scores, so nothing here blocks; strays are shed by the
	// next job's epoch guard.
	if k > 0 {
		stale := 0
		for par, b := range branches {
			res.SpecWasted += int64(len(b.moves))
			delete(branches, par)
			stale++
		}
		if adopt != nil {
			res.SpecWasted += int64(len(adopt.moves))
			adopt = nil
			stale++
		}
		if stale > 0 {
			specCancel(-1, -1)
		}
	}

	res.Score = st.Score()
	res.Elapsed = c.Now() - start
	res.Degraded = p.world.anyDead()
	return res, nil
}

// runScheduler owns the per-job candidate queues: the multi-root form of
// PR 2's PullSource. Roots offer candidates on their slot's tag band;
// idle medians pull with flat work requests; grants walk the non-empty
// job queues round-robin, so every running job makes progress even while
// a wide job floods the pool. An abandon message drops a job's queued
// candidates and acks the exact count, which is what lets the root's
// drain arithmetic converge under cancellation.
//
// Fault tolerance: the scheduler tracks which grants are outstanding per
// median, so a worker-loss notice can re-queue the dead medians' unscored
// candidates at the head of their jobs' queues (the same logical
// coordinates are re-granted, so rng.Fold keying keeps every re-executed
// score bit-identical). The bookkeeping costs no extra messages — it
// exploits the pull protocol's own ordering. A median's lifecycle is
//
//	recv grant Gₖ → send work request → play Gₖ → send score(Gₖ) → recv Gₖ₊₁
//
// so a work request from median M proves M has started its latest grant,
// which it could only do after sending the score of the grant before it —
// and because the score and the work request ride the same FIFO stream
// (the score is delivered to the slot's mailbox before the scheduler ever
// sees the request), "score sent" is "score delivered". A request
// therefore retires all but the newest outstanding grant; at most the
// grant being played and one prefetched successor are ever at risk, and
// exactly those are re-queued when the worker dies. A re-queued candidate
// whose score did arrive (lost worker, surviving score) is replayed for
// nothing — the slot's duplicate guard sheds the second score — but never
// corrupts state.
func (p *Pool) runScheduler(c mpi.Comm) {
	queues := make([][]svcCandidate, p.cfg.Slots)
	granted := make(map[mpi.Rank][]svcCandidate) // outstanding grants per median
	// cancels holds the latest speculation cancel per slot: applied to the
	// queue when it arrives, and again to a dead worker's grants when they
	// are re-queued (a cancelled speculative grant that died with its
	// worker must not be resurrected — nobody is waiting for its score).
	cancels := make([]svcSpecCancel, p.cfg.Slots)
	var waiting []mpi.Rank
	next := 0
	total := 0

	pick := func() (svcCandidate, bool) {
		if total == 0 {
			return svcCandidate{}, false
		}
		for i := 0; i < p.cfg.Slots; i++ {
			s := (next + i) % p.cfg.Slots
			if len(queues[s]) > 0 {
				cand := queues[s][0]
				queues[s] = queues[s][1:]
				if len(queues[s]) == 0 {
					queues[s] = nil // release the drained backing array
				}
				total--
				next = (s + 1) % p.cfg.Slots
				return cand, true
			}
		}
		return svcCandidate{}, false
	}
	grant := func(to mpi.Rank, cand svcCandidate) {
		granted[to] = append(granted[to], cand)
		c.Send(to, tagGrant, cand)
	}

	for {
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagShutdown:
			if msg.From != mpi.External {
				continue // forged wire frame; see runSlot
			}
			return
		case tagWorkReq:
			// Only medians pull work. A forged request from any other
			// rank would swallow a granted candidate (nothing else plays
			// candidates or reports scores), wedging the owning job.
			if !isMedianRank(p.world, msg.From) {
				continue
			}
			// The request proves every outstanding grant but the newest
			// one has been scored (see the function comment).
			if g := granted[msg.From]; len(g) > 1 {
				granted[msg.From] = append(g[:0], g[len(g)-1])
			}
			if cand, ok := pick(); ok {
				grant(msg.From, cand)
			} else {
				waiting = append(waiting, msg.From)
			}
			p.coll.sampleDepth(total)
			continue
		case tagRanksLost, tagRanksDead:
			// A worker died (tagRanksLost) or was abandoned for good
			// (tagRanksDead). Re-queue its medians' outstanding grants at
			// the head of the owning jobs' queues, drop its medians from
			// the waiting list (a replacement announces itself with a
			// fresh work request), and tell the owning slots how much work
			// churned. For an abandonment the repair is usually a no-op —
			// the loss notice already ran when the worker first died, and
			// a dead median can send no new work requests — but replaying
			// it is free and keeps the invariant local: after either
			// notice, no grant is parked on a rank in [Lo, Hi).
			lost, ok := msg.Payload.(svcRanksLost)
			if !ok || msg.From != mpi.External {
				continue // forged wire frame: only the pool declares losses
			}
			type jobKey struct {
				root  mpi.Rank
				epoch uint64
			}
			regrants := map[jobKey]int{} // owning job -> re-queued count
			for m := lost.Lo; m < lost.Hi; m++ {
				g := granted[m]
				if len(g) == 0 {
					continue
				}
				delete(granted, m)
				// Head insertion, oldest grant first, so re-granted work
				// runs before anything queued behind it. Grants covered by
				// their slot's latest speculation cancel die with the
				// worker instead: their branch lost, no gather counts them.
				for i := len(g) - 1; i >= 0; i-- {
					cand := g[i]
					if specCovered(cancels[cand.P.Slot], cand) {
						continue
					}
					queues[cand.P.Slot] = append([]svcCandidate{cand}, queues[cand.P.Slot]...)
					total++
					regrants[jobKey{cand.P.Root, cand.P.Epoch}]++
				}
			}
			kept := waiting[:0]
			for _, m := range waiting {
				if m < lost.Lo || m >= lost.Hi {
					kept = append(kept, m)
				}
			}
			waiting = kept
			// Surviving waiting medians can take the re-queued work now.
			for len(waiting) > 0 && total > 0 {
				cand, _ := pick()
				grant(waiting[0], cand)
				waiting = waiting[:copy(waiting, waiting[1:])]
			}
			for k, n := range regrants {
				p.coll.addRegranted(n)
				c.Send(k.root, tagRegrant, svcRegrant{Epoch: k.epoch, Count: n})
			}
			p.coll.sampleDepth(total)
			continue
		}
		slot, off, ok := p.world.space.Split(msg.Tag)
		if !ok {
			continue
		}
		// Band messages only come from the band's own slot rank — a wire
		// frame claiming another job's band could abandon or pollute that
		// tenant's queue.
		if msg.From != mpi.Rank(slot) {
			continue
		}
		switch off {
		case offOffer:
			cand, ok := msg.Payload.(svcCandidate)
			if !ok {
				continue
			}
			if len(waiting) > 0 {
				to := waiting[0]
				waiting = waiting[:copy(waiting, waiting[1:])]
				grant(to, cand)
			} else {
				queues[slot] = append(queues[slot], cand)
				total++
			}
			p.coll.sampleDepth(total)
		case offAbandon:
			ab, ok := msg.Payload.(svcAbandon)
			if !ok {
				continue
			}
			// Drop everything the epoch still has queued, but ack only the
			// gathered step's count: speculative next-step candidates never
			// entered the slot's drain arithmetic.
			dropped, removed := 0, 0
			kept := queues[slot][:0]
			for _, cd := range queues[slot] {
				if cd.P.Epoch == ab.Epoch {
					removed++
					if cd.Step == ab.Step {
						dropped++
					}
					continue
				}
				kept = append(kept, cd)
			}
			queues[slot] = kept
			total -= removed
			c.Send(mpi.Rank(slot), tagAbandonAck, svcAbandonAck{Epoch: ab.Epoch, Dropped: dropped})
		case offSpecCancel:
			cn, ok := msg.Payload.(svcSpecCancel)
			if !ok || cn.Slot != slot {
				continue
			}
			cancels[slot] = cn
			removed := 0
			kept := queues[slot][:0]
			for _, cd := range queues[slot] {
				if specCovered(cn, cd) {
					removed++
					continue
				}
				kept = append(kept, cd)
			}
			queues[slot] = kept
			total -= removed
			p.coll.sampleDepth(total)
			// Re-broadcast so every median can skip covered buffered grants
			// and abort covered games mid-play. Sent to all medians: a lost
			// worker's copy queues for its replacement, an abandoned one's
			// is dropped by the transport. No ack — see svcSpecCancel.
			for _, m := range p.world.medians {
				c.Send(m, tagSpecCancel, cn)
			}
		}
	}
}

// medianComm is the event-driven heart of runPoolMedian: every Recv is a
// wildcard, dispatched by tag, so a worker-loss notice can never be
// starved behind a selective wait — the flaw that would wedge a median
// waiting on a result from a client that no longer exists. Messages that
// belong to a later phase (a prefetched grant mid-game) are buffered;
// stale ones (an assign answering a dead predecessor's request, a result
// from a superseded step) are absorbed without corrupting state.
type medianComm struct {
	c    mpi.Comm
	w    *poolWorld
	idle func(time.Duration)

	grants []svcCandidate // prefetched/stale grants awaiting play
	// clients holds dispatcher assigns received but not yet spent on a
	// job, in arrival order. Normally at most one (one request in flight
	// at a time); a stale assign flushed to a replacement median (whose
	// dead predecessor requested it) adds a surplus, which is spent on
	// the next outgoing jobs so the reserved client is never stranded.
	clients []mpi.Rank
	// reqs counts our own unanswered client requests.
	reqs int
	shut bool // shutdown broadcast seen; unwind without new work
	// cancels holds the latest speculation cancel per slot (nil until the
	// first async job cancels a branch — lockstep pools never pay for the
	// map). Consulted before playing a buffered grant and after every recv
	// during a game, so a losing branch's grant is skipped or its game
	// aborted instead of played to completion for a score nobody wants.
	cancels map[int]svcSpecCancel
}

// covered reports whether cand is mooted by its slot's latest cancel.
func (mc *medianComm) covered(cand svcCandidate) bool {
	if mc.cancels == nil {
		return false
	}
	return specCovered(mc.cancels[cand.P.Slot], cand)
}

// recv is the single blocking wait: it meters idle time and handles the
// messages every phase treats identically.
func (mc *medianComm) recv() mpi.Msg {
	t0 := mc.c.Now()
	msg := mc.c.Recv(mpi.AnyRank, mpi.AnyTag)
	mc.idle(mc.c.Now() - t0)
	switch msg.Tag {
	case tagShutdown:
		if msg.From == mpi.External {
			mc.shut = true
		}
	case tagGrant:
		if cand, ok := msg.Payload.(svcCandidate); ok && msg.From == mc.w.sched {
			mc.grants = append(mc.grants, cand)
		}
	case tagAssign:
		if client, ok := msg.Payload.(mpi.Rank); ok && msg.From == mc.w.disp {
			mc.clients = append(mc.clients, client)
			if mc.reqs > 0 {
				mc.reqs--
			}
		}
	case tagRanksDead:
		// Abandonment notice: record the dead range in this process's own
		// poolWorld (a remote worker's world is a separate instance from
		// the coordinator's, so the knowledge must arrive by message, not
		// by shared memory). The spend path consults it before handing a
		// rollout to a client.
		if lost, ok := msg.Payload.(svcRanksLost); ok && msg.From == mpi.External {
			mc.w.markDead(lost.Lo, lost.Hi)
		}
	case tagRanksRevived:
		if lost, ok := msg.Payload.(svcRanksLost); ok && msg.From == mpi.External {
			mc.w.revive(lost.Lo, lost.Hi)
		}
	case tagSpecCancel:
		// Only the scheduler cancels speculation; latest per slot wins (a
		// new cancel supersedes the old one's step).
		if cn, ok := msg.Payload.(svcSpecCancel); ok && msg.From == mc.w.sched {
			if mc.cancels == nil {
				mc.cancels = make(map[int]svcSpecCancel)
			}
			mc.cancels[cn.Slot] = cn
		}
	}
	return msg
}

// runPoolMedian is the persistent form of the per-run median process:
// pull a candidate from the shared scheduler, play its full level-(ℓ−1)
// game with one client rollout per candidate move, report the score to
// the owning slot, repeat. One work request is kept in flight while a
// game is being played (the PR 2 prefetch window at its default of 1), so
// the next grant travels during computation. The median's StatePool and
// move buffers persist across jobs and domains.
//
// The body is written against mpi.Comm and the poolWorld layout only, so
// the identical function runs as a coordinator goroutine (wall pool) or
// inside a pnmcs-worker process (net pool). idle receives each
// Recv-blocked interval; a remote worker passes its own sink.
//
// Fault tolerance: each in-flight rollout remembers which client it went
// to; a worker-loss notice (tagRanksLost) re-enqueues the rollouts lost
// with dead clients, and they are re-requested and re-sent with the same
// coordinate-derived key — so the replayed score is bit-identical and a
// late duplicate (the original job flushed to the dead client's
// replacement) is shed by the key/seq guard. The rollout's rng key also
// disambiguates steps: only a result echoing the exact key issued for a
// seq in the current step is accepted, so churn can never smuggle a stale
// step's score into a later one.
func runPoolMedian(c mpi.Comm, w *poolWorld, idle func(time.Duration)) {
	var pool core.StatePool
	var moves []game.Move
	var shipped []game.State
	var scores []float64
	var scored []bool    // per-candidate received flag, guards duplicate frames
	var keys []uint64    // per-candidate rollout rng key (travels in svcJob)
	var expect []uint64  // per-candidate result identity echo (resultKey)
	var owner []mpi.Rank // per-candidate client the job was sent to (-1 = none)
	var sendq []int      // candidate seqs awaiting a client
	mc := &medianComm{c: c, w: w, idle: idle}

	c.Send(w.sched, tagWorkReq, nil)
	for {
		// Take the next grant: buffered from a previous phase, or awaited.
		var cand svcCandidate
		for {
			if mc.shut {
				return
			}
			if len(mc.grants) > 0 {
				cand = mc.grants[0]
				mc.grants = mc.grants[:copy(mc.grants, mc.grants[1:])]
				break
			}
			mc.recv()
		}
		// Prefetch: ask for the next candidate before playing this one.
		// Sent at play start, never at frame arrival — the scheduler's
		// outstanding-grant retirement depends on that ordering.
		c.Send(w.sched, tagWorkReq, nil)
		if mc.covered(cand) {
			// A cancelled speculative grant: skip it without playing or
			// scoring. The work request above still retires the
			// scheduler's grant bookkeeping, exactly as if it were played.
			continue
		}

		st := cand.State
		rollouts, units := int64(0), int64(0)
		aborted := false
	game:
		for t := 0; ; t++ {
			moves = st.LegalMoves(moves[:0])
			if len(moves) == 0 {
				break
			}
			shipped = shipped[:0]
			scores = scores[:0]
			scored = scored[:0]
			keys = keys[:0]
			expect = expect[:0]
			owner = owner[:0]
			sendq = sendq[:0]
			for j, mv := range moves {
				child := pool.Get(st)
				c.Work(core.CloneCost)
				child.Play(mv)
				c.Work(1)
				shipped = append(shipped, child)
				scores = append(scores, 0)
				scored = append(scored, false)
				key := rng.Fold(uint64(cand.Step), uint64(cand.Cand), uint64(t), uint64(j))
				keys = append(keys, key)
				expect = append(expect, resultKey(cand.P, cand.Par, key))
				owner = append(owner, -1)
				sendq = append(sendq, j)
			}

			for got := 0; got < len(moves); {
				// Spend assigned clients on queued rollouts, then keep one
				// client request in flight while anything remains unsent.
				for len(mc.clients) > 0 && len(sendq) > 0 {
					client := mc.clients[0]
					mc.clients = mc.clients[:copy(mc.clients, mc.clients[1:])]
					if mc.w.isDead(client) {
						// An assign that was in flight when its client's
						// worker was abandoned: a job sent there would
						// vanish. Discard the assign; the request counter
						// is already settled, so the re-request below
						// fetches a live replacement.
						continue
					}
					j := sendq[0]
					sendq = sendq[:copy(sendq, sendq[1:])]
					owner[j] = client
					c.Send(client, tagJob, svcJob{Key: keys[j], Seq: j, Par: cand.Par, P: cand.P, State: shipped[j]})
				}
				if len(sendq) > 0 && mc.reqs == 0 {
					c.Send(w.disp, tagRequest, shipped[sendq[0]].MovesPlayed())
					mc.reqs++
				}

				msg := mc.recv()
				if mc.shut {
					return
				}
				if mc.covered(cand) {
					// The branch this game belongs to just lost its argmax
					// (or its job ended): abort without scoring. In-flight
					// rollouts on clients resolve harmlessly — their results
					// are shed by the next game's key guard — and unscored
					// shipped states are left to the garbage collector (a
					// client may still be reading them).
					aborted = true
					break game
				}
				switch msg.Tag {
				case tagResult:
					res, ok := msg.Payload.(svcResult)
					if !ok || !isClientRank(w, msg.From) ||
						res.Seq < 0 || res.Seq >= len(scores) ||
						scored[res.Seq] || res.Key != expect[res.Seq] {
						continue // wrong-typed, forged, stale or duplicated wire frame
					}
					scored[res.Seq] = true
					scores[res.Seq] = res.Score
					owner[res.Seq] = -1
					rollouts++
					units += res.Units
					pool.Put(shipped[res.Seq])
					got++
				case tagRanksLost, tagRanksDead:
					lost, ok := msg.Payload.(svcRanksLost)
					if !ok || msg.From != mpi.External {
						continue // forged wire frame: only the pool declares losses
					}
					// Re-enqueue every unscored rollout that was sent to a
					// now-dead (or now-abandoned) client; the loop head
					// re-requests and re-sends them under their original
					// keys, so the replayed scores stay bit-identical.
					for j, cl := range owner {
						if cl >= lost.Lo && cl < lost.Hi && !scored[j] {
							owner[j] = -1
							sendq = append(sendq, j)
						}
					}
				}
			}
			st.Play(moves[argmax(scores)])
			c.Work(1)
		}
		if aborted {
			continue
		}
		c.Send(cand.P.Root, tagStepScore, svcScore{
			Epoch: cand.P.Epoch, Step: cand.Step, Cand: cand.Cand, Par: cand.Par,
			Score: st.Score(), Rollouts: rollouts, Units: units,
		})
	}
}

// runPoolClient is the persistent rollout worker. Jobs of any domain,
// level and memorization mix arrive interleaved; the rollout's random
// stream is reseeded per job from (job seed, logical coordinates), so a
// given candidate's score is identical no matter which client executes
// it, in which order, or what ran on this client before — the property
// the equivalence tests pin against solo RunWall runs on both the wall
// and net transports. Searchers (one per memorization mode, sharing
// nothing) and their scratch StatePools persist across jobs. Like
// runPoolMedian, the body is transport-blind and runs unchanged in the
// coordinator or in a pnmcs-worker process. tc is the process-shared
// transposition cache; jobs opt in per job (jb.P.Cache), and because a
// cached job's sub-searches draw from position-derived rng streams the
// cache is shared across jobs and clients without coupling their results
// to each other's hit patterns.
func runPoolClient(c mpi.Comm, w *poolWorld, batch *evalBatcher, tc *cache.Cache, cacheVerify bool, idle func(time.Duration)) {
	meter := &unitMeter{}
	searchers := map[bool]*core.Searcher{}
	searcherFor := func(memorize bool) *core.Searcher {
		s, ok := searchers[memorize]
		if !ok {
			s = core.NewSearcher(rng.New(0), core.Options{Meter: meter, Memorize: memorize})
			searchers[memorize] = s
		}
		return s
	}

	for {
		t0 := c.Now()
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		idle(c.Now() - t0)
		switch msg.Tag {
		case tagShutdown:
			if msg.From != mpi.External {
				continue // forged wire frame; see runSlot
			}
			return
		case tagJob:
			jb, ok := msg.Payload.(svcJob)
			if !ok || !isMedianRank(w, msg.From) || jb.State == nil || jb.P.Level < 2 {
				// Wrong-typed or degenerate wire frame. Still announce
				// availability: the dispatcher must not lose this client
				// from its free list over a frame the client refused.
				c.Send(w.disp, tagFree, nil)
				continue
			}
			median := msg.From

			meter.units = 0
			s := searcherFor(jb.P.Memorize)
			// Per-job evaluator wiring: jobs of differing evaluator
			// configurations interleave on one persistent searcher, so the
			// evaluator is swapped per job like the rng stream is reseeded.
			// The batched facade blocks this rollout while its batch
			// coalesces with the other client ranks' submissions.
			if jb.P.Eval != "" {
				s.SetEvaluator(batch.evaluatorFor(jb.P.Eval))
			} else {
				s.SetEvaluator(nil)
			}
			s.Reseed(jb.P.Seed, jb.Key)
			var res core.Result
			if jb.P.Cache {
				s.SetCache(tc, cache.Scope(jb.P.Eval, jb.P.Memorize, 0), cacheVerify)
				res = s.NestedCached(jb.State, jb.P.Level-2)
				s.SetCache(nil, 0, false)
			} else {
				res = s.Nested(jb.State, jb.P.Level-2)
			}
			c.Work(meter.units * jb.P.JobScale)

			c.Send(w.disp, tagFree, nil)
			c.Send(median, tagResult, svcResult{
				Key: resultKey(jb.P, jb.Par, jb.Key), Seq: jb.Seq, Score: res.Score, Units: meter.units,
			})
		}
	}
}
