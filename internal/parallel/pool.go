package parallel

// Shared worker-pool engine: the long-lived, multi-job form of the paper's
// cluster.
//
// Execute builds a goroutine cluster per run and tears it down with the
// result — the right shape for reproducing the paper's tables, and the
// wrong one for a service: nothing can run two searches at once, and the
// warm state PR 1 and PR 2 built up (StatePool free lists, searcher
// scratch buffers, rng streams) dies with every run. Pool keeps one
// mpi.WallCluster alive for its whole lifetime and multiplexes any number
// of jobs onto it:
//
//   - S job-slot ranks each play the top-level game of at most one job at
//     a time (job-scoped roots). A slot is driven from outside the rank
//     world through mpi.Inject: job starts, cancellations and the
//     shutdown broadcast arrive as External messages.
//   - One scheduler rank owns the per-job candidate queues — the pull
//     protocol of PR 2 lifted to many simultaneous roots. Roots offer
//     candidates on their slot's tag band (mpi.TagSpace), idle medians
//     pull with work requests, and grants are served round-robin across
//     jobs so one wide job cannot starve the others.
//   - One dispatcher rank assigns clients to median requests, reusing the
//     demand-driven dispatcher (availability-tracked clients, pending
//     jobs served longest-expected-first under LastMinute).
//   - M median ranks and C client ranks are built once and reused across
//     every job: their StatePools, searchers and move buffers stay warm,
//     and per-job parameters (level, seed, memorization) travel with the
//     candidates instead of living in a per-run Config.
//
// Determinism: client rollouts are keyed by their logical job coordinates
// (rng.Fold over root step, root candidate, median step, median
// candidate) and the job's own seed, exactly as in RunWall — so a job's
// score and sequence are bit-identical to the same Config run solo
// through RunWall, no matter how many other jobs share the pool or where
// its rollouts execute. The service-level equivalence tests pin this.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/rng"
)

// Service protocol tags, kept clear of the per-run protocol's flat tags.
// Messages addressed to a specific slot, median or client rank use these;
// messages multiplexed onto the shared scheduler use the per-slot tag
// bands of Pool.space.
const (
	tagJobStart   mpi.Tag = 64 + iota // External -> slot: start this job
	tagJobCancel                      // External -> slot: cancel epoch
	tagGrant                          // scheduler -> median: candidate to play
	tagStepScore                      // median -> slot: finished game score
	tagAbandonAck                     // scheduler -> slot: dropped-candidate count
)

// Per-slot tag-band offsets (see mpi.TagSpace): the scheduler tells jobs
// apart by the band their messages arrive on.
const (
	offOffer   mpi.Tag = iota // slot -> scheduler: candidate offered
	offAbandon                // slot -> scheduler: drop my queued candidates
	numOffsets
)

// tagBandBase is the first tag of slot 0's band.
const tagBandBase mpi.Tag = 128

// jobParams are the per-job knobs that travel with every candidate and
// every client job, replacing the per-run Config the workers can no
// longer close over.
type jobParams struct {
	Slot     int
	Epoch    uint64
	Level    int
	Seed     uint64
	Memorize bool
	JobScale int64
	Root     mpi.Rank // the slot rank that owns the job
}

// svcCandidate is the slot→scheduler→median payload: one candidate
// position of a root step, tagged with its logical coordinates and the
// owning job.
type svcCandidate struct {
	Step  int
	Cand  int
	P     jobParams
	State game.State
}

// svcJob is the median→client payload: a position to roll out and the
// parameters of the job it belongs to.
type svcJob struct {
	Key   uint64
	Seq   int
	P     jobParams
	State game.State
}

// svcScore is the median→slot result: the final score of the Cand-th
// candidate of the job's current root step.
type svcScore struct {
	Epoch uint64
	Cand  int
	Score float64
}

// svcAbandonAck is the scheduler→slot answer to an abandon: how many of
// the job's candidates were still queued (and are now dropped). The
// epoch lets a slot discard an ack that outlived its job.
type svcAbandonAck struct {
	Epoch   uint64
	Dropped int
}

// Progress is a streaming snapshot of a running job, delivered to the
// RunJob progress callback after every completed root step.
type Progress struct {
	// Steps is the number of root moves played so far.
	Steps int
	// BestScore is the lower-level evaluation backing the move just
	// played — the best score the search has seen for the current line.
	BestScore float64
	// Sequence is a copy of the root's game so far.
	Sequence []game.Move
	// Elapsed is wall time since the job started.
	Elapsed time.Duration
}

// PoolConfig sizes a Pool.
type PoolConfig struct {
	// Slots is the number of jobs the pool can run concurrently (job-slot
	// root ranks). Default 4.
	Slots int
	// Medians is the number of shared median workers. Default 4.
	Medians int
	// Clients is the number of shared rollout workers. Default 8.
	Clients int
	// Algo orders the dispatcher's pending-job queue (LastMinute serves
	// the longest-expected job first). A pool-level policy: jobs share one
	// dispatcher, and scheduling never changes scores (see package doc).
	Algo Algorithm
}

func (c *PoolConfig) withDefaults() PoolConfig {
	out := *c
	if out.Slots <= 0 {
		out.Slots = 4
	}
	if out.Medians <= 0 {
		out.Medians = 4
	}
	if out.Clients <= 0 {
		out.Clients = 8
	}
	return out
}

// PoolMetrics aggregates the pool's lifetime counters: the idle and
// queue-depth instrumentation PR 2 added to Result, accumulated across
// every job the pool has served.
type PoolMetrics struct {
	// Jobs is the number of client rollouts executed.
	Jobs int64
	// WorkUnits is the total metered CPU work across client rollouts.
	WorkUnits int64
	// MedianIdle / ClientIdle map each worker to its cumulative
	// Recv-blocked time — waiting for a grant, an assignment or a result.
	MedianIdle []time.Duration
	ClientIdle []time.Duration
	// QueueDepthMax / QueueDepthMean profile the scheduler's ready queue
	// (candidates offered but not yet granted) across all jobs, sampled
	// at every offer/request transition.
	QueueDepthMax  int
	QueueDepthMean float64
}

// poolCollector is the shared-memory side of the pool's instrumentation,
// written by worker goroutines and read by Metrics.
type poolCollector struct {
	mu           sync.Mutex
	jobs         int64
	units        int64
	slotJobs     []int64 // per-slot rollout count, reset per job
	slotUnits    []int64
	medianIdle   []time.Duration
	clientIdle   []time.Duration
	depthSamples int64
	depthSum     int64
	depthMax     int
}

func (co *poolCollector) addRollout(slot int, units int64) {
	co.mu.Lock()
	co.jobs++
	co.units += units
	co.slotJobs[slot]++
	co.slotUnits[slot] += units
	co.mu.Unlock()
}

func (co *poolCollector) takeSlot(slot int) (jobs, units int64) {
	co.mu.Lock()
	jobs, units = co.slotJobs[slot], co.slotUnits[slot]
	co.slotJobs[slot], co.slotUnits[slot] = 0, 0
	co.mu.Unlock()
	return jobs, units
}

func (co *poolCollector) addMedianIdle(i int, d time.Duration) {
	co.mu.Lock()
	co.medianIdle[i] += d
	co.mu.Unlock()
}

func (co *poolCollector) addClientIdle(i int, d time.Duration) {
	co.mu.Lock()
	co.clientIdle[i] += d
	co.mu.Unlock()
}

func (co *poolCollector) sampleDepth(d int) {
	co.mu.Lock()
	co.depthSamples++
	co.depthSum += int64(d)
	if d > co.depthMax {
		co.depthMax = d
	}
	co.mu.Unlock()
}

// Pool is a persistent wall-clock worker pool serving many search jobs.
// Construct with NewPool, run jobs with RunJob (one per slot at a time),
// and tear down with Shutdown. All methods are safe for concurrent use.
type Pool struct {
	cfg     PoolConfig
	cluster *mpi.WallCluster
	space   mpi.TagSpace
	coll    *poolCollector

	schedRank  mpi.Rank
	dispRank   mpi.Rank
	medianRank []mpi.Rank
	clientRank []mpi.Rank

	runDone chan struct{}

	mu        sync.Mutex
	idle      *sync.Cond // signalled when a slot goes idle
	closed    bool
	slotBusy  []bool
	slotEpoch []uint64
}

// jobStart is the payload injected at a slot rank to begin a job. done
// and progress are ordinary Go callbacks: the pool is in-process, so the
// boundary between the rank world and the caller is a function call, not
// a wire format.
type jobStart struct {
	epoch    uint64
	cfg      Config
	progress func(Progress)
	done     func(Result, error)
}

// ErrPoolClosed is returned by RunJob once Shutdown has begun.
var ErrPoolClosed = fmt.Errorf("parallel: pool is shut down")

// NewPool builds the worker cluster — slots, scheduler, dispatcher,
// medians, clients — and starts it running. The pool idles until jobs are
// submitted with RunJob.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg = cfg.withDefaults()
	size := cfg.Slots + 2 + cfg.Medians + cfg.Clients
	p := &Pool{
		cfg:     cfg,
		cluster: mpi.NewWallCluster(size),
		space:   mpi.TagSpace{Base: tagBandBase, Width: numOffsets, Bands: cfg.Slots},
		coll: &poolCollector{
			slotJobs:   make([]int64, cfg.Slots),
			slotUnits:  make([]int64, cfg.Slots),
			medianIdle: make([]time.Duration, cfg.Medians),
			clientIdle: make([]time.Duration, cfg.Clients),
		},
		runDone:   make(chan struct{}),
		slotBusy:  make([]bool, cfg.Slots),
		slotEpoch: make([]uint64, cfg.Slots),
	}
	p.idle = sync.NewCond(&p.mu)

	// Rank map: slots first, then scheduler, dispatcher, medians, clients.
	next := mpi.Rank(cfg.Slots)
	p.schedRank = next
	next++
	p.dispRank = next
	next++
	for i := 0; i < cfg.Medians; i++ {
		p.medianRank = append(p.medianRank, next)
		next++
	}
	for i := 0; i < cfg.Clients; i++ {
		p.clientRank = append(p.clientRank, next)
		next++
	}

	for slot := 0; slot < cfg.Slots; slot++ {
		slot := slot
		p.cluster.Start(mpi.Rank(slot), func(c mpi.Comm) { p.runSlot(c, slot) })
	}
	p.cluster.Start(p.schedRank, func(c mpi.Comm) { p.runScheduler(c) })
	// The demand dispatcher is reused verbatim: it only needs the client
	// rank list and the policy ordering.
	dispLay := cluster.Layout{Clients: append([]mpi.Rank(nil), p.clientRank...)}
	dispCfg := &Config{Algo: cfg.Algo}
	longest := cfg.Algo == LastMinute
	p.cluster.Start(p.dispRank, func(c mpi.Comm) {
		runDemandDispatcher(c, dispLay, dispCfg, longest)
	})
	for i := 0; i < cfg.Medians; i++ {
		i := i
		p.cluster.Start(p.medianRank[i], func(c mpi.Comm) { p.runMedian(c, i) })
	}
	for i := 0; i < cfg.Clients; i++ {
		i := i
		p.cluster.Start(p.clientRank[i], func(c mpi.Comm) { p.runClient(c, i) })
	}

	go func() {
		p.cluster.Run()
		close(p.runDone)
	}()
	return p, nil
}

// Slots returns the number of concurrent job slots.
func (p *Pool) Slots() int { return p.cfg.Slots }

// Metrics snapshots the pool's lifetime instrumentation.
func (p *Pool) Metrics() PoolMetrics {
	co := p.coll
	co.mu.Lock()
	defer co.mu.Unlock()
	m := PoolMetrics{
		Jobs:          co.jobs,
		WorkUnits:     co.units,
		MedianIdle:    append([]time.Duration(nil), co.medianIdle...),
		ClientIdle:    append([]time.Duration(nil), co.clientIdle...),
		QueueDepthMax: co.depthMax,
	}
	if co.depthSamples > 0 {
		m.QueueDepthMean = float64(co.depthSum) / float64(co.depthSamples)
	}
	return m
}

// JobHandle tracks one started job; Wait blocks for its result.
type JobHandle struct {
	p     *Pool
	slot  int
	timer *time.Timer
	ch    chan jobOutcome
}

type jobOutcome struct {
	res Result
	err error
}

// StartJob launches cfg on the given slot without blocking: once it
// returns, the job is cancellable through CancelJob. The caller owns slot
// scheduling — a slot runs one job at a time, and starting a second job
// on a busy slot is an error. progress, when non-nil, is invoked from the
// job's root goroutine after every completed step. The caller must Wait
// on the returned handle.
func (p *Pool) StartJob(slot int, cfg Config, progress func(Progress)) (*JobHandle, error) {
	if slot < 0 || slot >= p.cfg.Slots {
		return nil, fmt.Errorf("parallel: slot %d outside pool of %d", slot, p.cfg.Slots)
	}
	if cfg.Level < 2 {
		return nil, fmt.Errorf("parallel: level %d < 2 cannot be distributed (root, median, client need one level each)", cfg.Level)
	}
	if cfg.Root == nil {
		return nil, fmt.Errorf("parallel: no root position")
	}

	h := &JobHandle{p: p, slot: slot, ch: make(chan jobOutcome, 1)}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if p.slotBusy[slot] {
		p.mu.Unlock()
		return nil, fmt.Errorf("parallel: slot %d already running a job", slot)
	}
	// Per-slot rollout counters start from zero: the previous job drained
	// every outstanding rollout before completing. Reset only once the
	// slot is provably ours — an erroneous StartJob on a busy slot must
	// not zero the running job's counters.
	p.coll.takeSlot(slot)
	p.slotBusy[slot] = true
	p.slotEpoch[slot]++
	epoch := p.slotEpoch[slot]
	js := jobStart{
		epoch:    epoch,
		cfg:      cfg,
		progress: progress,
		done:     func(r Result, err error) { h.ch <- jobOutcome{r, err} },
	}
	// Injected while holding the mutex: any cancellation for this epoch
	// (CancelJob, the deadline timer, Shutdown's drain) observes the busy
	// flag under the same mutex and therefore lands after the start
	// message in the slot's FIFO mailbox.
	p.cluster.Inject(mpi.Rank(slot), tagJobStart, js)
	p.mu.Unlock()

	// StopAfter liveness: a queued job whose candidates no median has
	// picked up receives no messages, so the deadline is enforced by an
	// injected cancellation, not only by in-loop clock checks.
	if cfg.StopAfter > 0 {
		h.timer = time.AfterFunc(cfg.StopAfter, func() {
			p.cluster.Inject(mpi.Rank(slot), tagJobCancel, epoch)
		})
	}
	return h, nil
}

// Wait blocks until the job completes (or is cancelled — Result.Stopped
// true) and frees its slot. Must be called exactly once.
func (h *JobHandle) Wait() (Result, error) {
	out := <-h.ch
	if h.timer != nil {
		h.timer.Stop()
	}
	out.res.Jobs, out.res.WorkUnits = h.p.coll.takeSlot(h.slot)

	h.p.mu.Lock()
	h.p.slotBusy[h.slot] = false
	h.p.idle.Broadcast()
	h.p.mu.Unlock()
	return out.res, out.err
}

// RunJob is StartJob followed by Wait: it blocks until the job completes,
// is cancelled, or the pool shuts down.
func (p *Pool) RunJob(slot int, cfg Config, progress func(Progress)) (Result, error) {
	h, err := p.StartJob(slot, cfg, progress)
	if err != nil {
		return Result{}, err
	}
	return h.Wait()
}

// CancelJob cancels the job currently running on slot, if any. The job
// drains its in-flight work and RunJob returns with Result.Stopped true.
// Cancelling an idle slot is a no-op; a cancellation racing a completing
// job is discarded by the epoch check.
func (p *Pool) CancelJob(slot int) {
	if slot < 0 || slot >= p.cfg.Slots {
		return
	}
	p.mu.Lock()
	if p.slotBusy[slot] {
		p.cluster.Inject(mpi.Rank(slot), tagJobCancel, p.slotEpoch[slot])
	}
	p.mu.Unlock()
}

// Shutdown drains and tears down the pool: new RunJob calls are refused,
// still-running jobs are cancelled and waited for (they complete with
// Result.Stopped true), and only then is the teardown broadcast to the
// idle ranks — the pool is never dismantled with work in flight, exactly
// like the per-run protocol's end-of-run shutdown. Blocks until the
// cluster exits; safe to call more than once.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.runDone
		return
	}
	p.closed = true
	for slot := 0; slot < p.cfg.Slots; slot++ {
		if p.slotBusy[slot] {
			p.cluster.Inject(mpi.Rank(slot), tagJobCancel, p.slotEpoch[slot])
		}
	}
	for {
		busy := false
		for _, b := range p.slotBusy {
			busy = busy || b
		}
		if !busy {
			break
		}
		p.idle.Wait()
	}
	p.mu.Unlock()
	for r := 0; r < p.cluster.Size(); r++ {
		p.cluster.Inject(mpi.Rank(r), tagShutdown, nil)
	}
	<-p.runDone
}

// runSlot is a job-slot root rank: it idles until a job is injected, plays
// that job's top-level game against the shared pool, reports the result
// through the job's done callback, and goes back to idling. Its StatePool
// persists across jobs, so consecutive jobs of the same domain ship
// recycled candidate states.
func (p *Pool) runSlot(c mpi.Comm, slot int) {
	var pool core.StatePool
	var moves []game.Move
	for {
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagShutdown:
			return
		case tagJobStart:
			js := msg.Payload.(jobStart)
			js.done(p.playJob(c, slot, js, &pool, &moves))
		default:
			// A stale cancellation for a job that already completed (the
			// deadline timer racing the job's last score): drop it.
		}
	}
}

// playJob plays one job's top-level game. It is runRootPull with the work
// queue moved to the shared scheduler rank: candidates are offered on the
// slot's tag band, scores come back tagged with the job epoch, and
// cancellation (explicit, deadline or shutdown) abandons the queued
// candidates at the scheduler and drains the granted ones before
// returning, so the pool is never torn down with work in flight.
func (p *Pool) playJob(c mpi.Comm, slot int, js jobStart, pool *core.StatePool, movebuf *[]game.Move) (Result, error) {
	cfg := js.cfg
	res := Result{}
	st := cfg.Root.Clone()
	start := c.Now()
	params := jobParams{
		Slot:     slot,
		Epoch:    js.epoch,
		Level:    cfg.Level,
		Seed:     cfg.Seed,
		Memorize: cfg.Memorize,
		JobScale: cfg.jobScale(),
		Root:     c.Rank(),
	}
	deadline := func() bool {
		return cfg.StopAfter > 0 && c.Now()-start >= cfg.StopAfter
	}

	var shipped []game.State
	var scores []float64
	cancelled := false

	for step := 0; !cancelled; step++ {
		moves := st.LegalMoves((*movebuf)[:0])
		*movebuf = moves
		if len(moves) == 0 {
			break
		}
		if deadline() {
			res.Stopped = true
			break
		}

		// Offer every candidate of the step to the shared scheduler.
		shipped = shipped[:0]
		scores = scores[:0]
		for i, m := range moves {
			child := pool.Get(st)
			c.Work(core.CloneCost)
			child.Play(m)
			c.Work(1)
			shipped = append(shipped, child)
			scores = append(scores, 0)
			c.Send(p.schedRank, p.space.For(slot, offOffer),
				svcCandidate{Step: step, Cand: i, P: params, State: child})
		}

		// Gather scores; a cancellation mid-step abandons what is still
		// queued at the scheduler and keeps draining what was granted.
		want := len(moves)
		got := 0
		abandon := func() {
			if !cancelled {
				cancelled = true
				res.Stopped = true
				c.Send(p.schedRank, p.space.For(slot, offAbandon), js.epoch)
			}
		}
		for got < want {
			msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
			switch msg.Tag {
			case tagStepScore:
				sc := msg.Payload.(svcScore)
				if sc.Epoch != js.epoch {
					break // stray from a previous job; cannot happen once drained
				}
				scores[sc.Cand] = sc.Score
				pool.Put(shipped[sc.Cand])
				got++
			case tagJobCancel:
				if msg.Payload.(uint64) == js.epoch {
					abandon()
				}
			case tagAbandonAck:
				if ack := msg.Payload.(svcAbandonAck); ack.Epoch == js.epoch {
					want -= ack.Dropped
				}
			}
			if !cancelled && deadline() {
				abandon()
			}
		}
		if cancelled {
			break
		}

		// Play the best move; ties go to the first-seen move, matching the
		// sequential search and the per-run root.
		best := argmax(scores)
		st.Play(moves[best])
		c.Work(1)
		res.Steps++
		if len(res.Sequence) == 0 {
			res.FirstMove = moves[best]
			if cfg.FirstMoveOnly {
				res.Score = scores[best]
				res.Sequence = append(res.Sequence, moves[best])
				res.Elapsed = c.Now() - start
				return res, nil
			}
		}
		res.Sequence = append(res.Sequence, moves[best])
		if js.progress != nil {
			js.progress(Progress{
				Steps:     res.Steps,
				BestScore: scores[best],
				Sequence:  append([]game.Move(nil), res.Sequence...),
				Elapsed:   c.Now() - start,
			})
		}
	}

	res.Score = st.Score()
	res.Elapsed = c.Now() - start
	return res, nil
}

// runScheduler owns the per-job candidate queues: the multi-root form of
// PR 2's PullSource. Roots offer candidates on their slot's tag band;
// idle medians pull with flat work requests; grants walk the non-empty
// job queues round-robin, so every running job makes progress even while
// a wide job floods the pool. An abandon message drops a job's queued
// candidates and acks the exact count, which is what lets the root's
// drain arithmetic converge under cancellation.
func (p *Pool) runScheduler(c mpi.Comm) {
	queues := make([][]svcCandidate, p.cfg.Slots)
	var waiting []mpi.Rank
	next := 0
	total := 0

	pick := func() (svcCandidate, bool) {
		if total == 0 {
			return svcCandidate{}, false
		}
		for i := 0; i < p.cfg.Slots; i++ {
			s := (next + i) % p.cfg.Slots
			if len(queues[s]) > 0 {
				cand := queues[s][0]
				queues[s] = queues[s][1:]
				if len(queues[s]) == 0 {
					queues[s] = nil // release the drained backing array
				}
				total--
				next = (s + 1) % p.cfg.Slots
				return cand, true
			}
		}
		return svcCandidate{}, false
	}

	for {
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagShutdown:
			return
		case tagWorkReq:
			if cand, ok := pick(); ok {
				c.Send(msg.From, tagGrant, cand)
			} else {
				waiting = append(waiting, msg.From)
			}
			p.coll.sampleDepth(total)
			continue
		}
		slot, off, ok := p.space.Split(msg.Tag)
		if !ok {
			continue
		}
		switch off {
		case offOffer:
			cand := msg.Payload.(svcCandidate)
			if len(waiting) > 0 {
				to := waiting[0]
				waiting = waiting[:copy(waiting, waiting[1:])]
				c.Send(to, tagGrant, cand)
			} else {
				queues[slot] = append(queues[slot], cand)
				total++
			}
			p.coll.sampleDepth(total)
		case offAbandon:
			epoch := msg.Payload.(uint64)
			dropped := 0
			kept := queues[slot][:0]
			for _, cd := range queues[slot] {
				if cd.P.Epoch == epoch {
					dropped++
				} else {
					kept = append(kept, cd)
				}
			}
			queues[slot] = kept
			total -= dropped
			c.Send(mpi.Rank(slot), tagAbandonAck, svcAbandonAck{Epoch: epoch, Dropped: dropped})
		}
	}
}

// runMedian is the persistent form of the per-run median process: pull a
// candidate from the shared scheduler, play its full level-(ℓ−1) game
// with one client rollout per candidate move, report the score to the
// owning slot, repeat. One work request is kept in flight while a game is
// being played (the PR 2 prefetch window at its default of 1), so the
// next grant travels during computation. The median's StatePool and move
// buffers persist across jobs and domains.
func (p *Pool) runMedian(c mpi.Comm, index int) {
	var pool core.StatePool
	var moves []game.Move
	var shipped []game.State
	var scores []float64

	c.Send(p.schedRank, tagWorkReq, nil)
	for {
		t0 := c.Now()
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		p.coll.addMedianIdle(index, c.Now()-t0)
		switch msg.Tag {
		case tagShutdown:
			return
		case tagGrant:
			// fall through to play the granted game
		default:
			continue
		}
		cand := msg.Payload.(svcCandidate)
		// Prefetch: ask for the next candidate before playing this one.
		c.Send(p.schedRank, tagWorkReq, nil)

		st := cand.State
		for t := 0; ; t++ {
			moves = st.LegalMoves(moves[:0])
			if len(moves) == 0 {
				break
			}
			shipped = shipped[:0]
			scores = scores[:0]
			for j, mv := range moves {
				child := pool.Get(st)
				c.Work(core.CloneCost)
				child.Play(mv)
				c.Work(1)
				shipped = append(shipped, child)
				scores = append(scores, 0)

				c.Send(p.dispRank, tagRequest, child.MovesPlayed())
				t1 := c.Now()
				asg := c.Recv(p.dispRank, tagAssign)
				p.coll.addMedianIdle(index, c.Now()-t1)
				client := asg.Payload.(mpi.Rank)

				key := rng.Fold(uint64(cand.Step), uint64(cand.Cand), uint64(t), uint64(j))
				c.Send(client, tagJob, svcJob{Key: key, Seq: j, P: cand.P, State: child})
			}
			for range moves {
				t1 := c.Now()
				r := c.Recv(mpi.AnyRank, tagResult)
				p.coll.addMedianIdle(index, c.Now()-t1)
				js := r.Payload.(jobScore)
				scores[js.Seq] = js.Score
				pool.Put(shipped[js.Seq])
			}
			st.Play(moves[argmax(scores)])
			c.Work(1)
		}
		c.Send(cand.P.Root, tagStepScore,
			svcScore{Epoch: cand.P.Epoch, Cand: cand.Cand, Score: st.Score()})
	}
}

// runClient is the persistent rollout worker. Jobs of any domain, level
// and memorization mix arrive interleaved; the rollout's random stream is
// reseeded per job from (job seed, logical coordinates), so a given
// candidate's score is identical no matter which client executes it, in
// which order, or what ran on this client before — the property the
// service equivalence tests pin against solo RunWall runs. Searchers (one
// per memorization mode, sharing nothing) and their scratch StatePools
// persist across jobs.
func (p *Pool) runClient(c mpi.Comm, index int) {
	meter := &unitMeter{}
	searchers := map[bool]*core.Searcher{}
	searcherFor := func(memorize bool) *core.Searcher {
		s, ok := searchers[memorize]
		if !ok {
			s = core.NewSearcher(rng.New(0), core.Options{Meter: meter, Memorize: memorize})
			searchers[memorize] = s
		}
		return s
	}

	for {
		t0 := c.Now()
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		p.coll.addClientIdle(index, c.Now()-t0)
		switch msg.Tag {
		case tagShutdown:
			return
		case tagJob:
			jb := msg.Payload.(svcJob)
			median := msg.From

			meter.units = 0
			s := searcherFor(jb.P.Memorize)
			s.Reseed(jb.P.Seed, jb.Key)
			res := s.Nested(jb.State, jb.P.Level-2)
			c.Work(meter.units * jb.P.JobScale)
			p.coll.addRollout(jb.P.Slot, meter.units)

			c.Send(p.dispRank, tagFree, nil)
			c.Send(median, tagResult, jobScore{Seq: jb.Seq, Score: res.Score})
		}
	}
}
