package parallel

// Cross-transport equivalence: the acceptance contract of the distributed
// rank world. A job's result must be bit-identical whether its medians
// and clients run as goroutines of this process (WallCluster) or inside
// worker processes dialed in over TCP (NetCluster) — same Score, same
// FirstMove, same move Sequence, and the same rollout accounting, because
// every rollout's random stream is keyed by its logical coordinates in
// the search tree, never by where it executes. The workers here run
// in-process over a loopback socket so the race detector sees both sides
// of the wire; the CI smoke job repeats the check with real OS processes
// (examples/distributed).

import (
	"sync"
	"testing"
	"time"

	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/mpi"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// startNetWorkers dials n workers into the pool and serves them on
// background goroutines; the returned wait function blocks until they
// drain (after pool.Shutdown).
func startNetWorkers(t *testing.T, addr string, n int) func() {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := mpi.DialWorker(addr, "")
		if err != nil {
			t.Fatalf("worker %d dial: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ServeWorker(w); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	return wg.Wait
}

// assertSameResult compares every deterministic Result field.
func assertSameResult(t *testing.T, name string, got, want Result) {
	t.Helper()
	if got.Score != want.Score {
		t.Fatalf("%s: score %v != %v", name, got.Score, want.Score)
	}
	if got.FirstMove != want.FirstMove {
		t.Fatalf("%s: first move %v != %v", name, got.FirstMove, want.FirstMove)
	}
	if got.Steps != want.Steps {
		t.Fatalf("%s: steps %d != %d", name, got.Steps, want.Steps)
	}
	if len(got.Sequence) != len(want.Sequence) {
		t.Fatalf("%s: sequence lengths %d != %d", name, len(got.Sequence), len(want.Sequence))
	}
	for i := range got.Sequence {
		if got.Sequence[i] != want.Sequence[i] {
			t.Fatalf("%s: sequences differ at move %d", name, i)
		}
	}
	if got.Jobs != want.Jobs {
		t.Fatalf("%s: rollouts %d != %d", name, got.Jobs, want.Jobs)
	}
	if got.WorkUnits != want.WorkUnits {
		t.Fatalf("%s: work units %d != %d", name, got.WorkUnits, want.WorkUnits)
	}
}

// TestNetPoolEquivalence runs one job per domain on a distributed pool
// (coordinator + 2 loopback workers) and checks each against the same
// seed run solo on RunWall and on an in-process pool.
func TestNetPoolEquivalence(t *testing.T) {
	pool, err := NewNetPool(
		PoolConfig{Slots: 2, Medians: 2, Clients: 3},
		NetPoolConfig{Listen: "127.0.0.1:0", Workers: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	wait := startNetWorkers(t, pool.WorkerAddr(), 2)

	wallPool, err := NewPool(PoolConfig{Slots: 2, Medians: 2, Clients: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Morpion runs in first-move mode: one root step exercises the whole
	// wire protocol (offers, grants, dispatcher round trips, rollout
	// accounting) at a fraction of a full game's cost — the full-game
	// cross-transport check runs in the CI distributed smoke job.
	cfgs := map[string]Config{
		"morpion":  {Level: 2, Root: morpion.New(morpion.Var4D), Seed: 11, Memorize: true, FirstMoveOnly: true},
		"samegame": {Level: 2, Root: samegame.NewRandom(5, 5, 3, 3), Seed: 5, Memorize: true},
		"sudoku":   {Level: 2, Root: sudoku.New(2), Seed: 7},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			solo, err := RunWall(4, 3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			walled, err := wallPool.RunJob(0, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			netted, err := pool.RunJob(0, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "wall pool vs solo", walled, solo)
			assertSameResult(t, "net pool vs solo", netted, solo)
			if netted.Jobs == 0 {
				t.Fatal("no rollouts accounted across the wire")
			}
		})
	}

	// The jobs above crossed the wire: transport counters must show it.
	m := pool.Metrics()
	if m.Net == nil {
		t.Fatal("net pool reports no transport stats")
	}
	if m.Net.FramesSent == 0 || m.Net.FramesRecv == 0 {
		t.Fatalf("no frames counted: %+v", *m.Net)
	}
	if m.Jobs == 0 || m.WorkUnits == 0 {
		t.Fatalf("pool lifetime counters empty: %+v", m)
	}

	wallPool.Shutdown()
	pool.Shutdown()
	wait()
}

// TestNetPoolConcurrentJobs runs a job on every slot at once across the
// wire; each must still match its solo twin despite sharing remote
// medians and clients.
func TestNetPoolConcurrentJobs(t *testing.T) {
	pool, err := NewNetPool(
		PoolConfig{Slots: 3, Medians: 2, Clients: 4},
		NetPoolConfig{Listen: "127.0.0.1:0", Workers: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	wait := startNetWorkers(t, pool.WorkerAddr(), 2)

	cfgs := []Config{
		{Level: 2, Root: game.NewArmTree(3, 2, 5), Seed: 2, Memorize: true},
		{Level: 2, Root: sudoku.New(2), Seed: 7, Memorize: true},
		{Level: 2, Root: samegame.NewRandom(5, 5, 3, 3), Seed: 5, Memorize: true},
	}
	var wg sync.WaitGroup
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = pool.RunJob(i, cfg, nil)
		}()
	}
	wg.Wait()
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		solo, err := RunWall(4, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "concurrent net job", results[i], solo)
	}

	pool.Shutdown()
	wait()
}

// TestNetPoolCancellation stops a running job mid-flight on the net pool:
// the drain protocol must hold across the wire (no stuck ranks, partial
// result returned).
func TestNetPoolCancellation(t *testing.T) {
	pool, err := NewNetPool(
		PoolConfig{Slots: 1, Medians: 1, Clients: 2},
		NetPoolConfig{Listen: "127.0.0.1:0", Workers: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	wait := startNetWorkers(t, pool.WorkerAddr(), 1)

	// SameGame keeps the drain cheap: cancellation still has to wait out
	// the granted candidates' full median games across the wire, and a
	// level-2 SameGame median game is milliseconds where Morpion's would
	// be tens of seconds under the race detector.
	cfg := Config{Level: 3, Root: samegame.NewRandom(8, 8, 4, 2), Seed: 3, Memorize: true}
	h, err := pool.StartJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	pool.CancelJob(0)
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("cancelled job not marked stopped")
	}

	// The pool must still serve new jobs after the drain.
	after, err := pool.RunJob(0, Config{Level: 2, Root: sudoku.New(2), Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := RunWall(4, 3, Config{Level: 2, Root: sudoku.New(2), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "post-cancel job", after, solo)

	pool.Shutdown()
	wait()
}
