package parallel

// Round-trip property tests for the parallel protocol's wire payloads:
// Decode(Encode(m)) == m for every registered kind, with
// testing/quick-generated field values, plus the worker handshake blob.

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/mpi/codec"
)

// payloadTrip encodes and decodes one payload value.
func payloadTrip(t *testing.T, v any) any {
	t.Helper()
	buf, err := codec.EncodePayload(nil, v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	out, err := codec.DecodePayload(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return out
}

// nonneg maps arbitrary quick-generated ints onto the non-negative ranges
// the protocol uses (steps, candidate indexes, counters).
func nonneg(v int) int {
	if v < 0 {
		return -(v + 1)
	}
	return v
}

// par maps arbitrary quick-generated ints onto the branch-discriminator
// range [-1, ∞): -1 is the no-parent sentinel of step 0 and the
// synchronous schedulers, everything else a move index.
func par(v int) int {
	return nonneg(v) - 1
}

func quickParams(slot int, epoch uint64, level int, seed uint64, memorize bool, scale int64, root int) jobParams {
	if scale < 0 {
		scale = -(scale + 1)
	}
	return jobParams{
		Slot:      nonneg(slot),
		Epoch:     epoch,
		Level:     nonneg(level) % (wireMaxLevel + 1), // decoders reject levels beyond the cap
		Seed:      seed,
		Memorize:  memorize,
		JobScale:  scale,
		Root:      mpi.Rank(nonneg(root)),
		Speculate: nonneg(slot) % (wireMaxSpeculate + 1), // decoders reject widths beyond the cap
	}
}

func TestScalarPayloadRoundTrips(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	checks := map[string]any{
		"jobScore": func(seq int, score float64) bool {
			v := jobScore{Seq: nonneg(seq), Score: score}
			got := payloadTrip(t, v).(jobScore)
			return got.Seq == v.Seq && math.Float64bits(got.Score) == math.Float64bits(v.Score)
		},
		"stepScore": func(step, cand, p int, score float64) bool {
			v := stepScore{Step: nonneg(step), Cand: nonneg(cand), Par: par(p), Score: score}
			got := payloadTrip(t, v).(stepScore)
			return got.Step == v.Step && got.Cand == v.Cand && got.Par == v.Par &&
				math.Float64bits(got.Score) == math.Float64bits(v.Score)
		},
		"svcScore": func(epoch uint64, step, cand, p int, score float64, rollouts, units int64) bool {
			v := svcScore{
				Epoch: epoch, Step: nonneg(step), Cand: nonneg(cand), Par: par(p), Score: score,
				Rollouts: int64(nonneg(int(rollouts % (1 << 40)))), Units: int64(nonneg(int(units % (1 << 40)))),
			}
			got := payloadTrip(t, v).(svcScore)
			return got.Epoch == v.Epoch && got.Step == v.Step && got.Cand == v.Cand &&
				got.Par == v.Par && got.Rollouts == v.Rollouts && got.Units == v.Units &&
				math.Float64bits(got.Score) == math.Float64bits(v.Score)
		},
		"svcSpecCancel": func(slot int, epoch uint64, step, keep int) bool {
			v := svcSpecCancel{Slot: nonneg(slot), Epoch: epoch, Step: par(step), Keep: par(keep)}
			return payloadTrip(t, v).(svcSpecCancel) == v
		},
		"svcResult": func(key uint64, seq int, score float64, units int64) bool {
			v := svcResult{Key: key, Seq: nonneg(seq), Score: score, Units: int64(nonneg(int(units % (1 << 40))))}
			got := payloadTrip(t, v).(svcResult)
			return got.Key == v.Key && got.Seq == v.Seq && got.Units == v.Units &&
				math.Float64bits(got.Score) == math.Float64bits(v.Score)
		},
		"svcAbandonAck": func(epoch uint64, dropped int) bool {
			v := svcAbandonAck{Epoch: epoch, Dropped: nonneg(dropped)}
			return payloadTrip(t, v).(svcAbandonAck) == v
		},
		"svcRanksLost": func(lo, hi int) bool {
			l, h := nonneg(lo), nonneg(hi)
			if h < l {
				l, h = h, l
			}
			v := svcRanksLost{Lo: mpi.Rank(l), Hi: mpi.Rank(h)}
			return payloadTrip(t, v).(svcRanksLost) == v
		},
		"svcRegrant": func(epoch uint64, count int) bool {
			v := svcRegrant{Epoch: epoch, Count: nonneg(count)}
			return payloadTrip(t, v).(svcRegrant) == v
		},
	}
	for name, fn := range checks {
		if err := quick.Check(fn, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestStateCarryingPayloadRoundTrips(t *testing.T) {
	st := game.NewArmTree(3, 4, 9)
	st.Play(1)
	st.Play(2)

	cand := candidate{Step: 4, Cand: 2, Par: 1, State: st}
	got := payloadTrip(t, cand).(candidate)
	if got.Step != cand.Step || got.Cand != cand.Cand || got.Par != cand.Par {
		t.Fatalf("candidate coordinates: %+v", got)
	}
	if got.State.MovesPlayed() != 2 || got.State.Score() != st.Score() {
		t.Fatalf("candidate state not restored: %+v", got.State)
	}

	jb := job{Key: 0xdeadbeef, Seq: 3, State: st}
	gj := payloadTrip(t, jb).(job)
	if gj.Key != jb.Key || gj.Seq != jb.Seq || gj.State.MovesPlayed() != 2 {
		t.Fatalf("job: %+v", gj)
	}

	if err := quick.Check(func(step, candIdx, p int, slot int, epoch uint64, level int, seed uint64, mem bool, scale int64, root int) bool {
		v := svcCandidate{
			Step: nonneg(step), Cand: nonneg(candIdx), Par: par(p),
			P:     quickParams(slot, epoch, level, seed, mem, scale, root),
			State: st,
		}
		g := payloadTrip(t, v).(svcCandidate)
		return g.Step == v.Step && g.Cand == v.Cand && g.Par == v.Par && g.P == v.P && g.State.MovesPlayed() == 2
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("svcCandidate: %v", err)
	}

	if err := quick.Check(func(key uint64, seq, p int, slot int, epoch uint64, level int, seed uint64, mem bool, scale int64, root int) bool {
		v := svcJob{
			Key: key, Seq: nonneg(seq), Par: par(p),
			P:     quickParams(slot, epoch, level, seed, mem, scale, root),
			State: st,
		}
		g := payloadTrip(t, v).(svcJob)
		return g.Key == v.Key && g.Seq == v.Seq && g.Par == v.Par && g.P == v.P && g.State.MovesPlayed() == 2
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("svcJob: %v", err)
	}
}

// TestEvalBatchPayloadRoundTrips covers the exported evaluation batch
// frames (KindEvalBatchRequest / KindEvalBatchReply) — the wire shapes an
// external inference server speaks.
func TestEvalBatchPayloadRoundTrips(t *testing.T) {
	a := game.NewArmTree(3, 4, 9)
	b := game.NewArmTree(3, 4, 9)
	b.Play(1)

	req := EvalBatchRequest{Batch: 0xfeedface, Eval: "heuristic", States: []game.State{a, b}}
	gr := payloadTrip(t, req).(EvalBatchRequest)
	if gr.Batch != req.Batch || gr.Eval != req.Eval || len(gr.States) != 2 {
		t.Fatalf("request round trip: %+v", gr)
	}
	if gr.States[0].MovesPlayed() != 0 || gr.States[1].MovesPlayed() != 1 {
		t.Fatalf("request states not restored: %d, %d moves",
			gr.States[0].MovesPlayed(), gr.States[1].MovesPlayed())
	}

	// Weights round-trip bit-exactly; an empty vector ("no opinion") and an
	// empty batch are both legal.
	rep := EvalBatchReply{Batch: 0xfeedface, Weights: [][]float64{{0.5, 2, 0}, {}, {1}}}
	gp := payloadTrip(t, rep).(EvalBatchReply)
	if gp.Batch != rep.Batch || len(gp.Weights) != len(rep.Weights) {
		t.Fatalf("reply round trip: %+v", gp)
	}
	for i, w := range rep.Weights {
		if len(gp.Weights[i]) != len(w) {
			t.Fatalf("reply weights %d: %v != %v", i, gp.Weights[i], w)
		}
		for j := range w {
			if math.Float64bits(gp.Weights[i][j]) != math.Float64bits(w[j]) {
				t.Fatalf("reply weight [%d][%d]: %v != %v", i, j, gp.Weights[i][j], w[j])
			}
		}
	}
	empty := payloadTrip(t, EvalBatchReply{Batch: 7}).(EvalBatchReply)
	if empty.Batch != 7 || len(empty.Weights) != 0 {
		t.Fatalf("empty reply round trip: %+v", empty)
	}
}

// TestEvalNameLimits pins the remote-controlled-length guard on evaluator
// names: the decoder must reject names beyond wireMaxEvalName and
// truncated name bytes, never allocate for them.
func TestEvalNameLimits(t *testing.T) {
	long := make([]byte, wireMaxEvalName+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, _, err := readEvalName(appendEvalName(nil, string(long))); err == nil {
		t.Fatal("oversized evaluator name accepted")
	}
	buf := appendEvalName(nil, "heuristic")
	if _, _, err := readEvalName(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated evaluator name accepted")
	}
	name, rest, err := readEvalName(appendEvalName(nil, ""))
	if err != nil || name != "" || len(rest) != 0 {
		t.Fatalf("empty name (uniform sentinel) round trip: %q, %d rest, %v", name, len(rest), err)
	}
}

// TestJobParamsEvalRoundTrip pins the evaluator name riding every pool
// candidate and client job (the codec v3 jobParams extension) and the
// speculation width behind it (the codec v4 extension).
func TestJobParamsEvalRoundTrip(t *testing.T) {
	p := jobParams{
		Slot: 2, Epoch: 9, Level: 3, Seed: 41, Memorize: true,
		JobScale: 1 << 20, Root: mpi.Rank(1), Eval: "heuristic", Speculate: 4,
	}
	got, rest, err := readJobParams(appendJobParams(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p || len(rest) != 0 {
		t.Fatalf("job params round trip: %+v, %d rest", got, len(rest))
	}
	// A speculation width beyond the remote-controlled-size cap is
	// malformed, not allocated for.
	p.Speculate = wireMaxSpeculate + 1
	if _, _, err := readJobParams(appendJobParams(nil, p)); err == nil {
		t.Fatal("oversized speculation width accepted")
	}
}

func TestWorkerBlobRoundTrip(t *testing.T) {
	cfg := PoolConfig{
		Slots: 3, Medians: 5, Clients: 9, Algo: LastMinute,
		EvalBatch: 16, EvalFlush: 3 * time.Millisecond, Speculate: 2,
	}
	got, err := decodeWorkerBlob(appendWorkerBlob(nil, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("blob round trip: %+v != %+v", got, cfg)
	}

	// A negative pool-wide speculation width means "off" everywhere it is
	// consulted; the blob clamps it to 0 so the worker sees the same thing.
	neg := cfg
	neg.Speculate = -3
	got, err = decodeWorkerBlob(appendWorkerBlob(nil, neg))
	if err != nil {
		t.Fatal(err)
	}
	if got.Speculate != 0 {
		t.Fatalf("negative speculation width round-tripped as %d, want clamp to 0", got.Speculate)
	}

	if _, err := decodeWorkerBlob(nil); err == nil {
		t.Fatal("empty blob accepted")
	}
	if _, err := decodeWorkerBlob([]byte{workerBlobVersion + 1, 1, 1, 1, 0}); err == nil {
		t.Fatal("foreign blob version accepted")
	}
	if _, err := decodeWorkerBlob(appendWorkerBlob(nil, PoolConfig{})); err == nil {
		t.Fatal("degenerate pool config accepted")
	}
}
