package parallel

// Tests for the demand-driven (pull / work-stealing) root scheduler: the
// static-vs-pull equivalence the job-key random streams guarantee, the
// pathological layouts the dispatcher must survive, mid-game cancellation
// draining in-flight grants, and the straggler experiment behind the
// scheduler's existence: with a slow median, demand-driven assignment
// beats the paper's static cyclic order by a wide margin.

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/mpi"
)

// stragglerVirtual are the virtual options of the straggler experiments:
// a large unit cost makes the medians' own cloning work dominate the
// round-trip latencies, the regime where median speed matters (the paper's
// medians all share one server; ours may straggle).
func stragglerVirtual(medians int) VirtualOptions {
	return VirtualOptions{UnitCost: time.Millisecond, Medians: medians}
}

func run(t *testing.T, spec cluster.Spec, cfg Config, opts VirtualOptions) Result {
	t.Helper()
	res, err := RunVirtual(spec, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameGame(t *testing.T, a, b Result, what string) {
	t.Helper()
	if a.Score != b.Score {
		t.Fatalf("%s: scores differ: %v vs %v", what, a.Score, b.Score)
	}
	if a.FirstMove != b.FirstMove {
		t.Fatalf("%s: first moves differ: %v vs %v", what, a.FirstMove, b.FirstMove)
	}
	if len(a.Sequence) != len(b.Sequence) {
		t.Fatalf("%s: sequence lengths differ: %d vs %d", what, len(a.Sequence), len(b.Sequence))
	}
	for i := range a.Sequence {
		if a.Sequence[i] != b.Sequence[i] {
			t.Fatalf("%s: sequences diverge at move %d: %v vs %v", what, i, a.Sequence[i], b.Sequence[i])
		}
	}
}

func TestPullStaticEquivalence(t *testing.T) {
	// The acceptance property of the scheduler rewrite: with equal node
	// speeds, the pull and static schedulers play bit-identical games —
	// client scores are keyed by logical job coordinates, not by executing
	// rank, so only timing may differ between the schedulers.
	for _, algo := range []Algorithm{RoundRobin, LastMinute} {
		cfg := Config{Algo: algo, Level: 2, Root: morpion.New(morpion.Var4D),
			Seed: 42, Memorize: true}
		static, pull := cfg, cfg
		static.Static = true
		a := run(t, cluster.Homogeneous(8), static, fastVirtual(8))
		b := run(t, cluster.Homogeneous(8), pull, fastVirtual(8))
		sameGame(t, a, b, algo.String()+" static-vs-pull")
	}
}

func TestPullSchedulingInvariance(t *testing.T) {
	// Stronger than equal-speed equivalence: the played game does not
	// depend on the median pool size, the client count, the prefetch
	// window or node speeds at all — scheduling decisions only move work
	// between ranks, never change what is computed.
	base := Config{Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 9, Memorize: true, FirstMoveOnly: true}
	ref := run(t, cluster.Homogeneous(8), base, fastVirtual(8))

	variants := []struct {
		name string
		spec cluster.Spec
		opts VirtualOptions
		mod  func(*Config)
	}{
		{"fewer medians", cluster.Homogeneous(8), fastVirtual(2), nil},
		{"more medians than moves", cluster.Homogeneous(8), fastVirtual(64), nil},
		{"fewer clients", cluster.Homogeneous(2), fastVirtual(8), nil},
		{"no prefetch", cluster.Homogeneous(8), fastVirtual(8), func(c *Config) { c.Prefetch = -1 }},
		{"deep prefetch", cluster.Homogeneous(8), fastVirtual(8), func(c *Config) { c.Prefetch = 3 }},
		{"slow median", cluster.Homogeneous(8).WithSlowMedian(0, 0.1), fastVirtual(8), nil},
		{"round-robin ordering", cluster.Homogeneous(8), fastVirtual(8), func(c *Config) { c.Algo = RoundRobin }},
	}
	for _, v := range variants {
		cfg := base
		if v.mod != nil {
			v.mod(&cfg)
		}
		got := run(t, v.spec, cfg, v.opts)
		sameGame(t, ref, got, v.name)
	}
}

func TestPullSingleMedian(t *testing.T) {
	// One median serializes the root's candidates entirely; the pull
	// protocol must still pair every grant with its score.
	tree := game.NewArmTree(3, 2, 77)
	cfg := Config{Algo: RoundRobin, Level: 2, Root: tree, Seed: 1, Memorize: true}
	res := run(t, cluster.Homogeneous(4), cfg, fastVirtual(1))
	if want := tree.Optimum(); res.Score != want {
		t.Fatalf("single median found %v, optimum %v", res.Score, want)
	}
}

func TestPullMoreMediansThanMoves(t *testing.T) {
	// More medians than legal moves: the surplus medians' work requests
	// queue at the root across steps and must be answered (or shut down)
	// without deadlock.
	tree := game.NewArmTree(2, 3, 5)
	cfg := Config{Algo: LastMinute, Level: 2, Root: tree, Seed: 3, Memorize: true}
	res := run(t, cluster.Homogeneous(4), cfg, fastVirtual(32))
	if want := tree.Optimum(); res.Score != want {
		t.Fatalf("found %v, optimum %v", res.Score, want)
	}
}

func TestStaticWrapKeepsPairing(t *testing.T) {
	// The static fallback's per-median FIFO pairing (the hoisted queue
	// map) survives medians answering several positions per step.
	tree := game.NewArmTree(5, 2, 21)
	cfg := Config{Algo: RoundRobin, Level: 2, Root: tree, Seed: 9, Memorize: true, Static: true}
	res := run(t, cluster.Homogeneous(3), cfg, fastVirtual(2))
	if want := tree.Optimum(); res.Score != want {
		t.Fatalf("wrapped medians broke static pairing: got %v, want %v", res.Score, want)
	}
}

func TestPullStragglerRanks(t *testing.T) {
	// A 10×-slower rank — median or client — must only cost time, never
	// correctness: the game is identical to the homogeneous run.
	cfg := Config{Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 5, Memorize: true, FirstMoveOnly: true, JobScale: 100}
	ref := run(t, cluster.Homogeneous(8), cfg, fastVirtual(4))

	slowMedian := run(t, cluster.Homogeneous(8).WithSlowMedian(0, 0.1), cfg, fastVirtual(4))
	sameGame(t, ref, slowMedian, "10x-slow median")

	slowClient := cluster.Homogeneous(7)
	slowClient.Nodes = append(slowClient.Nodes, cluster.Node{GHz: cluster.ReferenceGHz / 10, Cores: 2, Clients: 1})
	slowClient.Name = "straggler-client"
	got := run(t, slowClient, cfg, fastVirtual(4))
	sameGame(t, ref, got, "10x-slow client")
	if got.Elapsed <= ref.Elapsed {
		t.Fatalf("straggler client run not slower: %v vs %v", got.Elapsed, ref.Elapsed)
	}
}

func TestStopAfterDrainsInFlightGrants(t *testing.T) {
	// Mid-game cancellation: the root stops granting, drains the scores of
	// the already-granted candidates, and tears the world down with no
	// process left parked mid-protocol.
	full := Config{Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 7, Memorize: true}
	ref := run(t, cluster.Homogeneous(4), full, fastVirtual(4))
	if len(ref.Sequence) < 10 {
		t.Fatalf("reference game too short to cut: %d moves", len(ref.Sequence))
	}

	for _, static := range []bool{false, true} {
		cfg := full
		cfg.Static = static
		cfg.StopAfter = ref.Elapsed / 3

		spec := cluster.Homogeneous(4)
		lay := spec.Layout(4)
		vc := mpi.NewVirtualCluster(mpi.VirtualConfig{
			Speeds: lay.Speeds, UnitCost: time.Microsecond,
			Network: mpi.DefaultNetwork(), // match fastVirtual's timing
		})
		res, err := Execute(vc, lay, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stopped {
			t.Fatalf("static=%v: StopAfter %v did not stop a %v game", static, cfg.StopAfter, ref.Elapsed)
		}
		if len(res.Sequence) == 0 || len(res.Sequence) >= len(ref.Sequence) {
			t.Fatalf("static=%v: stopped game played %d of %d moves", static, len(res.Sequence), len(ref.Sequence))
		}
		if res.Elapsed >= ref.Elapsed {
			t.Fatalf("static=%v: stopping did not save time: %v vs %v", static, res.Elapsed, ref.Elapsed)
		}
		if parked := vc.Parked(); len(parked) != 0 {
			t.Fatalf("static=%v: ranks still parked after stop: %v", static, parked)
		}
		// The partial game must replay: on Morpion the score is the number
		// of moves played, so the reported score pins the drained state.
		if res.Score != float64(len(res.Sequence)) {
			t.Fatalf("static=%v: stopped score %v != moves played %d", static, res.Score, len(res.Sequence))
		}
		// The prefix played before the stop matches the uncancelled game.
		for i, m := range res.Sequence {
			if m != ref.Sequence[i] {
				t.Fatalf("static=%v: stopped game diverged at move %d", static, i)
			}
		}
	}
}

func TestWorkStealingBeatsStaticWithStraggler(t *testing.T) {
	// The acceptance experiment: one 2×-slow median on an otherwise
	// homogeneous cluster. Static cyclic assignment funnels ~1/M of every
	// step's candidates through the straggler, so the whole step waits for
	// it; demand-driven grants give it proportionally fewer candidates.
	// Required margin: step latency at least 25% lower. First-move mode
	// makes the run a single root step, so Elapsed is the step latency.
	// 64 clients keep the client pool out of the bottleneck, so the step
	// latency is governed by the medians — the resource being scheduled.
	spec := cluster.Homogeneous(64).WithSlowMedian(0, 0.5)
	cfg := Config{Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 3, Memorize: true, FirstMoveOnly: true}

	static := cfg
	static.Static = true
	a := run(t, spec, static, stragglerVirtual(6))
	b := run(t, spec, cfg, stragglerVirtual(6))
	sameGame(t, a, b, "straggler static-vs-pull")

	t.Logf("straggler step latency: static=%v pull=%v (%.1f%% lower)",
		a.Elapsed, b.Elapsed, 100*(1-float64(b.Elapsed)/float64(a.Elapsed)))
	if float64(b.Elapsed) > 0.75*float64(a.Elapsed) {
		t.Fatalf("work stealing step latency %v not >=25%% below static %v", b.Elapsed, a.Elapsed)
	}
}

func TestPullIdleAndQueueAccounting(t *testing.T) {
	cfg := Config{Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 13, Memorize: true, FirstMoveOnly: true}
	res := run(t, cluster.Homogeneous(4), cfg, fastVirtual(4))

	if len(res.MedianIdle) != 4 || len(res.ClientIdle) != 4 {
		t.Fatalf("idle slices sized %d/%d, want 4/4", len(res.MedianIdle), len(res.ClientIdle))
	}
	var medianIdle time.Duration
	for i, d := range res.MedianIdle {
		if d < 0 || d > res.Elapsed {
			t.Fatalf("median %d idle %v out of [0, %v]", i, d, res.Elapsed)
		}
		medianIdle += d
	}
	if medianIdle == 0 {
		t.Fatal("no median idle time recorded")
	}
	for i, d := range res.ClientIdle {
		if d < 0 || d > res.Elapsed {
			t.Fatalf("client %d idle %v out of [0, %v]", i, d, res.Elapsed)
		}
		if d+res.ClientBusy[i] > res.Elapsed {
			t.Fatalf("client %d idle %v + busy %v exceeds makespan %v", i, d, res.ClientBusy[i], res.Elapsed)
		}
	}
	if res.QueueDepthMax == 0 || res.QueueDepthMean <= 0 {
		t.Fatalf("queue depth not sampled: max=%d mean=%v", res.QueueDepthMax, res.QueueDepthMean)
	}
	if res.Steps != 1 {
		t.Fatalf("first-move run recorded %d steps", res.Steps)
	}
}

func TestPrefetchHidesGrantLatency(t *testing.T) {
	// With the default window of one prefetched request, the next grant
	// travels while the median plays the current game; without it every
	// game pays the full request leg of the round trip. A single median
	// pins the assignment order (no balance effects), so the saved latency
	// must show up directly in the makespan. Same game either way.
	tree := game.NewArmTree(6, 2, 13)
	cfg := Config{Algo: LastMinute, Level: 2, Root: tree, Seed: 11, Memorize: true}
	noPrefetch := cfg
	noPrefetch.Prefetch = -1
	a := run(t, cluster.Homogeneous(4), cfg, fastVirtual(1))
	b := run(t, cluster.Homogeneous(4), noPrefetch, fastVirtual(1))
	sameGame(t, a, b, "prefetch-vs-none")
	t.Logf("makespan: prefetch=%v none=%v", a.Elapsed, b.Elapsed)
	if a.Elapsed >= b.Elapsed {
		t.Fatalf("prefetching did not hide the request latency: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestPullWallTransport(t *testing.T) {
	// The pull protocol runs natively on goroutines, and because scores
	// are keyed by job coordinates the played game is reproducible even
	// under real concurrency.
	tree := game.NewArmTree(3, 2, 5)
	cfg := Config{Algo: LastMinute, Level: 2, Root: tree, Seed: 2, Memorize: true}
	a, err := RunWall(4, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := tree.Optimum(); a.Score != want {
		t.Fatalf("wall pull run found %v, optimum %v", a.Score, want)
	}
	b, err := RunWall(4, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameGame(t, a, b, "wall determinism")
}
