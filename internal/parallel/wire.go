package parallel

// Wire encodings of the parallel protocol's payloads, registered with the
// frame codec so every message of the per-run protocol (candidates, jobs,
// scores) and the pool protocol (service candidates, rollout results,
// abandon acks) can cross process boundaries on the net transport. The
// in-process transports never touch these: payloads stay bare Go values
// between goroutines, so the per-run hot path allocates exactly what it
// did before the codec existed.
//
// Encodings follow the codec conventions: fixed-width little-endian
// scalars via encoding/binary, uvarints for small counts, and a nested
// typed state as the final field (a payload always extends to the end of
// its frame, so the state needs no length prefix).

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/mpi/codec"
)

// EvalBatchRequest is the batcher→evaluation-server frame payload
// (KindEvalBatchRequest): one flushed batch of rollout positions to score
// with the named evaluator. Batch is an opaque correlation id echoed by
// the reply — request/reply pairs may complete out of order on a pipelined
// connection. Unlike every other state-carrying payload, States carries a
// per-state length prefix: a bare encoded state extends to the end of its
// frame, and a batch needs many in one frame.
type EvalBatchRequest struct {
	Batch  uint64
	Eval   string
	States []game.State
}

// EvalBatchReply is the evaluation-server→batcher frame payload
// (KindEvalBatchReply): Weights[i] holds one non-negative weight per legal
// move of the request's States[i], in LegalMoves order — the same contract
// as game.Evaluator.Evaluate. An empty vector means "no opinion" (the
// searcher falls back to a uniform draw for that position).
type EvalBatchReply struct {
	Batch   uint64
	Weights [][]float64
}

// Application payload kinds (64+ is the application band, see codec).
const (
	kindCandidate     codec.Kind = 64 + iota // per-run root -> median
	kindJob                                  // per-run median -> client
	kindJobScore                             // per-run client -> median
	kindStepScore                            // per-run median -> root (pull)
	kindSvcCandidate                         // pool slot -> scheduler -> median
	kindSvcJob                               // pool median -> client
	kindSvcScore                             // pool median -> slot
	kindSvcResult                            // pool client -> median
	kindSvcAbandonAck                        // pool scheduler -> slot
	kindSvcRanksLost                         // pool coordinator -> median: worker ranks died
	kindSvcRegrant                           // pool scheduler -> slot: grants re-queued
	// KindEvalBatchRequest / KindEvalBatchReply are the evaluation batch
	// frames, exported (with their payload types) because their intended
	// far end is an external inference server speaking the frame protocol:
	// a batcher ships one request frame per flush and receives one reply
	// frame with the per-position move weights. The bundled in-process
	// evaluators never serialize — these kinds exist so plugging a remote
	// evaluator in later is a new dial target, not another protocol break.
	KindEvalBatchRequest codec.Kind = 64 + iota // batcher -> evaluation server
	KindEvalBatchReply                          // evaluation server -> batcher
	// kindSvcSpecCancel is appended after the exported kinds so their
	// values stay stable across the async-scheduler protocol change.
	kindSvcSpecCancel // pool scheduler -> median: speculative branch cancelled
)

// The worker handshake blob (appendWorkerBlob) is NOT a frame payload: it
// travels inside the handshake welcome with its own version byte, so it
// has no codec kind.

func init() {
	codec.Register(kindCandidate,
		func(buf []byte, v candidate) ([]byte, error) {
			buf = binary.AppendUvarint(buf, uint64(v.Step))
			buf = binary.AppendUvarint(buf, uint64(v.Cand))
			buf = appendPar(buf, v.Par)
			return codec.EncodeState(buf, v.State)
		},
		func(data []byte) (candidate, error) {
			var c candidate
			step, data, err := codec.ReadUvarint(data)
			if err != nil {
				return c, err
			}
			cand, data, err := codec.ReadUvarint(data)
			if err != nil {
				return c, err
			}
			par, data, err := readPar(data)
			if err != nil {
				return c, err
			}
			st, err := codec.DecodeState(data)
			if err != nil {
				return c, err
			}
			return candidate{Step: int(step), Cand: int(cand), Par: par, State: st}, nil
		})

	codec.Register(kindJob,
		func(buf []byte, v job) ([]byte, error) {
			buf = binary.LittleEndian.AppendUint64(buf, v.Key)
			buf = binary.AppendUvarint(buf, uint64(v.Seq))
			return codec.EncodeState(buf, v.State)
		},
		func(data []byte) (job, error) {
			var j job
			if len(data) < 8 {
				return j, fmt.Errorf("%w: job key", codec.ErrTruncated)
			}
			key := binary.LittleEndian.Uint64(data)
			seq, data, err := codec.ReadUvarint(data[8:])
			if err != nil {
				return j, err
			}
			st, err := codec.DecodeState(data)
			if err != nil {
				return j, err
			}
			return job{Key: key, Seq: int(seq), State: st}, nil
		})

	codec.Register(kindJobScore,
		func(buf []byte, v jobScore) ([]byte, error) {
			buf = binary.AppendUvarint(buf, uint64(v.Seq))
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Score)), nil
		},
		func(data []byte) (jobScore, error) {
			seq, data, err := codec.ReadUvarint(data)
			if err != nil {
				return jobScore{}, err
			}
			if len(data) != 8 {
				return jobScore{}, fmt.Errorf("%w: jobScore", codec.ErrTruncated)
			}
			return jobScore{Seq: int(seq), Score: math.Float64frombits(binary.LittleEndian.Uint64(data))}, nil
		})

	codec.Register(kindStepScore,
		func(buf []byte, v stepScore) ([]byte, error) {
			buf = binary.AppendUvarint(buf, uint64(v.Step))
			buf = binary.AppendUvarint(buf, uint64(v.Cand))
			buf = appendPar(buf, v.Par)
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Score)), nil
		},
		func(data []byte) (stepScore, error) {
			step, data, err := codec.ReadUvarint(data)
			if err != nil {
				return stepScore{}, err
			}
			cand, data, err := codec.ReadUvarint(data)
			if err != nil {
				return stepScore{}, err
			}
			par, data, err := readPar(data)
			if err != nil {
				return stepScore{}, err
			}
			if len(data) != 8 {
				return stepScore{}, fmt.Errorf("%w: stepScore", codec.ErrTruncated)
			}
			return stepScore{Step: int(step), Cand: int(cand), Par: par,
				Score: math.Float64frombits(binary.LittleEndian.Uint64(data))}, nil
		})

	codec.Register(kindSvcCandidate,
		func(buf []byte, v svcCandidate) ([]byte, error) {
			buf = binary.AppendUvarint(buf, uint64(v.Step))
			buf = binary.AppendUvarint(buf, uint64(v.Cand))
			buf = appendPar(buf, v.Par)
			buf = appendJobParams(buf, v.P)
			return codec.EncodeState(buf, v.State)
		},
		func(data []byte) (svcCandidate, error) {
			var c svcCandidate
			step, data, err := codec.ReadUvarint(data)
			if err != nil {
				return c, err
			}
			cand, data, err := codec.ReadUvarint(data)
			if err != nil {
				return c, err
			}
			par, data, err := readPar(data)
			if err != nil {
				return c, err
			}
			p, data, err := readJobParams(data)
			if err != nil {
				return c, err
			}
			st, err := codec.DecodeState(data)
			if err != nil {
				return c, err
			}
			return svcCandidate{Step: int(step), Cand: int(cand), Par: par, P: p, State: st}, nil
		})

	codec.Register(kindSvcJob,
		func(buf []byte, v svcJob) ([]byte, error) {
			buf = binary.LittleEndian.AppendUint64(buf, v.Key)
			buf = binary.AppendUvarint(buf, uint64(v.Seq))
			buf = appendPar(buf, v.Par)
			buf = appendJobParams(buf, v.P)
			return codec.EncodeState(buf, v.State)
		},
		func(data []byte) (svcJob, error) {
			var j svcJob
			if len(data) < 8 {
				return j, fmt.Errorf("%w: svcJob key", codec.ErrTruncated)
			}
			key := binary.LittleEndian.Uint64(data)
			seq, data, err := codec.ReadUvarint(data[8:])
			if err != nil {
				return j, err
			}
			par, data, err := readPar(data)
			if err != nil {
				return j, err
			}
			p, data, err := readJobParams(data)
			if err != nil {
				return j, err
			}
			st, err := codec.DecodeState(data)
			if err != nil {
				return j, err
			}
			return svcJob{Key: key, Seq: int(seq), Par: par, P: p, State: st}, nil
		})

	codec.Register(kindSvcScore,
		func(buf []byte, v svcScore) ([]byte, error) {
			buf = binary.LittleEndian.AppendUint64(buf, v.Epoch)
			buf = binary.AppendUvarint(buf, uint64(v.Step))
			buf = binary.AppendUvarint(buf, uint64(v.Cand))
			buf = appendPar(buf, v.Par)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Score))
			buf = binary.AppendUvarint(buf, uint64(v.Rollouts))
			return binary.AppendUvarint(buf, uint64(v.Units)), nil
		},
		func(data []byte) (svcScore, error) {
			var s svcScore
			if len(data) < 8 {
				return s, fmt.Errorf("%w: svcScore epoch", codec.ErrTruncated)
			}
			s.Epoch = binary.LittleEndian.Uint64(data)
			step, data, err := codec.ReadUvarint(data[8:])
			if err != nil {
				return s, err
			}
			s.Step = int(step)
			cand, data, err := codec.ReadUvarint(data)
			if err != nil {
				return s, err
			}
			s.Cand = int(cand)
			par, data, err := readPar(data)
			if err != nil {
				return s, err
			}
			s.Par = par
			if len(data) < 8 {
				return s, fmt.Errorf("%w: svcScore score", codec.ErrTruncated)
			}
			s.Score = math.Float64frombits(binary.LittleEndian.Uint64(data))
			rollouts, data, err := codec.ReadUvarint(data[8:])
			if err != nil {
				return s, err
			}
			units, data, err := codec.ReadUvarint(data)
			if err != nil {
				return s, err
			}
			if len(data) != 0 {
				return s, fmt.Errorf("%w: svcScore trailing bytes", codec.ErrMalformed)
			}
			s.Rollouts, s.Units = int64(rollouts), int64(units)
			return s, nil
		})

	codec.Register(kindSvcResult,
		func(buf []byte, v svcResult) ([]byte, error) {
			buf = binary.LittleEndian.AppendUint64(buf, v.Key)
			buf = binary.AppendUvarint(buf, uint64(v.Seq))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Score))
			return binary.AppendUvarint(buf, uint64(v.Units)), nil
		},
		func(data []byte) (svcResult, error) {
			var r svcResult
			if len(data) < 8 {
				return r, fmt.Errorf("%w: svcResult key", codec.ErrTruncated)
			}
			r.Key = binary.LittleEndian.Uint64(data)
			seq, data, err := codec.ReadUvarint(data[8:])
			if err != nil {
				return r, err
			}
			r.Seq = int(seq)
			if len(data) < 8 {
				return r, fmt.Errorf("%w: svcResult score", codec.ErrTruncated)
			}
			r.Score = math.Float64frombits(binary.LittleEndian.Uint64(data))
			units, data, err := codec.ReadUvarint(data[8:])
			if err != nil {
				return r, err
			}
			if len(data) != 0 {
				return r, fmt.Errorf("%w: svcResult trailing bytes", codec.ErrMalformed)
			}
			r.Units = int64(units)
			return r, nil
		})

	codec.Register(kindSvcRanksLost,
		func(buf []byte, v svcRanksLost) ([]byte, error) {
			buf = binary.AppendUvarint(buf, uint64(v.Lo))
			return binary.AppendUvarint(buf, uint64(v.Hi)), nil
		},
		func(data []byte) (svcRanksLost, error) {
			var l svcRanksLost
			lo, data, err := codec.ReadUvarint(data)
			if err != nil {
				return l, err
			}
			hi, data, err := codec.ReadUvarint(data)
			if err != nil {
				return l, err
			}
			if len(data) != 0 {
				return l, fmt.Errorf("%w: ranks-lost trailing bytes", codec.ErrMalformed)
			}
			if hi < lo {
				return l, fmt.Errorf("%w: ranks-lost range [%d, %d)", codec.ErrMalformed, lo, hi)
			}
			return svcRanksLost{Lo: mpi.Rank(lo), Hi: mpi.Rank(hi)}, nil
		})

	codec.Register(kindSvcRegrant,
		func(buf []byte, v svcRegrant) ([]byte, error) {
			buf = binary.LittleEndian.AppendUint64(buf, v.Epoch)
			return binary.AppendUvarint(buf, uint64(v.Count)), nil
		},
		func(data []byte) (svcRegrant, error) {
			var r svcRegrant
			if len(data) < 8 {
				return r, fmt.Errorf("%w: regrant epoch", codec.ErrTruncated)
			}
			r.Epoch = binary.LittleEndian.Uint64(data)
			count, data, err := codec.ReadUvarint(data[8:])
			if err != nil {
				return r, err
			}
			if len(data) != 0 {
				return r, fmt.Errorf("%w: regrant trailing bytes", codec.ErrMalformed)
			}
			r.Count = int(count)
			return r, nil
		})

	codec.Register(KindEvalBatchRequest,
		func(buf []byte, v EvalBatchRequest) ([]byte, error) {
			buf = binary.LittleEndian.AppendUint64(buf, v.Batch)
			buf = appendEvalName(buf, v.Eval)
			buf = binary.AppendUvarint(buf, uint64(len(v.States)))
			for _, st := range v.States {
				enc, err := codec.EncodeState(nil, st)
				if err != nil {
					return nil, err
				}
				buf = binary.AppendUvarint(buf, uint64(len(enc)))
				buf = append(buf, enc...)
			}
			return buf, nil
		},
		func(data []byte) (EvalBatchRequest, error) {
			var r EvalBatchRequest
			if len(data) < 8 {
				return r, fmt.Errorf("%w: eval batch id", codec.ErrTruncated)
			}
			r.Batch = binary.LittleEndian.Uint64(data)
			eval, data, err := readEvalName(data[8:])
			if err != nil {
				return r, err
			}
			r.Eval = eval
			count, data, err := codec.ReadUvarint(data)
			if err != nil {
				return r, err
			}
			// Grown per state, not preallocated from count: the count is
			// remote-controlled and each state consumes at least one byte,
			// so a lying count fails on the first missing state.
			for i := uint64(0); i < count; i++ {
				n, rest, err := codec.ReadUvarint(data)
				if err != nil {
					return r, err
				}
				if uint64(len(rest)) < n {
					return r, fmt.Errorf("%w: eval batch state %d", codec.ErrTruncated, i)
				}
				st, err := codec.DecodeState(rest[:n])
				if err != nil {
					return r, err
				}
				r.States = append(r.States, st)
				data = rest[n:]
			}
			if len(data) != 0 {
				return r, fmt.Errorf("%w: eval batch trailing bytes", codec.ErrMalformed)
			}
			return r, nil
		})

	codec.Register(KindEvalBatchReply,
		func(buf []byte, v EvalBatchReply) ([]byte, error) {
			buf = binary.LittleEndian.AppendUint64(buf, v.Batch)
			buf = binary.AppendUvarint(buf, uint64(len(v.Weights)))
			for _, w := range v.Weights {
				buf = binary.AppendUvarint(buf, uint64(len(w)))
				for _, x := range w {
					buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
				}
			}
			return buf, nil
		},
		func(data []byte) (EvalBatchReply, error) {
			var r EvalBatchReply
			if len(data) < 8 {
				return r, fmt.Errorf("%w: eval reply id", codec.ErrTruncated)
			}
			r.Batch = binary.LittleEndian.Uint64(data)
			count, data, err := codec.ReadUvarint(data[8:])
			if err != nil {
				return r, err
			}
			for i := uint64(0); i < count; i++ {
				n, rest, err := codec.ReadUvarint(data)
				if err != nil {
					return r, err
				}
				if n > uint64(len(rest))/8 {
					return r, fmt.Errorf("%w: eval reply weights %d", codec.ErrTruncated, i)
				}
				w := make([]float64, n)
				for j := range w {
					w[j] = math.Float64frombits(binary.LittleEndian.Uint64(rest[j*8:]))
				}
				r.Weights = append(r.Weights, w)
				data = rest[n*8:]
			}
			if len(data) != 0 {
				return r, fmt.Errorf("%w: eval reply trailing bytes", codec.ErrMalformed)
			}
			return r, nil
		})

	codec.Register(kindSvcSpecCancel,
		func(buf []byte, v svcSpecCancel) ([]byte, error) {
			buf = binary.AppendUvarint(buf, uint64(v.Slot))
			buf = binary.LittleEndian.AppendUint64(buf, v.Epoch)
			// Step and Keep use the Par shift: −1 is a legal value for both
			// (−1 step = the whole epoch, −1 keep = no surviving branch).
			buf = appendPar(buf, v.Step)
			return appendPar(buf, v.Keep), nil
		},
		func(data []byte) (svcSpecCancel, error) {
			var cn svcSpecCancel
			slot, data, err := codec.ReadUvarint(data)
			if err != nil {
				return cn, err
			}
			cn.Slot = int(slot)
			if len(data) < 8 {
				return cn, fmt.Errorf("%w: spec cancel epoch", codec.ErrTruncated)
			}
			cn.Epoch = binary.LittleEndian.Uint64(data)
			step, data, err := readPar(data[8:])
			if err != nil {
				return cn, err
			}
			cn.Step = step
			keep, data, err := readPar(data)
			if err != nil {
				return cn, err
			}
			cn.Keep = keep
			if len(data) != 0 {
				return cn, fmt.Errorf("%w: spec cancel trailing bytes", codec.ErrMalformed)
			}
			return cn, nil
		})

	codec.Register(kindSvcAbandonAck,
		func(buf []byte, v svcAbandonAck) ([]byte, error) {
			buf = binary.LittleEndian.AppendUint64(buf, v.Epoch)
			return binary.AppendUvarint(buf, uint64(v.Dropped)), nil
		},
		func(data []byte) (svcAbandonAck, error) {
			var a svcAbandonAck
			if len(data) < 8 {
				return a, fmt.Errorf("%w: abandon ack", codec.ErrTruncated)
			}
			a.Epoch = binary.LittleEndian.Uint64(data)
			dropped, data, err := codec.ReadUvarint(data[8:])
			if err != nil {
				return a, err
			}
			if len(data) != 0 {
				return a, fmt.Errorf("%w: abandon ack trailing bytes", codec.ErrMalformed)
			}
			a.Dropped = int(dropped)
			return a, nil
		})
}

// wireMaxLevel caps the nesting level a decoded job may carry. The paper
// evaluates levels 3 and 4; anything near the cap is already infeasible,
// and an unbounded value would drive unbounded recursion in the client's
// nested search (jobParams decode from remote-controlled frames).
const wireMaxLevel = 64

// wireMaxSpeculate caps the speculation width a decoded job may carry: a
// slot can never usefully speculate wider than its median fleet, and a
// corrupt frame must not make the root allocate huge branch tables.
const wireMaxSpeculate = 1 << 16

// wireMaxEvalName caps the evaluator-name bytes a decoded job or batch
// frame may carry: names are short registry keys, and the cap bounds the
// allocation a remote-controlled length prefix can demand.
const wireMaxEvalName = 64

// appendEvalName encodes a registered evaluator name (uvarint length +
// bytes; empty = uniform playouts).
func appendEvalName(buf []byte, name string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	return append(buf, name...)
}

// readEvalName decodes appendEvalName's encoding.
func readEvalName(data []byte) (string, []byte, error) {
	n, data, err := codec.ReadUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > wireMaxEvalName {
		return "", nil, fmt.Errorf("%w: evaluator name of %d bytes exceeds limit %d", codec.ErrMalformed, n, wireMaxEvalName)
	}
	if uint64(len(data)) < n {
		return "", nil, fmt.Errorf("%w: evaluator name", codec.ErrTruncated)
	}
	return string(data[:n]), data[n:], nil
}

// appendPar encodes a branch discriminator (or any −1-capable small
// index, like svcSpecCancel's Step/Keep) as uvarint(v+1), so −1 — the
// "no parent" sentinel — costs one byte and never goes negative on the
// wire.
func appendPar(buf []byte, v int) []byte {
	return binary.AppendUvarint(buf, uint64(v+1))
}

// readPar decodes appendPar's encoding.
func readPar(data []byte) (int, []byte, error) {
	v, data, err := codec.ReadUvarint(data)
	if err != nil {
		return 0, nil, err
	}
	return int(v) - 1, data, nil
}

// appendJobParams encodes the per-job knobs that ride every candidate and
// client job.
func appendJobParams(buf []byte, p jobParams) []byte {
	buf = binary.AppendUvarint(buf, uint64(p.Slot))
	buf = binary.LittleEndian.AppendUint64(buf, p.Epoch)
	buf = binary.AppendUvarint(buf, uint64(p.Level))
	buf = binary.LittleEndian.AppendUint64(buf, p.Seed)
	b := byte(0)
	if p.Memorize {
		b = 1
	}
	buf = append(buf, b)
	buf = binary.AppendUvarint(buf, uint64(p.JobScale))
	buf = binary.AppendUvarint(buf, uint64(p.Root))
	buf = appendEvalName(buf, p.Eval)
	flags := byte(0)
	if p.Cache {
		flags |= 1
	}
	buf = append(buf, flags)
	// Speculate is normalized before shipping (playJob clamps it to ≥0),
	// so a plain uvarint suffices.
	return binary.AppendUvarint(buf, uint64(p.Speculate))
}

// readJobParams decodes appendJobParams' encoding and returns the
// remaining bytes.
func readJobParams(data []byte) (jobParams, []byte, error) {
	var p jobParams
	slot, data, err := codec.ReadUvarint(data)
	if err != nil {
		return p, nil, err
	}
	if len(data) < 8 {
		return p, nil, fmt.Errorf("%w: job params epoch", codec.ErrTruncated)
	}
	epoch := binary.LittleEndian.Uint64(data)
	level, data, err := codec.ReadUvarint(data[8:])
	if err != nil {
		return p, nil, err
	}
	if level > wireMaxLevel {
		return p, nil, fmt.Errorf("%w: job level %d exceeds limit %d", codec.ErrMalformed, level, wireMaxLevel)
	}
	if len(data) < 9 {
		return p, nil, fmt.Errorf("%w: job params seed", codec.ErrTruncated)
	}
	seed := binary.LittleEndian.Uint64(data)
	memorize := data[8]
	if memorize > 1 {
		return p, nil, fmt.Errorf("%w: job params memorize flag %d", codec.ErrMalformed, memorize)
	}
	scale, data, err := codec.ReadUvarint(data[9:])
	if err != nil {
		return p, nil, err
	}
	root, data, err := codec.ReadUvarint(data)
	if err != nil {
		return p, nil, err
	}
	eval, data, err := readEvalName(data)
	if err != nil {
		return p, nil, err
	}
	if len(data) < 1 {
		return p, nil, fmt.Errorf("%w: job params flags", codec.ErrTruncated)
	}
	flags := data[0]
	if flags > 1 {
		return p, nil, fmt.Errorf("%w: job params flags %#x", codec.ErrMalformed, flags)
	}
	spec, data, err := codec.ReadUvarint(data[1:])
	if err != nil {
		return p, nil, err
	}
	if spec > wireMaxSpeculate {
		return p, nil, fmt.Errorf("%w: job speculate %d exceeds limit %d", codec.ErrMalformed, spec, wireMaxSpeculate)
	}
	return jobParams{
		Slot:      int(slot),
		Epoch:     epoch,
		Level:     int(level),
		Seed:      seed,
		Memorize:  memorize == 1,
		JobScale:  int64(scale),
		Root:      mpi.Rank(root),
		Eval:      eval,
		Cache:     flags&1 != 0,
		Speculate: int(spec),
	}, data, nil
}

// workerBlobVersion guards the handshake blob layout independently of the
// frame version: the blob is interpreted by parallel, not by the codec.
// Version history: 1 carried the pool shape (slots/medians/clients/algo);
// 2 added the evaluation batch shape (EvalBatch, EvalFlush nanoseconds);
// 3 added the transposition-cache shape (CacheMB, CacheVerify flag);
// 4 added the async-root speculation default (Speculate).
const workerBlobVersion = 4

// appendWorkerBlob encodes the PoolConfig a pnmcs-worker needs to derive
// the identical poolWorld the coordinator built — and, since v2/v3, to
// batch evaluations and size its transposition cache the way the
// coordinator was configured.
func appendWorkerBlob(buf []byte, cfg PoolConfig) []byte {
	buf = append(buf, workerBlobVersion)
	buf = binary.AppendUvarint(buf, uint64(cfg.Slots))
	buf = binary.AppendUvarint(buf, uint64(cfg.Medians))
	buf = binary.AppendUvarint(buf, uint64(cfg.Clients))
	buf = binary.AppendUvarint(buf, uint64(cfg.Algo))
	buf = binary.AppendUvarint(buf, uint64(cfg.EvalBatch))
	buf = binary.AppendUvarint(buf, uint64(cfg.EvalFlush))
	buf = binary.AppendUvarint(buf, uint64(cfg.CacheMB))
	verify := uint64(0)
	if cfg.CacheVerify {
		verify = 1
	}
	buf = binary.AppendUvarint(buf, verify)
	// v4: the pool-wide speculation default. Negative configs mean "off"
	// everywhere they are consulted, so they ship as 0.
	return binary.AppendUvarint(buf, uint64(max(0, cfg.Speculate)))
}

// decodeWorkerBlob reverses appendWorkerBlob.
func decodeWorkerBlob(data []byte) (PoolConfig, error) {
	var cfg PoolConfig
	if len(data) < 1 {
		return cfg, fmt.Errorf("parallel: empty worker blob")
	}
	if data[0] != workerBlobVersion {
		return cfg, fmt.Errorf("parallel: worker blob version %d, want %d", data[0], workerBlobVersion)
	}
	data = data[1:]
	fields := []*int{&cfg.Slots, &cfg.Medians, &cfg.Clients}
	for _, f := range fields {
		v, rest, err := codec.ReadUvarint(data)
		if err != nil {
			return cfg, fmt.Errorf("parallel: worker blob: %w", err)
		}
		*f, data = int(v), rest
	}
	algo, data, err := codec.ReadUvarint(data)
	if err != nil {
		return cfg, fmt.Errorf("parallel: worker blob: %w", err)
	}
	cfg.Algo = Algorithm(algo)
	batch, data, err := codec.ReadUvarint(data)
	if err != nil {
		return cfg, fmt.Errorf("parallel: worker blob: %w", err)
	}
	cfg.EvalBatch = int(batch)
	flush, data, err := codec.ReadUvarint(data)
	if err != nil {
		return cfg, fmt.Errorf("parallel: worker blob: %w", err)
	}
	cfg.EvalFlush = time.Duration(flush)
	cacheMB, data, err := codec.ReadUvarint(data)
	if err != nil {
		return cfg, fmt.Errorf("parallel: worker blob: %w", err)
	}
	cfg.CacheMB = int(cacheMB)
	verify, data, err := codec.ReadUvarint(data)
	if err != nil {
		return cfg, fmt.Errorf("parallel: worker blob: %w", err)
	}
	if verify > 1 {
		return cfg, fmt.Errorf("parallel: worker blob: cache-verify flag %d", verify)
	}
	cfg.CacheVerify = verify == 1
	spec, rest, err := codec.ReadUvarint(data)
	if err != nil {
		return cfg, fmt.Errorf("parallel: worker blob: %w", err)
	}
	if spec > wireMaxSpeculate {
		return cfg, fmt.Errorf("parallel: worker blob: speculate %d exceeds limit %d", spec, wireMaxSpeculate)
	}
	cfg.Speculate = int(spec)
	if len(rest) != 0 {
		// Trailing bytes mean version skew (a field added without bumping
		// workerBlobVersion): fail loudly — a misparsed blob would
		// desynchronize the whole rank/tag layout.
		return cfg, fmt.Errorf("parallel: worker blob: %d trailing bytes", len(rest))
	}
	if cfg.Slots < 1 || cfg.Medians < 1 || cfg.Clients < 1 {
		return cfg, fmt.Errorf("parallel: worker blob: degenerate pool %d/%d/%d",
			cfg.Slots, cfg.Medians, cfg.Clients)
	}
	return cfg, nil
}
